(* mmsynth — command-line front end of the multi-mode co-synthesis
   library.

     mmsynth show <benchmark>                inspect a benchmark
     mmsynth check <spec> [--json]           validate, print diagnostics
     mmsynth synth <benchmark> [options]     synthesise one implementation
     mmsynth compare <benchmark> [options]   baseline vs proposed comparison
     mmsynth anneal <benchmark> [options]    simulated-annealing baseline
     mmsynth pareto <benchmark> [options]    power/area trade-off sweep
     mmsynth gantt <benchmark> [options]     synthesise and chart a mode
     mmsynth fleet <benchmark> <report>      Monte Carlo a device fleet
     mmsynth export <benchmark>              print the spec as S-expressions
     mmsynth export-json <benchmark>         task-network JSON of a synthesis
     mmsynth dot <benchmark> --mode N        dump a mode's task graph

   Benchmarks: "smartphone", "motivational", "mul1".."mul12",
   "random:<seed>", or "file:<path>" for a spec exported with
   `mmsynth export`.  Loading a file benchmark refuses on validation
   errors; `synth` and `compare` accept --force to proceed anyway.

   `synth` and `compare` accept --checkpoint FILE / --checkpoint-every N
   to periodically snapshot their state, --resume FILE to continue an
   interrupted run with bit-identical results, and --audit to re-derive
   the winning result's schedule/DVS invariants. *)

module Arch = Mm_arch.Architecture
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Mode = Mm_omsm.Mode
module Omsm = Mm_omsm.Omsm
module Graph = Mm_taskgraph.Graph
module Spec = Mm_cosynth.Spec
module Fitness = Mm_cosynth.Fitness
module Synthesis = Mm_cosynth.Synthesis
module Experiment = Mm_cosynth.Experiment
module Report = Mm_cosynth.Report
module Engine = Mm_ga.Engine
module Stats = Mm_util.Stats
module Validate = Mm_cosynth.Validate
module Audit = Mm_cosynth.Audit
open Cmdliner

let ( let* ) = Result.bind

let prefixed ~prefix name =
  if
    String.length name > String.length prefix
    && String.sub name 0 (String.length prefix) = prefix
  then Some (String.sub name (String.length prefix) (String.length name - String.length prefix))
  else None

(* Loading a spec file goes through the total decoder: validation errors
   come back as MM0xx diagnostics, and --force (synth/compare only)
   downgrades them to stderr noise as long as a spec is constructible at
   all. *)
let load_spec_file ~force path =
  if force then
    match Mm_io.Codec.check_file ~path with
    | Some spec, diags ->
      let errors = Validate.errors diags in
      if errors <> [] then
        Format.eprintf "%s: proceeding under --force despite:@.%a@." path
          Validate.pp_list errors;
      Ok spec
    | None, diags ->
      Error
        (`Msg
           (Format.asprintf "%s is beyond --force (no spec constructible):@.%a" path
              Validate.pp_list (Validate.errors diags)))
  else
    match Mm_io.Codec.load_spec_result ~path with
    | Ok spec -> Ok spec
    | Error diags ->
      Error
        (`Msg
           (Format.asprintf
              "cannot load %s:@.%a@.(inspect with `mmsynth check`; synth and compare \
               accept --force)"
              path Validate.pp_list diags))

let spec_of_benchmark ?(force = false) name =
  match name with
  | "smartphone" -> Ok (Mm_benchgen.Smartphone.spec ())
  | "motivational" -> Ok (Mm_benchgen.Motivational.spec ())
  | _ -> (
    match prefixed ~prefix:"mul" name with
    | Some digits -> (
      match int_of_string_opt digits with
      | Some i when i >= 1 && i <= 12 -> Ok (Mm_benchgen.Random_system.mul i)
      | Some _ | None -> Error (`Msg (Printf.sprintf "unknown benchmark %S" name)))
    | None -> (
      match prefixed ~prefix:"random:" name with
      | Some digits -> (
        match int_of_string_opt digits with
        | Some seed -> Ok (Mm_benchgen.Random_system.generate ~seed ())
        | None -> Error (`Msg "random:<seed> needs an integer seed"))
      | None -> (
        match prefixed ~prefix:"file:" name with
        | Some path -> load_spec_file ~force path
        | None -> Error (`Msg (Printf.sprintf "unknown benchmark %S" name)))))

(* The benchmark is resolved inside each subcommand, not in the argument
   parser, so flags parsed alongside it (--force) can steer the load. *)
let benchmark_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BENCHMARK"
        ~doc:
          "Benchmark to operate on: smartphone, motivational, mul1..mul12, \
           random:<seed>, or file:<path>.")

let force_arg =
  Arg.(
    value & flag
    & info [ "force" ]
        ~doc:
          "Load a file: benchmark even when validation reports error diagnostics \
           (they are still printed to stderr).")

let audit_arg =
  Arg.(
    value & flag
    & info [ "audit" ]
        ~doc:
          "Re-derive the winning result's schedules, DVS voltages and penalty claims \
           through the invariant auditor; any violation fails the command after the \
           report.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Synthesis random seed.")

let dvs_arg =
  Arg.(value & flag & info [ "dvs" ] ~doc:"Enable dynamic voltage scaling.")

let runs_arg =
  Arg.(
    value & opt int 5
    & info [ "runs" ] ~docv:"N" ~doc:"Repeated synthesis runs per arm (paper: 40).")

let uniform_arg =
  Arg.(
    value & flag
    & info [ "neglect-probabilities" ]
        ~doc:"Optimise with uniform mode weights (the paper's baseline).")

let generations_arg =
  Arg.(
    value
    & opt int Engine.default_config.Engine.max_generations
    & info [ "generations" ] ~docv:"N" ~doc:"GA generation limit.")

let population_arg =
  Arg.(
    value
    & opt int Engine.default_config.Engine.population_size
    & info [ "population" ] ~docv:"N" ~doc:"GA population size.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains evaluating each GA generation in parallel (default 1 = serial). \
           Results are identical at any job count; only wall-clock time changes. \
           Clamped to the machine's cores unless $(b,--allow-oversubscribe) is \
           given.")

let allow_oversubscribe_arg =
  Arg.(
    value & flag
    & info [ "allow-oversubscribe" ]
        ~doc:
          "Permit $(b,--jobs) beyond the machine's cores.  Oversubscription \
           consistently loses wall-clock time on this workload (see \
           BENCH_parallel.json), so the default clamps.")

let effective_jobs ~allow_oversubscribe jobs =
  let clamped = Mm_parallel.Pool.clamp_jobs ~allow_oversubscribe jobs in
  if clamped <> jobs then
    Printf.eprintf
      "mmsynth: clamping --jobs %d to %d (cores; pass --allow-oversubscribe to \
       override)\n\
       %!"
      jobs clamped;
  clamped

let islands_arg =
  Arg.(
    value & opt int 1
    & info [ "islands" ] ~docv:"N"
        ~doc:
          "GA islands per restart (default 1 = a single population).  With N > 1 \
           the population is sharded into N independent islands with periodic \
           deterministic migration; $(b,--jobs) domains then schedule whole \
           islands instead of evaluation batches.  Unlike $(b,--jobs) this \
           changes the search trajectory (still deterministic per seed, \
           identical at any job count).")

let migration_every_arg =
  Arg.(
    value
    & opt int Mm_ga.Islands.default_topology.Mm_ga.Islands.migration_interval
    & info [ "migration-every" ] ~docv:"N"
        ~doc:
          "Generations between island migration epochs (only meaningful with \
           $(b,--islands) > 1).")

let migrants_arg =
  Arg.(
    value
    & opt int Mm_ga.Islands.default_topology.Mm_ga.Islands.migration_count
    & info [ "migrants" ] ~docv:"N"
        ~doc:
          "Members each island exports to its ring successor per migration epoch \
           (0 disables migration; only meaningful with $(b,--islands) > 1).")

let no_eval_cache_arg =
  Arg.(
    value & flag
    & info [ "no-eval-cache" ]
        ~doc:"Disable the genome-evaluation memoization cache (enabled by default).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a Chrome trace_event file of the run (open it in Perfetto or \
           chrome://tracing). Tracing never changes synthesis results.")

let trace_jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-jsonl" ] ~docv:"FILE"
        ~doc:"Record the trace as one JSON event per line (for ad-hoc tooling).")

let trace_fine_arg =
  Arg.(
    value & flag
    & info [ "trace-fine" ]
        ~doc:
          "Include fine-grained spans (per-evaluation fitness phases, scheduler and \
           DVS invocations) in the trace. Large: expect one span per fitness phase \
           per evaluation.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Collect counters, latency histograms and per-generation GA series, write \
           them to FILE as JSON and print a summary after the report.")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Periodically snapshot the run's state to FILE (atomic write-rename), so \
           an interrupted run can be continued with --resume. Checkpointing never \
           changes synthesis results.")

let checkpoint_every_arg =
  Arg.(
    value & opt int 5
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:
          "Snapshot every N GA generations (synth; compare always snapshots per \
           completed run).")

let resume_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "resume" ] ~docv:"FILE"
        ~doc:
          "Continue from a snapshot written by --checkpoint instead of starting \
           fresh. The snapshot must belong to the same benchmark and configuration; \
           its recorded seed overrides --seed. The resumed run's result is \
           bit-identical to the uninterrupted one's.")

let kill_after_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "kill-after-checkpoints" ] ~docv:"N"
        ~doc:
          "Testing aid: SIGKILL this process right after the N-th checkpoint write, \
           simulating a crash mid-run (used by the CI soak test).")

let log_level_arg =
  let parse s =
    match Mm_obs.Log.level_of_string s with
    | Ok level -> Ok level
    | Stdlib.Error message -> Error (`Msg message)
  in
  let print ppf level = Format.pp_print_string ppf (Mm_obs.Log.level_to_string level) in
  Arg.(
    value
    & opt (conv (parse, print)) Mm_obs.Log.Warn
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:"Diagnostic verbosity on stderr: quiet, error, warn, info or debug.")

(* --- fleet simulation and robust-usage arguments ----------------------------- *)

(* Spelling shared by --usage and --robust: point, dirichlet:<c>,
   jitter:<sigma> or mixture:<name>=<weight>@<p,p,...>[;...] — one
   named persona per ';'-separated entry, probabilities normalised on
   use (mode-count agreement with the spec is checked at the use site
   by Fleet_sim.validate_model). *)
let usage_model_conv =
  let module F = Mm_energy.Fleet_sim in
  let parse_profile entry =
    match String.index_opt entry '=' with
    | None ->
      Error
        (Printf.sprintf "mixture entry %S: expected <name>=<weight>@<p,p,...>"
           entry)
    | Some eq -> (
      let name = String.sub entry 0 eq in
      let rest = String.sub entry (eq + 1) (String.length entry - eq - 1) in
      if name = "" then Error (Printf.sprintf "mixture entry %S: empty persona name" entry)
      else
        match String.index_opt rest '@' with
        | None ->
          Error
            (Printf.sprintf "mixture entry %S: missing '@<p,p,...>' probabilities"
               entry)
        | Some at -> (
          let weight_text = String.sub rest 0 at in
          let psi_text = String.sub rest (at + 1) (String.length rest - at - 1) in
          match float_of_string_opt weight_text with
          | Some w when w > 0.0 && Float.is_finite w -> (
            let fields = String.split_on_char ',' psi_text in
            let psi = List.map float_of_string_opt fields in
            let bad p = match p with
              | Some v -> not (v >= 0.0 && Float.is_finite v)
              | None -> true
            in
            if psi = [] || List.exists bad psi then
              Error
                (Printf.sprintf
                   "mixture entry %S: probabilities must be non-negative numbers"
                   entry)
            else
              let psi = Array.of_list (List.map Option.get psi) in
              if Array.for_all (fun p -> p = 0.0) psi then
                Error
                  (Printf.sprintf "mixture entry %S: probabilities are all zero"
                     entry)
              else Ok { F.name; weight = w; psi })
          | Some _ | None ->
            Error
              (Printf.sprintf "mixture entry %S: weight must be a positive number"
                 entry)))
  in
  let parse s =
    if s = "point" then Ok F.Point
    else
      match prefixed ~prefix:"dirichlet:" s with
      | Some c -> (
        match float_of_string_opt c with
        | Some c when c > 0.0 && Float.is_finite c ->
          Ok (F.Dirichlet { concentration = c })
        | Some _ | None ->
          Error
            (`Msg
               (Printf.sprintf "Dirichlet concentration must be a positive number: %S" c)))
      | None -> (
        match prefixed ~prefix:"jitter:" s with
        | Some sigma -> (
          match float_of_string_opt sigma with
          | Some v when v >= 0.0 && Float.is_finite v -> Ok (F.Holding_jitter { sigma = v })
          | Some _ | None ->
            Error
              (`Msg (Printf.sprintf "jitter sigma must be a non-negative number: %S" sigma)))
        | None -> (
          match prefixed ~prefix:"mixture:" s with
          | Some body -> (
            let entries =
              List.filter (fun e -> e <> "") (String.split_on_char ';' body)
            in
            if entries = [] then
              Error (`Msg "mixture: needs at least one <name>=<weight>@<p,...> entry")
            else
              let rec collect acc = function
                | [] -> Ok (F.Mixture (List.rev acc))
                | entry :: rest -> (
                  match parse_profile entry with
                  | Ok profile -> collect (profile :: acc) rest
                  | Error message -> Error (`Msg message))
              in
              collect [] entries)
          | None ->
            Error
              (`Msg
                 (Printf.sprintf
                    "unknown usage model %S (expected point, dirichlet:<c>, \
                     jitter:<sigma> or mixture:<name>=<weight>@<p,p,...>[;...])"
                    s))))
  in
  let print ppf model =
    Format.pp_print_string ppf (Mm_energy.Fleet_sim.model_to_string model)
  in
  Arg.conv (parse, print)

let usage_arg =
  Arg.(
    value
    & opt usage_model_conv Mm_energy.Fleet_sim.Point
    & info [ "usage" ] ~docv:"MODEL"
        ~doc:
          "Per-device usage model for the fleet simulation: $(b,point) (every device \
           follows the published Ψ), $(b,dirichlet:<c>) (per-device Ψ ~ \
           Dirichlet(c·Ψ)), $(b,jitter:<sigma>) (log-normal holding-time \
           factors) or $(b,mixture:name=weight@p,p,...;...) (named personas \
           drawn by weight; probabilities are normalised and must match the \
           spec's mode count).")

let devices_arg =
  Arg.(
    value & opt int 10_000
    & info [ "devices" ] ~docv:"N" ~doc:"Fleet size for the Monte Carlo simulation.")

let batch_arg =
  Arg.(
    value & opt int 4096
    & info [ "batch" ] ~docv:"N"
        ~doc:
          "Devices per pool work item. Affects wall-clock only; every report bit is \
           identical at any batch size.")

let fleet_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fleet-seed" ] ~docv:"SEED"
        ~doc:"Fleet simulation seed (default: synthesis seed + 1).")

let fleet_horizon_arg =
  Arg.(
    value & opt float 10_000.0
    & info [ "fleet-horizon" ] ~docv:"T"
        ~doc:"Simulated operational time per device (seconds).")

let fleet_flag =
  Arg.(
    value & flag
    & info [ "fleet" ]
        ~doc:
          "After the report, Monte Carlo a device fleet against the winning \
           implementation and print the battery-life distribution (see $(b,--devices), \
           $(b,--usage), $(b,--fleet-horizon), $(b,--fleet-seed), $(b,--batch)).")

let robust_arg =
  Arg.(
    value
    & opt (some usage_model_conv) None
    & info [ "robust" ] ~docv:"MODEL"
        ~doc:
          "Optimise for a usage-uncertainty model instead of the point Ψ: fitness \
           scores each candidate against $(b,--robust-samples) Ψ draws from MODEL \
           ($(b,dirichlet:<c>) or $(b,jitter:<sigma>); $(b,point) is a no-op that \
           keeps the stock fitness bit-for-bit).")

let robust_samples_arg =
  Arg.(
    value & opt int 64
    & info [ "robust-samples" ] ~docv:"N"
        ~doc:"Ψ draws per fitness evaluation under $(b,--robust).")

let robust_objective_conv =
  let parse s =
    if s = "mean" then Ok Fitness.Expected_lifetime
    else
      match prefixed ~prefix:"p" s with
      | Some pct -> (
        match float_of_string_opt pct with
        | Some p when p > 0.0 && p <= 100.0 -> Ok (Fitness.Percentile (p /. 100.0))
        | Some _ | None ->
          Error (`Msg (Printf.sprintf "percentile must be in (0, 100]: %S" s)))
      | None ->
        Error
          (`Msg (Printf.sprintf "unknown robust objective %S (expected mean or p<q>)" s))
  in
  let print ppf = function
    | Fitness.Expected_lifetime -> Format.pp_print_string ppf "mean"
    | Fitness.Percentile q -> Format.fprintf ppf "p%g" (q *. 100.0)
  in
  Arg.conv (parse, print)

let robust_objective_arg =
  Arg.(
    value
    & opt robust_objective_conv Fitness.Expected_lifetime
    & info [ "robust-objective" ] ~docv:"OBJ"
        ~doc:
          "What $(b,--robust) optimises across the Ψ draws: $(b,mean) (power \
           equivalent to the expected battery lifetime) or $(b,p<q>) (worst-case \
           q-th lifetime percentile, e.g. $(b,p10)).")

let robust_of ~robust ~robust_samples ~robust_objective =
  Option.map
    (fun model ->
      {
        Synthesis.model;
        samples = robust_samples;
        objective = robust_objective;
        battery = Mm_energy.Battery.phone_cell;
      })
    robust

(* Flip the observability switches requested on the command line, run the
   subcommand body, then flush the sinks and write the metrics file.
   Unwritable paths surface as ordinary CLI errors, not crashes.  Shared
   by the subcommands that run a synthesis. *)
let with_obs ~trace ~trace_jsonl ~trace_fine ~metrics ~log_level f =
  let finish () =
    Mm_obs.Trace.close ();
    match metrics with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Mm_obs.Metrics.to_json_string ());
      output_char oc '\n';
      close_out oc;
      Report.print_metrics ();
      Format.printf "metrics written to %s@." path
  in
  match
    Mm_obs.Log.set_level log_level;
    Option.iter (fun path -> Mm_obs.Trace.open_chrome ~path) trace;
    Option.iter (fun path -> Mm_obs.Trace.open_jsonl ~path) trace_jsonl;
    if trace_fine then Mm_obs.Control.set_fine true;
    if Option.is_some metrics then Mm_obs.Control.set_metrics true;
    Fun.protect ~finally:finish f
  with
  | result -> result
  | exception Sys_error message ->
    Mm_obs.Trace.close ();
    Error (`Msg message)
  | exception Fun.Finally_raised (Sys_error message) -> Error (`Msg message)

let config_of ?(jobs = 1) ?(no_eval_cache = false) ?(audit = false)
    ?(islands = Synthesis.default_config.Synthesis.islands)
    ?(migration_interval = Synthesis.default_config.Synthesis.migration_interval)
    ?(migration_count = Synthesis.default_config.Synthesis.migration_count)
    ?(robust = Synthesis.default_config.Synthesis.robust) ~dvs ~uniform ~generations
    ~population () =
  {
    Synthesis.default_config with
    audit;
    islands;
    migration_interval;
    migration_count;
    robust;
    fitness =
      {
        Fitness.default_config with
        weighting = (if uniform then Fitness.Uniform else Fitness.True_probabilities);
        dvs =
          (if dvs then Fitness.Dvs Mm_dvs.Scaling.default_config else Fitness.No_dvs);
      };
    ga =
      {
        Engine.default_config with
        max_generations = generations;
        population_size = population;
      };
    jobs;
    eval_cache = (if no_eval_cache then 0 else Synthesis.default_eval_cache);
  }

(* Synthesis done: Monte Carlo the device fleet against the winning
   implementation, print the distribution, optionally persist the JSON
   report.  The fleet's own domains come from --jobs; percentiles are
   bit-identical at any job count. *)
let run_fleet ?report_path ~jobs ~devices ~batch ~usage ~horizon ~fleet_seed spec
    (result : Synthesis.result) =
  let omsm = Spec.omsm spec in
  let mode_powers = result.Synthesis.eval.Fitness.mode_powers in
  let pool =
    if jobs > 1 then Some (Mm_parallel.Pool.create ~domains:jobs ()) else None
  in
  let fleet =
    Fun.protect
      ~finally:(fun () -> Option.iter Mm_parallel.Pool.shutdown pool)
      (fun () ->
        Mm_energy.Fleet_sim.run ?pool ~batch ~model:usage ~horizon ~devices ~omsm
          ~mode_powers ~seed:fleet_seed ())
  in
  Report.print_fleet fleet;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Mm_energy.Fleet_sim.to_json fleet);
      output_char oc '\n';
      close_out oc;
      Format.printf "fleet report written to %s@." path)
    report_path

(* --- show ------------------------------------------------------------------- *)

let show name =
  let* spec = spec_of_benchmark name in
  let omsm = Spec.omsm spec in
  let arch = Spec.arch spec in
  Format.printf "%a@." Omsm.pp omsm;
  Format.printf "probability entropy: %.3f nats@." (Omsm.probability_entropy omsm);
  Format.printf "@.modes:@.";
  List.iter
    (fun mode ->
      let metrics = Mm_taskgraph.Metrics.compute (Mode.graph mode) in
      Format.printf
        "  %-34s Ψ=%-6.3f φ=%-8gms %3d tasks %3d edges depth %2d width %2d par %.2f@."
        (Mode.name mode) (Mode.probability mode)
        (Mode.period mode *. 1e3)
        metrics.Mm_taskgraph.Metrics.n_tasks metrics.Mm_taskgraph.Metrics.n_edges
        metrics.Mm_taskgraph.Metrics.depth metrics.Mm_taskgraph.Metrics.width
        metrics.Mm_taskgraph.Metrics.parallelism)
    (Omsm.modes omsm);
  Format.printf "@.architecture:@.";
  List.iter (fun pe -> Format.printf "  %a@." Pe.pp pe) (Arch.pes arch);
  List.iter (fun cl -> Format.printf "  %a@." Cl.pp cl) (Arch.cls arch);
  let shared = Omsm.shared_task_types omsm in
  Format.printf "@.%d task types, %d shared across modes: %s@."
    (Mm_taskgraph.Task_type.Set.cardinal (Omsm.all_task_types omsm))
    (Mm_taskgraph.Task_type.Set.cardinal shared)
    (String.concat ", "
       (List.map Mm_taskgraph.Task_type.name
          (Mm_taskgraph.Task_type.Set.elements shared)));
  Ok ()

let show_cmd =
  let term = Term.(term_result (const show $ benchmark_arg)) in
  Cmd.v (Cmd.info "show" ~doc:"Inspect a benchmark's OMSM and architecture.") term

(* --- check ------------------------------------------------------------------ *)

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the diagnostics as one JSON object on stdout.")

let diags_to_json ~target diags =
  let module J = Mm_obs.Json in
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"target\":";
  J.str b target;
  Buffer.add_string b ",\"errors\":";
  J.int b (List.length (Validate.errors diags));
  Buffer.add_string b ",\"warnings\":";
  J.int b (List.length (Validate.warnings diags));
  Buffer.add_string b ",\"diagnostics\":[";
  let first = ref true in
  List.iter
    (fun (d : Validate.diag) ->
      J.field_sep b ~first;
      Buffer.add_string b "{\"code\":";
      J.str b d.Validate.code;
      Buffer.add_string b ",\"severity\":";
      J.str b
        (match d.Validate.severity with
        | Validate.Error -> "error"
        | Validate.Warning -> "warning");
      Buffer.add_string b ",\"path\":";
      J.str b d.Validate.path;
      Buffer.add_string b ",\"message\":";
      J.str b d.Validate.message;
      (match d.Validate.pos with
      | None -> ()
      | Some (line, column) ->
        Buffer.add_string b ",\"line\":";
        J.int b line;
        Buffer.add_string b ",\"column\":";
        J.int b column);
      Buffer.add_char b '}')
    diags;
  Buffer.add_string b "]}";
  Buffer.contents b

(* A spec file (bare path or file:<path>) goes through the total decoder;
   a builtin benchmark name is generated and cross-checked with
   [Validate.check_spec].  Exit status: 0 clean, 1 warnings only, 2 any
   error — machine-usable from CI. *)
let check_impl target json =
  let* spec, diags =
    match prefixed ~prefix:"file:" target with
    | Some path -> Ok (Mm_io.Codec.check_file ~path)
    | None ->
      if Sys.file_exists target && not (Sys.is_directory target) then
        Ok (Mm_io.Codec.check_file ~path:target)
      else
        let* spec = spec_of_benchmark target in
        Ok (Some spec, Validate.check_spec spec)
  in
  if json then print_endline (diags_to_json ~target diags)
  else begin
    if diags <> [] then Format.printf "%a@." Validate.pp_list diags;
    let n_errors = List.length (Validate.errors diags) in
    let n_warnings = List.length (Validate.warnings diags) in
    if n_errors = 0 && n_warnings = 0 then Format.printf "%s: OK@." target
    else
      Format.printf "%s: %d error%s, %d warning%s%s@." target n_errors
        (if n_errors = 1 then "" else "s")
        n_warnings
        (if n_warnings = 1 then "" else "s")
        (if spec = None then " (no spec constructible)" else "")
  end;
  Stdlib.exit (Validate.exit_code diags)

let check_cmd =
  let target_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SPEC"
          ~doc:
            "What to validate: a spec file path (bare or file:<path>) or a builtin \
             benchmark name.")
  in
  let term = Term.(term_result (const check_impl $ target_arg $ json_arg)) in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Validate a specification and print structured MM0xx diagnostics (exit 0 \
          clean, 1 warnings only, 2 errors).")
    term

(* --- synth ------------------------------------------------------------------- *)

(* Load a snapshot for --resume, mapping every failure to a CLI error. *)
let load_snapshot ~spec path =
  match Mm_io.Snapshot.load ~path ~spec with
  | Ok payload -> Ok payload
  | Error e ->
    Error (`Msg (Printf.sprintf "%s: %s" path (Mm_io.Snapshot.error_to_string e)))

(* Wrap a checkpoint-writing function so the process SIGKILLs itself
   right after the [kill_after]-th write — the CI soak test's simulated
   crash. *)
let with_kill_switch ~kill_after save =
  match kill_after with
  | None -> save
  | Some n ->
    let written = ref 0 in
    fun state ->
      save state;
      incr written;
      if !written >= n then Unix.kill (Unix.getpid ()) Sys.sigkill

let synth name force audit seed dvs uniform generations population jobs islands
    migration_every migrants allow_oversubscribe no_eval_cache robust robust_samples
    robust_objective fleet devices usage batch fleet_seed fleet_horizon checkpoint
    checkpoint_every resume kill_after trace trace_jsonl trace_fine metrics
    log_level =
  with_obs ~trace ~trace_jsonl ~trace_fine ~metrics ~log_level @@ fun () ->
  let* spec = spec_of_benchmark ~force name in
  let jobs = effective_jobs ~allow_oversubscribe jobs in
  let config =
    config_of ~jobs ~no_eval_cache ~audit ~islands ~migration_interval:migration_every
      ~migration_count:migrants
      ~robust:(robust_of ~robust ~robust_samples ~robust_objective)
      ~dvs ~uniform ~generations ~population ()
  in
  let* resume =
    match resume with
    | None -> Ok None
    | Some path -> (
      match load_snapshot ~spec path with
      | Ok (Mm_io.Snapshot.Synth state) -> Ok (Some state)
      | Ok (Mm_io.Snapshot.Compare _) ->
        Error
          (`Msg
             (Printf.sprintf
                "%s holds a comparison snapshot; resume it with `mmsynth compare`" path))
      | Error _ as e -> e)
  in
  (* The snapshot records the seed the interrupted run was started with;
     resuming under any other seed could not reproduce it. *)
  let seed =
    match resume with Some state -> state.Synthesis.seed | None -> seed
  in
  let checkpoint =
    Option.map
      (fun path ->
        let sink = Mm_io.Snapshot.synth_sink ~path ~spec ~every:checkpoint_every () in
        { sink with Synthesis.save = with_kill_switch ~kill_after sink.Synthesis.save })
      checkpoint
  in
  match Synthesis.run ~config ?checkpoint ?resume ~spec ~seed () with
  | result -> (
    Report.print_result spec result;
    let* () =
      if not fleet then Ok ()
      else
        match
          run_fleet ~jobs ~devices ~batch ~usage ~horizon:fleet_horizon
            ~fleet_seed:(Option.value fleet_seed ~default:(seed + 1))
            spec result
        with
        | () -> Ok ()
        | exception Invalid_argument message -> Error (`Msg message)
        | exception Sys_error message -> Error (`Msg message)
    in
    match result.Synthesis.audit with
    | Some report when not report.Audit.clean ->
      Error
        (`Msg
           (Printf.sprintf "audit failed: %d violation(s), see report above"
              (List.length report.Audit.violations)))
    | Some _ | None -> Ok ())
  | exception Invalid_argument message -> Error (`Msg message)

let synth_cmd =
  let term =
    Term.(
      term_result
        (const synth $ benchmark_arg $ force_arg $ audit_arg $ seed_arg $ dvs_arg
       $ uniform_arg $ generations_arg $ population_arg $ jobs_arg $ islands_arg
       $ migration_every_arg $ migrants_arg
       $ allow_oversubscribe_arg $ no_eval_cache_arg $ robust_arg
       $ robust_samples_arg $ robust_objective_arg $ fleet_flag $ devices_arg
       $ usage_arg $ batch_arg $ fleet_seed_arg $ fleet_horizon_arg $ checkpoint_arg
       $ checkpoint_every_arg $ resume_arg $ kill_after_arg $ trace_arg
       $ trace_jsonl_arg $ trace_fine_arg $ metrics_arg $ log_level_arg))
  in
  Cmd.v
    (Cmd.info "synth"
       ~doc:"Synthesise one implementation and print the mapping and power report.")
    term

(* --- compare ------------------------------------------------------------------ *)

let compare_cmd_impl name force audit seed dvs runs generations population jobs
    islands migration_every migrants allow_oversubscribe no_eval_cache robust
    robust_samples robust_objective fleet devices usage batch fleet_seed
    fleet_horizon checkpoint resume kill_after trace trace_jsonl trace_fine metrics
    log_level =
  with_obs ~trace ~trace_jsonl ~trace_fine ~metrics ~log_level @@ fun () ->
  let* spec = spec_of_benchmark ~force name in
  let jobs = effective_jobs ~allow_oversubscribe jobs in
  let ga =
    {
      Engine.default_config with
      max_generations = generations;
      population_size = population;
    }
  in
  let dvs = if dvs then Fitness.Dvs Mm_dvs.Scaling.default_config else Fitness.No_dvs in
  let eval_cache = if no_eval_cache then 0 else Synthesis.default_eval_cache in
  let* resume =
    match resume with
    | None -> Ok None
    | Some path -> (
      match load_snapshot ~spec path with
      | Ok (Mm_io.Snapshot.Compare state) -> Ok (Some state)
      | Ok (Mm_io.Snapshot.Synth _) ->
        Error
          (`Msg
             (Printf.sprintf
                "%s holds a single-run snapshot; resume it with `mmsynth synth`" path))
      | Error _ as e -> e)
  in
  let seed, runs =
    match resume with
    | Some state -> (state.Experiment.seed, state.Experiment.runs)
    | None -> (seed, runs)
  in
  let checkpoint =
    Option.map
      (fun path ->
        with_kill_switch ~kill_after (fun state ->
            Mm_io.Snapshot.save ~path ~spec (Mm_io.Snapshot.Compare state)))
      checkpoint
  in
  let* c =
    match Experiment.compare ~ga ~dvs ~jobs ~eval_cache ~audit ~islands
            ~migration_interval:migration_every ~migration_count:migrants
            ~robust:(robust_of ~robust ~robust_samples ~robust_objective)
            ?checkpoint ?resume ~spec ~runs ~seed ()
    with
    | c -> Ok c
    | exception Invalid_argument message -> Error (`Msg message)
  in
  let pp_arm name (arm : Experiment.arm) =
    Format.printf "%s: %.4g mW (std %.2g, %d runs, %.1fs CPU/run)@." name
      (arm.Experiment.power.Stats.mean *. 1e3)
      (arm.Experiment.power.Stats.std *. 1e3)
      arm.Experiment.power.Stats.n arm.Experiment.cpu_seconds.Stats.mean
  in
  pp_arm "without probabilities (baseline)" c.Experiment.without_probabilities;
  pp_arm "with probabilities    (proposed)" c.Experiment.with_probabilities;
  Format.printf "reduction: %.2f%%@." c.Experiment.reduction_percent;
  (* Both arms' best designs fleet-simulate under the SAME usage draws
     (one --fleet-seed), so the distributions differ only by design. *)
  let* () =
    if not fleet then Ok ()
    else begin
      let fleet_seed = Option.value fleet_seed ~default:(seed + 1) in
      let simulate label (arm : Experiment.arm) =
        Format.printf "fleet of %s best:@." label;
        run_fleet ~jobs ~devices ~batch ~usage ~horizon:fleet_horizon ~fleet_seed spec
          arm.Experiment.best
      in
      match
        simulate "baseline" c.Experiment.without_probabilities;
        simulate "proposed" c.Experiment.with_probabilities
      with
      | () -> Ok ()
      | exception Invalid_argument message -> Error (`Msg message)
      | exception Sys_error message -> Error (`Msg message)
    end
  in
  (* Replayed (resumed) best runs carry no live audit report; only runs
     executed here can fail the command. *)
  let dirty (arm : Experiment.arm) =
    match arm.Experiment.best.Synthesis.audit with
    | Some report -> not report.Audit.clean
    | None -> false
  in
  if dirty c.Experiment.without_probabilities || dirty c.Experiment.with_probabilities
  then Error (`Msg "audit failed: violations in a winning result (see warnings above)")
  else Ok ()

let compare_cmd =
  let term =
    Term.(
      term_result
        (const compare_cmd_impl $ benchmark_arg $ force_arg $ audit_arg $ seed_arg
       $ dvs_arg $ runs_arg $ generations_arg $ population_arg $ jobs_arg
       $ islands_arg $ migration_every_arg $ migrants_arg
       $ allow_oversubscribe_arg $ no_eval_cache_arg $ robust_arg
       $ robust_samples_arg $ robust_objective_arg $ fleet_flag $ devices_arg
       $ usage_arg $ batch_arg $ fleet_seed_arg $ fleet_horizon_arg $ checkpoint_arg
       $ resume_arg $ kill_after_arg $ trace_arg $ trace_jsonl_arg $ trace_fine_arg
       $ metrics_arg $ log_level_arg))
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Run the paper's experiment: synthesis with vs without mode execution \
          probabilities.")
    term

(* --- dot ------------------------------------------------------------------------ *)

let dot name mode =
  let* spec = spec_of_benchmark name in
  let omsm = Spec.omsm spec in
  if mode < 0 || mode >= Omsm.n_modes omsm then
    Error (`Msg (Printf.sprintf "mode %d out of range" mode))
  else begin
    print_string (Graph.to_dot (Mode.graph (Omsm.mode omsm mode)));
    Ok ()
  end

let mode_arg =
  Arg.(value & opt int 0 & info [ "mode" ] ~docv:"N" ~doc:"Mode id to dump.")

let dot_cmd =
  let term = Term.(term_result (const dot $ benchmark_arg $ mode_arg)) in
  Cmd.v (Cmd.info "dot" ~doc:"Print a mode's task graph in Graphviz format.") term

(* --- export ---------------------------------------------------------------- *)

let export name =
  let* spec = spec_of_benchmark name in
  print_string (Mm_io.Codec.spec_to_string spec);
  Ok ()

let export_cmd =
  let term = Term.(term_result (const export $ benchmark_arg)) in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Print the benchmark's full specification as S-expressions (reload \
             with file:<path>).")
    term

(* --- export-json ------------------------------------------------------------- *)

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the JSON to FILE instead of stdout.")

let export_json name force seed dvs uniform generations population jobs
    allow_oversubscribe output =
  let* spec = spec_of_benchmark ~force name in
  let jobs = effective_jobs ~allow_oversubscribe jobs in
  let config = config_of ~jobs ~dvs ~uniform ~generations ~population () in
  match Synthesis.run ~config ~spec ~seed () with
  | result -> (
    let json = Mm_cosynth.Export_json.to_string spec result.Synthesis.eval in
    match output with
    | None ->
      print_string json;
      print_newline ();
      Ok ()
    | Some path -> (
      match
        let oc = open_out path in
        output_string oc json;
        output_char oc '\n';
        close_out oc
      with
      | () ->
        Format.printf "task network written to %s@." path;
        Ok ()
      | exception Sys_error message -> Error (`Msg message)))
  | exception Invalid_argument message -> Error (`Msg message)

let export_json_cmd =
  let term =
    Term.(
      term_result
        (const export_json $ benchmark_arg $ force_arg $ seed_arg $ dvs_arg
       $ uniform_arg $ generations_arg $ population_arg $ jobs_arg
       $ allow_oversubscribe_arg $ output_arg))
  in
  Cmd.v
    (Cmd.info "export-json"
       ~doc:
         "Synthesise and export the winning implementation as one task-network JSON \
          object (schema mmsyn-task-network, version 1).")
    term

(* --- gantt ----------------------------------------------------------------- *)

let gantt name seed dvs mode =
  let* spec = spec_of_benchmark name in
  let omsm = Spec.omsm spec in
  if mode < 0 || mode >= Omsm.n_modes omsm then
    Error (`Msg (Printf.sprintf "mode %d out of range" mode))
  else begin
    let config =
      config_of ~dvs ~uniform:false
        ~generations:Engine.default_config.Engine.max_generations
        ~population:Engine.default_config.Engine.population_size ()
    in
    let result = Synthesis.run ~config ~spec ~seed () in
    let eval = result.Synthesis.eval in
    let sched = eval.Fitness.schedules.(mode) in
    if dvs then
      print_string
        (Mm_sched.Gantt.render_scaled sched
           ~stretched_finish:eval.Fitness.scalings.(mode).Mm_dvs.Scaling.stretched_finish)
    else print_string (Mm_sched.Gantt.render sched);
    Ok ()
  end

let gantt_cmd =
  let term =
    Term.(term_result (const gantt $ benchmark_arg $ seed_arg $ dvs_arg $ mode_arg))
  in
  Cmd.v
    (Cmd.info "gantt" ~doc:"Synthesise, then chart one mode's schedule as ASCII Gantt.")
    term

(* --- anneal ---------------------------------------------------------------- *)

let steps_arg =
  Arg.(
    value
    & opt int Mm_cosynth.Annealing.default_config.Mm_cosynth.Annealing.steps
    & info [ "steps" ] ~docv:"N" ~doc:"Simulated-annealing move budget.")

let anneal name seed dvs steps =
  let* spec = spec_of_benchmark name in
  let fitness =
    {
      Fitness.default_config with
      dvs = (if dvs then Fitness.Dvs Mm_dvs.Scaling.default_config else Fitness.No_dvs);
    }
  in
  let config = { Mm_cosynth.Annealing.default_config with Mm_cosynth.Annealing.steps } in
  let result = Mm_cosynth.Annealing.run ~config ~fitness ~spec ~seed () in
  Format.printf "simulated annealing: %.4g mW (feasible %b, %d/%d moves accepted, %.1fs)@."
    (result.Mm_cosynth.Annealing.eval.Fitness.true_power *. 1e3)
    (Fitness.feasible result.Mm_cosynth.Annealing.eval)
    result.Mm_cosynth.Annealing.accepted steps result.Mm_cosynth.Annealing.cpu_seconds;
  Report.print_result spec
    {
      Synthesis.genome = result.Mm_cosynth.Annealing.genome;
      eval = result.Mm_cosynth.Annealing.eval;
      generations = 0;
      evaluations = result.Mm_cosynth.Annealing.evaluations;
      cache_hits = 0;
      cpu_seconds = result.Mm_cosynth.Annealing.cpu_seconds;
      history = [];
      audit = None;
    };
  Ok ()

let anneal_cmd =
  let term =
    Term.(term_result (const anneal $ benchmark_arg $ seed_arg $ dvs_arg $ steps_arg))
  in
  Cmd.v
    (Cmd.info "anneal"
       ~doc:"Map with the simulated-annealing baseline instead of the GA.")
    term

(* --- pareto ---------------------------------------------------------------- *)

let scales_arg =
  Arg.(
    value
    & opt (list float) [ 0.25; 0.5; 0.75; 1.0; 1.5; 2.0 ]
    & info [ "scales" ] ~docv:"S1,S2,…" ~doc:"Hardware-area scale factors to sweep.")

let pareto name seed scales =
  let* spec = spec_of_benchmark name in
  let points = Mm_cosynth.Pareto.sweep ~spec ~scales ~seed () in
  let t =
    Mm_util.Table.create ~title:"power/area trade-off"
      ~columns:[ "area scale"; "HW capacity"; "HW used"; "p̄ (mW)"; "feasible"; "frontier" ]
  in
  let frontier = Mm_cosynth.Pareto.frontier points in
  List.iter
    (fun (p : Mm_cosynth.Pareto.point) ->
      Mm_util.Table.add_row t
        [
          Printf.sprintf "%.2f" p.Mm_cosynth.Pareto.area_scale;
          Printf.sprintf "%.0f" p.Mm_cosynth.Pareto.hw_area_capacity;
          Printf.sprintf "%.0f" p.Mm_cosynth.Pareto.hw_area_used;
          Printf.sprintf "%.3f" (p.Mm_cosynth.Pareto.power *. 1e3);
          string_of_bool p.Mm_cosynth.Pareto.feasible;
          (if List.memq p frontier then "*" else "");
        ])
    points;
  Mm_util.Table.print t;
  Ok ()

let pareto_cmd =
  let term = Term.(term_result (const pareto $ benchmark_arg $ seed_arg $ scales_arg)) in
  Cmd.v
    (Cmd.info "pareto" ~doc:"Sweep hardware-area budgets and report the trade-off curve.")
    term

(* --- robustness -------------------------------------------------------------- *)

let strength_arg =
  Arg.(
    value & opt float 0.3
    & info [ "strength" ] ~docv:"S"
        ~doc:"Log-normal σ of the per-mode probability perturbation.")

let samples_arg =
  Arg.(
    value & opt int 1000
    & info [ "samples" ] ~docv:"N" ~doc:"Perturbed usage profiles to sample.")

let robustness name seed dvs samples strength =
  let* spec = spec_of_benchmark name in
  (* Synthesise both arms, then stress them under the same perturbed
     usage profiles. *)
  let run uniform =
    let config =
      config_of ~dvs ~uniform
        ~generations:Engine.default_config.Engine.max_generations
        ~population:Engine.default_config.Engine.population_size ()
    in
    Synthesis.run ~config ~spec ~seed ()
  in
  let baseline = run true and proposed = run false in
  let c =
    Mm_cosynth.Sensitivity.compare_mappings ~samples ~strength ~spec
      ~baseline:baseline.Synthesis.eval.Fitness.mapping
      ~proposed:proposed.Synthesis.eval.Fitness.mapping ~seed:(seed + 1) ()
  in
  let pp name (r : Mm_cosynth.Sensitivity.report) =
    Format.printf
      "%s: nominal %.4g mW; under drift mean %.4g ±%.2g, range [%.4g, %.4g] mW@." name
      (r.Mm_cosynth.Sensitivity.nominal *. 1e3)
      (r.Mm_cosynth.Sensitivity.mean *. 1e3)
      (r.Mm_cosynth.Sensitivity.std *. 1e3)
      (r.Mm_cosynth.Sensitivity.best *. 1e3)
      (r.Mm_cosynth.Sensitivity.worst *. 1e3)
  in
  Format.printf "usage-profile drift: %d samples, strength %.2f@." samples strength;
  pp "baseline (probabilities neglected)" c.Mm_cosynth.Sensitivity.baseline;
  pp "proposed (probabilities considered)" c.Mm_cosynth.Sensitivity.proposed;
  Format.printf "proposed wins under %d of %d perturbed profiles (%.1f%%)@."
    c.Mm_cosynth.Sensitivity.wins samples
    (100.0 *. float_of_int c.Mm_cosynth.Sensitivity.wins /. float_of_int samples);
  Ok ()

let robustness_cmd =
  let term =
    Term.(
      term_result
        (const robustness $ benchmark_arg $ seed_arg $ dvs_arg $ samples_arg
       $ strength_arg))
  in
  Cmd.v
    (Cmd.info "robustness"
       ~doc:
         "Stress both experiment arms under perturbed usage profiles: does the \
          probability-aware design survive user-to-user variation?")
    term

(* --- frontier --------------------------------------------------------------- *)

let frontier name seed dvs generations =
  let* spec = spec_of_benchmark name in
  let fitness =
    {
      Fitness.default_config with
      dvs = (if dvs then Fitness.Dvs Mm_dvs.Scaling.default_config else Fitness.No_dvs);
    }
  in
  let config =
    { Mm_ga.Nsga2.default_config with Mm_ga.Nsga2.max_generations = generations }
  in
  let result = Mm_cosynth.Multi_objective.optimise ~config ~fitness ~spec ~seed () in
  Format.printf "NSGA-II: %d generations, %d evaluations, %d trade-off points@."
    result.Mm_cosynth.Multi_objective.generations
    result.Mm_cosynth.Multi_objective.evaluations
    (List.length result.Mm_cosynth.Multi_objective.front);
  let t =
    Mm_util.Table.create ~title:"power / hardware-area trade-off front"
      ~columns:[ "HW area used (cells)"; "p̄ (mW)" ]
  in
  List.iter
    (fun (p : Mm_cosynth.Multi_objective.point) ->
      Mm_util.Table.add_row t
        [
          Printf.sprintf "%.0f" p.Mm_cosynth.Multi_objective.area;
          Printf.sprintf "%.4f" (p.Mm_cosynth.Multi_objective.power *. 1e3);
        ])
    result.Mm_cosynth.Multi_objective.front;
  Mm_util.Table.print t;
  Ok ()

let frontier_cmd =
  let term =
    Term.(
      term_result (const frontier $ benchmark_arg $ seed_arg $ dvs_arg $ generations_arg))
  in
  Cmd.v
    (Cmd.info "frontier"
       ~doc:"Multi-objective synthesis (NSGA-II): the power/area trade-off in one run.")
    term

(* --- simulate --------------------------------------------------------------- *)

let horizon_arg =
  Arg.(
    value & opt float 10_000.0
    & info [ "horizon" ] ~docv:"T" ~doc:"Simulated operational time (seconds).")

let simulate name seed dvs horizon =
  let* spec = spec_of_benchmark name in
  let config =
    config_of ~dvs ~uniform:false
      ~generations:Engine.default_config.Engine.max_generations
      ~population:Engine.default_config.Engine.population_size ()
  in
  let result = Synthesis.run ~config ~spec ~seed () in
  let omsm = Spec.omsm spec in
  let mode_powers = result.Synthesis.eval.Fitness.mode_powers in
  let rng = Mm_util.Prng.create ~seed:(seed + 1) in
  let sim = Mm_energy.Trace_sim.simulate ~omsm ~mode_powers ~horizon rng in
  Format.printf "synthesised implementation, then simulated %.4g s of usage:@." horizon;
  List.iter
    (fun mode ->
      let id = Mode.id mode in
      Format.printf "  %-34s published Ψ=%-6.3f simulated Ψ=%-6.3f@." (Mode.name mode)
        (Mode.probability mode)
        sim.Mm_energy.Trace_sim.empirical_probability.(id))
    (Omsm.modes omsm);
  Format.printf "mode changes: %d@." sim.Mm_energy.Trace_sim.n_transitions;
  Format.printf "analytic average power (Eq. 1): %.4g mW@."
    (Synthesis.average_power result *. 1e3);
  Format.printf "empirical average power:        %.4g mW@."
    (sim.Mm_energy.Trace_sim.empirical_power *. 1e3);
  Ok ()

let simulate_cmd =
  let term =
    Term.(
      term_result (const simulate $ benchmark_arg $ seed_arg $ dvs_arg $ horizon_arg))
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:
         "Synthesise, then validate the analytic power figure against a simulated \
          usage trace.")
    term

(* --- fleet ------------------------------------------------------------------- *)

let fleet_report_arg =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"REPORT" ~doc:"Path the fleet JSON report is written to.")

let fleet_cmd_impl name force seed dvs uniform generations population jobs
    allow_oversubscribe robust robust_samples robust_objective devices usage batch
    fleet_seed fleet_horizon report =
  let* spec = spec_of_benchmark ~force name in
  let jobs = effective_jobs ~allow_oversubscribe jobs in
  let config =
    config_of ~jobs
      ~robust:(robust_of ~robust ~robust_samples ~robust_objective)
      ~dvs ~uniform ~generations ~population ()
  in
  match Synthesis.run ~config ~spec ~seed () with
  | result -> (
    Format.printf "synthesised: average power %.4g mW, feasible %b@."
      (Synthesis.average_power result *. 1e3)
      (Fitness.feasible result.Synthesis.eval);
    match
      run_fleet ~report_path:report ~jobs ~devices ~batch ~usage
        ~horizon:fleet_horizon
        ~fleet_seed:(Option.value fleet_seed ~default:(seed + 1))
        spec result
    with
    | () -> Ok ()
    | exception Invalid_argument message -> Error (`Msg message)
    | exception Sys_error message -> Error (`Msg message))
  | exception Invalid_argument message -> Error (`Msg message)

let fleet_cmd =
  let term =
    Term.(
      term_result
        (const fleet_cmd_impl $ benchmark_arg $ force_arg $ seed_arg $ dvs_arg
       $ uniform_arg $ generations_arg $ population_arg $ jobs_arg
       $ allow_oversubscribe_arg $ robust_arg $ robust_samples_arg
       $ robust_objective_arg $ devices_arg $ usage_arg $ batch_arg $ fleet_seed_arg
       $ fleet_horizon_arg $ fleet_report_arg))
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Synthesise, then Monte Carlo a device fleet against the result: \
          battery-life distribution to stdout, JSON report to REPORT.")
    term

(* --- client (talk to a running mmsynthd) -------------------------------------- *)

module Serve_client = Mm_serve.Client
module Serve_protocol = Mm_serve.Protocol
module Serve_job = Mm_serve.Job

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/mmsynthd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"The daemon's Unix-domain socket.")

let client_tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Reach the daemon over TCP instead of the Unix socket.")

let client_auth_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "auth-token" ] ~docv:"TOKEN"
        ~doc:
          "Shared-secret token attached to every request (required by TCP \
           listeners started with $(b,--auth-token)).")

let client_retries_arg =
  Arg.(
    value
    & opt int Serve_client.default_retry.Serve_client.attempts
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Total attempts per request (1 = never retry).  Connection \
           failures, lost replies and busy responses are retried under \
           exponential backoff with jitter; submissions carry an \
           idempotency nonce so a blind retry never duplicates a job.")

let job_id_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB" ~doc:"Job id.")

let endpoint_of socket tcp =
  match tcp with
  | None -> Ok (Serve_client.Unix_socket socket)
  | Some spec -> (
    match String.rindex_opt spec ':' with
    | Some i -> (
      let host = String.sub spec 0 i in
      match
        int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
      with
      | Some port -> Ok (Serve_client.Tcp (host, port))
      | None -> Error (`Msg ("invalid port in --tcp " ^ spec)))
    | None -> Error (`Msg ("expected HOST:PORT in --tcp " ^ spec)))

let endpoint_to_string = function
  | Serve_client.Unix_socket path -> path
  | Serve_client.Tcp (host, port) -> Printf.sprintf "%s:%d" host port

let with_client socket tcp auth retries f =
  let* endpoint = endpoint_of socket tcp in
  let retry =
    { Serve_client.default_retry with Serve_client.attempts = max 1 retries }
  in
  let c = Serve_client.create ?auth ~retry endpoint in
  Fun.protect
    ~finally:(fun () -> Serve_client.close c)
    (fun () ->
      match f c with
      | Ok _ as ok -> ok
      | Error (`Msg message) ->
        Error
          (`Msg
            (Printf.sprintf "mmsynthd at %s: %s" (endpoint_to_string endpoint)
               message)))

let print_view (v : Serve_protocol.job_view) =
  let part name = function
    | None -> ""
    | Some x -> Printf.sprintf "  %s %.6g" name x
  in
  Printf.printf "%s  %-12s  restart %d  generation %d%s%s%s\n" v.v_id
    (Serve_job.state_to_string v.v_state)
    v.v_restart v.v_generation
    (part "fitness" v.v_best_fitness)
    (part "power" v.v_power)
    (match v.v_error with None -> "" | Some e -> "  error: " ^ e)

let unexpected response =
  Error
    (`Msg
      (match response with
      | Serve_protocol.Error_response { code; message } ->
        Printf.sprintf "daemon refused: %s: %s" code message
      | Serve_protocol.Busy { active; limit } ->
        Printf.sprintf
          "daemon busy (%d/%d jobs active) and retries exhausted — try again \
           later or raise --retries"
          active limit
      | Serve_protocol.Unauthorized ->
        "unauthorized: this listener requires --auth-token"
      | _ -> "unexpected response from the daemon"))

let client_submit socket tcp auth retries file seed dvs uniform generations
    population restarts islands migration_every migrants watch =
  let* spec_text =
    try Ok (Mm_io.Codec.read_file file) with Sys_error m -> Error (`Msg m)
  in
  let options =
    {
      Serve_job.seed;
      generations;
      population;
      restarts;
      dvs;
      uniform;
      islands;
      migration_interval = migration_every;
      migration_count = migrants;
    }
  in
  (* The nonce makes a blindly retried submit idempotent: if the first
     attempt was admitted but its reply lost, the daemon answers the
     retry with the same job instead of a duplicate. *)
  let nonce = Some (Serve_client.fresh_nonce ()) in
  with_client socket tcp auth retries @@ fun c ->
  match Serve_client.rpc c (Serve_protocol.Submit { spec_text; options; nonce }) with
  | Error message -> Error (`Msg message)
  | Ok (Serve_protocol.Rejected diags) ->
    List.iter
      (fun d -> print_endline (Serve_protocol.diag_to_string d))
      diags;
    Error (`Msg (Printf.sprintf "%s rejected" file))
  | Ok (Serve_protocol.Accepted view) ->
    print_view view;
    if not watch then Ok ()
    else begin
      match
        Serve_client.watch_resilient c view.Serve_protocol.v_id
          ~on_event:print_endline
      with
      | Error message -> Error (`Msg message)
      | Ok final ->
        print_view final;
        Ok ()
    end
  | Ok other -> unexpected other

let client_status socket tcp auth retries id =
  with_client socket tcp auth retries @@ fun c ->
  match Serve_client.rpc c (Serve_protocol.Status id) with
  | Error message -> Error (`Msg message)
  | Ok (Serve_protocol.Job_info view) ->
    print_view view;
    Ok ()
  | Ok other -> unexpected other

let client_cancel socket tcp auth retries id =
  with_client socket tcp auth retries @@ fun c ->
  match Serve_client.rpc c (Serve_protocol.Cancel id) with
  | Error message -> Error (`Msg message)
  | Ok Serve_protocol.Done ->
    Printf.printf "%s: cancellation requested\n" id;
    Ok ()
  | Ok other -> unexpected other

let client_list socket tcp auth retries =
  with_client socket tcp auth retries @@ fun c ->
  match Serve_client.rpc c Serve_protocol.List_jobs with
  | Error message -> Error (`Msg message)
  | Ok (Serve_protocol.Jobs views) ->
    List.iter print_view views;
    Ok ()
  | Ok other -> unexpected other

let client_watch socket tcp auth retries id =
  with_client socket tcp auth retries @@ fun c ->
  match Serve_client.watch_resilient c id ~on_event:print_endline with
  | Error message -> Error (`Msg message)
  | Ok final ->
    print_view final;
    Ok ()

let client_ping socket tcp auth retries =
  with_client socket tcp auth retries @@ fun c ->
  match Serve_client.rpc c Serve_protocol.Ping with
  | Ok Serve_protocol.Pong ->
    print_endline "pong";
    Ok ()
  | Ok other -> unexpected other
  | Error message -> Error (`Msg message)

let client_shutdown socket tcp auth retries =
  with_client socket tcp auth retries @@ fun c ->
  match Serve_client.shutdown c with
  | Ok () ->
    print_endline "daemon stopping (in-flight jobs stay checkpointed)";
    Ok ()
  | Error message -> Error (`Msg message)

let client_cmd =
  let restarts_arg =
    Arg.(
      value & opt int Serve_job.default_options.Serve_job.restarts
      & info [ "restarts" ] ~docv:"N" ~doc:"Independent GA restarts.")
  in
  let watch_flag =
    Arg.(
      value & flag
      & info [ "watch" ] ~doc:"Stream the job's progress events until it finishes.")
  in
  let spec_file_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"SPEC" ~doc:"Specification file (.mms) to submit.")
  in
  let submit =
    Cmd.v
      (Cmd.info "submit" ~doc:"Validate and enqueue a specification.")
      Term.(
        term_result
          (const client_submit $ socket_arg $ client_tcp_arg $ client_auth_arg
         $ client_retries_arg $ spec_file_arg $ seed_arg $ dvs_arg
         $ uniform_arg $ generations_arg $ population_arg $ restarts_arg
         $ islands_arg $ migration_every_arg $ migrants_arg $ watch_flag))
  in
  let status =
    Cmd.v
      (Cmd.info "status" ~doc:"Show one job.")
      Term.(
        term_result
          (const client_status $ socket_arg $ client_tcp_arg $ client_auth_arg
         $ client_retries_arg $ job_id_arg))
  in
  let cancel =
    Cmd.v
      (Cmd.info "cancel" ~doc:"Cancel a queued or running job.")
      Term.(
        term_result
          (const client_cancel $ socket_arg $ client_tcp_arg $ client_auth_arg
         $ client_retries_arg $ job_id_arg))
  in
  let list =
    Cmd.v
      (Cmd.info "list" ~doc:"List every job the daemon knows.")
      Term.(
        term_result
          (const client_list $ socket_arg $ client_tcp_arg $ client_auth_arg
         $ client_retries_arg))
  in
  let watch =
    Cmd.v
      (Cmd.info "watch"
         ~doc:"Stream a job's JSONL progress events until it finishes.")
      Term.(
        term_result
          (const client_watch $ socket_arg $ client_tcp_arg $ client_auth_arg
         $ client_retries_arg $ job_id_arg))
  in
  let ping =
    Cmd.v
      (Cmd.info "ping" ~doc:"Check the daemon is alive.")
      Term.(
        term_result
          (const client_ping $ socket_arg $ client_tcp_arg $ client_auth_arg
         $ client_retries_arg))
  in
  let shutdown =
    Cmd.v
      (Cmd.info "shutdown"
         ~doc:"Stop the daemon, leaving in-flight jobs checkpointed on disk.")
      Term.(
        term_result
          (const client_shutdown $ socket_arg $ client_tcp_arg $ client_auth_arg
         $ client_retries_arg))
  in
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running mmsynthd.")
    [ submit; status; cancel; list; watch; ping; shutdown ]

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "mmsynth" ~version:"1.0.0"
      ~doc:"Energy-efficient multi-mode co-synthesis (Schmitz et al., DATE 2003)"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            show_cmd; check_cmd; synth_cmd; compare_cmd; anneal_cmd; pareto_cmd;
            frontier_cmd; robustness_cmd; gantt_cmd; simulate_cmd; fleet_cmd;
            export_cmd; export_json_cmd; dot_cmd; client_cmd;
          ]))
