(* The mmsynthd daemon entrypoint: argument parsing and nothing else —
   the event loop, job multiplexing and crash recovery all live in
   Mm_serve.Server. *)

open Cmdliner
module Pool = Mm_parallel.Pool
module Server = Mm_serve.Server

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/mmsynthd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")

let state_dir_arg =
  Arg.(
    value
    & opt string "mmsynthd-state"
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Job state directory (per-job specs, metadata, checkpoints, event \
           logs).  Restarting a daemon on an existing directory resumes every \
           in-flight job from its last checkpoint.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains of the shared evaluation pool all jobs multiplex over \
           (default 1 = evaluate on the scheduler domain).  Clamped to the \
           machine's cores unless $(b,--allow-oversubscribe) is given.")

let allow_oversubscribe_arg =
  Arg.(
    value & flag
    & info [ "allow-oversubscribe" ]
        ~doc:
          "Permit $(b,--jobs) beyond the machine's cores.  Oversubscription \
           consistently loses wall-clock time on this workload, so it is \
           opt-in.")

let checkpoint_every_arg =
  Arg.(
    value
    & opt int Server.default_checkpoint_every
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Snapshot every running job's state every N GA generations.")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Additionally listen on a TCP address, e.g. 127.0.0.1:7433.")

let serve socket state_dir jobs allow_oversubscribe checkpoint_every tcp =
  let tcp =
    match tcp with
    | None -> Ok None
    | Some spec -> (
      match String.rindex_opt spec ':' with
      | Some i -> (
        let host = String.sub spec 0 i in
        match int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) with
        | Some port -> Ok (Some (host, port))
        | None -> Error (`Msg ("invalid port in --tcp " ^ spec)))
      | None -> Error (`Msg ("expected HOST:PORT in --tcp " ^ spec)))
  in
  match tcp with
  | Error _ as e -> e
  | Ok tcp ->
    let pool_jobs = Pool.clamp_jobs ~allow_oversubscribe jobs in
    if pool_jobs <> jobs then
      Printf.eprintf
        "mmsynthd: clamping --jobs %d to %d cores (pass --allow-oversubscribe \
         to override)\n\
         %!"
        jobs pool_jobs;
    Printf.printf "mmsynthd: listening on %s (state: %s, pool: %d)\n%!" socket
      state_dir pool_jobs;
    Server.run
      {
        Server.socket_path = socket;
        tcp;
        state_dir;
        pool_jobs;
        checkpoint_every = checkpoint_every;
      };
    Ok ()

let () =
  let term =
    Term.(
      term_result
        (const serve $ socket_arg $ state_dir_arg $ jobs_arg
       $ allow_oversubscribe_arg $ checkpoint_every_arg $ tcp_arg))
  in
  let info =
    Cmd.info "mmsynthd" ~version:"1.0.0"
      ~doc:
        "Long-running multi-mode co-synthesis service: submit, watch and \
         cancel jobs over a socket; survives kill -9 via per-job checkpoints."
  in
  exit (Cmd.eval (Cmd.v info term))
