(* The mmsynthd daemon entrypoint: argument parsing and nothing else —
   the event loop, job multiplexing and crash recovery all live in
   Mm_serve.Server. *)

open Cmdliner
module Fault = Mm_fault.Fault
module Pool = Mm_parallel.Pool
module Server = Mm_serve.Server

let socket_arg =
  Arg.(
    value
    & opt string "/tmp/mmsynthd.sock"
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")

let state_dir_arg =
  Arg.(
    value
    & opt string "mmsynthd-state"
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Job state directory (per-job specs, metadata, checkpoints, event \
           logs).  Restarting a daemon on an existing directory resumes every \
           in-flight job from its last checkpoint.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains of the shared evaluation pool all jobs multiplex over \
           (default 1 = evaluate on the scheduler domain).  Clamped to the \
           machine's cores unless $(b,--allow-oversubscribe) is given.")

let allow_oversubscribe_arg =
  Arg.(
    value & flag
    & info [ "allow-oversubscribe" ]
        ~doc:
          "Permit $(b,--jobs) beyond the machine's cores.  Oversubscription \
           consistently loses wall-clock time on this workload, so it is \
           opt-in.")

let checkpoint_every_arg =
  Arg.(
    value
    & opt int Server.default_checkpoint_every
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Snapshot every running job's state every N GA generations.")

let keep_checkpoints_arg =
  Arg.(
    value
    & opt int Server.default_keep_checkpoints
    & info [ "keep-checkpoints" ] ~docv:"K"
        ~doc:
          "Rotated checkpoint generations kept per job (checkpoint.snap, \
           checkpoint.snap.1, ...).  With K >= 2 a corrupted newest \
           checkpoint is quarantined at restart and recovery falls back to \
           the previous generation instead of rerunning from scratch.")

let max_jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "max-jobs" ] ~docv:"N"
        ~doc:
          "Refuse new submissions (with a typed, retryable busy response) \
           while N jobs are already queued or running.  0 = unbounded.")

let read_deadline_arg =
  Arg.(
    value
    & opt float Server.default_read_deadline
    & info [ "read-deadline" ] ~docv:"SECONDS"
        ~doc:
          "Drop a connection that stalls mid-frame for this long (0 = \
           never).  Idle clients between requests are never dropped.")

let auth_token_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "auth-token" ] ~docv:"TOKEN"
        ~doc:
          "Require every TCP request to carry this shared-secret token \
           (compared in constant time).  Unix-socket clients are never \
           challenged: the socket file's permissions are their credential.")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Additionally listen on a TCP address, e.g. 127.0.0.1:7433.")

let chaos_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "chaos-seed" ] ~docv:"SEED"
        ~doc:
          "Arm deterministic fault injection seeded by SEED: worker crashes, \
           torn checkpoint writes, dropped accepts, garbage frames and \
           scheduler stalls fire on replayable per-site schedules.  The same \
           seed and plan reproduce the same fault sequence bit for bit.  \
           Testing only.")

let chaos_plan_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos-plan" ] ~docv:"PLAN"
        ~doc:
          "Override the default fault plan: \
           site:probability[:limit[:delay]] entries separated by ';', e.g. \
           'pool.worker_raise:0.1:5;server.accept_drop:0.25'.  Only \
           meaningful with $(b,--chaos-seed).")

let serve socket state_dir jobs allow_oversubscribe checkpoint_every
    keep_checkpoints max_jobs read_deadline auth_token tcp chaos_seed chaos_plan
    =
  let tcp =
    match tcp with
    | None -> Ok None
    | Some spec -> (
      match String.rindex_opt spec ':' with
      | Some i -> (
        let host = String.sub spec 0 i in
        match int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) with
        | Some port -> Ok (Some (host, port))
        | None -> Error (`Msg ("invalid port in --tcp " ^ spec)))
      | None -> Error (`Msg ("expected HOST:PORT in --tcp " ^ spec)))
  in
  let chaos =
    match chaos_seed with
    | None -> (
      match chaos_plan with
      | None -> Ok None
      | Some _ -> Error (`Msg "--chaos-plan requires --chaos-seed"))
    | Some seed -> (
      let text = Option.value chaos_plan ~default:Fault.default_plan in
      match Fault.plan_of_string text with
      | Ok plan -> Ok (Some (seed, plan))
      | Error message -> Error (`Msg ("invalid --chaos-plan: " ^ message)))
  in
  match (tcp, chaos) with
  | (Error _ as e), _ -> e
  | _, (Error _ as e) -> e
  | Ok tcp, Ok chaos ->
    (match chaos with
    | None -> ()
    | Some (seed, plan) ->
      Fault.arm ~seed plan;
      Printf.eprintf "mmsynthd: chaos armed (seed %d, plan %s)\n%!" seed
        (Fault.plan_to_string plan));
    let pool_jobs = Pool.clamp_jobs ~allow_oversubscribe jobs in
    if pool_jobs <> jobs then
      Printf.eprintf
        "mmsynthd: clamping --jobs %d to %d cores (pass --allow-oversubscribe \
         to override)\n\
         %!"
        jobs pool_jobs;
    Printf.printf "mmsynthd: listening on %s (state: %s, pool: %d)\n%!" socket
      state_dir pool_jobs;
    Server.run
      {
        Server.socket_path = socket;
        tcp;
        state_dir;
        pool_jobs;
        checkpoint_every;
        keep_checkpoints;
        max_jobs;
        read_deadline;
        auth_token;
      };
    Ok ()

let () =
  let term =
    Term.(
      term_result
        (const serve $ socket_arg $ state_dir_arg $ jobs_arg
       $ allow_oversubscribe_arg $ checkpoint_every_arg $ keep_checkpoints_arg
       $ max_jobs_arg $ read_deadline_arg $ auth_token_arg $ tcp_arg
       $ chaos_seed_arg $ chaos_plan_arg))
  in
  let info =
    Cmd.info "mmsynthd" ~version:"1.0.0"
      ~doc:
        "Long-running multi-mode co-synthesis service: submit, watch and \
         cancel jobs over a socket; survives kill -9 via per-job checkpoints."
  in
  exit (Cmd.eval (Cmd.v info term))
