(* Tests for mm_energy: the Eq. (1) power model and shutdown analysis. *)

module Arch = Mm_arch.Architecture
module List_scheduler = Mm_sched.List_scheduler
module Schedule = Mm_sched.Schedule
module Power = Mm_energy.Power
module F = Fixtures

let schedule ~arch ~mapping ~graph ~period =
  List_scheduler.run
    (List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech:(F.tech arch) ~mapping
       ~instances:(fun ~pe:_ ~ty:_ -> 1)
       ~period ())

let test_mode_power_all_software () =
  let arch = F.arch () in
  let graph = F.chain_graph () in
  let sched = schedule ~arch ~mapping:[| 0; 0; 0 |] ~graph ~period:0.1 in
  let mp = Power.mode_power ~arch ~schedule:sched ~dyn_energy:5e-3 in
  Alcotest.(check (float 1e-12)) "dyn = E/period" 5e-2 mp.Power.dyn_power;
  Alcotest.(check (list int)) "only GPP active" [ 0 ] mp.Power.active_pes;
  Alcotest.(check (list int)) "ASIC shut down" [ 1 ] mp.Power.shut_down_pes;
  Alcotest.(check (list int)) "bus shut down" [ 0 ] mp.Power.shut_down_cls;
  (* Static power: only the GPP's 1 mW. *)
  Alcotest.(check (float 1e-12)) "static" 1e-3 mp.Power.static_power;
  Alcotest.(check (float 1e-12)) "total" (5e-2 +. 1e-3) (Power.total mp)

let test_mode_power_crossing () =
  let arch = F.arch () in
  let graph = F.chain_graph () in
  let sched = schedule ~arch ~mapping:[| 0; 1; 0 |] ~graph ~period:0.1 in
  let mp = Power.mode_power ~arch ~schedule:sched ~dyn_energy:1e-3 in
  Alcotest.(check (list int)) "both PEs active" [ 0; 1 ] mp.Power.active_pes;
  Alcotest.(check (list int)) "bus active" [ 0 ] mp.Power.active_cls;
  Alcotest.(check (list int)) "nothing shut down" [] mp.Power.shut_down_pes;
  (* 1 mW GPP + 0.5 mW ASIC + 0.1 mW bus. *)
  Alcotest.(check (float 1e-12)) "static sums" 1.6e-3 mp.Power.static_power

let test_average_weighted () =
  let arch = F.arch () in
  let graph = F.chain_graph () in
  let sched0 = schedule ~arch ~mapping:[| 0; 0; 0 |] ~graph ~period:0.1 in
  let sched1 = { (schedule ~arch ~mapping:[| 0; 0; 0 |] ~graph ~period:0.1) with Schedule.mode_id = 1 } in
  let mp0 = Power.mode_power ~arch ~schedule:sched0 ~dyn_energy:1e-3 in
  let mp1 = Power.mode_power ~arch ~schedule:sched1 ~dyn_energy:3e-3 in
  let avg = Power.average ~probabilities:[| 0.25; 0.75 |] [| mp0; mp1 |] in
  let expected = (0.25 *. Power.total mp0) +. (0.75 *. Power.total mp1) in
  Alcotest.(check (float 1e-12)) "Eq. (1)" expected avg

let test_average_length_mismatch () =
  let arch = F.arch () in
  let graph = F.chain_graph () in
  let sched = schedule ~arch ~mapping:[| 0; 0; 0 |] ~graph ~period:0.1 in
  let mp = Power.mode_power ~arch ~schedule:sched ~dyn_energy:1e-3 in
  Alcotest.check_raises "mismatch" (Invalid_argument "Power.average: length mismatch")
    (fun () -> ignore (Power.average ~probabilities:[| 1.0 |] [| mp; mp |]))

let test_average_of_omsm () =
  let spec =
    F.spec_of_graphs ~probabilities:[| 0.1; 0.9 |] [ F.chain_graph (); F.chain_graph () ]
  in
  let omsm = Mm_cosynth.Spec.omsm spec in
  let arch = Mm_cosynth.Spec.arch spec in
  let graph = F.chain_graph () in
  let sched0 = schedule ~arch ~mapping:[| 0; 0; 0 |] ~graph ~period:1.0 in
  let sched1 = { sched0 with Schedule.mode_id = 1 } in
  let mp0 = Power.mode_power ~arch ~schedule:sched0 ~dyn_energy:1e-3 in
  let mp1 = Power.mode_power ~arch ~schedule:sched1 ~dyn_energy:2e-3 in
  let expected = (0.1 *. Power.total mp0) +. (0.9 *. Power.total mp1) in
  Alcotest.(check (float 1e-12)) "weights from OMSM" expected
    (Power.average_of_omsm ~omsm [| mp0; mp1 |])

let prop_average_between_extremes =
  QCheck.Test.make ~name:"weighted average within [min,max] mode power" ~count:200
    QCheck.(pair (float_range 0.0 1.0) (pair (float_range 0.0 10.0) (float_range 0.0 10.0)))
    (fun (p, (e0, e1)) ->
      let arch = F.arch () in
      let graph = F.chain_graph () in
      let sched0 = schedule ~arch ~mapping:[| 0; 0; 0 |] ~graph ~period:1.0 in
      let sched1 = { sched0 with Schedule.mode_id = 1 } in
      let mp0 = Power.mode_power ~arch ~schedule:sched0 ~dyn_energy:e0 in
      let mp1 = Power.mode_power ~arch ~schedule:sched1 ~dyn_energy:e1 in
      let avg = Power.average ~probabilities:[| p; 1.0 -. p |] [| mp0; mp1 |] in
      let lo = Float.min (Power.total mp0) (Power.total mp1) in
      let hi = Float.max (Power.total mp0) (Power.total mp1) in
      avg >= lo -. 1e-9 && avg <= hi +. 1e-9)

(* --- Trace_sim ------------------------------------------------------------- *)

module Trace_sim = Mm_energy.Trace_sim

let two_mode_spec () =
  F.spec_of_graphs ~probabilities:[| 0.2; 0.8 |] [ F.chain_graph (); F.chain_graph () ]

let mode_powers_for spec dyn_energies =
  let arch = Mm_cosynth.Spec.arch spec in
  let graph = F.chain_graph () in
  Array.mapi
    (fun mode dyn_energy ->
      let sched =
        { (schedule ~arch ~mapping:[| 0; 0; 0 |] ~graph ~period:1.0) with
          Schedule.mode_id = mode }
      in
      Power.mode_power ~arch ~schedule:sched ~dyn_energy)
    dyn_energies

let test_holding_times_match_profile () =
  let spec = two_mode_spec () in
  let omsm = Mm_cosynth.Spec.omsm spec in
  let h = Trace_sim.holding_times_for omsm in
  (* Two modes alternating: π uniform, so h ∝ Ψ. *)
  Alcotest.(check (float 1e-6)) "ratio follows probabilities" (0.8 /. 0.2)
    (h.(1) /. h.(0))

let test_simulate_structure () =
  let spec = two_mode_spec () in
  let omsm = Mm_cosynth.Spec.omsm spec in
  let mode_powers = mode_powers_for spec [| 1e-3; 2e-3 |] in
  let rng = Mm_util.Prng.create ~seed:5 in
  let result = Trace_sim.simulate ~omsm ~mode_powers ~horizon:100.0 rng in
  (* Times add up to the horizon. *)
  let total = Array.fold_left ( +. ) 0.0 result.Trace_sim.time_in_mode in
  Alcotest.(check (float 1e-6)) "covers horizon" 100.0 total;
  (* Segments are chronological and contiguous. *)
  let rec check_contiguous = function
    | (a : Trace_sim.segment) :: (b :: _ as rest) ->
      Alcotest.(check (float 1e-9)) "contiguous" a.Trace_sim.leave b.Trace_sim.enter;
      check_contiguous rest
    | [ last ] -> Alcotest.(check (float 1e-9)) "ends at horizon" 100.0 last.Trace_sim.leave
    | [] -> Alcotest.fail "no segments"
  in
  check_contiguous result.Trace_sim.segments

let test_simulate_converges_to_analytic () =
  let spec = two_mode_spec () in
  let omsm = Mm_cosynth.Spec.omsm spec in
  let mode_powers = mode_powers_for spec [| 1e-3; 2e-3 |] in
  let analytic = Power.average_of_omsm ~omsm mode_powers in
  let rng = Mm_util.Prng.create ~seed:9 in
  (* Long horizon: thousands of visits. *)
  let result = Trace_sim.simulate ~omsm ~mode_powers ~horizon:50_000.0 rng in
  let relative_error = Float.abs (result.Trace_sim.empirical_power -. analytic) /. analytic in
  Alcotest.(check bool)
    (Printf.sprintf "within 5%% (got %.2f%%)" (relative_error *. 100.0))
    true (relative_error < 0.05);
  (* Empirical usage matches the published profile. *)
  Alcotest.(check bool) "mode 1 dominates" true
    (result.Trace_sim.empirical_probability.(1) > 0.7)

let test_simulate_absorbing_mode () =
  (* One mode with no outgoing transition absorbs the horizon. *)
  let graph = F.chain_graph () in
  let arch = F.arch () in
  let omsm =
    Mm_omsm.Omsm.make ~name:"absorbing"
      ~modes:
        [ Mm_omsm.Mode.make ~id:0 ~name:"only" ~graph ~period:1.0 ~probability:1.0 ]
      ~transitions:[]
  in
  let sched = schedule ~arch ~mapping:[| 0; 0; 0 |] ~graph ~period:1.0 in
  let mode_powers = [| Power.mode_power ~arch ~schedule:sched ~dyn_energy:5e-3 |] in
  let rng = Mm_util.Prng.create ~seed:1 in
  let result = Trace_sim.simulate ~omsm ~mode_powers ~horizon:10.0 rng in
  Alcotest.(check int) "no transitions" 0 result.Trace_sim.n_transitions;
  Alcotest.(check (float 1e-9)) "all time in mode 0" 10.0 result.Trace_sim.time_in_mode.(0);
  Alcotest.(check (float 1e-9)) "power equals the mode's" (Power.total mode_powers.(0))
    result.Trace_sim.empirical_power

let test_simulate_validation () =
  let spec = two_mode_spec () in
  let omsm = Mm_cosynth.Spec.omsm spec in
  let mode_powers = mode_powers_for spec [| 1e-3; 2e-3 |] in
  let rng = Mm_util.Prng.create ~seed:1 in
  (match Trace_sim.simulate ~omsm ~mode_powers ~horizon:0.0 rng with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero horizon accepted");
  match Trace_sim.simulate ~omsm ~mode_powers:[| mode_powers.(0) |] ~horizon:1.0 rng with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted"

(* --- Battery ---------------------------------------------------------------- *)

module Battery = Mm_energy.Battery

let test_battery_linear_case () =
  (* k = 1: plain capacity / current. *)
  let cell = Battery.make ~capacity_ah:1.0 ~voltage:2.0 ~peukert:1.0 () in
  (* 0.2 W at 2 V = 0.1 A; 1 Ah / 0.1 A = 10 h. *)
  Alcotest.(check (float 1e-9)) "ten hours" 10.0
    (Battery.lifetime_hours cell ~average_power:0.2)

let test_battery_peukert_penalises_high_current () =
  let ideal = Battery.make ~capacity_ah:1.0 ~voltage:2.0 ~peukert:1.0 ~rated_hours:20.0 () in
  let real = Battery.make ~capacity_ah:1.0 ~voltage:2.0 ~peukert:1.3 ~rated_hours:20.0 () in
  (* Above the rated current, a higher exponent shortens life. *)
  let heavy_draw = 2.0 (* W -> 1 A >> C/rated_hours *) in
  Alcotest.(check bool) "peukert shortens life under heavy draw" true
    (Battery.lifetime_hours real ~average_power:heavy_draw
    < Battery.lifetime_hours ideal ~average_power:heavy_draw)

let test_battery_monotone () =
  let cell = Battery.phone_cell in
  let l1 = Battery.lifetime_hours cell ~average_power:1e-3 in
  let l2 = Battery.lifetime_hours cell ~average_power:2e-3 in
  Alcotest.(check bool) "less power, longer life" true (l1 > l2)

let test_battery_extension () =
  let cell = Battery.make ~capacity_ah:1.0 ~voltage:2.0 ~peukert:1.0 () in
  (* Halving power doubles lifetime: +100 %. *)
  Alcotest.(check (float 1e-6)) "halving doubles" 100.0
    (Battery.extension_percent cell ~from_power:0.2 ~to_power:0.1)

let test_battery_validation () =
  (match Battery.make ~capacity_ah:0.0 ~voltage:1.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero capacity accepted");
  (match Battery.make ~capacity_ah:1.0 ~voltage:1.0 ~peukert:0.9 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "peukert < 1 accepted");
  match Battery.current Battery.phone_cell ~average_power:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero power accepted"

let () =
  Alcotest.run "mm_energy"
    [
      ( "power",
        [
          Alcotest.test_case "all software mode" `Quick test_mode_power_all_software;
          Alcotest.test_case "crossing mode" `Quick test_mode_power_crossing;
          Alcotest.test_case "weighted average" `Quick test_average_weighted;
          Alcotest.test_case "length mismatch" `Quick test_average_length_mismatch;
          Alcotest.test_case "omsm weights" `Quick test_average_of_omsm;
          QCheck_alcotest.to_alcotest prop_average_between_extremes;
        ] );
      ( "trace-sim",
        [
          Alcotest.test_case "holding times" `Quick test_holding_times_match_profile;
          Alcotest.test_case "structure" `Quick test_simulate_structure;
          Alcotest.test_case "converges to Eq.(1)" `Quick test_simulate_converges_to_analytic;
          Alcotest.test_case "absorbing mode" `Quick test_simulate_absorbing_mode;
          Alcotest.test_case "validation" `Quick test_simulate_validation;
        ] );
      ( "battery",
        [
          Alcotest.test_case "linear case" `Quick test_battery_linear_case;
          Alcotest.test_case "peukert penalty" `Quick test_battery_peukert_penalises_high_current;
          Alcotest.test_case "monotone" `Quick test_battery_monotone;
          Alcotest.test_case "extension" `Quick test_battery_extension;
          Alcotest.test_case "validation" `Quick test_battery_validation;
        ] );
    ]
