(* Tests for Mm_cosynth.Audit: honest evaluations audit clean (including
   full synthesis runs across evaluation strategies and DVS settings),
   and deliberately tampered evaluations are caught with the right
   violation kind. *)

module Fitness = Mm_cosynth.Fitness
module Mapping = Mm_cosynth.Mapping
module Synthesis = Mm_cosynth.Synthesis
module Audit = Mm_cosynth.Audit
module Transition_time = Mm_cosynth.Transition_time
module Schedule = Mm_sched.Schedule
module Scaling = Mm_dvs.Scaling

let no_dvs = Fitness.default_config

let with_dvs =
  { Fitness.default_config with Fitness.dvs = Fitness.Dvs Scaling.default_config }

let pp_report report = Format.asprintf "%a" Audit.pp_report report

let check_clean name config spec eval =
  let report = Audit.check ~config ~spec eval in
  if not report.Audit.clean then Alcotest.failf "%s:@.%s" name (pp_report report)

(* --- Honest evaluations are clean ------------------------------------------ *)

let test_clean_motivational () =
  let spec = Mm_benchgen.Motivational.spec () in
  List.iter
    (fun (cname, config) ->
      List.iter
        (fun arrays ->
          let eval = Fitness.evaluate_mapping config spec (Mapping.of_arrays spec arrays) in
          check_clean (Printf.sprintf "motivational %s" cname) config spec eval)
        [
          (* Fig. 2b, Fig. 2c, all-software. *)
          [| [| 0; 0; 1 |]; [| 0; 1; 0 |] |];
          [| [| 0; 0; 0 |]; [| 0; 1; 1 |] |];
          [| [| 0; 0; 0 |]; [| 0; 0; 0 |] |];
        ])
    [ ("no-DVS", no_dvs); ("DVS", with_dvs) ]

let test_clean_smartphone () =
  let spec = Mm_benchgen.Smartphone.spec () in
  let genome =
    match Synthesis.anchors spec with
    | g :: _ -> g
    | [] -> Alcotest.fail "smartphone has no anchor"
  in
  List.iter
    (fun (cname, config) ->
      check_clean
        (Printf.sprintf "smartphone %s" cname)
        config spec
        (Fitness.evaluate config spec genome))
    [ ("no-DVS", no_dvs); ("DVS", with_dvs) ]

(* Full synthesis runs, audit on: serial, pooled and cached evaluation
   must all hand the auditor a clean winner, with and without DVS. *)
let test_synthesis_audited () =
  let ga =
    {
      Mm_ga.Engine.default_config with
      Mm_ga.Engine.max_generations = 12;
      population_size = 16;
    }
  in
  List.iter
    (fun (bench, spec) ->
      List.iter
        (fun (strategy, jobs, eval_cache) ->
          List.iter
            (fun (cname, fitness) ->
              let config =
                {
                  Synthesis.default_config with
                  Synthesis.fitness;
                  ga;
                  jobs;
                  eval_cache;
                  audit = true;
                }
              in
              let result = Synthesis.run ~config ~spec ~seed:3 () in
              match result.Synthesis.audit with
              | Some report when report.Audit.clean -> ()
              | Some report ->
                Alcotest.failf "%s %s %s:@.%s" bench strategy cname (pp_report report)
              | None -> Alcotest.fail "audit requested but report absent")
            [ ("no-DVS", no_dvs); ("DVS", with_dvs) ])
        [ ("serial", 1, 0); ("pooled", 2, 0); ("cached", 1, 4096) ])
    [
      ("motivational", Mm_benchgen.Motivational.spec ());
      ("smartphone", Mm_benchgen.Smartphone.spec ());
    ]

(* --- Tampered evaluations are caught ---------------------------------------- *)

let kinds report = List.map (fun (v : Audit.violation) -> v.Audit.kind) report.Audit.violations

let expect_kind name kind report =
  if report.Audit.clean then Alcotest.failf "%s: tamper not caught" name;
  if not (List.mem kind (kinds report)) then
    Alcotest.failf "%s: kinds {%s} miss %s" name
      (String.concat ", " (List.map Audit.kind_to_string (kinds report)))
      (Audit.kind_to_string kind)

let tamper_slot mode task f (e : Fitness.eval) =
  let schedules = Array.copy e.Fitness.schedules in
  let s = schedules.(mode) in
  let slots = Array.copy s.Schedule.task_slots in
  slots.(task) <- f slots.(task);
  schedules.(mode) <- { s with Schedule.task_slots = slots };
  { e with Fitness.schedules = schedules }

let tamper_scaling mode f (e : Fitness.eval) =
  let scalings = Array.copy e.Fitness.scalings in
  scalings.(mode) <- f scalings.(mode);
  { e with Fitness.scalings = scalings }

let test_tampering () =
  let spec = Mm_benchgen.Motivational.spec () in
  let eval =
    Fitness.evaluate_mapping no_dvs spec
      (Mapping.of_arrays spec [| [| 0; 0; 1 |]; [| 0; 1; 0 |] |])
  in
  let audit e = Audit.check ~config:no_dvs ~spec e in
  check_clean "untampered" no_dvs spec eval;

  (* Direct fitness tampering: power win out of thin air. *)
  expect_kind "fitness x2" Audit.Fitness_claim
    (audit { eval with Fitness.fitness = eval.Fitness.fitness *. 2.0 });
  (* Timing penalty claimed without any late task. *)
  expect_kind "timing factor" Audit.Deadline_claim
    (audit { eval with Fitness.timing_factor = 2.0 });
  (* Area feasibility flipped against the allocation. *)
  expect_kind "area flip" Audit.Area_claim
    (audit { eval with Fitness.area_feasible = not eval.Fitness.area_feasible });
  (* Reported average power halved. *)
  expect_kind "power x0.5" Audit.Power_mismatch
    (audit { eval with Fitness.true_power = eval.Fitness.true_power /. 2.0 });
  (* Transition times shifted past their OMSM bounds. *)
  let late =
    List.map
      (fun (t : Transition_time.entry) ->
        { t with Transition_time.time = t.Transition_time.time +. 1.0 })
      eval.Fitness.transition_times
  in
  expect_kind "transition +1s" Audit.Transition_bound
    (audit { eval with Fitness.transition_times = late });
  (* A slot claiming half its implementation's execution time. *)
  expect_kind "duration x0.5" Audit.Wrong_duration
    (audit
       (tamper_slot 0 0
          (fun slot -> { slot with Schedule.duration = slot.Schedule.duration /. 2.0 })
          eval));
  (* Two slots overlapping on one software PE (tasks 0 and 1 share PE0). *)
  expect_kind "overlap" Audit.Resource_overlap
    (audit
       (tamper_slot 0 1
          (fun slot ->
            { slot with Schedule.start = eval.Fitness.schedules.(0).Schedule.task_slots.(0).Schedule.start })
          eval));
  (* Consumer moved before its producer, overlap-free: tasks 0 -> 1 on
     PE0 swap places on the timeline. *)
  expect_kind "precedence inversion" Audit.Precedence
    (audit
       (tamper_slot 0 0
          (fun slot -> { slot with Schedule.start = slot.Schedule.start +. 0.1 })
          (tamper_slot 0 1 (fun slot -> { slot with Schedule.start = 0.0 }) eval)));
  (* Task energy doubled: the partition no longer balances. *)
  expect_kind "energy x2" Audit.Energy_mismatch
    (audit
       (tamper_scaling 0
          (fun sc ->
            let task_energy = Array.copy sc.Scaling.task_energy in
            task_energy.(0) <- task_energy.(0) *. 2.0;
            { sc with Scaling.task_energy })
          eval));
  (* Stretched finishes pushed past the period while still claiming
     timing feasibility. *)
  expect_kind "late finish" Audit.Deadline_claim
    (audit
       (tamper_scaling 0
          (fun sc ->
            {
              sc with
              Scaling.stretched_finish =
                Array.map (fun f -> f +. 10.0) sc.Scaling.stretched_finish;
            })
          eval));
  (* A voltage reported for a task on a rail-less PE. *)
  expect_kind "phantom voltage" Audit.Voltage_off_table
    (audit
       (tamper_scaling 0
          (fun sc ->
            let task_voltages = Array.copy sc.Scaling.task_voltages in
            task_voltages.(0) <- 9.99;
            { sc with Scaling.task_voltages })
          eval));
  (* check_exn raises on a dirty report. *)
  match
    Audit.check_exn ~config:no_dvs ~spec
      { eval with Fitness.fitness = eval.Fitness.fitness *. 2.0 }
  with
  | () -> Alcotest.fail "check_exn accepted a tampered evaluation"
  | exception Audit.Audit_violation report ->
    expect_kind "check_exn" Audit.Fitness_claim report

(* Off-table voltages on a DVS rail are caught too. *)
let test_voltage_off_table_dvs () =
  let spec = Mm_benchgen.Smartphone.spec () in
  let genome =
    match Synthesis.anchors spec with
    | g :: _ -> g
    | [] -> Alcotest.fail "smartphone has no anchor"
  in
  let eval = Fitness.evaluate with_dvs spec genome in
  (* Find a mode/task with a finite (rail-backed) voltage and nudge it
     off the discrete table. *)
  let target = ref None in
  Array.iteri
    (fun mode (sc : Scaling.t) ->
      if !target = None then
        Array.iteri
          (fun task v ->
            if !target = None && Float.is_finite v then target := Some (mode, task))
          sc.Scaling.task_voltages)
    eval.Fitness.scalings;
  match !target with
  | None -> Alcotest.fail "no rail-backed task found"
  | Some (mode, task) ->
    let tampered =
      let scalings = Array.copy eval.Fitness.scalings in
      let sc = scalings.(mode) in
      let task_voltages = Array.copy sc.Scaling.task_voltages in
      task_voltages.(task) <- task_voltages.(task) *. 0.917;
      scalings.(mode) <- { sc with Scaling.task_voltages };
      { eval with Fitness.scalings = scalings }
    in
    expect_kind "off-table voltage" Audit.Voltage_off_table
      (Audit.check ~config:with_dvs ~spec tampered)

(* --- Auditing never perturbs the trajectory --------------------------------- *)

let test_fingerprint_invariant () =
  Alcotest.(check string)
    "fingerprint ignores audit"
    (Synthesis.config_fingerprint Synthesis.default_config)
    (Synthesis.config_fingerprint { Synthesis.default_config with Synthesis.audit = true })

let () =
  Alcotest.run "audit"
    [
      ( "clean",
        [
          Alcotest.test_case "motivational evaluations" `Quick test_clean_motivational;
          Alcotest.test_case "smartphone anchor" `Quick test_clean_smartphone;
          Alcotest.test_case "synthesis runs" `Slow test_synthesis_audited;
        ] );
      ( "tampering",
        [
          Alcotest.test_case "injected violations" `Quick test_tampering;
          Alcotest.test_case "off-table DVS voltage" `Quick test_voltage_off_table_dvs;
        ] );
      ( "config",
        [ Alcotest.test_case "fingerprint invariant" `Quick test_fingerprint_invariant ] );
    ]
