(* Tests for mm_cosynth: Spec, Mapping, Core_alloc, Transition_time,
   Fitness, Improvement, Synthesis. *)

module Task_type = Mm_taskgraph.Task_type
module Task = Mm_taskgraph.Task
module Graph = Mm_taskgraph.Graph
module Mobility = Mm_taskgraph.Mobility
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Arch = Mm_arch.Architecture
module Tech_lib = Mm_arch.Tech_lib
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Omsm = Mm_omsm.Omsm
module Spec = Mm_cosynth.Spec
module Mapping = Mm_cosynth.Mapping
module Core_alloc = Mm_cosynth.Core_alloc
module Transition_time = Mm_cosynth.Transition_time
module Fitness = Mm_cosynth.Fitness
module Improvement = Mm_cosynth.Improvement
module Synthesis = Mm_cosynth.Synthesis
module Engine = Mm_ga.Engine
module Prng = Mm_util.Prng
module F = Fixtures

let two_mode_spec ?probabilities () =
  F.spec_of_graphs ?probabilities [ F.chain_graph (); F.fork_graph () ]

(* --- Spec ----------------------------------------------------------------- *)

let test_spec_positions () =
  let spec = two_mode_spec () in
  Alcotest.(check int) "3 + 4 positions" 7 (Spec.n_positions spec);
  let p0 = Spec.position spec 0 and p4 = Spec.position spec 4 in
  Alcotest.(check int) "first mode" 0 p0.Spec.mode;
  Alcotest.(check int) "second mode" 1 p4.Spec.mode;
  Alcotest.(check int) "task within mode" 1 p4.Spec.task;
  Alcotest.(check int) "index_of inverse" 4 (Spec.index_of spec ~mode:1 ~task:1)

let test_spec_candidates () =
  let spec = two_mode_spec () in
  (* Every fixture type runs on both PEs. *)
  for i = 0 to Spec.n_positions spec - 1 do
    Alcotest.(check int) "two candidates" 2 (Array.length (Spec.candidates spec i))
  done;
  Alcotest.(check (option int)) "gene for PE1" (Some 1) (Spec.candidate_index spec 0 ~pe_id:1);
  Alcotest.(check (option int)) "unknown PE" None (Spec.candidate_index spec 0 ~pe_id:9)

let test_spec_rejects_unmappable () =
  (* A type with no implementation anywhere must be rejected. *)
  let orphan = Task_type.make ~id:9 ~name:"orphan" in
  let graph =
    Graph.make ~name:"g" ~tasks:[| Task.make ~id:0 ~name:"t" ~ty:orphan () |] ~edges:[]
  in
  let arch = F.arch () in
  match
    Spec.make ~omsm:(F.omsm_of_graphs [ graph ]) ~arch ~tech:(F.tech arch)
  with
  | exception Spec.Invalid _ -> ()
  | _ -> Alcotest.fail "unmappable task accepted"

let test_spec_core_area () =
  let spec = two_mode_spec () in
  Alcotest.(check (float 1e-9)) "A on ASIC" 100.0 (Spec.core_area spec ~pe:1 ~ty_id:0);
  Alcotest.(check (float 1e-9)) "sw has no area" 0.0 (Spec.core_area spec ~pe:0 ~ty_id:0);
  Alcotest.(check (float 1e-9)) "unknown type" 0.0 (Spec.core_area spec ~pe:1 ~ty_id:99)

(* --- Mapping ----------------------------------------------------------------- *)

let test_mapping_roundtrip () =
  let spec = two_mode_spec () in
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 50 do
    let genome = Mm_ga.Genome.random rng ~counts:(Spec.gene_counts spec) in
    let mapping = Mapping.of_genome spec genome in
    Alcotest.(check (array int)) "roundtrip" genome (Mapping.to_genome spec mapping)
  done

let test_mapping_queries () =
  let spec = two_mode_spec () in
  let mapping = Mapping.of_arrays spec [| [| 0; 1; 0 |]; [| 1; 1; 0; 0 |] |] in
  Alcotest.(check int) "pe_of" 1 (Mapping.pe_of mapping ~mode:0 ~task:1);
  Alcotest.(check (list int)) "tasks on PE1 mode1" [ 0; 1 ]
    (Mapping.tasks_on_pe mapping ~mode:1 ~pe:1);
  Alcotest.(check (list int)) "pes used" [ 0; 1 ] (Mapping.pes_used mapping ~mode:0)

let test_mapping_of_arrays_validates () =
  let spec = two_mode_spec () in
  (match Mapping.of_arrays spec [| [| 0; 0; 0 |] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong mode count accepted");
  match Mapping.of_arrays spec [| [| 0; 0; 9 |]; [| 0; 0; 0; 0 |] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown PE accepted"

(* --- Core_alloc ------------------------------------------------------------- *)

let mobilities_for spec mapping =
  let omsm = Spec.omsm spec in
  Array.init (Omsm.n_modes omsm) (fun mode ->
      let graph = Mode.graph (Omsm.mode omsm mode) in
      Mobility.compute graph
        ~exec_time:(fun task ->
          let pe = Arch.pe (Spec.arch spec) (Mapping.pe_of mapping ~mode ~task:(Task.id task)) in
          (Tech_lib.find_exn (Spec.tech spec) ~ty:(Task.ty task) ~pe).Tech_lib.exec_time)
        ~comm_time:(fun _ -> 0.0)
        ~horizon:(Mode.period (Omsm.mode omsm mode)))

let test_alloc_software_only () =
  let spec = two_mode_spec () in
  let mapping = Mapping.of_arrays spec [| [| 0; 0; 0 |]; [| 0; 0; 0; 0 |] |] in
  let alloc = Core_alloc.allocate spec mapping ~mobilities:(mobilities_for spec mapping) in
  Alcotest.(check (float 1e-9)) "no area used" 0.0 (Core_alloc.area_used alloc ~pe:1);
  Alcotest.(check bool) "feasible" true (Core_alloc.area_feasible alloc);
  Alcotest.(check int) "no instances" 0 (Core_alloc.instances alloc ~mode:0 ~pe:1 ~ty:0)

let test_alloc_asic_union_across_modes () =
  let spec = two_mode_spec () in
  (* Mode 0 puts type A (task 0) on the ASIC; mode 1 puts type C (task 3). *)
  let mapping = Mapping.of_arrays spec [| [| 1; 0; 0 |]; [| 0; 0; 0; 1 |] |] in
  let alloc = Core_alloc.allocate spec mapping ~mobilities:(mobilities_for spec mapping) in
  (* ASIC cores are static: both types occupy area in every mode. *)
  Alcotest.(check int) "A present in mode 1 too" 1
    (Core_alloc.instances alloc ~mode:1 ~pe:1 ~ty:0);
  Alcotest.(check (float 1e-9)) "area = 100 + 150" 250.0 (Core_alloc.area_used alloc ~pe:1);
  Alcotest.(check bool) "feasible" true (Core_alloc.area_feasible alloc)

let test_alloc_area_violation () =
  (* Tiny ASIC: every mapped type overflows. *)
  let spec =
    F.spec_of_graphs ~area:120.0 [ F.chain_graph (); F.fork_graph () ]
  in
  let mapping = Mapping.of_arrays spec [| [| 1; 1; 0 |]; [| 0; 0; 0; 0 |] |] in
  let alloc = Core_alloc.allocate spec mapping ~mobilities:(mobilities_for spec mapping) in
  (* Types A (100) + B (100) = 200 > 120. *)
  Alcotest.(check bool) "infeasible" false (Core_alloc.area_feasible alloc);
  Alcotest.(check (float 1e-9)) "excess" 80.0 (Core_alloc.area_excess alloc ~pe:1);
  Alcotest.(check bool) "ratio positive" true (Core_alloc.excess_ratio_sum alloc > 0.0)

let test_alloc_extra_instances_for_parallel_tasks () =
  (* Fork graph: two parallel type-B tasks on the ASIC with room to spare
     get a second core instance. *)
  let spec = F.spec_of_graphs [ F.fork_graph () ] in
  let mapping = Mapping.of_arrays spec [| [| 0; 1; 1; 0 |] |] in
  let alloc = Core_alloc.allocate spec mapping ~mobilities:(mobilities_for spec mapping) in
  Alcotest.(check int) "two B cores" 2 (Core_alloc.instances alloc ~mode:0 ~pe:1 ~ty:1);
  Alcotest.(check (float 1e-9)) "area doubles" 200.0 (Core_alloc.area_used alloc ~pe:1)

let test_alloc_extra_instances_respect_area () =
  (* Same, but the ASIC only fits one B core. *)
  let spec = F.spec_of_graphs ~area:150.0 [ F.fork_graph () ] in
  let mapping = Mapping.of_arrays spec [| [| 0; 1; 1; 0 |] |] in
  let alloc = Core_alloc.allocate spec mapping ~mobilities:(mobilities_for spec mapping) in
  Alcotest.(check int) "single B core" 1 (Core_alloc.instances alloc ~mode:0 ~pe:1 ~ty:1);
  Alcotest.(check bool) "feasible" true (Core_alloc.area_feasible alloc)

(* --- Transition_time ----------------------------------------------------------- *)

let fpga_spec () =
  (* GPP + FPGA; FPGA reconfigures at 1 ms per area unit. *)
  let gpp = Pe.make ~id:0 ~name:"GPP0" ~kind:Pe.Gpp ~static_power:1e-3 () in
  let fpga =
    Pe.make ~id:1 ~name:"FPGA1" ~kind:Pe.Fpga ~static_power:5e-4 ~area_capacity:300.0
      ~reconfig_time_per_area:1e-3 ()
  in
  let bus =
    Cl.make ~id:0 ~name:"BUS" ~connects:[ 0; 1 ] ~time_per_data:1e-3 ~transfer_power:0.05
      ~static_power:1e-4
  in
  let arch = Arch.make ~name:"fpga" ~pes:[ gpp; fpga ] ~cls:[ bus ] in
  let tech =
    List.fold_left
      (fun tech (ty, sw_ms, hw_ms, sw_p, hw_p, area) ->
        let tech =
          Tech_lib.add tech ~ty ~pe:gpp
            (Tech_lib.impl ~exec_time:(sw_ms *. 1e-3) ~dyn_power:sw_p ())
        in
        Tech_lib.add tech ~ty ~pe:fpga
          (Tech_lib.impl ~exec_time:(hw_ms *. 1e-3) ~dyn_power:hw_p ~area ()))
      Tech_lib.empty
      [
        (F.ty_a, 10.0, 1.0, 0.4, 0.004, 100.0);
        (F.ty_b, 20.0, 2.0, 0.5, 0.005, 100.0);
        (F.ty_c, 30.0, 3.0, 0.6, 0.006, 150.0);
      ]
  in
  let omsm =
    Omsm.make ~name:"fpga"
      ~modes:
        [
          Mode.make ~id:0 ~name:"O0" ~graph:(F.chain_graph ()) ~period:1.0 ~probability:0.5;
          Mode.make ~id:1 ~name:"O1" ~graph:(F.fork_graph ()) ~period:1.0 ~probability:0.5;
        ]
      ~transitions:
        [
          Transition.make ~src:0 ~dst:1 ~max_time:0.05;
          Transition.make ~src:1 ~dst:0 ~max_time:0.5;
        ]
  in
  Spec.make ~omsm ~arch ~tech

let test_transition_reconfig_time () =
  let spec = fpga_spec () in
  (* Mode 0 loads type A on the FPGA, mode 1 loads type B. *)
  let mapping = Mapping.of_arrays spec [| [| 1; 0; 0 |]; [| 0; 1; 0; 0 |] |] in
  let alloc = Core_alloc.allocate spec mapping ~mobilities:(mobilities_for spec mapping) in
  let entries = Transition_time.compute spec alloc in
  (match entries with
  | [ to_mode1; to_mode0 ] ->
    (* Entering mode 1 must load B (area 100 * 1 ms = 0.1 s) > 0.05 limit. *)
    Alcotest.(check (float 1e-9)) "reconfig 0->1" 0.1 to_mode1.Transition_time.time;
    Alcotest.(check bool) "violated" true (to_mode1.Transition_time.violation > 0.0);
    (* Entering mode 0 loads A (0.1 s) < 0.5 limit. *)
    Alcotest.(check (float 1e-9)) "reconfig 1->0" 0.1 to_mode0.Transition_time.time;
    Alcotest.(check (float 1e-9)) "no violation" 0.0 to_mode0.Transition_time.violation
  | _ -> Alcotest.fail "expected two entries");
  Alcotest.(check bool) "overall infeasible" false (Transition_time.feasible entries)

let test_transition_shared_type_no_reconfig () =
  let spec = fpga_spec () in
  (* Both modes use type A on the FPGA (chain task 0 / fork task 0):
     nothing to reconfigure. *)
  let mapping = Mapping.of_arrays spec [| [| 1; 0; 0 |]; [| 1; 0; 0; 0 |] |] in
  let alloc = Core_alloc.allocate spec mapping ~mobilities:(mobilities_for spec mapping) in
  let entries = Transition_time.compute spec alloc in
  List.iter
    (fun (e : Transition_time.entry) ->
      Alcotest.(check (float 1e-9)) "no reconfiguration" 0.0 e.Transition_time.time)
    entries;
  Alcotest.(check bool) "feasible" true (Transition_time.feasible entries)

let test_transition_asic_never_reconfigures () =
  let spec = two_mode_spec () in
  let mapping = Mapping.of_arrays spec [| [| 1; 1; 1 |]; [| 0; 0; 0; 0 |] |] in
  let alloc = Core_alloc.allocate spec mapping ~mobilities:(mobilities_for spec mapping) in
  List.iter
    (fun (e : Transition_time.entry) ->
      Alcotest.(check (float 1e-9)) "ASIC: zero" 0.0 e.Transition_time.time)
    (Transition_time.compute spec alloc)

(* --- Fitness: the Fig. 2 exact numbers ----------------------------------------- *)

let fig2_spec () =
  let table =
    [|
      ("A", 20.0, 10.0, 2.0, 0.010, 240.0);
      ("B", 28.0, 14.0, 2.2, 0.012, 300.0);
      ("C", 32.0, 16.0, 1.6, 0.023, 275.0);
      ("D", 26.0, 13.0, 3.1, 0.047, 245.0);
      ("E", 30.0, 15.0, 1.8, 0.015, 210.0);
      ("F", 24.0, 14.0, 2.2, 0.032, 280.0);
    |]
  in
  let types = Array.mapi (fun id (name, _, _, _, _, _) -> Task_type.make ~id ~name) table in
  let gpp = Pe.make ~id:0 ~name:"PE0" ~kind:Pe.Gpp ~static_power:0.0 () in
  let asic =
    Pe.make ~id:1 ~name:"PE1" ~kind:Pe.Asic ~static_power:0.0 ~area_capacity:600.0 ()
  in
  let bus =
    Cl.make ~id:0 ~name:"CL0" ~connects:[ 0; 1 ] ~time_per_data:1e-6 ~transfer_power:0.0
      ~static_power:0.0
  in
  let arch = Arch.make ~name:"fig2" ~pes:[ gpp; asic ] ~cls:[ bus ] in
  let tech =
    Array.fold_left
      (fun tech (i, (_, sw_ms, sw_mws, hw_ms, hw_mws, area)) ->
        let tech =
          Tech_lib.add tech ~ty:types.(i) ~pe:gpp
            (Tech_lib.impl ~exec_time:(sw_ms /. 1e3) ~dyn_power:(sw_mws /. sw_ms) ())
        in
        Tech_lib.add tech ~ty:types.(i) ~pe:asic
          (Tech_lib.impl ~exec_time:(hw_ms /. 1e3) ~dyn_power:(hw_mws /. hw_ms) ~area ()))
      Tech_lib.empty
      (Array.mapi (fun i row -> (i, row)) table)
  in
  let chain ~name ids =
    let tasks =
      Array.of_list
        (List.mapi (fun id ty_id -> Task.make ~id ~name:"t" ~ty:types.(ty_id) ()) ids)
    in
    let edges =
      List.init (Array.length tasks - 1) (fun i -> { Graph.src = i; dst = i + 1; data = 0.0 })
    in
    Graph.make ~name ~tasks ~edges
  in
  let omsm =
    Omsm.make ~name:"fig2"
      ~modes:
        [
          Mode.make ~id:0 ~name:"O1" ~graph:(chain ~name:"O1" [ 0; 1; 2 ]) ~period:1.0
            ~probability:0.1;
          Mode.make ~id:1 ~name:"O2" ~graph:(chain ~name:"O2" [ 3; 4; 5 ]) ~period:1.0
            ~probability:0.9;
        ]
      ~transitions:
        [
          Transition.make ~src:0 ~dst:1 ~max_time:1.0;
          Transition.make ~src:1 ~dst:0 ~max_time:1.0;
        ]
  in
  Spec.make ~omsm ~arch ~tech

let test_fig2_exact_powers () =
  let spec = fig2_spec () in
  let eval arrays =
    Fitness.evaluate_mapping Fitness.default_config spec (Mapping.of_arrays spec arrays)
  in
  let fig2b = eval [| [| 0; 0; 1 |]; [| 0; 1; 0 |] |] in
  let fig2c = eval [| [| 0; 0; 0 |]; [| 0; 1; 1 |] |] in
  Alcotest.(check (float 1e-7)) "paper 26.7158 mWs" 26.7158e-3 fig2b.Fitness.true_power;
  Alcotest.(check (float 1e-7)) "paper 15.7423 mWs" 15.7423e-3 fig2c.Fitness.true_power;
  Alcotest.(check bool) "both feasible" true
    (Fitness.feasible fig2b && Fitness.feasible fig2c);
  (* Under uniform weighting Fig. 2b evaluates better than Fig. 2c... *)
  let config_uniform = { Fitness.default_config with weighting = Fitness.Uniform } in
  let b_u = Fitness.evaluate_mapping config_uniform spec (Mapping.of_arrays spec [| [| 0; 0; 1 |]; [| 0; 1; 0 |] |]) in
  let c_u = Fitness.evaluate_mapping config_uniform spec (Mapping.of_arrays spec [| [| 0; 0; 0 |]; [| 0; 1; 1 |] |]) in
  Alcotest.(check bool) "uniform prefers 2b" true (b_u.Fitness.fitness < c_u.Fitness.fitness);
  (* ...and under true probabilities Fig. 2c wins. *)
  Alcotest.(check bool) "probabilities prefer 2c" true
    (fig2c.Fitness.fitness < fig2b.Fitness.fitness)

let test_fig2_infeasible_never_beats_feasible () =
  let spec = fig2_spec () in
  (* All six types in hardware: area 1550 > 600.  Its (tiny) power must
     not produce a better fitness than the feasible optimum. *)
  let all_hw =
    Fitness.evaluate_mapping Fitness.default_config spec
      (Mapping.of_arrays spec [| [| 1; 1; 1 |]; [| 1; 1; 1 |] |])
  in
  let feasible_opt =
    Fitness.evaluate_mapping Fitness.default_config spec
      (Mapping.of_arrays spec [| [| 0; 0; 0 |]; [| 0; 1; 1 |] |])
  in
  Alcotest.(check bool) "area infeasible" false all_hw.Fitness.area_feasible;
  Alcotest.(check bool) "power is lower" true
    (all_hw.Fitness.true_power < feasible_opt.Fitness.true_power);
  Alcotest.(check bool) "fitness is worse" true
    (all_hw.Fitness.fitness > feasible_opt.Fitness.fitness)

let test_fitness_timing_penalty () =
  (* Chain in software with an impossible period. *)
  let spec = F.spec_of_graphs ~period:5e-3 [ F.chain_graph () ] in
  let eval =
    Fitness.evaluate_mapping
      { Fitness.default_config with dvs = Fitness.No_dvs }
      spec
      (Mapping.of_arrays spec [| [| 0; 0; 0 |] |])
  in
  Alcotest.(check bool) "timing infeasible" false eval.Fitness.timing_feasible;
  Alcotest.(check bool) "penalised" true (eval.Fitness.timing_factor > 1.0);
  Alcotest.(check bool) "fitness above power" true
    (eval.Fitness.fitness > eval.Fitness.true_power)

let test_fitness_dvs_improves () =
  let spec = F.spec_of_graphs ~period:1.0 [ F.chain_graph () ] in
  let mapping = Mapping.of_arrays spec [| [| 0; 0; 0 |] |] in
  let nominal = Fitness.evaluate_mapping Fitness.default_config spec mapping in
  let dvs =
    Fitness.evaluate_mapping
      { Fitness.default_config with dvs = Fitness.Dvs Mm_dvs.Scaling.default_config }
      spec mapping
  in
  Alcotest.(check bool) "DVS reduces power" true
    (dvs.Fitness.true_power < nominal.Fitness.true_power)

let test_fitness_power_decomposition () =
  (* Hand-checkable single-mode system: chain A->B->C all on the GPP,
     period 100 ms, no DVS.
     Dynamic energy = 0.4·10m + 0.5·20m + 0.6·30m = 32 mJ -> 320 mW.
     Static: only the GPP (1 mW); ASIC and bus shut down. *)
  let spec = F.spec_of_graphs ~period:0.1 [ F.chain_graph () ] in
  let eval =
    Fitness.evaluate_mapping Fitness.default_config spec
      (Mapping.of_arrays spec [| [| 0; 0; 0 |] |])
  in
  let mp = eval.Fitness.mode_powers.(0) in
  Alcotest.(check (float 1e-9)) "dynamic power" 0.32 mp.Mm_energy.Power.dyn_power;
  Alcotest.(check (float 1e-12)) "static power" 1e-3 mp.Mm_energy.Power.static_power;
  Alcotest.(check (list int)) "ASIC shut down" [ 1 ] mp.Mm_energy.Power.shut_down_pes;
  Alcotest.(check (float 1e-9)) "Eq. (1) with one mode" 0.321 eval.Fitness.true_power;
  Alcotest.(check (float 1e-9)) "feasible fitness = power" eval.Fitness.true_power
    eval.Fitness.fitness

let test_fitness_comm_energy_counted () =
  (* Crossing the bus adds the transfer energy to the dynamic budget. *)
  let spec = F.spec_of_graphs ~period:0.1 [ F.chain_graph () ] in
  let all_sw =
    Fitness.evaluate_mapping Fitness.default_config spec
      (Mapping.of_arrays spec [| [| 0; 0; 0 |] |])
  in
  let crossing =
    Fitness.evaluate_mapping Fitness.default_config spec
      (Mapping.of_arrays spec [| [| 0; 1; 0 |] |])
  in
  (* B on the ASIC: dyn = 0.4·10m + 0.005·2m + 0.6·30m + 2 transfers
     (0.05 W · 1 ms each) = 4 + 0.01 + 18 + 0.1 mJ = 22.11 mJ -> 221.1 mW;
     static adds ASIC (0.5 mW) and bus (0.1 mW). *)
  let mp = crossing.Fitness.mode_powers.(0) in
  Alcotest.(check (float 1e-9)) "dyn with comm" 0.2211 mp.Mm_energy.Power.dyn_power;
  Alcotest.(check (float 1e-12)) "static all on" 1.6e-3 mp.Mm_energy.Power.static_power;
  Alcotest.(check bool) "offloading B is cheaper despite the bus" true
    (crossing.Fitness.true_power < all_sw.Fitness.true_power)

let test_evaluate_matches_evaluate_mapping () =
  let spec = two_mode_spec () in
  let rng = Prng.create ~seed:21 in
  for _ = 1 to 10 do
    let genome = Mm_ga.Genome.random rng ~counts:(Spec.gene_counts spec) in
    let via_genome = Fitness.evaluate Fitness.default_config spec genome in
    let via_mapping =
      Fitness.evaluate_mapping Fitness.default_config spec (Mapping.of_genome spec genome)
    in
    Alcotest.(check (float 1e-15)) "same fitness" via_genome.Fitness.fitness
      via_mapping.Fitness.fitness
  done

(* --- Improvement operators -------------------------------------------------------- *)

let snapshot_of infos = { Engine.generation = 1; fitnesses = [| 1.0 |]; infos }

let test_shutdown_improvement_frees_pe () =
  let spec = two_mode_spec () in
  let op = Improvement.shutdown spec in
  let rng = Prng.create ~seed:5 in
  let info =
    Fitness.evaluate Fitness.default_config spec
      (Mapping.to_genome spec (Mapping.of_arrays spec [| [| 0; 1; 0 |]; [| 0; 1; 0; 0 |] |]))
  in
  (* Run the operator many times; whenever it reports a change, some mode
     must have lost a PE relative to before. *)
  let changed = ref 0 in
  for _ = 1 to 100 do
    let genome =
      Mapping.to_genome spec (Mapping.of_arrays spec [| [| 0; 1; 0 |]; [| 0; 1; 0; 0 |] |])
    in
    if op.Engine.apply rng ~snapshot:(snapshot_of [| info |]) ~info genome then begin
      incr changed;
      let mapping = Mapping.of_genome spec genome in
      let pes_mode m = List.length (Mapping.pes_used mapping ~mode:m) in
      Alcotest.(check bool) "some mode now uses one PE" true
        (pes_mode 0 = 1 || pes_mode 1 = 1)
    end
  done;
  Alcotest.(check bool) "operator fires" true (!changed > 0)

let test_area_improvement_moves_to_software () =
  let spec = F.spec_of_graphs ~area:120.0 [ F.chain_graph () ] in
  let genome = Mapping.to_genome spec (Mapping.of_arrays spec [| [| 1; 1; 0 |] |]) in
  let info = Fitness.evaluate Fitness.default_config spec genome in
  Alcotest.(check bool) "area infeasible setup" false info.Fitness.area_feasible;
  let op = Improvement.area spec in
  let rng = Prng.create ~seed:6 in
  let hw_count g =
    let mapping = Mapping.of_genome spec g in
    List.length (Mapping.tasks_on_pe mapping ~mode:0 ~pe:1)
  in
  let fired = ref false in
  for _ = 1 to 50 do
    let g = Array.copy genome in
    if op.Engine.apply rng ~snapshot:(snapshot_of [| info |]) ~info g then begin
      fired := true;
      Alcotest.(check bool) "fewer hardware tasks" true (hw_count g < hw_count genome)
    end
  done;
  Alcotest.(check bool) "operator fires" true !fired

let test_area_improvement_skips_feasible () =
  let spec = F.spec_of_graphs [ F.chain_graph () ] in
  let genome = Mapping.to_genome spec (Mapping.of_arrays spec [| [| 0; 0; 0 |] |]) in
  let info = Fitness.evaluate Fitness.default_config spec genome in
  let op = Improvement.area spec in
  let rng = Prng.create ~seed:7 in
  Alcotest.(check bool) "no-op when feasible" false
    (op.Engine.apply rng ~snapshot:(snapshot_of [| info |]) ~info genome)

let test_timing_improvement_moves_to_hardware () =
  let spec = F.spec_of_graphs ~period:5e-3 [ F.chain_graph () ] in
  let genome = Mapping.to_genome spec (Mapping.of_arrays spec [| [| 0; 0; 0 |] |]) in
  let info = Fitness.evaluate Fitness.default_config spec genome in
  Alcotest.(check bool) "timing infeasible setup" false info.Fitness.timing_feasible;
  let op = Improvement.timing spec in
  let rng = Prng.create ~seed:8 in
  let fired = ref false in
  for _ = 1 to 50 do
    let g = Array.copy genome in
    if op.Engine.apply rng ~snapshot:(snapshot_of [| info |]) ~info g then begin
      fired := true;
      let mapping = Mapping.of_genome spec g in
      Alcotest.(check bool) "some task now on hardware" true
        (Mapping.tasks_on_pe mapping ~mode:0 ~pe:1 <> [])
    end
  done;
  Alcotest.(check bool) "operator fires" true !fired

let test_transition_improvement_leaves_fpga () =
  let spec = fpga_spec () in
  let genome =
    Mapping.to_genome spec (Mapping.of_arrays spec [| [| 1; 0; 0 |]; [| 0; 1; 0; 0 |] |])
  in
  let info = Fitness.evaluate Fitness.default_config spec genome in
  Alcotest.(check bool) "transition infeasible setup" false
    info.Fitness.transition_feasible;
  let op = Improvement.transition spec in
  let rng = Prng.create ~seed:9 in
  let fired = ref false in
  for _ = 1 to 50 do
    let g = Array.copy genome in
    if op.Engine.apply rng ~snapshot:(snapshot_of [| info |]) ~info g then fired := true
  done;
  Alcotest.(check bool) "operator fires" true !fired

let test_shutdown_noop_single_pe () =
  (* Every task of every mode already on one PE: nothing to free. *)
  let spec = two_mode_spec () in
  let genome = Mapping.to_genome spec (Mapping.of_arrays spec [| [| 0; 0; 0 |]; [| 0; 0; 0; 0 |] |]) in
  let info = Fitness.evaluate Fitness.default_config spec genome in
  let op = Improvement.shutdown spec in
  let rng = Prng.create ~seed:31 in
  for _ = 1 to 30 do
    let g = Array.copy genome in
    Alcotest.(check bool) "no-op" false
      (op.Engine.apply rng ~snapshot:(snapshot_of [| info |]) ~info g);
    Alcotest.(check (array int)) "genome untouched" genome g
  done

let test_transition_improvement_noop_when_feasible () =
  let spec = two_mode_spec () in
  let genome = Mapping.to_genome spec (Mapping.of_arrays spec [| [| 0; 1; 0 |]; [| 0; 0; 0; 0 |] |]) in
  let info = Fitness.evaluate Fitness.default_config spec genome in
  Alcotest.(check bool) "setup feasible" true info.Fitness.transition_feasible;
  let op = Improvement.transition spec in
  let rng = Prng.create ~seed:32 in
  Alcotest.(check bool) "no-op" false
    (op.Engine.apply rng ~snapshot:(snapshot_of [| info |]) ~info genome)

let prop_improvements_preserve_validity =
  QCheck.Test.make ~name:"improvement operators keep genomes valid" ~count:100
    QCheck.small_int
    (fun seed ->
      let spec = two_mode_spec () in
      let counts = Spec.gene_counts spec in
      let rng = Prng.create ~seed in
      let genome = Mm_ga.Genome.random rng ~counts in
      let info = Fitness.evaluate Fitness.default_config spec genome in
      List.for_all
        (fun (op : Fitness.eval Engine.improvement) ->
          let g = Array.copy genome in
          ignore (op.Engine.apply rng ~snapshot:(snapshot_of [| info |]) ~info g);
          Mm_ga.Genome.validate ~counts g)
        (Improvement.all spec))

(* --- Synthesis --------------------------------------------------------------- *)

let test_synthesis_finds_fig2_optima () =
  let spec = fig2_spec () in
  let run weighting =
    let config =
      { Synthesis.default_config with fitness = { Fitness.default_config with weighting } }
    in
    Synthesis.run ~config ~spec ~seed:3 ()
  in
  let baseline = run Fitness.Uniform in
  let proposed = run Fitness.True_probabilities in
  Alcotest.(check (float 1e-7)) "baseline = Fig. 2b power" 26.7158e-3
    (Synthesis.average_power baseline);
  Alcotest.(check (float 1e-7)) "proposed = Fig. 2c power" 15.7423e-3
    (Synthesis.average_power proposed)

let test_synthesis_deterministic () =
  let spec = two_mode_spec () in
  let config =
    {
      Synthesis.default_config with
      ga = { Engine.default_config with max_generations = 15 };
    }
  in
  let a = Synthesis.run ~config ~spec ~seed:42 () in
  let b = Synthesis.run ~config ~spec ~seed:42 () in
  Alcotest.(check (array int)) "same genome" a.Synthesis.genome b.Synthesis.genome;
  Alcotest.(check (float 1e-12)) "same power" (Synthesis.average_power a)
    (Synthesis.average_power b)

let test_software_anchors () =
  let spec = two_mode_spec () in
  let anchors = Synthesis.software_anchors spec in
  Alcotest.(check bool) "at least one anchor" true (anchors <> []);
  List.iter
    (fun genome ->
      Alcotest.(check bool) "valid genome" true
        (Mm_ga.Genome.validate ~counts:(Spec.gene_counts spec) genome);
      let mapping = Mapping.of_genome spec genome in
      (* Every task lands on a software PE: no core area used. *)
      let eval = Fitness.evaluate_mapping Fitness.default_config spec mapping in
      Alcotest.(check bool) "zero-area" true (Core_alloc.area_feasible eval.Fitness.alloc);
      Alcotest.(check (float 1e-9)) "nothing on the ASIC" 0.0
        (Core_alloc.area_used eval.Fitness.alloc ~pe:1))
    anchors

let test_greedy_timing_anchor_repairs () =
  (* A spec whose all-software mapping misses deadlines: the greedy
     anchor must offload enough work to hardware to become feasible. *)
  let spec = F.spec_of_graphs ~period:45e-3 [ F.chain_graph () ] in
  let all_sw =
    Fitness.evaluate_mapping Fitness.default_config spec
      (Mapping.of_arrays spec [| [| 0; 0; 0 |] |])
  in
  Alcotest.(check bool) "software-only is late" false all_sw.Fitness.timing_feasible;
  match Synthesis.greedy_timing_anchor spec with
  | None -> Alcotest.fail "no anchor"
  | Some genome ->
    let eval = Fitness.evaluate Fitness.default_config spec genome in
    Alcotest.(check bool) "repaired to feasibility" true eval.Fitness.timing_feasible;
    Alcotest.(check bool) "fully feasible" true (Fitness.feasible eval)

let test_anchors_deduplicated_and_valid () =
  let spec = two_mode_spec () in
  let anchors = Synthesis.anchors spec in
  Alcotest.(check bool) "non-empty" true (anchors <> []);
  Alcotest.(check int) "deduplicated" (List.length anchors)
    (List.length (List.sort_uniq compare anchors));
  List.iter
    (fun genome ->
      Alcotest.(check bool) "valid" true
        (Mm_ga.Genome.validate ~counts:(Spec.gene_counts spec) genome))
    anchors

let test_synthesis_without_improvements () =
  let spec = two_mode_spec () in
  let config =
    {
      Synthesis.default_config with
      use_improvements = false;
      ga = { Engine.default_config with max_generations = 15 };
    }
  in
  let result = Synthesis.run ~config ~spec ~seed:1 () in
  Alcotest.(check bool) "still produces a result" true
    (Synthesis.average_power result > 0.0)

(* --- Annealing -------------------------------------------------------------- *)

module Annealing = Mm_cosynth.Annealing

let test_annealing_finds_fig2_optimum () =
  let spec = fig2_spec () in
  let result = Annealing.run ~spec ~seed:3 () in
  (* SA over the same fitness must reach the Fig. 2c optimum on this tiny
     landscape. *)
  Alcotest.(check (float 1e-7)) "fig2c power" 15.7423e-3
    result.Annealing.eval.Fitness.true_power

let test_annealing_deterministic () =
  let spec = two_mode_spec () in
  let config = { Annealing.default_config with Annealing.steps = 500 } in
  let a = Annealing.run ~config ~spec ~seed:5 () in
  let b = Annealing.run ~config ~spec ~seed:5 () in
  Alcotest.(check (array int)) "same genome" a.Annealing.genome b.Annealing.genome

let test_annealing_validation () =
  let spec = two_mode_spec () in
  (match Annealing.run ~config:{ Annealing.default_config with Annealing.steps = 0 } ~spec ~seed:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero steps accepted");
  match
    Annealing.run ~config:{ Annealing.default_config with Annealing.cooling = 1.5 } ~spec
      ~seed:1 ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad cooling accepted"

let test_annealing_genome_valid () =
  let spec = two_mode_spec () in
  let config = { Annealing.default_config with Annealing.steps = 300 } in
  let result = Annealing.run ~config ~spec ~seed:7 () in
  Alcotest.(check bool) "valid genome" true
    (Mm_ga.Genome.validate ~counts:(Spec.gene_counts spec) result.Annealing.genome);
  Alcotest.(check bool) "some moves accepted" true (result.Annealing.accepted > 0)

(* --- Pareto ------------------------------------------------------------------ *)

module Pareto = Mm_cosynth.Pareto

let test_scale_architecture () =
  let spec = two_mode_spec () in
  let scaled = Pareto.scale_architecture spec 0.5 in
  let area spec = Mm_arch.Pe.area_capacity (Arch.pe (Spec.arch spec) 1) in
  Alcotest.(check (float 1e-9)) "halved" (area spec /. 2.0) (area scaled);
  match Pareto.scale_architecture spec 0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero factor accepted"

let test_pareto_sweep_and_frontier () =
  let spec = two_mode_spec () in
  let config =
    {
      Synthesis.default_config with
      ga = { Engine.default_config with max_generations = 25; population_size = 20 };
      restarts = 1;
    }
  in
  let points = Pareto.sweep ~config ~spec ~scales:[ 0.01; 1.0; 3.0 ] ~seed:3 () in
  Alcotest.(check int) "three points" 3 (List.length points);
  let frontier = Pareto.frontier points in
  Alcotest.(check bool) "frontier non-empty" true (frontier <> []);
  (* The frontier is sorted by capacity and strictly improving in power. *)
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "capacity ascending" true
        (a.Pareto.hw_area_capacity <= b.Pareto.hw_area_capacity);
      Alcotest.(check bool) "power descending" true (a.Pareto.power >= b.Pareto.power);
      check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted frontier;
  (* More hardware area can never force higher minimal power, so the
     largest-capacity frontier point has the lowest power of all. *)
  let best_power =
    List.fold_left (fun acc p -> Float.min acc p.Pareto.power) infinity points
  in
  match List.rev frontier with
  | last :: _ -> Alcotest.(check (float 1e-9)) "last is cheapest" best_power last.Pareto.power
  | [] -> Alcotest.fail "empty frontier"

(* --- Multi_objective ---------------------------------------------------------- *)

module Multi_objective = Mm_cosynth.Multi_objective

let test_multi_objective_front () =
  let spec = two_mode_spec () in
  let config = { Mm_ga.Nsga2.default_config with Mm_ga.Nsga2.max_generations = 30 } in
  let result = Multi_objective.optimise ~config ~spec ~seed:5 () in
  Alcotest.(check bool) "non-empty front" true (result.Multi_objective.front <> []);
  (* Every returned point is feasible and the front is mutually
     non-dominated in (power, area). *)
  List.iter
    (fun (p : Multi_objective.point) ->
      Alcotest.(check bool) "feasible" true (Fitness.feasible p.Multi_objective.eval))
    result.Multi_objective.front;
  List.iter
    (fun (a : Multi_objective.point) ->
      List.iter
        (fun (b : Multi_objective.point) ->
          if a != b then
            Alcotest.(check bool) "non-dominated" false
              (a.Multi_objective.power <= b.Multi_objective.power
              && a.Multi_objective.area <= b.Multi_objective.area
              && (a.Multi_objective.power < b.Multi_objective.power
                 || a.Multi_objective.area < b.Multi_objective.area)))
        result.Multi_objective.front)
    result.Multi_objective.front;
  (* The all-software anchor guarantees a zero-area point exists. *)
  match result.Multi_objective.front with
  | first :: _ -> Alcotest.(check (float 1e-9)) "zero-area point" 0.0 first.Multi_objective.area
  | [] -> Alcotest.fail "empty front"

let test_multi_objective_beats_single_point () =
  (* The front's cheapest-power point should be at least as good as a
     short single-objective run (same evaluation order of magnitude). *)
  let spec = two_mode_spec () in
  let config = { Mm_ga.Nsga2.default_config with Mm_ga.Nsga2.max_generations = 40 } in
  let result = Multi_objective.optimise ~config ~spec ~seed:6 () in
  let best_front_power =
    List.fold_left (fun acc p -> Float.min acc p.Multi_objective.power) infinity
      result.Multi_objective.front
  in
  let single =
    Synthesis.run
      ~config:{ Synthesis.default_config with ga = { Engine.default_config with max_generations = 40 } }
      ~spec ~seed:6 ()
  in
  Alcotest.(check bool) "within 25% of the single-objective result" true
    (best_front_power <= Synthesis.average_power single *. 1.25)

(* --- Sensitivity ---------------------------------------------------------------- *)

module Sensitivity = Mm_cosynth.Sensitivity

let test_sensitivity_zero_strength () =
  let spec = two_mode_spec () in
  let mapping = Mapping.of_arrays spec [| [| 0; 0; 0 |]; [| 0; 0; 0; 0 |] |] in
  let r = Sensitivity.analyse ~samples:50 ~strength:0.0 ~spec ~mapping ~seed:1 () in
  Alcotest.(check (float 1e-12)) "mean = nominal" r.Sensitivity.nominal r.Sensitivity.mean;
  Alcotest.(check (float 1e-12)) "no spread" 0.0 r.Sensitivity.std

let test_sensitivity_bounds () =
  let spec = two_mode_spec () in
  let mapping = Mapping.of_arrays spec [| [| 0; 1; 0 |]; [| 1; 0; 0; 0 |] |] in
  let r = Sensitivity.analyse ~samples:500 ~strength:0.5 ~spec ~mapping ~seed:2 () in
  Alcotest.(check bool) "best <= mean <= worst" true
    (r.Sensitivity.best <= r.Sensitivity.mean +. 1e-12
    && r.Sensitivity.mean <= r.Sensitivity.worst +. 1e-12);
  (* Power stays within the per-mode extremes whatever the profile. *)
  let eval = Fitness.evaluate_mapping Fitness.default_config spec mapping in
  let totals = Array.map Mm_energy.Power.total eval.Fitness.mode_powers in
  let lo = Array.fold_left Float.min infinity totals in
  let hi = Array.fold_left Float.max 0.0 totals in
  Alcotest.(check bool) "within mode-power extremes" true
    (r.Sensitivity.best >= lo -. 1e-12 && r.Sensitivity.worst <= hi +. 1e-12)

let test_sensitivity_nominal_matches_fitness () =
  let spec = two_mode_spec () in
  let mapping = Mapping.of_arrays spec [| [| 0; 1; 0 |]; [| 1; 0; 0; 0 |] |] in
  let r = Sensitivity.analyse ~samples:10 ~spec ~mapping ~seed:3 () in
  let eval = Fitness.evaluate_mapping Fitness.default_config spec mapping in
  Alcotest.(check (float 1e-12)) "nominal = Eq. (1)" eval.Fitness.true_power
    r.Sensitivity.nominal

let test_sensitivity_comparison_paired () =
  let spec = two_mode_spec () in
  let a = Mapping.of_arrays spec [| [| 0; 0; 0 |]; [| 0; 0; 0; 0 |] |] in
  let b = Mapping.of_arrays spec [| [| 0; 1; 0 |]; [| 1; 0; 0; 0 |] |] in
  let c = Sensitivity.compare_mappings ~samples:200 ~spec ~baseline:a ~proposed:b ~seed:4 () in
  Alcotest.(check int) "sample counts" 200 c.Sensitivity.baseline.Sensitivity.samples;
  Alcotest.(check bool) "wins bounded" true (c.Sensitivity.wins <= 200);
  (* b offloads work to the cheap ASIC in both modes: it should win under
     essentially every profile. *)
  Alcotest.(check bool) "dominant mapping wins everywhere" true (c.Sensitivity.wins = 200)

let test_sensitivity_validation () =
  let spec = two_mode_spec () in
  let mapping = Mapping.of_arrays spec [| [| 0; 0; 0 |]; [| 0; 0; 0; 0 |] |] in
  match Sensitivity.analyse ~samples:0 ~spec ~mapping ~seed:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero samples accepted"

let () =
  Alcotest.run "mm_cosynth"
    [
      ( "spec",
        [
          Alcotest.test_case "positions" `Quick test_spec_positions;
          Alcotest.test_case "candidates" `Quick test_spec_candidates;
          Alcotest.test_case "unmappable rejected" `Quick test_spec_rejects_unmappable;
          Alcotest.test_case "core area" `Quick test_spec_core_area;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "roundtrip" `Quick test_mapping_roundtrip;
          Alcotest.test_case "queries" `Quick test_mapping_queries;
          Alcotest.test_case "of_arrays validates" `Quick test_mapping_of_arrays_validates;
        ] );
      ( "core-alloc",
        [
          Alcotest.test_case "software only" `Quick test_alloc_software_only;
          Alcotest.test_case "asic union" `Quick test_alloc_asic_union_across_modes;
          Alcotest.test_case "area violation" `Quick test_alloc_area_violation;
          Alcotest.test_case "extra instances" `Quick
            test_alloc_extra_instances_for_parallel_tasks;
          Alcotest.test_case "extras respect area" `Quick
            test_alloc_extra_instances_respect_area;
        ] );
      ( "transition-time",
        [
          Alcotest.test_case "reconfiguration" `Quick test_transition_reconfig_time;
          Alcotest.test_case "shared type" `Quick test_transition_shared_type_no_reconfig;
          Alcotest.test_case "asic static" `Quick test_transition_asic_never_reconfigures;
        ] );
      ( "fitness",
        [
          Alcotest.test_case "fig2 exact powers" `Quick test_fig2_exact_powers;
          Alcotest.test_case "infeasible never wins" `Quick
            test_fig2_infeasible_never_beats_feasible;
          Alcotest.test_case "timing penalty" `Quick test_fitness_timing_penalty;
          Alcotest.test_case "dvs improves" `Quick test_fitness_dvs_improves;
          Alcotest.test_case "power decomposition" `Quick test_fitness_power_decomposition;
          Alcotest.test_case "comm energy counted" `Quick test_fitness_comm_energy_counted;
          Alcotest.test_case "evaluate = evaluate_mapping" `Quick
            test_evaluate_matches_evaluate_mapping;
        ] );
      ( "improvement",
        [
          Alcotest.test_case "shutdown" `Quick test_shutdown_improvement_frees_pe;
          Alcotest.test_case "area" `Quick test_area_improvement_moves_to_software;
          Alcotest.test_case "area skips feasible" `Quick test_area_improvement_skips_feasible;
          Alcotest.test_case "timing" `Quick test_timing_improvement_moves_to_hardware;
          Alcotest.test_case "transition" `Quick test_transition_improvement_leaves_fpga;
          Alcotest.test_case "shutdown no-op" `Quick test_shutdown_noop_single_pe;
          Alcotest.test_case "transition no-op" `Quick
            test_transition_improvement_noop_when_feasible;
          QCheck_alcotest.to_alcotest prop_improvements_preserve_validity;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "finds fig2 optima" `Slow test_synthesis_finds_fig2_optima;
          Alcotest.test_case "deterministic" `Quick test_synthesis_deterministic;
          Alcotest.test_case "software anchors" `Quick test_software_anchors;
          Alcotest.test_case "greedy anchor repairs" `Quick test_greedy_timing_anchor_repairs;
          Alcotest.test_case "anchors deduplicated" `Quick test_anchors_deduplicated_and_valid;
          Alcotest.test_case "without improvements" `Quick test_synthesis_without_improvements;
        ] );
      ( "annealing",
        [
          Alcotest.test_case "finds fig2 optimum" `Slow test_annealing_finds_fig2_optimum;
          Alcotest.test_case "deterministic" `Quick test_annealing_deterministic;
          Alcotest.test_case "validation" `Quick test_annealing_validation;
          Alcotest.test_case "genome valid" `Quick test_annealing_genome_valid;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "scale architecture" `Quick test_scale_architecture;
          Alcotest.test_case "sweep and frontier" `Slow test_pareto_sweep_and_frontier;
        ] );
      ( "multi-objective",
        [
          Alcotest.test_case "front" `Slow test_multi_objective_front;
          Alcotest.test_case "vs single objective" `Slow test_multi_objective_beats_single_point;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "zero strength" `Quick test_sensitivity_zero_strength;
          Alcotest.test_case "bounds" `Quick test_sensitivity_bounds;
          Alcotest.test_case "nominal = Eq.(1)" `Quick test_sensitivity_nominal_matches_fitness;
          Alcotest.test_case "paired comparison" `Quick test_sensitivity_comparison_paired;
          Alcotest.test_case "validation" `Quick test_sensitivity_validation;
        ] );
    ]
