(* Tests for Mm_serve: wire framing and codecs (fuzzed — garbage,
   truncated and oversized frames must come back as typed errors, never
   exceptions), the job lifecycle state machine, the cooperative
   round-robin scheduler, the registry's on-disk mirror, the
   crash-recovery contract (abandon mid-run, rehydrate, resume
   bit-identically) and one end-to-end daemon conversation over a real
   Unix-domain socket. *)

module Protocol = Mm_serve.Protocol
module Framing = Mm_serve.Protocol.Framing
module Job = Mm_serve.Job
module Registry = Mm_serve.Registry
module Scheduler = Mm_serve.Scheduler
module Server = Mm_serve.Server
module Client = Mm_serve.Client
module Snapshot = Mm_io.Snapshot
module Synthesis = Mm_cosynth.Synthesis
module Validate = Mm_cosynth.Validate

let spec = Fixtures.spec_of_graphs [ Fixtures.chain_graph () ]
let spec_text = Mm_io.Codec.spec_to_string spec
let invalid_spec_text = "(spec (name broken))"

let feq a b = Int64.bits_of_float a = Int64.bits_of_float b

let opt_feq a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> feq a b
  | _ -> false

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let temp_dir prefix =
  (* Unix sockets live here too: sun_path is ~107 bytes, so fall back
     to /tmp when the sandbox TMPDIR is deep. *)
  let base =
    let d = Filename.get_temp_dir_name () in
    if String.length d < 60 then d else "/tmp"
  in
  let path = Filename.temp_file ~temp_dir:base prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

(* --- framing ----------------------------------------------------------------- *)

let drain decoder out =
  let rec go () =
    match Framing.next decoder with
    | Ok (Some payload) ->
      out := payload :: !out;
      go ()
    | Ok None -> ()
    | Error e -> Alcotest.fail (Framing.error_to_string e)
  in
  go ()

let prop_framing_roundtrip =
  QCheck.Test.make ~name:"chunked streams round-trip" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(0 -- 8) (string_of_size Gen.(0 -- 200)))
        (int_range 1 9))
    (fun (payloads, chunk) ->
      let stream = String.concat "" (List.map Framing.encode payloads) in
      let decoder = Framing.create () in
      let out = ref [] in
      let n = String.length stream in
      let i = ref 0 in
      while !i < n do
        let len = min chunk (n - !i) in
        Framing.feed decoder (String.sub stream !i len);
        i := !i + len;
        drain decoder out
      done;
      List.rev !out = payloads)

let prop_framing_truncated =
  QCheck.Test.make ~name:"truncated frames wait, then complete" ~count:200
    QCheck.(string_of_size Gen.(1 -- 100))
    (fun payload ->
      let stream = Framing.encode payload in
      let cut = String.length stream - 1 in
      let decoder = Framing.create () in
      Framing.feed decoder (String.sub stream 0 cut);
      let pending = Framing.next decoder = Ok None in
      Framing.feed decoder (String.sub stream cut 1);
      pending && Framing.next decoder = Ok (Some payload))

let test_framing_oversized_sticky () =
  let decoder = Framing.create ~max_frame:64 () in
  (* Big-endian header announcing a 65-byte payload. *)
  Framing.feed decoder "\000\000\000\065";
  let check_broken () =
    match Framing.next decoder with
    | Error (Framing.Oversized { length; limit }) ->
      Alcotest.(check int) "announced length" 65 length;
      Alcotest.(check int) "limit" 64 limit
    | Ok _ | Error (Framing.Malformed _) ->
      Alcotest.fail "expected Oversized"
  in
  check_broken ();
  (* The error is sticky: feeding more bytes never resynchronises. *)
  Framing.feed decoder (String.make 80 'x');
  check_broken ();
  (* A 4 GiB announcement is oversized too, not an overflow crash. *)
  let decoder = Framing.create () in
  Framing.feed decoder "\255\255\255\255";
  match Framing.next decoder with
  | Error (Framing.Oversized _) -> ()
  | _ -> Alcotest.fail "4 GiB header must be Oversized"

(* --- protocol codecs --------------------------------------------------------- *)

let options_gen =
  QCheck.Gen.(
    map
      (fun ((seed, generations, population, (restarts, dvs, uniform)),
            (islands, migration_interval, migration_count)) ->
        {
          Job.seed;
          generations;
          population;
          restarts;
          dvs;
          uniform;
          islands;
          (* Only meaningful — and only persisted — with islands > 1;
             a single-engine job carries the defaults. *)
          migration_interval =
            (if islands > 1 then migration_interval
             else Job.default_options.Job.migration_interval);
          migration_count =
            (if islands > 1 then migration_count
             else Job.default_options.Job.migration_count);
        })
      (pair
         (quad (0 -- 10_000) (1 -- 500) (2 -- 200) (triple (1 -- 6) bool bool))
         (triple (1 -- 4) (1 -- 16) (0 -- 4))))

let id_gen = QCheck.Gen.(map (Printf.sprintf "job-%04d") (0 -- 9999))

let request_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map3
            (fun spec_text options nonce ->
              Protocol.Submit { spec_text; options; nonce })
            (string_size (0 -- 300)) options_gen
            (opt (map (Printf.sprintf "nonce-%04d") (0 -- 9999))) );
        (1, map (fun id -> Protocol.Status id) id_gen);
        (1, map (fun id -> Protocol.Cancel id) id_gen);
        (1, map (fun id -> Protocol.Watch id) id_gen);
        (1, return Protocol.List_jobs);
        (1, return Protocol.Ping);
        (1, return Protocol.Shutdown);
      ])

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request round-trip" ~count:300
    (QCheck.make ~print:Protocol.request_to_string request_gen)
    (fun req ->
      Protocol.request_of_string (Protocol.request_to_string req) = Ok req)

let finite_float =
  QCheck.Gen.(map (fun f -> if Float.is_finite f then f else 1.5) float)

let view_gen =
  QCheck.Gen.(
    map2
      (fun (v_seq, v_state, v_restart, v_generation)
           ( (v_best_fitness, v_power, v_error),
             (v_submitted_at, v_started_at, v_first_generation_at, v_finished_at)
           ) ->
        {
          Protocol.v_id = Printf.sprintf "job-%04d" v_seq;
          v_seq;
          v_state;
          v_spec_fingerprint = "sha-fixture";
          v_restart;
          v_generation;
          v_best_fitness;
          v_power;
          v_error;
          v_submitted_at;
          v_started_at;
          v_first_generation_at;
          v_finished_at;
        })
      (quad (0 -- 9999)
         (oneofl
            [
              Job.Queued;
              Job.Running;
              Job.Checkpointed;
              Job.Completed;
              Job.Failed;
              Job.Cancelled;
            ])
         (0 -- 5) (0 -- 500))
      (pair
         (triple (opt finite_float) (opt finite_float)
            (opt (string_size (0 -- 40))))
         (quad finite_float (opt finite_float) (opt finite_float)
            (opt finite_float))))

let view_eq (a : Protocol.job_view) (b : Protocol.job_view) =
  a.Protocol.v_id = b.Protocol.v_id
  && a.v_seq = b.v_seq && a.v_state = b.v_state
  && a.v_spec_fingerprint = b.v_spec_fingerprint
  && a.v_restart = b.v_restart
  && a.v_generation = b.v_generation
  && opt_feq a.v_best_fitness b.v_best_fitness
  && opt_feq a.v_power b.v_power && a.v_error = b.v_error
  && feq a.v_submitted_at b.v_submitted_at
  && opt_feq a.v_started_at b.v_started_at
  && opt_feq a.v_first_generation_at b.v_first_generation_at
  && opt_feq a.v_finished_at b.v_finished_at

let diag_gen =
  QCheck.Gen.(
    map2
      (fun (d_code, d_severity, d_path) (d_message, d_pos) ->
        { Protocol.d_code; d_severity; d_path; d_message; d_pos })
      (triple
         (map (Printf.sprintf "MM%03d") (0 -- 99))
         (oneofl [ "error"; "warning" ])
         (string_size (0 -- 20)))
      (pair (string_size (0 -- 60)) (opt (pair (1 -- 500) (0 -- 80)))))

let response_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun v -> Protocol.Accepted v) view_gen);
        (2, map (fun ds -> Protocol.Rejected ds) (list_size (1 -- 5) diag_gen));
        (3, map (fun v -> Protocol.Job_info v) view_gen);
        (2, map (fun vs -> Protocol.Jobs vs) (list_size (0 -- 5) view_gen));
        (2, map (fun line -> Protocol.Event line) (string_size (0 -- 200)));
        (1, return Protocol.Done);
        (1, return Protocol.Pong);
        ( 1,
          map2
            (fun code message -> Protocol.Error_response { code; message })
            (oneofl [ "unknown-job"; "wrong-state"; "protocol"; "internal" ])
            (string_size (0 -- 60)) );
      ])

let response_eq a b =
  match (a, b) with
  | Protocol.Accepted a, Protocol.Accepted b -> view_eq a b
  | Protocol.Rejected a, Protocol.Rejected b -> a = b
  | Protocol.Job_info a, Protocol.Job_info b -> view_eq a b
  | Protocol.Jobs a, Protocol.Jobs b ->
    List.length a = List.length b && List.for_all2 view_eq a b
  | Protocol.Event a, Protocol.Event b -> a = b
  | Protocol.Done, Protocol.Done | Protocol.Pong, Protocol.Pong -> true
  | ( Protocol.Error_response { code = ca; message = ma },
      Protocol.Error_response { code = cb; message = mb } ) ->
    ca = cb && ma = mb
  | _ -> false

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response round-trip" ~count:300
    (QCheck.make ~print:Protocol.response_to_string response_gen)
    (fun resp ->
      match Protocol.response_of_string (Protocol.response_to_string resp) with
      | Ok decoded -> response_eq resp decoded
      | Error e -> QCheck.Test.fail_report e)

let prop_codecs_total =
  QCheck.Test.make ~name:"garbage never raises" ~count:500 QCheck.string
    (fun garbage ->
      (match Protocol.request_of_string garbage with
      | Ok _ | Error _ -> ());
      (match Protocol.response_of_string garbage with
      | Ok _ | Error _ -> ());
      true)

let test_codec_rejects_bad_envelopes () =
  let expect_error what s =
    match Protocol.request_of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s decoded as a request" what
  in
  expect_error "empty payload" "";
  expect_error "wrong tag" "(not-mmsynth-rpc (version 1) (request (ping)))";
  expect_error "future version" "(mmsynth-rpc (version 99) (request (ping)))";
  expect_error "unknown body" "(mmsynth-rpc (version 1) (request (bogus)))";
  (* A response payload is not a request. *)
  expect_error "response envelope"
    (Protocol.response_to_string Protocol.Pong)

(* --- job state machine ------------------------------------------------------- *)

let all_states =
  [
    Job.Queued;
    Job.Running;
    Job.Checkpointed;
    Job.Completed;
    Job.Failed;
    Job.Cancelled;
  ]

let test_state_strings () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Job.state_to_string s ^ " round-trips") true
        (Job.state_of_string (Job.state_to_string s) = Some s))
    all_states;
  Alcotest.(check bool) "bogus name" true (Job.state_of_string "bogus" = None)

let test_legality_matrix () =
  let expected from to_ =
    match (from, to_) with
    | Job.Queued, (Job.Running | Job.Cancelled) -> true
    | Job.Running, (Job.Checkpointed | Job.Completed | Job.Failed | Job.Cancelled)
      ->
      true
    | ( Job.Checkpointed,
        (Job.Running | Job.Completed | Job.Failed | Job.Cancelled) ) ->
      true
    | _ -> false
  in
  List.iter
    (fun from ->
      List.iter
        (fun to_ ->
          Alcotest.(check bool)
            (Printf.sprintf "%s -> %s" (Job.state_to_string from)
               (Job.state_to_string to_))
            (expected from to_)
            (Job.legal ~from ~to_))
        all_states)
    all_states;
  (* Terminal states admit no outgoing edge at all. *)
  List.iter
    (fun from ->
      if Job.terminal from then
        List.iter
          (fun to_ ->
            Alcotest.(check bool) "terminal is absorbing" false
              (Job.legal ~from ~to_))
          all_states)
    all_states

let fresh_job ?nonce ?(seq = 7) () =
  Job.create ?nonce ~seq ~options:Job.default_options
    ~spec_fingerprint:"sha-test" ~now:1234.5 ()

let test_transition () =
  let j = fresh_job () in
  Alcotest.(check bool) "starts queued" true (j.Job.state = Job.Queued);
  (match Job.transition j Job.Completed with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "queued -> completed must be illegal");
  Alcotest.(check bool) "state unchanged on error" true
    (j.Job.state = Job.Queued);
  List.iter
    (fun to_ ->
      match Job.transition j to_ with
      | Ok () -> ()
      | Error e -> Alcotest.failf "legal edge refused: %s" e)
    [ Job.Running; Job.Checkpointed; Job.Running; Job.Completed ];
  match Job.transition j Job.Running with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "completed is terminal"

let job_eq (a : Job.t) (b : Job.t) =
  a.Job.id = b.Job.id && a.seq = b.seq && a.options = b.options
  && a.spec_fingerprint = b.spec_fingerprint
  && a.state = b.state && a.restart = b.restart
  && a.generation = b.generation
  && opt_feq a.best_fitness b.best_fitness
  && (match (a.outcome, b.outcome) with
     | None, None -> true
     | Some a, Some b ->
       feq a.Job.power b.Job.power && feq a.fitness b.fitness
       && a.generations = b.generations
       && a.evaluations = b.evaluations
       && a.genome = b.genome
     | _ -> false)
  && a.error = b.error
  && feq a.submitted_at b.submitted_at
  && opt_feq a.started_at b.started_at
  && opt_feq a.first_generation_at b.first_generation_at
  && opt_feq a.finished_at b.finished_at

let roundtrip_job j =
  match Job.of_sexp (Job.to_sexp j) with
  | Ok j' -> Alcotest.(check bool) "job sexp round-trip" true (job_eq j j')
  | Error e -> Alcotest.failf "job codec: %s" e

let test_job_codec () =
  (* A freshly queued job: every optional field absent. *)
  roundtrip_job (fresh_job ());
  (* A completed job: every field populated, floats bit-exact. *)
  let j = fresh_job ~seq:42 () in
  j.Job.state <- Job.Completed;
  j.Job.restart <- 1;
  j.Job.generation <- 37;
  j.Job.best_fitness <- Some 0x1.23456789abcdp-3;
  j.Job.outcome <-
    Some
      {
        Job.power = 0.0267158;
        fitness = 0x1.fffffffffffffp-2;
        generations = 61;
        evaluations = 999;
        genome = [| 0; 3; 1; 4 |];
      };
  j.Job.started_at <- Some 1234.6;
  j.Job.first_generation_at <- Some 1234.7;
  j.Job.finished_at <- Some 1240.0;
  roundtrip_job j;
  (* A failed job keeps its error string. *)
  let j = fresh_job () in
  j.Job.state <- Job.Failed;
  j.Job.error <- Some "boom: something \"quoted\"";
  roundtrip_job j;
  (* Garbage shapes are typed errors. *)
  List.iter
    (fun sexp ->
      match Job.of_sexp sexp with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "malformed job metadata decoded")
    [
      Mm_io.Sexp.Atom "nope";
      Mm_io.Sexp.List [ Mm_io.Sexp.Atom "wrong-tag" ];
      Mm_io.Sexp.List
        [ Mm_io.Sexp.Atom "mmsynthd-job"; Mm_io.Sexp.Atom "not-a-field" ];
    ]

(* --- scheduler --------------------------------------------------------------- *)

let test_scheduler_round_robin () =
  let sched = Scheduler.create () in
  let log = ref [] in
  let body i ~yield =
    for k = 0 to 2 do
      log := (i, k) :: !log;
      yield ()
    done
  in
  let handles = List.map (fun i -> Scheduler.spawn sched (body i)) [ 0; 1; 2 ] in
  while Scheduler.step sched do
    ()
  done;
  let expected =
    [ (0, 0); (1, 0); (2, 0); (0, 1); (1, 1); (2, 1); (0, 2); (1, 2); (2, 2) ]
  in
  Alcotest.(check (list (pair int int)))
    "one slice per job per round" expected (List.rev !log);
  List.iter
    (fun h -> Alcotest.(check bool) "finished" true (Scheduler.finished h))
    handles;
  Alcotest.(check bool) "drained" false (Scheduler.busy sched)

let test_scheduler_cancel () =
  let sched = Scheduler.create () in
  (* Cancel a running body: the next resume raises Cancelled at the
     yield point and the body's handler records it. *)
  let cancelled = ref false in
  let slices = ref 0 in
  let h =
    Scheduler.spawn sched (fun ~yield ->
        try
          while true do
            incr slices;
            yield ()
          done
        with Scheduler.Cancelled -> cancelled := true)
  in
  Alcotest.(check bool) "first slice ran" true (Scheduler.step sched);
  Scheduler.request_cancel h;
  while Scheduler.step sched do
    ()
  done;
  Alcotest.(check bool) "body saw Cancelled" true !cancelled;
  Alcotest.(check int) "exactly one slice before cancel" 1 !slices;
  Alcotest.(check bool) "finished" true (Scheduler.finished h);
  (* Cancel a queued body: it must never start. *)
  let started = ref false in
  let h = Scheduler.spawn sched (fun ~yield:_ -> started := true) in
  Scheduler.request_cancel h;
  while Scheduler.step sched do
    ()
  done;
  Alcotest.(check bool) "queued body never ran" false !started;
  Alcotest.(check bool) "queued body finished" true (Scheduler.finished h)

let test_scheduler_exception_isolated () =
  let sched = Scheduler.create () in
  let bad = Scheduler.spawn sched (fun ~yield:_ -> failwith "boom") in
  let good_done = ref false in
  let good =
    Scheduler.spawn sched (fun ~yield ->
        yield ();
        good_done := true)
  in
  while Scheduler.step sched do
    ()
  done;
  Alcotest.(check bool) "bad body terminated" true (Scheduler.finished bad);
  Alcotest.(check bool) "good body unaffected" true !good_done;
  Alcotest.(check bool) "good finished" true (Scheduler.finished good)

(* --- registry ---------------------------------------------------------------- *)

let small_options =
  { Job.default_options with seed = 1; generations = 10; population = 8; restarts = 1 }

let submit_ok registry ?(options = small_options) ?(now = 100.) () =
  match Registry.submit registry ~spec_text ~options ~now with
  | Ok entry -> entry
  | Error _ -> Alcotest.fail "valid spec rejected"

let test_registry_admission () =
  let dir = temp_dir "serve-registry" in
  let registry = Registry.create ~state_dir:dir in
  let entry = submit_ok registry () in
  Alcotest.(check string) "first id" "job-0001" entry.Registry.job.Job.id;
  Alcotest.(check bool) "queued" true (entry.Registry.job.Job.state = Job.Queued);
  let job_dir = Filename.concat (Filename.concat dir "jobs") "job-0001" in
  List.iter
    (fun file ->
      Alcotest.(check bool) (file ^ " written") true
        (Sys.file_exists (Filename.concat job_dir file)))
    [ "spec.mms"; "job.sexp"; "events.jsonl" ];
  (match Registry.read_events registry entry with
  | line :: _ ->
    Alcotest.(check bool) "queued event" true
      (contains line "\"state\":\"queued\"")
  | [] -> Alcotest.fail "no admission event");
  let entry2 = submit_ok registry () in
  Alcotest.(check string) "sequence grows" "job-0002" entry2.Registry.job.Job.id;
  (* An invalid spec is rejected before any directory is created. *)
  (match
     Registry.submit registry ~spec_text:invalid_spec_text
       ~options:small_options ~now:101.
   with
  | Ok _ -> Alcotest.fail "invalid spec admitted"
  | Error diags ->
    Alcotest.(check bool) "error diagnostics" true (Validate.has_errors diags));
  Alcotest.(check int) "no third directory" 2
    (Array.length (Sys.readdir (Filename.concat dir "jobs")))

let test_registry_lifecycle_and_rehydrate () =
  let dir = temp_dir "serve-lifecycle" in
  let registry = Registry.create ~state_dir:dir in
  let entry = submit_ok registry () in
  (* Illegal mutator calls are daemon bugs and raise. *)
  (try
     Registry.checkpointed registry entry ~now:102.;
     Alcotest.fail "checkpointed a queued job"
   with Invalid_argument _ -> ());
  Registry.mark_running registry entry ~now:103.;
  Alcotest.(check bool) "running" true (entry.Registry.job.Job.state = Job.Running);
  Alcotest.(check bool) "started stamped" true
    (entry.Registry.job.Job.started_at <> None);
  Registry.record_progress registry entry
    {
      Synthesis.p_restart = 0;
      p_generation = 1;
      p_best_fitness = 0.75;
      p_evaluations = 8;
      p_cache_hits = 0;
    }
    ~now:104.;
  Alcotest.(check int) "generation tracked" 1 entry.Registry.job.Job.generation;
  Alcotest.(check bool) "first generation stamped" true
    (entry.Registry.job.Job.first_generation_at <> None);
  Registry.checkpointed registry entry ~now:105.;
  Registry.checkpointed registry entry ~now:106. (* idempotent *);
  Alcotest.(check bool) "checkpointed" true
    (entry.Registry.job.Job.state = Job.Checkpointed);
  (* A second job completes for real (tiny run), a third is cancelled. *)
  let done_entry = submit_ok registry () in
  Registry.mark_running registry done_entry ~now:107.;
  let result =
    Synthesis.run
      ~config:(Server.synthesis_config small_options)
      ~spec:done_entry.Registry.spec ~seed:small_options.Job.seed ()
  in
  Registry.complete registry done_entry result ~now:108.;
  Alcotest.(check bool) "completed" true
    (done_entry.Registry.job.Job.state = Job.Completed);
  Alcotest.(check bool) "outcome retained" true
    (done_entry.Registry.job.Job.outcome <> None);
  Alcotest.(check bool) "result.sexp written" true
    (Sys.file_exists
       (Filename.concat
          (Filename.concat (Filename.concat dir "jobs") "job-0002")
          "result.sexp"));
  let gone_entry = submit_ok registry () in
  Registry.cancel registry gone_entry ~now:109.;
  (* A fresh registry on the same directory sees all three, returns only
     the non-terminal one from rehydrate and continues the sequence. *)
  let registry2 = Registry.create ~state_dir:dir in
  let live = Registry.rehydrate registry2 in
  Alcotest.(check int) "all jobs reloaded" 3
    (List.length (Registry.entries registry2));
  (match live with
  | [ e ] ->
    Alcotest.(check string) "in-flight job" "job-0001" e.Registry.job.Job.id
  | live ->
    Alcotest.failf "expected 1 live entry, got %d" (List.length live));
  (match Registry.find registry2 "job-0002" with
  | Some e ->
    Alcotest.(check bool) "completed survives restart" true
      (e.Registry.job.Job.state = Job.Completed)
  | None -> Alcotest.fail "job-0002 lost across restart");
  let next = submit_ok registry2 () in
  Alcotest.(check string) "sequence continues after restart" "job-0004"
    next.Registry.job.Job.id

(* --- crash recovery ---------------------------------------------------------- *)

(* The daemon's crash contract, exercised deterministically: run a job
   the way Server does (checkpoint persisted before every yield), kill
   it mid-run by abandoning at a yield point, rehydrate a fresh registry
   from the directory the "crash" left behind and resume — the final
   genome and power must match an uninterrupted run bit-for-bit. *)
let test_crash_resume_bit_identical () =
  let dir = temp_dir "serve-crash" in
  let options =
    { Job.default_options with seed = 3; generations = 60; population = 24; restarts = 2 }
  in
  let config = Server.synthesis_config options in
  let registry = Registry.create ~state_dir:dir in
  let entry =
    match Registry.submit registry ~spec_text ~options ~now:200. with
    | Ok e -> e
    | Error _ -> Alcotest.fail "submit failed"
  in
  Registry.mark_running registry entry ~now:201.;
  let sink0 =
    Snapshot.synth_sink
      ~path:(Registry.checkpoint_path registry entry)
      ~spec:entry.Registry.spec ~every:3 ()
  in
  let sink =
    {
      sink0 with
      Synthesis.save =
        (fun state ->
          sink0.Synthesis.save state;
          Registry.checkpointed registry entry ~now:202.);
    }
  in
  let yields = ref 0 in
  (try
     ignore
       (Synthesis.run ~config ~checkpoint:sink
          ~yield:(fun progress ->
            Registry.record_progress registry entry progress ~now:203.;
            incr yields;
            if !yields >= 8 then raise Exit)
          ~spec:entry.Registry.spec ~seed:options.Job.seed ())
   with Exit -> () (* the job dies at a yield point, like SIGKILL *));
  let registry2 = Registry.create ~state_dir:dir in
  let e2 =
    match Registry.rehydrate registry2 with
    | [ e ] -> e
    | live -> Alcotest.failf "expected 1 live entry, got %d" (List.length live)
  in
  Alcotest.(check bool) "found checkpointed" true
    (e2.Registry.job.Job.state = Job.Checkpointed);
  let resume =
    match e2.Registry.resume with
    | Some state -> state
    | None -> Alcotest.fail "rehydrate loaded no checkpoint"
  in
  Registry.mark_running registry2 e2 ~now:300.;
  let resumed =
    Synthesis.run ~config ~resume ~spec:e2.Registry.spec
      ~seed:options.Job.seed ()
  in
  Registry.complete registry2 e2 resumed ~now:301.;
  let direct =
    Synthesis.run ~config ~spec:entry.Registry.spec ~seed:options.Job.seed ()
  in
  Alcotest.(check bool) "same genome" true
    (resumed.Synthesis.genome = direct.Synthesis.genome);
  Alcotest.(check int) "same generations" direct.Synthesis.generations
    resumed.Synthesis.generations;
  Alcotest.(check bool) "bit-identical power" true
    (feq (Synthesis.average_power resumed) (Synthesis.average_power direct))

(* --- client backoff ----------------------------------------------------------- *)

module Prng = Mm_util.Prng
module Fault = Mm_fault.Fault

let test_backoff_schedule () =
  (* Without jitter the schedule is exactly exponential, capped. *)
  let flat =
    { Client.attempts = 8; base_delay = 0.05; max_delay = 2.0; jitter = 0.0 }
  in
  let rng = Prng.create ~seed:1 in
  List.iteri
    (fun attempt expected ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "attempt %d" attempt)
        expected
        (Client.backoff_delay flat ~attempt ~rng))
    [ 0.05; 0.1; 0.2; 0.4; 0.8; 1.6; 2.0; 2.0 ];
  (* Jitter only ever subtracts, bounded by the jitter fraction. *)
  let jittered = { flat with Client.jitter = 0.25 } in
  let rng = Prng.create ~seed:7 in
  for attempt = 0 to 20 do
    let cap = Float.min 2.0 (0.05 *. (2. ** float_of_int attempt)) in
    let d = Client.backoff_delay jittered ~attempt ~rng in
    if not (d <= cap && d >= 0.75 *. cap) then
      Alcotest.failf "attempt %d: %g outside [%g, %g]" attempt d (0.75 *. cap) cap
  done;
  (* Pure in the rng: the same seed replays the same schedule. *)
  let schedule seed =
    let rng = Prng.create ~seed in
    List.init 10 (fun attempt -> Client.backoff_delay jittered ~attempt ~rng)
  in
  Alcotest.(check bool) "deterministic given the rng" true
    (schedule 99 = schedule 99)

(* --- submission nonces --------------------------------------------------------- *)

let test_registry_nonce_idempotence () =
  let dir = temp_dir "serve-nonce" in
  let registry = Registry.create ~state_dir:dir in
  let entry =
    match
      Registry.submit ~nonce:"n-test-1" registry ~spec_text
        ~options:small_options ~now:100.
    with
    | Ok e -> e
    | Error _ -> Alcotest.fail "valid spec rejected"
  in
  (match Registry.find_by_nonce registry "n-test-1" with
  | Some e ->
    Alcotest.(check string) "nonce resolves to the admitted job"
      entry.Registry.job.Job.id e.Registry.job.Job.id
  | None -> Alcotest.fail "nonce not remembered");
  Alcotest.(check bool) "unknown nonce misses" true
    (Registry.find_by_nonce registry "n-other" = None);
  (* The nonce is persisted in job.sexp: a restarted daemon still
     answers a replayed submit with the old job. *)
  let registry2 = Registry.create ~state_dir:dir in
  ignore (Registry.rehydrate registry2);
  match Registry.find_by_nonce registry2 "n-test-1" with
  | Some e ->
    Alcotest.(check string) "nonce survives restart" entry.Registry.job.Job.id
      e.Registry.job.Job.id
  | None -> Alcotest.fail "nonce lost across restart"

(* --- corrupt-state quarantine --------------------------------------------------- *)

let test_rehydrate_quarantines_metadata () =
  let dir = temp_dir "serve-badmeta" in
  let registry = Registry.create ~state_dir:dir in
  ignore (submit_ok registry ());
  ignore (submit_ok registry ());
  let bad_meta =
    Filename.concat (Filename.concat (Filename.concat dir "jobs") "job-0001")
      "job.sexp"
  in
  let oc = open_out_bin bad_meta in
  output_string oc "(job (id job-0001) truncated ga";
  close_out oc;
  (* The poisoned directory is quarantined, not fatal to recovery. *)
  let registry2 = Registry.create ~state_dir:dir in
  let live = Registry.rehydrate registry2 in
  Alcotest.(check int) "one live entry" 1 (List.length live);
  Alcotest.(check int) "one entry total" 1 (List.length (Registry.entries registry2));
  Alcotest.(check bool) "metadata renamed aside" true
    (Sys.file_exists (bad_meta ^ ".corrupt"));
  Alcotest.(check bool) "original gone" false (Sys.file_exists bad_meta);
  (* Later startups skip the quarantined directory quietly. *)
  let registry3 = Registry.create ~state_dir:dir in
  let live = Registry.rehydrate registry3 in
  Alcotest.(check int) "still one live entry" 1 (List.length live)

(* The crash-recovery contract under a corrupted newest checkpoint: with
   rotation the previous generation still resumes, the bad file is
   quarantined, and the resumed result matches the uninterrupted run bit
   for bit (resuming from an older checkpoint replays the same
   trajectory). *)
let test_corrupt_checkpoint_falls_back () =
  let dir = temp_dir "serve-corrupt-ckpt" in
  let options =
    { Job.default_options with seed = 3; generations = 60; population = 24; restarts = 2 }
  in
  let config = Server.synthesis_config options in
  let registry = Registry.create ~state_dir:dir in
  let entry =
    match Registry.submit registry ~spec_text ~options ~now:200. with
    | Ok e -> e
    | Error _ -> Alcotest.fail "submit failed"
  in
  Registry.mark_running registry entry ~now:201.;
  let checkpoint_path = Registry.checkpoint_path registry entry in
  let sink0 =
    Snapshot.synth_sink ~keep:3 ~path:checkpoint_path ~spec:entry.Registry.spec
      ~every:3 ()
  in
  let saves = ref 0 in
  let sink =
    {
      sink0 with
      Synthesis.save =
        (fun state ->
          sink0.Synthesis.save state;
          incr saves;
          Registry.checkpointed registry entry ~now:202.);
    }
  in
  let yields = ref 0 in
  (try
     ignore
       (Synthesis.run ~config ~checkpoint:sink
          ~yield:(fun progress ->
            Registry.record_progress registry entry progress ~now:203.;
            incr yields;
            if !yields >= 8 then raise Exit)
          ~spec:entry.Registry.spec ~seed:options.Job.seed ())
   with Exit -> ());
  Alcotest.(check bool) "rotated a second generation" true
    (!saves >= 2 && Sys.file_exists (checkpoint_path ^ ".1"));
  (* The crash also tore the newest checkpoint. *)
  let oc = open_out_bin checkpoint_path in
  output_string oc "(mmsyn-snapshot (version 2) torn mid-wri";
  close_out oc;
  let registry2 = Registry.create ~state_dir:dir in
  let e2 =
    match Registry.rehydrate registry2 with
    | [ e ] -> e
    | live -> Alcotest.failf "expected 1 live entry, got %d" (List.length live)
  in
  let resume =
    match e2.Registry.resume with
    | Some state -> state
    | None -> Alcotest.fail "no fallback checkpoint resumed"
  in
  Alcotest.(check bool) "torn file quarantined" true
    (Sys.file_exists (checkpoint_path ^ ".corrupt"));
  Alcotest.(check bool) "torn file no longer scanned" false
    (Sys.file_exists checkpoint_path);
  Registry.mark_running registry2 e2 ~now:300.;
  let resumed =
    Synthesis.run ~config ~resume ~spec:e2.Registry.spec ~seed:options.Job.seed ()
  in
  let direct =
    Synthesis.run ~config ~spec:entry.Registry.spec ~seed:options.Job.seed ()
  in
  Alcotest.(check bool) "same genome" true
    (resumed.Synthesis.genome = direct.Synthesis.genome);
  Alcotest.(check bool) "bit-identical power" true
    (feq (Synthesis.average_power resumed) (Synthesis.average_power direct))

(* --- auth, admission bounds and idempotent submit over real sockets ------------ *)

let free_port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, port) -> port
    | _ -> Alcotest.fail "no port"
  in
  Unix.close fd;
  port

let wait_for_socket socket =
  let rec go n =
    if Sys.file_exists socket then ()
    else if n = 0 then Alcotest.fail "daemon socket never appeared"
    else (
      Unix.sleepf 0.02;
      go (n - 1))
  in
  go 250

let test_server_auth_and_busy () =
  let dir = temp_dir "serve-auth" in
  let socket = Filename.concat dir "d.sock" in
  let port = free_port () in
  let daemon =
    Domain.spawn (fun () ->
        Server.run
          {
            Server.default_config with
            Server.socket_path = socket;
            tcp = Some ("127.0.0.1", port);
            state_dir = Filename.concat dir "state";
            checkpoint_every = 2;
            max_jobs = 1;
            auth_token = Some "sekrit";
          })
  in
  wait_for_socket socket;
  let unix_client = Client.connect ~socket in
  Fun.protect
    ~finally:(fun () -> Client.close unix_client)
    (fun () ->
      (* Unix-socket clients are never challenged, token or not. *)
      (match Client.request unix_client Protocol.Ping with
      | Ok Protocol.Pong -> ()
      | _ -> Alcotest.fail "unix ping unchallenged");
      (* TCP without (or with a wrong) token gets a typed refusal. *)
      let tcp_request ?auth req =
        let t = Client.create ?auth ~retry:Client.no_retry (Client.Tcp ("127.0.0.1", port)) in
        Fun.protect
          ~finally:(fun () -> Client.close t)
          (fun () -> Client.request t req)
      in
      (match tcp_request Protocol.Ping with
      | Ok Protocol.Unauthorized -> ()
      | r ->
        Alcotest.failf "tokenless tcp ping: %s"
          (match r with Ok _ -> "unexpected response" | Error e -> e));
      (match tcp_request ~auth:"wrong" Protocol.Ping with
      | Ok Protocol.Unauthorized -> ()
      | _ -> Alcotest.fail "wrong token accepted");
      (match tcp_request ~auth:"sekrit" Protocol.Ping with
      | Ok Protocol.Pong -> ()
      | _ -> Alcotest.fail "right token refused");
      (* Admission bound: one slow job fills the daemon; the second
         submission is refused with a typed Busy carrying the numbers. *)
      let slow_options =
        { Job.default_options with seed = 5; generations = 100_000; population = 16; restarts = 1 }
      in
      let submit ?nonce options =
        Client.request unix_client
          (Protocol.Submit { spec_text; options; nonce })
      in
      let first_id =
        match submit ~nonce:"busy-nonce" slow_options with
        | Ok (Protocol.Accepted view) -> view.Protocol.v_id
        | _ -> Alcotest.fail "first submit refused"
      in
      (match submit { slow_options with Job.seed = 6 } with
      | Ok (Protocol.Busy { active = 1; limit = 1 }) -> ()
      | _ -> Alcotest.fail "second submit not refused as busy");
      (* An idempotent replay bypasses the bound: same nonce, same job,
         no duplicate. *)
      (match submit ~nonce:"busy-nonce" slow_options with
      | Ok (Protocol.Accepted view) ->
        Alcotest.(check string) "replayed submit returns the same job"
          first_id view.Protocol.v_id
      | _ -> Alcotest.fail "nonce replay refused");
      (match Client.request unix_client Protocol.List_jobs with
      | Ok (Protocol.Jobs [ _ ]) -> ()
      | _ -> Alcotest.fail "replay duplicated the job");
      (* Cancelling frees the admission slot. *)
      (match Client.request unix_client (Protocol.Cancel first_id) with
      | Ok Protocol.Done -> ()
      | _ -> Alcotest.fail "cancel");
      (match submit { small_options with Job.generations = 3 } with
      | Ok (Protocol.Accepted _) -> ()
      | _ -> Alcotest.fail "slot not freed after cancel");
      match Client.request unix_client Protocol.Shutdown with
      | Ok Protocol.Done -> ()
      | _ -> Alcotest.fail "shutdown");
  Domain.join daemon

(* --- chaos end to end ----------------------------------------------------------- *)

(* The headline robustness property: under the full default fault plan —
   worker crashes, torn and failed checkpoint writes, dropped accepts,
   EOFs, garbage frames, scheduler stalls — a resilient client still
   drives a job to completion, exactly one job is admitted (the nonce
   absorbs blind retries), and the result equals the fault-free run bit
   for bit. *)
let test_chaos_end_to_end () =
  let dir = temp_dir "serve-chaos" in
  let socket = Filename.concat dir "d.sock" in
  let plan =
    match Fault.plan_of_string Fault.default_plan with
    | Ok plan -> plan
    | Error e -> Alcotest.failf "default plan: %s" e
  in
  Fault.arm ~seed:2024 plan;
  let daemon =
    Domain.spawn (fun () ->
        Server.run
          {
            Server.default_config with
            Server.socket_path = socket;
            state_dir = Filename.concat dir "state";
            checkpoint_every = 2;
          })
  in
  wait_for_socket socket;
  let client = Client.create (Client.Unix_socket socket) in
  let options =
    { Job.default_options with seed = 11; generations = 25; population = 12; restarts = 1 }
  in
  let final =
    Fun.protect
      ~finally:(fun () -> Client.close client)
      (fun () ->
        let id =
          match
            Client.rpc client
              (Protocol.Submit
                 {
                   spec_text;
                   options;
                   nonce = Some (Client.fresh_nonce ());
                 })
          with
          | Ok (Protocol.Accepted view) -> view.Protocol.v_id
          | Ok _ -> Alcotest.fail "chaos submit: unexpected response"
          | Error e -> Alcotest.failf "chaos submit: %s" e
        in
        let final =
          match Client.watch_resilient client id ~on_event:(fun _ -> ()) with
          | Ok view -> view
          | Error e -> Alcotest.failf "chaos watch: %s" e
        in
        (match Client.rpc client Protocol.List_jobs with
        | Ok (Protocol.Jobs [ _ ]) -> ()
        | Ok (Protocol.Jobs views) ->
          Alcotest.failf "retries duplicated the job: %d admitted"
            (List.length views)
        | _ -> Alcotest.fail "chaos list");
        (match Client.shutdown client with
        | Ok () -> ()
        | Error e -> Alcotest.failf "chaos shutdown: %s" e);
        final)
  in
  Domain.join daemon;
  Fault.disarm ();
  Alcotest.(check bool) "completed under chaos" true
    (final.Protocol.v_state = Job.Completed);
  let direct =
    Synthesis.run
      ~config:(Server.synthesis_config options)
      ~spec ~seed:options.Job.seed ()
  in
  match final.Protocol.v_power with
  | Some power ->
    Alcotest.(check bool) "bit-identical to the fault-free run" true
      (feq power (Synthesis.average_power direct))
  | None -> Alcotest.fail "no power reported"

(* --- end to end over a real socket ------------------------------------------- *)

let test_server_end_to_end () =
  let dir = temp_dir "serve-e2e" in
  let socket = Filename.concat dir "d.sock" in
  let daemon =
    Domain.spawn (fun () ->
        Server.run
          {
            Server.default_config with
            Server.socket_path = socket;
            state_dir = Filename.concat dir "state";
            pool_jobs = 1;
            checkpoint_every = 2;
          })
  in
  let rec wait_for_socket n =
    if Sys.file_exists socket then ()
    else if n = 0 then Alcotest.fail "daemon socket never appeared"
    else (
      Unix.sleepf 0.02;
      wait_for_socket (n - 1))
  in
  wait_for_socket 250;
  let client = Client.connect ~socket in
  Fun.protect
    ~finally:(fun () -> Client.close client)
    (fun () ->
      (match Client.request client Protocol.Ping with
      | Ok Protocol.Pong -> ()
      | _ -> Alcotest.fail "ping");
      (* An invalid spec is rejected at admission with MM0xx codes. *)
      (match
         Client.request client
           (Protocol.Submit
              { spec_text = invalid_spec_text; options = Job.default_options; nonce = None })
       with
      | Ok (Protocol.Rejected diags) ->
        Alcotest.(check bool) "MM code on the wire" true
          (List.exists
             (fun d ->
               String.length d.Protocol.d_code >= 2
               && String.sub d.Protocol.d_code 0 2 = "MM")
             diags)
      | _ -> Alcotest.fail "invalid spec not rejected");
      (match Client.request client (Protocol.Status "job-9999") with
      | Ok (Protocol.Error_response { code = "unknown-job"; _ }) -> ()
      | _ -> Alcotest.fail "unknown job not reported");
      (* Submit a real job and watch it to completion. *)
      let options =
        { Job.default_options with seed = 11; generations = 25; population = 12; restarts = 1 }
      in
      let id =
        match
          Client.request client (Protocol.Submit { spec_text; options; nonce = None })
        with
        | Ok (Protocol.Accepted view) ->
          Alcotest.(check bool) "admitted queued" true
            (view.Protocol.v_state = Job.Queued);
          view.Protocol.v_id
        | _ -> Alcotest.fail "valid spec not accepted"
      in
      let generation_events = ref 0 in
      let final =
        match
          Client.watch client id ~on_event:(fun line ->
              if contains line "\"event\":\"generation\"" then
                incr generation_events)
        with
        | Ok view -> view
        | Error e -> Alcotest.failf "watch: %s" e
      in
      Alcotest.(check bool) "completed" true
        (final.Protocol.v_state = Job.Completed);
      Alcotest.(check bool) "power present" true
        (final.Protocol.v_power <> None);
      Alcotest.(check bool) "streamed generations" true
        (!generation_events > 0);
      (* Timestamps are ordered: admission -> start -> first generation
         -> completion (what the bench derives percentiles from). *)
      (match
         ( final.Protocol.v_started_at,
           final.Protocol.v_first_generation_at,
           final.Protocol.v_finished_at )
       with
      | Some started, Some first_gen, Some finished ->
        Alcotest.(check bool) "submitted <= started" true
          (final.Protocol.v_submitted_at <= started);
        Alcotest.(check bool) "started <= first generation" true
          (started <= first_gen);
        Alcotest.(check bool) "first generation <= finished" true
          (first_gen <= finished)
      | _ -> Alcotest.fail "missing lifecycle timestamps");
      (* Watching a terminal job replays history and returns at once. *)
      let replayed = ref 0 in
      (match Client.watch client id ~on_event:(fun _ -> incr replayed) with
      | Ok view ->
        Alcotest.(check bool) "terminal watch" true
          (view.Protocol.v_state = Job.Completed);
        Alcotest.(check bool) "history replayed" true (!replayed > 0)
      | Error e -> Alcotest.failf "terminal watch: %s" e);
      (match Client.request client Protocol.List_jobs with
      | Ok (Protocol.Jobs [ view ]) ->
        Alcotest.(check string) "listed" id view.Protocol.v_id
      | _ -> Alcotest.fail "list");
      (* The daemon's trajectory equals the library's, bit for bit. *)
      let direct =
        Synthesis.run
          ~config:(Server.synthesis_config options)
          ~spec ~seed:options.Job.seed ()
      in
      (match final.Protocol.v_power with
      | Some power ->
        Alcotest.(check bool) "daemon matches direct run" true
          (feq power (Synthesis.average_power direct))
      | None -> ());
      match Client.request client Protocol.Shutdown with
      | Ok Protocol.Done -> ()
      | _ -> Alcotest.fail "shutdown");
  Domain.join daemon;
  Alcotest.(check bool) "socket removed" false (Sys.file_exists socket)

let () =
  Alcotest.run "mm_serve"
    [
      ( "framing",
        [
          QCheck_alcotest.to_alcotest prop_framing_roundtrip;
          QCheck_alcotest.to_alcotest prop_framing_truncated;
          Alcotest.test_case "oversized frames are sticky errors" `Quick
            test_framing_oversized_sticky;
        ] );
      ( "protocol codecs",
        [
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
          QCheck_alcotest.to_alcotest prop_codecs_total;
          Alcotest.test_case "bad envelopes rejected" `Quick
            test_codec_rejects_bad_envelopes;
        ] );
      ( "job state machine",
        [
          Alcotest.test_case "state names round-trip" `Quick test_state_strings;
          Alcotest.test_case "legality matrix" `Quick test_legality_matrix;
          Alcotest.test_case "transition enforces edges" `Quick test_transition;
          Alcotest.test_case "metadata codec" `Quick test_job_codec;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "round-robin fairness" `Quick
            test_scheduler_round_robin;
          Alcotest.test_case "cancellation" `Quick test_scheduler_cancel;
          Alcotest.test_case "exceptions stay contained" `Quick
            test_scheduler_exception_isolated;
        ] );
      ( "registry",
        [
          Alcotest.test_case "admission and rejection" `Quick
            test_registry_admission;
          Alcotest.test_case "lifecycle and rehydrate" `Quick
            test_registry_lifecycle_and_rehydrate;
          Alcotest.test_case "submission nonces are idempotent" `Quick
            test_registry_nonce_idempotence;
          Alcotest.test_case "corrupt metadata quarantined" `Quick
            test_rehydrate_quarantines_metadata;
        ] );
      ( "client retry",
        [ Alcotest.test_case "backoff schedule" `Quick test_backoff_schedule ] );
      ( "crash recovery",
        [
          Alcotest.test_case "abandon, rehydrate, resume bit-identical" `Quick
            test_crash_resume_bit_identical;
          Alcotest.test_case "corrupt checkpoint falls back a generation" `Quick
            test_corrupt_checkpoint_falls_back;
        ] );
      ( "server",
        [
          Alcotest.test_case "end to end over a unix socket" `Quick
            test_server_end_to_end;
          Alcotest.test_case "auth, busy and idempotent submit" `Quick
            test_server_auth_and_busy;
          Alcotest.test_case "chaos run is bit-identical" `Quick
            test_chaos_end_to_end;
        ] );
    ]
