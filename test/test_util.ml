(* Tests for mm_util: Prng, Stats, Table. *)

module Prng = Mm_util.Prng
module Stats = Mm_util.Stats
module Table = Mm_util.Table

let check_float = Alcotest.(check (float 1e-9))

(* --- Prng --------------------------------------------------------------- *)

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_different_seeds () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_copy_preserves_stream () =
  let a = Prng.create ~seed:7 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  for _ = 1 to 20 do
    Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_split_independent () =
  let a = Prng.create ~seed:7 in
  let child = Prng.split a in
  (* Child and parent produce different streams after the split. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 child then incr same
  done;
  Alcotest.(check bool) "split independent" true (!same < 4)

let test_int_bounds () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_int_covers_range () =
  let rng = Prng.create ~seed:5 in
  let seen = Array.make 6 false in
  for _ = 1 to 1000 do
    seen.(Prng.int rng 6) <- true
  done;
  Alcotest.(check bool) "all values seen" true (Array.for_all Fun.id seen)

let test_int_in () =
  let rng = Prng.create ~seed:11 in
  for _ = 1 to 500 do
    let v = Prng.int_in rng (-3) 4 in
    Alcotest.(check bool) "inclusive range" true (v >= -3 && v <= 4)
  done

let test_int_rejects_bad_bound () =
  let rng = Prng.create ~seed:1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_float_bounds () =
  let rng = Prng.create ~seed:13 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 2.5)
  done

let test_float_in_degenerate () =
  let rng = Prng.create ~seed:17 in
  check_float "lo = hi" 3.0 (Prng.float_in rng 3.0 3.0)

let test_chance_extremes () =
  let rng = Prng.create ~seed:19 in
  Alcotest.(check bool) "p=1 always true" true (Prng.chance rng 1.0);
  Alcotest.(check bool) "p=0 always false" false (Prng.chance rng 0.0)

let test_chance_statistics () =
  let rng = Prng.create ~seed:23 in
  let hits = ref 0 in
  for _ = 1 to 10000 do
    if Prng.chance rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 10000.0 in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.03)

let test_gaussian_statistics () =
  let rng = Prng.create ~seed:47 in
  let n = 20000 in
  let samples = List.init n (fun _ -> Prng.gaussian rng) in
  let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 samples
    /. float_of_int n
  in
  Alcotest.(check bool) "mean near 0" true (Float.abs mean < 0.05);
  Alcotest.(check bool) "variance near 1" true (Float.abs (var -. 1.0) < 0.1)

let test_pick () =
  let rng = Prng.create ~seed:29 in
  for _ = 1 to 100 do
    let v = Prng.pick rng [ 1; 2; 3 ] in
    Alcotest.(check bool) "member" true (List.mem v [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Prng.pick: empty list") (fun () ->
      ignore (Prng.pick rng []))

let test_shuffle_is_permutation () =
  let rng = Prng.create ~seed:31 in
  let a = Array.init 20 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

let test_sample_without_replacement () =
  let rng = Prng.create ~seed:37 in
  let sample = Prng.sample_without_replacement rng 3 [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "size" 3 (List.length sample);
  Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq compare sample));
  let all = Prng.sample_without_replacement rng 10 [ 1; 2 ] in
  Alcotest.(check int) "capped at population" 2 (List.length all)

let test_dirichlet_sums_to_one () =
  let rng = Prng.create ~seed:41 in
  for skew = 1 to 6 do
    let w = Prng.dirichlet_like rng 5 ~skew:(float_of_int skew) in
    let total = Array.fold_left ( +. ) 0.0 w in
    Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total;
    Array.iter (fun x -> Alcotest.(check bool) "positive" true (x > 0.0)) w
  done

let test_dirichlet_skew_concentrates () =
  let rng = Prng.create ~seed:43 in
  let max_of skew =
    let samples = List.init 200 (fun _ -> Prng.dirichlet_like rng 4 ~skew) in
    let maxima = List.map (fun w -> Array.fold_left Float.max 0.0 w) samples in
    List.fold_left ( +. ) 0.0 maxima /. 200.0
  in
  let flat = max_of 1.0 and skewed = max_of 6.0 in
  Alcotest.(check bool) "higher skew concentrates mass" true (skewed > flat)

(* Property tests. *)

let prop_int_in_range =
  QCheck.Test.make ~name:"Prng.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create ~seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let prop_shuffle_preserves_elements =
  QCheck.Test.make ~name:"shuffle_list preserves multiset" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let rng = Prng.create ~seed in
      let shuffled = Prng.shuffle_list rng xs in
      List.sort compare shuffled = List.sort compare xs)

(* --- Stats --------------------------------------------------------------- *)

let test_mean_std () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "std" 1.0 (Stats.std [ 1.0; 2.0; 3.0 ]);
  check_float "std singleton" 0.0 (Stats.std [ 5.0 ])

let test_median () =
  check_float "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_summarize () =
  let s = Stats.summarize [ 4.0; 1.0; 3.0; 2.0 ] in
  Alcotest.(check int) "n" 4 s.Stats.n;
  check_float "min" 1.0 s.Stats.min;
  check_float "max" 4.0 s.Stats.max;
  check_float "mean" 2.5 s.Stats.mean;
  check_float "median" 2.5 s.Stats.median

let test_summarize_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
    (fun () -> ignore (Stats.summarize []))

let test_percent_reduction () =
  check_float "halved" 50.0 (Stats.percent_reduction ~from:2.0 ~to_:1.0);
  check_float "no change" 0.0 (Stats.percent_reduction ~from:2.0 ~to_:2.0);
  check_float "zero base" 0.0 (Stats.percent_reduction ~from:0.0 ~to_:1.0);
  check_float "increase is negative" (-50.0) (Stats.percent_reduction ~from:2.0 ~to_:3.0)

let prop_mean_within_bounds =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:300
    QCheck.(list_of_size Gen.(1 -- 30) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.mean >= s.Stats.min -. 1e-9 && s.Stats.mean <= s.Stats.max +. 1e-9)

(* --- Table --------------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "has title" true (String.length rendered > 0 && rendered.[0] = 'T');
  Alcotest.(check bool) "pads short rows" true
    (String.length rendered > 0)

let test_table_too_many_cells () =
  let t = Table.create ~title:"T" ~columns:[ "a" ] in
  Alcotest.check_raises "too many" (Invalid_argument "Table.add_row: more cells than columns")
    (fun () -> Table.add_row t [ "1"; "2" ])

let test_cells () =
  Alcotest.(check string) "float" "1.500" (Table.cell_float 1.5);
  Alcotest.(check string) "float decimals" "1.50" (Table.cell_float ~decimals:2 1.5);
  Alcotest.(check string) "percent" "22.46" (Table.cell_percent 22.456)

let () =
  Alcotest.run "mm_util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "different seeds" `Quick test_different_seeds;
          Alcotest.test_case "copy" `Quick test_copy_preserves_stream;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int covers range" `Quick test_int_covers_range;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "int rejects bad bound" `Quick test_int_rejects_bad_bound;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "float_in degenerate" `Quick test_float_in_degenerate;
          Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
          Alcotest.test_case "chance statistics" `Quick test_chance_statistics;
          Alcotest.test_case "gaussian statistics" `Quick test_gaussian_statistics;
          Alcotest.test_case "pick" `Quick test_pick;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick test_sample_without_replacement;
          Alcotest.test_case "dirichlet sums to 1" `Quick test_dirichlet_sums_to_one;
          Alcotest.test_case "dirichlet skew" `Quick test_dirichlet_skew_concentrates;
          QCheck_alcotest.to_alcotest prop_int_in_range;
          QCheck_alcotest.to_alcotest prop_shuffle_preserves_elements;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/std" `Quick test_mean_std;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "summarize empty" `Quick test_summarize_empty;
          Alcotest.test_case "percent reduction" `Quick test_percent_reduction;
          QCheck_alcotest.to_alcotest prop_mean_within_bounds;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
          Alcotest.test_case "cell formatting" `Quick test_cells;
        ] );
    ]
