; expect: MM003 MM010 MM030
; exit: 2
(spec (name bare))
