; expect: MM001
; exit: 2
; Nothing but comments and blanks: the parser must report the true
; end-of-input position, not 1:1.

