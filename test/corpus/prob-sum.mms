; expect: MM012
; exit: 2
; Eq. 1: mode execution probabilities must sum to 1.
(spec
  (name prob-sum)
  (types (type (id 0) (name A)))
  (architecture
    (name corpus)
    (pe (id 0) (name GPP) (kind gpp) (static-power 0)))
  (technology
    (impl (type 0) (pe 0) (time 0.01) (power 0.5)))
  (mode
    (id 0) (name M0) (period 1) (probability 0.25)
    (tasks (task (id 0) (name t0) (type 0)))
    (edges))
  (mode
    (id 1) (name M1) (period 1) (probability 0.25)
    (tasks (task (id 0) (name t0) (type 0)))
    (edges))
  (transition (src 0) (dst 1) (max-time 1))
  (transition (src 1) (dst 0) (max-time 1)))
