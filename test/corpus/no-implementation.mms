; expect: MM057
; exit: 2
; Type B is used by a task but implemented on no PE.
(spec
  (name uncovered)
  (types
    (type (id 0) (name A))
    (type (id 1) (name B)))
  (architecture
    (name corpus)
    (pe (id 0) (name GPP) (kind gpp) (static-power 0)))
  (technology
    (impl (type 0) (pe 0) (time 0.01) (power 0.5)))
  (mode
    (id 0) (name M0) (period 1) (probability 1)
    (tasks
      (task (id 0) (name t0) (type 0))
      (task (id 1) (name t1) (type 1)))
    (edges)))
