; expect: MM004
; exit: 2
(spec
  (name twice)
  (name again)
  (types (type (id 0) (name A)))
  (architecture
    (name corpus)
    (pe (id 0) (name GPP) (kind gpp) (static-power 0)))
  (technology
    (impl (type 0) (pe 0) (time 0.01) (power 0.5)))
  (mode
    (id 0) (name M0) (period 1) (probability 1)
    (tasks (task (id 0) (name t0) (type 0)))
    (edges)))
