; expect: MM001
; exit: 2
(spec
  (name broken
