; expect: MM005
; exit: 2
(banana (peel 1))
