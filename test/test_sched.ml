(* Tests for mm_sched: Comm_mapping, List_scheduler, Schedule. *)

module Graph = Mm_taskgraph.Graph
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Arch = Mm_arch.Architecture
module Comm_mapping = Mm_sched.Comm_mapping
module List_scheduler = Mm_sched.List_scheduler
module Schedule = Mm_sched.Schedule
module Resource = Mm_sched.Resource
module F = Fixtures

let schedule ?(mapping = [| 0; 0; 0 |]) ?(period = 1.0) ?(instances = fun ~pe:_ ~ty:_ -> 1)
    ?(graph = F.chain_graph ()) () =
  let arch = F.arch () in
  List_scheduler.run
    (List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech:(F.tech arch) ~mapping
       ~instances ~period ())

let check_valid sched graph =
  match Schedule.validate sched ~graph with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invalid schedule: " ^ msg)

(* --- Comm_mapping -------------------------------------------------------- *)

let test_route_local () =
  let arch = F.arch () in
  match Comm_mapping.route arch ~src_pe:0 ~dst_pe:0 ~data:3.0 with
  | Comm_mapping.Local -> ()
  | Comm_mapping.Via _ | Comm_mapping.Unroutable -> Alcotest.fail "expected Local"

let test_route_via_bus () =
  let arch = F.arch () in
  match Comm_mapping.route arch ~src_pe:0 ~dst_pe:1 ~data:3.0 with
  | Comm_mapping.Via { cl; time; energy } ->
    Alcotest.(check int) "bus" 0 (Cl.id cl);
    Alcotest.(check (float 1e-12)) "time" 3e-3 time;
    Alcotest.(check (float 1e-12)) "energy" (0.05 *. 3e-3) energy
  | Comm_mapping.Local | Comm_mapping.Unroutable -> Alcotest.fail "expected Via"

let test_route_picks_fastest () =
  (* Two links between the same PEs: the faster one wins. *)
  let gpp = Pe.make ~id:0 ~name:"g" ~kind:Pe.Gpp ~static_power:0.0 () in
  let gpp2 = Pe.make ~id:1 ~name:"h" ~kind:Pe.Gpp ~static_power:0.0 () in
  let slow =
    Cl.make ~id:0 ~name:"slow" ~connects:[ 0; 1 ] ~time_per_data:2.0 ~transfer_power:0.1
      ~static_power:0.0
  in
  let fast =
    Cl.make ~id:1 ~name:"fast" ~connects:[ 0; 1 ] ~time_per_data:1.0 ~transfer_power:0.5
      ~static_power:0.0
  in
  let arch = Arch.make ~name:"two-links" ~pes:[ gpp; gpp2 ] ~cls:[ slow; fast ] in
  match Comm_mapping.route arch ~src_pe:0 ~dst_pe:1 ~data:1.0 with
  | Comm_mapping.Via { cl; _ } -> Alcotest.(check int) "fastest link" 1 (Cl.id cl)
  | Comm_mapping.Local | Comm_mapping.Unroutable -> Alcotest.fail "expected Via"

let test_route_unroutable () =
  let gpp = Pe.make ~id:0 ~name:"g" ~kind:Pe.Gpp ~static_power:0.0 () in
  let gpp2 = Pe.make ~id:1 ~name:"h" ~kind:Pe.Gpp ~static_power:0.0 () in
  let arch = Arch.make ~name:"no-links" ~pes:[ gpp; gpp2 ] ~cls:[] in
  match Comm_mapping.route arch ~src_pe:0 ~dst_pe:1 ~data:1.0 with
  | Comm_mapping.Unroutable -> ()
  | Comm_mapping.Local | Comm_mapping.Via _ -> Alcotest.fail "expected Unroutable"

(* --- List_scheduler: software serialisation ------------------------------ *)

let test_chain_all_software () =
  (* A(10ms) -> B(20ms) -> C(30ms), same PE: no comms, serial. *)
  let sched = schedule () in
  check_valid sched (F.chain_graph ());
  Alcotest.(check (float 1e-9)) "makespan" 60e-3 (Schedule.makespan sched);
  Alcotest.(check int) "no comm slots" 0 (List.length sched.Schedule.comm_slots);
  Alcotest.(check (list int)) "only GPP active" [ 0 ] (Schedule.active_pes sched);
  Alcotest.(check (list int)) "bus idle" [] (Schedule.active_cls sched)

let test_chain_crossing_pes () =
  (* A on GPP, B on ASIC, C on GPP: two bus transfers of 1 unit = 1 ms. *)
  let sched = schedule ~mapping:[| 0; 1; 0 |] () in
  check_valid sched (F.chain_graph ());
  (* 10 + 1 + 2 + 1 + 30 = 44 ms. *)
  Alcotest.(check (float 1e-9)) "makespan" 44e-3 (Schedule.makespan sched);
  Alcotest.(check int) "two comm slots" 2 (List.length sched.Schedule.comm_slots);
  Alcotest.(check (list int)) "bus active" [ 0 ] (Schedule.active_cls sched);
  Alcotest.(check (list int)) "both PEs active" [ 0; 1 ] (Schedule.active_pes sched)

let test_sw_tasks_serialise () =
  (* Two independent B tasks on one GPP must not overlap. *)
  let graph = F.parallel_graph () in
  let sched = schedule ~graph ~mapping:[| 0; 0 |] () in
  check_valid sched graph;
  Alcotest.(check (float 1e-9)) "serialised" 40e-3 (Schedule.makespan sched)

(* --- List_scheduler: hardware parallelism -------------------------------- *)

let test_hw_single_core_serialises () =
  let graph = F.parallel_graph () in
  let sched = schedule ~graph ~mapping:[| 1; 1 |] () in
  check_valid sched graph;
  (* One core instance: 2 + 2 = 4 ms. *)
  Alcotest.(check (float 1e-9)) "one core serialises" 4e-3 (Schedule.makespan sched)

let test_hw_two_cores_parallel () =
  let graph = F.parallel_graph () in
  let sched =
    schedule ~graph ~mapping:[| 1; 1 |]
      ~instances:(fun ~pe ~ty:_ -> if pe = 1 then 2 else 1)
      ()
  in
  check_valid sched graph;
  Alcotest.(check (float 1e-9)) "two cores parallel" 2e-3 (Schedule.makespan sched);
  (* The two tasks sit on distinct core instances. *)
  let r0 = sched.Schedule.task_slots.(0).Schedule.resource in
  let r1 = sched.Schedule.task_slots.(1).Schedule.resource in
  Alcotest.(check bool) "distinct instances" false (Resource.equal r0 r1)

let test_fork_on_hw_with_cores () =
  let graph = F.fork_graph () in
  let sched =
    schedule ~graph ~mapping:[| 0; 1; 1; 0 |]
      ~instances:(fun ~pe:_ ~ty:_ -> 2)
      ()
  in
  check_valid sched graph;
  (* A: [0,10).  The bus serialises the fan-out: comm to τ1 [10,11), to
     τ2 [11,12); B tasks run [11,13) and [12,14) on separate cores; the
     results return over the bus [13,14) and [14,15); C: [15,45). *)
  Alcotest.(check (float 1e-9)) "fork makespan" 45e-3 (Schedule.makespan sched)

(* --- Priorities and bus contention --------------------------------------- *)

let test_bus_contention_serialises_comms () =
  (* Fork with both B tasks on ASIC (one core): comms 0->1 and 0->2 leave
     the GPP back-to-back on the single bus. *)
  let graph = F.fork_graph ~data:5.0 () in
  let sched = schedule ~graph ~mapping:[| 0; 1; 1; 0 |] () in
  check_valid sched graph;
  let comms =
    List.filter (fun (c : Schedule.comm_slot) -> c.Schedule.edge.Graph.src = 0)
      sched.Schedule.comm_slots
  in
  Alcotest.(check int) "two comms from τ0" 2 (List.length comms);
  match List.sort (fun (a : Schedule.comm_slot) b -> compare a.Schedule.start b.Schedule.start) comms with
  | [ first; second ] ->
    Alcotest.(check bool) "no bus overlap" true
      (Schedule.comm_finish first <= second.Schedule.start +. 1e-12)
  | _ -> Alcotest.fail "expected two comms"

let test_unsupported_mapping_raises () =
  (* Map a type-C task to the ASIC... C is supported; build a tech without C on ASIC. *)
  let arch = F.arch () in
  let tech =
    (* Only software implementations. *)
    List.fold_left
      (fun tech (ty, ms, p) ->
        Mm_arch.Tech_lib.add tech ~ty ~pe:(Arch.pe arch 0)
          (Mm_arch.Tech_lib.impl ~exec_time:(ms *. 1e-3) ~dyn_power:p ()))
      Mm_arch.Tech_lib.empty
      [ (F.ty_a, 10.0, 0.4); (F.ty_b, 20.0, 0.5); (F.ty_c, 30.0, 0.6) ]
  in
  let run () =
    List_scheduler.run
      (List_scheduler.make_input ~mode_id:0 ~graph:(F.chain_graph ()) ~arch ~tech
         ~mapping:[| 0; 1; 0 |]
         ~instances:(fun ~pe:_ ~ty:_ -> 1)
         ~period:1.0 ())
  in
  match run () with
  | exception List_scheduler.Unsupported_mapping { task = 1; pe = 1 } -> ()
  | exception _ -> Alcotest.fail "wrong exception"
  | _ -> Alcotest.fail "unsupported mapping accepted"

let test_zero_data_edge () =
  (* Zero-byte dependency across PEs: a zero-duration transfer that still
     orders the tasks. *)
  let graph = F.chain_graph ~data:0.0 () in
  let sched = schedule ~graph ~mapping:[| 0; 1; 0 |] () in
  check_valid sched graph;
  List.iter
    (fun (c : Schedule.comm_slot) ->
      Alcotest.(check (float 1e-12)) "zero duration" 0.0 c.Schedule.duration;
      Alcotest.(check (float 1e-12)) "zero energy" 0.0 c.Schedule.energy)
    sched.Schedule.comm_slots;
  (* 10 + 2 + 30 ms with free communication. *)
  Alcotest.(check (float 1e-9)) "makespan" 42e-3 (Schedule.makespan sched)

let test_instance_assignment_deterministic () =
  let graph = F.parallel_graph () in
  let run () =
    schedule ~graph ~mapping:[| 1; 1 |]
      ~instances:(fun ~pe ~ty:_ -> if pe = 1 then 2 else 1)
      ()
  in
  let a = run () and b = run () in
  Array.iteri
    (fun i (slot : Schedule.task_slot) ->
      Alcotest.(check bool) "same resource" true
        (Resource.equal slot.Schedule.resource b.Schedule.task_slots.(i).Schedule.resource))
    a.Schedule.task_slots

let test_deadline_raises_priority () =
  (* Two independent tasks on one PE; the one with the tight deadline has
     lower mobility and must be scheduled first. *)
  let graph =
    Mm_taskgraph.Graph.make ~name:"deadline"
      ~tasks:[| F.task 0 F.ty_b; F.task ~deadline:25e-3 1 F.ty_b |]
      ~edges:[]
  in
  let sched = schedule ~graph ~mapping:[| 0; 0 |] ~period:0.1 () in
  check_valid sched graph;
  Alcotest.(check (float 1e-9)) "deadline task first" 0.0
    sched.Schedule.task_slots.(1).Schedule.start;
  Alcotest.(check bool) "no lateness" true (Schedule.lateness sched ~graph = [])

(* --- Priority policies ------------------------------------------------------ *)

let schedule_with_policy ~policy ?(mapping = [| 0; 0; 0 |]) ?(graph = F.chain_graph ()) () =
  let arch = F.arch () in
  List_scheduler.run ~policy
    (List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech:(F.tech arch) ~mapping
       ~instances:(fun ~pe:_ ~ty:_ -> 1)
       ~period:1.0 ())

let all_policies =
  [
    ("mobility", List_scheduler.Mobility_first);
    ("critical-path", List_scheduler.Critical_path_first);
    ("topological", List_scheduler.Topological);
  ]

let test_policies_all_valid () =
  List.iter
    (fun (name, policy) ->
      let graph = F.fork_graph () in
      let sched = schedule_with_policy ~policy ~graph ~mapping:[| 0; 1; 1; 0 |] () in
      match Schedule.validate sched ~graph with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (name ^ ": " ^ msg))
    all_policies

let test_policies_same_serial_makespan () =
  (* On a chain every order is forced: policies must agree exactly. *)
  List.iter
    (fun (_, policy) ->
      let sched = schedule_with_policy ~policy () in
      Alcotest.(check (float 1e-9)) "chain makespan" 60e-3 (Schedule.makespan sched))
    all_policies

let test_critical_path_priority_order () =
  (* Two independent tasks on one PE: B (20 ms) has the longer bottom
     level than a second B?  Use types with different times: parallel
     graph has two equal B tasks; instead build A(10ms) and C(30ms)
     independent: critical-path policy runs C first, topological runs A
     first. *)
  let graph =
    Mm_taskgraph.Graph.make ~name:"pair"
      ~tasks:[| F.task 0 F.ty_a; F.task 1 F.ty_c |]
      ~edges:[]
  in
  let by_policy policy =
    let sched = schedule_with_policy ~policy ~graph ~mapping:[| 0; 0 |] () in
    (sched.Schedule.task_slots.(0).Schedule.start, sched.Schedule.task_slots.(1).Schedule.start)
  in
  let a_start, c_start = by_policy List_scheduler.Critical_path_first in
  Alcotest.(check bool) "critical path runs C first" true (c_start < a_start);
  let a_start, c_start = by_policy List_scheduler.Topological in
  Alcotest.(check bool) "topological runs A first" true (a_start < c_start)

(* --- Schedule queries ------------------------------------------------------ *)

let test_lateness () =
  let graph = F.chain_graph () in
  (* Period 50 ms but the chain needs 60 ms in software. *)
  let sched = schedule ~graph ~period:50e-3 () in
  match Schedule.lateness sched ~graph with
  | [ (task, excess) ] ->
    Alcotest.(check int) "task 2 late" 2 task;
    Alcotest.(check (float 1e-9)) "by 10 ms" 10e-3 excess
  | other -> Alcotest.fail (Printf.sprintf "expected one violation, got %d" (List.length other))

let test_validate_catches_overlap () =
  let graph = F.parallel_graph () in
  let sched = schedule ~graph ~mapping:[| 0; 0 |] () in
  (* Corrupt: force both tasks to start at 0 on the same resource. *)
  let broken =
    {
      sched with
      Schedule.task_slots =
        Array.map (fun (s : Schedule.task_slot) -> { s with Schedule.start = 0.0 })
          sched.Schedule.task_slots;
    }
  in
  match Schedule.validate broken ~graph with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "overlap not caught"

let test_validate_catches_precedence () =
  let graph = F.chain_graph () in
  let sched = schedule ~graph () in
  let broken =
    {
      sched with
      Schedule.task_slots =
        Array.map
          (fun (s : Schedule.task_slot) ->
            if s.Schedule.task = 2 then { s with Schedule.start = 0.0 } else s)
          sched.Schedule.task_slots;
    }
  in
  match Schedule.validate broken ~graph with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "precedence violation not caught"

(* --- Property: random mappings always produce valid schedules ------------- *)

let prop_random_mappings_valid =
  QCheck.Test.make ~name:"random mappings yield structurally valid schedules"
    ~count:200
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, graph_kind) ->
      let graph =
        match graph_kind with
        | 0 -> F.chain_graph ()
        | 1 -> F.fork_graph ()
        | _ -> F.parallel_graph ()
      in
      let rng = Mm_util.Prng.create ~seed in
      let mapping =
        Array.init (Graph.n_tasks graph) (fun _ -> Mm_util.Prng.int rng 2)
      in
      let instances ~pe:_ ~ty:_ = 1 + Mm_util.Prng.int rng 2 in
      let arch = F.arch () in
      let sched =
        List_scheduler.run
          (List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech:(F.tech arch)
             ~mapping ~instances ~period:1.0 ())
      in
      match Schedule.validate sched ~graph with Ok () -> true | Error _ -> false)

(* --- Gantt ------------------------------------------------------------------ *)

module Gantt = Mm_sched.Gantt

let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_gantt_renders_all_resources () =
  let sched = schedule ~mapping:[| 0; 1; 0 |] () in
  let chart = Gantt.render sched in
  Alcotest.(check bool) "software PE row" true (string_contains chart "sw-pe0");
  Alcotest.(check bool) "hardware core row" true (string_contains chart "pe1.core");
  Alcotest.(check bool) "link row" true (string_contains chart "cl0");
  Alcotest.(check bool) "task tag" true (string_contains chart "t0");
  Alcotest.(check bool) "comm tag" true (string_contains chart "0>1")

let test_gantt_hides_links_on_request () =
  let sched = schedule ~mapping:[| 0; 1; 0 |] () in
  let chart =
    Gantt.render ~options:{ Gantt.default_options with Gantt.show_links = false } sched
  in
  Alcotest.(check bool) "no link row" false (string_contains chart "cl0")

let test_gantt_width_validation () =
  let sched = schedule () in
  match Gantt.render ~options:{ Gantt.width = 5; show_links = true } sched with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "tiny width accepted"

let test_gantt_scaled_annotations () =
  let sched = schedule () in
  let stretched = [| 0.02; 0.06; 0.12 |] in
  let chart = Gantt.render_scaled sched ~stretched_finish:stretched in
  Alcotest.(check bool) "mentions post-DVS completion" true
    (string_contains chart "post-DVS");
  Alcotest.(check bool) "mentions a scaled finish" true (string_contains chart "0.12")

let prop_gantt_total_renders =
  QCheck.Test.make ~name:"gantt renders any valid schedule" ~count:100
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, graph_kind) ->
      let graph =
        match graph_kind with
        | 0 -> F.chain_graph ()
        | 1 -> F.fork_graph ()
        | _ -> F.parallel_graph ()
      in
      let rng = Mm_util.Prng.create ~seed in
      let mapping = Array.init (Graph.n_tasks graph) (fun _ -> Mm_util.Prng.int rng 2) in
      let sched = schedule ~graph ~mapping () in
      String.length (Gantt.render sched) > 0)

let () =
  Alcotest.run "mm_sched"
    [
      ( "comm-mapping",
        [
          Alcotest.test_case "local" `Quick test_route_local;
          Alcotest.test_case "via bus" `Quick test_route_via_bus;
          Alcotest.test_case "picks fastest" `Quick test_route_picks_fastest;
          Alcotest.test_case "unroutable" `Quick test_route_unroutable;
        ] );
      ( "list-scheduler",
        [
          Alcotest.test_case "software chain" `Quick test_chain_all_software;
          Alcotest.test_case "chain crossing PEs" `Quick test_chain_crossing_pes;
          Alcotest.test_case "software serialises" `Quick test_sw_tasks_serialise;
          Alcotest.test_case "single core serialises" `Quick test_hw_single_core_serialises;
          Alcotest.test_case "two cores parallel" `Quick test_hw_two_cores_parallel;
          Alcotest.test_case "fork with cores" `Quick test_fork_on_hw_with_cores;
          Alcotest.test_case "bus contention" `Quick test_bus_contention_serialises_comms;
          Alcotest.test_case "unsupported mapping" `Quick test_unsupported_mapping_raises;
          Alcotest.test_case "zero-data edge" `Quick test_zero_data_edge;
          Alcotest.test_case "instance determinism" `Quick
            test_instance_assignment_deterministic;
          Alcotest.test_case "deadline priority" `Quick test_deadline_raises_priority;
          QCheck_alcotest.to_alcotest prop_random_mappings_valid;
        ] );
      ( "policies",
        [
          Alcotest.test_case "all valid" `Quick test_policies_all_valid;
          Alcotest.test_case "serial agreement" `Quick test_policies_same_serial_makespan;
          Alcotest.test_case "priority order" `Quick test_critical_path_priority_order;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "lateness" `Quick test_lateness;
          Alcotest.test_case "overlap caught" `Quick test_validate_catches_overlap;
          Alcotest.test_case "precedence caught" `Quick test_validate_catches_precedence;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "all resources" `Quick test_gantt_renders_all_resources;
          Alcotest.test_case "links hidden" `Quick test_gantt_hides_links_on_request;
          Alcotest.test_case "width validated" `Quick test_gantt_width_validation;
          Alcotest.test_case "scaled annotations" `Quick test_gantt_scaled_annotations;
          QCheck_alcotest.to_alcotest prop_gantt_total_renders;
        ] );
    ]
