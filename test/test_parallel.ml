(* Tests for mm_parallel: the domain Pool and the LRU Memo cache. *)

module Pool = Mm_parallel.Pool
module Memo = Mm_parallel.Memo

(* --- Pool -------------------------------------------------------------------- *)

let with_pool ~domains f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_matches_array_map () =
  with_pool ~domains:4 (fun pool ->
      List.iter
        (fun n ->
          let input = Array.init n (fun i -> i) in
          let f x = (x * x) - (3 * x) in
          Alcotest.(check (array int))
            (Printf.sprintf "size %d" n)
            (Array.map f input) (Pool.map pool f input))
        [ 0; 1; 2; 3; 7; 64; 1000 ])

let test_pool_single_domain () =
  with_pool ~domains:1 (fun pool ->
      Alcotest.(check int) "serial pool size" 1 (Pool.size pool);
      let input = Array.init 100 string_of_int in
      Alcotest.(check (array string))
        "serial fallback" input
        (Pool.map pool Fun.id input))

let test_pool_size_clamped () =
  with_pool ~domains:(-3) (fun pool ->
      Alcotest.(check int) "negative request clamps to 1" 1 (Pool.size pool));
  with_pool ~domains:3 (fun pool -> Alcotest.(check int) "three" 3 (Pool.size pool))

let test_pool_reuse_across_batches () =
  (* The same pool must serve many consecutive maps (one per GA
     generation) without wedging or cross-talk. *)
  with_pool ~domains:3 (fun pool ->
      for batch = 1 to 50 do
        let input = Array.init (10 + (batch mod 17)) (fun i -> (batch * 1000) + i) in
        Alcotest.(check (array int))
          (Printf.sprintf "batch %d" batch)
          (Array.map succ input) (Pool.map pool succ input)
      done)

exception Boom of int

let test_pool_propagates_exception () =
  with_pool ~domains:4 (fun pool ->
      let input = Array.init 100 (fun i -> i) in
      match Pool.map pool (fun x -> if x = 57 then raise (Boom x) else x) input with
      | _ -> Alcotest.fail "exception swallowed"
      | exception Boom 57 -> ()
      | exception Boom _ -> Alcotest.fail "wrong element blamed");
  (* The pool survives a failed batch. *)
  with_pool ~domains:4 (fun pool ->
      (try ignore (Pool.map pool (fun _ -> raise Exit) [| 1; 2; 3 |])
       with Exit -> ());
      Alcotest.(check (array int)) "usable after failure" [| 2; 3; 4 |]
        (Pool.map pool succ [| 1; 2; 3 |]))

let test_pool_all_elements_raise () =
  (* Every element raises, so every worker domain fails mid-batch; the
     batch must still terminate with the exception rather than hang on
     the unfinished-items count. *)
  with_pool ~domains:4 (fun pool ->
      (match Pool.map pool (fun x -> raise (Boom x)) (Array.init 64 Fun.id) with
      | _ -> Alcotest.fail "exception swallowed"
      | exception Boom _ -> ());
      Alcotest.(check (array int)) "usable after all-fail batch" [| 1; 2 |]
        (Pool.map pool Fun.id [| 1; 2 |]))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~domains:3 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  match Pool.map pool succ [| 1 |] with
  | _ -> Alcotest.fail "map on a shut-down pool must fail"
  | exception Invalid_argument _ -> ()

let test_pool_nonuniform_cost () =
  (* Chunked stealing must still fill every result slot when the
     per-element cost varies wildly. *)
  with_pool ~domains:4 (fun pool ->
      let input = Array.init 200 (fun i -> i) in
      let f x =
        let spin = if x mod 17 = 0 then 10_000 else 10 in
        let acc = ref 0 in
        for i = 1 to spin do
          acc := !acc + (i mod 7)
        done;
        x + (!acc * 0)
      in
      Alcotest.(check (array int)) "all slots" input (Pool.map pool f input))

(* --- Pool fault tolerance ----------------------------------------------------- *)

let test_pool_retry_heals_flaky_jobs () =
  (* Every element fails twice before succeeding; with a retry budget of
     three the batch must complete with the serial oracle's result and
     account one retry per failure. *)
  let n = 32 in
  let attempts = Array.init n (fun _ -> Atomic.make 0) in
  let f x =
    if Atomic.fetch_and_add attempts.(x) 1 < 2 then raise (Boom x);
    x * x
  in
  let config = { Pool.default_config with max_retries = 3; backoff = 1e-5 } in
  let pool = Pool.create ~domains:4 ~config () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let input = Array.init n Fun.id in
  Alcotest.(check (array int))
    "matches the serial oracle"
    (Array.map (fun x -> x * x) input)
    (Pool.map pool f input);
  Alcotest.(check int) "two retries per element" (2 * n) (Pool.stats pool).Pool.retries

let test_pool_retry_budget_exhausted () =
  (* A persistently failing job must still propagate its exception after
     the retries run out, and the pool must survive. *)
  let config = { Pool.default_config with max_retries = 2; backoff = 1e-5 } in
  let pool = Pool.create ~domains:2 ~config () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  (match Pool.map pool (fun x -> raise (Boom x)) [| 1; 2; 3; 4 |] with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Boom _ -> ());
  Alcotest.(check bool) "retries counted" true ((Pool.stats pool).Pool.retries >= 2);
  Alcotest.(check (array int)) "usable after exhausted retries" [| 2; 3 |]
    (Pool.map pool succ [| 1; 2 |])

(* Chaos injection at the pool's own site: armed worker raises are
   indistinguishable from flaky jobs, so a retry budget absorbs every
   one of them and the batch result matches the serial oracle exactly. *)
let test_pool_absorbs_injected_faults () =
  let module Fault = Mm_fault.Fault in
  Fault.arm ~seed:77
    [
      ("pool.worker_raise", { Fault.probability = 0.3; limit = -1; delay = 0.0 });
      ("pool.worker_stall", { Fault.probability = 0.1; limit = 4; delay = 0.001 });
    ];
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let config = { Pool.default_config with max_retries = 3; backoff = 1e-5 } in
  let pool = Pool.create ~domains:4 ~config () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let input = Array.init 200 Fun.id in
  Alcotest.(check (array int))
    "matches the serial oracle under injection"
    (Array.map (fun x -> x * x) input)
    (Pool.map pool (fun x -> x * x) input);
  let site = Fault.site "pool.worker_raise" in
  Alcotest.(check bool) "faults actually fired" true (Fault.injected site > 0);
  Alcotest.(check bool) "each injection retried" true
    ((Pool.stats pool).Pool.retries >= Fault.injected site)

(* Injected raises with NO retry budget must not fire at all — the
   injection site is compiled to respect [max_retries], so chaos never
   turns a configuration that cannot recover into one that fails. *)
let test_pool_injection_respects_budget () =
  let module Fault = Mm_fault.Fault in
  Fault.arm ~seed:77
    [
      ("pool.worker_raise", { Fault.probability = 1.0; limit = -1; delay = 0.0 });
    ];
  Fun.protect ~finally:Fault.disarm @@ fun () ->
  let pool = Pool.create ~domains:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check (array int))
    "no injection without a retry budget" [| 1; 4; 9 |]
    (Pool.map pool (fun x -> x * x) [| 1; 2; 3 |])

(* A job that hangs on every domain but the owner: the owner finishes
   its share, the timeout fires, the stragglers are abandoned and the
   owner completes the batch serially.  The owner's copy is slowed just
   enough that the workers reliably wake up and claim chunks before the
   batch is drained. *)
let test_pool_timeout_abandons_stragglers () =
  let owner = Domain.self () in
  let f x =
    if Domain.self () <> owner then Unix.sleepf 0.3 else Unix.sleepf 0.002;
    x + 1
  in
  let config =
    { Pool.default_config with timeout = 0.05; max_respawns = 100 }
  in
  let pool = Pool.create ~domains:4 ~config () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let input = Array.init 64 Fun.id in
  Alcotest.(check (array int))
    "abandoned batch still returns the serial oracle's result"
    (Array.map succ input) (Pool.map pool f input);
  let stats = Pool.stats pool in
  Alcotest.(check bool) "timeout counted" true (stats.Pool.timeouts >= 1);
  Alcotest.(check bool) "replacements spawned" true (stats.Pool.respawns >= 3);
  Alcotest.(check bool) "not yet degraded" false stats.Pool.degraded;
  (* The respawned workers must serve later batches normally. *)
  Alcotest.(check (array int)) "usable after abandon" [| 1; 2; 3 |]
    (Pool.map pool Fun.id [| 1; 2; 3 |])

let test_pool_degrades_to_serial () =
  (* Workers that die faster than the respawn budget allows: the pool
     must fall back to serial evaluation instead of spawning forever —
     and keep producing correct results. *)
  let owner = Domain.self () in
  let f x =
    if Domain.self () <> owner then Unix.sleepf 0.3 else Unix.sleepf 0.002;
    x * 2
  in
  let config = { Pool.default_config with timeout = 0.05; max_respawns = 2 } in
  let pool = Pool.create ~domains:4 ~config () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let input = Array.init 32 Fun.id in
  Alcotest.(check (array int))
    "degrading batch result" (Array.map (fun x -> x * 2) input)
    (Pool.map pool f input);
  let stats = Pool.stats pool in
  Alcotest.(check bool) "degraded" true stats.Pool.degraded;
  Alcotest.(check int) "degraded pool reports size 1" 1 (Pool.size pool);
  (* Serial from here on: even the would-hang jobs run on the owner. *)
  Alcotest.(check (array int))
    "serial fallback result" (Array.map (fun x -> x * 2) input)
    (Pool.map pool f input)

(* --- Memo -------------------------------------------------------------------- *)

let test_memo_hit_and_miss_accounting () =
  let cache = Memo.create ~capacity:8 () in
  Alcotest.(check (option int)) "cold miss" None (Memo.find cache [| 1; 2; 3 |]);
  Memo.add cache [| 1; 2; 3 |] 42;
  Alcotest.(check (option int)) "hit" (Some 42) (Memo.find cache [| 1; 2; 3 |]);
  Alcotest.(check (option int)) "other key misses" None (Memo.find cache [| 3; 2; 1 |]);
  Alcotest.(check int) "hits" 1 (Memo.hits cache);
  Alcotest.(check int) "misses" 2 (Memo.misses cache);
  Alcotest.(check (float 1e-9)) "hit rate" (1.0 /. 3.0) (Memo.hit_rate cache)

let test_memo_lru_eviction () =
  let cache = Memo.create ~capacity:3 () in
  Memo.add cache [| 1 |] 1;
  Memo.add cache [| 2 |] 2;
  Memo.add cache [| 3 |] 3;
  (* Touch [|1|] so [|2|] becomes the LRU entry, then overflow. *)
  ignore (Memo.find cache [| 1 |]);
  Memo.add cache [| 4 |] 4;
  Alcotest.(check bool) "evicted the LRU entry" false (Memo.mem cache [| 2 |]);
  Alcotest.(check bool) "recently used survives" true (Memo.mem cache [| 1 |]);
  Alcotest.(check bool) "newest survives" true (Memo.mem cache [| 4 |]);
  Alcotest.(check int) "bounded" 3 (Memo.length cache);
  Alcotest.(check int) "eviction counted" 1 (Memo.evictions cache)

let test_memo_eviction_order_is_recency () =
  let cache = Memo.create ~capacity:2 () in
  Memo.add cache [| 1 |] 1;
  Memo.add cache [| 2 |] 2;
  Memo.add cache [| 3 |] 3;
  (* [|1|] was least recent. *)
  Alcotest.(check bool) "1 gone" false (Memo.mem cache [| 1 |]);
  Memo.add cache [| 4 |] 4;
  Alcotest.(check bool) "2 gone" false (Memo.mem cache [| 2 |]);
  Alcotest.(check bool) "3 and 4 present" true
    (Memo.mem cache [| 3 |] && Memo.mem cache [| 4 |])

let test_memo_overwrite_no_eviction () =
  let cache = Memo.create ~capacity:2 () in
  Memo.add cache [| 1 |] 1;
  Memo.add cache [| 2 |] 2;
  Memo.add cache [| 1 |] 10;
  Alcotest.(check int) "still 2 entries" 2 (Memo.length cache);
  Alcotest.(check int) "no eviction" 0 (Memo.evictions cache);
  Alcotest.(check (option int)) "overwritten" (Some 10) (Memo.find cache [| 1 |])

let test_memo_does_not_alias_keys () =
  let cache = Memo.create ~capacity:4 () in
  let key = [| 1; 2; 3 |] in
  Memo.add cache key 7;
  key.(0) <- 99;
  Alcotest.(check (option int)) "mutated caller array does not corrupt the cache"
    (Some 7)
    (Memo.find cache [| 1; 2; 3 |])

let test_memo_capacity_one () =
  let cache = Memo.create ~capacity:1 () in
  Memo.add cache [| 1 |] 1;
  Memo.add cache [| 2 |] 2;
  Alcotest.(check int) "one entry" 1 (Memo.length cache);
  Alcotest.(check (option int)) "latest wins" (Some 2) (Memo.find cache [| 2 |]);
  match Memo.create ~capacity:0 () with
  | _ -> Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ()

let test_memo_reset_stats () =
  (* reset_stats zeroes the traffic counters but keeps the contents: the
     experiment harness shares one cache across an arm's runs and resets
     between them so each run's hit rate is its own. *)
  let cache = Memo.create ~capacity:2 () in
  Memo.add cache [| 1 |] 1;
  ignore (Memo.find cache [| 1 |]);
  ignore (Memo.find cache [| 9 |]);
  Memo.add cache [| 2 |] 2;
  Memo.add cache [| 3 |] 3;
  Alcotest.(check int) "hits accumulated" 1 (Memo.hits cache);
  Alcotest.(check int) "misses accumulated" 1 (Memo.misses cache);
  Alcotest.(check int) "evictions accumulated" 1 (Memo.evictions cache);
  Memo.reset_stats cache;
  Alcotest.(check int) "hits zeroed" 0 (Memo.hits cache);
  Alcotest.(check int) "misses zeroed" 0 (Memo.misses cache);
  Alcotest.(check int) "evictions zeroed" 0 (Memo.evictions cache);
  Alcotest.(check int) "contents kept" 2 (Memo.length cache);
  Alcotest.(check (option int)) "cached value kept" (Some 3) (Memo.find cache [| 3 |])

let test_memo_clear () =
  let cache = Memo.create ~capacity:4 () in
  Memo.add cache [| 1 |] 1;
  ignore (Memo.find cache [| 1 |]);
  Memo.clear cache;
  Alcotest.(check int) "empty" 0 (Memo.length cache);
  Alcotest.(check int) "counters kept" 1 (Memo.hits cache);
  Alcotest.(check (option int)) "gone" None (Memo.find cache [| 1 |])

let test_memo_pinned_entry_survives_eviction () =
  let cache = Memo.create ~capacity:2 () in
  Memo.add ~pin:true cache [| 1 |] 1;
  Memo.add cache [| 2 |] 2;
  Memo.add cache [| 3 |] 3;
  (* [|1|] is the LRU entry but pinned; [|2|] must go instead. *)
  Alcotest.(check bool) "pinned survives" true (Memo.mem cache [| 1 |]);
  Alcotest.(check bool) "unpinned LRU evicted" false (Memo.mem cache [| 2 |]);
  Alcotest.(check int) "one pin" 1 (Memo.pinned cache);
  Memo.unpin_all cache;
  Alcotest.(check int) "pins released" 0 (Memo.pinned cache);
  Memo.add cache [| 4 |] 4;
  Alcotest.(check bool) "unpinned entry evictable again" false (Memo.mem cache [| 1 |])

let test_memo_pin_on_lookup () =
  (* The batch evaluator pins its working set as it looks entries up; a
     pinned hit must survive even once younger entries push it to the
     LRU position. *)
  let cache = Memo.create ~capacity:2 () in
  Memo.add cache [| 1 |] 1;
  Memo.add cache [| 2 |] 2;
  Alcotest.(check (option int)) "pinning hit" (Some 1) (Memo.find ~pin:true cache [| 1 |]);
  Memo.add cache [| 3 |] 3;  (* evicts [|2|], the unpinned LRU *)
  Memo.add cache [| 4 |] 4;  (* [|1|] is now LRU but pinned: [|3|] goes *)
  Alcotest.(check bool) "pinned lookup survives" true (Memo.mem cache [| 1 |]);
  Alcotest.(check bool) "younger unpinned evicted" false (Memo.mem cache [| 3 |]);
  Alcotest.(check bool) "newest present" true (Memo.mem cache [| 4 |])

let test_memo_pins_may_overflow_capacity () =
  (* With every entry pinned nothing is evictable: the cache is allowed
     to exceed its capacity until the pins are released, and unpin_all
     trims it back. *)
  let cache = Memo.create ~capacity:2 () in
  Memo.add ~pin:true cache [| 1 |] 1;
  Memo.add ~pin:true cache [| 2 |] 2;
  Memo.add ~pin:true cache [| 3 |] 3;
  Alcotest.(check int) "temporarily over capacity" 3 (Memo.length cache);
  Alcotest.(check int) "no forced eviction" 0 (Memo.evictions cache);
  Memo.unpin_all cache;
  Alcotest.(check int) "trimmed back to capacity" 2 (Memo.length cache);
  Alcotest.(check bool) "newest kept after trim" true (Memo.mem cache [| 3 |])

let test_memo_bypass_on_poor_hit_rate () =
  (* Probe window 4, min hit rate 50%: all-miss traffic must trip the
     bypass exactly when hits + misses reach the window. *)
  let cache = Memo.create ~probe_window:4 ~min_hit_rate:0.5 ~capacity:8 () in
  for i = 1 to 3 do
    ignore (Memo.find cache [| i |]);
    Memo.add cache [| i |] i
  done;
  Alcotest.(check bool) "still probing" false (Memo.bypassed cache);
  ignore (Memo.find cache [| 99 |]);
  Alcotest.(check bool) "bypassed after the probe window" true (Memo.bypassed cache);
  (* A bypassed cache answers nothing, stores nothing, and counts the
     traffic it waved through. *)
  Alcotest.(check (option int)) "hit suppressed" None (Memo.find cache [| 1 |]);
  Memo.add cache [| 42 |] 42;
  Alcotest.(check bool) "add is a no-op" false (Memo.mem cache [| 42 |]);
  Alcotest.(check int) "bypassed lookups counted" 1 (Memo.bypassed_lookups cache);
  Alcotest.(check int) "misses frozen at the window" 4 (Memo.misses cache);
  (* reset_stats does not re-arm the probe. *)
  Memo.reset_stats cache;
  Alcotest.(check bool) "stays bypassed after reset_stats" true (Memo.bypassed cache)

let test_memo_bypass_not_tripped_by_good_traffic () =
  let cache = Memo.create ~probe_window:4 ~min_hit_rate:0.5 ~capacity:8 () in
  ignore (Memo.find cache [| 1 |]);
  Memo.add cache [| 1 |] 1;
  for _ = 1 to 3 do ignore (Memo.find cache [| 1 |]) done;
  Alcotest.(check bool) "hit rate above threshold: keeps caching" false
    (Memo.bypassed cache);
  Alcotest.(check (option int)) "still answering" (Some 1) (Memo.find cache [| 1 |]);
  (* The default create has no probe window: never bypasses. *)
  let plain = Memo.create ~capacity:2 () in
  for i = 1 to 50 do ignore (Memo.find plain [| i |]) done;
  Alcotest.(check bool) "probe_window 0 never bypasses" false (Memo.bypassed plain)

let test_pool_wait_split_stats () =
  (* The conflated wait metric is gone: queue wait (parked between
     batches) and barrier wait (owner idle at the batch barrier) are
     reported separately and are both non-negative. *)
  let pool = Pool.create ~domains:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  for _ = 1 to 5 do
    ignore (Pool.map pool (fun x -> x * x) (Array.init 64 Fun.id))
  done;
  let stats = Pool.stats pool in
  Alcotest.(check bool) "queue wait non-negative" true
    (stats.Pool.queue_wait_seconds >= 0.0);
  Alcotest.(check bool) "barrier wait non-negative" true
    (stats.Pool.barrier_wait_seconds >= 0.0);
  Alcotest.(check bool) "not degraded" false stats.Pool.degraded

(* Property: a capacity-c cache behaves like its unbounded reference on
   the most recent <= c distinct keys. *)
let prop_memo_model =
  QCheck.Test.make ~name:"memo agrees with an association-list model" ~count:200
    QCheck.(list (pair (int_range 0 9) small_int))
    (fun operations ->
      let capacity = 4 in
      let cache = Memo.create ~capacity () in
      (* Model: association list, most recent first. *)
      let model = ref [] in
      List.for_all
        (fun (key_id, value) ->
          let key = [| key_id; key_id * 2 |] in
          let model_hit = List.assoc_opt key_id !model in
          let cache_hit = Memo.find cache key in
          (* Recency refresh on hit. *)
          (match model_hit with
          | Some v ->
            model := (key_id, v) :: List.remove_assoc key_id !model
          | None ->
            Memo.add cache key value;
            model :=
              (let bumped = (key_id, value) :: List.remove_assoc key_id !model in
               if List.length bumped > capacity then
                 List.filteri (fun i _ -> i < capacity) bumped
               else bumped));
          cache_hit = model_hit)
        operations)

let () =
  Alcotest.run "mm_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "matches Array.map" `Quick test_pool_matches_array_map;
          Alcotest.test_case "single domain" `Quick test_pool_single_domain;
          Alcotest.test_case "size clamped" `Quick test_pool_size_clamped;
          Alcotest.test_case "reuse across batches" `Quick test_pool_reuse_across_batches;
          Alcotest.test_case "exception propagation" `Quick test_pool_propagates_exception;
          Alcotest.test_case "all elements raise" `Quick test_pool_all_elements_raise;
          Alcotest.test_case "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
          Alcotest.test_case "non-uniform cost" `Quick test_pool_nonuniform_cost;
          Alcotest.test_case "wait split stats" `Quick test_pool_wait_split_stats;
        ] );
      ( "pool fault tolerance",
        [
          Alcotest.test_case "retry heals flaky jobs" `Quick
            test_pool_retry_heals_flaky_jobs;
          Alcotest.test_case "retry budget exhausted" `Quick
            test_pool_retry_budget_exhausted;
          Alcotest.test_case "timeout abandons stragglers" `Quick
            test_pool_timeout_abandons_stragglers;
          Alcotest.test_case "degrades to serial" `Quick test_pool_degrades_to_serial;
          Alcotest.test_case "absorbs injected faults" `Quick
            test_pool_absorbs_injected_faults;
          Alcotest.test_case "injection respects the retry budget" `Quick
            test_pool_injection_respects_budget;
        ] );
      ( "memo",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_memo_hit_and_miss_accounting;
          Alcotest.test_case "LRU eviction" `Quick test_memo_lru_eviction;
          Alcotest.test_case "eviction order" `Quick test_memo_eviction_order_is_recency;
          Alcotest.test_case "overwrite" `Quick test_memo_overwrite_no_eviction;
          Alcotest.test_case "keys copied" `Quick test_memo_does_not_alias_keys;
          Alcotest.test_case "capacity one" `Quick test_memo_capacity_one;
          Alcotest.test_case "reset_stats" `Quick test_memo_reset_stats;
          Alcotest.test_case "clear" `Quick test_memo_clear;
          Alcotest.test_case "pinned entry survives eviction" `Quick
            test_memo_pinned_entry_survives_eviction;
          Alcotest.test_case "pin on lookup" `Quick test_memo_pin_on_lookup;
          Alcotest.test_case "pins may overflow capacity" `Quick
            test_memo_pins_may_overflow_capacity;
          Alcotest.test_case "bypass on poor hit rate" `Quick
            test_memo_bypass_on_poor_hit_rate;
          Alcotest.test_case "bypass not tripped by good traffic" `Quick
            test_memo_bypass_not_tripped_by_good_traffic;
          QCheck_alcotest.to_alcotest prop_memo_model;
        ] );
    ]
