(* Tests for mm_dvs: Hw_transform and Scaling.

   Fixture recap: GPP0 carries a 2.0/1.0 V rail with Vt = 0, so dropping
   to half voltage doubles execution time and quarters dynamic energy. *)

module Graph = Mm_taskgraph.Graph
module Arch = Mm_arch.Architecture
module Voltage = Mm_arch.Voltage
module List_scheduler = Mm_sched.List_scheduler
module Schedule = Mm_sched.Schedule
module Resource = Mm_sched.Resource
module Hw = Mm_dvs.Hw_transform
module Scaling = Mm_dvs.Scaling
module F = Fixtures

let schedule ?(arch = F.arch ()) ?(mapping = [| 0; 0; 0 |]) ?(period = 1.0)
    ?(instances = fun ~pe:_ ~ty:_ -> 1) ?(graph = F.chain_graph ()) () =
  List_scheduler.run
    (List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech:(F.tech arch) ~mapping
       ~instances ~period ())

let hw_slot ~task ~instance ~start ~duration ~power =
  ( {
      Schedule.task;
      resource = Resource.Hw_core { pe = 1; ty = 0; instance };
      start;
      duration;
    },
    power )

(* --- Hw_transform ---------------------------------------------------------- *)

let test_fig5_segments () =
  (* Two overlapping tasks on two cores: three segments. *)
  let slots =
    [
      hw_slot ~task:0 ~instance:0 ~start:0.0 ~duration:4.0 ~power:0.01;
      hw_slot ~task:1 ~instance:1 ~start:2.0 ~duration:4.0 ~power:0.02;
    ]
  in
  match Hw.segments ~slots with
  | [ s0; s1; s2 ] ->
    Alcotest.(check (float 1e-9)) "s0 duration" 2.0 s0.Hw.duration;
    Alcotest.(check (float 1e-9)) "s0 power" 0.01 s0.Hw.power;
    Alcotest.(check (float 1e-9)) "s1 power summed" 0.03 s1.Hw.power;
    Alcotest.(check (float 1e-9)) "s2 power" 0.02 s2.Hw.power;
    Alcotest.(check (list int)) "s1 runs both" [ 0; 1 ] (List.sort compare s1.Hw.running);
    Alcotest.(check (list int)) "s1 finishes τ0" [ 0 ] s1.Hw.finishing;
    Alcotest.(check (list int)) "s0 starts τ0" [ 0 ] s0.Hw.starting
  | segs -> Alcotest.fail (Printf.sprintf "expected 3 segments, got %d" (List.length segs))

let test_segments_skip_idle () =
  let slots =
    [
      hw_slot ~task:0 ~instance:0 ~start:0.0 ~duration:1.0 ~power:0.01;
      hw_slot ~task:1 ~instance:0 ~start:5.0 ~duration:1.0 ~power:0.01;
    ]
  in
  let segs = Hw.segments ~slots in
  Alcotest.(check int) "idle gap skipped" 2 (List.length segs);
  Alcotest.(check (float 1e-9)) "second starts at 5" 5.0 (List.nth segs 1).Hw.start

let test_segments_preserve_energy () =
  let slots =
    [
      hw_slot ~task:0 ~instance:0 ~start:0.0 ~duration:2.0 ~power:0.012;
      hw_slot ~task:1 ~instance:1 ~start:0.0 ~duration:3.0 ~power:0.02;
      hw_slot ~task:2 ~instance:0 ~start:2.0 ~duration:2.5 ~power:0.014;
    ]
  in
  let direct =
    List.fold_left
      (fun acc ((s : Schedule.task_slot), p) -> acc +. (p *. s.Schedule.duration))
      0.0 slots
  in
  Alcotest.(check (float 1e-9)) "energy preserved" direct
    (Hw.total_energy_nominal (Hw.segments ~slots))

let test_first_last_segment () =
  let slots =
    [
      hw_slot ~task:0 ~instance:0 ~start:0.0 ~duration:4.0 ~power:0.01;
      hw_slot ~task:1 ~instance:1 ~start:2.0 ~duration:4.0 ~power:0.02;
    ]
  in
  let segs = Hw.segments ~slots in
  Alcotest.(check int) "τ0 first" 0 (Hw.first_segment_of segs 0);
  Alcotest.(check int) "τ0 last" 1 (Hw.last_segment_of segs 0);
  Alcotest.(check int) "τ1 first" 1 (Hw.first_segment_of segs 1);
  Alcotest.(check int) "τ1 last" 2 (Hw.last_segment_of segs 1);
  Alcotest.check_raises "unknown task" Not_found (fun () ->
      ignore (Hw.first_segment_of segs 9))

let prop_segments_energy_preserved =
  QCheck.Test.make ~name:"serialisation preserves nominal energy" ~count:200
    QCheck.(small_int)
    (fun seed ->
      let rng = Mm_util.Prng.create ~seed in
      let n = 1 + Mm_util.Prng.int rng 8 in
      (* Random slots on 3 core instances, sequential per instance. *)
      let next_free = Array.make 3 0.0 in
      let slots =
        List.init n (fun task ->
            let instance = Mm_util.Prng.int rng 3 in
            let gap = Mm_util.Prng.float rng 2.0 in
            let duration = 0.1 +. Mm_util.Prng.float rng 3.0 in
            let start = next_free.(instance) +. gap in
            next_free.(instance) <- start +. duration;
            hw_slot ~task ~instance ~start ~duration
              ~power:(0.001 +. Mm_util.Prng.float rng 0.05))
      in
      let direct =
        List.fold_left
          (fun acc ((s : Schedule.task_slot), p) -> acc +. (p *. s.Schedule.duration))
          0.0 slots
      in
      let via_segments = Hw.total_energy_nominal (Hw.segments ~slots) in
      Float.abs (direct -. via_segments) < 1e-9 *. Float.max 1.0 direct)

(* --- Scaling: software tasks ----------------------------------------------- *)

let chain_energy_at_vmax = (0.4 *. 10e-3) +. (0.5 *. 20e-3) +. (0.6 *. 30e-3)

let test_nominal_energy () =
  let graph = F.chain_graph () in
  let arch = F.arch () in
  let sched = schedule ~arch ~graph () in
  let result = Scaling.nominal ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
  Alcotest.(check bool) "feasible" true result.Scaling.feasible;
  Alcotest.(check (float 1e-12)) "nominal energy" chain_energy_at_vmax
    result.Scaling.total_dyn_energy;
  Alcotest.(check int) "no segments" 0 (List.length result.Scaling.hw_segments)

let test_scaling_uses_slack () =
  (* Chain needs 60 ms at Vmax; with period 1 s there is plenty of slack,
     so every task drops to 1.0 V: 2x time (still < 1 s), 1/4 energy. *)
  let graph = F.chain_graph () in
  let arch = F.arch () in
  let sched = schedule ~arch ~graph ~period:1.0 () in
  let result = Scaling.run ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
  Alcotest.(check bool) "feasible" true result.Scaling.feasible;
  Alcotest.(check (float 1e-12)) "quartered energy" (chain_energy_at_vmax /. 4.0)
    result.Scaling.total_dyn_energy;
  Array.iter
    (fun v -> Alcotest.(check (float 1e-9)) "all at 1.0V" 1.0 v)
    result.Scaling.task_voltages;
  (* Stretched schedule: 20 + 40 + 60 = 120 ms. *)
  Alcotest.(check (float 1e-9)) "stretched finish" 120e-3
    result.Scaling.stretched_finish.(2)

let test_scaling_respects_tight_period () =
  (* Period 60 ms: zero slack, nothing can be scaled. *)
  let graph = F.chain_graph () in
  let arch = F.arch () in
  let sched = schedule ~arch ~graph ~period:60e-3 () in
  let result = Scaling.run ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
  Alcotest.(check bool) "feasible" true result.Scaling.feasible;
  Alcotest.(check (float 1e-12)) "no scaling possible" chain_energy_at_vmax
    result.Scaling.total_dyn_energy

let test_scaling_partial_slack () =
  (* Period 80 ms: 20 ms of slack.  Scaling τ0 (A, 10 ms) to 1.0 V adds
     10 ms; scaling τ1/τ2 would add 20/30 ms.  The greedy picks the best
     gain/delay ratios that fit: only one of τ0 (+10) or τ1 (+20) or a
     combination within 20 ms — τ1 alone adds exactly 20 ms and saves
     0.5*20m*3/4 = 7.5 mJ; τ0 saves 3 mJ for 10 ms.  Ratios are equal
     (0.375 mW), ties break toward the larger absolute gain: τ1. *)
  let graph = F.chain_graph () in
  let arch = F.arch () in
  let sched = schedule ~arch ~graph ~period:80e-3 () in
  let result = Scaling.run ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
  Alcotest.(check bool) "feasible" true result.Scaling.feasible;
  Alcotest.(check (float 1e-9)) "τ1 scaled" 1.0 result.Scaling.task_voltages.(1);
  Alcotest.(check (float 1e-9)) "τ0 not scaled" 2.0 result.Scaling.task_voltages.(0);
  Alcotest.(check (float 1e-9)) "τ2 not scaled" 2.0 result.Scaling.task_voltages.(2);
  let expected =
    (0.4 *. 10e-3) +. (0.5 *. 20e-3 /. 4.0) +. (0.6 *. 30e-3)
  in
  Alcotest.(check (float 1e-12)) "energy" expected result.Scaling.total_dyn_energy

let test_infeasible_schedule_not_scaled () =
  (* Period 50 ms < 60 ms makespan: infeasible, scaling refuses. *)
  let graph = F.chain_graph () in
  let arch = F.arch () in
  let sched = schedule ~arch ~graph ~period:50e-3 () in
  let result = Scaling.run ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
  Alcotest.(check bool) "not feasible" false result.Scaling.feasible;
  Alcotest.(check (float 1e-12)) "energy unchanged" chain_energy_at_vmax
    result.Scaling.total_dyn_energy

let test_config_disables_software_scaling () =
  let graph = F.chain_graph () in
  let arch = F.arch () in
  let sched = schedule ~arch ~graph ~period:1.0 () in
  let result =
    Scaling.run
      ~config:{ Scaling.default_config with Scaling.scale_software = false }
      ~graph ~arch ~tech:(F.tech arch) ~schedule:sched ()
  in
  Alcotest.(check (float 1e-12)) "software untouched" chain_energy_at_vmax
    result.Scaling.total_dyn_energy

let test_scaling_multi_level_descent () =
  (* A three-level rail (2.0 / 1.5 / 1.0, Vt = 0): delay factors 1, 4/3,
     2; energy factors 1, 0.5625, 0.25.  A single 10 ms task of type A
     (0.4 W) with period 15 ms can only afford the middle level. *)
  let rail = Mm_arch.Voltage.make ~levels:[ 2.0; 1.5; 1.0 ] ~threshold:0.0 in
  let gpp =
    Mm_arch.Pe.make ~id:0 ~name:"GPP0" ~kind:Mm_arch.Pe.Gpp ~static_power:0.0 ~rail ()
  in
  let arch = Arch.make ~name:"tri" ~pes:[ gpp ] ~cls:[] in
  let tech =
    Mm_arch.Tech_lib.add Mm_arch.Tech_lib.empty ~ty:F.ty_a ~pe:gpp
      (Mm_arch.Tech_lib.impl ~exec_time:10e-3 ~dyn_power:0.4 ())
  in
  let graph =
    Mm_taskgraph.Graph.make ~name:"single" ~tasks:[| F.task 0 F.ty_a |] ~edges:[]
  in
  let sched =
    Mm_sched.List_scheduler.run
      (Mm_sched.List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech
         ~mapping:[| 0 |]
         ~instances:(fun ~pe:_ ~ty:_ -> 1)
         ~period:15e-3 ())
  in
  let result = Scaling.run ~graph ~arch ~tech ~schedule:sched () in
  Alcotest.(check (float 1e-9)) "middle level" 1.5 result.Scaling.task_voltages.(0);
  Alcotest.(check (float 1e-12)) "energy at 0.5625x" (0.4 *. 10e-3 *. 0.5625)
    result.Scaling.total_dyn_energy;
  (* 10 ms * 4/3 = 13.33 ms <= 15 ms. *)
  Alcotest.(check bool) "fits the period" true
    (result.Scaling.stretched_finish.(0) <= 15e-3 +. 1e-9)

(* --- Even-slack baseline ----------------------------------------------------- *)

let even_config = { Scaling.default_config with Scaling.strategy = Scaling.Even_slack }

let test_even_slack_ample_slack_matches_greedy () =
  (* Period 1 s: both strategies drop everything to the bottom level. *)
  let graph = F.chain_graph () in
  let arch = F.arch () in
  let sched = schedule ~arch ~graph ~period:1.0 () in
  let even = Scaling.run ~config:even_config ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
  Alcotest.(check (float 1e-12)) "quartered too" (chain_energy_at_vmax /. 4.0)
    even.Scaling.total_dyn_energy

let test_even_slack_wastes_discrete_slack () =
  (* Period 80 ms: the uniform factor is 80/60 = 1.33, below the only
     available slowdown (2.0), so EVEN scales nothing — while the greedy
     gradient converts the same slack into a 7.5 mJ saving on τ1.  This
     is precisely the power-variation argument of [10]. *)
  let graph = F.chain_graph () in
  let arch = F.arch () in
  let sched = schedule ~arch ~graph ~period:80e-3 () in
  let even = Scaling.run ~config:even_config ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
  let greedy = Scaling.run ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
  Alcotest.(check (float 1e-12)) "even saves nothing" chain_energy_at_vmax
    even.Scaling.total_dyn_energy;
  Alcotest.(check bool) "greedy beats even" true
    (greedy.Scaling.total_dyn_energy < even.Scaling.total_dyn_energy)

let test_even_slack_meets_deadlines () =
  let graph = F.fork_graph () in
  let arch = F.arch ~dvs_asic:true () in
  let sched = schedule ~arch ~graph ~mapping:[| 0; 1; 1; 0 |] ~period:0.2 () in
  let even = Scaling.run ~config:even_config ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
  Alcotest.(check bool) "feasible" true even.Scaling.feasible;
  Array.iter
    (fun finish -> Alcotest.(check bool) "within period" true (finish <= 0.2 +. 1e-9))
    even.Scaling.stretched_finish

let prop_greedy_never_worse_than_even =
  QCheck.Test.make ~name:"greedy gradient <= even slack energy" ~count:100
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, graph_kind) ->
      let graph =
        match graph_kind with
        | 0 -> F.chain_graph ()
        | 1 -> F.fork_graph ()
        | _ -> F.parallel_graph ()
      in
      let rng = Mm_util.Prng.create ~seed in
      let mapping = Array.init (Graph.n_tasks graph) (fun _ -> Mm_util.Prng.int rng 2) in
      let period = 0.05 +. Mm_util.Prng.float rng 0.3 in
      let arch = F.arch ~dvs_asic:(Mm_util.Prng.bool rng) () in
      let sched =
        List_scheduler.run
          (List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech:(F.tech arch)
             ~mapping
             ~instances:(fun ~pe:_ ~ty:_ -> 2)
             ~period ())
      in
      let even = Scaling.run ~config:even_config ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
      let greedy = Scaling.run ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
      greedy.Scaling.total_dyn_energy <= even.Scaling.total_dyn_energy +. 1e-12)

(* --- Scaling: hardware components (Fig. 5 path) ---------------------------- *)

let test_hw_component_scaled_through_segments () =
  (* Both B tasks on a DVS ASIC with 2 cores, no other work, period 1 s:
     the whole component scales to 1.0 V. *)
  let arch = F.arch ~dvs_asic:true () in
  let graph = F.parallel_graph () in
  let sched =
    schedule ~arch ~graph ~mapping:[| 1; 1 |]
      ~instances:(fun ~pe ~ty:_ -> if pe = 1 then 2 else 1)
      ~period:1.0 ()
  in
  let result = Scaling.run ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
  Alcotest.(check bool) "feasible" true result.Scaling.feasible;
  Alcotest.(check bool) "has segments" true (result.Scaling.hw_segments <> []);
  List.iter
    (fun (hs : Scaling.hw_segment) ->
      Alcotest.(check (float 1e-9)) "segment at vmin" 1.0 hs.Scaling.voltage)
    result.Scaling.hw_segments;
  (* Nominal energy 2 * 0.005 * 2ms = 20 µJ; quartered at half voltage. *)
  Alcotest.(check (float 1e-12)) "quartered hw energy" (2.0 *. 0.005 *. 2e-3 /. 4.0)
    result.Scaling.total_dyn_energy

let test_hw_scaling_disabled_by_config () =
  let arch = F.arch ~dvs_asic:true () in
  let graph = F.parallel_graph () in
  let sched = schedule ~arch ~graph ~mapping:[| 1; 1 |] ~period:1.0 () in
  let result =
    Scaling.run
      ~config:{ Scaling.default_config with Scaling.scale_hardware = false }
      ~graph ~arch ~tech:(F.tech arch) ~schedule:sched ()
  in
  Alcotest.(check int) "no segments" 0 (List.length result.Scaling.hw_segments);
  Alcotest.(check (float 1e-12)) "nominal hw energy" (2.0 *. 0.005 *. 2e-3)
    result.Scaling.total_dyn_energy

let test_hw_segment_energy_prorated () =
  (* Energy bookkeeping: per-task energies must sum to the segment total. *)
  let arch = F.arch ~dvs_asic:true () in
  let graph = F.parallel_graph () in
  let sched =
    schedule ~arch ~graph ~mapping:[| 1; 1 |]
      ~instances:(fun ~pe ~ty:_ -> if pe = 1 then 2 else 1)
      ~period:1.0 ()
  in
  let result = Scaling.run ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
  let task_sum = Array.fold_left ( +. ) 0.0 result.Scaling.task_energy in
  let segment_sum =
    List.fold_left (fun acc (hs : Scaling.hw_segment) -> acc +. hs.Scaling.energy) 0.0
      result.Scaling.hw_segments
  in
  Alcotest.(check (float 1e-15)) "prorated share sums" segment_sum task_sum

(* --- Heap fast path vs seed reference (float-bit equivalence) --------------- *)

(* The flat heap implementation behind [Scaling.run] must reproduce the
   seed's greedy choices — and hence every output float — bit for bit
   (DESIGN.md §13).  Platforms are randomised over 1–4 PEs and rails of
   1–4 discrete levels; both strategies and all config toggles are
   exercised, plus the degenerate shapes (zero slack, single slot). *)

let fuzz_count default =
  match Option.bind (Sys.getenv_opt "MM_FUZZ_COUNT") int_of_string_opt with
  | Some n -> n
  | None -> default

let bits = Int64.bits_of_float
let float_bits_equal a b = bits a = bits b

let farray_bits_equal a b =
  Array.length a = Array.length b && Array.for_all2 float_bits_equal a b

let results_bit_identical (a : Scaling.t) (b : Scaling.t) =
  a.Scaling.feasible = b.Scaling.feasible
  && farray_bits_equal a.Scaling.task_voltages b.Scaling.task_voltages
  && farray_bits_equal a.Scaling.task_energy b.Scaling.task_energy
  && farray_bits_equal a.Scaling.stretched_finish b.Scaling.stretched_finish
  && float_bits_equal a.Scaling.comm_energy b.Scaling.comm_energy
  && float_bits_equal a.Scaling.total_dyn_energy b.Scaling.total_dyn_energy
  && List.length a.Scaling.hw_segments = List.length b.Scaling.hw_segments
  && List.for_all2
       (fun (x : Scaling.hw_segment) (y : Scaling.hw_segment) ->
         x.Scaling.pe = y.Scaling.pe
         && x.Scaling.segment = y.Scaling.segment
         && float_bits_equal x.Scaling.voltage y.Scaling.voltage
         && float_bits_equal x.Scaling.scaled_duration y.Scaling.scaled_duration
         && float_bits_equal x.Scaling.energy y.Scaling.energy)
       a.Scaling.hw_segments b.Scaling.hw_segments

let random_rail rng =
  (* 1–4 strictly descending levels, threshold well below Vmin. *)
  let n_levels = 1 + Mm_util.Prng.int rng 4 in
  let vmax = 1.8 +. Mm_util.Prng.float rng 0.8 in
  let v = ref vmax in
  let levels =
    List.init n_levels (fun k ->
        if k > 0 then v := !v -. (0.15 +. Mm_util.Prng.float rng 0.2);
        !v)
  in
  Voltage.make ~levels ~threshold:(Mm_util.Prng.float rng 0.3)

let random_platform rng =
  let module Pe = Mm_arch.Pe in
  let module Cl = Mm_arch.Cl in
  let module Tech_lib = Mm_arch.Tech_lib in
  let n_pes = 1 + Mm_util.Prng.int rng 4 in
  let pes =
    List.init n_pes (fun id ->
        let name = Printf.sprintf "PE%d" id in
        let hardware = id > 0 && Mm_util.Prng.bool rng in
        if hardware then
          if Mm_util.Prng.bool rng then
            Pe.make ~id ~name ~kind:Pe.Asic ~static_power:1e-4 ~area_capacity:600.0
              ~rail:(random_rail rng) ()
          else Pe.make ~id ~name ~kind:Pe.Asic ~static_power:1e-4 ~area_capacity:600.0 ()
        else if Mm_util.Prng.bool rng then
          Pe.make ~id ~name ~kind:Pe.Gpp ~static_power:1e-3 ~rail:(random_rail rng) ()
        else Pe.make ~id ~name ~kind:Pe.Gpp ~static_power:1e-3 ())
  in
  let cls =
    if n_pes < 2 then []
    else
      [
        Cl.make ~id:0 ~name:"BUS" ~connects:(List.init n_pes Fun.id)
          ~time_per_data:(0.1e-3 +. Mm_util.Prng.float rng 1e-3)
          ~transfer_power:0.05 ~static_power:1e-4;
      ]
  in
  let arch = Arch.make ~name:"rand" ~pes ~cls in
  let tech =
    List.fold_left
      (fun tech ty ->
        List.fold_left
          (fun tech pe ->
            let hw = Pe.is_hardware pe in
            let exec_time = (1.0 +. Mm_util.Prng.float rng 20.0) *. 1e-3 in
            let exec_time = if hw then exec_time /. 8.0 else exec_time in
            let dyn_power = 0.01 +. Mm_util.Prng.float rng 0.5 in
            let impl =
              if hw then
                Tech_lib.impl ~exec_time ~dyn_power
                  ~area:(50.0 +. Mm_util.Prng.float rng 120.0)
                  ()
              else Tech_lib.impl ~exec_time ~dyn_power ()
            in
            Tech_lib.add tech ~ty ~pe impl)
          tech pes)
      Tech_lib.empty [ F.ty_a; F.ty_b; F.ty_c ]
  in
  let dispatch = Tech_lib.dispatch tech ~n_types:3 ~n_pes in
  (arch, tech, dispatch)

let random_graph rng =
  let n = 1 + Mm_util.Prng.int rng 7 in
  let tys = [| F.ty_a; F.ty_b; F.ty_c |] in
  let tasks =
    Array.init n (fun id ->
        let deadline =
          if Mm_util.Prng.int rng 4 = 0 then
            Some (0.02 +. Mm_util.Prng.float rng 0.3)
          else None
        in
        F.task ?deadline id tys.(Mm_util.Prng.int rng 3))
  in
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Mm_util.Prng.int rng 100 < 35 then
        edges := { Graph.src = i; dst = j; data = Mm_util.Prng.float rng 2.0 } :: !edges
    done
  done;
  Graph.make ~name:"rand" ~tasks ~edges:!edges

(* One shared workspace across all cases: buffer reuse (growth, stale
   contents) is part of what the property must not be able to observe. *)
let shared_ws = Scaling.create_workspace ()

let random_config rng =
  {
    Scaling.scale_software = Mm_util.Prng.int rng 4 > 0;
    scale_hardware = Mm_util.Prng.int rng 4 > 0;
    strategy = (if Mm_util.Prng.bool rng then Scaling.Greedy_gradient else Scaling.Even_slack);
  }

let check_equivalence ?dispatch ~config ~graph ~arch ~tech ~schedule () =
  let reference = Scaling.run_reference ~config ~graph ~arch ~tech ~schedule () in
  let fast =
    Scaling.run ~config ~workspace:shared_ws ?dispatch ~graph ~arch ~tech ~schedule ()
  in
  results_bit_identical reference fast

let prop_heap_matches_reference =
  QCheck.Test.make ~name:"flat heap scaling = reference, float-bit"
    ~count:(fuzz_count 300) QCheck.small_int (fun seed ->
      let rng = Mm_util.Prng.create ~seed in
      let arch, tech, dispatch = random_platform rng in
      let graph = random_graph rng in
      let n_pes = Arch.n_pes arch in
      let mapping = Array.init (Graph.n_tasks graph) (fun _ -> Mm_util.Prng.int rng n_pes) in
      let inst = 1 + Mm_util.Prng.int rng 2 in
      let period = 0.005 +. Mm_util.Prng.float rng 0.4 in
      let sched =
        List_scheduler.run
          (List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech ~mapping
             ~instances:(fun ~pe:_ ~ty:_ -> inst)
             ~period ())
      in
      let config = random_config rng in
      let dispatch = if Mm_util.Prng.bool rng then Some dispatch else None in
      check_equivalence ?dispatch ~config ~graph ~arch ~tech ~schedule:sched ())

let prop_heap_matches_reference_zero_slack =
  QCheck.Test.make ~name:"flat heap scaling = reference at zero slack"
    ~count:(fuzz_count 150) QCheck.small_int (fun seed ->
      let rng = Mm_util.Prng.create ~seed in
      let arch, tech, dispatch = random_platform rng in
      let graph = random_graph rng in
      let n_pes = Arch.n_pes arch in
      let mapping = Array.init (Graph.n_tasks graph) (fun _ -> Mm_util.Prng.int rng n_pes) in
      let instances ~pe:_ ~ty:_ = 1 in
      let loose =
        List_scheduler.run
          (List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech ~mapping ~instances
             ~period:10.0 ())
      in
      let nominal = Scaling.nominal_reference ~graph ~arch ~tech ~schedule:loose () in
      let makespan =
        Array.fold_left Float.max 0.0 nominal.Scaling.stretched_finish
      in
      (* Reschedule at exactly the makespan: every unit on the critical
         path has zero slack. *)
      let sched =
        List_scheduler.run
          (List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech ~mapping ~instances
             ~period:makespan ())
      in
      let config = random_config rng in
      check_equivalence ~dispatch ~config ~graph ~arch ~tech ~schedule:sched ())

let test_heap_matches_reference_single_slot () =
  (* Single task on a single DVS PE: the smallest DAG the heap sees. *)
  let rail = Mm_arch.Voltage.make ~levels:[ 2.0; 1.5; 1.0 ] ~threshold:0.0 in
  let gpp =
    Mm_arch.Pe.make ~id:0 ~name:"GPP0" ~kind:Mm_arch.Pe.Gpp ~static_power:0.0 ~rail ()
  in
  let arch = Arch.make ~name:"single" ~pes:[ gpp ] ~cls:[] in
  let tech =
    Mm_arch.Tech_lib.add Mm_arch.Tech_lib.empty ~ty:F.ty_a ~pe:gpp
      (Mm_arch.Tech_lib.impl ~exec_time:10e-3 ~dyn_power:0.4 ())
  in
  let graph =
    Mm_taskgraph.Graph.make ~name:"single" ~tasks:[| F.task 0 F.ty_a |] ~edges:[]
  in
  List.iter
    (fun period ->
      let sched =
        Mm_sched.List_scheduler.run
          (Mm_sched.List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech
             ~mapping:[| 0 |]
             ~instances:(fun ~pe:_ ~ty:_ -> 1)
             ~period ())
      in
      List.iter
        (fun strategy ->
          let config = { Scaling.default_config with Scaling.strategy } in
          Alcotest.(check bool)
            (Printf.sprintf "single slot, period %g" period)
            true
            (check_equivalence ~config ~graph ~arch ~tech ~schedule:sched ()))
        [ Scaling.Greedy_gradient; Scaling.Even_slack ])
    [ 10e-3 (* zero slack *); 15e-3; 1.0 (* bottom level *); 5e-3 (* infeasible *) ]

let prop_nominal_matches_reference =
  QCheck.Test.make ~name:"flat nominal = reference nominal, float-bit"
    ~count:(fuzz_count 100) QCheck.small_int (fun seed ->
      let rng = Mm_util.Prng.create ~seed in
      let arch, tech, _ = random_platform rng in
      let graph = random_graph rng in
      let n_pes = Arch.n_pes arch in
      let mapping = Array.init (Graph.n_tasks graph) (fun _ -> Mm_util.Prng.int rng n_pes) in
      let sched =
        List_scheduler.run
          (List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech ~mapping
             ~instances:(fun ~pe:_ ~ty:_ -> 1)
             ~period:(0.01 +. Mm_util.Prng.float rng 0.3)
             ())
      in
      let reference = Scaling.nominal_reference ~graph ~arch ~tech ~schedule:sched () in
      let fast =
        Scaling.nominal ~workspace:shared_ws ~graph ~arch ~tech ~schedule:sched ()
      in
      results_bit_identical reference fast)

(* --- Property: scaling never increases energy nor breaks deadlines -------- *)

let prop_scaling_saves_energy_and_meets_deadlines =
  QCheck.Test.make ~name:"DVS: energy <= nominal, deadlines kept" ~count:150
    QCheck.(pair small_int (int_bound 2))
    (fun (seed, graph_kind) ->
      let graph =
        match graph_kind with
        | 0 -> F.chain_graph ()
        | 1 -> F.fork_graph ()
        | _ -> F.parallel_graph ()
      in
      let rng = Mm_util.Prng.create ~seed in
      let mapping = Array.init (Graph.n_tasks graph) (fun _ -> Mm_util.Prng.int rng 2) in
      let period = 0.05 +. Mm_util.Prng.float rng 0.3 in
      let arch = F.arch ~dvs_asic:(Mm_util.Prng.bool rng) () in
      let sched =
        List_scheduler.run
          (List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech:(F.tech arch)
             ~mapping
             ~instances:(fun ~pe:_ ~ty:_ -> 2)
             ~period ())
      in
      let nominal = Scaling.nominal ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
      let scaled = Scaling.run ~graph ~arch ~tech:(F.tech arch) ~schedule:sched () in
      let saves = scaled.Scaling.total_dyn_energy <= nominal.Scaling.total_dyn_energy +. 1e-12 in
      let deadlines_ok =
        (not scaled.Scaling.feasible)
        || Array.for_all (fun f -> f <= period +. 1e-9) scaled.Scaling.stretched_finish
      in
      saves && deadlines_ok)

let () =
  Alcotest.run "mm_dvs"
    [
      ( "hw-transform",
        [
          Alcotest.test_case "fig5 segments" `Quick test_fig5_segments;
          Alcotest.test_case "idle gaps skipped" `Quick test_segments_skip_idle;
          Alcotest.test_case "energy preserved" `Quick test_segments_preserve_energy;
          Alcotest.test_case "first/last segment" `Quick test_first_last_segment;
          QCheck_alcotest.to_alcotest prop_segments_energy_preserved;
        ] );
      ( "scaling-software",
        [
          Alcotest.test_case "nominal energy" `Quick test_nominal_energy;
          Alcotest.test_case "uses slack" `Quick test_scaling_uses_slack;
          Alcotest.test_case "tight period" `Quick test_scaling_respects_tight_period;
          Alcotest.test_case "partial slack" `Quick test_scaling_partial_slack;
          Alcotest.test_case "infeasible not scaled" `Quick test_infeasible_schedule_not_scaled;
          Alcotest.test_case "config disables sw" `Quick test_config_disables_software_scaling;
          Alcotest.test_case "multi-level descent" `Quick test_scaling_multi_level_descent;
        ] );
      ( "even-slack",
        [
          Alcotest.test_case "ample slack matches greedy" `Quick
            test_even_slack_ample_slack_matches_greedy;
          Alcotest.test_case "discrete slack wasted" `Quick
            test_even_slack_wastes_discrete_slack;
          Alcotest.test_case "meets deadlines" `Quick test_even_slack_meets_deadlines;
          QCheck_alcotest.to_alcotest prop_greedy_never_worse_than_even;
        ] );
      ( "scaling-hardware",
        [
          Alcotest.test_case "segments scaled" `Quick test_hw_component_scaled_through_segments;
          Alcotest.test_case "config disables hw" `Quick test_hw_scaling_disabled_by_config;
          Alcotest.test_case "energy prorated" `Quick test_hw_segment_energy_prorated;
        ] );
      ( "heap-vs-reference",
        [
          QCheck_alcotest.to_alcotest prop_heap_matches_reference;
          QCheck_alcotest.to_alcotest prop_heap_matches_reference_zero_slack;
          QCheck_alcotest.to_alcotest prop_nominal_matches_reference;
          Alcotest.test_case "single-slot degenerates" `Quick
            test_heap_matches_reference_single_slot;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_scaling_saves_energy_and_meets_deadlines ] );
    ]
