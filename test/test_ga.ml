(* Tests for mm_ga: Genome and Engine. *)

module Prng = Mm_util.Prng
module Genome = Mm_ga.Genome
module Engine = Mm_ga.Engine

(* --- Genome ----------------------------------------------------------------- *)

let test_random_genome_valid () =
  let rng = Prng.create ~seed:1 in
  let counts = [| 3; 1; 7; 2 |] in
  for _ = 1 to 100 do
    let g = Genome.random rng ~counts in
    Alcotest.(check bool) "valid" true (Genome.validate ~counts g)
  done

let test_validate_rejects () =
  let counts = [| 2; 2 |] in
  Alcotest.(check bool) "length" false (Genome.validate ~counts [| 0 |]);
  Alcotest.(check bool) "range" false (Genome.validate ~counts [| 0; 2 |]);
  Alcotest.(check bool) "negative" false (Genome.validate ~counts [| -1; 0 |])

let test_crossover_preserves_positions () =
  let rng = Prng.create ~seed:2 in
  let a = Array.make 10 0 and b = Array.make 10 1 in
  for _ = 1 to 50 do
    let child_a, child_b = Genome.two_point_crossover rng a b in
    (* At every position the children hold the parents' genes, swapped or
       not. *)
    Array.iteri
      (fun i ga ->
        let gb = child_b.(i) in
        Alcotest.(check bool) "complementary" true
          ((ga = 0 && gb = 1) || (ga = 1 && gb = 0)))
      child_a
  done;
  (* Parents untouched. *)
  Alcotest.(check bool) "a untouched" true (Array.for_all (( = ) 0) a);
  Alcotest.(check bool) "b untouched" true (Array.for_all (( = ) 1) b)

let test_crossover_actually_mixes () =
  let rng = Prng.create ~seed:3 in
  let a = Array.make 20 0 and b = Array.make 20 1 in
  let mixed = ref false in
  for _ = 1 to 20 do
    let child, _ = Genome.two_point_crossover rng a b in
    let zeros = Array.fold_left (fun acc g -> acc + (1 - g)) 0 child in
    if zeros > 0 && zeros < 20 then mixed := true
  done;
  Alcotest.(check bool) "some crossover mixes genes" true !mixed

let test_point_mutate () =
  let rng = Prng.create ~seed:4 in
  let counts = Array.make 50 5 in
  let g = Array.make 50 0 in
  Genome.point_mutate rng ~counts ~rate:1.0 g;
  Alcotest.(check bool) "still valid" true (Genome.validate ~counts g);
  let untouched = Array.make 50 0 in
  Genome.point_mutate rng ~counts ~rate:0.0 untouched;
  Alcotest.(check bool) "rate 0 no-op" true (Array.for_all (( = ) 0) untouched)

let test_hamming () =
  Alcotest.(check int) "distance" 2 (Genome.hamming [| 0; 1; 2 |] [| 0; 2; 1 |]);
  Alcotest.(check int) "identical" 0 (Genome.hamming [| 1 |] [| 1 |])

(* --- Engine ------------------------------------------------------------------ *)

(* Minimise the sum of genes: optimum all-zero. *)
let sum_problem n alphabet =
  {
    Engine.gene_counts = Array.make n alphabet;
    evaluate = (fun g -> (float_of_int (Array.fold_left ( + ) 0 g), ()));
    pure = true;
    improvements = [];
    initial = [];
  }

let test_engine_minimises () =
  let result = Engine.run ~rng:(Prng.create ~seed:5) (sum_problem 12 4) in
  Alcotest.(check (float 1e-9)) "finds optimum" 0.0 result.Engine.best_fitness;
  Alcotest.(check bool) "genome all zero" true
    (Array.for_all (( = ) 0) result.Engine.best_genome)

let test_engine_deterministic () =
  let run seed = Engine.run ~rng:(Prng.create ~seed) (sum_problem 10 5) in
  let a = run 9 and b = run 9 in
  Alcotest.(check (array int)) "same genome" a.Engine.best_genome b.Engine.best_genome;
  Alcotest.(check int) "same evaluations" a.Engine.evaluations b.Engine.evaluations

let test_engine_history_monotone () =
  let result = Engine.run ~rng:(Prng.create ~seed:6) (sum_problem 10 5) in
  let rec decreasing = function
    | a :: (b :: _ as rest) -> a >= b -. 1e-12 && decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "best-so-far never worsens" true (decreasing result.Engine.history)

let test_engine_stagnation_stops () =
  let config =
    { Engine.default_config with max_generations = 10_000; stagnation_limit = 5 }
  in
  (* Constant fitness: must stop after stagnation_limit generations. *)
  let problem =
    {
      Engine.gene_counts = [| 2; 2 |];
      evaluate = (fun _ -> (1.0, ()));
      pure = true;
      improvements = [];
      initial = [];
    }
  in
  let result = Engine.run ~config ~rng:(Prng.create ~seed:7) problem in
  Alcotest.(check bool) "stops early" true (result.Engine.generations <= 6)

let test_engine_max_generations () =
  let config =
    { Engine.default_config with max_generations = 3; stagnation_limit = 1000 }
  in
  let result = Engine.run ~config ~rng:(Prng.create ~seed:8) (sum_problem 30 10) in
  Alcotest.(check int) "bounded generations" 3 result.Engine.generations

let test_engine_improvement_applied () =
  (* An improvement that zeroes one random gene: with it the engine should
     reach the optimum of a harder problem much faster.  We only verify
     the operator runs (its effect shows in the count). *)
  let applications = ref 0 in
  let improvement =
    {
      Engine.name = "zero-a-gene";
      rate = 0.5;
      apply =
        (fun rng ~snapshot:_ ~info:_ genome ->
          incr applications;
          let i = Prng.int rng (Array.length genome) in
          genome.(i) <- 0;
          true);
    }
  in
  let problem = { (sum_problem 10 5) with Engine.improvements = [ improvement ] } in
  let result = Engine.run ~rng:(Prng.create ~seed:9) problem in
  Alcotest.(check bool) "operator invoked" true (!applications > 0);
  Alcotest.(check (float 1e-9)) "optimum reached" 0.0 result.Engine.best_fitness

let test_engine_info_passed () =
  (* The evaluator's info must reach the improvement operators. *)
  let seen_info = ref false in
  let improvement =
    {
      Engine.name = "check-info";
      rate = 1.0;
      apply =
        (fun _ ~snapshot:_ ~info genome ->
          if info = "tag" then seen_info := true;
          ignore genome;
          false);
    }
  in
  let problem =
    {
      Engine.gene_counts = [| 2 |];
      evaluate = (fun g -> (float_of_int g.(0), "tag"));
      pure = true;
      improvements = [ improvement ];
      initial = [];
    }
  in
  ignore (Engine.run ~config:{ Engine.default_config with max_generations = 2 }
            ~rng:(Prng.create ~seed:10) problem);
  Alcotest.(check bool) "info visible" true !seen_info

let test_engine_seeded_initial_population () =
  (* With the optimum injected, the best-ever fitness is optimal from
     generation zero even with a tiny budget. *)
  let problem = { (sum_problem 20 10) with Engine.initial = [ Array.make 20 0 ] } in
  let config = { Engine.default_config with max_generations = 1 } in
  let result = Engine.run ~config ~rng:(Prng.create ~seed:11) problem in
  Alcotest.(check (float 1e-9)) "anchor survives" 0.0 result.Engine.best_fitness

let test_engine_rejects_invalid_initial () =
  let problem = { (sum_problem 5 3) with Engine.initial = [ [| 9; 9; 9; 9; 9 |] ] } in
  match Engine.run ~rng:(Prng.create ~seed:1) problem with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid initial genome accepted"

let test_engine_initial_not_mutated_in_place () =
  let anchor = Array.make 10 0 in
  let problem = { (sum_problem 10 5) with Engine.initial = [ anchor ] } in
  ignore (Engine.run ~config:{ Engine.default_config with max_generations = 5 }
            ~rng:(Prng.create ~seed:12) problem);
  Alcotest.(check bool) "caller's array untouched" true (Array.for_all (( = ) 0) anchor)

let test_engine_diversity_convergence () =
  (* A flat fitness landscape with full-strength mutation disabled: the
     population collapses onto copies of the elites, so the diversity
     criterion fires before the stagnation limit. *)
  let config =
    {
      Engine.default_config with
      max_generations = 5_000;
      stagnation_limit = 4_000;
      diversity_threshold = 0.05;
      mutation_rate = 0.0;
      population_size = 16;
    }
  in
  let problem =
    {
      Engine.gene_counts = Array.make 6 4;
      evaluate = (fun g -> (float_of_int (Array.fold_left ( + ) 0 g), ()));
      pure = true;
      improvements = [];
      initial = [];
    }
  in
  let result = Engine.run ~config ~rng:(Prng.create ~seed:13) problem in
  Alcotest.(check bool) "stops well before the stagnation limit" true
    (result.Engine.generations < 4_000)

let test_engine_validation () =
  (match Engine.run ~rng:(Prng.create ~seed:1) (sum_problem 0 2) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty genome accepted");
  match
    Engine.run
      ~config:{ Engine.default_config with population_size = 0 }
      ~rng:(Prng.create ~seed:1) (sum_problem 3 2)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty population accepted"

(* --- Evaluation strategies ---------------------------------------------------- *)

module Pool = Mm_parallel.Pool
module Memo = Mm_parallel.Memo

(* A problem whose optimum the GA has to work for: weighted genes with a
   coupling term, so random problems differ by seed. *)
let strategy_problem ~n ~alphabet =
  {
    Engine.gene_counts = Array.make n alphabet;
    evaluate =
      (fun g ->
        let acc = ref 0.0 in
        Array.iteri
          (fun i x ->
            acc :=
              !acc
              +. (float_of_int ((i mod 3) + 1) *. float_of_int x)
              +. (if i > 0 && g.(i - 1) = x then 0.5 else 0.0))
          g;
        (!acc, ()));
    pure = true;
    improvements = [];
    initial = [];
  }

let with_pool ~domains f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let strategies_equal_check pool ~seed ~n ~alphabet =
  let problem = strategy_problem ~n ~alphabet in
  let config = { Engine.default_config with max_generations = 40 } in
  let run strategy = Engine.run ~config ~strategy ~rng:(Prng.create ~seed) problem in
  let serial = run Engine.Serial in
  let pooled = run (Engine.Pooled pool) in
  let cached = run (Engine.Cached (Memo.create ~capacity:256 ())) in
  let both = run (Engine.Cached_pooled (pool, Memo.create ~capacity:256 ())) in
  let same label (other : unit Engine.result) =
    Alcotest.(check (array int))
      (label ^ " genome") serial.Engine.best_genome other.Engine.best_genome;
    Alcotest.(check (float 0.0))
      (label ^ " fitness") serial.Engine.best_fitness other.Engine.best_fitness;
    Alcotest.(check int)
      (label ^ " generations") serial.Engine.generations other.Engine.generations;
    Alcotest.(check (list (float 0.0)))
      (label ^ " history") serial.Engine.history other.Engine.history
  in
  same "pooled" pooled;
  same "cached" cached;
  same "cached+pooled" both;
  Alcotest.(check int) "pooled evaluates as often as serial" serial.Engine.evaluations
    pooled.Engine.evaluations;
  Alcotest.(check int) "serial has no cache hits" 0 serial.Engine.cache_hits;
  Alcotest.(check int) "cache accounts every evaluation" serial.Engine.evaluations
    (cached.Engine.evaluations + cached.Engine.cache_hits)

let test_strategies_equal () =
  with_pool ~domains:4 (fun pool ->
      strategies_equal_check pool ~seed:17 ~n:24 ~alphabet:5;
      strategies_equal_check pool ~seed:99 ~n:7 ~alphabet:3)

(* Property (the determinism argument of DESIGN.md): serial, pooled,
   cached and cached+pooled evaluation produce bit-identical GA
   trajectories for random problems and seeds. *)
let prop_strategies_agree =
  QCheck.Test.make ~name:"eval strategies agree with serial" ~count:12
    QCheck.(triple small_int (int_range 2 20) (int_range 2 6))
    (fun (seed, n, alphabet) ->
      with_pool ~domains:3 (fun pool ->
          let problem = strategy_problem ~n ~alphabet in
          let config = { Engine.default_config with max_generations = 25 } in
          let run strategy =
            Engine.run ~config ~strategy ~rng:(Prng.create ~seed) problem
          in
          let serial = run Engine.Serial in
          let agree (other : unit Engine.result) =
            serial.Engine.best_genome = other.Engine.best_genome
            && serial.Engine.best_fitness = other.Engine.best_fitness
            && serial.Engine.history = other.Engine.history
          in
          agree (run (Engine.Pooled pool))
          && agree (run (Engine.Cached (Memo.create ~capacity:128 ())))
          && agree (run (Engine.Cached_pooled (pool, Memo.create ~capacity:128 ())))))

let test_cached_counts_elite_hits () =
  (* Elites are re-submitted every generation; with a cache they must be
     answered without re-evaluation, so hits + evaluations covers every
     submitted genome. *)
  let problem = strategy_problem ~n:10 ~alphabet:4 in
  let config = { Engine.default_config with max_generations = 20 } in
  let cache = Memo.create ~capacity:1024 () in
  let result =
    Engine.run ~config ~strategy:(Engine.Cached cache) ~rng:(Prng.create ~seed:21)
      problem
  in
  let serial = Engine.run ~config ~rng:(Prng.create ~seed:21) problem in
  Alcotest.(check bool) "cache hits occurred" true (result.Engine.cache_hits > 0);
  Alcotest.(check int) "hits + misses = serial evaluations"
    serial.Engine.evaluations
    (result.Engine.evaluations + result.Engine.cache_hits);
  (* Every submitted genome was looked up exactly once: the memo's own
     counters must cover the same population the engine reports. *)
  Alcotest.(check int) "memo lookups cover every submission"
    (result.Engine.evaluations + result.Engine.cache_hits)
    (Memo.hits cache + Memo.misses cache)

let test_impure_problem_degrades_to_serial () =
  (* An impure evaluator must not be cached: the engine should call it
     exactly as often as the serial engine would. *)
  let calls = ref 0 in
  let problem =
    {
      Engine.gene_counts = Array.make 8 3;
      evaluate =
        (fun g ->
          incr calls;
          (float_of_int (Array.fold_left ( + ) 0 g), ()));
      pure = false;
      improvements = [];
      initial = [];
    }
  in
  let config = { Engine.default_config with max_generations = 15 } in
  let cache = Memo.create ~capacity:1024 () in
  let result =
    Engine.run ~config ~strategy:(Engine.Cached cache) ~rng:(Prng.create ~seed:3)
      problem
  in
  Alcotest.(check int) "every evaluation really ran" result.Engine.evaluations !calls;
  Alcotest.(check int) "no cache hits" 0 result.Engine.cache_hits;
  Alcotest.(check int) "cache untouched" 0 (Memo.length cache)

(* Property: the engine never returns an invalid genome and never a
   fitness better than the true optimum. *)
let prop_engine_result_valid =
  QCheck.Test.make ~name:"engine result valid and bounded" ~count:20
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, n) ->
      let counts = Array.make n 3 in
      let problem =
        {
          Engine.gene_counts = counts;
          evaluate = (fun g -> (float_of_int (Array.fold_left ( + ) 0 g), ()));
          pure = true;
          improvements = [];
          initial = [];
        }
      in
      let config = { Engine.default_config with max_generations = 30 } in
      let result = Engine.run ~config ~rng:(Prng.create ~seed) problem in
      Genome.validate ~counts result.Engine.best_genome
      && result.Engine.best_fitness >= 0.0)

(* --- Delta evaluation --------------------------------------------------------- *)

module Fitness = Mm_cosynth.Fitness
module Spec = Mm_cosynth.Spec
module Scaling = Mm_dvs.Scaling

let fuzz_count base =
  match Option.bind (Sys.getenv_opt "MM_FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> base

let bits = Int64.bits_of_float
let float_bits_equal a b = bits a = bits b

(* Every scalar the GA and the reporting layer consume, compared
   bit-for-bit — the delta contract is exactness, not closeness. *)
let evals_bit_identical (a : Fitness.eval) (b : Fitness.eval) =
  float_bits_equal a.Fitness.fitness b.Fitness.fitness
  && float_bits_equal a.Fitness.eval_power b.Fitness.eval_power
  && float_bits_equal a.Fitness.true_power b.Fitness.true_power
  && float_bits_equal a.Fitness.timing_factor b.Fitness.timing_factor
  && float_bits_equal a.Fitness.area_factor b.Fitness.area_factor
  && float_bits_equal a.Fitness.transition_factor b.Fitness.transition_factor
  && float_bits_equal a.Fitness.routability_factor b.Fitness.routability_factor
  && a.Fitness.timing_feasible = b.Fitness.timing_feasible
  && a.Fitness.area_feasible = b.Fitness.area_feasible
  && a.Fitness.transition_feasible = b.Fitness.transition_feasible
  && a.Fitness.routable = b.Fitness.routable
  && Array.length a.Fitness.mode_powers = Array.length b.Fitness.mode_powers
  && Array.for_all2
       (fun (p : Mm_energy.Power.mode_power) (q : Mm_energy.Power.mode_power) ->
         p.Mm_energy.Power.mode_id = q.Mm_energy.Power.mode_id
         && float_bits_equal p.Mm_energy.Power.dyn_power q.Mm_energy.Power.dyn_power
         && float_bits_equal p.Mm_energy.Power.static_power
              q.Mm_energy.Power.static_power)
       a.Fitness.mode_powers b.Fitness.mode_powers

(* point_mutate_tracked consumes the identical RNG stream as
   point_mutate and reports exactly the positions that changed. *)
let prop_tracked_mutation_matches_plain =
  QCheck.Test.make ~name:"point_mutate_tracked ≡ point_mutate" ~count:300
    QCheck.(triple small_int (int_range 1 40) (float_range 0.0 1.0))
    (fun (seed, n, rate) ->
      let counts = Array.init n (fun i -> 2 + (i mod 5)) in
      let g = Genome.random (Prng.create ~seed) ~counts in
      let rng_a = Prng.create ~seed:(seed + 1)
      and rng_b = Prng.create ~seed:(seed + 1) in
      let a = Array.copy g and b = Array.copy g in
      Genome.point_mutate rng_a ~counts ~rate a;
      let touched = Genome.point_mutate_tracked rng_b ~counts ~rate b in
      a = b && Prng.state rng_a = Prng.state rng_b && touched = Genome.diff g b)

let test_diff () =
  Alcotest.(check (list int)) "positions ascending" [ 1; 3 ]
    (Genome.diff [| 0; 1; 2; 3 |] [| 0; 2; 2; 0 |]);
  Alcotest.(check (list int)) "identical" [] (Genome.diff [| 4; 5 |] [| 4; 5 |]);
  match Genome.diff [| 0 |] [| 0; 1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "length mismatch accepted"

(* The canonical delta-vs-full equivalence fuzz (ISSUE 6, DESIGN §13):
   random fixture specs, random mutation chains through
   [point_mutate_tracked], every step checked float-bit against the full
   pipeline.  Low rates exercise the per-mode reuse path, high rates the
   wide-dirty-set fallback; chaining feeds each delta result back in as
   the next parent, so reused caches are themselves delta-produced. *)
let delta_case seed =
  let rng = Prng.create ~seed in
  let graphs =
    let all =
      [|
        Fixtures.chain_graph (); Fixtures.fork_graph (); Fixtures.parallel_graph ();
      |]
    in
    List.init (1 + Prng.int rng 3) (fun _ -> all.(Prng.int rng 3))
  in
  let spec = Fixtures.spec_of_graphs ~dvs_gpp:(Prng.int rng 2 = 0) graphs in
  let config =
    {
      Fitness.default_config with
      Fitness.dvs =
        (if Prng.int rng 2 = 0 then Fitness.Dvs Scaling.default_config
         else Fitness.No_dvs);
      weighting =
        (if Prng.int rng 2 = 0 then Fitness.True_probabilities else Fitness.Uniform);
    }
  in
  let counts = Spec.gene_counts spec in
  let genome = Genome.random rng ~counts in
  let current = ref genome in
  let parent = ref (Fitness.evaluate config spec genome) in
  let ok = ref true in
  for _ = 1 to 3 do
    let rate = [| 0.05; 0.2; 0.9 |].(Prng.int rng 3) in
    let child = Array.copy !current in
    let dirty = Genome.point_mutate_tracked rng ~counts ~rate child in
    let via_delta = Fitness.evaluate_delta config spec ~parent:!parent ~dirty child in
    let via_full = Fitness.evaluate config spec child in
    if not (evals_bit_identical via_delta via_full) then ok := false;
    parent := via_delta;
    current := child
  done;
  !ok

let prop_delta_matches_full =
  QCheck.Test.make ~name:"delta ≡ full (float-bit)" ~count:(fuzz_count 500)
    QCheck.small_int delta_case

(* Engine-level: supplying a contract-satisfying delta changes neither
   the trajectory nor the evaluation counts, under either strategy. *)
let test_engine_delta_identical_trajectory () =
  let evaluate g =
    let s = Array.fold_left ( + ) 0 g in
    (float_of_int s, (Array.copy g, s))
  in
  let problem =
    {
      Engine.gene_counts = Array.make 14 5;
      evaluate;
      pure = true;
      improvements = [];
      initial = [];
    }
  in
  let delta_calls = ref 0 in
  let delta ~parent:(pg, ps) ~dirty g =
    incr delta_calls;
    let s = List.fold_left (fun acc i -> acc + g.(i) - pg.(i)) ps dirty in
    (float_of_int s, (Array.copy g, s))
  in
  let config = { Engine.default_config with max_generations = 30 } in
  let plain = Engine.run ~config ~rng:(Prng.create ~seed:31) problem in
  let with_delta = Engine.run ~config ~delta ~rng:(Prng.create ~seed:31) problem in
  Alcotest.(check bool) "delta actually used" true (!delta_calls > 0);
  Alcotest.(check (array int)) "genome" plain.Engine.best_genome
    with_delta.Engine.best_genome;
  Alcotest.(check (float 0.0)) "fitness" plain.Engine.best_fitness
    with_delta.Engine.best_fitness;
  Alcotest.(check int) "generations" plain.Engine.generations
    with_delta.Engine.generations;
  Alcotest.(check int) "evaluations" plain.Engine.evaluations
    with_delta.Engine.evaluations;
  Alcotest.(check (list (float 0.0))) "history" plain.Engine.history
    with_delta.Engine.history;
  let cached =
    Engine.run ~config ~delta
      ~strategy:(Engine.Cached (Memo.create ~capacity:512 ()))
      ~rng:(Prng.create ~seed:31) problem
  in
  Alcotest.(check (array int)) "cached genome" plain.Engine.best_genome
    cached.Engine.best_genome;
  Alcotest.(check (list (float 0.0))) "cached history" plain.Engine.history
    cached.Engine.history

(* --- Nsga2 -------------------------------------------------------------------- *)

module Nsga2 = Mm_ga.Nsga2

let test_dominates () =
  Alcotest.(check bool) "strict" true (Nsga2.dominates [| 1.0; 1.0 |] [| 2.0; 2.0 |]);
  Alcotest.(check bool) "weak one axis" true (Nsga2.dominates [| 1.0; 2.0 |] [| 2.0; 2.0 |]);
  Alcotest.(check bool) "equal" false (Nsga2.dominates [| 1.0; 1.0 |] [| 1.0; 1.0 |]);
  Alcotest.(check bool) "incomparable" false (Nsga2.dominates [| 1.0; 3.0 |] [| 2.0; 2.0 |])

let test_non_dominated_sort () =
  let objectives = [| [| 1.0; 1.0 |]; [| 2.0; 2.0 |]; [| 0.5; 3.0 |]; [| 3.0; 3.0 |] |] in
  let rank = Nsga2.non_dominated_sort objectives in
  Alcotest.(check int) "first front" 0 rank.(0);
  Alcotest.(check int) "dominated once" 1 rank.(1);
  Alcotest.(check int) "incomparable is first front" 0 rank.(2);
  Alcotest.(check int) "doubly dominated" 2 rank.(3)

let test_crowding_boundaries_infinite () =
  let objectives = [| [| 0.0; 3.0 |]; [| 1.0; 2.0 |]; [| 2.0; 1.0 |]; [| 3.0; 0.0 |] |] in
  let d = Nsga2.crowding_distances objectives [ 0; 1; 2; 3 ] in
  Alcotest.(check bool) "boundary low" true (d.(0) = infinity);
  Alcotest.(check bool) "boundary high" true (d.(3) = infinity);
  Alcotest.(check bool) "interior finite" true (Float.is_finite d.(1) && Float.is_finite d.(2))

(* Bi-objective toy: genome of 12 binary genes; f1 = number of ones,
   f2 = number of zeros.  Every genome is Pareto-optimal; NSGA-II must
   return a spread of trade-offs including both extremes' neighbourhoods. *)
let test_nsga2_spreads_over_front () =
  let n = 12 in
  let problem =
    {
      Nsga2.gene_counts = Array.make n 2;
      n_objectives = 2;
      evaluate =
        (fun g ->
          let ones = Array.fold_left ( + ) 0 g in
          ([| float_of_int ones; float_of_int (n - ones) |], ()));
      initial = [];
    }
  in
  let result = Nsga2.run ~rng:(Mm_util.Prng.create ~seed:3) problem in
  Alcotest.(check bool) "many distinct trade-offs" true (List.length result.Nsga2.front >= 6);
  let ones_values =
    List.map (fun ind -> int_of_float ind.Nsga2.objectives.(0)) result.Nsga2.front
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "covers a wide range" true
    (List.length ones_values >= 6
    && List.hd ones_values <= 2
    && List.nth ones_values (List.length ones_values - 1) >= n - 2)

let test_nsga2_front_mutually_non_dominated () =
  let problem =
    {
      Nsga2.gene_counts = Array.make 8 4;
      n_objectives = 2;
      evaluate =
        (fun g ->
          let a = Array.fold_left ( + ) 0 g in
          let b = Array.fold_left (fun acc x -> acc + ((3 - x) * (3 - x))) 0 g in
          ([| float_of_int a; float_of_int b |], ()));
      initial = [];
    }
  in
  let result = Nsga2.run ~rng:(Mm_util.Prng.create ~seed:4) problem in
  List.iter
    (fun (a : unit Nsga2.individual) ->
      List.iter
        (fun (b : unit Nsga2.individual) ->
          if a != b then
            Alcotest.(check bool) "mutually non-dominated" false
              (Nsga2.dominates a.Nsga2.objectives b.Nsga2.objectives))
        result.Nsga2.front)
    result.Nsga2.front

let test_nsga2_deterministic () =
  let problem =
    {
      Nsga2.gene_counts = Array.make 6 3;
      n_objectives = 2;
      evaluate =
        (fun g ->
          ([| float_of_int (Array.fold_left ( + ) 0 g); float_of_int g.(0) |], ()));
      initial = [];
    }
  in
  let config = { Nsga2.default_config with Nsga2.max_generations = 15 } in
  let run seed = Nsga2.run ~config ~rng:(Mm_util.Prng.create ~seed) problem in
  let a = run 5 and b = run 5 in
  Alcotest.(check int) "same front size" (List.length a.Nsga2.front) (List.length b.Nsga2.front);
  Alcotest.(check int) "same evaluations" a.Nsga2.evaluations b.Nsga2.evaluations

(* --- Islands ----------------------------------------------------------------- *)

module Islands = Mm_ga.Islands

let islands_same label (a : unit Engine.result) (b : unit Engine.result) =
  Alcotest.(check (array int)) (label ^ " genome") a.Engine.best_genome b.Engine.best_genome;
  Alcotest.(check int)
    (label ^ " fitness bits")
    0
    (Int64.compare
       (Int64.bits_of_float a.Engine.best_fitness)
       (Int64.bits_of_float b.Engine.best_fitness));
  Alcotest.(check int) (label ^ " generations") a.Engine.generations b.Engine.generations;
  Alcotest.(check (list (float 0.0))) (label ^ " history") a.Engine.history b.Engine.history

let test_islands_one_is_engine () =
  (* One island is the single-population engine, bit for bit: stream 0
     of the run seed is the seed's own state. *)
  let problem = strategy_problem ~n:18 ~alphabet:4 in
  let config = { Engine.default_config with max_generations = 40 } in
  let single = Engine.run ~config ~rng:(Prng.create ~seed:11) problem in
  let island =
    Islands.run ~config
      ~topology:{ Islands.islands = 1; migration_interval = 8; migration_count = 2 }
      ~rng:(Prng.create ~seed:11) problem
  in
  islands_same "islands=1" single island.Islands.best;
  Alcotest.(check int) "evaluations" single.Engine.evaluations island.Islands.evaluations

let test_islands_jobs_invariant () =
  (* The archipelago trajectory is a function of (seed, topology,
     problem): serial fallback, a 2-domain pool and a 4-domain pool
     (islands round-robin across 2 domains — the oversubscribed path)
     must agree bit for bit. *)
  let problem = strategy_problem ~n:20 ~alphabet:5 in
  let config = { Engine.default_config with max_generations = 48 } in
  let topology = { Islands.islands = 3; migration_interval = 6; migration_count = 2 } in
  let run ?pool () =
    Islands.run ~config ~topology ?pool ~rng:(Prng.create ~seed:23) problem
  in
  let serial = run () in
  let pooled2 = with_pool ~domains:2 (fun pool -> run ~pool ()) in
  let pooled4 = with_pool ~domains:4 (fun pool -> run ~pool ()) in
  islands_same "pool 2" serial.Islands.best pooled2.Islands.best;
  islands_same "pool 4" serial.Islands.best pooled4.Islands.best;
  Array.iteri
    (fun i r ->
      islands_same
        (Printf.sprintf "island %d pool 2" i)
        r pooled2.Islands.per_island.(i);
      islands_same
        (Printf.sprintf "island %d pool 4" i)
        r pooled4.Islands.per_island.(i))
    serial.Islands.per_island

let test_islands_private_caches_invariant () =
  (* Private memo caches are a pure wall-clock optimisation. *)
  let problem = strategy_problem ~n:14 ~alphabet:4 in
  let config = { Engine.default_config with max_generations = 36 } in
  let topology = { Islands.islands = 2; migration_interval = 5; migration_count = 1 } in
  let run cache_capacity =
    Islands.run ~config ~topology ~cache_capacity ~rng:(Prng.create ~seed:31) problem
  in
  let plain = run 0 and cached = run 256 in
  islands_same "cached" plain.Islands.best cached.Islands.best;
  Alcotest.(check int) "cache accounts every evaluation" plain.Islands.evaluations
    (cached.Islands.evaluations + cached.Islands.cache_hits)

(* --- Robust (usage-uncertainty) synthesis -------------------------------------- *)

module Synthesis = Mm_cosynth.Synthesis
module Fleet_sim = Mm_energy.Fleet_sim

let robust_spec () =
  Fixtures.spec_of_graphs ~probabilities:[| 0.2; 0.8 |]
    [ Fixtures.chain_graph (); Fixtures.fork_graph () ]

let robust_ga_config robust =
  {
    Synthesis.default_config with
    Synthesis.ga =
      { Engine.default_config with max_generations = 15; population_size = 16 };
    robust;
  }

let robust_usage model =
  {
    Synthesis.model;
    samples = 8;
    objective = Fitness.Percentile 0.25;
    battery = Mm_energy.Battery.phone_cell;
  }

let test_robust_point_is_bypass () =
  (* A Point model draws nothing: fitness, fingerprint and the whole
     trajectory are bit-identical to a run with no robust config — the
     opt-in shows up nowhere unless a spreading model is chosen. *)
  let spec = robust_spec () in
  let stock = robust_ga_config None in
  let point = robust_ga_config (Some (robust_usage Fleet_sim.Point)) in
  Alcotest.(check bool) "point model is inactive" false (Synthesis.robust_active point);
  Alcotest.(check string) "fingerprint unchanged"
    (Synthesis.config_fingerprint stock)
    (Synthesis.config_fingerprint point);
  let a = Synthesis.run ~config:stock ~spec ~seed:4 () in
  let b = Synthesis.run ~config:point ~spec ~seed:4 () in
  Alcotest.(check bool) "eval bit-identical" true
    (evals_bit_identical a.Synthesis.eval b.Synthesis.eval)

let test_robust_deterministic_across_jobs () =
  (* The Ψ sample set is a pure function of the run seed (a dedicated
     Prng stream), so robust runs replay bit-identically, serial or
     pooled. *)
  let spec = robust_spec () in
  let config =
    robust_ga_config (Some (robust_usage (Fleet_sim.Dirichlet { concentration = 40.0 })))
  in
  Alcotest.(check bool) "dirichlet model is active" true (Synthesis.robust_active config);
  let serial = Synthesis.run ~config ~spec ~seed:4 () in
  let replay = Synthesis.run ~config ~spec ~seed:4 () in
  let pooled = Synthesis.run ~config:{ config with Synthesis.jobs = 3 } ~spec ~seed:4 () in
  Alcotest.(check bool) "replay bit-identical" true
    (evals_bit_identical serial.Synthesis.eval replay.Synthesis.eval);
  Alcotest.(check bool) "pooled bit-identical" true
    (evals_bit_identical serial.Synthesis.eval pooled.Synthesis.eval);
  (* An active model fingerprints differently from the stock config, and
     differently again at another sample count. *)
  let stock_fp = Synthesis.config_fingerprint (robust_ga_config None) in
  let active_fp = Synthesis.config_fingerprint config in
  let more_samples =
    Synthesis.config_fingerprint
      {
        config with
        Synthesis.robust =
          Option.map (fun r -> { r with Synthesis.samples = 16 }) config.Synthesis.robust;
      }
  in
  Alcotest.(check bool) "fingerprint gains a robust suffix" false
    (String.equal stock_fp active_fp);
  Alcotest.(check bool) "sample count fingerprinted" false
    (String.equal active_fp more_samples)

(* Property: migration is deterministic under seed replay — two runs
   with the same seed and topology agree bit for bit, across random
   island counts, intervals and export sizes, with and without a pool. *)
let prop_islands_seed_replay =
  QCheck.Test.make ~name:"island migration deterministic under seed replay" ~count:10
    QCheck.(
      quad small_int (int_range 1 4) (int_range 1 7) (int_range 0 3))
    (fun (seed, islands, migration_interval, migration_count) ->
      let problem = strategy_problem ~n:10 ~alphabet:3 in
      let config = { Engine.default_config with max_generations = 20 } in
      let topology = { Islands.islands; migration_interval; migration_count } in
      let run ?pool () =
        Islands.run ~config ~topology ?pool ~rng:(Prng.create ~seed) problem
      in
      let a = run () and b = run () in
      let pooled = with_pool ~domains:3 (fun pool -> run ~pool ()) in
      let agree (x : unit Islands.result) (y : unit Islands.result) =
        x.Islands.best.Engine.best_genome = y.Islands.best.Engine.best_genome
        && Int64.bits_of_float x.Islands.best.Engine.best_fitness
           = Int64.bits_of_float y.Islands.best.Engine.best_fitness
        && x.Islands.generations = y.Islands.generations
        && x.Islands.evaluations = y.Islands.evaluations
        && Array.for_all2
             (fun (p : unit Engine.result) (q : unit Engine.result) ->
               p.Engine.history = q.Engine.history)
             x.Islands.per_island y.Islands.per_island
      in
      agree a b && agree a pooled)

let () =
  Alcotest.run "mm_ga"
    [
      ( "genome",
        [
          Alcotest.test_case "random valid" `Quick test_random_genome_valid;
          Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
          Alcotest.test_case "crossover positions" `Quick test_crossover_preserves_positions;
          Alcotest.test_case "crossover mixes" `Quick test_crossover_actually_mixes;
          Alcotest.test_case "point mutate" `Quick test_point_mutate;
          Alcotest.test_case "hamming" `Quick test_hamming;
        ] );
      ( "engine",
        [
          Alcotest.test_case "minimises" `Quick test_engine_minimises;
          Alcotest.test_case "deterministic" `Quick test_engine_deterministic;
          Alcotest.test_case "history monotone" `Quick test_engine_history_monotone;
          Alcotest.test_case "stagnation stops" `Quick test_engine_stagnation_stops;
          Alcotest.test_case "max generations" `Quick test_engine_max_generations;
          Alcotest.test_case "improvement applied" `Quick test_engine_improvement_applied;
          Alcotest.test_case "info passed" `Quick test_engine_info_passed;
          Alcotest.test_case "seeded initial population" `Quick
            test_engine_seeded_initial_population;
          Alcotest.test_case "invalid initial rejected" `Quick
            test_engine_rejects_invalid_initial;
          Alcotest.test_case "initial not mutated" `Quick
            test_engine_initial_not_mutated_in_place;
          Alcotest.test_case "diversity convergence" `Quick test_engine_diversity_convergence;
          Alcotest.test_case "validation" `Quick test_engine_validation;
          QCheck_alcotest.to_alcotest prop_engine_result_valid;
        ] );
      ( "eval strategies",
        [
          Alcotest.test_case "serial/pooled/cached identical" `Quick
            test_strategies_equal;
          Alcotest.test_case "cache answers elites" `Quick test_cached_counts_elite_hits;
          Alcotest.test_case "impure degrades to serial" `Quick
            test_impure_problem_degrades_to_serial;
          QCheck_alcotest.to_alcotest prop_strategies_agree;
        ] );
      ( "delta evaluation",
        [
          QCheck_alcotest.to_alcotest prop_tracked_mutation_matches_plain;
          Alcotest.test_case "diff" `Quick test_diff;
          QCheck_alcotest.to_alcotest prop_delta_matches_full;
          Alcotest.test_case "engine trajectory unchanged" `Quick
            test_engine_delta_identical_trajectory;
        ] );
      ( "islands",
        [
          Alcotest.test_case "one island is the engine" `Quick test_islands_one_is_engine;
          Alcotest.test_case "identical across pools and serial" `Quick
            test_islands_jobs_invariant;
          Alcotest.test_case "private caches invariant" `Quick
            test_islands_private_caches_invariant;
          QCheck_alcotest.to_alcotest prop_islands_seed_replay;
        ] );
      ( "robust synthesis",
        [
          Alcotest.test_case "point model is a bit-exact bypass" `Quick
            test_robust_point_is_bypass;
          Alcotest.test_case "deterministic, serial ≡ pooled" `Quick
            test_robust_deterministic_across_jobs;
        ] );
      ( "nsga2",
        [
          Alcotest.test_case "dominates" `Quick test_dominates;
          Alcotest.test_case "non-dominated sort" `Quick test_non_dominated_sort;
          Alcotest.test_case "crowding boundaries" `Quick test_crowding_boundaries_infinite;
          Alcotest.test_case "spreads over front" `Quick test_nsga2_spreads_over_front;
          Alcotest.test_case "mutually non-dominated" `Quick
            test_nsga2_front_mutually_non_dominated;
          Alcotest.test_case "deterministic" `Quick test_nsga2_deterministic;
        ] );
    ]
