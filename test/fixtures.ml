(* Shared test fixtures: a small, hand-checkable platform.

   Architecture: GPP0 (software, DVS rail 2.0/1.0 V, Vt 0) + ASIC1
   (hardware, area 300) + BUS (1 ms per data unit).

   Types (exec time on GPP / ASIC in ms, dyn power in W, ASIC core area):
     A: 10 / 1   0.4 / 0.004   100
     B: 20 / 2   0.5 / 0.005   100
     C: 30 / 3   0.6 / 0.006   150
   With Vt = 0, halving the voltage doubles execution time and quarters
   dynamic energy — arithmetic stays mental. *)

module Task_type = Mm_taskgraph.Task_type
module Task = Mm_taskgraph.Task
module Graph = Mm_taskgraph.Graph
module Voltage = Mm_arch.Voltage
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Arch = Mm_arch.Architecture
module Tech_lib = Mm_arch.Tech_lib
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Omsm = Mm_omsm.Omsm

let ty_a = Task_type.make ~id:0 ~name:"A"
let ty_b = Task_type.make ~id:1 ~name:"B"
let ty_c = Task_type.make ~id:2 ~name:"C"
let rail = Voltage.make ~levels:[ 2.0; 1.0 ] ~threshold:0.0

let gpp ?(dvs = true) () =
  if dvs then Pe.make ~id:0 ~name:"GPP0" ~kind:Pe.Gpp ~static_power:1e-3 ~rail ()
  else Pe.make ~id:0 ~name:"GPP0" ~kind:Pe.Gpp ~static_power:1e-3 ()

let asic ?(dvs = false) ?(area = 300.0) () =
  if dvs then
    Pe.make ~id:1 ~name:"ASIC1" ~kind:Pe.Asic ~static_power:5e-4 ~area_capacity:area ~rail
      ()
  else Pe.make ~id:1 ~name:"ASIC1" ~kind:Pe.Asic ~static_power:5e-4 ~area_capacity:area ()

let bus =
  Cl.make ~id:0 ~name:"BUS" ~connects:[ 0; 1 ] ~time_per_data:1e-3 ~transfer_power:0.05
    ~static_power:1e-4

let arch ?dvs_gpp ?dvs_asic ?area () =
  Arch.make ~name:"fixture" ~pes:[ gpp ?dvs:dvs_gpp (); asic ?dvs:dvs_asic ?area () ]
    ~cls:[ bus ]

let tech arch =
  let add tech (ty, sw_ms, hw_ms, sw_p, hw_p, area) =
    let tech =
      Tech_lib.add tech ~ty ~pe:(Arch.pe arch 0)
        (Tech_lib.impl ~exec_time:(sw_ms *. 1e-3) ~dyn_power:sw_p ())
    in
    Tech_lib.add tech ~ty ~pe:(Arch.pe arch 1)
      (Tech_lib.impl ~exec_time:(hw_ms *. 1e-3) ~dyn_power:hw_p ~area ())
  in
  List.fold_left add Tech_lib.empty
    [
      (ty_a, 10.0, 1.0, 0.4, 0.004, 100.0);
      (ty_b, 20.0, 2.0, 0.5, 0.005, 100.0);
      (ty_c, 30.0, 3.0, 0.6, 0.006, 150.0);
    ]

let task ?deadline id ty = Task.make ~id ~name:(Printf.sprintf "t%d" id) ~ty ?deadline ()

(* Chain A -> B -> C with unit data. *)
let chain_graph ?(data = 1.0) () =
  Graph.make ~name:"chain"
    ~tasks:[| task 0 ty_a; task 1 ty_b; task 2 ty_c |]
    ~edges:[ { Graph.src = 0; dst = 1; data }; { Graph.src = 1; dst = 2; data } ]

(* Fork: 0(A) -> {1(B), 2(B)} -> 3(C); the two B tasks can run in
   parallel on separate cores. *)
let fork_graph ?(data = 1.0) () =
  Graph.make ~name:"fork"
    ~tasks:[| task 0 ty_a; task 1 ty_b; task 2 ty_b; task 3 ty_c |]
    ~edges:
      [
        { Graph.src = 0; dst = 1; data };
        { Graph.src = 0; dst = 2; data };
        { Graph.src = 1; dst = 3; data };
        { Graph.src = 2; dst = 3; data };
      ]

(* Two independent type-B tasks (maximal parallelism). *)
let parallel_graph () =
  Graph.make ~name:"par" ~tasks:[| task 0 ty_b; task 1 ty_b |] ~edges:[]

let omsm_of_graphs ?(probabilities = [||]) ?(period = 1.0) graphs =
  let n = List.length graphs in
  let probabilities =
    if Array.length probabilities = n then probabilities
    else Array.make n (1.0 /. float_of_int n)
  in
  let modes =
    List.mapi
      (fun id graph ->
        Mode.make ~id ~name:(Printf.sprintf "O%d" id) ~graph ~period
          ~probability:probabilities.(id))
      graphs
  in
  let transitions =
    if n < 2 then []
    else
      List.init n (fun i ->
          Transition.make ~src:i ~dst:((i + 1) mod n) ~max_time:0.1)
  in
  Omsm.make ~name:"fixture" ~modes ~transitions

let spec_of_graphs ?probabilities ?period ?dvs_gpp ?dvs_asic ?area graphs =
  let arch = arch ?dvs_gpp ?dvs_asic ?area () in
  Mm_cosynth.Spec.make ~omsm:(omsm_of_graphs ?probabilities ?period graphs) ~arch
    ~tech:(tech arch)

(* --- Golden regression values -------------------------------------------------

   Float-bit pins of the evaluation pipeline on the two reference
   systems (test_golden.ml).  Every value is the [Int64.bits_of_float]
   of a power in watts or a makespan in seconds, captured from a known-
   good build; ANY bit drift — a reordered float reduction, a changed
   scheduler tie-break — fails the golden test and must be a conscious,
   documented decision, because it also invalidates old snapshots'
   bit-identical resume guarantee. *)

(* Motivational system (paper §2.3, Fig. 2): the two published optimal
   mappings, 26.7158 / 15.7423 mWs weighted energy. *)
let golden_motivational_fig2b_power_bits = 0x3f9b5b62fd255a2dL (* 0.026715800000000001 *)
let golden_motivational_fig2c_power_bits = 0x3f901ebfdea7c0a4L (* 0.015742300000000001 *)

let golden_motivational_fig2b_makespan_bits =
  [| 0x3fa9652bd3c36113L (* 0.0496 s *); 0x3faa858793dd97f6L (* 0.0518 s *) |]

let golden_motivational_fig2c_makespan_bits =
  [| 0x3fb47ae147ae147bL (* 0.080 s *); 0x3f9eb851eb851eb8L (* 0.030 s *) |]

(* Smart phone benchmark: the all-software anchor genome (first of
   [Synthesis.anchors], deterministic) through the full pipeline,
   without and with DVS. *)
let golden_smartphone_anchor_power_bits = 0x3fc59bb6aa4b9885L (* 0.16881450 W *)

let golden_smartphone_anchor_makespan_bits =
  [|
    0x3f95182a9930be0dL (* 0.0206 s *);
    0x3f80cb295e9e1b09L (* 0.0082 s *);
    0x3f81d14e3bcd35a8L (* 0.0087 s *);
    0x3fa1a9fbe76c8b45L (* 0.0345 s *);
    0x3f76872b020c49bbL (* 0.0055 s *);
    0x3fa05532617c1bdbL (* 0.0319 s *);
    0x3fa096bb98c7e283L (* 0.0324 s *);
    0x3fa1eb851eb851ecL (* 0.0350 s *);
  |]

let golden_smartphone_anchor_dvs_power_bits = 0x3fba885a7b4320ecL (* 0.10364309 W *)

(* MD5 of the task-network JSON export (Export_json.to_string) of the
   same two deterministic evaluations: the motivational Fig. 2c mapping
   and the smart phone anchor.  Every number in the export flows through
   Mm_obs.Json.number, so these pins break on any float drift in the
   pipeline AND on any schema change — the latter must bump the export's
   "version" field. *)
let golden_motivational_export_digest = "ab7d4471635d5aae1d728ea8e717264d"
let golden_smartphone_export_digest = "47cecb247b372d6b6d207a874cb680d7"
