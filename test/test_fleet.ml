(* Tests for the fleet-scale Monte Carlo engine and the task-network
   JSON export (ISSUE 9).

   The load-bearing properties, each held by a fuzz or bit-level check:
   - a 1-device point-model fleet is segment-for-segment and float-bit
     identical to the seed oracle [Trace_sim.simulate];
   - the fleet mean power converges to the analytic Eq. (1) figure;
   - every report bit is invariant under --jobs and --batch;
   - export-json → parse → re-emit is byte-identical, and the exporter
     never raises on a synthesizable benchmark. *)

module Fleet_sim = Mm_energy.Fleet_sim
module Trace_sim = Mm_energy.Trace_sim
module Battery = Mm_energy.Battery
module Power = Mm_energy.Power
module Prng = Mm_util.Prng
module Pool = Mm_parallel.Pool
module Spec = Mm_cosynth.Spec
module Fitness = Mm_cosynth.Fitness
module Mapping = Mm_cosynth.Mapping
module Synthesis = Mm_cosynth.Synthesis
module Export_json = Mm_cosynth.Export_json
module Schedule = Mm_sched.Schedule
module F = Fixtures

let fuzz_count base =
  match Option.bind (Sys.getenv_opt "MM_FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> base

let bits = Int64.bits_of_float

(* --- Fixture: a two-mode system with hand-built mode powers ------------------- *)

let schedule ~arch ~mapping ~graph ~period =
  Mm_sched.List_scheduler.run
    (Mm_sched.List_scheduler.make_input ~mode_id:0 ~graph ~arch ~tech:(F.tech arch)
       ~mapping
       ~instances:(fun ~pe:_ ~ty:_ -> 1)
       ~period ())

let two_mode_spec () =
  F.spec_of_graphs ~probabilities:[| 0.2; 0.8 |] [ F.chain_graph (); F.chain_graph () ]

let mode_powers_for spec dyn_energies =
  let arch = Spec.arch spec in
  let graph = F.chain_graph () in
  Array.mapi
    (fun mode dyn_energy ->
      let sched =
        {
          (schedule ~arch ~mapping:[| 0; 0; 0 |] ~graph ~period:1.0) with
          Schedule.mode_id = mode;
        }
      in
      Power.mode_power ~arch ~schedule:sched ~dyn_energy)
    dyn_energies

let two_mode () =
  let spec = two_mode_spec () in
  (Spec.omsm spec, mode_powers_for spec [| 1e-3; 2e-3 |])

(* --- Differential: 1 device ≡ Trace_sim --------------------------------------- *)

(* Device 0's stream is the run seed's own state (Prng.stream _ 0), so
   the fleet kernel must replay the oracle walk exactly: same segments,
   same transition count, same float-bit empirical power. *)
let one_device_case ~omsm ~mode_powers ~horizon seed =
  let oracle = Trace_sim.simulate ~omsm ~mode_powers ~horizon (Prng.create ~seed) in
  let sim = Fleet_sim.compile ~omsm ~mode_powers in
  let segments = ref [] in
  let on_segment ~mode ~enter ~leave =
    segments := { Trace_sim.mode; enter; leave } :: !segments
  in
  let power, transitions =
    Fleet_sim.simulate_device ~on_segment sim ~model:Fleet_sim.Point ~horizon
      (Prng.stream (Prng.create ~seed) 0)
  in
  let segments = List.rev !segments in
  bits power = bits oracle.Trace_sim.empirical_power
  && transitions = oracle.Trace_sim.n_transitions
  && List.length segments = List.length oracle.Trace_sim.segments
  && List.for_all2
       (fun (a : Trace_sim.segment) (b : Trace_sim.segment) ->
         a.Trace_sim.mode = b.Trace_sim.mode
         && bits a.Trace_sim.enter = bits b.Trace_sim.enter
         && bits a.Trace_sim.leave = bits b.Trace_sim.leave)
       segments oracle.Trace_sim.segments

let prop_one_device_matches_trace_sim =
  let omsm, mode_powers = two_mode () in
  QCheck.Test.make ~name:"1-device fleet ≡ Trace_sim (segments, float-bit)"
    ~count:(fuzz_count 200) QCheck.small_int (fun seed ->
      one_device_case ~omsm ~mode_powers ~horizon:200.0 seed)

let test_one_device_absorbing () =
  (* A single-mode system absorbs the whole horizon: the double-
     accumulation tail of the walk must match the oracle too. *)
  let spec = F.spec_of_graphs ~probabilities:[| 1.0 |] [ F.chain_graph () ] in
  let omsm = Spec.omsm spec in
  let mode_powers = mode_powers_for spec [| 1e-3 |] in
  Alcotest.(check bool) "absorbing walk identical" true
    (one_device_case ~omsm ~mode_powers ~horizon:50.0 7)

let test_run_one_device_matches_kernel () =
  let omsm, mode_powers = two_mode () in
  let sim = Fleet_sim.compile ~omsm ~mode_powers in
  let power, transitions =
    Fleet_sim.simulate_device sim ~model:Fleet_sim.Point ~horizon:100.0
      (Prng.stream (Prng.create ~seed:11) 0)
  in
  let fleet = Fleet_sim.run ~devices:1 ~horizon:100.0 ~omsm ~mode_powers ~seed:11 () in
  Alcotest.(check bool) "device 0 power" true
    (bits fleet.Fleet_sim.powers.{0} = bits power);
  Alcotest.(check (float 0.0)) "device 0 transitions" (float_of_int transitions)
    fleet.Fleet_sim.transitions.{0};
  Alcotest.(check bool) "device 0 lifetime through the battery" true
    (bits fleet.Fleet_sim.lifetimes.{0}
    = bits (Battery.lifetime_hours Battery.phone_cell ~average_power:power))

(* --- Convergence to Eq. (1) ---------------------------------------------------- *)

let test_converges_to_analytic () =
  let spec = two_mode_spec () in
  let omsm = Spec.omsm spec in
  let mode_powers = mode_powers_for spec [| 1e-3; 2e-3 |] in
  let fleet = Fleet_sim.run ~devices:400 ~horizon:2000.0 ~omsm ~mode_powers ~seed:3 () in
  let analytic = Power.average ~probabilities:[| 0.2; 0.8 |] mode_powers in
  Alcotest.(check bool) "analytic field is Eq. (1)" true
    (bits fleet.Fleet_sim.stats.Fleet_sim.analytic_power = bits analytic);
  let relative =
    Float.abs (fleet.Fleet_sim.stats.Fleet_sim.mean_power -. analytic) /. analytic
  in
  Alcotest.(check bool)
    (Printf.sprintf "fleet mean within 2%% (got %.4f%%)" (100.0 *. relative))
    true (relative < 0.02)

(* --- Percentiles --------------------------------------------------------------- *)

let test_percentiles_monotone () =
  let omsm, mode_powers = two_mode () in
  let fleet =
    Fleet_sim.run ~devices:500 ~horizon:300.0
      ~model:(Fleet_sim.Dirichlet { concentration = 10.0 })
      ~omsm ~mode_powers ~seed:5 ()
  in
  let s = fleet.Fleet_sim.stats in
  let p rank = List.assoc rank s.Fleet_sim.percentiles in
  Alcotest.(check (list int)) "ranks" [ 1; 10; 50; 90; 99 ]
    (List.map fst s.Fleet_sim.percentiles);
  List.iter
    (fun (lo, hi) ->
      Alcotest.(check bool) (Printf.sprintf "p%d <= p%d" lo hi) true (p lo <= p hi))
    [ (1, 10); (10, 50); (50, 90); (90, 99) ];
  Alcotest.(check bool) "min <= p1" true (s.Fleet_sim.min_hours <= p 1);
  Alcotest.(check bool) "p99 <= max" true (p 99 <= s.Fleet_sim.max_hours);
  Alcotest.(check bool) "mean within range" true
    (s.Fleet_sim.min_hours <= s.Fleet_sim.mean_hours
    && s.Fleet_sim.mean_hours <= s.Fleet_sim.max_hours)

let test_percentile_of_sorted () =
  let sorted = Array.init 10 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.0)) "p50 of 1..10" 5.0
    (Fleet_sim.percentile_of_sorted sorted 0.5);
  Alcotest.(check (float 0.0)) "p1 clamps to first" 1.0
    (Fleet_sim.percentile_of_sorted sorted 0.01);
  Alcotest.(check (float 0.0)) "p100 is the max" 10.0
    (Fleet_sim.percentile_of_sorted sorted 1.0)

(* --- Bit-invariance under jobs and batch --------------------------------------- *)

let test_jobs_batch_bit_invariance () =
  let omsm, mode_powers = two_mode () in
  let run ?pool ?batch () =
    Fleet_sim.run ?pool ?batch
      ~model:(Fleet_sim.Holding_jitter { sigma = 0.3 })
      ~devices:257 ~horizon:100.0 ~omsm ~mode_powers ~seed:13 ()
  in
  let lifetime_bits result =
    Array.map bits (Fleet_sim.sorted_lifetimes result)
  in
  let check_same name expected result =
    Alcotest.(check string) name expected (Fleet_sim.to_json result);
    Alcotest.(check (array int64))
      (name ^ " lifetimes")
      (lifetime_bits (run ()))
      (lifetime_bits result)
  in
  let reference = Fleet_sim.to_json (run ()) in
  check_same "batch 17" reference (run ~batch:17 ());
  check_same "batch 1" reference (run ~batch:1 ());
  let pool = Pool.create ~domains:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> check_same "pooled, batch 64" reference (run ~pool ~batch:64 ()));
  (* Same seed, fresh run: the report is a pure function of its inputs. *)
  check_same "replay" reference (run ())

let test_report_shape () =
  let omsm, mode_powers = two_mode () in
  let fleet = Fleet_sim.run ~devices:32 ~horizon:50.0 ~omsm ~mode_powers ~seed:2 () in
  let json = Mini_json.parse_json (Fleet_sim.to_json fleet) in
  Alcotest.(check string) "format" "mmsyn-fleet-report"
    Mini_json.(as_string (member_exn "format" json));
  Alcotest.(check (float 0.0)) "devices" 32.0
    Mini_json.(as_number (member_exn "devices" json));
  let lifetime = Mini_json.member_exn "lifetime_hours" json in
  List.iter
    (fun key -> ignore Mini_json.(as_number (member_exn key lifetime)))
    [ "mean"; "stddev"; "min"; "max"; "p1"; "p10"; "p50"; "p90"; "p99" ];
  Alcotest.(check (float 0.0)) "p50 matches stats"
    (List.assoc 50 fleet.Fleet_sim.stats.Fleet_sim.percentiles)
    Mini_json.(as_number (member_exn "p50" lifetime))

(* --- Usage models --------------------------------------------------------------- *)

let test_sample_psi () =
  let base = [| 0.2; 0.8 |] in
  let rng = Prng.create ~seed:1 in
  Alcotest.(check bool) "point is base itself" true
    (Fleet_sim.sample_psi Fleet_sim.Point ~base rng == base);
  let normalised psi =
    Array.for_all (fun p -> p >= 0.0) psi
    && Float.abs (Array.fold_left ( +. ) 0.0 psi -. 1.0) < 1e-9
  in
  for _ = 1 to 100 do
    Alcotest.(check bool) "dirichlet normalised" true
      (normalised
         (Fleet_sim.sample_psi (Fleet_sim.Dirichlet { concentration = 20.0 }) ~base rng));
    Alcotest.(check bool) "jitter normalised" true
      (normalised
         (Fleet_sim.sample_psi (Fleet_sim.Holding_jitter { sigma = 0.5 }) ~base rng))
  done;
  let profiles =
    [
      { Fleet_sim.name = "light"; weight = 1.0; psi = [| 0.9; 0.1 |] };
      { Fleet_sim.name = "heavy"; weight = 3.0; psi = [| 0.1; 0.9 |] };
    ]
  in
  for _ = 1 to 50 do
    let psi = Fleet_sim.sample_psi (Fleet_sim.Mixture profiles) ~base rng in
    Alcotest.(check bool) "mixture draws a profile" true
      (psi = [| 0.9; 0.1 |] || psi = [| 0.1; 0.9 |])
  done

let test_validate_model () =
  let rejects model =
    match Fleet_sim.validate_model ~n_modes:2 model with
    | exception Invalid_argument _ -> ()
    | () -> Alcotest.fail "malformed model accepted"
  in
  rejects (Fleet_sim.Dirichlet { concentration = 0.0 });
  rejects (Fleet_sim.Holding_jitter { sigma = -1.0 });
  rejects (Fleet_sim.Mixture []);
  rejects
    (Fleet_sim.Mixture [ { Fleet_sim.name = "bad"; weight = 0.0; psi = [| 0.5; 0.5 |] } ]);
  rejects
    (Fleet_sim.Mixture [ { Fleet_sim.name = "short"; weight = 1.0; psi = [| 1.0 |] } ]);
  Fleet_sim.validate_model ~n_modes:2 Fleet_sim.Point;
  Fleet_sim.validate_model ~n_modes:2 (Fleet_sim.Dirichlet { concentration = 5.0 })

let test_prng_gamma_dirichlet () =
  let rng = Prng.create ~seed:9 in
  List.iter
    (fun shape ->
      let n = 20_000 in
      let sum = ref 0.0 in
      for _ = 1 to n do
        sum := !sum +. Prng.gamma rng ~shape
      done;
      let mean = !sum /. float_of_int n in
      Alcotest.(check bool)
        (Printf.sprintf "gamma(%.1f) mean ~ shape (got %.3f)" shape mean)
        true
        (Float.abs (mean -. shape) /. shape < 0.05))
    [ 0.5; 3.0 ];
  let w = Prng.dirichlet rng [| 2.0; 5.0; 1.0 |] in
  Alcotest.(check int) "dirichlet length" 3 (Array.length w);
  Alcotest.(check (float 1e-12)) "dirichlet sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 w);
  Alcotest.(check bool) "dirichlet positive" true (Array.for_all (fun x -> x > 0.0) w);
  (match Prng.gamma rng ~shape:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "gamma shape 0 accepted");
  match Prng.dirichlet rng [||] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty dirichlet accepted"

(* --- Battery inverse ------------------------------------------------------------ *)

let test_battery_inverse () =
  List.iter
    (fun power ->
      let hours = Battery.lifetime_hours Battery.phone_cell ~average_power:power in
      let back = Battery.power_for_lifetime Battery.phone_cell ~hours in
      Alcotest.(check bool)
        (Printf.sprintf "inverse at %g W" power)
        true
        (Float.abs (back -. power) /. power < 1e-9))
    [ 1e-3; 0.05; 0.3; 2.0 ];
  match Battery.power_for_lifetime Battery.phone_cell ~hours:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero lifetime accepted"

(* --- Robust fitness objective --------------------------------------------------- *)

let test_robust_power () =
  let _, mode_powers = two_mode () in
  let p0 = Power.total mode_powers.(0) and p1 = Power.total mode_powers.(1) in
  let robust psis objective =
    Fitness.robust_power
      { Fitness.psis; battery = Battery.phone_cell; objective }
      mode_powers
  in
  (* One point draw is exactly the Eq. (1) average. *)
  Alcotest.(check bool) "single draw = Power.average" true
    (bits (robust [| [| 0.2; 0.8 |] |] Fitness.Expected_lifetime)
    = bits
        (Battery.power_for_lifetime Battery.phone_cell
           ~hours:
             (Battery.lifetime_hours Battery.phone_cell
                ~average_power:(Power.average ~probabilities:[| 0.2; 0.8 |] mode_powers))));
  (* Two extreme draws: p10 is the worst (highest-power) draw, p100 the
     best one. *)
  let extremes = [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  Alcotest.(check bool) "p10 is the worst draw" true
    (bits (robust extremes (Fitness.Percentile 0.1)) = bits (Float.max p0 p1));
  Alcotest.(check bool) "p100 is the best draw" true
    (bits (robust extremes (Fitness.Percentile 1.0)) = bits (Float.min p0 p1));
  let mean_power = robust extremes Fitness.Expected_lifetime in
  Alcotest.(check bool) "mean objective lies between the draws" true
    (mean_power >= Float.min p0 p1 && mean_power <= Float.max p0 p1);
  (match robust [||] Fitness.Expected_lifetime with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty sample set accepted");
  match robust extremes (Fitness.Percentile 0.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "percentile 0 accepted"

(* --- Task-network JSON export ---------------------------------------------------- *)

let motivational_eval () =
  let spec = Mm_benchgen.Motivational.spec () in
  let eval =
    Fitness.evaluate_mapping Fitness.default_config spec
      (Mapping.of_arrays spec [| [| 0; 0; 0 |]; [| 0; 1; 1 |] |])
  in
  (spec, eval)

let test_export_round_trip () =
  let spec, eval = motivational_eval () in
  let exported = Export_json.to_string spec eval in
  let parsed = Mini_json.parse_json exported in
  Alcotest.(check string) "parse → re-emit is byte-identical" exported
    (Mini_json.emit parsed);
  Alcotest.(check string) "format" "mmsyn-task-network"
    Mini_json.(as_string (member_exn "format" parsed));
  (match Mini_json.member_exn "tasks" parsed with
  | Mini_json.Array tasks -> Alcotest.(check int) "3 tasks × 2 modes" 6 (List.length tasks)
  | _ -> Alcotest.fail "tasks is not an array");
  Alcotest.(check (float 0.0)) "power matches the evaluation"
    eval.Fitness.true_power
    Mini_json.(as_number (member_exn "average_power_w" parsed))

let test_export_shape_mismatch () =
  let _, eval = motivational_eval () in
  let other = F.spec_of_graphs ~probabilities:[| 1.0 |] [ F.chain_graph () ] in
  match Export_json.to_string other eval with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mode-count mismatch accepted"

let prop_export_never_raises =
  QCheck.Test.make ~name:"export-json total on synthesizable benchmarks"
    ~count:(fuzz_count 3) QCheck.small_int (fun seed ->
      let spec = Mm_benchgen.Random_system.generate ~seed () in
      let config =
        {
          Synthesis.default_config with
          Synthesis.ga =
            {
              Mm_ga.Engine.default_config with
              Mm_ga.Engine.max_generations = 10;
              population_size = 12;
            };
        }
      in
      let result = Synthesis.run ~config ~spec ~seed () in
      let exported = Export_json.to_string spec result.Synthesis.eval in
      match Mini_json.parse_json exported with
      | Mini_json.Object _ -> true
      | _ -> false
      | exception Mini_json.Bad_json _ -> false)

let () =
  Alcotest.run "mm_fleet"
    [
      ( "differential vs Trace_sim",
        [
          QCheck_alcotest.to_alcotest prop_one_device_matches_trace_sim;
          Alcotest.test_case "absorbing mode" `Quick test_one_device_absorbing;
          Alcotest.test_case "run ≡ kernel for device 0" `Quick
            test_run_one_device_matches_kernel;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "converges to Eq. (1)" `Quick test_converges_to_analytic;
          Alcotest.test_case "percentiles monotone" `Quick test_percentiles_monotone;
          Alcotest.test_case "nearest-rank percentile" `Quick test_percentile_of_sorted;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "bit-invariant under jobs and batch" `Quick
            test_jobs_batch_bit_invariance;
          Alcotest.test_case "report shape" `Quick test_report_shape;
        ] );
      ( "usage models",
        [
          Alcotest.test_case "sample_psi" `Quick test_sample_psi;
          Alcotest.test_case "validation" `Quick test_validate_model;
          Alcotest.test_case "gamma and dirichlet" `Quick test_prng_gamma_dirichlet;
          Alcotest.test_case "battery inverse" `Quick test_battery_inverse;
          Alcotest.test_case "robust objective" `Quick test_robust_power;
        ] );
      ( "export-json",
        [
          Alcotest.test_case "round trip" `Quick test_export_round_trip;
          Alcotest.test_case "shape mismatch" `Quick test_export_shape_mismatch;
          QCheck_alcotest.to_alcotest prop_export_never_raises;
        ] );
    ]
