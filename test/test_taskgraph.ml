(* Tests for mm_taskgraph: Task_type, Task, Graph, Mobility. *)

module Task_type = Mm_taskgraph.Task_type
module Task = Mm_taskgraph.Task
module Graph = Mm_taskgraph.Graph
module Mobility = Mm_taskgraph.Mobility
module Prng = Mm_util.Prng

let ty_a = Task_type.make ~id:0 ~name:"A"
let ty_b = Task_type.make ~id:1 ~name:"B"

let task ?deadline id ty = Task.make ~id ~name:(Printf.sprintf "t%d" id) ~ty ?deadline ()

(* A diamond: 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3. *)
let diamond () =
  Graph.make ~name:"diamond"
    ~tasks:[| task 0 ty_a; task 1 ty_b; task 2 ty_a; task 3 ty_b |]
    ~edges:
      [
        { Graph.src = 0; dst = 1; data = 1.0 };
        { Graph.src = 0; dst = 2; data = 2.0 };
        { Graph.src = 1; dst = 3; data = 3.0 };
        { Graph.src = 2; dst = 3; data = 4.0 };
      ]

(* --- Task_type / Task ---------------------------------------------------- *)

let test_type_identity () =
  let a1 = Task_type.make ~id:0 ~name:"x" and a2 = Task_type.make ~id:0 ~name:"y" in
  Alcotest.(check bool) "equal by id" true (Task_type.equal a1 a2);
  Alcotest.(check bool) "set dedups by id" true
    (Task_type.Set.cardinal (Task_type.Set.of_list [ a1; a2 ]) = 1)

let test_type_negative_id () =
  Alcotest.check_raises "negative" (Invalid_argument "Task_type.make: negative id")
    (fun () -> ignore (Task_type.make ~id:(-1) ~name:"x"))

let test_task_deadline_validation () =
  Alcotest.check_raises "non-positive deadline"
    (Invalid_argument "Task.make: non-positive deadline") (fun () ->
      ignore (Task.make ~id:0 ~name:"t" ~ty:ty_a ~deadline:0.0 ()))

(* --- Graph ---------------------------------------------------------------- *)

let test_diamond_structure () =
  let g = diamond () in
  Alcotest.(check int) "tasks" 4 (Graph.n_tasks g);
  Alcotest.(check int) "edges" 4 (Graph.n_edges g);
  Alcotest.(check (list int)) "sources" [ 0 ] (Graph.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Graph.sinks g);
  Alcotest.(check (list int)) "succs of 0" [ 1; 2 ] (List.sort compare (Graph.succs g 0));
  Alcotest.(check (list int)) "preds of 3" [ 1; 2 ] (List.sort compare (Graph.preds g 3))

let test_topological_order () =
  let g = diamond () in
  let topo = Graph.topological_order g in
  let position = Array.make 4 0 in
  Array.iteri (fun k i -> position.(i) <- k) topo;
  List.iter
    (fun (e : Graph.edge) ->
      Alcotest.(check bool) "edge respects topo" true (position.(e.src) < position.(e.dst)))
    (Graph.edges g)

let test_cycle_detection () =
  let make () =
    Graph.make ~name:"cyclic"
      ~tasks:[| task 0 ty_a; task 1 ty_b |]
      ~edges:[ { Graph.src = 0; dst = 1; data = 0.0 }; { Graph.src = 1; dst = 0; data = 0.0 } ]
  in
  match make () with
  | exception Graph.Invalid _ -> ()
  | _ -> Alcotest.fail "cycle not detected"

let test_rejects_self_loop () =
  match
    Graph.make ~name:"loop" ~tasks:[| task 0 ty_a |]
      ~edges:[ { Graph.src = 0; dst = 0; data = 0.0 } ]
  with
  | exception Graph.Invalid _ -> ()
  | _ -> Alcotest.fail "self-loop not detected"

let test_rejects_duplicate_edge () =
  match
    Graph.make ~name:"dup"
      ~tasks:[| task 0 ty_a; task 1 ty_b |]
      ~edges:[ { Graph.src = 0; dst = 1; data = 1.0 }; { Graph.src = 0; dst = 1; data = 2.0 } ]
  with
  | exception Graph.Invalid _ -> ()
  | _ -> Alcotest.fail "duplicate edge not detected"

let test_rejects_bad_ids () =
  match Graph.make ~name:"bad" ~tasks:[| task 1 ty_a |] ~edges:[] with
  | exception Graph.Invalid _ -> ()
  | _ -> Alcotest.fail "misnumbered task not detected"

let test_rejects_dangling_edge () =
  match
    Graph.make ~name:"dangling" ~tasks:[| task 0 ty_a |]
      ~edges:[ { Graph.src = 0; dst = 5; data = 0.0 } ]
  with
  | exception Graph.Invalid _ -> ()
  | _ -> Alcotest.fail "dangling edge not detected"

let test_edge_accessors () =
  let g = diamond () in
  (match Graph.pred_edges g 3 with
  | [ a; b ] ->
    let data = List.sort compare [ a.Graph.data; b.Graph.data ] in
    Alcotest.(check (list (float 1e-9))) "pred edge data" [ 3.0; 4.0 ] data
  | _ -> Alcotest.fail "expected two incoming edges");
  match Graph.succ_edges g 0 with
  | [ a; b ] ->
    let data = List.sort compare [ a.Graph.data; b.Graph.data ] in
    Alcotest.(check (list (float 1e-9))) "succ edge data" [ 1.0; 2.0 ] data
  | _ -> Alcotest.fail "expected two outgoing edges"

let test_fold_and_iter () =
  let g = diamond () in
  let count = Graph.fold_tasks (fun _ acc -> acc + 1) g 0 in
  Alcotest.(check int) "fold visits all" 4 count;
  let names = ref [] in
  Graph.iter_tasks (fun t -> names := Task.name t :: !names) g;
  Alcotest.(check int) "iter visits all" 4 (List.length !names)

let test_tasks_returns_copy () =
  let g = diamond () in
  let tasks = Graph.tasks g in
  tasks.(0) <- task 0 ty_b;
  (* The graph's own task is untouched. *)
  Alcotest.(check bool) "defensive copy" true
    (Mm_taskgraph.Task_type.equal (Task.ty (Graph.task g 0)) ty_a)

let test_task_types_and_lookup () =
  let g = diamond () in
  Alcotest.(check int) "two types" 2 (Task_type.Set.cardinal (Graph.task_types g));
  Alcotest.(check (list int)) "tasks of A" [ 0; 2 ] (Graph.tasks_of_type g ty_a);
  Alcotest.(check (list int)) "tasks of B" [ 1; 3 ] (Graph.tasks_of_type g ty_b)

let test_longest_path () =
  let g = diamond () in
  (* Node weights 1 everywhere: path 0-1-3 length 3. *)
  Alcotest.(check (float 1e-9)) "unit weights" 3.0
    (Graph.longest_path_length g ~weight:(fun _ -> 1.0))

let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_to_dot_mentions_tasks () =
  let dot = Graph.to_dot (diamond ()) in
  Alcotest.(check bool) "mentions t0" true (string_contains dot "t0");
  Alcotest.(check bool) "mentions an edge" true (string_contains dot "t0 -> t1")

(* --- Mobility -------------------------------------------------------------- *)

let unit_exec _ = 1.0
let no_comm (_ : Graph.edge) = 0.0

let test_asap_alap_diamond () =
  let g = diamond () in
  let m = Mobility.compute g ~exec_time:unit_exec ~comm_time:no_comm ~horizon:3.0 in
  Alcotest.(check (float 1e-9)) "asap 0" 0.0 m.Mobility.asap.(0);
  Alcotest.(check (float 1e-9)) "asap 1" 1.0 m.Mobility.asap.(1);
  Alcotest.(check (float 1e-9)) "asap 3" 2.0 m.Mobility.asap.(3);
  Alcotest.(check (float 1e-9)) "makespan" 3.0 (Mobility.makespan m);
  (* With horizon equal to the makespan every task is critical. *)
  for i = 0 to 3 do
    Alcotest.(check (float 1e-9)) "zero mobility" 0.0 (Mobility.mobility m i)
  done

let test_mobility_with_slack () =
  let g = diamond () in
  let m = Mobility.compute g ~exec_time:unit_exec ~comm_time:no_comm ~horizon:5.0 in
  for i = 0 to 3 do
    Alcotest.(check (float 1e-9)) "two units of slack" 2.0 (Mobility.mobility m i)
  done;
  Alcotest.(check bool) "not critical" false (Mobility.is_critical m 0)

let test_mobility_comm_times () =
  let g = diamond () in
  (* Communication costs 0.5 per edge: critical path = 1 + 0.5 + 1 + 0.5 + 1 = 4. *)
  let m =
    Mobility.compute g ~exec_time:unit_exec ~comm_time:(fun _ -> 0.5) ~horizon:0.0
  in
  Alcotest.(check (float 1e-9)) "makespan with comm" 4.0 (Mobility.makespan m)

let test_deadline_caps_alap () =
  let ty = ty_a in
  let g =
    Graph.make ~name:"chain"
      ~tasks:[| task 0 ty; task ~deadline:2.5 1 ty |]
      ~edges:[ { Graph.src = 0; dst = 1; data = 0.0 } ]
  in
  let m = Mobility.compute g ~exec_time:unit_exec ~comm_time:no_comm ~horizon:10.0 in
  (* Task 1 must finish by 2.5 => latest start 1.5; task 0 then by 1.5,
     latest start 0.5 — far below the 10 s horizon. *)
  Alcotest.(check (float 1e-9)) "alap capped" 1.5 m.Mobility.alap.(1);
  Alcotest.(check (float 1e-9)) "pred inherits cap" 0.5 m.Mobility.alap.(0)

let test_unreachable_deadline_clamped () =
  let g = Graph.make ~name:"single" ~tasks:[| task ~deadline:0.2 0 ty_a |] ~edges:[] in
  let m = Mobility.compute g ~exec_time:unit_exec ~comm_time:no_comm ~horizon:10.0 in
  (* Deadline 0.2 < exec 1.0: clamp mobility to 0 instead of negative. *)
  Alcotest.(check (float 1e-9)) "clamped to critical" 0.0 (Mobility.mobility m 0)

let test_windows_overlap () =
  let g = diamond () in
  let m = Mobility.compute g ~exec_time:unit_exec ~comm_time:no_comm ~horizon:3.0 in
  Alcotest.(check bool) "parallel branches overlap" true (Mobility.windows_overlap m 1 2);
  Alcotest.(check bool) "chain tasks do not" false (Mobility.windows_overlap m 0 3)

(* --- Metrics ---------------------------------------------------------------- *)

module Metrics = Mm_taskgraph.Metrics

let test_metrics_diamond () =
  let m = Metrics.compute (diamond ()) in
  Alcotest.(check int) "tasks" 4 m.Metrics.n_tasks;
  Alcotest.(check int) "edges" 4 m.Metrics.n_edges;
  Alcotest.(check int) "types" 2 m.Metrics.n_types;
  Alcotest.(check int) "depth" 3 m.Metrics.depth;
  Alcotest.(check int) "width" 2 m.Metrics.width;
  Alcotest.(check (float 1e-9)) "parallelism" (4.0 /. 3.0) m.Metrics.parallelism;
  Alcotest.(check int) "max in-degree" 2 m.Metrics.max_in_degree;
  Alcotest.(check int) "max out-degree" 2 m.Metrics.max_out_degree

let test_metrics_levels () =
  let levels = Metrics.levels (diamond ()) in
  Alcotest.(check (array int)) "levels" [| 0; 1; 1; 2 |] levels

let test_metrics_single_task () =
  let g = Graph.make ~name:"one" ~tasks:[| task 0 ty_a |] ~edges:[] in
  let m = Metrics.compute g in
  Alcotest.(check int) "depth" 1 m.Metrics.depth;
  Alcotest.(check (float 1e-9)) "density" 0.0 m.Metrics.edge_density

(* Random DAG generator for property tests: edges only from lower to
   higher ids, hence always acyclic. *)
let random_graph_gen =
  QCheck.Gen.(
    let* n = 2 -- 25 in
    let* seed = small_int in
    let rng = Prng.create ~seed in
    let tasks = Array.init n (fun i -> task i (if i mod 2 = 0 then ty_a else ty_b)) in
    let edges = ref [] in
    for j = 1 to n - 1 do
      for i = 0 to j - 1 do
        if Prng.chance rng 0.15 then
          edges := { Graph.src = i; dst = j; data = Prng.float rng 4.0 } :: !edges
      done
    done;
    return (Graph.make ~name:"rand" ~tasks ~edges:!edges))

let arbitrary_graph = QCheck.make ~print:(fun g -> Format.asprintf "%a" Graph.pp g) random_graph_gen

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"topological order respects all edges" ~count:100
    arbitrary_graph (fun g ->
      let topo = Graph.topological_order g in
      let position = Array.make (Graph.n_tasks g) 0 in
      Array.iteri (fun k i -> position.(i) <- k) topo;
      List.for_all (fun (e : Graph.edge) -> position.(e.src) < position.(e.dst))
        (Graph.edges g))

let prop_metrics_consistent =
  QCheck.Test.make ~name:"width·depth covers all tasks; parallelism <= width" ~count:100
    arbitrary_graph (fun g ->
      let m = Mm_taskgraph.Metrics.compute g in
      m.Mm_taskgraph.Metrics.width * m.Mm_taskgraph.Metrics.depth
      >= m.Mm_taskgraph.Metrics.n_tasks
      && m.Mm_taskgraph.Metrics.parallelism
         <= float_of_int m.Mm_taskgraph.Metrics.width +. 1e-9)

let prop_mobility_nonnegative =
  QCheck.Test.make ~name:"mobility is never negative" ~count:100 arbitrary_graph
    (fun g ->
      let m = Mobility.compute g ~exec_time:unit_exec ~comm_time:no_comm ~horizon:0.0 in
      let ok = ref true in
      for i = 0 to Graph.n_tasks g - 1 do
        if Mobility.mobility m i < -1e-9 then ok := false
      done;
      !ok)

let prop_alap_at_least_asap_with_horizon =
  QCheck.Test.make ~name:"asap <= alap under generous horizon" ~count:100
    arbitrary_graph (fun g ->
      let m =
        Mobility.compute g ~exec_time:unit_exec ~comm_time:no_comm ~horizon:1000.0
      in
      let ok = ref true in
      for i = 0 to Graph.n_tasks g - 1 do
        if m.Mobility.alap.(i) < m.Mobility.asap.(i) -. 1e-9 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "mm_taskgraph"
    [
      ( "task-and-type",
        [
          Alcotest.test_case "type identity" `Quick test_type_identity;
          Alcotest.test_case "negative id rejected" `Quick test_type_negative_id;
          Alcotest.test_case "deadline validated" `Quick test_task_deadline_validation;
        ] );
      ( "graph",
        [
          Alcotest.test_case "diamond structure" `Quick test_diamond_structure;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
          Alcotest.test_case "self-loop rejected" `Quick test_rejects_self_loop;
          Alcotest.test_case "duplicate edge rejected" `Quick test_rejects_duplicate_edge;
          Alcotest.test_case "bad ids rejected" `Quick test_rejects_bad_ids;
          Alcotest.test_case "dangling edge rejected" `Quick test_rejects_dangling_edge;
          Alcotest.test_case "edge accessors" `Quick test_edge_accessors;
          Alcotest.test_case "fold and iter" `Quick test_fold_and_iter;
          Alcotest.test_case "tasks defensive copy" `Quick test_tasks_returns_copy;
          Alcotest.test_case "task types" `Quick test_task_types_and_lookup;
          Alcotest.test_case "longest path" `Quick test_longest_path;
          Alcotest.test_case "dot output" `Quick test_to_dot_mentions_tasks;
          QCheck_alcotest.to_alcotest prop_topo_respects_edges;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "diamond" `Quick test_metrics_diamond;
          Alcotest.test_case "levels" `Quick test_metrics_levels;
          Alcotest.test_case "single task" `Quick test_metrics_single_task;
          QCheck_alcotest.to_alcotest prop_metrics_consistent;
        ] );
      ( "mobility",
        [
          Alcotest.test_case "asap/alap diamond" `Quick test_asap_alap_diamond;
          Alcotest.test_case "slack" `Quick test_mobility_with_slack;
          Alcotest.test_case "comm times" `Quick test_mobility_comm_times;
          Alcotest.test_case "deadline caps alap" `Quick test_deadline_caps_alap;
          Alcotest.test_case "unreachable deadline clamped" `Quick
            test_unreachable_deadline_clamped;
          Alcotest.test_case "windows overlap" `Quick test_windows_overlap;
          QCheck_alcotest.to_alcotest prop_mobility_nonnegative;
          QCheck_alcotest.to_alcotest prop_alap_at_least_asap_with_horizon;
        ] );
    ]
