(* Resume equivalence: a run interrupted at ANY generation boundary and
   resumed from its checkpoint must reproduce the uninterrupted run's
   result bit-for-bit (fitness compared by Int64.bits_of_float), at the
   Engine, Synthesis and Experiment levels, across evaluation strategies
   (serial / pooled / cached) and with DVS on or off.  Evaluation counts
   are exempt — a resume re-evaluates the restored population once. *)

module Engine = Mm_ga.Engine
module Synthesis = Mm_cosynth.Synthesis
module Experiment = Mm_cosynth.Experiment
module Fitness = Mm_cosynth.Fitness
module Pool = Mm_parallel.Pool
module Memo = Mm_parallel.Memo
module Prng = Mm_util.Prng

let bits = Int64.bits_of_float
let fitness_bits = Alcotest.testable (fun ppf b -> Fmt.pf ppf "%Lx" b) Int64.equal

(* --- Engine level -------------------------------------------------------------- *)

(* A synthetic minimisation problem with a rugged but pure fitness:
   cheap to evaluate, yet structured enough that the GA's trajectory
   differs between seeds. *)
let synthetic_problem =
  {
    Engine.gene_counts = Array.make 8 5;
    evaluate =
      (fun genome ->
        let acc = ref 0.0 in
        Array.iteri
          (fun i g ->
            acc :=
              !acc
              +. (float_of_int ((g * (i + 3)) mod 7) *. 0.25)
              +. (0.125 *. sin (float_of_int (g + i))))
          genome;
        (!acc, ()));
    pure = true;
    improvements = [];
    initial = [];
  }

let engine_config =
  {
    Engine.default_config with
    population_size = 12;
    max_generations = 20;
    stagnation_limit = 50 (* run the full 20 generations *);
  }

let test_engine_resume_any_generation () =
  let straight =
    Engine.run ~config:engine_config ~rng:(Prng.create ~seed:3) synthetic_problem
  in
  let checkpoints = ref [] in
  ignore
    (Engine.run ~config:engine_config
       ~on_generation:(fun ck -> checkpoints := ck :: !checkpoints)
       ~rng:(Prng.create ~seed:3) synthetic_problem);
  let checkpoints = List.rev !checkpoints in
  Alcotest.(check bool) "checkpoints captured" true (List.length checkpoints > 2);
  List.iteri
    (fun i ck ->
      let resumed =
        (* The caller rng is superseded by the checkpoint's state: a
           wrong seed here must not matter. *)
        Engine.run ~config:engine_config ~resume:ck ~rng:(Prng.create ~seed:999)
          synthetic_problem
      in
      Alcotest.check fitness_bits
        (Printf.sprintf "fitness after resume at generation %d" (i + 1))
        (bits straight.Engine.best_fitness)
        (bits resumed.Engine.best_fitness);
      Alcotest.(check (array int))
        (Printf.sprintf "genome after resume at generation %d" (i + 1))
        straight.Engine.best_genome resumed.Engine.best_genome;
      Alcotest.(check int)
        (Printf.sprintf "generations after resume at %d" (i + 1))
        straight.Engine.generations resumed.Engine.generations)
    checkpoints

let test_engine_rejects_stale_checkpoint () =
  let checkpoints = ref [] in
  ignore
    (Engine.run ~config:engine_config
       ~on_generation:(fun ck -> checkpoints := ck :: !checkpoints)
       ~rng:(Prng.create ~seed:3) synthetic_problem);
  let ck = List.hd !checkpoints in
  (* Population size mismatch. *)
  (match
     Engine.run
       ~config:{ engine_config with Engine.population_size = 10 }
       ~resume:ck ~rng:(Prng.create ~seed:3) synthetic_problem
   with
  | _ -> Alcotest.fail "population size mismatch accepted"
  | exception Invalid_argument _ -> ());
  (* A genome that does not fit the problem. *)
  let bad_genome =
    { ck with Engine.best = ([| 99; 0; 0; 0; 0; 0; 0; 0 |], snd ck.Engine.best) }
  in
  (match
     Engine.run ~config:engine_config ~resume:bad_genome ~rng:(Prng.create ~seed:3)
       synthetic_problem
   with
  | _ -> Alcotest.fail "invalid genome accepted"
  | exception Invalid_argument _ -> ());
  (* A stored fitness the pure evaluator contradicts (stale snapshot). *)
  let tampered =
    {
      ck with
      Engine.members =
        Array.map (fun (g, f) -> (g, f +. 1.0)) ck.Engine.members;
    }
  in
  match
    Engine.run ~config:engine_config ~resume:tampered ~rng:(Prng.create ~seed:3)
      synthetic_problem
  with
  | _ -> Alcotest.fail "tampered fitness accepted"
  | exception Invalid_argument _ -> ()

(* --- Synthesis level ------------------------------------------------------------ *)

let spec =
  Fixtures.spec_of_graphs
    ~probabilities:[| 0.2; 0.8 |]
    [ Fixtures.chain_graph (); Fixtures.fork_graph () ]

let tiny_config ~dvs =
  {
    Synthesis.default_config with
    fitness =
      {
        Fitness.default_config with
        dvs = (if dvs then Fitness.Dvs Mm_dvs.Scaling.default_config else Fitness.No_dvs);
      };
    ga =
      {
        Engine.default_config with
        population_size = 8;
        max_generations = 8;
        stagnation_limit = 20;
      };
    restarts = 2;
  }

(* Run to completion while capturing every generation-boundary state. *)
let run_capturing ~config ~seed =
  let states = ref [] in
  let checkpoint =
    { Synthesis.every = 1; save = (fun st -> states := st :: !states) }
  in
  let result = Synthesis.run ~config ~checkpoint ~spec ~seed () in
  (result, List.rev !states)

let check_same_result name (straight : Synthesis.result) (resumed : Synthesis.result) =
  Alcotest.check fitness_bits (name ^ ": power bits")
    (bits straight.Synthesis.eval.Fitness.true_power)
    (bits resumed.Synthesis.eval.Fitness.true_power);
  Alcotest.(check (array int)) (name ^ ": genome") straight.Synthesis.genome
    resumed.Synthesis.genome;
  Alcotest.(check int) (name ^ ": generations") straight.Synthesis.generations
    resumed.Synthesis.generations

let test_synthesis_resume_every_checkpoint ~dvs () =
  let config = tiny_config ~dvs in
  let straight = Synthesis.run ~config ~spec ~seed:5 () in
  let _, states = run_capturing ~config ~seed:5 in
  (* Both whole-restart boundaries and in-flight generation boundaries
     must be covered. *)
  Alcotest.(check bool) "between-restart states captured" true
    (List.exists (fun st -> st.Synthesis.engine = None) states);
  Alcotest.(check bool) "in-flight states captured" true
    (List.exists (fun st -> st.Synthesis.engine <> None) states);
  List.iteri
    (fun i st ->
      let resumed = Synthesis.run ~config ~resume:st ~spec ~seed:5 () in
      check_same_result (Printf.sprintf "state %d" i) straight resumed)
    states

(* The evaluation strategy must not affect a resumed trajectory: resume
   the same snapshot serial, pooled, cached, and pooled+cached. *)
let test_synthesis_resume_across_strategies () =
  let config = tiny_config ~dvs:false in
  let straight = Synthesis.run ~config ~spec ~seed:9 () in
  let _, states = run_capturing ~config ~seed:9 in
  let mid = List.nth states (List.length states / 2) in
  List.iter
    (fun (name, jobs, eval_cache) ->
      let config = { config with Synthesis.jobs; eval_cache } in
      let resumed = Synthesis.run ~config ~resume:mid ~spec ~seed:9 () in
      check_same_result name straight resumed)
    [
      ("serial uncached", 1, 0);
      ("serial cached", 1, 256);
      ("pooled", 2, 0);
      ("pooled cached", 2, 256);
    ]

let test_synthesis_rejects_mismatched_state () =
  let config = tiny_config ~dvs:false in
  let _, states = run_capturing ~config ~seed:5 in
  let st = List.hd states in
  (match Synthesis.run ~config ~resume:st ~spec ~seed:6 () with
  | _ -> Alcotest.fail "wrong seed accepted"
  | exception Invalid_argument _ -> ());
  let other = tiny_config ~dvs:true in
  (match Synthesis.run ~config:other ~resume:st ~spec ~seed:5 () with
  | _ -> Alcotest.fail "wrong configuration accepted"
  | exception Invalid_argument _ -> ());
  (* jobs/eval_cache are excluded from the fingerprint on purpose. *)
  let faster = { config with Synthesis.jobs = 2; eval_cache = 128 } in
  ignore (Synthesis.run ~config:faster ~resume:st ~spec ~seed:5 ())

(* Property: resume from a random checkpoint of a random seed. *)
let prop_resume_random_seed =
  QCheck.Test.make ~name:"resume reproduces the straight run (random seeds)" ~count:8
    QCheck.(pair small_nat small_nat)
    (fun (seed, pick) ->
      let config = tiny_config ~dvs:false in
      let straight = Synthesis.run ~config ~spec ~seed () in
      let _, states = run_capturing ~config ~seed in
      let st = List.nth states (pick mod List.length states) in
      let resumed = Synthesis.run ~config ~resume:st ~spec ~seed () in
      bits straight.Synthesis.eval.Fitness.true_power
      = bits resumed.Synthesis.eval.Fitness.true_power
      && straight.Synthesis.genome = resumed.Synthesis.genome)

(* --- Islands level --------------------------------------------------------------- *)

module Islands = Mm_ga.Islands

let island_topology = { Islands.islands = 3; migration_interval = 4; migration_count = 2 }

let test_islands_resume_every_epoch () =
  (* An archipelago interrupted at ANY migration-epoch boundary and
     resumed from its checkpoint must reproduce the uninterrupted run
     bit for bit — including the ring, which rides in the checkpoint. *)
  let straight =
    Islands.run ~config:engine_config ~topology:island_topology
      ~rng:(Prng.create ~seed:7) synthetic_problem
  in
  let checkpoints = ref [] in
  ignore
    (Islands.run ~config:engine_config ~topology:island_topology
       ~on_epoch:(fun ck -> checkpoints := ck :: !checkpoints)
       ~rng:(Prng.create ~seed:7) synthetic_problem);
  let checkpoints = List.rev !checkpoints in
  Alcotest.(check bool) "epoch checkpoints captured" true (List.length checkpoints > 1);
  List.iteri
    (fun i ck ->
      let resumed =
        (* The caller rng is superseded by the checkpointed streams. *)
        Islands.run ~config:engine_config ~topology:island_topology ~resume:ck
          ~rng:(Prng.create ~seed:999) synthetic_problem
      in
      Alcotest.check fitness_bits
        (Printf.sprintf "fitness after resume at epoch %d" (i + 1))
        (bits straight.Islands.best.Engine.best_fitness)
        (bits resumed.Islands.best.Engine.best_fitness);
      Alcotest.(check (array int))
        (Printf.sprintf "genome after resume at epoch %d" (i + 1))
        straight.Islands.best.Engine.best_genome
        resumed.Islands.best.Engine.best_genome;
      Array.iteri
        (fun j (r : unit Engine.result) ->
          Alcotest.(check (list (float 0.0)))
            (Printf.sprintf "island %d history after resume at epoch %d" j (i + 1))
            r.Engine.history
            resumed.Islands.per_island.(j).Engine.history)
        straight.Islands.per_island)
    checkpoints

let test_islands_rejects_mismatched_checkpoint () =
  let checkpoints = ref [] in
  ignore
    (Islands.run ~config:engine_config ~topology:island_topology
       ~on_epoch:(fun ck -> checkpoints := ck :: !checkpoints)
       ~rng:(Prng.create ~seed:7) synthetic_problem);
  let ck = List.hd !checkpoints in
  let wrong_count = { island_topology with Islands.islands = 2 } in
  match
    Islands.run ~config:engine_config ~topology:wrong_count ~resume:ck
      ~rng:(Prng.create ~seed:7) synthetic_problem
  with
  | _ -> Alcotest.fail "island count mismatch accepted"
  | exception Invalid_argument _ -> ()

let island_config ~jobs =
  {
    (tiny_config ~dvs:false) with
    Synthesis.jobs;
    islands = 3;
    migration_interval = 3;
    migration_count = 1;
  }

let test_synthesis_islands_resume_every_checkpoint () =
  (* Synthesis-level kill/resume with the island model: every captured
     state (between restarts and at every within-restart epoch
     boundary) resumes bit-identically, and the resumed trajectory is
     invariant across --jobs (serial fallback included). *)
  let config = island_config ~jobs:1 in
  let straight = Synthesis.run ~config ~spec ~seed:5 () in
  let _, states = run_capturing ~config ~seed:5 in
  Alcotest.(check bool) "in-flight island states captured" true
    (List.exists
       (fun st ->
         match st.Synthesis.engine with
         | Some (Synthesis.Sharded _) -> true
         | _ -> false)
       states);
  List.iteri
    (fun i st ->
      List.iter
        (fun jobs ->
          let resumed =
            Synthesis.run ~config:(island_config ~jobs) ~resume:st ~spec ~seed:5 ()
          in
          check_same_result (Printf.sprintf "state %d, jobs %d" i jobs) straight
            resumed)
        [ 1; 2 ])
    states;
  (* The fingerprint pins the variant: an islands run cannot resume a
     single-engine snapshot. *)
  let single = tiny_config ~dvs:false in
  let _, single_states = run_capturing ~config:single ~seed:5 in
  match Synthesis.run ~config ~resume:(List.hd single_states) ~spec ~seed:5 () with
  | _ -> Alcotest.fail "single-engine snapshot accepted by an islands run"
  | exception Invalid_argument _ -> ()

let test_synthesis_islands_jobs_invariant () =
  (* Whole runs agree across job counts under the island model. *)
  let serial = Synthesis.run ~config:(island_config ~jobs:1) ~spec ~seed:11 () in
  let pooled = Synthesis.run ~config:(island_config ~jobs:2) ~spec ~seed:11 () in
  check_same_result "islands across jobs" serial pooled

(* --- Experiment level ----------------------------------------------------------- *)

let test_experiment_resume_every_run () =
  let ga =
    {
      Engine.default_config with
      population_size = 8;
      max_generations = 6;
      stagnation_limit = 20;
    }
  in
  let runs = 3 and seed = 2 in
  let straight = Experiment.compare ~ga ~spec ~runs ~seed () in
  let states = ref [] in
  let checkpoint st = states := st :: !states in
  ignore (Experiment.compare ~ga ~checkpoint ~spec ~runs ~seed ());
  let states = List.rev !states in
  Alcotest.(check int) "one state per completed run" (2 * runs) (List.length states);
  let arm_bits (c : Experiment.comparison) =
    ( bits c.Experiment.without_probabilities.Experiment.power.Mm_util.Stats.mean,
      bits c.Experiment.with_probabilities.Experiment.power.Mm_util.Stats.mean,
      c.Experiment.without_probabilities.Experiment.best.Synthesis.genome,
      c.Experiment.with_probabilities.Experiment.best.Synthesis.genome )
  in
  List.iteri
    (fun i resume ->
      let resumed = Experiment.compare ~ga ~resume ~spec ~runs ~seed () in
      Alcotest.(check bool)
        (Printf.sprintf "comparison resumed from state %d is bit-identical" i)
        true
        (arm_bits straight = arm_bits resumed))
    states;
  (* Bookkeeping mismatches are refused. *)
  match Experiment.compare ~ga ~resume:(List.hd states) ~spec ~runs ~seed:99 () with
  | _ -> Alcotest.fail "wrong seed accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "checkpoint-resume"
    [
      ( "engine",
        [
          Alcotest.test_case "resume at any generation" `Quick
            test_engine_resume_any_generation;
          Alcotest.test_case "rejects stale checkpoints" `Quick
            test_engine_rejects_stale_checkpoint;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "resume every checkpoint (no DVS)" `Quick
            (test_synthesis_resume_every_checkpoint ~dvs:false);
          Alcotest.test_case "resume every checkpoint (DVS)" `Quick
            (test_synthesis_resume_every_checkpoint ~dvs:true);
          Alcotest.test_case "resume across strategies" `Quick
            test_synthesis_resume_across_strategies;
          Alcotest.test_case "rejects mismatched state" `Quick
            test_synthesis_rejects_mismatched_state;
          QCheck_alcotest.to_alcotest prop_resume_random_seed;
        ] );
      ( "islands",
        [
          Alcotest.test_case "resume at every epoch boundary" `Quick
            test_islands_resume_every_epoch;
          Alcotest.test_case "rejects mismatched checkpoints" `Quick
            test_islands_rejects_mismatched_checkpoint;
          Alcotest.test_case "synthesis resume every checkpoint" `Quick
            test_synthesis_islands_resume_every_checkpoint;
          Alcotest.test_case "synthesis jobs invariant" `Quick
            test_synthesis_islands_jobs_invariant;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "resume at every completed run" `Quick
            test_experiment_resume_every_run;
        ] );
    ]
