#!/usr/bin/env bash
# Deterministic chaos smoke for mmsynthd.
#
# Phase A runs a fault-free reference job to completion.  Phase B
# replays the same job under several --chaos-seed values (the default
# fault plan: dropped accepts, severed connections, garbage frames,
# torn and failing checkpoint writes, scheduler stalls) and requires
# every run's result.sexp to be byte-identical to the reference — the
# resilient client retries around the injected transport faults, and
# the injected storage faults must never reach the result.  One seed is
# additionally SIGKILLed mid-run and recovered on the same state
# directory.  Phase C corrupts the newest checkpoint generation behind
# a killed daemon's back and requires the restart to quarantine it
# (checkpoint.snap.corrupt), resume from the previous rotated
# generation and still match the reference.  Phase D checks the TCP
# auth boundary end to end: tokenless and wrong-token requests are
# refused, the right token and the Unix socket are served.
#
# CHAOS_TAMPER=1 deliberately breaks the quarantine path (a directory
# squats on the .corrupt destination, so the rename can never land) and
# the script MUST then exit non-zero — CI runs this mode expecting
# failure, proving the phase C assertion has teeth.
#
# Run from the repository root; binaries must already be built
# (`dune build bin`).  Exits non-zero on the first failed assertion.
set -euo pipefail

BIN=_build/default/bin
MMSYNTH="$BIN/mmsynth.exe"
MMSYNTHD="$BIN/mmsynthd.exe"
[ -x "$MMSYNTH" ] && [ -x "$MMSYNTHD" ] || {
  echo "chaos_smoke: build bin/ first (dune build bin)"; exit 1; }

TAMPER=${CHAOS_TAMPER:-0}
WORK=$(mktemp -d "${TMPDIR:-/tmp}/chaos-smoke.XXXXXX")
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# Big enough that checkpoints always precede completion; the island GA
# exercises the per-island snapshot state on every recovery.
SYNTH_FLAGS=(--generations 60 --population 40 --seed 3
             --islands 3 --migration-every 5 --migrants 2)

"$MMSYNTH" export mul6 > "$WORK/mul6.mms"

start_daemon() { # state_dir [extra daemon flags...] -> sets DPID
  local state=$1; shift
  rm -f "$SOCK" # a SIGKILLed daemon leaves its socket file behind
  "$MMSYNTHD" --socket "$SOCK" --state-dir "$state" --checkpoint-every 3 "$@" &
  DPID=$!
  for _ in $(seq 1 250); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DPID" 2>/dev/null || { echo "daemon died on startup"; exit 1; }
    sleep 0.02
  done
  echo "daemon socket never appeared"; exit 1
}

shutdown_daemon() {
  "$MMSYNTH" client shutdown --socket "$SOCK"
  wait "$DPID" || true
  DPID=""
}

kill_after() { # path: SIGKILL the daemon once this file exists
  for _ in $(seq 1 750); do
    [ -f "$1" ] && break
    sleep 0.02
  done
  [ -f "$1" ] || { echo "chaos_smoke: $1 never appeared"; exit 1; }
  kill -9 "$DPID"
  wait "$DPID" 2>/dev/null || true
  DPID=""
}

# --- phase A: fault-free reference run ---------------------------------------
SOCK="$WORK/ref.sock"
start_daemon "$WORK/state-ref"
"$MMSYNTH" client submit "$WORK/mul6.mms" --socket "$SOCK" \
  "${SYNTH_FLAGS[@]}" --watch > /dev/null
shutdown_daemon
REF="$WORK/state-ref/jobs/job-0001/result.sexp"
[ -f "$REF" ] || { echo "reference run left no result.sexp"; exit 1; }
echo "chaos_smoke: reference result recorded"

if [ "$TAMPER" != "1" ]; then
  # --- phase B: the headline property ----------------------------------------
  # Any run that completes under a chaos plan must produce a result
  # byte-identical to the fault-free run: injected faults may slow the
  # service down, never change what it computes.
  for seed in 11 23 47; do
    SOCK="$WORK/chaos-$seed.sock"
    start_daemon "$WORK/state-$seed" --chaos-seed "$seed"
    "$MMSYNTH" client submit "$WORK/mul6.mms" --socket "$SOCK" \
      "${SYNTH_FLAGS[@]}" --watch > /dev/null
    shutdown_daemon
    diff "$REF" "$WORK/state-$seed/jobs/job-0001/result.sexp" || {
      echo "chaos seed $seed diverged from the reference"; exit 1; }
    echo "chaos_smoke: seed $seed bit-identical under injected faults"
  done

  # One seed also takes a kill -9 mid-run: chaos faults before the
  # crash (possibly including a torn newest checkpoint) plus chaos
  # faults after the restart must still recover to the same bytes.
  SOCK="$WORK/chaoskill.sock"
  start_daemon "$WORK/state-chaoskill" --chaos-seed 5
  "$MMSYNTH" client submit "$WORK/mul6.mms" --socket "$SOCK" "${SYNTH_FLAGS[@]}"
  kill_after "$WORK/state-chaoskill/jobs/job-0001/checkpoint.snap"
  grep -q completed "$WORK/state-chaoskill/jobs/job-0001/job.sexp" && {
    echo "kill landed after completion; nothing was recovered"; exit 1; }
  start_daemon "$WORK/state-chaoskill" --chaos-seed 5
  "$MMSYNTH" client watch job-0001 --socket "$SOCK" > /dev/null
  shutdown_daemon
  diff "$REF" "$WORK/state-chaoskill/jobs/job-0001/result.sexp" || {
    echo "chaos + SIGKILL recovery diverged from the reference"; exit 1; }
  echo "chaos_smoke: SIGKILL under chaos recovered bit-identically"
fi

# --- phase C: corrupt-checkpoint quarantine ----------------------------------
# Kill the daemon once two checkpoint generations exist, scribble over
# the newest one, restart: recovery must quarantine the poisoned file
# as checkpoint.snap.corrupt, fall back to the previous rotated
# generation and still reproduce the reference bytes.
SOCK="$WORK/corrupt.sock"
start_daemon "$WORK/state-corrupt"
"$MMSYNTH" client submit "$WORK/mul6.mms" --socket "$SOCK" "${SYNTH_FLAGS[@]}"
CKPT="$WORK/state-corrupt/jobs/job-0001/checkpoint.snap"
kill_after "$CKPT.1"
grep -q completed "$WORK/state-corrupt/jobs/job-0001/job.sexp" && {
  echo "kill landed after completion; nothing was recovered"; exit 1; }
printf '(((' > "$CKPT" # unparsable bytes where the newest snapshot was
if [ "$TAMPER" = "1" ]; then
  # Break the quarantine: with a directory squatting on the .corrupt
  # destination the rename cannot land, and the assertion below must
  # catch it.  A green run in this mode means the smoke proves nothing.
  mkdir "$CKPT.corrupt"
fi
start_daemon "$WORK/state-corrupt"
"$MMSYNTH" client watch job-0001 --socket "$SOCK" > /dev/null
shutdown_daemon
[ -f "$CKPT.corrupt" ] || {
  echo "corrupted checkpoint was not quarantined"; exit 1; }
diff "$REF" "$WORK/state-corrupt/jobs/job-0001/result.sexp" || {
  echo "fallback-generation recovery diverged from the reference"; exit 1; }
echo "chaos_smoke: corrupted checkpoint quarantined, fallback bit-identical"

# --- phase D: TCP auth boundary ----------------------------------------------
SOCK="$WORK/auth.sock"
PORT=$((20000 + RANDOM % 20000))
start_daemon "$WORK/state-auth" --tcp "127.0.0.1:$PORT" --auth-token sekrit
"$MMSYNTH" client ping --tcp "127.0.0.1:$PORT" --retries 1 2>/dev/null && {
  echo "tokenless TCP request was served"; exit 1; }
"$MMSYNTH" client ping --tcp "127.0.0.1:$PORT" --auth-token wrong \
  --retries 1 2>/dev/null && {
  echo "wrong-token TCP request was served"; exit 1; }
"$MMSYNTH" client ping --tcp "127.0.0.1:$PORT" --auth-token sekrit \
  | grep -q pong || { echo "right-token TCP ping failed"; exit 1; }
"$MMSYNTH" client ping --socket "$SOCK" | grep -q pong || {
  echo "unix-socket client was challenged"; exit 1; }
shutdown_daemon
echo "chaos_smoke: TCP auth enforced, unix socket unchallenged"

echo "chaos_smoke: OK"
