(* Tests for Mm_io.Snapshot: the versioned, fingerprinted snapshot
   codec.  Round-trips must preserve every field bit-for-bit (floats
   compared by Int64.bits_of_float); every malformed, mis-versioned or
   mis-specced document must come back as a typed error, never as an
   exception out of the S-expression internals. *)

module Snapshot = Mm_io.Snapshot
module Synthesis = Mm_cosynth.Synthesis
module Experiment = Mm_cosynth.Experiment
module Engine = Mm_ga.Engine

let spec = Fixtures.spec_of_graphs [ Fixtures.chain_graph () ]
let other_spec = Fixtures.spec_of_graphs [ Fixtures.fork_graph () ]

(* --- bit-exact structural equality ------------------------------------------- *)

let feq a b = Int64.bits_of_float a = Int64.bits_of_float b
let flist_eq a b = List.length a = List.length b && List.for_all2 feq a b
let member_eq (g, f) (g', f') = g = g' && feq f f'

let engine_eq (a : Engine.checkpoint) (b : Engine.checkpoint) =
  a.Engine.generation = b.Engine.generation
  && Array.length a.members = Array.length b.members
  && Array.for_all2 member_eq a.members b.members
  && member_eq a.best b.best
  && a.stagnation = b.stagnation
  && flist_eq a.history b.history
  && a.evaluations = b.evaluations
  && a.cache_hits = b.cache_hits
  && a.rng_state = b.rng_state

let engine_state_eq (a : Synthesis.engine_state) (b : Synthesis.engine_state) =
  match (a, b) with
  | Synthesis.Single a, Synthesis.Single b -> engine_eq a b
  | Synthesis.Sharded a, Synthesis.Sharded b ->
    a.Mm_ga.Islands.ring = b.Mm_ga.Islands.ring
    && Array.length a.members = Array.length b.members
    && Array.for_all2 engine_eq a.members b.members
  | Synthesis.Single _, Synthesis.Sharded _
  | Synthesis.Sharded _, Synthesis.Single _ -> false

let restart_eq (a : Synthesis.restart_summary) (b : Synthesis.restart_summary) =
  a.Synthesis.r_genome = b.Synthesis.r_genome
  && feq a.r_fitness b.r_fitness
  && a.r_generations = b.r_generations
  && a.r_evaluations = b.r_evaluations
  && a.r_cache_hits = b.r_cache_hits
  && flist_eq a.r_history b.r_history

let run_state_eq (a : Synthesis.run_state) (b : Synthesis.run_state) =
  a.Synthesis.seed = b.Synthesis.seed
  && a.fingerprint = b.fingerprint
  && a.next_restart = b.next_restart
  && List.length a.completed = List.length b.completed
  && List.for_all2 restart_eq a.completed b.completed
  && a.outer_rng = b.outer_rng
  && Option.equal engine_state_eq a.engine b.engine

let run_summary_eq (a : Experiment.run_summary) (b : Experiment.run_summary) =
  a.Experiment.genome = b.Experiment.genome
  && feq a.power b.power
  && feq a.cpu_seconds b.cpu_seconds
  && a.generations = b.generations
  && a.evaluations = b.evaluations
  && a.cache_hits = b.cache_hits
  && flist_eq a.history b.history

let summaries_eq a b = List.length a = List.length b && List.for_all2 run_summary_eq a b

let state_eq (a : Experiment.state) (b : Experiment.state) =
  a.Experiment.seed = b.Experiment.seed
  && a.runs = b.runs
  && summaries_eq a.baseline_done b.baseline_done
  && summaries_eq a.proposed_done b.proposed_done

let payload_eq a b =
  match (a, b) with
  | Snapshot.Synth a, Snapshot.Synth b -> run_state_eq a b
  | Snapshot.Compare a, Snapshot.Compare b -> state_eq a b
  | Snapshot.Synth _, Snapshot.Compare _ | Snapshot.Compare _, Snapshot.Synth _ ->
    false

(* --- generators --------------------------------------------------------------- *)

open QCheck

let genome_gen = Gen.(array_size (int_range 1 8) (int_range 0 9))
(* Regular floats only: the codec round-trips every non-nan payload
   bit-exactly, and fitnesses are never nan. *)
let float_gen = Gen.float
let flist_gen = Gen.(list_size (int_range 0 6) float_gen)
let int64_gen = Gen.(map Int64.of_int int)

let member_gen = Gen.pair genome_gen float_gen

let engine_gen =
  Gen.map
    (fun ((generation, members, best, stagnation), (history, evaluations, cache_hits, rng_state)) ->
      {
        Engine.generation;
        members;
        best;
        stagnation;
        history;
        evaluations;
        cache_hits;
        rng_state;
      })
    Gen.(
      pair
        (quad (int_range 0 500) (array_size (int_range 1 6) member_gen) member_gen
           (int_range 0 50))
        (quad flist_gen (int_range 0 100_000) (int_range 0 100_000) int64_gen))

let restart_gen =
  Gen.map
    (fun ((r_genome, r_fitness, r_generations), (r_evaluations, r_cache_hits, r_history)) ->
      {
        Synthesis.r_genome;
        r_fitness;
        r_generations;
        r_evaluations;
        r_cache_hits;
        r_history;
      })
    Gen.(
      pair
        (triple genome_gen float_gen (int_range 0 500))
        (triple (int_range 0 100_000) (int_range 0 100_000) flist_gen))

(* A Sharded state as Islands would checkpoint it: the ring is a
   permutation of the island indices. *)
let islands_gen =
  Gen.(
    map
      (fun members ->
        let n = Array.length members in
        let ring = Array.init n (fun i -> (i + 1) mod n) in
        Synthesis.Sharded { Mm_ga.Islands.ring; members })
      (array_size (int_range 1 4) engine_gen))

let engine_state_gen =
  Gen.oneof [ Gen.map (fun e -> Synthesis.Single e) engine_gen; islands_gen ]

let run_state_gen =
  Gen.map
    (fun ((seed, fingerprint, next_restart), (completed, outer_rng, engine)) ->
      { Synthesis.seed; fingerprint; next_restart; completed; outer_rng; engine })
    Gen.(
      pair
        (triple int string_printable (int_range 0 4))
        (triple (list_size (int_range 0 3) restart_gen) int64_gen
           (option engine_state_gen)))

let run_summary_gen =
  Gen.map
    (fun ((genome, power, cpu_seconds), (generations, evaluations, cache_hits, history)) ->
      { Experiment.genome; power; cpu_seconds; generations; evaluations; cache_hits; history })
    Gen.(
      pair
        (triple genome_gen float_gen float_gen)
        (quad (int_range 0 500) (int_range 0 100_000) (int_range 0 100_000) flist_gen))

let state_gen =
  Gen.map
    (fun (seed, runs, baseline_done, proposed_done) ->
      { Experiment.seed; runs; baseline_done; proposed_done })
    Gen.(
      quad int (int_range 1 6)
        (list_size (int_range 0 4) run_summary_gen)
        (list_size (int_range 0 4) run_summary_gen))

let payload_gen =
  Gen.oneof
    [
      Gen.map (fun s -> Snapshot.Synth s) run_state_gen;
      Gen.map (fun s -> Snapshot.Compare s) state_gen;
    ]

(* --- round-trips --------------------------------------------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string round-trips bit-exactly" ~count:300
    (QCheck.make payload_gen) (fun payload ->
      match Snapshot.of_string ~spec (Snapshot.to_string ~spec payload) with
      | Ok decoded -> payload_eq payload decoded
      | Error e -> QCheck.Test.fail_reportf "%s" (Snapshot.error_to_string e))

let test_file_roundtrip () =
  let path = Filename.temp_file "mmsyn_snapshot" ".snap" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let payload =
    Snapshot.Synth
      {
        Synthesis.seed = 42;
        fingerprint = "some fingerprint with spaces";
        next_restart = 1;
        completed =
          [
            {
              Synthesis.r_genome = [| 1; 0; 1 |];
              r_fitness = 0.1234567890123456;
              r_generations = 17;
              r_evaluations = 900;
              r_cache_hits = 100;
              r_history = [ 0.5; 0.3; 0.1234567890123456 ];
            };
          ];
        outer_rng = -6405874113726298239L;
        engine = None;
      }
  in
  (* A stale .tmp from a crashed writer is inert: saves use unique
     pid+counter tmp names, so they neither read nor clobber it, and no
     tmp of their own survives the rename. *)
  let stale = path ^ ".tmp" in
  let oc = open_out stale in
  output_string oc "garbage left by a crash";
  close_out oc;
  Fun.protect ~finally:(fun () -> if Sys.file_exists stale then Sys.remove stale)
  @@ fun () ->
  Snapshot.save ~path ~spec payload;
  Alcotest.(check string)
    "stale tmp untouched" "garbage left by a crash"
    (Mm_io.Codec.read_file stale);
  let tmp_siblings =
    Sys.readdir (Filename.dirname path)
    |> Array.to_list
    |> List.filter (fun name ->
           String.length name > 4
           && String.sub name (String.length name - 4) 4 = ".tmp"
           && name <> Filename.basename stale
           && String.length name > String.length (Filename.basename path)
           && String.sub name 0 (String.length (Filename.basename path))
              = Filename.basename path)
  in
  Alcotest.(check (list string)) "no tmp litter from save" [] tmp_siblings;
  match Snapshot.load ~path ~spec with
  | Ok decoded -> Alcotest.(check bool) "file round-trip" true (payload_eq payload decoded)
  | Error e -> Alcotest.fail (Snapshot.error_to_string e)

(* --- rejection ----------------------------------------------------------------- *)

let check_error name expected = function
  | Ok _ -> Alcotest.fail (name ^ ": decoded a document that must be rejected")
  | Error e -> expected e

(* Replace the first occurrence of [needle] in [haystack]. *)
let replace ~needle ~by haystack =
  let nlen = String.length needle and hlen = String.length haystack in
  let rec find i =
    if i + nlen > hlen then None
    else if String.sub haystack i nlen = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> haystack
  | Some i ->
    String.sub haystack 0 i ^ by
    ^ String.sub haystack (i + nlen) (hlen - i - nlen)

let sample_doc () =
  Snapshot.to_string ~spec
    (Snapshot.Compare
       { Experiment.seed = 7; runs = 3; baseline_done = []; proposed_done = [] })

let test_version_mismatch () =
  let doc = sample_doc () in
  let future = replace ~needle:"(version 2)" ~by:"(version 999)" doc in
  check_error "future version"
    (function
      | Snapshot.Version_mismatch { found } ->
        Alcotest.(check int) "reported version" 999 found
      | e -> Alcotest.fail (Snapshot.error_to_string e))
    (Snapshot.of_string ~spec future)

let test_version_1_accepted () =
  (* A version-1 document (no islands field existed) must still load. *)
  let doc = replace ~needle:"(version 2)" ~by:"(version 1)" (sample_doc ()) in
  match Snapshot.of_string ~spec doc with
  | Ok (Snapshot.Compare st) -> Alcotest.(check int) "seed survives" 7 st.Experiment.seed
  | Ok (Snapshot.Synth _) -> Alcotest.fail "decoded the wrong payload kind"
  | Error e -> Alcotest.fail (Snapshot.error_to_string e)

let test_spec_mismatch () =
  check_error "wrong specification"
    (function
      | Snapshot.Spec_mismatch { found; expected } ->
        Alcotest.(check string) "found the writing spec's fingerprint"
          (Snapshot.fingerprint spec) found;
        Alcotest.(check string) "expected the reading spec's fingerprint"
          (Snapshot.fingerprint other_spec) expected
      | e -> Alcotest.fail (Snapshot.error_to_string e))
    (Snapshot.of_string ~spec:other_spec (sample_doc ()))

let test_corrupted_documents () =
  let doc = sample_doc () in
  let expect_malformed name s =
    check_error name
      (function
        | Snapshot.Malformed _ -> ()
        | e ->
          Alcotest.fail
            (Printf.sprintf "%s: expected Malformed, got %s" name
               (Snapshot.error_to_string e)))
      (Snapshot.of_string ~spec s)
  in
  expect_malformed "empty" "";
  expect_malformed "whitespace" "   \n  ";
  expect_malformed "truncated" (String.sub doc 0 (String.length doc / 2));
  expect_malformed "not a snapshot" "(something (else entirely))";
  expect_malformed "atom at toplevel" "hello";
  expect_malformed "wrong magic" ("(mmsyn-wrong" ^ String.sub doc 15 (String.length doc - 15));
  expect_malformed "version not a number"
    (replace ~needle:"(version 2)" ~by:"(version one)" doc);
  expect_malformed "missing payload"
    (Printf.sprintf "(mmsyn-snapshot (version 2) (spec %s))" (Snapshot.fingerprint spec))

(* No byte string may crash the decoder: every input maps to Ok or a
   typed Error. *)
let prop_decoder_total =
  QCheck.Test.make ~name:"of_string is total on junk" ~count:500
    QCheck.(string_gen Gen.printable)
    (fun junk ->
      match Snapshot.of_string ~spec junk with Ok _ | Error _ -> true)

let test_load_missing_file () =
  check_error "missing file"
    (function
      | Snapshot.Io_error _ -> ()
      | e -> Alcotest.fail (Snapshot.error_to_string e))
    (Snapshot.load ~path:"/nonexistent/dir/snapshot.snap" ~spec)

(* --- rotation and quarantine --------------------------------------------------- *)

let temp_dir prefix =
  let dir = Filename.temp_file prefix "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  dir

let rec rmtree path =
  if Sys.is_directory path then (
    Array.iter (fun f -> rmtree (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path)
  else Sys.remove path

let marked seed =
  Snapshot.Compare
    { Experiment.seed; runs = 1; baseline_done = []; proposed_done = [] }

let seed_of = function
  | Snapshot.Compare st -> st.Experiment.seed
  | Snapshot.Synth _ -> Alcotest.fail "expected a Compare payload"

let write_garbage path =
  let oc = open_out_bin path in
  output_string oc "(mmsyn-snapshot (version 2) truncated garb";
  close_out oc

let test_rotation_chain () =
  let dir = temp_dir "mmsyn_rotate" in
  Fun.protect ~finally:(fun () -> rmtree dir) @@ fun () ->
  let path = Filename.concat dir "c.snap" in
  List.iter (fun s -> Snapshot.save ~keep:3 ~path ~spec (marked s)) [ 1; 2; 3; 4 ];
  let gen i p = match Snapshot.load ~path:p ~spec with
    | Ok payload -> Alcotest.(check int) (Printf.sprintf "generation %d" i) i (seed_of payload)
    | Error e -> Alcotest.fail (Snapshot.error_to_string e)
  in
  gen 4 path;
  gen 3 (path ^ ".1");
  gen 2 (path ^ ".2");
  (* keep = 3: the oldest generation fell off the end. *)
  Alcotest.(check bool) "oldest dropped" false (Sys.file_exists (path ^ ".3"));
  match (Snapshot.load_latest ~path ~spec ()).Snapshot.found with
  | Some (payload, 0) -> Alcotest.(check int) "latest wins" 4 (seed_of payload)
  | _ -> Alcotest.fail "load_latest must find generation 0"

let test_keep_one_no_rotation () =
  let dir = temp_dir "mmsyn_keep1" in
  Fun.protect ~finally:(fun () -> rmtree dir) @@ fun () ->
  let path = Filename.concat dir "c.snap" in
  Snapshot.save ~path ~spec (marked 1);
  Snapshot.save ~path ~spec (marked 2);
  Alcotest.(check bool) "no .1 sibling" false (Sys.file_exists (path ^ ".1"))

let test_quarantine_falls_back () =
  let dir = temp_dir "mmsyn_quarantine" in
  Fun.protect ~finally:(fun () -> rmtree dir) @@ fun () ->
  let path = Filename.concat dir "c.snap" in
  List.iter (fun s -> Snapshot.save ~keep:3 ~path ~spec (marked s)) [ 1; 2; 3 ];
  write_garbage path;
  (* Without quarantine: fall back, touch nothing. *)
  let scan = Snapshot.load_latest ~path ~spec () in
  (match scan.Snapshot.found with
  | Some (payload, 1) -> Alcotest.(check int) "fell back one generation" 2 (seed_of payload)
  | _ -> Alcotest.fail "expected the previous generation");
  Alcotest.(check (list string)) "nothing quarantined" [] scan.Snapshot.quarantined;
  Alcotest.(check bool) "corrupt file untouched" true (Sys.file_exists path);
  (* With quarantine: the corrupt newest is renamed aside. *)
  let scan = Snapshot.load_latest ~quarantine:true ~path ~spec () in
  (match scan.Snapshot.found with
  | Some (payload, 1) -> Alcotest.(check int) "still generation 2" 2 (seed_of payload)
  | _ -> Alcotest.fail "expected the previous generation");
  Alcotest.(check (list string)) "renamed aside" [ path ^ ".corrupt" ]
    scan.Snapshot.quarantined;
  Alcotest.(check bool) "corrupt moved" false (Sys.file_exists path);
  Alcotest.(check bool) "quarantine file exists" true
    (Sys.file_exists (path ^ ".corrupt"));
  (* The next scan is clean: nothing left to quarantine. *)
  let scan = Snapshot.load_latest ~quarantine:true ~path ~spec () in
  (match scan.Snapshot.found with
  | Some (payload, 1) -> Alcotest.(check int) "stable result" 2 (seed_of payload)
  | _ -> Alcotest.fail "expected the previous generation");
  Alcotest.(check (list string)) "idempotent" [] scan.Snapshot.quarantined

let test_mismatch_not_quarantined () =
  (* A version/spec mismatch is somebody else's data, not corruption:
     skipped but never renamed. *)
  let dir = temp_dir "mmsyn_mismatch" in
  Fun.protect ~finally:(fun () -> rmtree dir) @@ fun () ->
  let path = Filename.concat dir "c.snap" in
  Snapshot.save ~path:(path ^ ".1") ~spec (marked 7);
  Snapshot.save ~path ~spec:other_spec (marked 9);
  let scan = Snapshot.load_latest ~quarantine:true ~path ~spec () in
  (match scan.Snapshot.found with
  | Some (payload, 1) -> Alcotest.(check int) "skipped to ours" 7 (seed_of payload)
  | _ -> Alcotest.fail "expected generation 1");
  Alcotest.(check (list string)) "mismatch not quarantined" []
    scan.Snapshot.quarantined;
  Alcotest.(check bool) "file left in place" true (Sys.file_exists path)

let test_gap_and_exhaustion () =
  let dir = temp_dir "mmsyn_gap" in
  Fun.protect ~finally:(fun () -> rmtree dir) @@ fun () ->
  let path = Filename.concat dir "c.snap" in
  (* A crash between rotation renames can leave a gap at generation 0. *)
  Snapshot.save ~path:(path ^ ".2") ~spec (marked 5);
  (match (Snapshot.load_latest ~path ~spec ()).Snapshot.found with
  | Some (payload, 2) -> Alcotest.(check int) "gap skipped" 5 (seed_of payload)
  | _ -> Alcotest.fail "expected generation 2");
  (* Every generation corrupt: found = None, all quarantined. *)
  write_garbage path;
  write_garbage (path ^ ".1");
  write_garbage (path ^ ".2");
  let scan = Snapshot.load_latest ~quarantine:true ~path ~spec () in
  Alcotest.(check bool) "nothing decodable" true (scan.Snapshot.found = None);
  Alcotest.(check (list string)) "all quarantined"
    [ path ^ ".corrupt"; path ^ ".1.corrupt"; path ^ ".2.corrupt" ]
    scan.Snapshot.quarantined

(* Armed fault sites inside [save]: a torn (short) write must land
   AFTER rotation so the previous good generation survives; an injected
   ENOSPC must raise BEFORE rotation so it destroys nothing. *)
let test_short_write_preserves_previous_generation () =
  let module Fault = Mm_fault.Fault in
  let dir = temp_dir "mmsyn_shortwrite" in
  Fun.protect ~finally:(fun () -> rmtree dir; Fault.disarm ()) @@ fun () ->
  let path = Filename.concat dir "c.snap" in
  Snapshot.save ~keep:3 ~path ~spec (marked 1);
  Fault.arm ~seed:5
    [
      ( "snapshot.short_write",
        { Fault.probability = 1.0; limit = 1; delay = 0.0 } );
    ];
  Snapshot.save ~keep:3 ~path ~spec (marked 2);
  Fault.disarm ();
  (* Generation 0 is torn, generation 1 is the previous good save. *)
  (match Snapshot.load ~path ~spec with
  | Error (Snapshot.Malformed _) -> ()
  | _ -> Alcotest.fail "newest generation should be torn");
  let scan = Snapshot.load_latest ~quarantine:true ~path ~spec () in
  (match scan.Snapshot.found with
  | Some (payload, 1) ->
    Alcotest.(check int) "previous generation intact" 1 (seed_of payload)
  | _ -> Alcotest.fail "previous generation lost");
  Alcotest.(check (list string)) "torn write quarantined" [ path ^ ".corrupt" ]
    scan.Snapshot.quarantined

let test_enospc_raises_before_rotation () =
  let module Fault = Mm_fault.Fault in
  let dir = temp_dir "mmsyn_enospc" in
  Fun.protect ~finally:(fun () -> rmtree dir; Fault.disarm ()) @@ fun () ->
  let path = Filename.concat dir "c.snap" in
  Snapshot.save ~keep:3 ~path ~spec (marked 1);
  Fault.arm ~seed:5
    [ ("snapshot.enospc", { Fault.probability = 1.0; limit = 1; delay = 0.0 }) ];
  (match Snapshot.save ~keep:3 ~path ~spec (marked 2) with
  | () -> Alcotest.fail "injected ENOSPC did not raise"
  | exception Sys_error _ -> ());
  Fault.disarm ();
  (* Nothing rotated, nothing torn: the old snapshot still loads. *)
  (match Snapshot.load ~path ~spec with
  | Ok payload -> Alcotest.(check int) "old state untouched" 1 (seed_of payload)
  | Error e -> Alcotest.fail (Snapshot.error_to_string e));
  Alcotest.(check bool) "no spurious rotation" false
    (Sys.file_exists (path ^ ".1"))

let test_fingerprint_stability () =
  (* Equal specifications fingerprint equally; different ones don't.
     Loading depends on this being stable across processes, so it must
     not hash physical identity. *)
  Alcotest.(check string) "deterministic" (Snapshot.fingerprint spec)
    (Snapshot.fingerprint (Fixtures.spec_of_graphs [ Fixtures.chain_graph () ]));
  Alcotest.(check bool) "discriminates" false
    (Snapshot.fingerprint spec = Snapshot.fingerprint other_spec)

let () =
  Alcotest.run "snapshot"
    [
      ( "round-trip",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip;
          Alcotest.test_case "file round-trip, stale tmp" `Quick test_file_roundtrip;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "version mismatch" `Quick test_version_mismatch;
          Alcotest.test_case "version 1 accepted" `Quick test_version_1_accepted;
          Alcotest.test_case "spec mismatch" `Quick test_spec_mismatch;
          Alcotest.test_case "corrupted documents" `Quick test_corrupted_documents;
          QCheck_alcotest.to_alcotest prop_decoder_total;
          Alcotest.test_case "missing file" `Quick test_load_missing_file;
        ] );
      ( "rotation",
        [
          Alcotest.test_case "generation chain" `Quick test_rotation_chain;
          Alcotest.test_case "keep=1 rotates nothing" `Quick test_keep_one_no_rotation;
          Alcotest.test_case "quarantine falls back" `Quick test_quarantine_falls_back;
          Alcotest.test_case "mismatch is not corruption" `Quick
            test_mismatch_not_quarantined;
          Alcotest.test_case "gaps and exhaustion" `Quick test_gap_and_exhaustion;
          Alcotest.test_case "torn write spares the previous generation" `Quick
            test_short_write_preserves_previous_generation;
          Alcotest.test_case "injected ENOSPC destroys nothing" `Quick
            test_enospc_raises_before_rotation;
        ] );
      ( "fingerprint",
        [ Alcotest.test_case "stability" `Quick test_fingerprint_stability ] );
    ]
