(* Golden regression battery: the evaluation pipeline pinned to the bit
   on the two reference systems.

   The checkpoint/resume machinery promises bit-identical results across
   interruptions, which only holds as long as evaluation itself is
   bit-stable from build to build.  These tests pin the full pipeline
   (scheduling, power, DVS) on the paper's motivational example and the
   smart phone benchmark; the expected values live in Fixtures so the
   next person changing them sees the warning attached there. *)

module Fitness = Mm_cosynth.Fitness
module Mapping = Mm_cosynth.Mapping
module Synthesis = Mm_cosynth.Synthesis
module Schedule = Mm_sched.Schedule

let bits = Int64.bits_of_float

let bits_testable =
  Alcotest.testable
    (fun ppf v -> Fmt.pf ppf "0x%LxL (%.17g)" v (Int64.float_of_bits v))
    Int64.equal

let check_bits name expected actual = Alcotest.check bits_testable name expected (bits actual)

let check_makespans name expected (eval : Fitness.eval) =
  Alcotest.(check (array bits_testable))
    name expected
    (Array.map (fun s -> bits (Schedule.makespan s)) eval.Fitness.schedules)

let test_motivational () =
  let spec = Mm_benchgen.Motivational.spec () in
  let eval arrays =
    Fitness.evaluate_mapping Fitness.default_config spec (Mapping.of_arrays spec arrays)
  in
  (* Fig. 2b: C and E in hardware — optimal when probabilities are
     neglected; Fig. 2c: E and F in hardware — optimal under the real
     0.1/0.9 probabilities. *)
  let fig2b = eval [| [| 0; 0; 1 |]; [| 0; 1; 0 |] |] in
  let fig2c = eval [| [| 0; 0; 0 |]; [| 0; 1; 1 |] |] in
  check_bits "fig2b weighted power" Fixtures.golden_motivational_fig2b_power_bits
    fig2b.Fitness.true_power;
  check_bits "fig2c weighted power" Fixtures.golden_motivational_fig2c_power_bits
    fig2c.Fitness.true_power;
  check_makespans "fig2b makespans" Fixtures.golden_motivational_fig2b_makespan_bits fig2b;
  check_makespans "fig2c makespans" Fixtures.golden_motivational_fig2c_makespan_bits fig2c;
  (* The same values against the paper's published numbers (mWs), so a
     golden drift that still matches the paper is distinguishable from
     one that breaks the reproduction outright. *)
  Alcotest.(check (float 1e-4)) "fig2b matches the paper" 26.7158
    (fig2b.Fitness.true_power *. 1e3);
  Alcotest.(check (float 1e-4)) "fig2c matches the paper" 15.7423
    (fig2c.Fitness.true_power *. 1e3)

let test_smartphone () =
  let spec = Mm_benchgen.Smartphone.spec () in
  let genome =
    match Synthesis.anchors spec with
    | g :: _ -> g
    | [] -> Alcotest.fail "smartphone has no software anchor"
  in
  let nodvs = Fitness.evaluate Fitness.default_config spec genome in
  check_bits "anchor power" Fixtures.golden_smartphone_anchor_power_bits
    nodvs.Fitness.true_power;
  check_makespans "anchor makespans" Fixtures.golden_smartphone_anchor_makespan_bits nodvs;
  let dvs_config =
    { Fitness.default_config with Fitness.dvs = Fitness.Dvs Mm_dvs.Scaling.default_config }
  in
  let dvs = Fitness.evaluate dvs_config spec genome in
  check_bits "anchor power under DVS" Fixtures.golden_smartphone_anchor_dvs_power_bits
    dvs.Fitness.true_power

let test_export_json_pins () =
  let digest spec eval =
    Digest.to_hex (Digest.string (Mm_cosynth.Export_json.to_string spec eval))
  in
  let spec = Mm_benchgen.Motivational.spec () in
  let fig2c =
    Fitness.evaluate_mapping Fitness.default_config spec
      (Mapping.of_arrays spec [| [| 0; 0; 0 |]; [| 0; 1; 1 |] |])
  in
  Alcotest.(check string) "motivational fig2c export"
    Fixtures.golden_motivational_export_digest (digest spec fig2c);
  let phone = Mm_benchgen.Smartphone.spec () in
  let genome =
    match Synthesis.anchors phone with
    | g :: _ -> g
    | [] -> Alcotest.fail "smartphone has no software anchor"
  in
  let anchor = Fitness.evaluate Fitness.default_config phone genome in
  Alcotest.(check string) "smartphone anchor export"
    Fixtures.golden_smartphone_export_digest (digest phone anchor)

let () =
  Alcotest.run "golden"
    [
      ( "evaluation pins",
        [
          Alcotest.test_case "motivational (Fig. 2)" `Quick test_motivational;
          Alcotest.test_case "smartphone anchor" `Quick test_smartphone;
          Alcotest.test_case "task-network export" `Quick test_export_json_pins;
        ] );
    ]
