(* Mm_fault: plan codec totality, seeded determinism and budget
   enforcement.  The determinism properties are what the chaos smoke
   leans on: the same seed and plan must replay the same injection
   sequence no matter how sites interleave. *)

module Fault = Mm_fault.Fault

(* --- plan codec --------------------------------------------------------- *)

let check_parse_err name text =
  match Fault.plan_of_string text with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: %S parsed" name text

let test_plan_errors () =
  check_parse_err "no probability" "a.site";
  check_parse_err "bad probability" "a.site:nan";
  check_parse_err "probability > 1" "a.site:1.5";
  check_parse_err "negative probability" "a.site:-0.1";
  check_parse_err "bad limit" "a.site:0.5:x";
  check_parse_err "limit < -1" "a.site:0.5:-2";
  check_parse_err "negative delay" "a.site:0.5:3:-0.1";
  check_parse_err "too many fields" "a.site:0.5:3:0.1:9";
  check_parse_err "duplicate site" "a.site:0.5;a.site:0.2";
  (match Fault.plan_of_string "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty plan must parse to []");
  match Fault.plan_of_string " a:0.5 ; b:1:3 ;" with
  | Ok [ ("a", _); ("b", _) ] -> ()
  | _ -> Alcotest.fail "whitespace and trailing ';' must be tolerated"

let test_default_plan () =
  match Fault.plan_of_string Fault.default_plan with
  | Error e -> Alcotest.failf "default plan does not parse: %s" e
  | Ok plan ->
    Alcotest.(check bool) "non-empty" true (plan <> []);
    (* write_fail fails the affected job instead of recovering, so the
       byte-identity smoke would break if the default plan included it. *)
    Alcotest.(check bool) "registry.write_fail excluded" false
      (List.mem_assoc "registry.write_fail" plan)

(* Plans built from decimal-exact parameters round-trip bit-exactly
   through the string spelling. *)
let plan_gen =
  QCheck.Gen.(
    let spec_gen =
      map3
        (fun p limit d ->
          {
            Fault.probability = float_of_int p /. 100.0;
            limit;
            delay = (if d = 0 then 0.0 else float_of_int d /. 1000.0);
          })
        (0 -- 100) (-1 -- 20) (0 -- 10)
    in
    let site_gen i = Printf.sprintf "site%c.p%d" (Char.chr (97 + (i mod 8))) i in
    map
      (fun specs -> List.mapi (fun i spec -> (site_gen i, spec)) specs)
      (list_size (0 -- 6) spec_gen))

let prop_plan_roundtrip =
  QCheck.Test.make ~name:"plan round-trip" ~count:300
    (QCheck.make ~print:Fault.plan_to_string plan_gen)
    (fun plan -> Fault.plan_of_string (Fault.plan_to_string plan) = Ok plan)

(* --- determinism -------------------------------------------------------- *)

let verdicts site n = List.init n (fun _ -> Fault.fire site)

let coin = { Fault.probability = 0.5; limit = -1; delay = 0.0 }

(* The per-site decision stream depends on (seed, site name) alone:
   drawing A and B interleaved or back-to-back yields identical per-site
   sequences. *)
let prop_interleaving_independent =
  QCheck.Test.make ~name:"verdicts independent of interleaving" ~count:50
    QCheck.(make Gen.(0 -- 1_000_000))
    (fun seed ->
      let a = Fault.site "test.determinism_a" in
      let b = Fault.site "test.determinism_b" in
      let plan = [ (Fault.name a, coin); (Fault.name b, coin) ] in
      Fault.arm ~seed plan;
      let interleaved =
        List.init 64 (fun _ -> (Fault.fire a, Fault.fire b))
      in
      let a1 = List.map fst interleaved and b1 = List.map snd interleaved in
      Fault.arm ~seed plan;
      let a2 = verdicts a 64 in
      let b2 = verdicts b 64 in
      Fault.disarm ();
      a1 = a2 && b1 = b2)

let test_seed_changes_sequence () =
  let s = Fault.site "test.seed_sensitivity" in
  let plan = [ (Fault.name s, coin) ] in
  Fault.arm ~seed:1 plan;
  let one = verdicts s 128 in
  Fault.arm ~seed:2 plan;
  let two = verdicts s 128 in
  Fault.disarm ();
  Alcotest.(check bool) "different seeds, different verdicts" false (one = two)

(* --- budgets and edges --------------------------------------------------- *)

let test_budget () =
  let s = Fault.site "test.budget" in
  Fault.arm ~seed:7
    [ (Fault.name s, { Fault.probability = 1.0; limit = 5; delay = 0.0 }) ];
  let fired = List.length (List.filter Fun.id (verdicts s 50)) in
  Alcotest.(check int) "exactly the budget" 5 fired;
  Alcotest.(check int) "injected counts them" 5 (Fault.injected s);
  Fault.disarm ()

let test_probability_edges () =
  let s = Fault.site "test.edges" in
  Fault.arm ~seed:7
    [ (Fault.name s, { Fault.probability = 0.0; limit = -1; delay = 0.0 }) ];
  Alcotest.(check bool) "p=0 never fires" false
    (List.exists Fun.id (verdicts s 100));
  Fault.arm ~seed:7
    [ (Fault.name s, { Fault.probability = 1.0; limit = -1; delay = 0.0 }) ];
  Alcotest.(check bool) "p=1 always fires" true
    (List.for_all Fun.id (verdicts s 100));
  Fault.disarm ()

let test_disarmed_is_inert () =
  Fault.disarm ();
  let s = Fault.site "test.disarmed" in
  Alcotest.(check bool) "not armed" false (Fault.armed ());
  Alcotest.(check bool) "never fires" false
    (List.exists Fun.id (verdicts s 100));
  Alcotest.(check (float 0.0)) "no delay" 0.0 (Fault.fire_delay s);
  Alcotest.(check int) "no injections" 0 (Fault.injected s);
  (try Fault.raise_if s
   with Fault.Injected _ -> Alcotest.fail "disarmed raise_if raised");
  Alcotest.(check (list (pair string int))) "empty report" [] (Fault.report ())

let test_delay_and_report () =
  let s = Fault.site "test.delay" in
  Fault.arm ~seed:3
    [ (Fault.name s, { Fault.probability = 1.0; limit = 2; delay = 0.004 }) ];
  Alcotest.(check bool) "armed" true (Fault.armed ());
  Alcotest.(check (float 0.0)) "first delay" 0.004 (Fault.fire_delay s);
  Alcotest.(check (float 0.0)) "second delay" 0.004 (Fault.fire_delay s);
  Alcotest.(check (float 0.0)) "budget exhausted" 0.0 (Fault.fire_delay s);
  Alcotest.(check (list (pair string int)))
    "report shows the site" [ ("test.delay", 2) ] (Fault.report ());
  (* Arming a fresh plan resets counts and disarms unlisted sites. *)
  Fault.arm ~seed:3 [ ("test.other", coin) ];
  Alcotest.(check int) "re-arm resets" 0 (Fault.injected s);
  Alcotest.(check (float 0.0)) "unlisted site disarmed" 0.0 (Fault.fire_delay s);
  Fault.disarm ()

let test_raise_if () =
  let s = Fault.site "test.raises" in
  Fault.arm ~seed:11
    [ (Fault.name s, { Fault.probability = 1.0; limit = 1; delay = 0.0 }) ];
  (match Fault.raise_if s with
  | () -> Alcotest.fail "armed p=1 raise_if did not raise"
  | exception Fault.Injected name ->
    Alcotest.(check string) "payload is the site name" "test.raises" name);
  Fault.raise_if s (* budget spent: must not raise *);
  Fault.disarm ()

let () =
  Alcotest.run "mm_fault"
    [
      ( "plan codec",
        [
          Alcotest.test_case "malformed plans rejected" `Quick test_plan_errors;
          Alcotest.test_case "default plan" `Quick test_default_plan;
          QCheck_alcotest.to_alcotest prop_plan_roundtrip;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest prop_interleaving_independent;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_sequence;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "injection budget" `Quick test_budget;
          Alcotest.test_case "probability edges" `Quick test_probability_edges;
          Alcotest.test_case "disarmed is inert" `Quick test_disarmed_is_inert;
          Alcotest.test_case "delay and report" `Quick test_delay_and_report;
          Alcotest.test_case "raise_if" `Quick test_raise_if;
        ] );
    ]
