(* Tests for mm_benchgen: Graph_builder, Random_system, Smartphone. *)

module Task_type = Mm_taskgraph.Task_type
module Graph = Mm_taskgraph.Graph
module Pe = Mm_arch.Pe
module Arch = Mm_arch.Architecture
module Mode = Mm_omsm.Mode
module Omsm = Mm_omsm.Omsm
module Spec = Mm_cosynth.Spec
module B = Mm_benchgen.Graph_builder
module Random_system = Mm_benchgen.Random_system
module Smartphone = Mm_benchgen.Smartphone

(* --- Graph_builder ---------------------------------------------------------- *)

let test_builder_basics () =
  let b = B.create () in
  let ty = Task_type.make ~id:0 ~name:"T" in
  let t0 = B.add b ~name:"a" ~ty () in
  let t1 = B.add b ~name:"b" ~ty () in
  let t2 = B.add b ~name:"c" ~ty () in
  B.chain b [ t0; t1; t2 ];
  B.link b ~data:5.0 t0 t2;
  let g = B.build b ~name:"g" in
  Alcotest.(check int) "tasks" 3 (Graph.n_tasks g);
  Alcotest.(check int) "edges" 3 (Graph.n_edges g);
  Alcotest.(check int) "builder count" 3 (B.n_tasks b);
  Alcotest.(check (list int)) "sinks" [ 2 ] (Graph.sinks g)

let test_builder_rejects_bad_links () =
  let b = B.create () in
  let ty = Task_type.make ~id:0 ~name:"T" in
  let t0 = B.add b ~name:"a" ~ty () in
  B.link b t0 7 (* dangling destination *);
  match B.build b ~name:"bad" with
  | exception Graph.Invalid _ -> ()
  | _ -> Alcotest.fail "dangling link accepted"

let test_builder_deadline_passthrough () =
  let b = B.create () in
  let ty = Task_type.make ~id:0 ~name:"T" in
  let t0 = B.add b ~name:"a" ~ty ~deadline:0.25 () in
  let g = B.build b ~name:"g" in
  Alcotest.(check (option (float 1e-12))) "deadline kept" (Some 0.25)
    (Mm_taskgraph.Task.deadline (Graph.task g t0))

(* --- Random_system ------------------------------------------------------------ *)

let test_generate_deterministic () =
  let a = Random_system.generate ~seed:7 () in
  let b = Random_system.generate ~seed:7 () in
  (* Structural equality of the generated OMSMs. *)
  Alcotest.(check int) "same n positions" (Spec.n_positions a) (Spec.n_positions b);
  Alcotest.(check (array int)) "same gene counts" (Spec.gene_counts a) (Spec.gene_counts b);
  let probs spec =
    List.map Mode.probability (Omsm.modes (Spec.omsm spec))
  in
  Alcotest.(check (list (float 1e-12))) "same probabilities" (probs a) (probs b)

let test_generate_respects_params () =
  let spec =
    Random_system.generate
      ~params:{ Random_system.default_params with n_modes = 5 }
      ~seed:3 ()
  in
  let omsm = Spec.omsm spec in
  Alcotest.(check int) "five modes" 5 (Omsm.n_modes omsm);
  List.iter
    (fun m ->
      let n = Mode.n_tasks m in
      Alcotest.(check bool) "tasks in 8..32" true (n >= 8 && n <= 32))
    (Omsm.modes omsm);
  let arch = Spec.arch spec in
  Alcotest.(check bool) "2..4 PEs" true (Arch.n_pes arch >= 2 && Arch.n_pes arch <= 4);
  Alcotest.(check bool) "1..3 CLs" true (Arch.n_cls arch >= 1 && Arch.n_cls arch <= 3)

let test_generate_pe0_is_dvs_software () =
  for seed = 1 to 10 do
    let spec = Random_system.generate ~seed () in
    let pe0 = Arch.pe (Spec.arch spec) 0 in
    Alcotest.(check bool) "PE0 software" true (Pe.is_software pe0);
    Alcotest.(check bool) "PE0 DVS" true (Pe.is_dvs_enabled pe0)
  done

let test_generate_probabilities_sum () =
  for seed = 1 to 10 do
    let spec = Random_system.generate ~seed () in
    let total =
      List.fold_left (fun acc m -> acc +. Mode.probability m) 0.0
        (Omsm.modes (Spec.omsm spec))
    in
    Alcotest.(check (float 1e-9)) "sum to 1" 1.0 total
  done

let test_mul_mode_counts () =
  let expected = [ 4; 4; 5; 5; 3; 4; 4; 4; 4; 5; 3; 4 ] in
  List.iteri
    (fun i n ->
      Alcotest.(check int) "paper mode count" n (Random_system.mul_mode_count (i + 1));
      let spec = Random_system.mul (i + 1) in
      Alcotest.(check int) "generated mode count" n (Omsm.n_modes (Spec.omsm spec)))
    expected

let test_mul_bounds () =
  Alcotest.check_raises "index 0" (Invalid_argument "Random_system.mul: index in 1..12")
    (fun () -> ignore (Random_system.mul 0));
  Alcotest.check_raises "index 13" (Invalid_argument "Random_system.mul: index in 1..12")
    (fun () -> ignore (Random_system.mul 13))

let test_generated_graphs_have_sharing_potential () =
  (* Drawing tasks from a common type pool must create cross-mode type
     intersections in most systems. *)
  let shared_count =
    List.length
      (List.filter
         (fun seed ->
           let spec = Random_system.generate ~seed () in
           not
             (Task_type.Set.is_empty (Omsm.shared_task_types (Spec.omsm spec))))
         (List.init 10 (fun i -> i + 1)))
  in
  Alcotest.(check bool) "most systems share types" true (shared_count >= 8)

let test_generated_systems_software_feasible () =
  (* The generator's core guarantee: every instance admits an
     all-software, zero-area feasible implementation. *)
  for seed = 1 to 8 do
    let spec = Random_system.generate ~seed () in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d software-feasible" seed)
      true
      (Random_system.all_software_feasible spec)
  done;
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "mul%d software-feasible" i)
        true
        (Random_system.all_software_feasible (Random_system.mul i)))
    [ 1; 4; 7; 9; 12 ]

let test_hw_faster_than_sw () =
  let spec = Random_system.generate ~seed:5 () in
  let arch = Spec.arch spec in
  let tech = Spec.tech spec in
  let checked = ref 0 in
  Task_type.Set.iter
    (fun ty ->
      let sw_times =
        List.filter_map
          (fun pe -> Option.map (fun (i : Mm_arch.Tech_lib.impl) -> i.Mm_arch.Tech_lib.exec_time)
              (Mm_arch.Tech_lib.find tech ~ty ~pe))
          (Arch.software_pes arch)
      in
      let hw_times =
        List.filter_map
          (fun pe -> Option.map (fun (i : Mm_arch.Tech_lib.impl) -> i.Mm_arch.Tech_lib.exec_time)
              (Mm_arch.Tech_lib.find tech ~ty ~pe))
          (Arch.hardware_pes arch)
      in
      List.iter
        (fun hw ->
          List.iter
            (fun sw ->
              incr checked;
              Alcotest.(check bool) "hw at least ~4x faster" true (hw < sw /. 3.0))
            sw_times)
        hw_times)
    (Omsm.all_task_types (Spec.omsm spec));
  (* The architecture drawn for this seed might have no hardware PE; the
     generator guarantees nothing here, so only require the loop ran when
     hardware exists. *)
  if Arch.hardware_pes arch <> [] then
    Alcotest.(check bool) "some pairs checked" true (!checked > 0)

(* --- Smartphone ------------------------------------------------------------------ *)

let test_smartphone_structure () =
  let spec = Smartphone.spec () in
  let omsm = Spec.omsm spec in
  Alcotest.(check int) "eight modes" 8 (Omsm.n_modes omsm);
  Alcotest.(check int) "sixteen transitions" 16 (List.length (Omsm.transitions omsm));
  let arch = Spec.arch spec in
  Alcotest.(check int) "three PEs" 3 (Arch.n_pes arch);
  Alcotest.(check int) "one bus" 1 (Arch.n_cls arch);
  Alcotest.(check bool) "GPP is DVS" true (Pe.is_dvs_enabled (Arch.pe arch 0));
  Alcotest.(check bool) "ASICs not DVS" true
    (List.for_all (fun pe -> not (Pe.is_dvs_enabled pe)) (Arch.hardware_pes arch))

let test_smartphone_probabilities () =
  let spec = Smartphone.spec () in
  let omsm = Spec.omsm spec in
  (* The published profile: RLC 74 %, GSM+RLC 9 %, MP3+RLC 10 %... *)
  Alcotest.(check (float 1e-12)) "RLC 0.74" 0.74 (Mode.probability (Omsm.mode omsm 1));
  Alcotest.(check (float 1e-12)) "GSM+RLC 0.09" 0.09 (Mode.probability (Omsm.mode omsm 0));
  Alcotest.(check (float 1e-12)) "MP3+RLC 0.10" 0.10 (Mode.probability (Omsm.mode omsm 5));
  let total =
    List.fold_left (fun acc m -> acc +. Mode.probability m) 0.0 (Omsm.modes omsm)
  in
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 total

let test_smartphone_mode_sizes () =
  let spec = Smartphone.spec () in
  List.iter
    (fun m ->
      let n = Mode.n_tasks m in
      Alcotest.(check bool)
        (Printf.sprintf "%s within 5..88 nodes" (Mode.name m))
        true (n >= 5 && n <= 88))
    (Omsm.modes (Spec.omsm spec));
  (* Show Photo is the smallest published graph (5 nodes). *)
  Alcotest.(check int) "Show Photo has 5 tasks" 5
    (Mode.n_tasks (Omsm.mode (Spec.omsm spec) 4))

let test_smartphone_type_sharing () =
  let spec = Smartphone.spec () in
  let shared = Omsm.shared_task_types (Spec.omsm spec) in
  (* IDCT is used by both the MP3 and JPEG decoders (Fig. 1c), and the
     RLC task types appear in four modes. *)
  let names =
    Task_type.Set.elements shared |> List.map Task_type.name
  in
  List.iter
    (fun needed ->
      Alcotest.(check bool) (needed ^ " shared") true (List.mem needed names))
    [ "IDCT"; "HD"; "DeQ"; "Viterbi"; "ChanEst" ]

let test_smartphone_deterministic () =
  let a = Smartphone.spec () and b = Smartphone.spec () in
  Alcotest.(check (array int)) "same gene counts" (Spec.gene_counts a) (Spec.gene_counts b);
  (* The fixed-seed hardware profiles must be identical across builds. *)
  let impl spec =
    let arch = Spec.arch spec in
    Mm_arch.Tech_lib.find_exn (Spec.tech spec)
      ~ty:(Task_type.make ~id:2 ~name:"IDCT")
      ~pe:(Arch.pe arch 1)
  in
  Alcotest.(check (float 1e-15)) "same hw exec time" (impl a).Mm_arch.Tech_lib.exec_time
    (impl b).Mm_arch.Tech_lib.exec_time

let () =
  Alcotest.run "mm_benchgen"
    [
      ( "graph-builder",
        [
          Alcotest.test_case "basics" `Quick test_builder_basics;
          Alcotest.test_case "bad links rejected" `Quick test_builder_rejects_bad_links;
          Alcotest.test_case "deadline passthrough" `Quick test_builder_deadline_passthrough;
        ] );
      ( "random-system",
        [
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "respects params" `Quick test_generate_respects_params;
          Alcotest.test_case "PE0 dvs software" `Quick test_generate_pe0_is_dvs_software;
          Alcotest.test_case "probabilities sum" `Quick test_generate_probabilities_sum;
          Alcotest.test_case "mul mode counts" `Quick test_mul_mode_counts;
          Alcotest.test_case "mul bounds" `Quick test_mul_bounds;
          Alcotest.test_case "type sharing" `Quick test_generated_graphs_have_sharing_potential;
          Alcotest.test_case "software feasible" `Quick test_generated_systems_software_feasible;
          Alcotest.test_case "hw faster" `Quick test_hw_faster_than_sw;
        ] );
      ( "smartphone",
        [
          Alcotest.test_case "structure" `Quick test_smartphone_structure;
          Alcotest.test_case "probabilities" `Quick test_smartphone_probabilities;
          Alcotest.test_case "mode sizes" `Quick test_smartphone_mode_sizes;
          Alcotest.test_case "type sharing" `Quick test_smartphone_type_sharing;
          Alcotest.test_case "deterministic" `Quick test_smartphone_deterministic;
        ] );
    ]
