(* Equivalence tests for the compile-once evaluation kernels (DESIGN.md
   §10): the route table, the dense technology dispatch, the heap-based
   list scheduler and the per-mode memoized fitness pipeline must be
   bit-identical to the seed implementations they accelerate — same
   tie-breaking, same float-operation order — on randomly generated
   multi-mode systems, across every scheduler policy and with DVS on and
   off. *)

module Spec = Mm_cosynth.Spec
module Fitness = Mm_cosynth.Fitness
module Mapping = Mm_cosynth.Mapping
module Omsm = Mm_omsm.Omsm
module Mode = Mm_omsm.Mode
module Arch = Mm_arch.Architecture
module Tech_lib = Mm_arch.Tech_lib
module Task_type = Mm_taskgraph.Task_type
module Comm_mapping = Mm_sched.Comm_mapping
module List_scheduler = Mm_sched.List_scheduler
module Scaling = Mm_dvs.Scaling
module Memo = Mm_parallel.Memo
module Prng = Mm_util.Prng
module Random_system = Mm_benchgen.Random_system

let spec_of_seed seed = Random_system.generate ~seed ()
let random_genome rng spec = Mm_ga.Genome.random rng ~counts:(Spec.gene_counts spec)

let all_policies =
  [
    List_scheduler.Mobility_first;
    List_scheduler.Critical_path_first;
    List_scheduler.Topological;
  ]

(* Every scheduler policy, with and without voltage scaling. *)
let all_configs =
  List.concat_map
    (fun policy ->
      [
        { Fitness.default_config with Fitness.scheduler_policy = policy };
        {
          Fitness.default_config with
          Fitness.scheduler_policy = policy;
          dvs = Fitness.Dvs Scaling.default_config;
        };
      ])
    all_policies

let same_float a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

(* Structural comparison (not [=]) because unscaled task voltages are
   nan by contract. *)
let eval_equal (a : Fitness.eval) (b : Fitness.eval) =
  same_float a.Fitness.fitness b.Fitness.fitness
  && same_float a.Fitness.eval_power b.Fitness.eval_power
  && same_float a.Fitness.true_power b.Fitness.true_power
  && Stdlib.compare a.Fitness.schedules b.Fitness.schedules = 0
  && Stdlib.compare a.Fitness.scalings b.Fitness.scalings = 0
  && Stdlib.compare a.Fitness.mode_powers b.Fitness.mode_powers = 0

(* --- Route table ------------------------------------------------------------ *)

let prop_route_table_equivalent =
  QCheck.Test.make ~name:"route_via ≡ route on every (src, dst, data)" ~count:25
    QCheck.small_int (fun seed ->
      let spec = spec_of_seed (2000 + seed) in
      let arch = Spec.arch spec in
      let table = Comm_mapping.table arch in
      let n = Arch.n_pes arch in
      let ok = ref (Comm_mapping.table_pairs table = n * n) in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          (* data = 0 exercises the all-candidates-tie case, where the
             winner falls through to the link-id tie-break. *)
          List.iter
            (fun data ->
              let a = Comm_mapping.route arch ~src_pe:src ~dst_pe:dst ~data in
              let b = Comm_mapping.route_via table ~src_pe:src ~dst_pe:dst ~data in
              if Stdlib.compare a b <> 0 then ok := false)
            [ 0.0; 1.0; 4096.0 ]
        done
      done;
      !ok)

(* --- Dense dispatch --------------------------------------------------------- *)

let prop_dispatch_equivalent =
  QCheck.Test.make ~name:"dispatch_find ≡ find (incl. out of range)" ~count:25
    QCheck.small_int (fun seed ->
      let spec = spec_of_seed (4000 + seed) in
      let arch = Spec.arch spec in
      let tech = Spec.tech spec in
      let dispatch = Spec.dispatch (Spec.compiled spec) in
      let n_pes = Arch.n_pes arch in
      let types = Task_type.Set.elements (Omsm.all_task_types (Spec.omsm spec)) in
      List.for_all
        (fun ty ->
          let ty_id = Task_type.id ty in
          List.for_all
            (fun pe ->
              Stdlib.compare
                (Tech_lib.find tech ~ty ~pe:(Arch.pe arch pe))
                (Tech_lib.dispatch_find dispatch ~ty_id ~pe_id:pe)
              = 0)
            (List.init n_pes Fun.id))
        types
      && Tech_lib.dispatch_find dispatch ~ty_id:(-1) ~pe_id:0 = None
      && Tech_lib.dispatch_find dispatch ~ty_id:0 ~pe_id:n_pes = None
      && Tech_lib.dispatch_find dispatch ~ty_id:0 ~pe_id:(-1) = None)

(* --- Heap scheduler --------------------------------------------------------- *)

let prop_scheduler_equivalent =
  QCheck.Test.make
    ~name:"heap scheduler ≡ reference (plain and compiled inputs, all policies)"
    ~count:10 QCheck.small_int (fun seed ->
      let spec = spec_of_seed (3000 + seed) in
      let ctx = Spec.compiled spec in
      let arch = Spec.arch spec in
      let tech = Spec.tech spec in
      let omsm = Spec.omsm spec in
      let rng = Prng.create ~seed:(seed + 11) in
      let rows =
        (Mapping.of_genome spec (random_genome rng spec) :> int array array)
      in
      List.for_all
        (fun policy ->
          List.for_all
            (fun mode ->
              let mode_rec = Omsm.mode omsm mode in
              let input ?routes ?dispatch () =
                List_scheduler.make_input ?routes ?dispatch ~mode_id:mode
                  ~graph:(Mode.graph mode_rec) ~arch ~tech ~mapping:rows.(mode)
                  ~instances:(fun ~pe:_ ~ty:_ -> 1)
                  ~period:(Mode.period mode_rec) ()
              in
              let reference = List_scheduler.run_reference ~policy (input ()) in
              let plain = List_scheduler.run ~policy (input ()) in
              let compiled =
                List_scheduler.run ~policy
                  (input ~routes:(Spec.routes ctx) ~dispatch:(Spec.dispatch ctx) ())
              in
              Stdlib.compare reference plain = 0
              && Stdlib.compare reference compiled = 0)
            (List.init (Omsm.n_modes omsm) Fun.id))
        all_policies)

(* --- Full fitness pipeline -------------------------------------------------- *)

let prop_fitness_equivalent =
  QCheck.Test.make
    ~name:"compiled evaluate ≡ reference evaluate (policies × DVS, warm caches)"
    ~count:6 QCheck.small_int (fun seed ->
      let spec = spec_of_seed (1000 + seed) in
      let rng = Prng.create ~seed:(seed + 1) in
      (* Several genomes per config against one spec, so later
         evaluations run against caches warmed by earlier ones — a wrong
         cache hit (key collision, missing key ingredient) shows up as a
         mismatch with the uncached reference. *)
      List.for_all
        (fun config ->
          List.for_all
            (fun _ ->
              let genome = random_genome rng spec in
              eval_equal
                (Fitness.evaluate config spec genome)
                (Fitness.evaluate_reference config spec genome))
            [ 1; 2; 3 ])
        all_configs)

(* --- Cache behaviour -------------------------------------------------------- *)

let test_repeat_evaluation_hits_cache () =
  let spec = spec_of_seed 42 in
  let rng = Prng.create ~seed:7 in
  let genome = random_genome rng spec in
  let config = Fitness.default_config in
  let a = Fitness.evaluate config spec genome in
  let ctx = Spec.compiled spec in
  let eval_hits = Memo.hits (Spec.mode_eval_cache ctx) in
  let mob_hits = Memo.hits (Spec.mode_mobility_cache ctx) in
  let b = Fitness.evaluate config spec genome in
  let n_modes = Omsm.n_modes (Spec.omsm spec) in
  Alcotest.(check bool) "identical result" true (eval_equal a b);
  Alcotest.(check bool) "all modes hit the eval cache" true
    (Memo.hits (Spec.mode_eval_cache ctx) >= eval_hits + n_modes);
  Alcotest.(check bool) "all modes hit the mobility cache" true
    (Memo.hits (Spec.mode_mobility_cache ctx) >= mob_hits + n_modes)

let test_mutated_genome_consistent () =
  let spec = spec_of_seed 43 in
  let rng = Prng.create ~seed:9 in
  let config = Fitness.default_config in
  let genome = random_genome rng spec in
  ignore (Fitness.evaluate config spec genome);
  (* Mutate one position of the last mode: the untouched modes answer
     their mobility from cache, and the result still matches the
     uncached reference. *)
  let counts = Spec.gene_counts spec in
  let pos = Array.length counts - 1 in
  let mutated = Array.copy genome in
  mutated.(pos) <- (mutated.(pos) + 1) mod counts.(pos);
  let ctx = Spec.compiled spec in
  let mob_hits = Memo.hits (Spec.mode_mobility_cache ctx) in
  let a = Fitness.evaluate config spec mutated in
  let b = Fitness.evaluate_reference config spec mutated in
  let n_modes = Omsm.n_modes (Spec.omsm spec) in
  Alcotest.(check bool) "identical to reference" true (eval_equal a b);
  Alcotest.(check bool) "untouched modes hit the mobility cache" true
    (Memo.hits (Spec.mode_mobility_cache ctx) >= mob_hits + (n_modes - 1))

let () =
  Alcotest.run "mm_eval_kernels"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_route_table_equivalent;
          QCheck_alcotest.to_alcotest prop_dispatch_equivalent;
          QCheck_alcotest.to_alcotest prop_scheduler_equivalent;
          QCheck_alcotest.to_alcotest prop_fitness_equivalent;
        ] );
      ( "caching",
        [
          Alcotest.test_case "repeat evaluation hits the per-mode caches" `Quick
            test_repeat_evaluation_hits_cache;
          Alcotest.test_case "mutation keeps cached modes consistent" `Quick
            test_mutated_genome_consistent;
        ] );
    ]
