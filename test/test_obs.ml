(* Tests for mm_obs: metrics semantics, span emission, sink
   well-formedness and the no-perturbation guarantee.

   The metrics registry and the control switches are process-global, so
   every test restores the switches to their defaults (everything off)
   and uses test-local metric names. *)

module Control = Mm_obs.Control
module Metrics = Mm_obs.Metrics
module Trace = Mm_obs.Trace
module Probe = Mm_obs.Probe
module Log = Mm_obs.Log
module Json = Mm_obs.Json
module Synthesis = Mm_cosynth.Synthesis
module Fitness = Mm_cosynth.Fitness
module Engine = Mm_ga.Engine

(* The miniature JSON reader lives in Mini_json (shared with the fleet
   and export-json tests). *)
open Mini_json

let with_defaults_restored f =
  Fun.protect
    ~finally:(fun () ->
      Trace.close ();
      Control.set_fine false;
      Control.set_metrics false)
    f

(* --- Json writer --------------------------------------------------------------- *)

let test_json_writer () =
  let render f =
    let b = Buffer.create 16 in
    f b;
    Buffer.contents b
  in
  Alcotest.(check string) "integral float" "3" (render (fun b -> Json.number b 3.0));
  Alcotest.(check string) "nan is null" "null" (render (fun b -> Json.number b Float.nan));
  Alcotest.(check string) "infinity is null" "null"
    (render (fun b -> Json.number b Float.infinity));
  (* A fractional value must survive a print/parse round trip exactly. *)
  let v = 0.1 +. 0.2 in
  Alcotest.(check bool) "floats round-trip" true
    (as_number (parse_json (render (fun b -> Json.number b v))) = v);
  let nasty = "a\"b\\c\nd\te\x01f" in
  Alcotest.(check string) "escaping round-trips" nasty
    (as_string (parse_json (render (fun b -> Json.str b nasty))))

(* --- Metrics -------------------------------------------------------------------- *)

let test_histogram_bucket_boundaries () =
  with_defaults_restored @@ fun () ->
  Control.set_metrics true;
  Metrics.reset ();
  let h = Metrics.histogram ~buckets:[| 1.0; 10.0; 100.0 |] "test/hist" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 10.0; 100.0; 1000.0 ];
  let snap = Metrics.snapshot () in
  let hs = List.assoc "test/hist" snap.Metrics.histograms in
  (* Upper bounds are inclusive: 1.0 lands in the first bucket, 10.0 in
     the second, 100.0 in the third; 1000.0 overflows. *)
  Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 1 |] hs.Metrics.counts;
  Alcotest.(check int) "count" 6 hs.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 1113.0 hs.Metrics.sum;
  Alcotest.(check (float 1e-9)) "min" 0.5 hs.Metrics.min;
  Alcotest.(check (float 1e-9)) "max" 1000.0 hs.Metrics.max

let test_metrics_gating_and_reset () =
  with_defaults_restored @@ fun () ->
  Metrics.reset ();
  let c = Metrics.counter "test/counter" in
  let g = Metrics.gauge "test/gauge" in
  let s = Metrics.series "test/series" in
  (* Disabled: recording is a no-op. *)
  Metrics.incr c;
  Metrics.set g 9.0;
  Metrics.append s 9.0;
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter gated" 0 (List.assoc "test/counter" snap.Metrics.counters);
  Alcotest.(check (float 0.0)) "gauge gated" 0.0
    (List.assoc "test/gauge" snap.Metrics.gauges);
  Alcotest.(check int) "series gated" 0
    (Array.length (List.assoc "test/series" snap.Metrics.series));
  (* Enabled: values accumulate; creation is idempotent by name. *)
  Control.set_metrics true;
  Metrics.incr ~by:3 c;
  Metrics.incr (Metrics.counter "test/counter");
  Metrics.set g 2.5;
  Metrics.append s 1.0;
  Metrics.append s 2.0;
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter" 4 (List.assoc "test/counter" snap.Metrics.counters);
  Alcotest.(check (float 0.0)) "gauge" 2.5 (List.assoc "test/gauge" snap.Metrics.gauges);
  Alcotest.(check (array (float 0.0))) "series in order" [| 1.0; 2.0 |]
    (List.assoc "test/series" snap.Metrics.series);
  (* Reset zeroes values but keeps handles registered and usable. *)
  Metrics.reset ();
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter reset" 0 (List.assoc "test/counter" snap.Metrics.counters);
  Alcotest.(check int) "series reset" 0
    (Array.length (List.assoc "test/series" snap.Metrics.series));
  Metrics.incr c;
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "handle survives reset" 1
    (List.assoc "test/counter" snap.Metrics.counters)

let test_metrics_json_parses () =
  with_defaults_restored @@ fun () ->
  Control.set_metrics true;
  Metrics.reset ();
  Metrics.incr (Metrics.counter "test/json_counter");
  Metrics.observe (Metrics.histogram "test/json_hist") 17.0;
  Metrics.append (Metrics.series "test/json_series") 0.25;
  let json = parse_json (Metrics.to_json_string ()) in
  let counter = member_exn "test/json_counter" (member_exn "counters" json) in
  Alcotest.(check (float 0.0)) "counter value" 1.0 (as_number counter);
  let hist = member_exn "test/json_hist" (member_exn "histograms" json) in
  Alcotest.(check int) "le/counts lengths"
    (match member_exn "le" hist with
    | Array le -> List.length le + 1
    | _ -> Alcotest.fail "le not an array")
    (match member_exn "counts" hist with
    | Array counts -> List.length counts
    | _ -> Alcotest.fail "counts not an array");
  Alcotest.(check (float 0.0)) "hist count" 1.0 (as_number (member_exn "count" hist));
  match member_exn "test/json_series" (member_exn "series" json) with
  | Array [ Number v ] -> Alcotest.(check (float 0.0)) "series point" 0.25 v
  | _ -> Alcotest.fail "series malformed"

(* --- Probes --------------------------------------------------------------------- *)

let test_probe_records_and_propagates () =
  with_defaults_restored @@ fun () ->
  Control.set_metrics true;
  Metrics.reset ();
  let p = Probe.create "test/probe" in
  Alcotest.(check int) "value passes through" 9 (Probe.run p (fun () -> 9));
  (match Probe.run p (fun () -> raise Exit) with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Exit -> ());
  let snap = Metrics.snapshot () in
  let hs = List.assoc "test/probe_us" snap.Metrics.histograms in
  Alcotest.(check int) "both executions timed" 2 hs.Metrics.count

(* --- Trace sinks ---------------------------------------------------------------- *)

let test_jsonl_span_nesting () =
  with_defaults_restored @@ fun () ->
  let path = Filename.temp_file "mmsyn_test" ".jsonl" in
  Trace.open_jsonl ~path;
  let result =
    Trace.with_span "outer" (fun () ->
        Trace.with_span ~args:(fun () -> [ ("k", "v\"quoted\"") ]) "inner" (fun () -> 7))
  in
  Trace.instant "marker";
  Trace.close ();
  Alcotest.(check bool) "tracing off after close" false (Control.tracing_on ());
  Alcotest.(check int) "with_span returns the value" 7 result;
  let events = jsonl_events path in
  Sys.remove path;
  Alcotest.(check (list string)) "children emitted before parents"
    [ "inner"; "outer"; "marker" ]
    (List.map (fun e -> as_string (member_exn "name" e)) events);
  match events with
  | [ inner; outer; marker ] ->
    Alcotest.(check int) "outer depth" 0
      (int_of_float (as_number (member_exn "depth" outer)));
    Alcotest.(check int) "inner depth" 1
      (int_of_float (as_number (member_exn "depth" inner)));
    let ts e = as_number (member_exn "ts_us" e) in
    let dur e = as_number (member_exn "dur_us" e) in
    Alcotest.(check bool) "inner starts after outer" true (ts inner >= ts outer);
    Alcotest.(check bool) "inner contained in outer" true
      (ts inner +. dur inner <= ts outer +. dur outer);
    Alcotest.(check string) "args round-trip" "v\"quoted\""
      (as_string (member_exn "k" (member_exn "args" inner)));
    Alcotest.(check string) "instant has no duration" "instant"
      (as_string (member_exn "ev" marker));
    Alcotest.(check bool) "instant omits dur_us" true (member "dur_us" marker = None)
  | _ -> Alcotest.fail "expected exactly three events"

let test_jsonl_span_emitted_on_exception () =
  with_defaults_restored @@ fun () ->
  let path = Filename.temp_file "mmsyn_test" ".jsonl" in
  Trace.open_jsonl ~path;
  (match Trace.with_span "failing" (fun () -> raise Exit) with
  | () -> Alcotest.fail "exception swallowed"
  | exception Exit -> ());
  Trace.close ();
  let events = jsonl_events path in
  Sys.remove path;
  Alcotest.(check (list string)) "span recorded despite the raise" [ "failing" ]
    (List.map (fun e -> as_string (member_exn "name" e)) events)

let test_chrome_trace_well_formed () =
  with_defaults_restored @@ fun () ->
  let path = Filename.temp_file "mmsyn_test" ".json" in
  Trace.open_chrome ~path;
  Trace.with_span "a" (fun () -> Trace.with_span "b" (fun () -> ()));
  Trace.instant "i";
  Trace.close ();
  let json = parse_json (read_file path) in
  Sys.remove path;
  match member_exn "traceEvents" json with
  | Array events ->
    Alcotest.(check int) "three events" 3 (List.length events);
    List.iter
      (fun e ->
        (* Every event carries the fields the viewers require. *)
        ignore (as_string (member_exn "name" e));
        ignore (as_number (member_exn "ts" e));
        ignore (as_number (member_exn "pid" e));
        ignore (as_number (member_exn "tid" e));
        match as_string (member_exn "ph" e) with
        | "X" -> ignore (as_number (member_exn "dur" e))
        | "i" -> ()
        | ph -> Alcotest.fail (Printf.sprintf "unexpected phase %S" ph))
      events
  | _ -> Alcotest.fail "traceEvents is not an array"

let test_fine_spans_gated () =
  with_defaults_restored @@ fun () ->
  let fine = Probe.create ~fine:true "test/fine" in
  let coarse = Probe.create "test/coarse" in
  let names_with ~fine_on =
    let path = Filename.temp_file "mmsyn_test" ".jsonl" in
    Trace.open_jsonl ~path;
    Control.set_fine fine_on;
    Probe.run fine (fun () -> ());
    Probe.run coarse (fun () -> ());
    Trace.close ();
    Control.set_fine false;
    let names =
      List.map (fun e -> as_string (member_exn "name" e)) (jsonl_events path)
    in
    Sys.remove path;
    names
  in
  Alcotest.(check (list string)) "fine suppressed by default" [ "test/coarse" ]
    (names_with ~fine_on:false);
  Alcotest.(check (list string)) "fine emitted when enabled"
    [ "test/fine"; "test/coarse" ] (names_with ~fine_on:true)

(* --- Log ------------------------------------------------------------------------ *)

let test_log_level_parsing () =
  List.iter
    (fun (name, expected) ->
      match Log.level_of_string name with
      | Ok level -> Alcotest.(check string) name expected (Log.level_to_string level)
      | Stdlib.Error e -> Alcotest.fail e)
    [
      ("quiet", "quiet"); ("error", "error"); ("warn", "warn"); ("info", "info");
      ("debug", "debug");
    ];
  match Log.level_of_string "verbose" with
  | Ok _ -> Alcotest.fail "accepted an unknown level"
  | Stdlib.Error _ -> ()

(* --- No-perturbation guarantee -------------------------------------------------- *)

(* A fully instrumented run (chrome + jsonl sinks, fine spans, metrics)
   must synthesise the bit-identical result of a bare run: the probes
   record durations but never touch the RNG or the search state. *)
let test_instrumentation_does_not_perturb_results () =
  with_defaults_restored @@ fun () ->
  let spec = Mm_benchgen.Random_system.mul 1 in
  let config =
    {
      Synthesis.default_config with
      ga = { Engine.default_config with max_generations = 8; population_size = 12 };
      restarts = 1;
    }
  in
  let run () = Synthesis.run ~config ~spec ~seed:5 () in
  let plain = run () in
  let chrome = Filename.temp_file "mmsyn_test" ".json" in
  let jsonl = Filename.temp_file "mmsyn_test" ".jsonl" in
  Trace.open_chrome ~path:chrome;
  Trace.open_jsonl ~path:jsonl;
  Control.set_fine true;
  Control.set_metrics true;
  Metrics.reset ();
  let traced = run () in
  Trace.close ();
  Alcotest.(check (array int)) "genome identical" plain.Synthesis.genome
    traced.Synthesis.genome;
  Alcotest.(check bool) "fitness bit-identical" true
    (plain.Synthesis.eval.Fitness.fitness = traced.Synthesis.eval.Fitness.fitness);
  Alcotest.(check bool) "power bit-identical" true
    (plain.Synthesis.eval.Fitness.true_power = traced.Synthesis.eval.Fitness.true_power);
  Alcotest.(check int) "same number of evaluations" plain.Synthesis.evaluations
    traced.Synthesis.evaluations;
  (* And the instrumented run actually produced evidence. *)
  let snap = Metrics.snapshot () in
  Alcotest.(check bool) "ga/generations counted" true
    (List.assoc "ga/generations" snap.Metrics.counters > 0);
  Alcotest.(check bool) "per-generation series populated" true
    (Array.length (List.assoc "ga/best_fitness" snap.Metrics.series) > 0);
  (match member_exn "traceEvents" (parse_json (read_file chrome)) with
  | Array events -> Alcotest.(check bool) "chrome events present" true (events <> [])
  | _ -> Alcotest.fail "traceEvents is not an array");
  Alcotest.(check bool) "jsonl events present" true (jsonl_events jsonl <> []);
  Sys.remove chrome;
  Sys.remove jsonl

let () =
  Alcotest.run "mm_obs"
    [
      ("json", [ Alcotest.test_case "writer" `Quick test_json_writer ]);
      ( "metrics",
        [
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_bucket_boundaries;
          Alcotest.test_case "gating and reset" `Quick test_metrics_gating_and_reset;
          Alcotest.test_case "to_json_string parses" `Quick test_metrics_json_parses;
        ] );
      ( "probe",
        [ Alcotest.test_case "records and propagates" `Quick test_probe_records_and_propagates ]
      );
      ( "trace",
        [
          Alcotest.test_case "jsonl span nesting" `Quick test_jsonl_span_nesting;
          Alcotest.test_case "span emitted on exception" `Quick
            test_jsonl_span_emitted_on_exception;
          Alcotest.test_case "chrome trace well-formed" `Quick
            test_chrome_trace_well_formed;
          Alcotest.test_case "fine spans gated" `Quick test_fine_spans_gated;
        ] );
      ("log", [ Alcotest.test_case "level parsing" `Quick test_log_level_parsing ]);
      ( "determinism",
        [
          Alcotest.test_case "instrumentation does not perturb results" `Quick
            test_instrumentation_does_not_perturb_results;
        ] );
    ]
