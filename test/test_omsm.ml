(* Tests for mm_omsm: Mode, Transition, Omsm. *)

module Task_type = Mm_taskgraph.Task_type
module Task = Mm_taskgraph.Task
module Graph = Mm_taskgraph.Graph
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Omsm = Mm_omsm.Omsm

let ty_a = Task_type.make ~id:0 ~name:"A"
let ty_b = Task_type.make ~id:1 ~name:"B"
let ty_c = Task_type.make ~id:2 ~name:"C"

let graph_of ~name tys =
  let tasks =
    Array.of_list
      (List.mapi (fun id ty -> Task.make ~id ~name:(Printf.sprintf "t%d" id) ~ty ()) tys)
  in
  Graph.make ~name ~tasks ~edges:[]

let mode id ~probability tys =
  Mode.make ~id ~name:(Printf.sprintf "O%d" id) ~graph:(graph_of ~name:"g" tys)
    ~period:1.0 ~probability

let two_mode_omsm () =
  Omsm.make ~name:"m"
    ~modes:[ mode 0 ~probability:0.25 [ ty_a; ty_b ]; mode 1 ~probability:0.75 [ ty_b; ty_c ] ]
    ~transitions:
      [ Transition.make ~src:0 ~dst:1 ~max_time:0.1;
        Transition.make ~src:1 ~dst:0 ~max_time:0.2 ]

let test_mode_validation () =
  let g = graph_of ~name:"g" [ ty_a ] in
  (match Mode.make ~id:0 ~name:"m" ~graph:g ~period:0.0 ~probability:0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero period not rejected");
  match Mode.make ~id:0 ~name:"m" ~graph:g ~period:1.0 ~probability:1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "probability > 1 not rejected"

let test_transition_validation () =
  (match Transition.make ~src:0 ~dst:0 ~max_time:1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self transition not rejected");
  match Transition.make ~src:0 ~dst:1 ~max_time:0.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero max_time not rejected"

let test_omsm_basics () =
  let m = two_mode_omsm () in
  Alcotest.(check int) "modes" 2 (Omsm.n_modes m);
  Alcotest.(check int) "total tasks" 4 (Omsm.total_tasks m);
  Alcotest.(check int) "transitions" 2 (List.length (Omsm.transitions m));
  Alcotest.(check int) "into mode 1" 1 (List.length (Omsm.transitions_into m 1))

let test_probability_sum_checked () =
  match
    Omsm.make ~name:"bad"
      ~modes:[ mode 0 ~probability:0.5 [ ty_a ]; mode 1 ~probability:0.3 [ ty_b ] ]
      ~transitions:[]
  with
  | exception Omsm.Invalid _ -> ()
  | _ -> Alcotest.fail "probabilities not summing to 1 accepted"

let test_duplicate_transition_rejected () =
  match
    Omsm.make ~name:"dup"
      ~modes:[ mode 0 ~probability:0.5 [ ty_a ]; mode 1 ~probability:0.5 [ ty_b ] ]
      ~transitions:
        [ Transition.make ~src:0 ~dst:1 ~max_time:0.1;
          Transition.make ~src:0 ~dst:1 ~max_time:0.2 ]
  with
  | exception Omsm.Invalid _ -> ()
  | _ -> Alcotest.fail "duplicate transition accepted"

let test_transition_unknown_mode_rejected () =
  match
    Omsm.make ~name:"bad"
      ~modes:[ mode 0 ~probability:1.0 [ ty_a ] ]
      ~transitions:[ Transition.make ~src:0 ~dst:3 ~max_time:0.1 ]
  with
  | exception Omsm.Invalid _ -> ()
  | _ -> Alcotest.fail "unknown destination accepted"

let test_shared_types () =
  let m = two_mode_omsm () in
  let shared = Omsm.shared_task_types m in
  Alcotest.(check int) "one shared type" 1 (Task_type.Set.cardinal shared);
  Alcotest.(check bool) "B is shared" true (Task_type.Set.mem ty_b shared);
  Alcotest.(check (list int)) "modes using B" [ 0; 1 ] (Omsm.modes_using_type m ty_b);
  Alcotest.(check (list int)) "modes using A" [ 0 ] (Omsm.modes_using_type m ty_a)

let test_all_types () =
  let m = two_mode_omsm () in
  Alcotest.(check int) "three distinct types" 3
    (Task_type.Set.cardinal (Omsm.all_task_types m))

let test_entropy () =
  let uniform =
    Omsm.make ~name:"u"
      ~modes:[ mode 0 ~probability:0.5 [ ty_a ]; mode 1 ~probability:0.5 [ ty_b ] ]
      ~transitions:[]
  in
  let skewed =
    Omsm.make ~name:"s"
      ~modes:[ mode 0 ~probability:0.99 [ ty_a ]; mode 1 ~probability:0.01 [ ty_b ] ]
      ~transitions:[]
  in
  Alcotest.(check (float 1e-9)) "uniform entropy = ln 2" (log 2.0)
    (Omsm.probability_entropy uniform);
  Alcotest.(check bool) "skew lowers entropy" true
    (Omsm.probability_entropy skewed < Omsm.probability_entropy uniform)

(* --- Usage_profile ------------------------------------------------------- *)

module Usage_profile = Mm_omsm.Usage_profile

let obs src dst count = { Usage_profile.src; dst; count }

let test_embedded_chain () =
  let matrix = Usage_profile.embedded_chain ~n_modes:2 [ obs 0 1 3.0; obs 1 0 3.0 ] in
  Alcotest.(check (float 1e-12)) "0->1" 1.0 matrix.(0).(1);
  Alcotest.(check (float 1e-12)) "1->0" 1.0 matrix.(1).(0)

let test_embedded_chain_normalises () =
  let matrix =
    Usage_profile.embedded_chain ~n_modes:3 [ obs 0 1 1.0; obs 0 2 3.0; obs 1 0 5.0; obs 2 0 5.0 ]
  in
  Alcotest.(check (float 1e-12)) "0->1 quarter" 0.25 matrix.(0).(1);
  Alcotest.(check (float 1e-12)) "0->2 three quarters" 0.75 matrix.(0).(2)

let test_embedded_chain_absorbing () =
  let matrix = Usage_profile.embedded_chain ~n_modes:2 [ obs 0 1 1.0 ] in
  Alcotest.(check (float 1e-12)) "absorbing self-loop" 1.0 matrix.(1).(1)

let test_embedded_chain_validation () =
  (match Usage_profile.embedded_chain ~n_modes:2 [ obs 0 5 1.0 ] with
  | exception Usage_profile.Invalid _ -> ()
  | _ -> Alcotest.fail "out-of-range accepted");
  match Usage_profile.embedded_chain ~n_modes:2 [ obs 0 1 0.0 ] with
  | exception Usage_profile.Invalid _ -> ()
  | _ -> Alcotest.fail "zero count accepted"

let test_stationary_two_state () =
  (* Alternating chain: uniform stationary distribution. *)
  let pi = Usage_profile.stationary [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  Alcotest.(check (float 1e-6)) "half" 0.5 pi.(0)

let test_stationary_biased () =
  (* 0 mostly stays; 1 always leaves: pi0 should dominate. *)
  let pi = Usage_profile.stationary [| [| 0.9; 0.1 |]; [| 1.0; 0.0 |] |] in
  Alcotest.(check bool) "mode 0 dominates" true (pi.(0) > 0.85);
  Alcotest.(check (float 1e-9)) "sums to 1" 1.0 (pi.(0) +. pi.(1))

let test_stationary_rejects_non_stochastic () =
  match Usage_profile.stationary [| [| 0.5; 0.2 |]; [| 1.0; 0.0 |] |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-stochastic accepted"

let test_stationary_damping_periodic () =
  (* The period-2 chain has no plain power-iteration limit (the iterates
     oscillate); any damping < 1 still converges to the uniform
     fixpoint. *)
  List.iter
    (fun damping ->
      let pi = Usage_profile.stationary ~damping [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
      Alcotest.(check (float 1e-6)) "uniform" 0.5 pi.(0))
    [ 0.25; 0.5; 0.95 ]

let test_stationary_damping_one_is_exact () =
  (* Damping < 1 smooths the fixpoint toward uniform (the PageRank
     trade: guaranteed convergence for a small bias); damping 1.0 is
     the plain power iteration, whose fixpoint on this ergodic chain
     is the exact stationary distribution pi = (10/11, 1/11).  Passing
     the default value explicitly must match the default exactly. *)
  let matrix = [| [| 0.9; 0.1 |]; [| 1.0; 0.0 |] |] in
  let plain = Usage_profile.stationary ~damping:1.0 matrix in
  Alcotest.(check (float 1e-9)) "exact pi0" (10.0 /. 11.0) plain.(0);
  Alcotest.(check (float 1e-9)) "exact pi1" (1.0 /. 11.0) plain.(1);
  let damped = Usage_profile.stationary matrix in
  let explicit = Usage_profile.stationary ~damping:0.95 matrix in
  Array.iteri
    (fun i p -> Alcotest.(check (float 0.0)) "explicit default" p damped.(i))
    explicit;
  (* The default's uniform bias is small but real on this chain. *)
  Alcotest.(check bool) "default biased toward uniform" true
    (damped.(0) < plain.(0) && damped.(0) > 0.88)

let test_stationary_damping_validation () =
  List.iter
    (fun damping ->
      match
        Usage_profile.stationary ~damping [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |]
      with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "bad damping accepted")
    [ 0.0; -0.5; 1.5; Float.nan ]

let test_probabilities_weight_by_holding_time () =
  (* Alternation with 9:1 holding times = 0.9/0.1 usage profile. *)
  let profile =
    Usage_profile.probabilities ~n_modes:2
      ~holding_time:(fun mode -> if mode = 0 then 9.0 else 1.0)
      [ obs 0 1 1.0; obs 1 0 1.0 ]
  in
  Alcotest.(check (float 1e-6)) "mode 0 at 90%" 0.9 profile.(0);
  Alcotest.(check (float 1e-6)) "mode 1 at 10%" 0.1 profile.(1)

let test_apply_rebuilds_omsm () =
  let m = two_mode_omsm () in
  let derived =
    Usage_profile.apply m
      ~holding_time:(fun mode -> if mode = 0 then 3.0 else 1.0)
      [ obs 0 1 1.0; obs 1 0 1.0 ]
  in
  Alcotest.(check (float 1e-6)) "updated probability" 0.75
    (Mode.probability (Omsm.mode derived 0));
  Alcotest.(check int) "transitions preserved" 2 (List.length (Omsm.transitions derived));
  Alcotest.(check string) "name preserved" (Omsm.name m) (Omsm.name derived)

let prop_profile_is_distribution =
  QCheck.Test.make ~name:"derived profiles are probability distributions" ~count:200
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, n_modes) ->
      let rng = Mm_util.Prng.create ~seed in
      (* A random strongly-connected-ish observation set: a ring plus
         random chords. *)
      let ring =
        List.init n_modes (fun i ->
            obs i ((i + 1) mod n_modes) (0.5 +. Mm_util.Prng.float rng 5.0))
      in
      let chords =
        List.filter_map
          (fun _ ->
            let src = Mm_util.Prng.int rng n_modes
            and dst = Mm_util.Prng.int rng n_modes in
            if src = dst then None
            else Some (obs src dst (0.5 +. Mm_util.Prng.float rng 5.0)))
          (List.init n_modes Fun.id)
      in
      let profile =
        Usage_profile.probabilities ~n_modes
          ~holding_time:(fun _ -> 0.1 +. Mm_util.Prng.float rng 10.0)
          (ring @ chords)
      in
      let total = Array.fold_left ( +. ) 0.0 profile in
      Float.abs (total -. 1.0) < 1e-9 && Array.for_all (fun p -> p >= 0.0) profile)

let () =
  Alcotest.run "mm_omsm"
    [
      ( "validation",
        [
          Alcotest.test_case "mode" `Quick test_mode_validation;
          Alcotest.test_case "transition" `Quick test_transition_validation;
          Alcotest.test_case "probability sum" `Quick test_probability_sum_checked;
          Alcotest.test_case "duplicate transition" `Quick test_duplicate_transition_rejected;
          Alcotest.test_case "unknown mode" `Quick test_transition_unknown_mode_rejected;
        ] );
      ( "queries",
        [
          Alcotest.test_case "basics" `Quick test_omsm_basics;
          Alcotest.test_case "shared types" `Quick test_shared_types;
          Alcotest.test_case "all types" `Quick test_all_types;
          Alcotest.test_case "entropy" `Quick test_entropy;
        ] );
      ( "usage-profile",
        [
          Alcotest.test_case "embedded chain" `Quick test_embedded_chain;
          Alcotest.test_case "normalisation" `Quick test_embedded_chain_normalises;
          Alcotest.test_case "absorbing mode" `Quick test_embedded_chain_absorbing;
          Alcotest.test_case "validation" `Quick test_embedded_chain_validation;
          Alcotest.test_case "stationary two-state" `Quick test_stationary_two_state;
          Alcotest.test_case "stationary biased" `Quick test_stationary_biased;
          Alcotest.test_case "stationary damping on a periodic chain" `Quick
            test_stationary_damping_periodic;
          Alcotest.test_case "stationary damping 1.0 is exact" `Quick
            test_stationary_damping_one_is_exact;
          Alcotest.test_case "stationary damping validation" `Quick
            test_stationary_damping_validation;
          Alcotest.test_case "non-stochastic rejected" `Quick
            test_stationary_rejects_non_stochastic;
          Alcotest.test_case "holding times weight" `Quick
            test_probabilities_weight_by_holding_time;
          Alcotest.test_case "apply" `Quick test_apply_rebuilds_omsm;
          QCheck_alcotest.to_alcotest prop_profile_is_distribution;
        ] );
    ]
