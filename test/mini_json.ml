(* Miniature JSON reader + re-emitter shared across the test suite.

   The library only *writes* JSON (through Mm_obs.Json); this reader
   parses exactly what the sinks emit, so tests inspect structure
   instead of pattern-matching on substrings.  [emit] serialises a
   parsed value back through the very same Mm_obs.Json primitives —
   that shared float/string path is what makes "export -> parse ->
   re-emit is byte-identical" a testable property (test_fleet.ml). *)

type json =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of json list
  | Object of (string * json) list

exception Bad_json of string

let parse_json text =
  let n = String.length text in
  let pos = ref 0 in
  let fail message = raise (Bad_json (Printf.sprintf "%s at byte %d" message !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    String.iter expect word;
    value
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec chars () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some (('"' | '\\' | '/') as c) ->
          Buffer.add_char b c;
          advance ()
        | Some 'n' ->
          Buffer.add_char b '\n';
          advance ()
        | Some 't' ->
          Buffer.add_char b '\t';
          advance ()
        | Some 'r' ->
          Buffer.add_char b '\r';
          advance ()
        | Some 'b' ->
          Buffer.add_char b '\b';
          advance ()
        | Some 'f' ->
          Buffer.add_char b '\012';
          advance ()
        | Some 'u' ->
          advance ();
          let code = ref 0 in
          for _ = 1 to 4 do
            (match peek () with
            | Some ('0' .. '9' as c) -> code := (!code * 16) + Char.code c - Char.code '0'
            | Some ('a' .. 'f' as c) ->
              code := (!code * 16) + Char.code c - Char.code 'a' + 10
            | Some ('A' .. 'F' as c) ->
              code := (!code * 16) + Char.code c - Char.code 'A' + 10
            | _ -> fail "bad \\u escape");
            advance ()
          done;
          (* Only the one-byte range matters here: the writer escapes
             control characters as \u00XX and nothing else. *)
          if !code < 0x100 then Buffer.add_char b (Char.chr !code)
          else Buffer.add_char b '?'
        | _ -> fail "bad escape");
        chars ()
      | Some c when Char.code c < 0x20 -> fail "raw control character in string"
      | Some c ->
        Buffer.add_char b c;
        advance ();
        chars ()
    in
    chars ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numeric = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while match peek () with Some c when numeric c -> true | _ -> false do
      advance ()
    done;
    let body = String.sub text start (!pos - start) in
    match float_of_string_opt body with
    | Some f -> Number f
    | None -> fail (Printf.sprintf "bad number %S" body)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Object []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, value) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, value) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Object (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Array []
      end
      else begin
        let rec elements acc =
          let value = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (value :: acc)
          | Some ']' ->
            advance ();
            List.rev (value :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Array (elements [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "empty input"
  in
  let value = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes";
  value

let member key = function Object fields -> List.assoc_opt key fields | _ -> None

let member_exn key json =
  match member key json with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "missing key %S" key)

let as_string = function String s -> s | _ -> Alcotest.fail "expected a string"

let as_number = function Number f -> f | _ -> Alcotest.fail "expected a number"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let jsonl_events path =
  read_file path |> String.split_on_char '\n'
  |> List.filter (fun line -> line <> "")
  |> List.map parse_json

let rec emit_value b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Mm_obs.Json.bool b v
  | Number f -> Mm_obs.Json.number b f
  | String s -> Mm_obs.Json.str b s
  | Array items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        emit_value b item)
      items;
    Buffer.add_char b ']'
  | Object fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char b ',';
        Mm_obs.Json.str b key;
        Buffer.add_char b ':';
        emit_value b value)
      fields;
    Buffer.add_char b '}'

let emit json =
  let b = Buffer.create 1024 in
  emit_value b json;
  Buffer.contents b
