(* Tests for mm_arch: Voltage, Pe, Cl, Architecture, Tech_lib. *)

module Voltage = Mm_arch.Voltage
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Arch = Mm_arch.Architecture
module Tech_lib = Mm_arch.Tech_lib
module Task_type = Mm_taskgraph.Task_type

let rail () = Voltage.make ~levels:[ 3.3; 2.5; 1.8 ] ~threshold:0.4

(* --- Voltage -------------------------------------------------------------- *)

let test_rail_ordering () =
  let r = Voltage.make ~levels:[ 1.8; 3.3; 2.5; 3.3 ] ~threshold:0.4 in
  Alcotest.(check (list (float 1e-9))) "descending, deduped" [ 3.3; 2.5; 1.8 ]
    (Voltage.levels r);
  Alcotest.(check (float 1e-9)) "vmax" 3.3 (Voltage.vmax r);
  Alcotest.(check (float 1e-9)) "vmin" 1.8 (Voltage.vmin r);
  Alcotest.(check int) "three levels" 3 (Voltage.n_levels r)

let test_rail_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Voltage.make: no levels") (fun () ->
      ignore (Voltage.make ~levels:[] ~threshold:0.3));
  Alcotest.check_raises "below threshold"
    (Invalid_argument "Voltage.make: level must exceed threshold") (fun () ->
      ignore (Voltage.make ~levels:[ 0.2 ] ~threshold:0.3))

let test_delay_factor () =
  let r = rail () in
  Alcotest.(check (float 1e-9)) "nominal is 1" 1.0 (Voltage.delay_factor r 3.3);
  Alcotest.(check bool) "slower at lower voltage" true (Voltage.delay_factor r 1.8 > 1.0);
  Alcotest.(check bool) "monotone" true
    (Voltage.delay_factor r 1.8 > Voltage.delay_factor r 2.5)

let test_energy_factor () =
  let r = rail () in
  Alcotest.(check (float 1e-9)) "nominal is 1" 1.0 (Voltage.energy_factor r 3.3);
  Alcotest.(check (float 1e-9)) "quadratic" ((1.8 /. 3.3) ** 2.0)
    (Voltage.energy_factor r 1.8)

let test_scaled_time_energy () =
  let r = rail () in
  Alcotest.(check (float 1e-12)) "time at vmax" 2e-3 (Voltage.scaled_time r ~tmin:2e-3 3.3);
  Alcotest.(check (float 1e-12)) "energy at vmax" (0.5 *. 2e-3)
    (Voltage.scaled_energy r ~pmax:0.5 ~tmin:2e-3 3.3)

let test_slowest_feasible () =
  let r = rail () in
  (* Generous budget: lowest level fits. *)
  Alcotest.(check (option (float 1e-9))) "all fit -> vmin" (Some 1.8)
    (Voltage.slowest_feasible r ~tmin:1.0 ~budget:100.0);
  (* Tight budget: only vmax fits. *)
  Alcotest.(check (option (float 1e-9))) "tight -> vmax" (Some 3.3)
    (Voltage.slowest_feasible r ~tmin:1.0 ~budget:1.0);
  (* Impossible budget. *)
  Alcotest.(check (option (float 1e-9))) "impossible" None
    (Voltage.slowest_feasible r ~tmin:1.0 ~budget:0.5)

let test_slowest_feasible_boundary () =
  (* Exactly at the budget: the level must still count as feasible. *)
  let r = Voltage.make ~levels:[ 2.0; 1.0 ] ~threshold:0.0 in
  (* At 1.0 V (Vt = 0) the delay factor is exactly 2. *)
  Alcotest.(check (option (float 1e-9))) "boundary inclusive" (Some 1.0)
    (Voltage.slowest_feasible r ~tmin:1.0 ~budget:2.0)

let test_next_lower () =
  let r = rail () in
  Alcotest.(check (option (float 1e-9))) "below max" (Some 2.5) (Voltage.next_lower r 3.3);
  Alcotest.(check (option (float 1e-9))) "below min" None (Voltage.next_lower r 1.8)

let prop_delay_energy_tradeoff =
  QCheck.Test.make ~name:"lower voltage: more delay, less energy" ~count:200
    QCheck.(pair (float_range 0.5 1.0) (float_range 0.5 1.0))
    (fun (a, b) ->
      let lo = 1.0 +. Float.min a b and hi = 1.0 +. Float.max a b +. 0.1 in
      let r = Voltage.make ~levels:[ hi; lo ] ~threshold:0.3 in
      Voltage.delay_factor r lo >= 1.0 && Voltage.energy_factor r lo <= 1.0)

(* --- Pe -------------------------------------------------------------------- *)

let test_pe_kinds () =
  let gpp = Pe.make ~id:0 ~name:"g" ~kind:Pe.Gpp ~static_power:0.1 () in
  let asic = Pe.make ~id:1 ~name:"a" ~kind:Pe.Asic ~static_power:0.1 ~area_capacity:10.0 () in
  let fpga =
    Pe.make ~id:2 ~name:"f" ~kind:Pe.Fpga ~static_power:0.1 ~area_capacity:10.0
      ~reconfig_time_per_area:0.1 ()
  in
  Alcotest.(check bool) "gpp is software" true (Pe.is_software gpp);
  Alcotest.(check bool) "asic is hardware" true (Pe.is_hardware asic);
  Alcotest.(check bool) "fpga reconfigurable" true (Pe.is_reconfigurable fpga);
  Alcotest.(check bool) "asic not reconfigurable" false (Pe.is_reconfigurable asic);
  Alcotest.(check bool) "no rail" false (Pe.is_dvs_enabled gpp)

let test_pe_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": not rejected")
  in
  expect_invalid "sw with area" (fun () ->
      Pe.make ~id:0 ~name:"g" ~kind:Pe.Gpp ~static_power:0.1 ~area_capacity:5.0 ());
  expect_invalid "asic without area" (fun () ->
      Pe.make ~id:0 ~name:"a" ~kind:Pe.Asic ~static_power:0.1 ());
  expect_invalid "asic with reconfig" (fun () ->
      Pe.make ~id:0 ~name:"a" ~kind:Pe.Asic ~static_power:0.1 ~area_capacity:5.0
        ~reconfig_time_per_area:0.1 ());
  expect_invalid "negative static" (fun () ->
      Pe.make ~id:0 ~name:"g" ~kind:Pe.Gpp ~static_power:(-0.1) ())

let test_pe_dvs () =
  let pe = Pe.make ~id:0 ~name:"g" ~kind:Pe.Gpp ~static_power:0.1 ~rail:(rail ()) () in
  Alcotest.(check bool) "dvs enabled" true (Pe.is_dvs_enabled pe)

(* --- Cl -------------------------------------------------------------------- *)

let test_cl_basics () =
  let cl =
    Cl.make ~id:0 ~name:"bus" ~connects:[ 2; 0; 1 ] ~time_per_data:0.5 ~transfer_power:2.0
      ~static_power:0.1
  in
  Alcotest.(check (list int)) "sorted attachments" [ 0; 1; 2 ] (Cl.connects cl);
  Alcotest.(check bool) "links 0-2" true (Cl.links_pes cl 0 2);
  Alcotest.(check bool) "not 0-3" false (Cl.links_pes cl 0 3);
  Alcotest.(check (float 1e-9)) "transfer time" 2.0 (Cl.transfer_time cl ~data:4.0);
  Alcotest.(check (float 1e-9)) "transfer energy" 4.0 (Cl.transfer_energy cl ~data:4.0)

let test_cl_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": not rejected")
  in
  expect_invalid "single attachment" (fun () ->
      Cl.make ~id:0 ~name:"c" ~connects:[ 0 ] ~time_per_data:1.0 ~transfer_power:1.0
        ~static_power:0.0);
  expect_invalid "duplicate attachment" (fun () ->
      Cl.make ~id:0 ~name:"c" ~connects:[ 0; 0 ] ~time_per_data:1.0 ~transfer_power:1.0
        ~static_power:0.0);
  expect_invalid "zero bandwidth" (fun () ->
      Cl.make ~id:0 ~name:"c" ~connects:[ 0; 1 ] ~time_per_data:0.0 ~transfer_power:1.0
        ~static_power:0.0)

(* --- Architecture ----------------------------------------------------------- *)

let arch_3pe () =
  let gpp = Pe.make ~id:0 ~name:"g" ~kind:Pe.Gpp ~static_power:0.1 () in
  let asic = Pe.make ~id:1 ~name:"a" ~kind:Pe.Asic ~static_power:0.1 ~area_capacity:10.0 () in
  let asip = Pe.make ~id:2 ~name:"s" ~kind:Pe.Asip ~static_power:0.1 ~rail:(rail ()) () in
  let bus01 =
    Cl.make ~id:0 ~name:"b01" ~connects:[ 0; 1 ] ~time_per_data:1.0 ~transfer_power:1.0
      ~static_power:0.0
  in
  let bus12 =
    Cl.make ~id:1 ~name:"b12" ~connects:[ 1; 2 ] ~time_per_data:1.0 ~transfer_power:1.0
      ~static_power:0.0
  in
  Arch.make ~name:"a3" ~pes:[ gpp; asic; asip ] ~cls:[ bus01; bus12 ]

let test_arch_queries () =
  let arch = arch_3pe () in
  Alcotest.(check int) "pes" 3 (Arch.n_pes arch);
  Alcotest.(check int) "cls" 2 (Arch.n_cls arch);
  Alcotest.(check int) "software" 2 (List.length (Arch.software_pes arch));
  Alcotest.(check int) "hardware" 1 (List.length (Arch.hardware_pes arch));
  Alcotest.(check int) "dvs" 1 (List.length (Arch.dvs_pes arch));
  Alcotest.(check int) "links 0-1" 1 (List.length (Arch.links_between arch 0 1));
  Alcotest.(check int) "no direct 0-2" 0 (List.length (Arch.links_between arch 0 2));
  Alcotest.(check int) "self link is none" 0 (List.length (Arch.links_between arch 1 1));
  Alcotest.(check bool) "not fully connected" false (Arch.fully_connected arch)

let test_arch_validation () =
  let gpp = Pe.make ~id:0 ~name:"g" ~kind:Pe.Gpp ~static_power:0.1 () in
  let bad_cl =
    Cl.make ~id:0 ~name:"c" ~connects:[ 0; 7 ] ~time_per_data:1.0 ~transfer_power:1.0
      ~static_power:0.0
  in
  (match Arch.make ~name:"x" ~pes:[ gpp ] ~cls:[ bad_cl ] with
  | exception Arch.Invalid _ -> ()
  | _ -> Alcotest.fail "unknown PE attachment not rejected");
  match Arch.make ~name:"x" ~pes:[] ~cls:[] with
  | exception Arch.Invalid _ -> ()
  | _ -> Alcotest.fail "empty architecture not rejected"

(* --- Tech_lib ----------------------------------------------------------------- *)

let ty = Task_type.make ~id:0 ~name:"T"

let test_tech_lib_roundtrip () =
  let arch = arch_3pe () in
  let gpp = Arch.pe arch 0 and asic = Arch.pe arch 1 in
  let tech =
    Tech_lib.empty
    |> fun t ->
    Tech_lib.add t ~ty ~pe:gpp (Tech_lib.impl ~exec_time:1e-3 ~dyn_power:0.5 ())
    |> fun t ->
    Tech_lib.add t ~ty ~pe:asic
      (Tech_lib.impl ~exec_time:1e-4 ~dyn_power:0.01 ~area:100.0 ())
  in
  Alcotest.(check int) "two entries" 2 (Tech_lib.n_entries tech);
  Alcotest.(check bool) "supports gpp" true (Tech_lib.supports tech ~ty ~pe:gpp);
  Alcotest.(check bool) "no asip impl" false
    (Tech_lib.supports tech ~ty ~pe:(Arch.pe arch 2));
  let pes = Tech_lib.supported_pes tech ~ty arch in
  Alcotest.(check (list int)) "supported ids" [ 0; 1 ] (List.map Pe.id pes);
  let impl = Tech_lib.find_exn tech ~ty ~pe:asic in
  Alcotest.(check (float 1e-12)) "energy" 1e-6 (Tech_lib.energy impl)

let test_tech_lib_validation () =
  let arch = arch_3pe () in
  let gpp = Arch.pe arch 0 in
  (match Tech_lib.impl ~exec_time:0.0 ~dyn_power:1.0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero exec time not rejected");
  (match
     Tech_lib.add Tech_lib.empty ~ty ~pe:gpp
       (Tech_lib.impl ~exec_time:1.0 ~dyn_power:1.0 ~area:5.0 ())
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "software area not rejected");
  let tech =
    Tech_lib.add Tech_lib.empty ~ty ~pe:gpp (Tech_lib.impl ~exec_time:1.0 ~dyn_power:1.0 ())
  in
  match Tech_lib.add tech ~ty ~pe:gpp (Tech_lib.impl ~exec_time:2.0 ~dyn_power:1.0 ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate entry not rejected"

let () =
  Alcotest.run "mm_arch"
    [
      ( "voltage",
        [
          Alcotest.test_case "ordering" `Quick test_rail_ordering;
          Alcotest.test_case "validation" `Quick test_rail_validation;
          Alcotest.test_case "delay factor" `Quick test_delay_factor;
          Alcotest.test_case "energy factor" `Quick test_energy_factor;
          Alcotest.test_case "scaled time/energy" `Quick test_scaled_time_energy;
          Alcotest.test_case "slowest feasible" `Quick test_slowest_feasible;
          Alcotest.test_case "slowest feasible boundary" `Quick test_slowest_feasible_boundary;
          Alcotest.test_case "next lower" `Quick test_next_lower;
          QCheck_alcotest.to_alcotest prop_delay_energy_tradeoff;
        ] );
      ( "pe",
        [
          Alcotest.test_case "kinds" `Quick test_pe_kinds;
          Alcotest.test_case "validation" `Quick test_pe_validation;
          Alcotest.test_case "dvs" `Quick test_pe_dvs;
        ] );
      ( "cl",
        [
          Alcotest.test_case "basics" `Quick test_cl_basics;
          Alcotest.test_case "validation" `Quick test_cl_validation;
        ] );
      ( "architecture",
        [
          Alcotest.test_case "queries" `Quick test_arch_queries;
          Alcotest.test_case "validation" `Quick test_arch_validation;
        ] );
      ( "tech-lib",
        [
          Alcotest.test_case "roundtrip" `Quick test_tech_lib_roundtrip;
          Alcotest.test_case "validation" `Quick test_tech_lib_validation;
        ] );
    ]
