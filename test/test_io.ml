(* Tests for mm_io: the S-expression syntax and the spec/mapping codec. *)

module Sexp = Mm_io.Sexp
module Codec = Mm_io.Codec
module Spec = Mm_cosynth.Spec
module Mapping = Mm_cosynth.Mapping
module Fitness = Mm_cosynth.Fitness
module Omsm = Mm_omsm.Omsm
module Mode = Mm_omsm.Mode
module F = Fixtures

(* --- Sexp -------------------------------------------------------------------- *)

let test_parse_atoms () =
  (match Sexp.parse "hello 42 3.14" with
  | [ Sexp.Atom "hello"; Sexp.Atom "42"; Sexp.Atom "3.14" ] -> ()
  | _ -> Alcotest.fail "atoms not parsed");
  match Sexp.parse_one "\"two words\"" with
  | Sexp.Atom "two words" -> ()
  | _ -> Alcotest.fail "quoted atom not parsed"

let test_parse_nested () =
  match Sexp.parse_one "(a (b c) ((d)) )" with
  | Sexp.List
      [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ];
        Sexp.List [ Sexp.List [ Sexp.Atom "d" ] ] ] -> ()
  | _ -> Alcotest.fail "nesting not parsed"

let test_parse_comments () =
  match Sexp.parse "; a comment\n(x) ; trailing\n" with
  | [ Sexp.List [ Sexp.Atom "x" ] ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_parse_escapes () =
  match Sexp.parse_one "\"a\\\"b\\\\c\\nd\"" with
  | Sexp.Atom "a\"b\\c\nd" -> ()
  | _ -> Alcotest.fail "escapes not handled"

let test_parse_errors () =
  let expect_error input =
    match Sexp.parse input with
    | exception Sexp.Parse_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "accepted %S" input)
  in
  expect_error "(unterminated";
  expect_error ")";
  expect_error "\"unterminated";
  match Sexp.parse_one "a b" with
  | exception Sexp.Parse_error _ -> ()
  | _ -> Alcotest.fail "parse_one accepted two expressions"

let rec sexp_equal a b =
  match (a, b) with
  | Sexp.Atom x, Sexp.Atom y -> x = y
  | Sexp.List xs, Sexp.List ys ->
    List.length xs = List.length ys && List.for_all2 sexp_equal xs ys
  | Sexp.Atom _, Sexp.List _ | Sexp.List _, Sexp.Atom _ -> false

let sexp_gen =
  QCheck.Gen.(
    sized (fun size ->
        fix
          (fun self size ->
            let atom =
              map (fun s -> Sexp.Atom s)
                (string_size ~gen:(oneof [ char_range 'a' 'z'; return '"'; return ' ' ])
                   (1 -- 8))
            in
            if size <= 1 then atom
            else
              frequency
                [
                  (2, atom);
                  (1, map (fun xs -> Sexp.List xs) (list_size (0 -- 4) (self (size / 2))));
                ])
          size))

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip" ~count:300
    (QCheck.make ~print:Sexp.to_string sexp_gen)
    (fun sexp -> sexp_equal sexp (Sexp.parse_one (Sexp.to_string sexp)))

let prop_float_roundtrip =
  QCheck.Test.make ~name:"float atoms round-trip exactly" ~count:500
    QCheck.(float)
    (fun f ->
      QCheck.assume (Float.is_finite f);
      Sexp.as_float (Sexp.parse_one (Sexp.to_string (Sexp.float f))) = f)

let test_parse_deeply_nested () =
  let depth = 500 in
  let input = String.concat "" [ String.make depth '('; "x"; String.make depth ')' ] in
  let rec unwrap k = function
    | Sexp.Atom "x" when k = 0 -> ()
    | Sexp.List [ inner ] -> unwrap (k - 1) inner
    | _ -> Alcotest.fail "wrong nesting"
  in
  unwrap depth (Sexp.parse_one input)

let test_to_string_wraps_long_lists () =
  let wide =
    Sexp.List (List.init 60 (fun i -> Sexp.Atom (Printf.sprintf "field%02d" i)))
  in
  let rendered = Sexp.to_string wide in
  Alcotest.(check bool) "multi-line" true (String.contains rendered '\n');
  (* Still parses back. *)
  match Sexp.parse_one rendered with
  | Sexp.List xs -> Alcotest.(check int) "all members kept" 60 (List.length xs)
  | Sexp.Atom _ -> Alcotest.fail "not a list"

let test_quoting_special_atoms () =
  List.iter
    (fun s ->
      let rendered = Sexp.to_string (Sexp.Atom s) in
      match Sexp.parse_one rendered with
      | Sexp.Atom back -> Alcotest.(check string) "round-trips" s back
      | Sexp.List _ -> Alcotest.fail "became a list")
    [ "with space"; "paren("; "semi;colon"; "quote\"inside"; "back\\slash"; "new\nline" ]

let test_assoc_helpers () =
  let fields = Sexp.parse "(a 1) (b 2) (a 3)" in
  (match Sexp.assoc_all "a" fields with
  | [ [ Sexp.Atom "1" ]; [ Sexp.Atom "3" ] ] -> ()
  | _ -> Alcotest.fail "assoc_all");
  (match Sexp.assoc "b" fields with
  | [ Sexp.Atom "2" ] -> ()
  | _ -> Alcotest.fail "assoc");
  (match Sexp.assoc_opt "c" fields with
  | None -> ()
  | Some _ -> Alcotest.fail "assoc_opt phantom");
  (* Duplicates are rejected by assoc/assoc_opt. *)
  match Sexp.assoc_opt "a" fields with
  | exception Sexp.Type_error { kind = Sexp.Duplicate_field; _ } -> ()
  | _ -> Alcotest.fail "duplicate not rejected"

(* --- Codec -------------------------------------------------------------------- *)

(* Structural comparison of two specs through observable behaviour. *)
let check_specs_equivalent a b =
  Alcotest.(check int) "positions" (Spec.n_positions a) (Spec.n_positions b);
  Alcotest.(check (array int)) "gene counts" (Spec.gene_counts a) (Spec.gene_counts b);
  let omsm_a = Spec.omsm a and omsm_b = Spec.omsm b in
  Alcotest.(check int) "modes" (Omsm.n_modes omsm_a) (Omsm.n_modes omsm_b);
  List.iter2
    (fun ma mb ->
      Alcotest.(check string) "mode name" (Mode.name ma) (Mode.name mb);
      Alcotest.(check (float 1e-15)) "probability" (Mode.probability ma) (Mode.probability mb);
      Alcotest.(check (float 1e-15)) "period" (Mode.period ma) (Mode.period mb))
    (Omsm.modes omsm_a) (Omsm.modes omsm_b);
  (* Same fitness for the same genome: library, architecture and graphs
     must therefore agree. *)
  let rng = Mm_util.Prng.create ~seed:77 in
  for _ = 1 to 5 do
    let genome = Mm_ga.Genome.random rng ~counts:(Spec.gene_counts a) in
    let ea = Fitness.evaluate Fitness.default_config a genome in
    let eb = Fitness.evaluate Fitness.default_config b genome in
    Alcotest.(check (float 1e-12)) "same power" ea.Fitness.true_power eb.Fitness.true_power;
    Alcotest.(check (float 1e-12)) "same fitness" ea.Fitness.fitness eb.Fitness.fitness
  done

let test_spec_roundtrip_fixture () =
  let spec = F.spec_of_graphs [ F.chain_graph (); F.fork_graph () ] in
  check_specs_equivalent spec (Codec.spec_of_string (Codec.spec_to_string spec))

let test_spec_roundtrip_smartphone () =
  let spec = Mm_benchgen.Smartphone.spec () in
  check_specs_equivalent spec (Codec.spec_of_string (Codec.spec_to_string spec))

let test_spec_roundtrip_generated () =
  for seed = 1 to 5 do
    let spec = Mm_benchgen.Random_system.generate ~seed () in
    check_specs_equivalent spec (Codec.spec_of_string (Codec.spec_to_string spec))
  done

let test_spec_decode_errors () =
  let expect_error input =
    match Codec.spec_of_string input with
    | exception Codec.Decode_error _ -> ()
    | _ -> Alcotest.fail (Printf.sprintf "accepted %S" input)
  in
  expect_error "(not-a-spec)";
  expect_error "(spec (name x))";
  (* Technology entry referencing an unknown type. *)
  expect_error
    "(spec (name x) (types (type (id 0) (name A)))\n\
     (architecture (name a) (pe (id 0) (name g) (kind gpp) (static-power 0)))\n\
     (technology (impl (type 7) (pe 0) (time 1) (power 1)))\n\
     (mode (id 0) (name m) (period 1) (probability 1)\n\
     (tasks (task (id 0) (name t) (type 0))) (edges)))"

let test_mapping_roundtrip () =
  let spec = F.spec_of_graphs [ F.chain_graph (); F.fork_graph () ] in
  let mapping = Mapping.of_arrays spec [| [| 0; 1; 0 |]; [| 1; 1; 0; 0 |] |] in
  let restored =
    Codec.mapping_of_sexp ~spec (Sexp.parse_one (Sexp.to_string (Codec.mapping_to_sexp mapping)))
  in
  Alcotest.(check (array int)) "same genome" (Mapping.to_genome spec mapping)
    (Mapping.to_genome spec restored)

let test_spec_file_roundtrip () =
  let spec = F.spec_of_graphs [ F.chain_graph () ] in
  let path = Filename.temp_file "mmsyn" ".mms" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.save_spec ~path spec;
      check_specs_equivalent spec (Codec.load_spec ~path))

let () =
  Alcotest.run "mm_io"
    [
      ( "sexp",
        [
          Alcotest.test_case "atoms" `Quick test_parse_atoms;
          Alcotest.test_case "nesting" `Quick test_parse_nested;
          Alcotest.test_case "comments" `Quick test_parse_comments;
          Alcotest.test_case "escapes" `Quick test_parse_escapes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "deep nesting" `Quick test_parse_deeply_nested;
          Alcotest.test_case "long lists wrap" `Quick test_to_string_wraps_long_lists;
          Alcotest.test_case "special atoms quoted" `Quick test_quoting_special_atoms;
          Alcotest.test_case "assoc helpers" `Quick test_assoc_helpers;
          QCheck_alcotest.to_alcotest prop_print_parse_roundtrip;
          QCheck_alcotest.to_alcotest prop_float_roundtrip;
        ] );
      ( "codec",
        [
          Alcotest.test_case "fixture round-trip" `Quick test_spec_roundtrip_fixture;
          Alcotest.test_case "smartphone round-trip" `Quick test_spec_roundtrip_smartphone;
          Alcotest.test_case "generated round-trip" `Quick test_spec_roundtrip_generated;
          Alcotest.test_case "decode errors" `Quick test_spec_decode_errors;
          Alcotest.test_case "mapping round-trip" `Quick test_mapping_roundtrip;
          Alcotest.test_case "file round-trip" `Quick test_spec_file_roundtrip;
        ] );
    ]
