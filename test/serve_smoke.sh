#!/usr/bin/env bash
# End-to-end crash-recovery smoke for mmsynthd.
#
# Phase A runs a reference job to completion on an undisturbed daemon.
# Phase B submits the same job (same options, same id) plus a filler job
# and one invalid spec (which must be rejected with MM0xx diagnostics),
# SIGKILLs the daemon as soon as the job's first checkpoint hits disk,
# restarts it on the same state directory and lets recovery finish the
# job.  The two result.sexp files — power and fitness encoded bit-exactly
# — must be byte-identical.
#
# Run from the repository root; binaries must already be built
# (`dune build bin`).  Exits non-zero on the first failed assertion.
set -euo pipefail

BIN=_build/default/bin
MMSYNTH="$BIN/mmsynth.exe"
MMSYNTHD="$BIN/mmsynthd.exe"
[ -x "$MMSYNTH" ] && [ -x "$MMSYNTHD" ] || {
  echo "serve_smoke: build bin/ first (dune build bin)"; exit 1; }

WORK=$(mktemp -d "${TMPDIR:-/tmp}/serve-smoke.XXXXXX")
DPID=""
cleanup() {
  [ -n "$DPID" ] && kill -9 "$DPID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

# The job the crash lands on: big enough that the first checkpoint
# always precedes completion, with a seed so both phases share one
# trajectory.  It runs the island-model GA so the crash/recovery path
# exercises per-island snapshot state, not just the single engine.
SYNTH_FLAGS=(--generations 60 --population 40 --seed 3
             --islands 3 --migration-every 5 --migrants 2)

"$MMSYNTH" export mul6 > "$WORK/mul6.mms"
"$MMSYNTH" export mul3 > "$WORK/mul3.mms"
echo '(spec (name broken))' > "$WORK/invalid.mms"

start_daemon() { # state_dir -> sets DPID, waits for the socket
  rm -f "$SOCK" # a SIGKILLed daemon leaves its socket file behind
  "$MMSYNTHD" --socket "$SOCK" --state-dir "$1" --checkpoint-every 3 &
  DPID=$!
  for _ in $(seq 1 250); do
    [ -S "$SOCK" ] && return 0
    kill -0 "$DPID" 2>/dev/null || { echo "daemon died on startup"; exit 1; }
    sleep 0.02
  done
  echo "daemon socket never appeared"; exit 1
}

shutdown_daemon() {
  "$MMSYNTH" client shutdown --socket "$SOCK"
  wait "$DPID" || true
  DPID=""
}

# --- phase A: reference run, never interrupted -------------------------------
SOCK="$WORK/ref.sock"
start_daemon "$WORK/state-ref"
"$MMSYNTH" client submit "$WORK/mul6.mms" --socket "$SOCK" "${SYNTH_FLAGS[@]}"
"$MMSYNTH" client watch job-0001 --socket "$SOCK" > /dev/null
shutdown_daemon
grep -q completed "$WORK/state-ref/jobs/job-0001/job.sexp" || {
  echo "reference job did not complete"; exit 1; }

# --- phase B: same submission, daemon SIGKILLed mid-run ----------------------
SOCK="$WORK/crash.sock"
start_daemon "$WORK/state-crash"

"$MMSYNTH" client submit "$WORK/mul6.mms" --socket "$SOCK" "${SYNTH_FLAGS[@]}"
"$MMSYNTH" client submit "$WORK/mul3.mms" --socket "$SOCK" --seed 1

# The invalid spec must be refused at admission, with MM0xx diagnostics,
# without ever creating a job.
set +e
REJECT=$("$MMSYNTH" client submit "$WORK/invalid.mms" --socket "$SOCK" 2>&1)
STATUS=$?
set -e
[ "$STATUS" -ne 0 ] || { echo "invalid spec was admitted"; exit 1; }
echo "$REJECT" | grep -q "MM0" || {
  echo "rejection carried no MM0xx diagnostic:"; echo "$REJECT"; exit 1; }
[ ! -e "$WORK/state-crash/jobs/job-0003" ] || {
  echo "rejected spec left a job directory behind"; exit 1; }

# kill -9 the instant job-0001's first snapshot exists: the job is
# mid-run, and the state directory is whatever the crash left.
CKPT="$WORK/state-crash/jobs/job-0001/checkpoint.snap"
for _ in $(seq 1 500); do
  [ -f "$CKPT" ] && break
  sleep 0.02
done
[ -f "$CKPT" ] || { echo "no checkpoint ever appeared"; exit 1; }
kill -9 "$DPID"
wait "$DPID" 2>/dev/null || true
DPID=""
grep -q completed "$WORK/state-crash/jobs/job-0001/job.sexp" && {
  echo "kill landed after completion; nothing was recovered"; exit 1; }
echo "daemon SIGKILLed with job-0001 in flight"

# Restart on the same state directory: rehydration must resume both
# in-flight jobs and finish them without any client intervention.
start_daemon "$WORK/state-crash"
"$MMSYNTH" client watch job-0001 --socket "$SOCK" > /dev/null
"$MMSYNTH" client watch job-0002 --socket "$SOCK" > /dev/null
shutdown_daemon

for id in job-0001 job-0002; do
  grep -q completed "$WORK/state-crash/jobs/$id/job.sexp" || {
    echo "$id did not complete after recovery"; exit 1; }
done

# The contract: recovery reproduces the uninterrupted run bit for bit.
diff "$WORK/state-ref/jobs/job-0001/result.sexp" \
     "$WORK/state-crash/jobs/job-0001/result.sexp" || {
  echo "recovered result diverged from the reference run"; exit 1; }

echo "serve_smoke: OK — recovered result is bit-identical to the reference"
