(* Tests for Mm_cosynth.Validate and the total Mm_io.Codec API: builtin
   benchmarks must validate clean, the malformed-spec corpus must yield
   exactly its golden MM0xx codes, and fuzzed inputs — byte-level and
   sexp-node-level mutations of valid specs — must only ever produce
   typed diagnostics, never an exception. *)

module Sexp = Mm_io.Sexp
module Codec = Mm_io.Codec
module Validate = Mm_cosynth.Validate

let is_mm_code c =
  String.length c = 5
  && c.[0] = 'M'
  && c.[1] = 'M'
  && String.for_all (fun ch -> ch >= '0' && ch <= '9') (String.sub c 2 3)

let codes diags = List.map (fun (d : Validate.diag) -> d.Validate.code) diags

let pp_diags diags = Format.asprintf "%a" Validate.pp_list diags

(* --- Builtins validate clean ------------------------------------------------ *)

let test_builtins_clean () =
  List.iter
    (fun (name, spec) ->
      match Validate.check_spec spec with
      | [] -> ()
      | diags -> Alcotest.failf "%s not clean:@.%s" name (pp_diags diags))
    [
      ("motivational", Mm_benchgen.Motivational.spec ());
      ("smartphone", Mm_benchgen.Smartphone.spec ());
      ("mul3", Mm_benchgen.Random_system.mul 3);
      ("random:11", Mm_benchgen.Random_system.generate ~seed:11 ());
    ]

(* --- Raw-level semantic checks --------------------------------------------- *)

(* Halving every probability breaks Eq. 1 and nothing else: MM012 must be
   reported, and the build must refuse. *)
let test_probability_sum () =
  let raw = Validate.of_spec (Mm_benchgen.Motivational.spec ()) in
  let halved =
    {
      raw with
      Validate.Raw.modes =
        List.map
          (fun (m : Validate.Raw.mode) ->
            { m with Validate.Raw.probability = m.Validate.Raw.probability /. 2.0 })
          raw.Validate.Raw.modes;
    }
  in
  let diags = Validate.check_raw halved in
  if not (List.mem "MM012" (codes diags)) then
    Alcotest.failf "MM012 missing from {%s}" (String.concat ", " (codes diags));
  match Validate.build halved with
  | Error diags when Validate.has_errors diags -> ()
  | Error diags -> Alcotest.failf "error-free refusal:@.%s" (pp_diags diags)
  | Ok _ -> Alcotest.fail "build accepted a broken probability mass"

let test_build_roundtrip () =
  let spec = Mm_benchgen.Motivational.spec () in
  match Validate.build (Validate.of_spec spec) with
  | Error diags -> Alcotest.failf "rebuild refused:@.%s" (pp_diags diags)
  | Ok rebuilt -> (
    match Validate.check_spec rebuilt with
    | [] -> ()
    | diags -> Alcotest.failf "rebuilt spec not clean:@.%s" (pp_diags diags))

(* --- Source positions ------------------------------------------------------- *)

(* An empty (or comment-only) input must report the true end-of-input
   position, not 1:1. *)
let test_empty_input_position () =
  (match Sexp.parse_one "; only a comment\n" with
  | exception Sexp.Parse_error { line; column; _ } ->
    Alcotest.(check int) "comment-only line" 2 line;
    Alcotest.(check int) "comment-only column" 1 column
  | _ -> Alcotest.fail "comment-only input accepted");
  (match Sexp.parse_one "   ; x" with
  | exception Sexp.Parse_error { line; column; _ } ->
    Alcotest.(check int) "blank line" 1 line;
    Alcotest.(check int) "blank column" 7 column
  | _ -> Alcotest.fail "blank input accepted");
  match Codec.check_string "; spec went missing\n" with
  | None, [ d ] ->
    Alcotest.(check string) "code" "MM001" d.Validate.code;
    Alcotest.(check (option (pair int int))) "position" (Some (2, 1)) d.Validate.pos
  | _, diags -> Alcotest.failf "unexpected diagnostics:@.%s" (pp_diags diags)

let test_diag_positions () =
  let text =
    "(spec\n" ^ "  (name p)\n" ^ "  (types (type (id 0) (name A)))\n"
    ^ "  (architecture (name a) (pe (id 0) (name G) (kind gpp) (static-power 0)))\n"
    ^ "  (technology (impl (type 0) (pe 0) (time 0.01) (power 0.5)))\n"
    ^ "  (mode (id 0) (name M) (period 1) (probability 1)\n"
    ^ "    (tasks (task (id 0) (name t) (type 0)))\n"
    ^ "    (edges (edge (src 0) (dst 9) (data 0)))))\n"
  in
  match Codec.spec_of_string_result text with
  | Ok _ -> Alcotest.fail "dangling edge accepted"
  | Error diags -> (
    match List.find_opt (fun (d : Validate.diag) -> d.Validate.code = "MM022") diags with
    | None -> Alcotest.failf "MM022 missing:@.%s" (pp_diags diags)
    | Some d -> (
      match d.Validate.pos with
      | Some (8, _) -> ()
      | pos ->
        Alcotest.failf "MM022 at %s, expected line 8"
          (match pos with
          | Some (l, c) -> Printf.sprintf "%d:%d" l c
          | None -> "no position")))

(* [dune runtest] runs test binaries from the test directory, [dune exec]
   from the project root: resolve the corpus relative to the executable,
   which sits next to the copied corpus in _build either way. *)
let corpus_dir =
  lazy
    (match
       List.find_opt Sys.file_exists
         [
           "corpus";
           "test/corpus";
           Filename.concat (Filename.dirname Sys.executable_name) "corpus";
         ]
     with
    | Some dir -> dir
    | None -> Alcotest.fail "corpus directory not found")

(* Warnings alone must not block loading. *)
let test_warnings_do_not_block () =
  let path = Filename.concat (Lazy.force corpus_dir) "warn-deadline.mms" in
  (match Codec.load_spec_result ~path with
  | Ok _ -> ()
  | Error diags -> Alcotest.failf "warning-only spec refused:@.%s" (pp_diags diags));
  match Codec.check_file ~path with
  | Some _, [ d ] ->
    Alcotest.(check string) "code" "MM028" d.Validate.code;
    Alcotest.(check bool) "warning" true (d.Validate.severity = Validate.Warning)
  | _, diags -> Alcotest.failf "unexpected diagnostics:@.%s" (pp_diags diags)

(* --- The malformed-spec corpus ---------------------------------------------- *)

(* Each corpus file declares its own golden outcome in leading comments:
     ; expect: MM012 MM022     codes that must be reported
     ; exit: 2                 Validate.exit_code of the diagnostics *)
let parse_corpus_header path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let expect = ref [] and exit_code = ref None in
      (try
         while true do
           let line = input_line ic in
           let strip prefix =
             if String.length line >= String.length prefix
                && String.sub line 0 (String.length prefix) = prefix
             then
               Some
                 (String.trim
                    (String.sub line (String.length prefix)
                       (String.length line - String.length prefix)))
             else None
           in
           match strip "; expect:" with
           | Some rest ->
             expect := !expect @ String.split_on_char ' ' rest
           | None -> (
             match strip "; exit:" with
             | Some rest -> exit_code := int_of_string_opt rest
             | None -> if not (String.length line > 0 && line.[0] = ';') then raise Exit)
         done
       with End_of_file | Exit -> ());
      let expect = List.filter (fun c -> c <> "") !expect in
      match !exit_code with
      | Some e -> (expect, e)
      | None -> Alcotest.failf "%s: no `; exit:` header" path)

let test_corpus () =
  let dir = Lazy.force corpus_dir in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mms")
    |> List.sort compare
  in
  if files = [] then Alcotest.fail "corpus directory is empty";
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      let expect, exit_expected = parse_corpus_header path in
      if expect = [] then Alcotest.failf "%s: no expected codes" f;
      let _spec, diags = Codec.check_file ~path in
      let cs = codes diags in
      List.iter
        (fun c ->
          if not (is_mm_code c) then Alcotest.failf "%s: malformed code %S" f c)
        cs;
      List.iter
        (fun c ->
          if not (List.mem c cs) then
            Alcotest.failf "%s: expected %s, got {%s}:@.%s" f c (String.concat ", " cs)
              (pp_diags diags))
        expect;
      Alcotest.(check int) (f ^ " exit code") exit_expected (Validate.exit_code diags))
    files

(* --- Fuzzers ---------------------------------------------------------------- *)

let fuzz_count =
  match Option.bind (Sys.getenv_opt "MM_FUZZ_COUNT") int_of_string_opt with
  | Some n when n > 0 -> n
  | Some _ | None -> 1000

let base_texts =
  lazy
    [
      Codec.spec_to_string (Mm_benchgen.Motivational.spec ());
      Codec.spec_to_string (Mm_benchgen.Smartphone.spec ());
    ]

let pick_base which =
  let bases = Lazy.force base_texts in
  List.nth bases (abs which mod List.length bases)

(* A mutated load may still be valid (the mutation hit a comment or a
   name); what must always hold: no exception escapes, and a refusal
   carries only well-formed error diagnostics. *)
let well_typed_outcome = function
  | Ok _ -> true
  | Error diags ->
    diags <> []
    && Validate.has_errors diags
    && List.for_all (fun (d : Validate.diag) -> is_mm_code d.Validate.code) diags

let mutate_bytes st text =
  let mutations = 1 + Random.State.int st 4 in
  let out = ref text in
  for _ = 1 to mutations do
    let s = !out in
    let len = String.length s in
    if len > 0 then
      match Random.State.int st 5 with
      | 0 ->
        (* Overwrite one byte, syntax characters and raw bytes included. *)
        let i = Random.State.int st len in
        let pool = "()\";.-e0987654321azZ \n\000\255" in
        let b = Bytes.of_string s in
        Bytes.set b i pool.[Random.State.int st (String.length pool)];
        out := Bytes.to_string b
      | 1 -> out := String.sub s 0 (Random.State.int st len)
      | 2 ->
        let i = Random.State.int st len in
        let l = min (len - i) (1 + Random.State.int st 40) in
        out := String.sub s 0 i ^ String.sub s (i + l) (len - i - l)
      | 3 ->
        let i = Random.State.int st (len + 1) in
        let frags =
          [| "("; ")"; "\""; "(name x)"; "(probability 2)"; "-1"; "1e309"; "nan"; ";" |]
        in
        out :=
          String.sub s 0 i
          ^ frags.(Random.State.int st (Array.length frags))
          ^ String.sub s i (len - i)
      | _ ->
        let i = Random.State.int st len in
        let l = min (len - i) (1 + Random.State.int st 40) in
        out := String.sub s 0 (i + l) ^ String.sub s i (len - i)
  done;
  !out

let prop_byte_fuzz =
  QCheck.Test.make ~name:"byte fuzz: load_spec_result never raises" ~count:fuzz_count
    QCheck.(pair small_nat (int_bound 0x3FFFFFFF))
    (fun (which, seed) ->
      let st = Random.State.make [| seed; 0xB17E |] in
      let mutated = mutate_bytes st (pick_base which) in
      let path = Filename.temp_file "mmfuzz" ".mms" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let oc = open_out_bin path in
          output_string oc mutated;
          close_out oc;
          match Codec.load_spec_result ~path with
          | outcome -> well_typed_outcome outcome
          | exception exn ->
            QCheck.Test.fail_reportf "load_spec_result raised %s on:@.%s"
              (Printexc.to_string exn) (String.escaped mutated)))

let garbage_atoms = [| "x"; "-7"; "3.5e308"; "nan"; ""; "spec"; "99999999999999999999" |]

let rec mutate_node st sexp =
  match sexp with
  | Sexp.Atom _ when Random.State.int st 2 = 0 ->
    Sexp.Atom garbage_atoms.(Random.State.int st (Array.length garbage_atoms))
  | Sexp.Atom a -> Sexp.List [ Sexp.Atom a ]
  | Sexp.List l -> (
    let n = List.length l in
    match Random.State.int st 5 with
    | 0 when n > 0 ->
      let i = Random.State.int st n in
      Sexp.List (List.filteri (fun j _ -> j <> i) l)
    | 1 when n > 0 ->
      let i = Random.State.int st n in
      Sexp.List (l @ [ List.nth l i ])
    | (2 | 3) when n > 0 ->
      let i = Random.State.int st n in
      Sexp.List (List.mapi (fun j x -> if j = i then mutate_node st x else x) l)
    | _ -> Sexp.List (Sexp.Atom "zzz" :: l))

let prop_node_fuzz =
  QCheck.Test.make ~name:"node fuzz: spec_of_string_result never raises"
    ~count:fuzz_count
    QCheck.(pair small_nat (int_bound 0x3FFFFFFF))
    (fun (which, seed) ->
      let st = Random.State.make [| seed; 0x5E97 |] in
      let base = Sexp.parse_one (pick_base which) in
      let mutated = ref base in
      for _ = 1 to 1 + Random.State.int st 3 do
        mutated := mutate_node st !mutated
      done;
      let text = Sexp.to_string !mutated in
      match Codec.spec_of_string_result text with
      | outcome -> well_typed_outcome outcome
      | exception exn ->
        QCheck.Test.fail_reportf "spec_of_string_result raised %s on:@.%s"
          (Printexc.to_string exn) text)

let () =
  Alcotest.run "validate"
    [
      ( "semantics",
        [
          Alcotest.test_case "builtins clean" `Quick test_builtins_clean;
          Alcotest.test_case "Eq. 1 probability mass" `Quick test_probability_sum;
          Alcotest.test_case "build round-trip" `Quick test_build_roundtrip;
        ] );
      ( "positions",
        [
          Alcotest.test_case "empty input" `Quick test_empty_input_position;
          Alcotest.test_case "diagnostic position" `Quick test_diag_positions;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "golden codes" `Quick test_corpus;
          Alcotest.test_case "warnings load" `Quick test_warnings_do_not_block;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_byte_fuzz;
          QCheck_alcotest.to_alcotest prop_node_fuzz;
        ] );
    ]
