(* End-to-end integration tests: full synthesis runs over generated
   benchmarks and the smart phone, checking the cross-module invariants
   the paper's experiments rely on. *)

module Graph = Mm_taskgraph.Graph
module Mode = Mm_omsm.Mode
module Omsm = Mm_omsm.Omsm
module Schedule = Mm_sched.Schedule
module Scaling = Mm_dvs.Scaling
module Spec = Mm_cosynth.Spec
module Fitness = Mm_cosynth.Fitness
module Synthesis = Mm_cosynth.Synthesis
module Experiment = Mm_cosynth.Experiment
module Engine = Mm_ga.Engine
module Random_system = Mm_benchgen.Random_system
module Stats = Mm_util.Stats

let quick_ga = { Engine.default_config with population_size = 24; max_generations = 40 }

let quick_config ?(weighting = Fitness.True_probabilities) ?(dvs = Fitness.No_dvs) () =
  {
    Synthesis.default_config with
    fitness = { Fitness.default_config with weighting; dvs };
    ga = quick_ga;
  }

(* Every schedule inside a synthesis result must be structurally valid. *)
let check_schedules spec (eval : Fitness.eval) =
  let omsm = Spec.omsm spec in
  Array.iteri
    (fun mode sched ->
      let graph = Mode.graph (Omsm.mode omsm mode) in
      match Schedule.validate sched ~graph with
      | Ok () -> ()
      | Error msg -> Alcotest.fail (Printf.sprintf "mode %d: %s" mode msg))
    eval.Fitness.schedules

let test_mul1_end_to_end () =
  let spec = Random_system.mul 1 in
  let result = Synthesis.run ~config:(quick_config ()) ~spec ~seed:1 () in
  Alcotest.(check bool) "positive power" true (Synthesis.average_power result > 0.0);
  check_schedules spec result.Synthesis.eval

let test_probability_weighting_helps_on_average () =
  (* Over a few benchmarks and seeds, the probability-aware arm must win
     or tie on true average power — the paper's central claim. *)
  let total_base = ref 0.0 and total_prop = ref 0.0 in
  List.iter
    (fun i ->
      let spec = Random_system.mul i in
      let comparison =
        Experiment.compare ~ga:quick_ga ~spec ~runs:2 ~seed:100 ()
      in
      total_base := !total_base +. comparison.Experiment.without_probabilities.Experiment.power.Stats.mean;
      total_prop := !total_prop +. comparison.Experiment.with_probabilities.Experiment.power.Stats.mean)
    [ 1; 5 ];
  Alcotest.(check bool) "proposed wins in aggregate" true (!total_prop < !total_base)

let test_dvs_reduces_power_same_mapping () =
  (* For identical genomes, enabling DVS never increases true power. *)
  let spec = Random_system.mul 2 in
  let rng = Mm_util.Prng.create ~seed:4 in
  let counts = Spec.gene_counts spec in
  for _ = 1 to 10 do
    let genome = Mm_ga.Genome.random rng ~counts in
    let nominal = Fitness.evaluate Fitness.default_config spec genome in
    let dvs =
      Fitness.evaluate
        { Fitness.default_config with dvs = Fitness.Dvs Scaling.default_config }
        spec genome
    in
    Alcotest.(check bool) "dvs <= nominal" true
      (dvs.Fitness.true_power <= nominal.Fitness.true_power +. 1e-12)
  done

let test_scaled_schedules_meet_deadlines () =
  (* After DVS, stretched finish times stay within min(deadline, period)
     whenever the input schedule was feasible. *)
  let spec = Random_system.mul 3 in
  let omsm = Spec.omsm spec in
  let result =
    Synthesis.run
      ~config:(quick_config ~dvs:(Fitness.Dvs Scaling.default_config) ())
      ~spec ~seed:2 ()
  in
  Array.iteri
    (fun mode (scaling : Scaling.t) ->
      if scaling.Scaling.feasible then begin
        let mode_rec = Omsm.mode omsm mode in
        let graph = Mode.graph mode_rec in
        Array.iteri
          (fun task finish ->
            let bound =
              match Mm_taskgraph.Task.deadline (Graph.task graph task) with
              | None -> Mode.period mode_rec
              | Some d -> Float.min d (Mode.period mode_rec)
            in
            Alcotest.(check bool)
              (Printf.sprintf "mode %d task %d in time" mode task)
              true
              (finish <= bound +. 1e-9))
          scaling.Scaling.stretched_finish
      end)
    result.Synthesis.eval.Fitness.scalings

let test_smartphone_quick_synthesis () =
  let spec = Mm_benchgen.Smartphone.spec () in
  let result = Synthesis.run ~config:(quick_config ()) ~spec ~seed:5 () in
  check_schedules spec result.Synthesis.eval;
  (* The dominant RLC mode must not keep every component powered: with
     three PEs and eight tasks a good mapping exists, but even a quick
     run must at least produce a structurally sound power report. *)
  Alcotest.(check int) "eight mode powers" 8
    (Array.length result.Synthesis.eval.Fitness.mode_powers);
  Alcotest.(check bool) "positive power" true (Synthesis.average_power result > 0.0)

let test_experiment_comparison_structure () =
  let spec = Random_system.mul 5 in
  let comparison = Experiment.compare ~ga:quick_ga ~spec ~runs:3 ~seed:7 () in
  let arm = comparison.Experiment.with_probabilities in
  Alcotest.(check int) "three runs" 3 arm.Experiment.power.Stats.n;
  Alcotest.(check bool) "best <= mean" true
    (Synthesis.average_power arm.Experiment.best <= arm.Experiment.power.Stats.mean +. 1e-12);
  (* Reduction consistent with the two means. *)
  let recomputed =
    Stats.percent_reduction
      ~from:comparison.Experiment.without_probabilities.Experiment.power.Stats.mean
      ~to_:arm.Experiment.power.Stats.mean
  in
  Alcotest.(check (float 1e-9)) "reduction" recomputed comparison.Experiment.reduction_percent

let test_serialisation_preserves_synthesis () =
  (* Export a generated benchmark, reload it, synthesise both: identical
     results — the round-trip loses nothing the synthesis reads. *)
  let spec = Random_system.mul 4 in
  let reloaded = Mm_io.Codec.spec_of_string (Mm_io.Codec.spec_to_string spec) in
  let run spec = Synthesis.run ~config:(quick_config ()) ~spec ~seed:13 () in
  let original = run spec and restored = run reloaded in
  Alcotest.(check (array int)) "same genome" original.Synthesis.genome
    restored.Synthesis.genome;
  Alcotest.(check (float 1e-15)) "same power" (Synthesis.average_power original)
    (Synthesis.average_power restored)

let test_annealing_comparable_to_ga () =
  (* At matched budgets SA should land within an order of magnitude of the
     GA — it shares fitness and anchors, so a wild gap would indicate a
     wiring bug. *)
  let spec = Random_system.mul 5 in
  let ga = Synthesis.run ~config:(quick_config ()) ~spec ~seed:3 () in
  let sa =
    Mm_cosynth.Annealing.run
      ~config:{ Mm_cosynth.Annealing.default_config with Mm_cosynth.Annealing.steps = 2000 }
      ~spec ~seed:3 ()
  in
  let ratio =
    sa.Mm_cosynth.Annealing.eval.Fitness.true_power /. Synthesis.average_power ga
  in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.2f within [0.2, 10]" ratio)
    true
    (ratio > 0.2 && ratio < 10.0)

let test_synthesis_reproducible_across_processes () =
  (* Fixed seed + fixed benchmark: the exact genome is stable, which the
     EXPERIMENTS.md records depend on. *)
  let spec = Random_system.mul 6 in
  let a = Synthesis.run ~config:(quick_config ()) ~spec ~seed:9 () in
  let b = Synthesis.run ~config:(quick_config ()) ~spec ~seed:9 () in
  Alcotest.(check (array int)) "same genome" a.Synthesis.genome b.Synthesis.genome

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "mul1 synthesis" `Slow test_mul1_end_to_end;
          Alcotest.test_case "probability weighting helps" `Slow
            test_probability_weighting_helps_on_average;
          Alcotest.test_case "dvs reduces power" `Slow test_dvs_reduces_power_same_mapping;
          Alcotest.test_case "scaled deadlines" `Slow test_scaled_schedules_meet_deadlines;
          Alcotest.test_case "smartphone quick" `Slow test_smartphone_quick_synthesis;
          Alcotest.test_case "experiment structure" `Slow test_experiment_comparison_structure;
          Alcotest.test_case "serialisation preserves synthesis" `Slow
            test_serialisation_preserves_synthesis;
          Alcotest.test_case "annealing comparable" `Slow test_annealing_comparable_to_ga;
          Alcotest.test_case "reproducible" `Slow test_synthesis_reproducible_across_processes;
        ] );
    ]
