(** Leveled logging to stderr.

    Messages are built lazily — a disabled level costs one atomic load —
    and written in one [output_string] so concurrent domains do not
    interleave partial lines. *)

type level = Quiet | Error | Warn | Info | Debug

val set_level : level -> unit
(** Default level is {!Warn}. *)

val level : unit -> level

val level_of_string : string -> (level, string) result
(** Accepts ["quiet"], ["error"], ["warn"], ["info"], ["debug"]. *)

val level_to_string : level -> string

val error : (unit -> string) -> unit
val warn : (unit -> string) -> unit
val info : (unit -> string) -> unit
val debug : (unit -> string) -> unit
