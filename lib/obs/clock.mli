(** Wall-clock timestamps for trace events, in microseconds since the
    process-wide trace origin (the moment this module was initialised).

    Chrome's [trace_event] format wants microsecond timestamps that fit
    comfortably in a double; anchoring at the process start keeps them
    small.  The clock is [Unix.gettimeofday]-based: resolution is ~1 µs
    on Linux, which is fine for the millisecond-scale phases we time. *)

val now_us : unit -> float
(** Microseconds elapsed since the trace origin. *)
