(** A minimal JSON writer.

    The repository deliberately has no JSON dependency; the observability
    sinks only need to {e emit} JSON (JSONL event logs, Chrome traces,
    [metrics.json]), so a Buffer-based writer covers everything.  Readers
    live in the test suite, which parses what these functions produce. *)

val escape : Buffer.t -> string -> unit
(** Append the JSON string-escaped form of the argument (no quotes). *)

val str : Buffer.t -> string -> unit
(** Append a quoted, escaped JSON string. *)

val number : Buffer.t -> float -> unit
(** Append a JSON number.  Non-finite floats become [null] (JSON has no
    NaN/infinity); integral values print without an exponent. *)

val int : Buffer.t -> int -> unit

val bool : Buffer.t -> bool -> unit

val field_sep : Buffer.t -> first:bool ref -> unit
(** Append [","] unless [!first], and clear [first]: the usual comma
    state machine for hand-rolled object/array emission. *)

val string_fields : Buffer.t -> (string * string) list -> unit
(** Append [{"k":"v",…}] for an association list of string fields. *)
