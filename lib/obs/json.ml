let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let str b s =
  Buffer.add_char b '"';
  escape b s;
  Buffer.add_char b '"'

let number b f =
  if not (Float.is_finite f) then Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let int b i = Buffer.add_string b (string_of_int i)
let bool b v = Buffer.add_string b (if v then "true" else "false")

let field_sep b ~first =
  if !first then first := false else Buffer.add_char b ','

let string_fields b fields =
  Buffer.add_char b '{';
  let first = ref true in
  List.iter
    (fun (k, v) ->
      field_sep b ~first;
      str b k;
      Buffer.add_char b ':';
      str b v)
    fields;
  Buffer.add_char b '}'
