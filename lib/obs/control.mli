(** Global observability switches.

    Everything in [mm_obs] is disabled by default: a disabled probe costs
    one atomic load and a branch, so instrumented code paths keep their
    tier-1 runtimes and determinism.  The switches are atomics so worker
    domains observe a consistent value without locking; they are meant to
    be flipped before work is submitted (CLI start-up, bench harness),
    not concurrently with it. *)

val tracing_on : unit -> bool
(** Spans and instants are emitted (at least one trace sink is open). *)

val fine_on : unit -> bool
(** Fine-grained (inner-loop) spans are emitted too.  Implies nothing
    about {!tracing_on}: both are checked at the probe site. *)

val metrics_on : unit -> bool
(** Counters, gauges, histograms and series record values. *)

val set_tracing : bool -> unit
val set_fine : bool -> unit
val set_metrics : bool -> unit
