(** A probe is one instrumentation site: a named region whose every
    execution is timed into a duration histogram (when metrics are on)
    and emitted as a trace span (when tracing is on).

    Handles are created once at module initialisation; running a probe
    with everything disabled is two atomic loads and a call of the
    wrapped function, which is what keeps the instrumented inner loops
    at their uninstrumented speed.

    [fine] marks inner-loop probes (per-fitness-evaluation phases,
    per-mode scheduling and voltage scaling): their spans are only
    emitted when {!Control.fine_on} is also set, so a default traced run
    stays at the coarse granularity — GA generations, evaluation
    batches, restarts — and the trace file stays small.  Fine probes
    still feed their histograms whenever metrics are on. *)

type t

val create : ?fine:bool -> string -> t
(** [create name] registers the histogram [name ^ "_us"] (microsecond
    buckets) and names the trace span [name].  [fine] defaults to
    [false]. *)

val run : ?args:(unit -> (string * string) list) -> t -> (unit -> 'a) -> 'a
(** Run the wrapped function under the probe.  Exceptions propagate;
    the duration is recorded either way. *)
