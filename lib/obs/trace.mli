(** Nestable timed spans emitted to pluggable sinks.

    Two sink formats are built in:

    - {b JSONL}: one JSON object per line, one line per event — easy to
      grep and to post-process.
    - {b Chrome [trace_event]}: a [{"traceEvents":[…]}] file of complete
      ("ph":"X") events that loads directly in [chrome://tracing] and
      {{:https://ui.perfetto.dev}Perfetto}.  Span nesting is implied by
      timestamp containment per thread id, which is how those viewers
      render flame graphs.

    Spans are emitted {e at span end} (children before parents) with the
    start timestamp, duration, the emitting domain's id as [tid], and
    the nesting depth at the time the span was opened (tracked
    per-domain, so concurrent worker spans do not interleave depths).

    Emission is domain-safe: an event is formatted outside the writer
    lock and appended to every sink under it.  With tracing disabled
    ({!Control.tracing_on} false, the default) {!with_span} is one
    atomic load and a call of the wrapped function. *)

val open_jsonl : path:string -> unit
(** Open a JSONL sink and enable tracing.  Raises [Sys_error] if the
    file cannot be created. *)

val open_chrome : path:string -> unit
(** Open a Chrome [trace_event] sink and enable tracing. *)

val with_span :
  ?args:(unit -> (string * string) list) -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] and emits one complete-span event for
    it, even when [f] raises.  [args] is only evaluated when the event
    is actually emitted, so argument construction costs nothing while
    tracing is disabled. *)

val instant : ?args:(unit -> (string * string) list) -> string -> unit
(** Emit a zero-duration marker event. *)

val flush : unit -> unit

val close : unit -> unit
(** Finalise every sink (the Chrome footer makes the file strict JSON),
    close the channels and disable tracing.  Idempotent. *)
