type counter = int Atomic.t

type gauge = float Atomic.t

type histogram = {
  h_buckets : float array;
  h_counts : int Atomic.t array;  (* length buckets + 1, last = overflow *)
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
}

type series = { mutable points : float list (* newest first *) }

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Series of series

(* One registry lock: registration happens at module initialisation and
   series appends happen on the coordinating domain, so the lock is
   never contended on a hot path.  Counter/gauge/histogram *recording*
   never takes it. *)
let lock = Mutex.create ()

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let find_or_add name make =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.replace registry name m;
        m)

let counter name =
  match find_or_add name (fun () -> Counter (Atomic.make 0)) with
  | Counter c -> c
  | _ -> invalid_arg ("Metrics.counter: " ^ name ^ " registered with another type")

let incr ?(by = 1) c = if Control.metrics_on () then ignore (Atomic.fetch_and_add c by)

let gauge name =
  match find_or_add name (fun () -> Gauge (Atomic.make 0.0)) with
  | Gauge g -> g
  | _ -> invalid_arg ("Metrics.gauge: " ^ name ^ " registered with another type")

let set g v = if Control.metrics_on () then Atomic.set g v

let default_time_buckets =
  (* 1-2-5 per decade, 1 µs .. 10 s. *)
  [|
    1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1e3; 2e3; 5e3; 1e4; 2e4;
    5e4; 1e5; 2e5; 5e5; 1e6; 2e6; 5e6; 1e7;
  |]

let histogram ?(buckets = default_time_buckets) name =
  Array.iteri
    (fun i b ->
      if i > 0 && buckets.(i - 1) >= b then
        invalid_arg ("Metrics.histogram: " ^ name ^ " buckets not increasing"))
    buckets;
  let make () =
    Histogram
      {
        h_buckets = Array.copy buckets;
        h_counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
        h_count = Atomic.make 0;
        h_sum = Atomic.make 0.0;
        h_min = Atomic.make infinity;
        h_max = Atomic.make neg_infinity;
      }
  in
  match find_or_add name make with
  | Histogram h -> h
  | _ -> invalid_arg ("Metrics.histogram: " ^ name ^ " registered with another type")

let rec atomic_update cell f =
  let v = Atomic.get cell in
  let v' = f v in
  if v' <> v && not (Atomic.compare_and_set cell v v') then atomic_update cell f

let bucket_index buckets v =
  (* First bucket whose upper bound admits [v]; length buckets = overflow. *)
  let n = Array.length buckets in
  let rec go lo hi =
    (* Invariant: every bucket < lo is too small, every bucket >= hi admits v. *)
    if lo >= hi then lo else
      let mid = (lo + hi) / 2 in
      if v <= buckets.(mid) then go lo mid else go (mid + 1) hi
  in
  go 0 n

let observe h v =
  if Control.metrics_on () then begin
    ignore (Atomic.fetch_and_add h.h_counts.(bucket_index h.h_buckets v) 1);
    ignore (Atomic.fetch_and_add h.h_count 1);
    atomic_update h.h_sum (fun s -> s +. v);
    atomic_update h.h_min (fun m -> Float.min m v);
    atomic_update h.h_max (fun m -> Float.max m v)
  end

let series name =
  match find_or_add name (fun () -> Series { points = [] }) with
  | Series s -> s
  | _ -> invalid_arg ("Metrics.series: " ^ name ^ " registered with another type")

let append s v =
  if Control.metrics_on () then locked (fun () -> s.points <- v :: s.points)

type histogram_snapshot = {
  buckets : float array;
  counts : int array;
  count : int;
  sum : float;
  min : float;
  max : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
  series : (string * float array) list;
}

let snapshot () =
  locked (fun () ->
      let by_name (a, _) (b, _) = compare (a : string) b in
      let counters = ref [] and gauges = ref [] in
      let histograms = ref [] and all_series = ref [] in
      Hashtbl.iter
        (fun name m ->
          match m with
          | Counter c -> counters := (name, Atomic.get c) :: !counters
          | Gauge g -> gauges := (name, Atomic.get g) :: !gauges
          | Histogram h ->
            let snap =
              {
                buckets = Array.copy h.h_buckets;
                counts = Array.map Atomic.get h.h_counts;
                count = Atomic.get h.h_count;
                sum = Atomic.get h.h_sum;
                min = Atomic.get h.h_min;
                max = Atomic.get h.h_max;
              }
            in
            histograms := (name, snap) :: !histograms
          | Series s ->
            all_series :=
              (name, Array.of_list (List.rev s.points)) :: !all_series)
        registry;
      {
        counters = List.sort by_name !counters;
        gauges = List.sort by_name !gauges;
        histograms = List.sort by_name !histograms;
        series = List.sort by_name !all_series;
      })

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c 0
          | Gauge g -> Atomic.set g 0.0
          | Histogram h ->
            Array.iter (fun c -> Atomic.set c 0) h.h_counts;
            Atomic.set h.h_count 0;
            Atomic.set h.h_sum 0.0;
            Atomic.set h.h_min infinity;
            Atomic.set h.h_max neg_infinity
          | Series s -> s.points <- [])
        registry)

let to_json_string () =
  let snap = snapshot () in
  let b = Buffer.create 4096 in
  let obj fields emit =
    Buffer.add_char b '{';
    let first = ref true in
    List.iter
      (fun (name, v) ->
        Json.field_sep b ~first;
        Json.str b name;
        Buffer.add_char b ':';
        emit v)
      fields;
    Buffer.add_char b '}'
  in
  let float_array a =
    Buffer.add_char b '[';
    Array.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char b ',';
        Json.number b v)
      a;
    Buffer.add_char b ']'
  in
  Buffer.add_string b "{\"counters\":";
  obj snap.counters (fun v -> Json.int b v);
  Buffer.add_string b ",\"gauges\":";
  obj snap.gauges (fun v -> Json.number b v);
  Buffer.add_string b ",\"histograms\":";
  obj snap.histograms (fun (h : histogram_snapshot) ->
      Buffer.add_string b "{\"le\":";
      float_array h.buckets;
      Buffer.add_string b ",\"counts\":[";
      Array.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char b ',';
          Json.int b c)
        h.counts;
      Buffer.add_string b "],\"count\":";
      Json.int b h.count;
      Buffer.add_string b ",\"sum\":";
      Json.number b h.sum;
      Buffer.add_string b ",\"min\":";
      Json.number b h.min;
      Buffer.add_string b ",\"max\":";
      Json.number b h.max;
      Buffer.add_char b '}');
  Buffer.add_string b ",\"series\":";
  obj snap.series float_array;
  Buffer.add_string b "}";
  Buffer.contents b
