let origin = Unix.gettimeofday ()
let now_us () = (Unix.gettimeofday () -. origin) *. 1e6
