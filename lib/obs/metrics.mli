(** A process-global metrics registry: counters, gauges, fixed-bucket
    histograms and append-only series.

    Instrumentation sites create their handles once at module
    initialisation ([let m = Metrics.counter "pool/batches"]) and then
    record through them; creation is idempotent — the same name always
    yields the same underlying cell, so libraries and tests can share
    metrics by name alone.

    Recording is gated on {!Control.metrics_on} and is domain-safe:
    counters and histogram buckets are atomics, so worker domains can
    record concurrently; gauges are last-writer-wins atomics; series
    appends take the registry lock (they happen on the coordinating
    domain — per-generation GA statistics — where contention is nil).

    {!reset} zeroes every value but keeps the registered handles, which
    is how the bench harness separates per-run numbers from earlier runs
    sharing the same process (and the same caches). *)

type counter
type gauge
type histogram
type series

val counter : string -> counter
val incr : ?by:int -> counter -> unit

val gauge : string -> gauge
val set : gauge -> float -> unit

val default_time_buckets : float array
(** Upper bounds in microseconds, log-spaced 1 µs … 10 s: the default
    for phase-duration histograms. *)

val histogram : ?buckets:float array -> string -> histogram
(** [histogram ~buckets name] registers a histogram whose bucket [i]
    counts observations [v] with [buckets.(i-1) < v <= buckets.(i)]
    (upper-bound inclusive, Prometheus-style), plus one overflow bucket.
    [buckets] must be strictly increasing; it defaults to
    {!default_time_buckets}.  Re-registering an existing name returns
    the existing histogram unchanged. *)

val observe : histogram -> float -> unit

val series : string -> series
val append : series -> float -> unit
(** Append one point; the x-axis is the append index (for the GA series,
    the generation number in run order). *)

type histogram_snapshot = {
  buckets : float array;
  counts : int array;  (** length [Array.length buckets + 1]; last = overflow. *)
  count : int;
  sum : float;
  min : float;  (** [+∞] when empty. *)
  max : float;  (** [-∞] when empty. *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
  series : (string * float array) list;
}
(** All association lists are sorted by name. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every counter, gauge, histogram and series; registered handles
    stay valid. *)

val to_json_string : unit -> string
(** The full registry as one JSON object:
    [{"counters":{…},"gauges":{…},"histograms":{…},"series":{…}}]. *)
