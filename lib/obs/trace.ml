type kind = Jsonl | Chrome

type sink = { kind : kind; oc : out_channel; mutable n_events : int }

let lock = Mutex.create ()

let sinks : sink list ref = ref []

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let depth_key = Domain.DLS.new_key (fun () -> ref 0)

let tid () = (Domain.self () :> int)

let open_sink kind path =
  let oc = open_out path in
  if kind = Chrome then output_string oc "{\"traceEvents\":[\n";
  locked (fun () -> sinks := { kind; oc; n_events = 0 } :: !sinks);
  Control.set_tracing true

let open_jsonl ~path = open_sink Jsonl path

let open_chrome ~path = open_sink Chrome path

type event = {
  name : string;
  ts : float;
  dur : float option;  (* None for instants *)
  tid : int;
  depth : int;
  args : (string * string) list;
}

let jsonl_line e =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"ev\":";
  Json.str b (match e.dur with Some _ -> "span" | None -> "instant");
  Buffer.add_string b ",\"name\":";
  Json.str b e.name;
  Buffer.add_string b ",\"ts_us\":";
  Json.number b e.ts;
  (match e.dur with
  | Some dur ->
    Buffer.add_string b ",\"dur_us\":";
    Json.number b dur
  | None -> ());
  Buffer.add_string b ",\"tid\":";
  Json.int b e.tid;
  Buffer.add_string b ",\"depth\":";
  Json.int b e.depth;
  if e.args <> [] then begin
    Buffer.add_string b ",\"args\":";
    Json.string_fields b e.args
  end;
  Buffer.add_string b "}\n";
  Buffer.contents b

let chrome_record e =
  let b = Buffer.create 128 in
  Buffer.add_string b "{\"name\":";
  Json.str b e.name;
  Buffer.add_string b ",\"cat\":\"mmsyn\",\"ph\":";
  (match e.dur with
  | Some dur ->
    Buffer.add_string b "\"X\",\"dur\":";
    Json.number b dur
  | None -> Buffer.add_string b "\"i\",\"s\":\"t\"");
  Buffer.add_string b ",\"ts\":";
  Json.number b e.ts;
  Buffer.add_string b ",\"pid\":0,\"tid\":";
  Json.int b e.tid;
  if e.args <> [] then begin
    Buffer.add_string b ",\"args\":";
    Json.string_fields b e.args
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let emit e =
  (* Format outside the lock; only the channel writes are serialised. *)
  let targets = !sinks in
  let line = lazy (jsonl_line e) in
  let record = lazy (chrome_record e) in
  if targets <> [] then
    locked (fun () ->
        List.iter
          (fun sink ->
            match sink.kind with
            | Jsonl -> output_string sink.oc (Lazy.force line)
            | Chrome ->
              if sink.n_events > 0 then output_string sink.oc ",\n";
              output_string sink.oc (Lazy.force record);
              sink.n_events <- sink.n_events + 1)
          !sinks)

let eval_args args = match args with None -> [] | Some f -> f ()

let with_span ?args name f =
  if not (Control.tracing_on ()) then f ()
  else begin
    let depth = Domain.DLS.get depth_key in
    let d = !depth in
    depth := d + 1;
    let t0 = Clock.now_us () in
    let finish () =
      let t1 = Clock.now_us () in
      depth := d;
      emit
        {
          name;
          ts = t0;
          dur = Some (t1 -. t0);
          tid = tid ();
          depth = d;
          args = eval_args args;
        }
    in
    match f () with
    | v ->
      finish ();
      v
    | exception e ->
      finish ();
      raise e
  end

let instant ?args name =
  if Control.tracing_on () then
    emit
      {
        name;
        ts = Clock.now_us ();
        dur = None;
        tid = tid ();
        depth = !(Domain.DLS.get depth_key);
        args = eval_args args;
      }

let flush () = locked (fun () -> List.iter (fun s -> flush s.oc) !sinks)

let close () =
  locked (fun () ->
      List.iter
        (fun s ->
          if s.kind = Chrome then output_string s.oc "\n]}\n";
          close_out s.oc)
        !sinks;
      sinks := []);
  Control.set_tracing false
