type t = { name : string; fine : bool; hist : Metrics.histogram }

let create ?(fine = false) name =
  { name; fine; hist = Metrics.histogram (name ^ "_us") }

let run ?args p f =
  let traced = Control.tracing_on () && ((not p.fine) || Control.fine_on ()) in
  let body = if traced then fun () -> Trace.with_span ?args p.name f else f in
  if not (Control.metrics_on ()) then body ()
  else begin
    let t0 = Clock.now_us () in
    match body () with
    | v ->
      Metrics.observe p.hist (Clock.now_us () -. t0);
      v
    | exception e ->
      Metrics.observe p.hist (Clock.now_us () -. t0);
      raise e
  end
