type level = Quiet | Error | Warn | Info | Debug

let rank = function Quiet -> 0 | Error -> 1 | Warn -> 2 | Info -> 3 | Debug -> 4

let current = Atomic.make (rank Warn)

let set_level l = Atomic.set current (rank l)

let level () =
  match Atomic.get current with
  | 0 -> Quiet
  | 1 -> Error
  | 2 -> Warn
  | 3 -> Info
  | _ -> Debug

let level_to_string = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let level_of_string s =
  match String.lowercase_ascii s with
  | "quiet" -> Ok Quiet
  | "error" -> Ok Error
  | "warn" | "warning" -> Ok Warn
  | "info" -> Ok Info
  | "debug" -> Ok Debug
  | _ -> Stdlib.Error (Printf.sprintf "unknown log level %S" s)

let log l message =
  if rank l <= Atomic.get current then begin
    let line =
      Printf.sprintf "[mmsyn] %s: %s\n" (level_to_string l) (message ())
    in
    output_string stderr line;
    flush stderr
  end

let error m = log Error m
let warn m = log Warn m
let info m = log Info m
let debug m = log Debug m
