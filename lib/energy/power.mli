(** The paper's power model (§3, Eq. 1).

    Per mode O:  p̄_O = p̄_dyn,O + p̄_stat,O, where the dynamic part is the
    mode's activation energy divided by its hyper-period and the static
    part sums the static power of the components {e active} in the mode —
    a component with no activity mapped to it is shut down (§2.3).

    Overall:     p̄ = Σ_O (p̄_dyn,O + p̄_stat,O) · Ψ_O. *)

type mode_power = {
  mode_id : int;
  dyn_power : float;  (** E_activation / hyper-period (W). *)
  static_power : float;  (** Σ static power of active PEs and CLs (W). *)
  active_pes : int list;
  active_cls : int list;
  shut_down_pes : int list;  (** PEs powered off during this mode. *)
  shut_down_cls : int list;
}

val total : mode_power -> float
(** [dyn_power +. static_power]. *)

val mode_power :
  arch:Mm_arch.Architecture.t ->
  schedule:Mm_sched.Schedule.t ->
  dyn_energy:float ->
  mode_power
(** [dyn_energy] is the mode's dynamic energy per activation (tasks plus
    communications, after any voltage scaling); activity is read off the
    schedule. *)

val average : probabilities:float array -> mode_power array -> float
(** Eq. (1).  [probabilities.(i)] must correspond to
    [mode_powers.(i).mode_id = i]; lengths must match. *)

val average_of_omsm : omsm:Mm_omsm.Omsm.t -> mode_power array -> float
(** {!average} with the probabilities of the OMSM's modes. *)

val pp_mode_power : Format.formatter -> mode_power -> unit
