(** Battery lifetime estimation.

    The paper motivates probability-aware synthesis with "designing
    systems with a prolonged battery life-time" (§2.1.1); this module
    turns average-power figures into lifetime estimates so results can be
    reported in the unit end users care about.  Discharge follows
    Peukert's law: a battery rated [capacity_ah] at discharge time
    [rated_hours] lasts

    t = rated_hours · (capacity_ah / (I · rated_hours))^k

    at current I, with exponent k >= 1 (k = 1 is the ideal linear
    battery). *)

type t = private {
  capacity_ah : float;  (** Rated capacity (ampere-hours). *)
  voltage : float;  (** Nominal terminal voltage (V). *)
  peukert : float;  (** Peukert exponent k (>= 1; typically 1.1–1.3). *)
  rated_hours : float;  (** Discharge time of the rating (h). *)
}

val make :
  capacity_ah:float -> voltage:float -> ?peukert:float -> ?rated_hours:float -> unit -> t
(** [peukert] defaults to 1.2, [rated_hours] to 20.  Raises
    [Invalid_argument] on non-positive parameters or [peukert < 1]. *)

val phone_cell : t
(** A 2003-era phone battery: 650 mAh at 3.7 V, k = 1.05. *)

val current : t -> average_power:float -> float
(** Mean discharge current I = P / V (A); [average_power] must be
    positive. *)

val lifetime_hours : t -> average_power:float -> float
val lifetime_days : t -> average_power:float -> float

val power_for_lifetime : t -> hours:float -> float
(** Inverse of {!lifetime_hours}: the constant average power (W) that
    drains the battery in exactly [hours].  Raises [Invalid_argument]
    unless [hours] is positive and finite. *)

val extension_percent : t -> from_power:float -> to_power:float -> float
(** How much longer the battery lasts after a power reduction:
    100·(t_to − t_from)/t_from. *)
