(** Fleet-scale Monte Carlo usage simulation.

    [Trace_sim] walks one device's semi-Markov mode sequence;
    production questions are about the *fleet*: what does the
    battery-life distribution look like across millions of devices whose
    usage profiles differ?  This module scales the single walk up:

    - every device [i] gets its own SplitMix64 stream derived from the
      run seed ({!Mm_util.Prng.stream}), a pure function of (seed, i) —
      results are bit-identical regardless of batch size or how many
      pool domains the fleet is spread over;
    - devices are scored in flat [Bigarray] batches against a
      synthesized design's per-mode powers, fanning out over an existing
      {!Mm_parallel.Pool};
    - the report is a lifetime *distribution* — mean, stddev, min/max
      and p1/p10/p50/p90/p99 nearest-rank percentiles via
      {!Battery.lifetime_hours} — not just the Eq. 1 average.

    The inner walk is a float-for-float transliteration of
    {!Trace_sim.simulate}: a 1-device point-model fleet is segment-for-
    segment and bit-for-bit identical to the oracle (held by the
    differential tests in [test_fleet.ml]). *)

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** {1 Usage models}

    How an individual device's usage deviates from the OMSM's published
    point probabilities Ψ. *)

type profile = {
  name : string;
  weight : float;  (** Relative share of the fleet; > 0. *)
  psi : float array;  (** Per-mode probabilities; normalised on use. *)
}

type usage_model =
  | Point  (** Every device follows the published Ψ exactly. *)
  | Dirichlet of { concentration : float }
      (** Per-device Ψ ~ Dirichlet(concentration·Ψ): larger concentration
          hugs the point estimate tighter. *)
  | Holding_jitter of { sigma : float }
      (** Per-device log-normal factors (mean-corrected, parameter
          [sigma]) on the mode holding times. *)
  | Mixture of profile list
      (** Each device follows one named profile, drawn by weight. *)

val is_point : usage_model -> bool

val validate_model : n_modes:int -> usage_model -> unit
(** Raises [Invalid_argument] on malformed parameters (non-positive
    concentration/weights, negative sigma, wrong-length or negative
    profiles). *)

val model_to_string : usage_model -> string
(** Human-readable spelling ([point], [dirichlet:<c>], [jitter:<sigma>],
    [mixture:<names>]), used in reports. *)

val model_fingerprint : usage_model -> string
(** Like {!model_to_string} but with hex-float ([%h]) parameters: two
    models fingerprint equal iff they sample identically.  Used in
    {!Mm_cosynth.Synthesis.config_fingerprint}. *)

val sample_psi : usage_model -> base:float array -> Mm_util.Prng.t -> float array
(** One per-device Ψ draw.  [Point] consumes no randomness and returns
    [base] itself; the others return a fresh normalised vector.  The
    draw order matches the fleet walk's own per-device sampling, and for
    [Holding_jitter] the returned Ψ is the long-run profile the jittered
    walk realises (Ψ'_i ∝ Ψ_i·j_i). *)

(** {1 Single-device kernel} *)

type sim
(** Walk table compiled once per (OMSM, mode powers) pair: start mode,
    per-mode total powers, holding times, stationary distribution and
    outgoing-destination arrays. *)

val compile : omsm:Mm_omsm.Omsm.t -> mode_powers:Power.mode_power array -> sim
(** Raises [Invalid_argument] when [mode_powers] doesn't match the
    OMSM's mode count. *)

val simulate_device :
  ?on_segment:(mode:int -> enter:float -> leave:float -> unit) ->
  sim ->
  model:usage_model ->
  horizon:float ->
  Mm_util.Prng.t ->
  float * int
(** One device walk; returns (empirical average power, transition
    count).  [on_segment] observes the chronological visit log —
    segment-for-segment identical to {!Trace_sim.simulate}'s [segments]
    under the point model with the same generator.  Raises
    [Invalid_argument] on a non-positive horizon. *)

(** {1 Fleet runs} *)

type stats = {
  mean_power : float;  (** Fleet mean of the empirical device powers (W). *)
  analytic_power : float;  (** Eq. 1 average under the point Ψ (W). *)
  mean_transitions : float;
  mean_hours : float;
  stddev_hours : float;  (** Population standard deviation. *)
  min_hours : float;
  max_hours : float;
  percentiles : (int * float) list;
      (** Nearest-rank (rank, lifetime hours) for ranks 1, 10, 50, 90, 99. *)
}

type result = {
  devices : int;
  horizon : float;
  seed : int;
  model : usage_model;
  battery : Battery.t;
  lifetimes : vec;  (** Hours, device order; +∞ for a zero-power device. *)
  powers : vec;  (** Empirical average power per device (W). *)
  transitions : vec;
  stats : stats;
}

val run :
  ?pool:Mm_parallel.Pool.t ->
  ?batch:int ->
  ?model:usage_model ->
  ?battery:Battery.t ->
  ?horizon:float ->
  devices:int ->
  omsm:Mm_omsm.Omsm.t ->
  mode_powers:Power.mode_power array ->
  seed:int ->
  unit ->
  result
(** Simulate the fleet.  [batch] (default 4096) is the number of devices
    per pool work item; neither it nor [pool] affect any output bit.
    [model] defaults to [Point], [battery] to {!Battery.phone_cell},
    [horizon] to 10\,000 time units.  Raises [Invalid_argument] on
    non-positive [devices]/[batch]/[horizon] or a malformed model. *)

val sorted_lifetimes : result -> float array
(** Ascending copy of the lifetime vector (the array percentiles are
    read from). *)

val percentile_of_sorted : float array -> float -> float
(** [percentile_of_sorted sorted q] is the nearest-rank [q]-quantile
    ([0 < q <= 1]) of an ascending-sorted non-empty array. *)

val to_json : result -> string
(** Deterministic single-object report (no wall-clock fields): equal
    seeds and parameters give byte-identical strings. *)

val pp : Format.formatter -> result -> unit
(** Multi-line summary for CLI reports. *)
