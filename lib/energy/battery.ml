type t = {
  capacity_ah : float;
  voltage : float;
  peukert : float;
  rated_hours : float;
}

let make ~capacity_ah ~voltage ?(peukert = 1.2) ?(rated_hours = 20.0) () =
  if capacity_ah <= 0.0 then invalid_arg "Battery.make: non-positive capacity";
  if voltage <= 0.0 then invalid_arg "Battery.make: non-positive voltage";
  if peukert < 1.0 then invalid_arg "Battery.make: peukert < 1";
  if rated_hours <= 0.0 then invalid_arg "Battery.make: non-positive rated_hours";
  { capacity_ah; voltage; peukert; rated_hours }

let phone_cell = make ~capacity_ah:0.65 ~voltage:3.7 ~peukert:1.05 ~rated_hours:5.0 ()

let current t ~average_power =
  if average_power <= 0.0 then invalid_arg "Battery.current: non-positive power";
  average_power /. t.voltage

let lifetime_hours t ~average_power =
  let i = current t ~average_power in
  t.rated_hours *. ((t.capacity_ah /. (i *. t.rated_hours)) ** t.peukert)

let lifetime_days t ~average_power = lifetime_hours t ~average_power /. 24.0

let power_for_lifetime t ~hours =
  if hours <= 0.0 || not (Float.is_finite hours) then
    invalid_arg "Battery.power_for_lifetime: lifetime must be positive and finite";
  let i =
    t.capacity_ah /. (t.rated_hours *. ((hours /. t.rated_hours) ** (1.0 /. t.peukert)))
  in
  i *. t.voltage

let extension_percent t ~from_power ~to_power =
  let before = lifetime_hours t ~average_power:from_power in
  let after = lifetime_hours t ~average_power:to_power in
  100.0 *. (after -. before) /. before
