(** Trace-driven validation of the analytic power model.

    Eq. (1) computes average power analytically from the mode execution
    probabilities.  This simulator performs the complementary check: it
    walks the OMSM's transition graph as a semi-Markov process (random
    outgoing transition, exponentially distributed residence times) and
    accumulates the {e empirical} average power from the per-mode powers
    of a synthesised implementation.  With holding times chosen by
    {!holding_times_for}, the empirical figure converges to Eq. (1) as
    the horizon grows — the property test in [test_energy.ml] checks
    this, closing the loop with {!Mm_omsm.Usage_profile}, which goes the
    opposite way (observations → probabilities). *)

type segment = {
  mode : int;
  enter : float;
  leave : float;
}

type result = {
  segments : segment list;  (** Chronological visit log. *)
  time_in_mode : float array;  (** Accumulated residence per mode. *)
  empirical_probability : float array;  (** time_in_mode / horizon. *)
  empirical_power : float;  (** Time-weighted average of the mode powers (W). *)
  n_transitions : int;
}

val holding_times_for : Mm_omsm.Omsm.t -> float array
(** Mean residence times h_i (in arbitrary units) that make the
    semi-Markov walk's long-run usage profile equal the OMSM's published
    probabilities: h_i = Ψ_i / π_i with π the stationary distribution of
    the embedded jump chain (uniform choice over outgoing transitions).
    Modes with probability 0 get a vanishing holding time. *)

val simulate :
  ?holding_times:float array ->
  ?start:int ->
  omsm:Mm_omsm.Omsm.t ->
  mode_powers:Power.mode_power array ->
  horizon:float ->
  Mm_util.Prng.t ->
  result
(** [holding_times] defaults to {!holding_times_for}; [start] to the most
    probable mode.  A mode without outgoing transitions absorbs the rest
    of the horizon.  Raises [Invalid_argument] on a non-positive horizon
    or mismatched array lengths. *)
