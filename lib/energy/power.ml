module Arch = Mm_arch.Architecture
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Schedule = Mm_sched.Schedule

type mode_power = {
  mode_id : int;
  dyn_power : float;
  static_power : float;
  active_pes : int list;
  active_cls : int list;
  shut_down_pes : int list;
  shut_down_cls : int list;
}

let total mp = mp.dyn_power +. mp.static_power

let mode_power ~arch ~schedule ~dyn_energy =
  let active_pes = Schedule.active_pes schedule in
  let active_cls = Schedule.active_cls schedule in
  let shut_down_pes =
    List.filter
      (fun p -> not (List.mem (Pe.id p) active_pes))
      (Arch.pes arch)
    |> List.map Pe.id
  in
  let shut_down_cls =
    List.filter (fun c -> not (List.mem (Cl.id c) active_cls)) (Arch.cls arch)
    |> List.map Cl.id
  in
  let static_power =
    List.fold_left (fun acc p -> acc +. Pe.static_power (Arch.pe arch p)) 0.0 active_pes
    +. List.fold_left (fun acc c -> acc +. Cl.static_power (Arch.cl arch c)) 0.0 active_cls
  in
  {
    mode_id = schedule.Schedule.mode_id;
    dyn_power = dyn_energy /. schedule.Schedule.period;
    static_power;
    active_pes;
    active_cls;
    shut_down_pes;
    shut_down_cls;
  }

let average ~probabilities mode_powers =
  if Array.length probabilities <> Array.length mode_powers then
    invalid_arg "Power.average: length mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i mp -> acc := !acc +. (total mp *. probabilities.(i))) mode_powers;
  !acc

let average_of_omsm ~omsm mode_powers =
  let probabilities =
    Array.of_list (List.map Mm_omsm.Mode.probability (Mm_omsm.Omsm.modes omsm))
  in
  average ~probabilities mode_powers

let pp_mode_power ppf mp =
  Format.fprintf ppf
    "mode %d: p̄dyn=%.6gW p̄stat=%.6gW (active PEs: %a; shut down: %a)" mp.mode_id
    mp.dyn_power mp.static_power
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    mp.active_pes
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    mp.shut_down_pes
