module Prng = Mm_util.Prng
module Omsm = Mm_omsm.Omsm
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Usage_profile = Mm_omsm.Usage_profile

type segment = { mode : int; enter : float; leave : float }

type result = {
  segments : segment list;
  time_in_mode : float array;
  empirical_probability : float array;
  empirical_power : float;
  n_transitions : int;
}

let outgoing omsm mode =
  List.filter (fun tr -> Transition.src tr = mode) (Omsm.transitions omsm)

let holding_times_for omsm =
  let n = Omsm.n_modes omsm in
  let observations =
    List.map
      (fun tr -> { Usage_profile.src = Transition.src tr; dst = Transition.dst tr; count = 1.0 })
      (Omsm.transitions omsm)
  in
  let pi =
    match observations with
    | [] -> Array.make n (1.0 /. float_of_int n)
    | _ -> Usage_profile.stationary (Usage_profile.embedded_chain ~n_modes:n observations)
  in
  Array.init n (fun i ->
      let psi = Mode.probability (Omsm.mode omsm i) in
      if pi.(i) <= 0.0 then 1e-9 else Float.max 1e-9 (psi /. pi.(i)))

(* Exponential draw with the given mean (inverse-CDF method). *)
let exponential rng ~mean = -.mean *. log (Float.max 1e-300 (1.0 -. Prng.float rng 1.0))

let simulate ?holding_times ?start ~omsm ~mode_powers ~horizon rng =
  if horizon <= 0.0 then invalid_arg "Trace_sim.simulate: non-positive horizon";
  let n = Omsm.n_modes omsm in
  if Array.length mode_powers <> n then
    invalid_arg "Trace_sim.simulate: mode_powers length mismatch";
  let holding_times =
    match holding_times with
    | Some h ->
      if Array.length h <> n then
        invalid_arg "Trace_sim.simulate: holding_times length mismatch";
      h
    | None -> holding_times_for omsm
  in
  let start =
    match start with
    | Some mode ->
      if mode < 0 || mode >= n then invalid_arg "Trace_sim.simulate: bad start mode";
      mode
    | None ->
      (* Most probable mode. *)
      let best = ref 0 in
      for i = 1 to n - 1 do
        if
          Mode.probability (Omsm.mode omsm i)
          > Mode.probability (Omsm.mode omsm !best)
        then best := i
      done;
      !best
  in
  let time_in_mode = Array.make n 0.0 in
  let energy = ref 0.0 in
  let segments = ref [] in
  let transitions = ref 0 in
  let rec walk mode now =
    let dwell = exponential rng ~mean:holding_times.(mode) in
    let leave = Float.min horizon (now +. dwell) in
    let duration = leave -. now in
    time_in_mode.(mode) <- time_in_mode.(mode) +. duration;
    energy := !energy +. (Power.total mode_powers.(mode) *. duration);
    segments := { mode; enter = now; leave } :: !segments;
    if leave < horizon then begin
      match outgoing omsm mode with
      | [] ->
        (* Absorbing: finish the horizon here. *)
        time_in_mode.(mode) <- time_in_mode.(mode) +. (horizon -. leave);
        energy := !energy +. (Power.total mode_powers.(mode) *. (horizon -. leave));
        segments := { mode; enter = leave; leave = horizon } :: !segments
      | choices ->
        incr transitions;
        walk (Transition.dst (Prng.pick rng choices)) leave
    end
  in
  walk start 0.0;
  {
    segments = List.rev !segments;
    time_in_mode;
    empirical_probability = Array.map (fun t -> t /. horizon) time_in_mode;
    empirical_power = !energy /. horizon;
    n_transitions = !transitions;
  }
