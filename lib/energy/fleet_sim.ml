module Prng = Mm_util.Prng
module Omsm = Mm_omsm.Omsm
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Pool = Mm_parallel.Pool
module Json = Mm_obs.Json

type vec = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type profile = { name : string; weight : float; psi : float array }

type usage_model =
  | Point
  | Dirichlet of { concentration : float }
  | Holding_jitter of { sigma : float }
  | Mixture of profile list

let is_point = function Point -> true | _ -> false

let validate_model ~n_modes = function
  | Point -> ()
  | Dirichlet { concentration } ->
    if not (concentration > 0.0 && Float.is_finite concentration) then
      invalid_arg "Fleet_sim: Dirichlet concentration must be positive and finite"
  | Holding_jitter { sigma } ->
    if not (sigma >= 0.0 && Float.is_finite sigma) then
      invalid_arg "Fleet_sim: holding-time jitter sigma must be non-negative and finite"
  | Mixture profiles ->
    if profiles = [] then invalid_arg "Fleet_sim: empty usage mixture";
    List.iter
      (fun { name; weight; psi } ->
        if not (weight > 0.0 && Float.is_finite weight) then
          invalid_arg
            (Printf.sprintf "Fleet_sim: profile %S has non-positive weight" name);
        if Array.length psi <> n_modes then
          invalid_arg
            (Printf.sprintf "Fleet_sim: profile %S has %d probabilities, OMSM has %d modes"
               name (Array.length psi) n_modes);
        Array.iter
          (fun p ->
            if not (p >= 0.0 && Float.is_finite p) then
              invalid_arg
                (Printf.sprintf "Fleet_sim: profile %S has a negative probability" name))
          psi;
        if Array.fold_left ( +. ) 0.0 psi <= 0.0 then
          invalid_arg (Printf.sprintf "Fleet_sim: profile %S sums to zero" name))
      profiles

let model_to_string = function
  | Point -> "point"
  | Dirichlet { concentration } -> Printf.sprintf "dirichlet:%g" concentration
  | Holding_jitter { sigma } -> Printf.sprintf "jitter:%g" sigma
  | Mixture profiles ->
    Printf.sprintf "mixture:%s"
      (String.concat "," (List.map (fun p -> p.name) profiles))

(* Hex-float spelling for config fingerprints: two models fingerprint
   equal iff they sample identically. *)
let model_fingerprint = function
  | Point -> "point"
  | Dirichlet { concentration } -> Printf.sprintf "dirichlet:%h" concentration
  | Holding_jitter { sigma } -> Printf.sprintf "jitter:%h" sigma
  | Mixture profiles ->
    Printf.sprintf "mixture:%s"
      (String.concat ","
         (List.map
            (fun p ->
              Printf.sprintf "%s=%h@%s" p.name p.weight
                (String.concat ";" (Array.to_list (Array.map (Printf.sprintf "%h") p.psi))))
            profiles))

let normalise psi =
  let total = Array.fold_left ( +. ) 0.0 psi in
  Array.map (fun p -> p /. total) psi

(* One Ψ draw for a device.  [Point] consumes no randomness, so a
   point-model device stream is bit-identical to handing the same
   generator to [Trace_sim.simulate].  [Holding_jitter] perturbs holding
   times, not the embedded chain; its long-run profile is
   Ψ'_i ∝ Ψ_i·j_i with j_i the per-mode log-normal factor, which is what
   this returns so robust fitness sees the same distribution the walk
   realises. *)
let sample_psi model ~base rng =
  match model with
  | Point -> base
  | Dirichlet { concentration } ->
    let alpha = Array.map (fun p -> concentration *. Float.max 1e-9 p) base in
    Prng.dirichlet rng alpha
  | Holding_jitter { sigma } ->
    normalise
      (Array.map
         (fun p ->
           p *. exp ((sigma *. Prng.gaussian rng) -. (0.5 *. sigma *. sigma)))
         base)
  | Mixture profiles ->
    let total = List.fold_left (fun acc p -> acc +. p.weight) 0.0 profiles in
    let u = Prng.float rng 1.0 *. total in
    let rec pick acc = function
      | [ last ] -> last
      | p :: rest -> if u < acc +. p.weight then p else pick (acc +. p.weight) rest
      | [] -> assert false
    in
    normalise (Array.copy (pick 0.0 profiles).psi)

(* --- Compiled walk table ------------------------------------------------ *)

type sim = {
  n_modes : int;
  start : int;
  power : float array;  (* Power.total per mode *)
  base_psi : float array;
  pi : float array;  (* stationary distribution of the embedded chain *)
  base_holding : float array;  (* Trace_sim.holding_times_for *)
  dsts : int array array;  (* outgoing destinations, transition-list order *)
}

let compile ~omsm ~mode_powers =
  let n = Omsm.n_modes omsm in
  if Array.length mode_powers <> n then
    invalid_arg "Fleet_sim.compile: mode_powers length mismatch";
  let base_psi = Array.init n (fun i -> Mode.probability (Omsm.mode omsm i)) in
  let start =
    let best = ref 0 in
    for i = 1 to n - 1 do
      if base_psi.(i) > base_psi.(!best) then best := i
    done;
    !best
  in
  let pi =
    let observations =
      List.map
        (fun tr ->
          {
            Mm_omsm.Usage_profile.src = Transition.src tr;
            dst = Transition.dst tr;
            count = 1.0;
          })
        (Omsm.transitions omsm)
    in
    match observations with
    | [] -> Array.make n (1.0 /. float_of_int n)
    | _ ->
      Mm_omsm.Usage_profile.stationary
        (Mm_omsm.Usage_profile.embedded_chain ~n_modes:n observations)
  in
  let dsts =
    Array.init n (fun mode ->
        Omsm.transitions omsm
        |> List.filter (fun tr -> Transition.src tr = mode)
        |> List.map Transition.dst
        |> Array.of_list)
  in
  {
    n_modes = n;
    start;
    power = Array.map Power.total mode_powers;
    base_psi;
    pi;
    base_holding = Trace_sim.holding_times_for omsm;
    dsts;
  }

let holding_of_psi sim psi =
  Array.init sim.n_modes (fun i ->
      if sim.pi.(i) <= 0.0 then 1e-9 else Float.max 1e-9 (psi.(i) /. sim.pi.(i)))

(* Per-device holding times.  Draw order matches [sample_psi] so the
   usage models consume the stream identically whether they drive the
   walk or the robust-fitness Ψ samples. *)
let device_holding sim model rng =
  match model with
  | Point -> sim.base_holding
  | Holding_jitter { sigma } ->
    Array.map
      (fun h -> h *. exp ((sigma *. Prng.gaussian rng) -. (0.5 *. sigma *. sigma)))
      sim.base_holding
  | Dirichlet _ | Mixture _ -> holding_of_psi sim (sample_psi model ~base:sim.base_psi rng)

(* The walk is a float-for-float transliteration of
   [Trace_sim.simulate]'s inner loop (same exponential expression, same
   accumulation order, [Prng.int] over the precompiled destination array
   standing in for [Prng.pick] over the filtered transition list), so a
   point-model device with stream 0 reproduces the oracle bit-for-bit —
   the differential test in [test_fleet.ml] holds this. *)
let simulate_device ?on_segment sim ~model ~horizon rng =
  if horizon <= 0.0 then invalid_arg "Fleet_sim.simulate_device: non-positive horizon";
  let holding = device_holding sim model rng in
  let energy = ref 0.0 in
  let transitions = ref 0 in
  let emit mode enter leave =
    match on_segment with Some f -> f ~mode ~enter ~leave | None -> ()
  in
  let rec walk mode now =
    let dwell = -.holding.(mode) *. log (Float.max 1e-300 (1.0 -. Prng.float rng 1.0)) in
    let leave = Float.min horizon (now +. dwell) in
    let duration = leave -. now in
    energy := !energy +. (sim.power.(mode) *. duration);
    emit mode now leave;
    if leave < horizon then begin
      let dsts = sim.dsts.(mode) in
      let k = Array.length dsts in
      if k = 0 then begin
        (* Absorbing: finish the horizon here. *)
        energy := !energy +. (sim.power.(mode) *. (horizon -. leave));
        emit mode leave horizon
      end
      else begin
        incr transitions;
        walk dsts.(Prng.int rng k) leave
      end
    end
  in
  walk sim.start 0.0;
  (!energy /. horizon, !transitions)

(* --- Fleet runs --------------------------------------------------------- *)

type stats = {
  mean_power : float;
  analytic_power : float;
  mean_transitions : float;
  mean_hours : float;
  stddev_hours : float;
  min_hours : float;
  max_hours : float;
  percentiles : (int * float) list;
}

type result = {
  devices : int;
  horizon : float;
  seed : int;
  model : usage_model;
  battery : Battery.t;
  lifetimes : vec;
  powers : vec;
  transitions : vec;
  stats : stats;
}

let percentile_ranks = [ 1; 10; 50; 90; 99 ]

(* Nearest-rank percentile over an ascending-sorted array. *)
let percentile_of_sorted sorted q =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (q *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let sorted_lifetimes result =
  let a = Array.init result.devices (fun i -> Bigarray.Array1.get result.lifetimes i) in
  Array.sort compare a;
  a

let run ?pool ?(batch = 4096) ?(model = Point) ?(battery = Battery.phone_cell)
    ?(horizon = 10_000.0) ~devices ~omsm ~mode_powers ~seed () =
  if devices <= 0 then invalid_arg "Fleet_sim.run: need at least one device";
  if batch <= 0 then invalid_arg "Fleet_sim.run: non-positive batch size";
  if horizon <= 0.0 then invalid_arg "Fleet_sim.run: non-positive horizon";
  validate_model ~n_modes:(Omsm.n_modes omsm) model;
  let sim = compile ~omsm ~mode_powers in
  let base = Prng.create ~seed in
  let lifetimes = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout devices in
  let powers = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout devices in
  let transitions = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout devices in
  (* Device [i]'s generator is a pure function of (seed, i): results do
     not depend on how devices are partitioned into batches or spread
     over domains, which is what makes the percentile output bit-stable
     across [--jobs] and batch sizes. *)
  let one i =
    let rng = Prng.stream base i in
    let power, n_transitions = simulate_device sim ~model ~horizon rng in
    Bigarray.Array1.set powers i power;
    Bigarray.Array1.set transitions i (float_of_int n_transitions);
    Bigarray.Array1.set lifetimes i
      (if power > 0.0 then Battery.lifetime_hours battery ~average_power:power
       else Float.infinity)
  in
  let n_batches = (devices + batch - 1) / batch in
  let run_batch b =
    let lo = b * batch in
    let hi = min devices (lo + batch) - 1 in
    for i = lo to hi do
      one i
    done
  in
  let batches = Array.init n_batches (fun b -> b) in
  (match pool with
  | Some pool -> ignore (Pool.map pool run_batch batches : unit array)
  | None -> Array.iter run_batch batches);
  let sum v =
    let acc = ref 0.0 in
    for i = 0 to devices - 1 do
      acc := !acc +. Bigarray.Array1.get v i
    done;
    !acc
  in
  let nf = float_of_int devices in
  let sorted = Array.init devices (fun i -> Bigarray.Array1.get lifetimes i) in
  Array.sort compare sorted;
  let mean_hours = sum lifetimes /. nf in
  let stddev_hours =
    if Float.is_finite mean_hours then begin
      let acc = ref 0.0 in
      for i = 0 to devices - 1 do
        let d = Bigarray.Array1.get lifetimes i -. mean_hours in
        acc := !acc +. (d *. d)
      done;
      sqrt (!acc /. nf)
    end
    else Float.nan
  in
  let stats =
    {
      mean_power = sum powers /. nf;
      analytic_power = Power.average ~probabilities:sim.base_psi mode_powers;
      mean_transitions = sum transitions /. nf;
      mean_hours;
      stddev_hours;
      min_hours = sorted.(0);
      max_hours = sorted.(devices - 1);
      percentiles =
        List.map
          (fun p -> (p, percentile_of_sorted sorted (float_of_int p /. 100.0)))
          percentile_ranks;
    }
  in
  { devices; horizon; seed; model; battery; lifetimes; powers; transitions; stats }

(* Deterministic report: no wall-clock or host fields, so equal seeds
   give byte-identical files. *)
let to_json result =
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  Json.str b "format";
  Buffer.add_string b ":";
  Json.str b "mmsyn-fleet-report";
  let field name =
    Buffer.add_string b ",";
    Json.str b name;
    Buffer.add_string b ":"
  in
  field "version";
  Json.int b 1;
  field "devices";
  Json.int b result.devices;
  field "horizon_s";
  Json.number b result.horizon;
  field "seed";
  Json.int b result.seed;
  field "usage_model";
  Json.str b (model_to_string result.model);
  field "battery";
  Buffer.add_string b "{";
  Json.str b "capacity_ah";
  Buffer.add_string b ":";
  Json.number b result.battery.Battery.capacity_ah;
  List.iter
    (fun (name, v) ->
      Buffer.add_string b ",";
      Json.str b name;
      Buffer.add_string b ":";
      Json.number b v)
    [
      ("voltage", result.battery.Battery.voltage);
      ("peukert", result.battery.Battery.peukert);
      ("rated_hours", result.battery.Battery.rated_hours);
    ];
  Buffer.add_string b "}";
  field "analytic_power_w";
  Json.number b result.stats.analytic_power;
  field "mean_power_w";
  Json.number b result.stats.mean_power;
  field "mean_transitions";
  Json.number b result.stats.mean_transitions;
  field "lifetime_hours";
  Buffer.add_string b "{";
  Json.str b "mean";
  Buffer.add_string b ":";
  Json.number b result.stats.mean_hours;
  List.iter
    (fun (name, v) ->
      Buffer.add_string b ",";
      Json.str b name;
      Buffer.add_string b ":";
      Json.number b v)
    ([
       ("stddev", result.stats.stddev_hours);
       ("min", result.stats.min_hours);
       ("max", result.stats.max_hours);
     ]
    @ List.map
        (fun (p, v) -> (Printf.sprintf "p%d" p, v))
        result.stats.percentiles);
  Buffer.add_string b "}}";
  Buffer.contents b

let pp ppf result =
  let s = result.stats in
  Format.fprintf ppf "fleet: %d devices, horizon %g s, seed %d, usage %s@,"
    result.devices result.horizon result.seed (model_to_string result.model);
  Format.fprintf ppf "power: mean %.6f W (analytic %.6f W), %.1f transitions/device@,"
    s.mean_power s.analytic_power s.mean_transitions;
  Format.fprintf ppf "lifetime: mean %.2f h, stddev %.2f h, min %.2f h, max %.2f h@,"
    s.mean_hours s.stddev_hours s.min_hours s.max_hours;
  Format.fprintf ppf "percentiles:";
  List.iter (fun (p, v) -> Format.fprintf ppf " p%d=%.2fh" p v) s.percentiles
