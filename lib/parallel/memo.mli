(** An LRU-bounded memoization cache keyed on integer-string genomes.

    The mapping GA re-evaluates identical genomes constantly — elites
    survive unchanged every generation, converged populations are full
    of clones, and the anchor genomes are re-injected on every restart.
    Fitness evaluation is a pure function of the genome, so those
    repeats can be answered from a cache instead of re-running the
    decode → schedule → DVS → power pipeline.

    Keys are hashed over the {e whole} gene array (FNV-1a), not with
    [Hashtbl.hash]'s truncated traversal, so long smart-phone genomes
    that differ only in their tail do not collide systematically.  Keys
    are copied on insertion; the cache never aliases caller arrays.

    The cache is not thread-safe: in the parallel evaluation pipeline
    all lookups and insertions happen on the coordinating domain, only
    the misses fan out to workers. *)

type 'v t

val create :
  ?probe_window:int -> ?min_hit_rate:float -> capacity:int -> unit -> 'v t
(** [create ~capacity ()] makes an empty cache holding at most
    [capacity] entries; beyond that the least-recently-used entry is
    evicted.  Raises [Invalid_argument] if [capacity < 1].

    [probe_window] (default 0 = never) enables the {e adaptive bypass}:
    after that many lookups, if the hit rate is below [min_hit_rate]
    (default 0.1), the cache self-disables for the rest of its life —
    every later {!find} returns [None] without hashing (counted in
    {!bypassed_lookups} and the [memo/bypassed] metric) and every later
    {!add} is a no-op.  A bypassed lookup is indistinguishable from a
    miss, so on a workload whose values are pure functions of the key
    the bypass can never change results, only remove cache overhead
    from low-hit workloads.  The decision is taken once; {!reset_stats}
    does not re-arm it. *)

val adaptive : capacity:int -> 'v t
(** {!create} with the recommended bypass tuning for GA evaluation
    caches: a 1024-lookup probe window and a 10 % minimum hit rate. *)

val find : ?pin:bool -> 'v t -> int array -> 'v option
(** Lookup; counts a hit or a miss and refreshes the entry's recency.
    [~pin:true] additionally exempts a found entry from eviction until
    {!unpin_all} — see {e Pinning} below. *)

val add : ?pin:bool -> 'v t -> int array -> 'v -> unit
(** Insert (or overwrite) a binding, copying the key, and evict the
    least-recently-used {e unpinned} entry if the cache is over
    capacity.  [~pin:true] pins the inserted entry. *)

val mem : 'v t -> int array -> bool
(** Membership test without touching recency or the hit/miss counters. *)

(** {2 Pinning}

    When one logical operation performs several lookups and insertions
    against the same cache (e.g. a fitness evaluation touching one entry
    per mode), a later insertion can evict an entry an earlier step of
    the {e same} operation just inserted or retrieved — at full capacity
    the operation then invalidates its own working set.  Pinning marks
    the operation's entries as off-limits to the LRU bound for its
    duration: eviction skips pinned entries (temporarily overflowing
    capacity when everything is pinned), and {!unpin_all} releases them
    and trims the cache back down.  Pins are not reference-counted;
    callers bracket each operation with [unpin_all] (typically via
    [Fun.protect]). *)

val unpin_all : 'v t -> unit
(** Release every pin, then evict down to capacity (oldest first). *)

val pinned : 'v t -> int
(** Number of currently pinned entries. *)

val clear : 'v t -> unit
(** Drop all entries.  Counters are kept. *)

val reset_stats : 'v t -> unit
(** Zero the hit/miss/eviction counters while keeping the entries: when
    one cache is shared across several experiment runs (to reuse learned
    evaluations), resetting between runs keeps each run's hit-rate
    figures unpolluted by its predecessors. *)

val length : 'v t -> int

val capacity : 'v t -> int

val hits : 'v t -> int
(** Number of successful {!find}s over the cache's lifetime. *)

val misses : 'v t -> int
(** Number of failed {!find}s over the cache's lifetime. *)

val evictions : 'v t -> int
(** Number of entries dropped by the LRU bound. *)

val bypassed : 'v t -> bool
(** Whether the adaptive bypass has triggered (see {!create}). *)

val bypassed_lookups : 'v t -> int
(** Lookups short-circuited after the bypass triggered; these are not
    counted as hits or misses, so {!hit_rate} freezes at its
    probe-window value. *)

val hit_rate : 'v t -> float
(** [hits / (hits + misses)]; 0 when no lookup happened yet. *)
