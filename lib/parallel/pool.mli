(** A persistent pool of OCaml 5 domains for embarrassingly parallel
    array maps.

    The pool is built for the synthesis fitness pipeline: one generation
    of GA offspring is evaluated per {!map} call, every element is
    independent, and the caller needs results back in input order.  Work
    is handed out in chunks through a shared atomic cursor, so uneven
    per-element cost (e.g. the smart phone's 162-position genomes next
    to mul-scale ones) self-balances instead of being pinned to a static
    partition.

    Threading model: one {e owner}.  A pool is driven from the domain
    that created it; {!map} is not reentrant and must not be called from
    two domains at once, nor from inside a mapped function.  The mapped
    function itself runs on several domains concurrently and must be
    thread-safe (pure functions are).

    Determinism: [map pool f input] returns exactly [Array.map f input]
    for a pure [f] — result slots are fixed by input index, only the
    execution schedule varies with the domain count. *)

type t
(** A pool handle.  The creating domain participates in every {!map},
    so a pool of size [n] runs work on [n] domains total ([n - 1]
    spawned workers plus the caller). *)

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains.  [domains]
    defaults to {!Domain.recommended_domain_count}; it is clamped to
    [\[1, 64\]].  A pool of 1 spawns nothing and {!map} degrades to
    [Array.map]. *)

val size : t -> int
(** Number of domains that execute work during a {!map}, including the
    caller.  [size t >= 1]. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f input] applies [f] to every element of [input] on the
    pool's domains and returns the results in input order.

    If any application of [f] raises, the first exception observed is
    re-raised in the caller (with its backtrace) after all domains have
    stopped picking up new elements; remaining elements may or may not
    have been evaluated.  Raises [Invalid_argument] if the pool has been
    {!shutdown}. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Idempotent.  The pool cannot
    be used afterwards. *)
