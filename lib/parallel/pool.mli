(** A persistent pool of OCaml 5 domains for embarrassingly parallel
    array maps.

    The pool is built for the synthesis fitness pipeline: one generation
    of GA offspring is evaluated per {!map} call, every element is
    independent, and the caller needs results back in input order.  Work
    is handed out in chunks through a shared atomic cursor, so uneven
    per-element cost (e.g. the smart phone's 162-position genomes next
    to mul-scale ones) self-balances instead of being pinned to a static
    partition.  Chunk granularity is auto-tuned: the pool keeps an EWMA
    of measured per-item cost and sizes each batch's chunks to a fixed
    work target, so cheap items get coarse chunks (amortising cursor
    contention) and expensive items stay fine-grained for balance.

    Threading model: one {e owner}.  A pool is driven from the domain
    that created it; {!map} is not reentrant and must not be called from
    two domains at once, nor from inside a mapped function.  The mapped
    function itself runs on several domains concurrently and must be
    thread-safe (pure functions are).

    Determinism: [map pool f input] returns exactly [Array.map f input]
    for a pure [f] — result slots are fixed by input index, only the
    execution schedule varies with the domain count.

    {2 Fault tolerance}

    Long synthesis runs must survive misbehaving jobs.  Three defences,
    all configured through {!config} and off by default:

    - {e Retry}: a raising job is re-run up to [max_retries] times with
      capped exponential backoff before its exception is allowed to
      propagate.
    - {e Timeout}: when the workers of a batch have not reported in
      [timeout] seconds after the owner finished its own share, the
      batch is {e abandoned}.  OCaml domains cannot be killed, so the
      stragglers are invalidated (their later bookkeeping is ignored;
      if truly hung they are leaked at {!shutdown}), replacement
      workers are spawned, and the owner completes the batch's
      unfinished elements serially — {!map} still returns the full,
      correct result.
    - {e Degradation}: once more than [max_respawns] workers have had
      to be replaced over the pool's life, the pool stops spawning and
      every later {!map} runs serially on the caller.

    Each event increments the [pool/retries] / [pool/timeouts] /
    [pool/respawns] metrics and the per-pool {!stats}. *)

type t
(** A pool handle.  The creating domain participates in every {!map},
    so a pool of size [n] runs work on [n] domains total ([n - 1]
    spawned workers plus the caller). *)

type config = {
  max_retries : int;
      (** Times a raising job is retried before the exception
          propagates (default 0: first failure raises, as a plain
          [Array.map] would). *)
  backoff : float;
      (** Sleep before retry [k] is [backoff * 2{^ k}] seconds
          (default 1 ms). *)
  backoff_max : float;  (** Cap on the backoff sleep (default 0.1 s). *)
  timeout : float;
      (** Grace period in seconds for worker stragglers after the owner
          finishes its share of a batch; [<= 0] (the default) waits
          forever.  Only meaningful for a pure [f]: after an abandon the
          owner re-runs unfinished elements, and a zombie worker may
          still complete its copy concurrently. *)
  max_respawns : int;
      (** Lifetime budget of worker replacements before the pool
          degrades to serial evaluation (default 8). *)
}

val default_config : config
(** No retries, no timeout, respawn budget 8 — bit-compatible with a
    pool that has no fault tolerance at all. *)

type stats = {
  retries : int;  (** Jobs re-run after raising. *)
  timeouts : int;  (** Batches abandoned on the wall-clock timeout. *)
  respawns : int;  (** Workers replaced after abandons. *)
  degraded : bool;  (** Whether the pool has fallen back to serial. *)
  queue_wait_seconds : float;
      (** Summed time workers spent parked between batches — the
          dispatch (fan-out/fan-in) cost of driving the pool. *)
  barrier_wait_seconds : float;
      (** Summed time the owner spent blocked on straggler chunks after
          finishing its own share — load imbalance within batches.  The
          old conflated [pool_wait_seconds] was the sum of both; keeping
          them apart is what makes dispatch-overhead work measurable. *)
}

val clamp_jobs : ?allow_oversubscribe:bool -> int -> int
(** The effective domain count for a requested [--jobs]: clamped to
    [\[1, 64\]] and — unless [allow_oversubscribe] — to
    [Domain.recommended_domain_count ()].  Oversubscribing cores never
    helps this workload (the parallel bench records speedups below 1 and
    degraded pools whenever jobs exceed cores), so callers opt into it
    explicitly or not at all. *)

val create : ?domains:int -> ?config:config -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains.  [domains]
    defaults to {!Domain.recommended_domain_count}; it is clamped to
    [\[1, 64\]].  A pool of 1 spawns nothing and {!map} degrades to
    [Array.map].  [config] defaults to {!default_config}. *)

val size : t -> int
(** Number of domains that execute work during a {!map}, including the
    caller.  [size t >= 1]; a {e degraded} pool reports 1. *)

val stats : t -> stats
(** Fault-tolerance counters of this pool (the metrics counters
    aggregate across pools and are gated on the global metrics switch;
    these are always live). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f input] applies [f] to every element of [input] on the
    pool's domains and returns the results in input order.

    If an application of [f] raises (after exhausting the configured
    retries), the first exception observed is re-raised in the caller
    (with its backtrace) after all domains have stopped picking up new
    elements; remaining elements may or may not have been evaluated.
    Raises [Invalid_argument] if the pool has been {!shutdown}. *)

val shutdown : t -> unit
(** Terminate and join the worker domains.  Idempotent.  The pool cannot
    be used afterwards.  Workers abandoned by a timeout are joined only
    if they have provably exited; a worker still hung in a job is leaked
    (the domain stays alive until the process exits). *)
