(* Worker domains park on [work_ready] until the owner publishes a new
   batch (epoch bump), run the shared batch closure to exhaustion, then
   report in on [work_done].  The batch closure itself pulls chunks of
   the input through an atomic cursor, so domains steal work from each
   other rather than owning fixed slices. *)

module Clock = Mm_obs.Clock
module Control = Mm_obs.Control
module Metrics = Mm_obs.Metrics

(* Pool utilisation metrics (recorded only when metrics are enabled):
   batches/items dispatched, summed domain busy time inside batch
   closures, and summed worker wait time between batches. *)
let m_batches = Metrics.counter "pool/batches"
let m_items = Metrics.counter "pool/items"
let m_busy_us = Metrics.counter "pool/busy_us"
let m_wait_us = Metrics.counter "pool/wait_us"
let p_batch = Mm_obs.Probe.create "pool/batch"

type t = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : (unit -> unit) option;
  mutable epoch : int;
  mutable pending : int;  (* workers still inside the current epoch's job *)
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

let max_domains = 64

let worker pool () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    let record_wait = Control.metrics_on () in
    let wait_t0 = if record_wait then Clock.now_us () else 0.0 in
    Mutex.lock pool.mutex;
    while (not pool.closed) && pool.epoch = !seen do
      Condition.wait pool.work_ready pool.mutex
    done;
    if record_wait then
      Metrics.incr ~by:(int_of_float (Clock.now_us () -. wait_t0)) m_wait_us;
    if pool.closed then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      seen := pool.epoch;
      let job = pool.job in
      Mutex.unlock pool.mutex;
      (* The batch closure built by [map] already captures any exception
         its elements raise; this catch-all only guards the pool against
         a closure that escapes that net (it must never skip the
         [pending] bookkeeping below, or [map] would wait forever). *)
      (match job with
      | Some run -> ( try run () with _ -> ())
      | None -> ());
      Mutex.lock pool.mutex;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.work_done;
      Mutex.unlock pool.mutex
    end
  done

let create ?domains () =
  let requested =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  let size = max 1 (min requested max_domains) in
  let pool =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      job = None;
      epoch = 0;
      pending = 0;
      closed = false;
      workers = [||];
    }
  in
  pool.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (worker pool));
  pool

let size pool = Array.length pool.workers + 1

let map pool f input =
  if pool.closed then invalid_arg "Pool.map: pool is shut down";
  let n = Array.length input in
  let n_workers = Array.length pool.workers in
  if n = 0 then [||]
  else if n_workers = 0 || n = 1 then Array.map f input
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failure = Atomic.make None in
    (* A few chunks per domain: coarse enough that the atomic cursor is
       cold, fine enough that the batch does not end on one domain's
       straggler chunk. *)
    let chunk = max 1 (n / ((n_workers + 1) * 4)) in
    let run () =
      let running = ref true in
      while !running do
        let start = Atomic.fetch_and_add cursor chunk in
        if start >= n then running := false
        else
          let stop = min n (start + chunk) in
          for i = start to stop - 1 do
            if Atomic.get failure = None then
              match f input.(i) with
              | v -> results.(i) <- Some v
              | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set failure None (Some (e, bt)))
          done
      done
    in
    let run =
      (* Each domain's time inside the batch closure, summed: against the
         batch wall time this gives the pool's effective utilisation. *)
      if not (Control.metrics_on ()) then run
      else
        fun () ->
          let t0 = Clock.now_us () in
          Fun.protect
            ~finally:(fun () ->
              Metrics.incr ~by:(int_of_float (Clock.now_us () -. t0)) m_busy_us)
            run
    in
    Metrics.incr m_batches;
    Metrics.incr ~by:n m_items;
    Mm_obs.Probe.run
      ~args:(fun () ->
        [
          ("items", string_of_int n);
          ("domains", string_of_int (n_workers + 1));
        ])
      p_batch
      (fun () ->
        Mutex.lock pool.mutex;
        pool.job <- Some run;
        pool.epoch <- pool.epoch + 1;
        pool.pending <- n_workers;
        Condition.broadcast pool.work_ready;
        Mutex.unlock pool.mutex;
        run ();
        Mutex.lock pool.mutex;
        while pool.pending > 0 do
          Condition.wait pool.work_done pool.mutex
        done;
        pool.job <- None;
        Mutex.unlock pool.mutex);
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.map (function Some v -> v | None -> assert false) results
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.workers <- [||];
  if not pool.closed then begin
    pool.closed <- true;
    Condition.broadcast pool.work_ready
  end;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join workers
