(* Worker domains park on [work_ready] until the owner publishes a new
   batch (epoch bump), run the shared batch closure to exhaustion, then
   report in on [work_done].  The batch closure itself pulls chunks of
   the input through an atomic cursor, so domains steal work from each
   other rather than owning fixed slices.

   Fault tolerance: a raising job is retried with capped exponential
   backoff ([config.max_retries]); a batch whose workers do not report
   in within [config.timeout] seconds of the owner finishing its own
   share is {e abandoned} — OCaml domains cannot be killed, so the era
   counter below invalidates the stragglers' bookkeeping, replacements
   are spawned, and the owner finishes the batch's unprocessed slots
   serially.  Workers that keep having to be replaced eventually trip
   [config.max_respawns] and the pool degrades to serial maps for the
   rest of its life.  Abandoned workers are joined at [shutdown] only if
   they provably exited (their [exited] flag); a worker hung forever in
   a user job is leaked rather than blocking shutdown. *)

module Clock = Mm_obs.Clock
module Control = Mm_obs.Control
module Metrics = Mm_obs.Metrics
module Fault = Mm_fault.Fault

(* Chaos sites (no-ops unless a plan is armed): a worker that raises on
   its first attempt at an item — only ever injected when the pool is
   configured to retry, so the injected failure is always recovered and
   the map's results are unchanged — and a worker that stalls, which
   exercises the timeout/abandon machinery without losing work. *)
let site_worker_raise = Fault.site "pool.worker_raise"
let site_worker_stall = Fault.site "pool.worker_stall"

(* Pool utilisation metrics (recorded only when metrics are enabled):
   batches/items dispatched, summed domain busy time inside batch
   closures, and the two idle components — queue wait (workers parked
   between batches, i.e. dispatch cost) and barrier wait (the owner
   blocked on stragglers at the end of a batch, i.e. imbalance).  The
   fault counters mirror the per-pool [stats] so a whole process's pool
   trouble is visible in metrics.json. *)
let m_batches = Metrics.counter "pool/batches"
let m_items = Metrics.counter "pool/items"
let m_busy_us = Metrics.counter "pool/busy_us"
let m_queue_wait_us = Metrics.counter "pool/queue_wait_us"
let m_barrier_wait_us = Metrics.counter "pool/barrier_wait_us"
let m_retries = Metrics.counter "pool/retries"
let m_timeouts = Metrics.counter "pool/timeouts"
let m_respawns = Metrics.counter "pool/respawns"
let p_batch = Mm_obs.Probe.create "pool/batch"

type config = {
  max_retries : int;
  backoff : float;
  backoff_max : float;
  timeout : float;
  max_respawns : int;
}

let default_config =
  {
    max_retries = 0;
    backoff = 1e-3;
    backoff_max = 0.1;
    timeout = 0.0;
    max_respawns = 8;
  }

type worker = { domain : unit Domain.t; exited : bool Atomic.t }

type t = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  cfg : config;
  mutable job : (unit -> unit) option;
  mutable epoch : int;
  mutable era : int;  (* bumped to invalidate all live workers at once *)
  mutable live_epoch : int;  (* epoch whose [pending] count is trusted *)
  mutable pending : int;  (* workers still inside the current epoch's job *)
  mutable closed : bool;
  mutable workers : worker array;
  mutable retired : worker list;  (* abandoned; joined at shutdown if exited *)
  mutable degraded : bool;
  target : int;  (* worker count to respawn after an abandon *)
  n_retries : int Atomic.t;  (* bumped from worker domains *)
  mutable n_timeouts : int;
  mutable n_respawns : int;
  queue_wait_us : int Atomic.t;  (* worker park time, bumped from workers *)
  mutable barrier_wait_us : int;  (* owner time blocked on stragglers *)
  mutable est_item_us : float;  (* EWMA per-item cost; 0.0 = no batch seen *)
}

type stats = {
  retries : int;
  timeouts : int;
  respawns : int;
  degraded : bool;
  queue_wait_seconds : float;
  barrier_wait_seconds : float;
}

(* Auto-tuned chunking aims each cursor fetch at roughly this much
   estimated work: cheap items get coarse chunks (the fetch amortises),
   expensive items fall back to fine-grained stealing for balance. *)
let chunk_target_us = 200.0

let max_domains = 64

let worker pool ~era ~epoch0 ~exited () =
  (* [epoch0] was captured on the spawning thread: a worker spawned by
     an abandon must not pick up the batch being abandoned, so it waits
     for the next bump; reading [pool.epoch] from here instead would
     race with the owner publishing a first batch. *)
  let seen = ref epoch0 in
  let running = ref true in
  while !running do
    (* Queue wait is measured unconditionally (two clock reads per
       batch) so [stats] can always report it; the metrics counter
       stays gated as before. *)
    let wait_t0 = Clock.now_us () in
    Mutex.lock pool.mutex;
    while (not pool.closed) && pool.era = era && pool.epoch = !seen do
      Condition.wait pool.work_ready pool.mutex
    done;
    let waited = int_of_float (Clock.now_us () -. wait_t0) in
    ignore (Atomic.fetch_and_add pool.queue_wait_us waited);
    if Control.metrics_on () then Metrics.incr ~by:waited m_queue_wait_us;
    if pool.closed || pool.era <> era then begin
      Mutex.unlock pool.mutex;
      running := false
    end
    else begin
      seen := pool.epoch;
      let job = pool.job in
      Mutex.unlock pool.mutex;
      (* The batch closure built by [map] already captures any exception
         its elements raise; this catch-all only guards the pool against
         a closure that escapes that net (it must never skip the
         [pending] bookkeeping below, or [map] would wait forever). *)
      (match job with
      | Some run -> ( try run () with _ -> ())
      | None -> ());
      Mutex.lock pool.mutex;
      (* A straggler from an abandoned era (or epoch) must not touch the
         pending count of whatever batch is live now. *)
      if pool.era = era && pool.live_epoch = !seen then begin
        pool.pending <- pool.pending - 1;
        if pool.pending = 0 then Condition.broadcast pool.work_done
      end;
      Mutex.unlock pool.mutex
    end
  done;
  Atomic.set exited true

let spawn_worker pool =
  let exited = Atomic.make false in
  let d = Domain.spawn (worker pool ~era:pool.era ~epoch0:pool.epoch ~exited) in
  { domain = d; exited }

let clamp_jobs ?(allow_oversubscribe = false) requested =
  let ceiling =
    if allow_oversubscribe then max_domains
    else min max_domains (Domain.recommended_domain_count ())
  in
  max 1 (min requested ceiling)

let create ?domains ?(config = default_config) () =
  let requested =
    match domains with Some d -> d | None -> Domain.recommended_domain_count ()
  in
  let size = max 1 (min requested max_domains) in
  let pool =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      work_done = Condition.create ();
      cfg = config;
      job = None;
      epoch = 0;
      era = 0;
      live_epoch = -1;
      pending = 0;
      closed = false;
      workers = [||];
      retired = [];
      degraded = false;
      target = size - 1;
      n_retries = Atomic.make 0;
      n_timeouts = 0;
      n_respawns = 0;
      queue_wait_us = Atomic.make 0;
      barrier_wait_us = 0;
      est_item_us = 0.0;
    }
  in
  pool.workers <- Array.init (size - 1) (fun _ -> spawn_worker pool);
  pool

let size pool = Array.length pool.workers + 1

let stats pool =
  Mutex.lock pool.mutex;
  let s =
    {
      retries = Atomic.get pool.n_retries;
      timeouts = pool.n_timeouts;
      respawns = pool.n_respawns;
      degraded = pool.degraded;
      queue_wait_seconds = float_of_int (Atomic.get pool.queue_wait_us) *. 1e-6;
      barrier_wait_seconds = float_of_int pool.barrier_wait_us *. 1e-6;
    }
  in
  Mutex.unlock pool.mutex;
  s

(* Run one job, retrying a raising [f] up to [max_retries] times with
   capped exponential backoff.  The final failure re-raises with its
   original backtrace. *)
let apply pool f x =
  let cfg = pool.cfg in
  let rec attempt k =
    try
      if k = 0 then begin
        let stall = Fault.fire_delay site_worker_stall in
        if stall > 0.0 then Unix.sleepf stall;
        (* Raise only on the first attempt and only when the retry
           budget can absorb it: every injected failure is recovered,
           so a chaos run's map results are bit-identical. *)
        if cfg.max_retries > 0 then Fault.raise_if site_worker_raise
      end;
      f x
    with _ when k < cfg.max_retries ->
      Atomic.incr pool.n_retries;
      Metrics.incr m_retries;
      let delay =
        Float.min cfg.backoff_max (cfg.backoff *. (2.0 ** float_of_int k))
      in
      if delay > 0.0 then Unix.sleepf delay;
      attempt (k + 1)
  in
  attempt 0

(* Abandon the current batch's workers: the era bump makes every live
   worker exit (or, if hung, renders it a harmless zombie whose
   bookkeeping is ignored), replacements are spawned unless that would
   exceed the respawn budget, in which case the pool degrades to serial.
   Called with [pool.mutex] held. *)
let abandon pool =
  pool.n_timeouts <- pool.n_timeouts + 1;
  Metrics.incr m_timeouts;
  let lost = Array.length pool.workers in
  pool.era <- pool.era + 1;
  pool.live_epoch <- -1;
  pool.pending <- 0;
  pool.retired <- Array.to_list pool.workers @ pool.retired;
  if pool.n_respawns + lost > pool.cfg.max_respawns then begin
    pool.workers <- [||];
    pool.degraded <- true
  end
  else begin
    pool.n_respawns <- pool.n_respawns + lost;
    Metrics.incr ~by:lost m_respawns;
    pool.workers <- Array.init pool.target (fun _ -> spawn_worker pool)
  end;
  (* Wake exited-era workers parked on [work_ready] so they can leave. *)
  Condition.broadcast pool.work_ready

let map pool f input =
  if pool.closed then invalid_arg "Pool.map: pool is shut down";
  let n = Array.length input in
  let n_workers = Array.length pool.workers in
  if n = 0 then [||]
  else if n_workers = 0 || n = 1 then Array.map (apply pool f) input
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let failure = Atomic.make None in
    let element i =
      if Atomic.get failure = None then
        match apply pool f input.(i) with
        | v -> results.(i) <- Some v
        | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          ignore (Atomic.compare_and_set failure None (Some (e, bt)))
    in
    (* Chunk granularity: the first batch of a pool falls back to the
       fixed few-chunks-per-domain heuristic; once a batch has been
       measured, chunks are sized so each cursor fetch covers roughly
       [chunk_target_us] of estimated work — cheap items get coarse
       chunks (amortising cursor contention), expensive items stay
       fine-grained for balance.  Capped so every domain can still grab
       at least one chunk. *)
    let chunk =
      if pool.est_item_us > 0.0 then
        let by_cost = int_of_float (ceil (chunk_target_us /. pool.est_item_us)) in
        max 1 (min by_cost (max 1 (n / (n_workers + 1))))
      else max 1 (n / ((n_workers + 1) * 4))
    in
    let run () =
      let running = ref true in
      while !running do
        let start = Atomic.fetch_and_add cursor chunk in
        if start >= n then running := false
        else
          for i = start to min n (start + chunk) - 1 do
            element i
          done
      done
    in
    (* Each domain's time inside the batch closure, summed: against the
       batch wall time this gives the pool's effective utilisation, and
       (divided by the item count) it feeds the chunk-size estimate for
       the next batch.  Measured unconditionally — two clock reads per
       domain per batch — with the metrics counter gated as before. *)
    let batch_busy_us = Atomic.make 0 in
    let run () =
      let t0 = Clock.now_us () in
      Fun.protect
        ~finally:(fun () ->
          let dt = int_of_float (Clock.now_us () -. t0) in
          ignore (Atomic.fetch_and_add batch_busy_us dt);
          if Control.metrics_on () then Metrics.incr ~by:dt m_busy_us)
        run
    in
    Metrics.incr m_batches;
    Metrics.incr ~by:n m_items;
    Mm_obs.Probe.run
      ~args:(fun () ->
        [
          ("items", string_of_int n);
          ("domains", string_of_int (n_workers + 1));
        ])
      p_batch
      (fun () ->
        Mutex.lock pool.mutex;
        pool.job <- Some run;
        pool.epoch <- pool.epoch + 1;
        pool.live_epoch <- pool.epoch;
        pool.pending <- n_workers;
        Condition.broadcast pool.work_ready;
        Mutex.unlock pool.mutex;
        run ();
        (* Everything from here until [pending] drains is barrier wait:
           the owner has finished its share and is blocked on straggler
           chunks (imbalance), as opposed to the workers' queue wait
           between batches (dispatch cost). *)
        let barrier_t0 = Clock.now_us () in
        Mutex.lock pool.mutex;
        if pool.cfg.timeout <= 0.0 then
          while pool.pending > 0 do
            Condition.wait pool.work_done pool.mutex
          done
        else begin
          (* [Condition] has no timed wait, so poll.  The deadline runs
             from the moment the owner finished its own share: the
             stragglers get [timeout] seconds of grace, independent of
             how long the batch as a whole takes. *)
          let deadline = Clock.now_us () +. (pool.cfg.timeout *. 1e6) in
          while pool.pending > 0 do
            if Clock.now_us () > deadline then abandon pool
            else begin
              Mutex.unlock pool.mutex;
              Unix.sleepf 0.0005;
              Mutex.lock pool.mutex
            end
          done
        end;
        pool.job <- None;
        let barrier_us = int_of_float (Clock.now_us () -. barrier_t0) in
        pool.barrier_wait_us <- pool.barrier_wait_us + barrier_us;
        if Control.metrics_on () then Metrics.incr ~by:barrier_us m_barrier_wait_us;
        (* Feed the chunk-size estimate: EWMA of measured per-item cost,
           so one anomalous batch cannot wreck the tuning. *)
        let busy = Atomic.get batch_busy_us in
        if busy > 0 then begin
          let per_item = float_of_int busy /. float_of_int n in
          pool.est_item_us <-
            (if pool.est_item_us > 0.0 then (pool.est_item_us +. per_item) /. 2.0
             else per_item)
        end;
        Mutex.unlock pool.mutex;
        (* After an abandon the hung workers' chunks are unfinished (and
           a zombie may still be filling slots behind us, which is
           harmless for the pure [f] the pool requires: both writes carry
           the same value).  Finish them on the calling domain. *)
        for i = 0 to n - 1 do
          if results.(i) = None then element i
        done);
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> Array.map (function Some v -> v | None -> assert false) results
  end

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  let retired = pool.retired in
  pool.workers <- [||];
  pool.retired <- [];
  if not pool.closed then begin
    pool.closed <- true;
    Condition.broadcast pool.work_ready
  end;
  Mutex.unlock pool.mutex;
  Array.iter (fun w -> Domain.join w.domain) workers;
  (* Retired workers are joined only when they provably left their loop;
     one hung forever in a user job is leaked rather than deadlocking
     shutdown. *)
  List.iter (fun w -> if Atomic.get w.exited then Domain.join w.domain) retired
