(* Global cache-traffic metrics (all caches pooled; per-cache numbers
   come from the [hits]/[misses] accessors below). *)
let m_hits = Mm_obs.Metrics.counter "memo/hits"
let m_misses = Mm_obs.Metrics.counter "memo/misses"
let m_evictions = Mm_obs.Metrics.counter "memo/evictions"
let m_bypassed = Mm_obs.Metrics.counter "memo/bypassed"

module Key = struct
  type t = int array

  let equal (a : int array) (b : int array) = a = b

  (* FNV-1a folded over every gene: [Hashtbl.hash] only inspects a
     bounded prefix of the array, which makes near-identical long
     genomes (the common case in a converged population) collide. *)
  let hash (a : int array) =
    let h = ref 0x811c9dc5 in
    for i = 0 to Array.length a - 1 do
      h := (!h lxor a.(i)) * 0x01000193 land 0x3FFFFFFF
    done;
    !h
end

module H = Hashtbl.Make (Key)

type 'v node = {
  key : int array;
  mutable value : 'v;
  mutable pinned : bool;
  mutable prev : 'v node option;
  mutable next : 'v node option;
}

type 'v t = {
  table : 'v node H.t;
  cap : int;
  probe_window : int;  (* lookups before the bypass decision; 0 = never *)
  min_hit_rate : float;
  mutable bypassed : bool;
  mutable n_bypassed : int;  (* lookups skipped after self-disabling *)
  mutable head : 'v node option;  (* most recently used *)
  mutable tail : 'v node option;  (* least recently used *)
  mutable pins : 'v node list;  (* nodes currently exempt from eviction *)
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_evictions : int;
}

let create ?(probe_window = 0) ?(min_hit_rate = 0.1) ~capacity () =
  if capacity < 1 then invalid_arg "Memo.create: capacity must be >= 1";
  {
    table = H.create (min capacity 1024);
    cap = capacity;
    probe_window;
    min_hit_rate;
    bypassed = false;
    n_bypassed = 0;
    head = None;
    tail = None;
    pins = [];
    n_hits = 0;
    n_misses = 0;
    n_evictions = 0;
  }

let adaptive ~capacity = create ~probe_window:1024 ~min_hit_rate:0.1 ~capacity ()

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let pin_node t node =
  if not node.pinned then begin
    node.pinned <- true;
    t.pins <- node :: t.pins
  end

(* The adaptive bypass decision, taken exactly once when the probe
   window fills: a cache whose hit rate never got off the ground is
   paying hash-the-whole-genome lookups and LRU churn for nothing, so
   it stops answering (and growing) for the rest of its life.  Because
   a bypassed [find] is indistinguishable from a miss and results are
   pure functions of the genome, bypassing can never change what a
   caller computes — only how fast. *)
let probe t =
  if
    t.probe_window > 0
    && t.n_hits + t.n_misses = t.probe_window
    && float_of_int t.n_hits < t.min_hit_rate *. float_of_int t.probe_window
  then t.bypassed <- true

let find ?(pin = false) t key =
  if t.bypassed then begin
    t.n_bypassed <- t.n_bypassed + 1;
    Mm_obs.Metrics.incr m_bypassed;
    None
  end
  else
    match H.find_opt t.table key with
    | Some node ->
      t.n_hits <- t.n_hits + 1;
      Mm_obs.Metrics.incr m_hits;
      probe t;
      unlink t node;
      push_front t node;
      if pin then pin_node t node;
      Some node.value
    | None ->
      t.n_misses <- t.n_misses + 1;
      Mm_obs.Metrics.incr m_misses;
      probe t;
      None

(* Evict the least-recently-used unpinned entry, scanning from the tail:
   a pinned entry is in active use by the current batch, and evicting it
   would force the in-flight computation that just inserted (or looked
   it up) to be redone.  Returns false when every entry is pinned, in
   which case the cache temporarily overflows its capacity until
   [unpin_all]. *)
let evict_one t =
  let rec scan = function
    | None -> false
    | Some node when node.pinned -> scan node.prev
    | Some node ->
      unlink t node;
      H.remove t.table node.key;
      t.n_evictions <- t.n_evictions + 1;
      Mm_obs.Metrics.incr m_evictions;
      true
  in
  scan t.tail

let trim t =
  let evictable = ref true in
  while H.length t.table > t.cap && !evictable do
    evictable := evict_one t
  done

let add ?(pin = false) t key value =
  if not t.bypassed then begin
    (match H.find_opt t.table key with
    | Some node ->
      node.value <- value;
      unlink t node;
      push_front t node;
      if pin then pin_node t node
    | None ->
      let node =
        { key = Array.copy key; value; pinned = false; prev = None; next = None }
      in
      H.replace t.table node.key node;
      push_front t node;
      if pin then pin_node t node);
    if H.length t.table > t.cap then trim t
  end

let unpin_all t =
  List.iter (fun node -> node.pinned <- false) t.pins;
  t.pins <- [];
  trim t

let pinned t = List.length t.pins

let mem t key = H.mem t.table key

let clear t =
  H.reset t.table;
  t.head <- None;
  t.tail <- None;
  List.iter (fun node -> node.pinned <- false) t.pins;
  t.pins <- []

let reset_stats t =
  t.n_hits <- 0;
  t.n_misses <- 0;
  t.n_evictions <- 0

let length t = H.length t.table
let capacity t = t.cap
let hits t = t.n_hits
let misses t = t.n_misses
let evictions t = t.n_evictions
let bypassed t = t.bypassed
let bypassed_lookups t = t.n_bypassed

let hit_rate t =
  let total = t.n_hits + t.n_misses in
  if total = 0 then 0.0 else float_of_int t.n_hits /. float_of_int total
