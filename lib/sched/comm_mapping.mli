(** Communication mapping M_γ: assigning data edges to communication
    links.

    The paper's inner loop optimises communication mapping together with
    scheduling [12]; since both compared synthesis approaches share the
    inner loop, we use a deterministic rule — route each inter-PE edge
    over the attached link with the smallest transfer time, breaking ties
    by transfer energy and then link id.  Deterministic routing makes
    whole synthesis runs reproducible. *)

type decision =
  | Local  (** Producer and consumer share a PE: no link needed, no cost. *)
  | Via of { cl : Mm_arch.Cl.t; time : float; energy : float }
  | Unroutable  (** No link attaches both PEs: the mapping is infeasible. *)

val route :
  Mm_arch.Architecture.t -> src_pe:int -> dst_pe:int -> data:float -> decision

val best_case_time :
  Mm_arch.Architecture.t -> data:float -> float
(** The smallest transfer time for [data] over any link of the
    architecture — the optimistic estimate used for pre-mapping mobility
    analysis.  0 when the architecture has no links. *)
