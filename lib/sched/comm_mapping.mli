(** Communication mapping M_γ: assigning data edges to communication
    links.

    The paper's inner loop optimises communication mapping together with
    scheduling [12]; since both compared synthesis approaches share the
    inner loop, we use a deterministic rule — route each inter-PE edge
    over the attached link with the smallest transfer time, breaking ties
    by transfer energy and then link id.  Deterministic routing makes
    whole synthesis runs reproducible. *)

type decision =
  | Local  (** Producer and consumer share a PE: no link needed, no cost. *)
  | Via of { cl : Mm_arch.Cl.t; time : float; energy : float }
  | Unroutable  (** No link attaches both PEs: the mapping is infeasible. *)

val route :
  Mm_arch.Architecture.t -> src_pe:int -> dst_pe:int -> data:float -> decision

type table
(** Pre-resolved per-(src PE, dst PE) link candidates: the compile-once
    replacement for calling [Architecture.links_between] per edge per
    pass.  Immutable after {!table}; safe to share across domains. *)

val table : Mm_arch.Architecture.t -> table

val route_via : table -> src_pe:int -> dst_pe:int -> data:float -> decision
(** Identical decisions to {!route} (same candidate order, same
    time/energy/link-id tie-breaking), without the per-call link
    filtering. *)

val table_pairs : table -> int
(** Number of (src, dst) PE pairs the table covers (n_pes²). *)

val table_entries : table -> int
(** Total pre-resolved link candidates across all pairs. *)

val best_case_time :
  Mm_arch.Architecture.t -> data:float -> float
(** The smallest transfer time for [data] over any link of the
    architecture — the optimistic estimate used for pre-mapping mobility
    analysis.  0 when the architecture has no links. *)
