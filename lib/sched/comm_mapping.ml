module Arch = Mm_arch.Architecture
module Cl = Mm_arch.Cl

type decision =
  | Local
  | Via of { cl : Cl.t; time : float; energy : float }
  | Unroutable

(* Tie-breaking shared by the seed [route] and the table path: smallest
   time, then smallest energy, then smallest link id.  Both paths must
   fold the same candidates through the same comparison so a compiled
   run routes bit-identically to the seed. *)
let better a b =
  match (a, b) with
  | Via a', Via b' ->
    if a'.time < b'.time then a
    else if a'.time > b'.time then b
    else if a'.energy < b'.energy then a
    else if a'.energy > b'.energy then b
    else if Cl.id a'.cl <= Cl.id b'.cl then a
    else b
  | Via _, (Local | Unroutable) -> a
  | (Local | Unroutable), Via _ -> b
  | (Local | Unroutable), (Local | Unroutable) -> a

let route_over candidates ~data =
  List.fold_left
    (fun best cl ->
      let candidate =
        Via
          {
            cl;
            time = Cl.transfer_time cl ~data;
            energy = Cl.transfer_energy cl ~data;
          }
      in
      better best candidate)
    Unroutable candidates

let route arch ~src_pe ~dst_pe ~data =
  if src_pe = dst_pe then Local
  else route_over (Arch.links_between arch src_pe dst_pe) ~data

(* Compile-once route table: [Arch.links_between] filters the full link
   list on every call, and the scheduler calls it for every edge of
   every mobility/bottom-level/schedule pass.  The table resolves the
   per-pair candidate set once; [route_via] then folds the same
   candidates in the same order as the seed (the winner can depend on
   [data] — at data 0 every transfer costs nothing and the tie-break
   falls through to link ids — so candidates are kept, not a
   pre-picked winner). *)

type table = { n_pes : int; pairs : Cl.t list array }

let table arch =
  let n_pes = Arch.n_pes arch in
  let pairs =
    Array.init (n_pes * n_pes) (fun k ->
        Arch.links_between arch (k / n_pes) (k mod n_pes))
  in
  { n_pes; pairs }

let route_via table ~src_pe ~dst_pe ~data =
  if src_pe = dst_pe then Local
  else route_over table.pairs.((src_pe * table.n_pes) + dst_pe) ~data

let table_pairs table = table.n_pes * table.n_pes

let table_entries table =
  Array.fold_left (fun acc cls -> acc + List.length cls) 0 table.pairs

let best_case_time arch ~data =
  match Arch.cls arch with
  | [] -> 0.0
  | cls ->
    List.fold_left
      (fun acc cl -> Float.min acc (Cl.transfer_time cl ~data))
      Float.infinity cls
