module Arch = Mm_arch.Architecture
module Cl = Mm_arch.Cl

type decision =
  | Local
  | Via of { cl : Cl.t; time : float; energy : float }
  | Unroutable

let route arch ~src_pe ~dst_pe ~data =
  if src_pe = dst_pe then Local
  else
    let candidates = Arch.links_between arch src_pe dst_pe in
    let better a b =
      match (a, b) with
      | Via a', Via b' ->
        if a'.time < b'.time then a
        else if a'.time > b'.time then b
        else if a'.energy < b'.energy then a
        else if a'.energy > b'.energy then b
        else if Cl.id a'.cl <= Cl.id b'.cl then a
        else b
      | Via _, (Local | Unroutable) -> a
      | (Local | Unroutable), Via _ -> b
      | (Local | Unroutable), (Local | Unroutable) -> a
    in
    List.fold_left
      (fun best cl ->
        let candidate =
          Via
            {
              cl;
              time = Cl.transfer_time cl ~data;
              energy = Cl.transfer_energy cl ~data;
            }
        in
        better best candidate)
      Unroutable candidates

let best_case_time arch ~data =
  match Arch.cls arch with
  | [] -> 0.0
  | cls ->
    List.fold_left
      (fun acc cl -> Float.min acc (Cl.transfer_time cl ~data))
      Float.infinity cls
