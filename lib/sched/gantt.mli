(** ASCII Gantt charts of per-mode schedules.

    Renders one row per execution resource (software PEs, hardware core
    instances, links), time flowing rightwards, with task/communication
    ids inside their occupancy intervals — the textual equivalent of the
    schedule figures in the paper (Fig. 2/3/5). *)

type options = {
  width : int;  (** Character columns for the time axis (>= 20). *)
  show_links : bool;  (** Include communication-link rows. *)
}

val default_options : options
(** 72 columns, links shown. *)

val render : ?options:options -> Schedule.t -> string
(** Raises [Invalid_argument] when [options.width < 20]. *)

val render_scaled :
  ?options:options ->
  Schedule.t ->
  stretched_finish:float array ->
  string
(** Like {!render} but annotates every task with its post-DVS finish time
    (the schedule order stays the nominal one: voltage scaling never
    reorders). *)

val print : ?options:options -> Schedule.t -> unit
