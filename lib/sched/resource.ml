type t =
  | Sw_pe of int
  | Hw_core of { pe : int; ty : int; instance : int }
  | Link of int

let compare = compare
let equal a b = compare a b = 0

let pe_id = function
  | Sw_pe pe -> Some pe
  | Hw_core { pe; _ } -> Some pe
  | Link _ -> None

let pp ppf = function
  | Sw_pe pe -> Format.fprintf ppf "sw-pe%d" pe
  | Hw_core { pe; ty; instance } -> Format.fprintf ppf "pe%d.core(ty%d,#%d)" pe ty instance
  | Link cl -> Format.fprintf ppf "cl%d" cl

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
