(** Mobility-driven list scheduling of one mode onto a mapped
    architecture (the deterministic inner loop; see DESIGN.md §3 for why
    a deterministic stand-in for the GA-based inner loop of [12] is a
    faithful substitution).

    Tasks become ready when all predecessors are scheduled; among ready
    tasks the one with the smallest mobility (most critical) is placed
    first.  Incoming inter-PE communications are placed on their mapped
    link immediately before the consumer, respecting link occupancy. *)

type input = {
  mode_id : int;
  graph : Mm_taskgraph.Graph.t;
  arch : Mm_arch.Architecture.t;
  tech : Mm_arch.Tech_lib.t;
  mapping : int array;  (** [mapping.(task)] = PE id. *)
  instances : pe:int -> ty:int -> int;
      (** Allocated core instances per (hardware PE, task type); must
          return >= 1 for every pair actually used by [mapping].  Ignored
          for software PEs. *)
  period : float;
}

type policy =
  | Mobility_first
      (** Smallest ALAP−ASAP mobility first (the default; critical tasks
          cannot wait). *)
  | Critical_path_first
      (** Largest bottom level first (HLFET): longest remaining
          exec+comm path to a sink. *)
  | Topological
      (** Deterministic topological (FIFO-like) order — the naive
          baseline for the scheduler-policy ablation. *)

exception Unsupported_mapping of { task : int; pe : int }
(** Raised when [mapping] sends a task to a PE with no implementation of
    its type in the technology library. *)

val run : ?policy:policy -> input -> Schedule.t

val exec_times : input -> float array
(** Nominal execution time of each task under the mapping (also used by
    callers for mobility analysis). *)
