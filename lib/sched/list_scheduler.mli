(** Mobility-driven list scheduling of one mode onto a mapped
    architecture (the deterministic inner loop; see DESIGN.md §3 for why
    a deterministic stand-in for the GA-based inner loop of [12] is a
    faithful substitution).

    Tasks become ready when all predecessors are scheduled; among ready
    tasks the one with the smallest mobility (most critical) is placed
    first.  Incoming inter-PE communications are placed on their mapped
    link immediately before the consumer, respecting link occupancy.

    The scheduler routes every edge exactly once per run and keeps the
    ready set in a binary heap keyed (priority, task id); with the
    optional compiled inputs ([mobility], [routes], [dispatch]) it also
    skips the per-run mobility recomputation, the per-edge link
    filtering and the balanced-tree technology lookups.  All of this is
    pure plumbing: schedules are bit-identical to {!run_reference}, the
    seed implementation (enforced by the equivalence tests; see
    DESIGN.md §10). *)

type input = {
  mode_id : int;
  graph : Mm_taskgraph.Graph.t;
  arch : Mm_arch.Architecture.t;
  tech : Mm_arch.Tech_lib.t;
  mapping : int array;  (** [mapping.(task)] = PE id. *)
  instances : pe:int -> ty:int -> int;
      (** Allocated core instances per (hardware PE, task type); must
          return >= 1 for every pair actually used by [mapping].  Ignored
          for software PEs. *)
  period : float;
  mobility : Mm_taskgraph.Mobility.t option;
      (** Pre-computed mapped mobility (execution times of the mapped
          implementations, communication times of the routed links,
          horizon [period]) for the [Mobility_first] policy.  [None]
          recomputes it; a caller that already ran the mobility analysis
          (the fitness pipeline does, for core allocation) threads it
          through here instead. *)
  routes : Comm_mapping.table option;
      (** Compile-once route table of [arch]; [None] falls back to
          [Comm_mapping.route].  Either way each edge is routed once per
          run. *)
  dispatch : Mm_arch.Tech_lib.dispatch option;
      (** Dense technology dispatch of [tech]; [None] falls back to
          [Tech_lib.find]. *)
}

val make_input :
  ?mobility:Mm_taskgraph.Mobility.t ->
  ?routes:Comm_mapping.table ->
  ?dispatch:Mm_arch.Tech_lib.dispatch ->
  mode_id:int ->
  graph:Mm_taskgraph.Graph.t ->
  arch:Mm_arch.Architecture.t ->
  tech:Mm_arch.Tech_lib.t ->
  mapping:int array ->
  instances:(pe:int -> ty:int -> int) ->
  period:float ->
  unit ->
  input
(** Plain constructor; the compiled fields default to [None]. *)

type policy =
  | Mobility_first
      (** Smallest ALAP−ASAP mobility first (the default; critical tasks
          cannot wait). *)
  | Critical_path_first
      (** Largest bottom level first (HLFET): longest remaining
          exec+comm path to a sink. *)
  | Topological
      (** Deterministic topological (FIFO-like) order — the naive
          baseline for the scheduler-policy ablation. *)

exception Unsupported_mapping of { task : int; pe : int }
(** Raised when [mapping] sends a task to a PE with no implementation of
    its type in the technology library. *)

val run : ?policy:policy -> input -> Schedule.t

val run_reference : ?policy:policy -> input -> Schedule.t
(** The seed implementation (per-pass edge routing, balanced-tree
    technology lookups, O(n²) ready rescans, mobility recomputed per
    call), kept as the equivalence oracle for {!run}.  Ignores the
    compiled input fields. *)

val exec_times : input -> float array
(** Nominal execution time of each task under the mapping (also used by
    callers for mobility analysis). *)
