type options = { width : int; show_links : bool }

let default_options = { width = 72; show_links = true }

(* One chart row: a label and a set of [start, finish) intervals carrying
   short tags. *)
type row = { label : string; intervals : (float * float * string) list }

let rows_of_schedule ~show_links (sched : Schedule.t) =
  let task_rows = Hashtbl.create 8 in
  Array.iter
    (fun (slot : Schedule.task_slot) ->
      let key = slot.Schedule.resource in
      let existing = Option.value ~default:[] (Hashtbl.find_opt task_rows key) in
      Hashtbl.replace task_rows key
        ((slot.Schedule.start, Schedule.finish slot, Printf.sprintf "t%d" slot.Schedule.task)
        :: existing))
    sched.Schedule.task_slots;
  let resource_rows =
    Hashtbl.fold
      (fun resource intervals acc ->
        let label = Format.asprintf "%a" Resource.pp resource in
        { label; intervals = List.sort compare intervals } :: acc)
      task_rows []
    |> List.sort (fun a b -> compare a.label b.label)
  in
  if not show_links then resource_rows
  else begin
    let link_rows = Hashtbl.create 4 in
    List.iter
      (fun (c : Schedule.comm_slot) ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt link_rows c.Schedule.cl) in
        Hashtbl.replace link_rows c.Schedule.cl
          ((c.Schedule.start, Schedule.comm_finish c,
            Printf.sprintf "%d>%d" c.Schedule.edge.Mm_taskgraph.Graph.src
              c.Schedule.edge.Mm_taskgraph.Graph.dst)
          :: existing))
      sched.Schedule.comm_slots;
    let links =
      Hashtbl.fold
        (fun cl intervals acc ->
          { label = Printf.sprintf "cl%d" cl; intervals = List.sort compare intervals }
          :: acc)
        link_rows []
      |> List.sort (fun a b -> compare a.label b.label)
    in
    resource_rows @ links
  end

let render_rows ~options ~horizon rows =
  let width = options.width in
  if width < 20 then invalid_arg "Gantt.render: width must be >= 20";
  let label_width =
    List.fold_left (fun acc row -> max acc (String.length row.label)) 8 rows
  in
  let column_of time = int_of_float (time /. horizon *. float_of_int (width - 1)) in
  let buf = Buffer.create 1024 in
  List.iter
    (fun row ->
      let line = Bytes.make width '.' in
      List.iter
        (fun (start, finish, tag) ->
          let first = max 0 (min (width - 1) (column_of start)) in
          let last = max first (min (width - 1) (column_of finish - 1)) in
          for col = first to last do
            Bytes.set line col '='
          done;
          (* Write the tag starting at the bar; short bars let it spill
             into the adjacent idle space so it stays readable. *)
          String.iteri
            (fun k ch ->
              let col = first + k in
              if col < width then Bytes.set line col ch)
            tag)
        row.intervals;
      Buffer.add_string buf (Printf.sprintf "%-*s |%s|\n" label_width row.label (Bytes.to_string line)))
    rows;
  (* Time axis. *)
  let axis = Printf.sprintf "%-*s 0%*s" label_width "" width (Printf.sprintf "%.4g s" horizon) in
  Buffer.add_string buf axis;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let render ?(options = default_options) sched =
  let horizon = Float.max (Schedule.makespan sched) 1e-12 in
  let rows = rows_of_schedule ~show_links:options.show_links sched in
  Printf.sprintf "mode %d schedule (makespan %.4g s / period %.4g s)\n%s"
    sched.Schedule.mode_id (Schedule.makespan sched) sched.Schedule.period
    (render_rows ~options ~horizon rows)

let render_scaled ?(options = default_options) sched ~stretched_finish =
  let scaled_horizon = Array.fold_left Float.max 1e-12 stretched_finish in
  let horizon = Float.max scaled_horizon (Schedule.makespan sched) in
  let rows = rows_of_schedule ~show_links:options.show_links sched in
  let annotations =
    Array.to_list (Array.mapi (fun task finish -> Printf.sprintf "t%d→%.4gs" task finish) stretched_finish)
  in
  Printf.sprintf
    "mode %d schedule (nominal makespan %.4g s, post-DVS completion %.4g s)\n%sscaled finishes: %s\n"
    sched.Schedule.mode_id (Schedule.makespan sched) scaled_horizon
    (render_rows ~options ~horizon rows)
    (String.concat ", " annotations)

let print ?options sched = print_string (render ?options sched)
