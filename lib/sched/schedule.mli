(** Static per-mode schedules produced by the list scheduler. *)

type task_slot = {
  task : int;
  resource : Resource.t;  (** [Sw_pe _] or [Hw_core _]. *)
  start : float;
  duration : float;  (** Nominal (Vmax) execution time of the mapped implementation. *)
}

type comm_slot = {
  edge : Mm_taskgraph.Graph.edge;
  cl : int;
  start : float;
  duration : float;
  energy : float;
}

type t = {
  mode_id : int;
  period : float;
  task_slots : task_slot array;  (** Indexed by task id. *)
  comm_slots : comm_slot list;  (** In scheduling order. *)
  unroutable : Mm_taskgraph.Graph.edge list;
      (** Inter-PE edges with no connecting link; non-empty marks the
          mapping candidate infeasible. *)
}

val finish : task_slot -> float
val comm_finish : comm_slot -> float
val makespan : t -> float
(** Latest finish over tasks and communications. *)

val pe_of_slot : task_slot -> int
val slots_on_resource : t -> Resource.t -> task_slot list
(** Sorted by start time. *)

val resources_used : t -> Resource.Set.t
val active_pes : t -> int list
(** PEs executing at least one task of the mode, ascending — every other
    PE can be shut down during the mode (paper §2.3). *)

val active_cls : t -> int list
(** Links carrying at least one communication of the mode. *)

val lateness : t -> graph:Mm_taskgraph.Graph.t -> (int * float) list
(** [(task, amount)] for every task finishing after
    [min (deadline, period)]; empty iff the schedule is timing-feasible. *)

val validate : t -> graph:Mm_taskgraph.Graph.t -> (unit, string) result
(** Structural checks used by tests and assertions: no overlap on any
    sequential resource, every precedence edge respected including
    communication latency, no negative times. *)

val pp : Format.formatter -> t -> unit
(** Human-readable timeline dump. *)
