module Graph = Mm_taskgraph.Graph
module Task = Mm_taskgraph.Task

type task_slot = {
  task : int;
  resource : Resource.t;
  start : float;
  duration : float;
}

type comm_slot = {
  edge : Graph.edge;
  cl : int;
  start : float;
  duration : float;
  energy : float;
}

type t = {
  mode_id : int;
  period : float;
  task_slots : task_slot array;
  comm_slots : comm_slot list;
  unroutable : Graph.edge list;
}

let finish (slot : task_slot) = slot.start +. slot.duration
let comm_finish (slot : comm_slot) = slot.start +. slot.duration

let makespan t =
  let over_tasks = Array.fold_left (fun acc s -> Float.max acc (finish s)) 0.0 t.task_slots in
  List.fold_left (fun acc c -> Float.max acc (comm_finish c)) over_tasks t.comm_slots

let pe_of_slot slot =
  match Resource.pe_id slot.resource with
  | Some pe -> pe
  | None -> assert false (* task slots never sit on links *)

let slots_on_resource t resource =
  Array.to_list t.task_slots
  |> List.filter (fun (s : task_slot) -> Resource.equal s.resource resource)
  |> List.sort (fun (a : task_slot) b -> compare a.start b.start)

let resources_used t =
  let from_tasks =
    Array.fold_left (fun acc s -> Resource.Set.add s.resource acc) Resource.Set.empty
      t.task_slots
  in
  List.fold_left (fun acc c -> Resource.Set.add (Resource.Link c.cl) acc) from_tasks
    t.comm_slots

let active_pes t =
  Array.fold_left (fun acc s -> pe_of_slot s :: acc) [] t.task_slots
  |> List.sort_uniq Int.compare

let active_cls t =
  List.map (fun c -> c.cl) t.comm_slots |> List.sort_uniq Int.compare

let lateness t ~graph =
  let violations = ref [] in
  Array.iter
    (fun slot ->
      let bound =
        match Task.deadline (Graph.task graph slot.task) with
        | None -> t.period
        | Some d -> Float.min d t.period
      in
      let excess = finish slot -. bound in
      if excess > 1e-9 then violations := (slot.task, excess) :: !violations)
    t.task_slots;
  List.rev !violations

let check_no_overlap slots =
  let sorted = List.sort (fun (a : task_slot) b -> compare a.start b.start) slots in
  let rec scan = function
    | a :: (b :: _ as rest) ->
      if finish a > b.start +. 1e-9 then
        Error
          (Printf.sprintf "tasks %d and %d overlap on a sequential resource" a.task
             b.task)
      else scan rest
    | [ _ ] | [] -> Ok ()
  in
  scan sorted

let validate t ~graph =
  let ( let* ) = Result.bind in
  let n = Graph.n_tasks graph in
  if Array.length t.task_slots <> n then Error "slot count mismatch"
  else
    let* () =
      Array.to_list t.task_slots
      |> List.fold_left
           (fun acc (s : task_slot) ->
             let* () = acc in
             if s.start < -1e-9 then Error (Printf.sprintf "task %d starts before 0" s.task)
             else if s.duration <= 0.0 then
               Error (Printf.sprintf "task %d has non-positive duration" s.task)
             else Ok ())
           (Ok ())
    in
    (* Group task slots by resource and check sequential execution. *)
    let by_resource = Hashtbl.create 16 in
    Array.iter
      (fun s ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt by_resource s.resource) in
        Hashtbl.replace by_resource s.resource (s :: existing))
      t.task_slots;
    let* () =
      Hashtbl.fold
        (fun _ slots acc ->
          let* () = acc in
          check_no_overlap slots)
        by_resource (Ok ())
    in
    (* Link occupancy. *)
    let comm_by_cl = Hashtbl.create 8 in
    List.iter
      (fun c ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt comm_by_cl c.cl) in
        Hashtbl.replace comm_by_cl c.cl (c :: existing))
      t.comm_slots;
    let* () =
      Hashtbl.fold
        (fun cl comms acc ->
          let* () = acc in
          let sorted = List.sort (fun (a : comm_slot) b -> compare a.start b.start) comms in
          let rec scan = function
            | a :: (b : comm_slot) :: _ when comm_finish a > b.start +. 1e-9 ->
              Error (Printf.sprintf "communications overlap on link %d" cl)
            | _ :: rest -> scan rest
            | [] -> Ok ()
          in
          scan sorted)
        comm_by_cl (Ok ())
    in
    (* Precedence: every edge's consumer starts after the producer's data
       arrived (directly, or through its scheduled communication). *)
    let comm_of_edge = Hashtbl.create 16 in
    List.iter (fun c -> Hashtbl.replace comm_of_edge (c.edge.Graph.src, c.edge.Graph.dst) c) t.comm_slots;
    List.fold_left
      (fun acc (e : Graph.edge) ->
        let* () = acc in
        if List.memq e t.unroutable then Ok ()
        else
          let producer = t.task_slots.(e.src) in
          let consumer = t.task_slots.(e.dst) in
          let arrival =
            match Hashtbl.find_opt comm_of_edge (e.src, e.dst) with
            | Some c ->
              if c.start +. 1e-9 < finish producer then
                Float.infinity (* communication starts before data exists *)
              else comm_finish c
            | None ->
              if pe_of_slot producer = pe_of_slot consumer then finish producer
              else Float.infinity (* inter-PE edge without communication *)
          in
          if consumer.start +. 1e-9 < arrival then
            Error (Printf.sprintf "edge %d->%d violated" e.src e.dst)
          else Ok ())
      (Ok ()) (Graph.edges graph)

let pp ppf t =
  Format.fprintf ppf "schedule of mode %d (makespan %.6g / period %.6g):@." t.mode_id
    (makespan t) t.period;
  let slots = Array.to_list t.task_slots in
  let sorted =
    List.sort (fun (a : task_slot) b -> compare (a.start, a.task) (b.start, b.task)) slots
  in
  List.iter
    (fun s ->
      Format.fprintf ppf "  τ%-3d %a [%.6g, %.6g)@." s.task Resource.pp s.resource s.start
        (finish s))
    sorted;
  List.iter
    (fun c ->
      Format.fprintf ppf "  comm %d->%d cl%d [%.6g, %.6g)@." c.edge.Graph.src
        c.edge.Graph.dst c.cl c.start (comm_finish c))
    t.comm_slots
