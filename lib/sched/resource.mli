(** Sequential execution resources seen by the list scheduler.

    A software PE is one sequential resource.  A hardware PE contributes
    one sequential resource per allocated core instance — tasks on
    different cores run in parallel, tasks contending for the same core
    are sequentialised (paper §2.2).  Every communication link is also a
    sequential resource. *)

type t =
  | Sw_pe of int  (** Software PE id. *)
  | Hw_core of { pe : int; ty : int; instance : int }
      (** A core instance on hardware PE [pe] implementing task type
          [ty]. *)
  | Link of int  (** Communication link id. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pe_id : t -> int option
(** The owning PE for task resources; [None] for links. *)

val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
