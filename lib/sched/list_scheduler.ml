module Graph = Mm_taskgraph.Graph
module Task = Mm_taskgraph.Task
module Task_type = Mm_taskgraph.Task_type
module Mobility = Mm_taskgraph.Mobility
module Arch = Mm_arch.Architecture
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Tech_lib = Mm_arch.Tech_lib

type input = {
  mode_id : int;
  graph : Graph.t;
  arch : Arch.t;
  tech : Tech_lib.t;
  mapping : int array;
  instances : pe:int -> ty:int -> int;
  period : float;
  mobility : Mobility.t option;
  routes : Comm_mapping.table option;
  dispatch : Tech_lib.dispatch option;
}

let make_input ?mobility ?routes ?dispatch ~mode_id ~graph ~arch ~tech ~mapping
    ~instances ~period () =
  { mode_id; graph; arch; tech; mapping; instances; period; mobility; routes; dispatch }

type policy = Mobility_first | Critical_path_first | Topological

exception Unsupported_mapping of { task : int; pe : int }

let impl_of input task_id =
  let task = Graph.task input.graph task_id in
  let pe_id = input.mapping.(task_id) in
  let found =
    match input.dispatch with
    | Some d -> Tech_lib.dispatch_find d ~ty_id:(Task_type.id (Task.ty task)) ~pe_id
    | None -> Tech_lib.find input.tech ~ty:(Task.ty task) ~pe:(Arch.pe input.arch pe_id)
  in
  match found with
  | Some impl -> impl
  | None -> raise (Unsupported_mapping { task = task_id; pe = pe_id })

let exec_times input =
  Array.init (Graph.n_tasks input.graph) (fun i -> (impl_of input i).Tech_lib.exec_time)

(* One routing decision per edge, resolved once per run and shared by
   the mobility, bottom-level and comm-scheduling passes (the seed code
   re-routed each edge in every pass, up to three times per run). *)
let route_decisions input =
  let graph = input.graph and mapping = input.mapping in
  match input.routes with
  | Some table ->
    Array.init (Graph.n_edges graph) (fun id ->
        let e = Graph.edge graph id in
        Comm_mapping.route_via table ~src_pe:mapping.(e.src) ~dst_pe:mapping.(e.dst)
          ~data:e.data)
  | None ->
    Array.init (Graph.n_edges graph) (fun id ->
        let e = Graph.edge graph id in
        Comm_mapping.route input.arch ~src_pe:mapping.(e.src) ~dst_pe:mapping.(e.dst)
          ~data:e.data)

let comm_time_of decisions id =
  match decisions.(id) with
  | Comm_mapping.Local | Comm_mapping.Unroutable -> 0.0
  | Comm_mapping.Via { time; _ } -> time

(* Mobility under the concrete mapping: execution times from the mapped
   implementations, communication times from the routed links. *)
let mapped_mobility input exec decisions =
  Mobility.compute_indexed input.graph ~exec ~comm_time:(comm_time_of decisions)
    ~horizon:input.period

(* Bottom level (HLFET rank): longest exec+comm path from the task to any
   sink, inclusive. *)
let bottom_levels input exec decisions =
  let graph = input.graph in
  let n = Graph.n_tasks graph in
  let level = Array.make n 0.0 in
  let topo = Graph.topological_order graph in
  for k = n - 1 downto 0 do
    let i = topo.(k) in
    let tail = ref 0.0 in
    Graph.iter_succ_edges graph i (fun id (e : Graph.edge) ->
        tail := Float.max !tail (comm_time_of decisions id +. level.(e.dst)));
    level.(i) <- exec.(i) +. !tail
  done;
  level

(* Binary max-heap of ready tasks ordered by (priority desc, id asc) —
   the exact total order of the seed's O(n) ready rescan, so every pop
   returns the element that scan would have picked.  The order is total
   (ids are distinct), so the heap's choice of maximum is unique. *)
module Ready_heap = struct
  type t = { priority : float array; heap : int array; mutable len : int }

  let create priority =
    { priority; heap = Array.make (max 1 (Array.length priority)) 0; len = 0 }

  let before t i j =
    t.priority.(i) > t.priority.(j) || (t.priority.(i) = t.priority.(j) && i < j)

  let push t i =
    let k = ref t.len in
    t.heap.(!k) <- i;
    t.len <- t.len + 1;
    while
      !k > 0
      &&
      let parent = (!k - 1) / 2 in
      before t t.heap.(!k) t.heap.(parent)
    do
      let parent = (!k - 1) / 2 in
      let tmp = t.heap.(!k) in
      t.heap.(!k) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      k := parent
    done

  let pop t =
    if t.len = 0 then None
    else begin
      let top = t.heap.(0) in
      t.len <- t.len - 1;
      t.heap.(0) <- t.heap.(t.len);
      let k = ref 0 in
      let continue = ref (t.len > 1) in
      while !continue do
        let l = (2 * !k) + 1 and r = (2 * !k) + 2 in
        let best = ref !k in
        if l < t.len && before t t.heap.(l) t.heap.(!best) then best := l;
        if r < t.len && before t t.heap.(r) t.heap.(!best) then best := r;
        if !best = !k then continue := false
        else begin
          let tmp = t.heap.(!k) in
          t.heap.(!k) <- t.heap.(!best);
          t.heap.(!best) <- tmp;
          k := !best
        end
      done;
      Some top
    end
end

(* Fine-grained: one span per scheduled mode, nested under the fitness
   evaluation that requested it. *)
let p_run = Mm_obs.Probe.create ~fine:true "sched/list"

let run ?(policy = Mobility_first) input =
  Mm_obs.Probe.run
    ~args:(fun () -> [ ("mode", string_of_int input.mode_id) ])
    p_run
  @@ fun () ->
  let n = Graph.n_tasks input.graph in
  if Array.length input.mapping <> n then
    invalid_arg "List_scheduler.run: mapping length mismatch";
  let exec = exec_times input in
  let decisions = route_decisions input in
  (* Higher priority value = scheduled earlier (ties: lower task id). *)
  let priority =
    match policy with
    | Mobility_first ->
      let mobility =
        match input.mobility with
        | Some m -> m
        | None -> mapped_mobility input exec decisions
      in
      Array.init n (fun i -> -.Mobility.mobility mobility i)
    | Critical_path_first -> bottom_levels input exec decisions
    | Topological ->
      let order = Graph.topological_order input.graph in
      let rank = Array.make n 0.0 in
      Array.iteri (fun position i -> rank.(i) <- -.float_of_int position) order;
      rank
  in
  let avail : (Resource.t, float) Hashtbl.t = Hashtbl.create 16 in
  let avail_of r = Option.value ~default:0.0 (Hashtbl.find_opt avail r) in
  let task_slots = Array.make n None in
  let comm_slots = ref [] in
  let unroutable = ref [] in
  let remaining_preds = Array.init n (fun i -> Graph.in_degree input.graph i) in
  let ready = Ready_heap.create priority in
  for i = 0 to n - 1 do
    if remaining_preds.(i) = 0 then Ready_heap.push ready i
  done;
  let finish_of i =
    match task_slots.(i) with
    | Some (s : Schedule.task_slot) -> Schedule.finish s
    | None -> assert false
  in
  let schedule_incoming_comms task_id =
    let pred_edges = ref [] in
    Graph.iter_pred_edges input.graph task_id (fun id e ->
        pred_edges := (id, e) :: !pred_edges);
    let pred_edges =
      (* The sort key (producer finish, producer id) is unique per edge
         of one consumer, so the result does not depend on the input
         order or on sort stability. *)
      List.sort
        (fun (_, (a : Graph.edge)) (_, (b : Graph.edge)) ->
          compare (finish_of a.src, a.src) (finish_of b.src, b.src))
        !pred_edges
    in
    List.fold_left
      (fun latest_arrival (id, (e : Graph.edge)) ->
        let produced = finish_of e.src in
        let arrival =
          match decisions.(id) with
          | Comm_mapping.Local -> produced
          | Comm_mapping.Unroutable ->
            unroutable := e :: !unroutable;
            produced
          | Comm_mapping.Via { cl; time; energy } ->
            let link = Resource.Link (Cl.id cl) in
            let start = Float.max (avail_of link) produced in
            Hashtbl.replace avail link (start +. time);
            comm_slots :=
              { Schedule.edge = e; cl = Cl.id cl; start; duration = time; energy }
              :: !comm_slots;
            start +. time
        in
        Float.max latest_arrival arrival)
      0.0 pred_edges
  in
  let resource_for task_id =
    let pe = Arch.pe input.arch input.mapping.(task_id) in
    if Pe.is_software pe then Resource.Sw_pe (Pe.id pe)
    else
      let ty = Task_type.id (Task.ty (Graph.task input.graph task_id)) in
      let count = max 1 (input.instances ~pe:(Pe.id pe) ~ty) in
      let rec best_instance best best_avail k =
        if k >= count then best
        else
          let r = Resource.Hw_core { pe = Pe.id pe; ty; instance = k } in
          let a = avail_of r in
          if a < best_avail then best_instance r a (k + 1)
          else best_instance best best_avail (k + 1)
      in
      let first = Resource.Hw_core { pe = Pe.id pe; ty; instance = 0 } in
      best_instance first (avail_of first) 1
  in
  let rec loop () =
    match Ready_heap.pop ready with
    | None -> ()
    | Some task_id ->
      let arrival = schedule_incoming_comms task_id in
      let resource = resource_for task_id in
      let start = Float.max (avail_of resource) arrival in
      let duration = exec.(task_id) in
      Hashtbl.replace avail resource (start +. duration);
      task_slots.(task_id) <- Some { Schedule.task = task_id; resource; start; duration };
      Graph.iter_succ_edges input.graph task_id (fun _ (e : Graph.edge) ->
          remaining_preds.(e.dst) <- remaining_preds.(e.dst) - 1;
          if remaining_preds.(e.dst) = 0 then Ready_heap.push ready e.dst);
      loop ()
  in
  loop ();
  let slots =
    Array.map
      (function Some s -> s | None -> assert false (* all tasks scheduled: DAG *))
      task_slots
  in
  {
    Schedule.mode_id = input.mode_id;
    period = input.period;
    task_slots = slots;
    comm_slots = List.rev !comm_slots;
    unroutable = List.rev !unroutable;
  }

(* --- Seed reference -------------------------------------------------------

   The pre-optimization implementation, kept verbatim as the equivalence
   oracle for the compiled kernels above: per-edge routing through
   [Comm_mapping.route] in every pass, balanced-tree technology lookups,
   mobility recomputed per call, and an O(n) ready rescan per scheduled
   task.  [run] must produce bit-identical schedules. *)

let impl_of_reference input task_id =
  let task = Graph.task input.graph task_id in
  let pe = Arch.pe input.arch input.mapping.(task_id) in
  match Tech_lib.find input.tech ~ty:(Task.ty task) ~pe with
  | Some impl -> impl
  | None -> raise (Unsupported_mapping { task = task_id; pe = Pe.id pe })

let run_reference ?(policy = Mobility_first) input =
  Mm_obs.Probe.run
    ~args:(fun () -> [ ("mode", string_of_int input.mode_id) ])
    p_run
  @@ fun () ->
  let n = Graph.n_tasks input.graph in
  if Array.length input.mapping <> n then
    invalid_arg "List_scheduler.run: mapping length mismatch";
  let exec =
    Array.init n (fun i -> (impl_of_reference input i).Tech_lib.exec_time)
  in
  let comm_time (e : Graph.edge) =
    match
      Comm_mapping.route input.arch ~src_pe:input.mapping.(e.src)
        ~dst_pe:input.mapping.(e.dst) ~data:e.data
    with
    | Comm_mapping.Local | Comm_mapping.Unroutable -> 0.0
    | Comm_mapping.Via { time; _ } -> time
  in
  let priority =
    match policy with
    | Mobility_first ->
      let mobility =
        Mobility.compute input.graph
          ~exec_time:(fun t -> exec.(Task.id t))
          ~comm_time ~horizon:input.period
      in
      Array.init n (fun i -> -.Mobility.mobility mobility i)
    | Critical_path_first ->
      let level = Array.make n 0.0 in
      let topo = Graph.topological_order input.graph in
      for k = n - 1 downto 0 do
        let i = topo.(k) in
        let tail =
          List.fold_left
            (fun acc (e : Graph.edge) -> Float.max acc (comm_time e +. level.(e.dst)))
            0.0
            (Graph.succ_edges input.graph i)
        in
        level.(i) <- exec.(i) +. tail
      done;
      level
    | Topological ->
      let order = Graph.topological_order input.graph in
      let rank = Array.make n 0.0 in
      Array.iteri (fun position i -> rank.(i) <- -.float_of_int position) order;
      rank
  in
  let avail : (Resource.t, float) Hashtbl.t = Hashtbl.create 16 in
  let avail_of r = Option.value ~default:0.0 (Hashtbl.find_opt avail r) in
  let task_slots = Array.make n None in
  let comm_slots = ref [] in
  let unroutable = ref [] in
  let remaining_preds = Array.init n (fun i -> List.length (Graph.preds input.graph i)) in
  let scheduled = Array.make n false in
  let finish_of i =
    match task_slots.(i) with
    | Some (s : Schedule.task_slot) -> Schedule.finish s
    | None -> assert false
  in
  (* Pick the ready task with the highest priority, lowest id on ties. *)
  let pick_ready () =
    let best = ref None in
    for i = n - 1 downto 0 do
      if (not scheduled.(i)) && remaining_preds.(i) = 0 then
        match !best with
        | Some j when priority.(j) > priority.(i) -> ()
        | Some j when priority.(j) = priority.(i) && j < i -> ()
        | Some _ | None -> best := Some i
    done;
    !best
  in
  let schedule_incoming_comms task_id =
    let pred_edges =
      Graph.pred_edges input.graph task_id
      |> List.sort (fun (a : Graph.edge) b ->
             compare (finish_of a.src, a.src) (finish_of b.src, b.src))
    in
    List.fold_left
      (fun latest_arrival (e : Graph.edge) ->
        let produced = finish_of e.src in
        let arrival =
          match
            Comm_mapping.route input.arch ~src_pe:input.mapping.(e.src)
              ~dst_pe:input.mapping.(e.dst) ~data:e.data
          with
          | Comm_mapping.Local -> produced
          | Comm_mapping.Unroutable ->
            unroutable := e :: !unroutable;
            produced
          | Comm_mapping.Via { cl; time; energy } ->
            let link = Resource.Link (Cl.id cl) in
            let start = Float.max (avail_of link) produced in
            Hashtbl.replace avail link (start +. time);
            comm_slots :=
              { Schedule.edge = e; cl = Cl.id cl; start; duration = time; energy }
              :: !comm_slots;
            start +. time
        in
        Float.max latest_arrival arrival)
      0.0 pred_edges
  in
  let resource_for task_id =
    let pe = Arch.pe input.arch input.mapping.(task_id) in
    if Pe.is_software pe then Resource.Sw_pe (Pe.id pe)
    else
      let ty = Task_type.id (Task.ty (Graph.task input.graph task_id)) in
      let count = max 1 (input.instances ~pe:(Pe.id pe) ~ty) in
      let rec best_instance best best_avail k =
        if k >= count then best
        else
          let r = Resource.Hw_core { pe = Pe.id pe; ty; instance = k } in
          let a = avail_of r in
          if a < best_avail then best_instance r a (k + 1)
          else best_instance best best_avail (k + 1)
      in
      let first = Resource.Hw_core { pe = Pe.id pe; ty; instance = 0 } in
      best_instance first (avail_of first) 1
  in
  let rec loop () =
    match pick_ready () with
    | None -> ()
    | Some task_id ->
      let arrival = schedule_incoming_comms task_id in
      let resource = resource_for task_id in
      let start = Float.max (avail_of resource) arrival in
      let duration = exec.(task_id) in
      Hashtbl.replace avail resource (start +. duration);
      task_slots.(task_id) <- Some { Schedule.task = task_id; resource; start; duration };
      scheduled.(task_id) <- true;
      List.iter
        (fun succ -> remaining_preds.(succ) <- remaining_preds.(succ) - 1)
        (Graph.succs input.graph task_id);
      loop ()
  in
  loop ();
  let slots =
    Array.map
      (function Some s -> s | None -> assert false (* all tasks scheduled: DAG *))
      task_slots
  in
  {
    Schedule.mode_id = input.mode_id;
    period = input.period;
    task_slots = slots;
    comm_slots = List.rev !comm_slots;
    unroutable = List.rev !unroutable;
  }
