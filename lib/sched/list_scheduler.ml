module Graph = Mm_taskgraph.Graph
module Task = Mm_taskgraph.Task
module Task_type = Mm_taskgraph.Task_type
module Mobility = Mm_taskgraph.Mobility
module Arch = Mm_arch.Architecture
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Tech_lib = Mm_arch.Tech_lib

type input = {
  mode_id : int;
  graph : Graph.t;
  arch : Arch.t;
  tech : Tech_lib.t;
  mapping : int array;
  instances : pe:int -> ty:int -> int;
  period : float;
}

type policy = Mobility_first | Critical_path_first | Topological

exception Unsupported_mapping of { task : int; pe : int }

let impl_of input task_id =
  let task = Graph.task input.graph task_id in
  let pe = Arch.pe input.arch input.mapping.(task_id) in
  match Tech_lib.find input.tech ~ty:(Task.ty task) ~pe with
  | Some impl -> impl
  | None -> raise (Unsupported_mapping { task = task_id; pe = Pe.id pe })

let exec_times input =
  Array.init (Graph.n_tasks input.graph) (fun i -> (impl_of input i).Tech_lib.exec_time)

(* Mobility under the concrete mapping: execution times from the mapped
   implementations, communication times from the routed links. *)
let mapped_mobility input exec =
  let comm_time (e : Graph.edge) =
    match
      Comm_mapping.route input.arch ~src_pe:input.mapping.(e.src)
        ~dst_pe:input.mapping.(e.dst) ~data:e.data
    with
    | Comm_mapping.Local | Comm_mapping.Unroutable -> 0.0
    | Comm_mapping.Via { time; _ } -> time
  in
  Mobility.compute input.graph
    ~exec_time:(fun t -> exec.(Task.id t))
    ~comm_time ~horizon:input.period

(* Bottom level (HLFET rank): longest exec+comm path from the task to any
   sink, inclusive. *)
let bottom_levels input exec =
  let graph = input.graph in
  let n = Graph.n_tasks graph in
  let comm_time (e : Graph.edge) =
    match
      Comm_mapping.route input.arch ~src_pe:input.mapping.(e.src)
        ~dst_pe:input.mapping.(e.dst) ~data:e.data
    with
    | Comm_mapping.Local | Comm_mapping.Unroutable -> 0.0
    | Comm_mapping.Via { time; _ } -> time
  in
  let level = Array.make n 0.0 in
  let topo = Graph.topological_order graph in
  for k = n - 1 downto 0 do
    let i = topo.(k) in
    let tail =
      List.fold_left
        (fun acc (e : Graph.edge) -> Float.max acc (comm_time e +. level.(e.dst)))
        0.0 (Graph.succ_edges graph i)
    in
    level.(i) <- exec.(i) +. tail
  done;
  level

(* Fine-grained: one span per scheduled mode, nested under the fitness
   evaluation that requested it. *)
let p_run = Mm_obs.Probe.create ~fine:true "sched/list"

let run ?(policy = Mobility_first) input =
  Mm_obs.Probe.run
    ~args:(fun () -> [ ("mode", string_of_int input.mode_id) ])
    p_run
  @@ fun () ->
  let n = Graph.n_tasks input.graph in
  if Array.length input.mapping <> n then
    invalid_arg "List_scheduler.run: mapping length mismatch";
  let exec = exec_times input in
  (* Higher priority value = scheduled earlier (ties: lower task id). *)
  let priority =
    match policy with
    | Mobility_first ->
      let mobility = mapped_mobility input exec in
      Array.init n (fun i -> -.Mobility.mobility mobility i)
    | Critical_path_first -> bottom_levels input exec
    | Topological ->
      let order = Graph.topological_order input.graph in
      let rank = Array.make n 0.0 in
      Array.iteri (fun position i -> rank.(i) <- -.float_of_int position) order;
      rank
  in
  let avail : (Resource.t, float) Hashtbl.t = Hashtbl.create 16 in
  let avail_of r = Option.value ~default:0.0 (Hashtbl.find_opt avail r) in
  let task_slots = Array.make n None in
  let comm_slots = ref [] in
  let unroutable = ref [] in
  let remaining_preds = Array.init n (fun i -> List.length (Graph.preds input.graph i)) in
  let scheduled = Array.make n false in
  let finish_of i =
    match task_slots.(i) with
    | Some (s : Schedule.task_slot) -> Schedule.finish s
    | None -> assert false
  in
  (* Pick the ready task with the highest priority, lowest id on ties. *)
  let pick_ready () =
    let best = ref None in
    for i = n - 1 downto 0 do
      if (not scheduled.(i)) && remaining_preds.(i) = 0 then
        match !best with
        | Some j when priority.(j) > priority.(i) -> ()
        | Some j when priority.(j) = priority.(i) && j < i -> ()
        | Some _ | None -> best := Some i
    done;
    !best
  in
  let schedule_incoming_comms task_id =
    let pred_edges =
      Graph.pred_edges input.graph task_id
      |> List.sort (fun (a : Graph.edge) b ->
             compare (finish_of a.src, a.src) (finish_of b.src, b.src))
    in
    List.fold_left
      (fun latest_arrival (e : Graph.edge) ->
        let produced = finish_of e.src in
        let arrival =
          match
            Comm_mapping.route input.arch ~src_pe:input.mapping.(e.src)
              ~dst_pe:input.mapping.(e.dst) ~data:e.data
          with
          | Comm_mapping.Local -> produced
          | Comm_mapping.Unroutable ->
            unroutable := e :: !unroutable;
            produced
          | Comm_mapping.Via { cl; time; energy } ->
            let link = Resource.Link (Cl.id cl) in
            let start = Float.max (avail_of link) produced in
            Hashtbl.replace avail link (start +. time);
            comm_slots :=
              { Schedule.edge = e; cl = Cl.id cl; start; duration = time; energy }
              :: !comm_slots;
            start +. time
        in
        Float.max latest_arrival arrival)
      0.0 pred_edges
  in
  let resource_for task_id =
    let pe = Arch.pe input.arch input.mapping.(task_id) in
    if Pe.is_software pe then Resource.Sw_pe (Pe.id pe)
    else
      let ty = Task_type.id (Task.ty (Graph.task input.graph task_id)) in
      let count = max 1 (input.instances ~pe:(Pe.id pe) ~ty) in
      let rec best_instance best best_avail k =
        if k >= count then best
        else
          let r = Resource.Hw_core { pe = Pe.id pe; ty; instance = k } in
          let a = avail_of r in
          if a < best_avail then best_instance r a (k + 1)
          else best_instance best best_avail (k + 1)
      in
      let first = Resource.Hw_core { pe = Pe.id pe; ty; instance = 0 } in
      best_instance first (avail_of first) 1
  in
  let rec loop () =
    match pick_ready () with
    | None -> ()
    | Some task_id ->
      let arrival = schedule_incoming_comms task_id in
      let resource = resource_for task_id in
      let start = Float.max (avail_of resource) arrival in
      let duration = exec.(task_id) in
      Hashtbl.replace avail resource (start +. duration);
      task_slots.(task_id) <- Some { Schedule.task = task_id; resource; start; duration };
      scheduled.(task_id) <- true;
      List.iter
        (fun succ -> remaining_preds.(succ) <- remaining_preds.(succ) - 1)
        (Graph.succs input.graph task_id);
      loop ()
  in
  loop ();
  let slots =
    Array.map
      (function Some s -> s | None -> assert false (* all tasks scheduled: DAG *))
      task_slots
  in
  {
    Schedule.mode_id = input.mode_id;
    period = input.period;
    task_slots = slots;
    comm_slots = List.rev !comm_slots;
    unroutable = List.rev !unroutable;
  }
