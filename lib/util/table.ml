type row = Cells of string list | Separator

type t = { title : string; columns : string list; mutable rows : row list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  let width = List.length t.columns in
  let n = List.length cells in
  if n > width then invalid_arg "Table.add_row: more cells than columns";
  let padded = cells @ List.init (width - n) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let cell_float ?(decimals = 3) v = Printf.sprintf "%.*f" decimals v
let cell_percent v = Printf.sprintf "%.2f" v

let render t =
  let rows = List.rev t.rows in
  let all_cell_rows =
    t.columns :: List.filter_map (function Cells c -> Some c | Separator -> None) rows
  in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter measure all_cell_rows;
  let buf = Buffer.create 256 in
  let rule () =
    Array.iter (fun w -> Buffer.add_string buf (String.make (w + 2) '-'); Buffer.add_char buf '+') widths;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf (Printf.sprintf " %-*s " widths.(i) c);
        Buffer.add_char buf '|')
      cells;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  rule ();
  emit t.columns;
  rule ();
  List.iter (function Cells c -> emit c | Separator -> rule ()) rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t); print_newline ()
