type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let child_seed = bits64 t in
  { state = mix64 child_seed }

let copy t = { state = t.state }
let state t = t.state
let of_state state = { state }

(* Weyl-sequence stream derivation: child [i]'s state is the parent's
   current word pushed [i] steps along an independent odd-constant
   sequence and remixed.  Stream 0 is the parent's own state verbatim
   (so a 1-stream consumer is bit-identical to using the parent
   directly), and the parent is never advanced. *)
let stream t i =
  if i = 0 then { state = t.state }
  else
    { state = mix64 (Int64.add t.state (Int64.mul (Int64.of_int i) 0xD1B54A32D192ED03L)) }

(* Rejection-free bounded draw: take the top bits scaled into [0,bound).
   The scaling bias is < 2^-53 for any bound below 2^53, far below
   anything observable in synthesis workloads. *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  let unit = Int64.to_float raw /. 9007199254740992.0 in
  let v = int_of_float (unit *. float_of_int bound) in
  if v >= bound then bound - 1 else v

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  if not (bound > 0.0 && Float.is_finite bound) then
    invalid_arg "Prng.float: bound must be positive and finite";
  let raw = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float raw /. 9007199254740992.0 *. bound

let float_in t lo hi =
  if lo > hi then invalid_arg "Prng.float_in: lo > hi";
  if lo = hi then lo else lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p >= 1.0 then true
  else if p <= 0.0 then false
  else float t 1.0 < p

let gaussian t =
  (* Box–Muller; u1 bounded away from 0 so log stays finite. *)
  let u1 = Float.max 1e-300 (float t 1.0) in
  let u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Prng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t xs =
  let a = Array.of_list xs in
  shuffle t a;
  Array.to_list a

let sample_without_replacement t k xs =
  let a = Array.of_list xs in
  shuffle t a;
  let n = min k (Array.length a) in
  Array.to_list (Array.sub a 0 n)

let rec gamma t ~shape =
  if not (shape > 0.0 && Float.is_finite shape) then
    invalid_arg "Prng.gamma: shape must be positive and finite";
  if shape < 1.0 then begin
    (* Boosting: G(a) = G(a+1) · U^(1/a) for a < 1. *)
    let u = Float.max 1e-300 (float t 1.0) in
    gamma t ~shape:(shape +. 1.0) *. (u ** (1.0 /. shape))
  end
  else begin
    (* Marsaglia–Tsang squeeze (ACM TOMS 2000): accept d·v with
       v = (1+cx)^3 against a log bound on the normal draw x. *)
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec loop () =
      let x = gaussian t in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then loop ()
      else begin
        let v = v *. v *. v in
        let u = Float.max 1e-300 (float t 1.0) in
        if log u < (0.5 *. x *. x) +. (d *. (1.0 -. v +. log v)) then d *. v
        else loop ()
      end
    in
    loop ()
  end

let dirichlet t alpha =
  let n = Array.length alpha in
  if n = 0 then invalid_arg "Prng.dirichlet: empty concentration vector";
  let w = Array.map (fun a -> Float.max 1e-300 (gamma t ~shape:a)) alpha in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w

let dirichlet_like t n ~skew =
  if n <= 0 then invalid_arg "Prng.dirichlet_like: n must be positive";
  let skew = Float.max 1.0 skew in
  (* Raising uniform draws to the [skew] power concentrates mass: for
     skew = 1 the weights are roughly even, for large skew a single mode
     dominates — matching the paper's observation that devices spend most
     of their time in one mode (e.g. 74 % in RLC). *)
  let w = Array.init n (fun _ -> Float.max 1e-9 (float t 1.0 ** skew)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  Array.map (fun x -> x /. total) w
