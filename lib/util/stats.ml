type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  median : float;
}

let mean = function
  | [] -> invalid_arg "Stats.mean: empty sample"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let std = function
  | [] -> invalid_arg "Stats.std: empty sample"
  | [ _ ] -> 0.0
  | xs ->
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (ss /. float_of_int (List.length xs - 1))

let median = function
  | [] -> invalid_arg "Stats.median: empty sample"
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
    {
      n = List.length xs;
      mean = mean xs;
      std = std xs;
      min = List.fold_left Float.min Float.infinity xs;
      max = List.fold_left Float.max Float.neg_infinity xs;
      median = median xs;
    }

let percent_reduction ~from ~to_ =
  if from = 0.0 then 0.0 else 100.0 *. (from -. to_) /. from

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g std=%.3g min=%.4g median=%.4g max=%.4g"
    s.n s.mean s.std s.min s.median s.max
