(** Plain-text tables in the style of the paper's result tables.

    The bench harness prints each reproduced table with this module so
    that paper rows and measured rows line up visually. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a caption and column headers. *)

val add_row : t -> string list -> unit
(** Appends a row.  Rows shorter than the header are padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val add_separator : t -> unit
(** Inserts a horizontal rule between data rows. *)

val render : t -> string
(** Render with column widths fitted to the content. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float cell ([decimals] defaults to 3). *)

val cell_percent : float -> string
(** Format a percentage cell with two decimals, e.g. ["22.46"]. *)
