(** Descriptive statistics over float samples.

    The experiment harness repeats each stochastic synthesis run several
    times and reports aggregate values, mirroring the paper's averaging of
    40 optimisation runs per data point. *)

type summary = {
  n : int;
  mean : float;
  std : float;  (** Sample standard deviation (n-1 denominator); 0 for n <= 1. *)
  min : float;
  max : float;
  median : float;
}

val summarize : float list -> summary
(** Raises [Invalid_argument] on the empty list. *)

val mean : float list -> float
val std : float list -> float
val median : float list -> float

val percent_reduction : from:float -> to_:float -> float
(** [percent_reduction ~from ~to_] is [100 * (from - to_) / from], the
    metric used in every table of the paper.  Returns 0 when [from] is
    0. *)

val pp_summary : Format.formatter -> summary -> unit
