(** Deterministic pseudo-random number generation.

    All randomness in mmsyn flows through this module so that benchmark
    generation and synthesis runs are reproducible from a single integer
    seed.  The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014):
    a 64-bit state advanced by a Weyl sequence and finalised by a mixing
    function.  It is fast, passes BigCrush, and — crucially for us — can be
    split into independent streams, which keeps per-benchmark and per-run
    randomness decoupled. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] makes a fresh generator.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives a new generator from [t]'s stream.  The child's
    stream is statistically independent of the parent's subsequent
    output. *)

val copy : t -> t
(** [copy t] duplicates the current state; both generators then produce
    the same future stream. *)

val stream : t -> int -> t
(** [stream t i] derives the [i]-th child stream from [t]'s current
    state {e without advancing} [t]: unlike {!split}, repeated calls
    with the same index give the same child.  [stream t 0] is {!copy},
    so a consumer of exactly one stream is bit-identical to using [t]
    directly; distinct indices give statistically independent streams.
    This is how the island model gives each of its N islands a
    reproducible generator derived from the run seed and the island
    index alone. *)

val state : t -> int64
(** The generator's raw internal state.  Together with {!of_state} this
    is what lets a checkpoint capture a run's randomness exactly: a
    generator rebuilt from the captured word continues the stream
    bit-for-bit. *)

val of_state : int64 -> t
(** [of_state s] rebuilds the generator whose {!state} was [s].  Unlike
    {!create} the word is used verbatim (no mixing), so
    [of_state (state t)] produces exactly [t]'s future stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive).  Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)].  [bound] must be
    positive and finite. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)].  Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val gaussian : t -> float
(** Standard normal draw (Box–Muller). *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list.  Raises [Invalid_argument] on an
    empty list. *)

val pick_array : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Functional shuffle. *)

val sample_without_replacement : t -> int -> 'a list -> 'a list
(** [sample_without_replacement t k xs] picks [k] distinct elements of
    [xs] (all of them when [k >= List.length xs]), in random order. *)

val gamma : t -> shape:float -> float
(** Gamma(shape, 1) draw via the Marsaglia–Tsang squeeze, with the
    [U^(1/a)] boost for [shape < 1].  Consumes a variable number of
    underlying draws (rejection sampling).  [shape] must be positive and
    finite. *)

val dirichlet : t -> float array -> float array
(** [dirichlet t alpha] draws from the Dirichlet distribution with
    concentration vector [alpha] (normalised independent gamma draws).
    Every entry of [alpha] must be positive and finite; the result is
    positive and sums to 1.  Raises [Invalid_argument] on an empty
    vector. *)

val dirichlet_like : t -> int -> skew:float -> float array
(** [dirichlet_like t n ~skew] draws [n] positive weights summing to 1.
    [skew >= 1.] controls unevenness: 1 gives roughly uniform weights,
    larger values concentrate mass on few entries (used for mode execution
    probabilities, which the paper observes to be highly uneven). *)
