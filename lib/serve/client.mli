(** Blocking mmsynthd client used by [mmsynth submit/status/watch/...]
    and the benches.

    Two layers share one handle type:

    - the {e eager} layer ({!connect}, {!request}, {!watch}) dials once,
      never retries, and surfaces every transport failure as [Error] —
      exactly what the tests and benches want when they are asserting on
      single round-trips;
    - the {e resilient} layer ({!create}, {!rpc}, {!watch_resilient},
      {!shutdown}) dials lazily and, on connection failures, lost
      frames, garbage frames or a typed {!Protocol.Busy}, redials and
      retries under exponential backoff with jitter.  Retrying a
      [Submit] blindly is safe only because the request carries an
      idempotency nonce ({!fresh_nonce}) — the daemon answers a replay
      with the already-admitted job. *)

type endpoint =
  | Unix_socket of string  (** Path of the daemon's Unix-domain socket. *)
  | Tcp of string * int  (** Host and port of the TCP listener. *)

type retry = {
  attempts : int;  (** Total tries, first included; [1] = never retry. *)
  base_delay : float;  (** Seconds before the second try. *)
  max_delay : float;  (** Cap on any single sleep. *)
  jitter : float;
      (** Fraction of the capped delay subtracted at random, in
          [\[0, 1\]]; [0.25] means each sleep lands in
          [\[0.75 d, d\]]. *)
}

val default_retry : retry
(** 6 attempts, 50 ms base doubling to a 2 s cap, 25% jitter — gives a
    restarting daemon about 4 s to come back. *)

val no_retry : retry
(** Single attempt; what the eager constructors use. *)

val backoff_delay : retry -> attempt:int -> rng:Mm_util.Prng.t -> float
(** The sleep before retrying after failed attempt [attempt] (0-based):
    [base_delay * 2^attempt], capped at [max_delay], minus a random
    jitter fraction.  Pure in its arguments — a fixed [rng] pins the
    whole schedule, which is how the unit tests check it. *)

val fresh_nonce : unit -> string
(** A process-unique submission nonce (pid + wall clock + counter).
    Unique is all it needs to be — the daemon only compares for
    equality. *)

type t

val create : ?auth:string -> ?retry:retry -> endpoint -> t
(** A lazy handle: nothing is dialled until the first request.  [auth]
    is attached to every request envelope (required by TCP listeners
    started with [--auth-token]); [retry] defaults to
    {!default_retry}. *)

val connect : socket:string -> t
(** Dial a Unix-domain socket eagerly, raising [Unix.Unix_error] when
    the daemon is not there; the handle never retries. *)

val connect_tcp : host:string -> port:int -> t
(** Like {!connect} over TCP. *)

val close : t -> unit

val with_connection : socket:string -> (t -> 'a) -> 'a
(** {!connect}, run, always {!close}. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** One request, one response, no retries (the connection is dialled
    first if the handle is lazy or was dropped).  Any transport or
    parse failure drops the connection — the next call redials with a
    fresh frame decoder — and returns [Error]. *)

val rpc : t -> Protocol.request -> (Protocol.response, string) result
(** {!request} under the handle's retry policy: transport failures and
    {!Protocol.Busy} are retried with backoff; any other response (and
    {!Protocol.Unauthorized} in particular) is final.  Returns the last
    failure when the budget runs out. *)

val watch :
  t -> string -> on_event:(string -> unit) -> (Protocol.job_view, string) result
(** Subscribe to a job's event stream and block until it reaches a
    terminal state; [on_event] sees every JSONL line (replayed history
    first, then live).  Single-shot: a dropped connection mid-stream is
    an [Error]. *)

val watch_resilient :
  t -> string -> on_event:(string -> unit) -> (Protocol.job_view, string) result
(** {!watch} that survives dropped connections: it redials,
    re-subscribes and skips the replayed prefix so [on_event] sees each
    line exactly once (sound because the daemon's event log is
    append-only and replayed from the start).  Progress resets the
    retry budget; [attempts] consecutive failures without one new event
    give up. *)

val shutdown : t -> (unit, string) result
(** Request daemon shutdown and confirm it took.  A daemon that cannot
    be reached after the request counts as success — the likeliest
    reason the reply never arrived is that it stopped. *)
