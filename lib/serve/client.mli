(** A blocking mmsynthd client: one connection, synchronous
    request/response, and a pull-style [watch] stream.  Used by the
    [mmsynth client] subcommands, the load-generator bench and the
    crash-recovery smoke test. *)

type t

val connect : socket:string -> t
(** Connect to the daemon's Unix-domain socket.  Raises
    [Unix.Unix_error] when the daemon is not there. *)

val connect_tcp : host:string -> port:int -> t

val close : t -> unit

val with_connection : socket:string -> (t -> 'a) -> 'a

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request and wait for its response.  [Error] on protocol
    violations or a dropped connection — never an exception for wire
    content. *)

val watch :
  t -> string -> on_event:(string -> unit) -> (Protocol.job_view, string) result
(** Subscribe to a job: [on_event] receives every JSONL line (replayed
    history first, then live), and the call returns with the job's
    final view once it reaches a terminal state. *)
