module Pool = Mm_parallel.Pool
module Snapshot = Mm_io.Snapshot
module Synthesis = Mm_cosynth.Synthesis
module Fitness = Mm_cosynth.Fitness
module Engine = Mm_ga.Engine
module Log = Mm_obs.Log
module Fault = Mm_fault.Fault

(* Chaos sites (no-ops unless armed): a freshly accepted connection
   dropped on the floor, a read that returns EOF mid-conversation, a
   response frame replaced by garbage, and a stalled scheduler slice.
   Each models a failure a deployed daemon's clients actually see, and
   each must be survivable by the retrying client. *)
let site_accept_drop = Fault.site "server.accept_drop"
let site_read_eof = Fault.site "server.read_eof"
let site_garbage_frame = Fault.site "server.garbage_frame"
let site_slice_delay = Fault.site "scheduler.slice_delay"

type config = {
  socket_path : string;
  tcp : (string * int) option;
  state_dir : string;
  pool_jobs : int;
  checkpoint_every : int;
  keep_checkpoints : int;
      (** Snapshot generations rotated per job (>= 1). *)
  max_jobs : int;  (** Non-terminal job bound; 0 = unbounded. *)
  read_deadline : float;
      (** Seconds a connection may sit idle {e mid-frame} before it is
          dropped; 0 = never.  Idle-between-requests connections are
          unaffected. *)
  auth_token : string option;
      (** Shared secret demanded of TCP clients (constant-time
          compare); Unix-socket clients are never challenged — the
          socket's file permissions are their credential. *)
}

let default_checkpoint_every = 5
let default_keep_checkpoints = 3
let default_read_deadline = 30.

let default_config =
  {
    socket_path = "/tmp/mmsynthd.sock";
    tcp = None;
    state_dir = "mmsynthd-state";
    pool_jobs = 1;
    checkpoint_every = default_checkpoint_every;
    keep_checkpoints = default_keep_checkpoints;
    max_jobs = 0;
    read_deadline = default_read_deadline;
    auth_token = None;
  }

let synthesis_config (options : Job.options) =
  {
    Synthesis.default_config with
    fitness =
      {
        Fitness.default_config with
        weighting =
          (if options.Job.uniform then Fitness.Uniform
           else Fitness.True_probabilities);
        dvs =
          (if options.Job.dvs then Fitness.Dvs Mm_dvs.Scaling.default_config
           else Fitness.No_dvs);
      };
    ga =
      {
        Engine.default_config with
        max_generations = options.Job.generations;
        population_size = options.Job.population;
      };
    restarts = options.Job.restarts;
    (* Parallel evaluation comes from the shared pool the server passes
       to [Synthesis.run]; a per-job pool would defeat the bound. *)
    jobs = 1;
    islands = options.Job.islands;
    migration_interval = options.Job.migration_interval;
    migration_count = options.Job.migration_count;
  }

(* --- connections -------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  decoder : Protocol.Framing.decoder;
  outbox : Buffer.t;
  requires_auth : bool;  (** TCP connection on an auth-guarded daemon. *)
  mutable last_read : float;  (** For the mid-frame read deadline. *)
  mutable watching : string list;  (** Job ids streamed to this client. *)
  mutable dead : bool;
}

type t = {
  config : config;
  registry : Registry.t;
  sched : Scheduler.t;
  pool : Pool.t option;
  handles : (string, Scheduler.handle) Hashtbl.t;
  mutable conns : conn list;
  mutable listeners : (Unix.file_descr * bool) list;
      (** Listening fds, each tagged [true] when it is the TCP one. *)
  mutable running : bool;
}

let now () = Unix.gettimeofday ()

let send conn response =
  if not conn.dead then
    Buffer.add_string conn.outbox
      (Protocol.Framing.encode (Protocol.response_to_string response))

(* Flush as much of the outbox as the socket accepts right now. *)
let flush_conn conn =
  let pending = Buffer.contents conn.outbox in
  let len = String.length pending in
  if len > 0 && not conn.dead then begin
    let written =
      try Unix.write_substring conn.fd pending 0 len with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> 0
      | Unix.Unix_error _ ->
        conn.dead <- true;
        0
    in
    if written > 0 then begin
      Buffer.clear conn.outbox;
      if written < len then
        Buffer.add_substring conn.outbox pending written (len - written)
    end
  end

(* --- job bodies --------------------------------------------------------- *)

let spawn_job t entry =
  let handle =
    Scheduler.spawn t.sched (fun ~yield ->
        let job = entry.Registry.job in
        try
          Registry.mark_running t.registry entry ~now:(now ());
          let config = synthesis_config job.Job.options in
          let sink =
            Snapshot.synth_sink ~keep:t.config.keep_checkpoints
              ~path:(Registry.checkpoint_path t.registry entry)
              ~spec:entry.Registry.spec ~every:t.config.checkpoint_every ()
          in
          (* Keep job.sexp in agreement with the snapshot a crash would
             find: the state flips to Checkpointed the moment a snapshot
             lands on disk.  A failed checkpoint write (ENOSPC, torn
             disk) is logged and skipped — the previous generation
             still stands, and the run itself is unharmed. *)
          let sink =
            {
              sink with
              Synthesis.save =
                (fun state ->
                  match sink.Synthesis.save state with
                  | () -> Registry.checkpointed t.registry entry ~now:(now ())
                  | exception Sys_error message ->
                    Log.warn (fun () ->
                        Printf.sprintf "mmsynthd: %s: checkpoint write failed: %s"
                          job.Job.id message));
            }
          in
          let resume = entry.Registry.resume in
          entry.Registry.resume <- None;
          let result =
            Synthesis.run ~config ?pool:t.pool ~checkpoint:sink ?resume
              ~yield:(fun p ->
                Registry.record_progress t.registry entry p ~now:(now ());
                yield ())
              ~spec:entry.Registry.spec ~seed:job.Job.options.Job.seed ()
          in
          Registry.complete t.registry entry result ~now:(now ())
        with
        | Scheduler.Cancelled -> Registry.cancel t.registry entry ~now:(now ())
        | exn -> (
          (* A metadata write can fail while recording the failure
             itself; the in-memory state is already Failed at that
             point, so log and keep the daemon alive. *)
          try
            Registry.fail t.registry entry (Printexc.to_string exn)
              ~now:(now ())
          with persist_exn ->
            Log.warn (fun () ->
                Printf.sprintf
                  "mmsynthd: %s: could not persist failure (%s) after %s"
                  job.Job.id
                  (Printexc.to_string persist_exn)
                  (Printexc.to_string exn))))
  in
  Hashtbl.replace t.handles entry.Registry.job.Job.id handle

(* --- request dispatch --------------------------------------------------- *)

let error code message = Protocol.Error_response { code; message }

let finish_watch t conn job_id =
  conn.watching <- List.filter (fun id -> id <> job_id) conn.watching;
  match Registry.find t.registry job_id with
  | Some entry -> send conn (Protocol.Job_info (Protocol.view entry.Registry.job))
  | None -> ()

let handle_request t conn = function
  | Protocol.Ping -> send conn Protocol.Pong
  | Protocol.Shutdown ->
    send conn Protocol.Done;
    t.running <- false
  | Protocol.List_jobs ->
    send conn
      (Protocol.Jobs
         (List.map
            (fun e -> Protocol.view e.Registry.job)
            (Registry.entries t.registry)))
  | Protocol.Submit { spec_text; options; nonce } -> (
    (* Idempotency first: a nonce the registry already knows means the
       client's earlier attempt was admitted but its response was lost
       — answer with the existing job, spawn nothing. *)
    match Option.bind nonce (Registry.find_by_nonce t.registry) with
    | Some entry ->
      send conn (Protocol.Accepted (Protocol.view entry.Registry.job))
    | None ->
      let active =
        List.length
          (List.filter
             (fun e -> not (Job.terminal e.Registry.job.Job.state))
             (Registry.entries t.registry))
      in
      if t.config.max_jobs > 0 && active >= t.config.max_jobs then
        send conn (Protocol.Busy { active; limit = t.config.max_jobs })
      else (
        match
          Registry.submit ?nonce t.registry ~spec_text ~options ~now:(now ())
        with
        | Error diags ->
          send conn
            (Protocol.Rejected (List.map Protocol.diag_of_validate diags))
        | Ok entry ->
          spawn_job t entry;
          send conn (Protocol.Accepted (Protocol.view entry.Registry.job))))
  | Protocol.Status id -> (
    match Registry.find t.registry id with
    | None -> send conn (error "unknown-job" id)
    | Some entry -> send conn (Protocol.Job_info (Protocol.view entry.Registry.job)))
  | Protocol.Cancel id -> (
    match Registry.find t.registry id with
    | None -> send conn (error "unknown-job" id)
    | Some entry ->
      let job = entry.Registry.job in
      if Job.terminal job.Job.state then
        send conn
          (error "wrong-state"
             (Printf.sprintf "%s is already %s" id
                (Job.state_to_string job.Job.state)))
      else begin
        (match Hashtbl.find_opt t.handles id with
        | Some handle -> Scheduler.request_cancel handle
        | None -> ());
        (* A queued body never runs, so nothing would record the
           cancellation — do it here.  Running jobs cancel themselves at
           their next yield. *)
        if job.Job.state = Job.Queued then
          Registry.cancel t.registry entry ~now:(now ());
        send conn Protocol.Done
      end)
  | Protocol.Watch id -> (
    match Registry.find t.registry id with
    | None -> send conn (error "unknown-job" id)
    | Some entry ->
      let job = entry.Registry.job in
      List.iter
        (fun line -> send conn (Protocol.Event line))
        (Registry.read_events t.registry entry);
      if Job.terminal job.Job.state then
        send conn (Protocol.Job_info (Protocol.view job))
      else conn.watching <- id :: conn.watching)

(* Replace everything a request just queued with one unparseable frame
   and drop the connection: the request's side effects happened, its
   response is lost — exactly the half-failure the submit nonce exists
   to make survivable. *)
let garble_response conn ~mark =
  let queued = Buffer.contents conn.outbox in
  Buffer.clear conn.outbox;
  Buffer.add_substring conn.outbox queued 0 mark;
  Buffer.add_string conn.outbox (Protocol.Framing.encode "(mmsynth-rpc (garbage");
  flush_conn conn;
  conn.dead <- true

let authorized t conn auth =
  (not conn.requires_auth)
  ||
  match (t.config.auth_token, auth) with
  | Some expected, Some provided -> Protocol.token_equal expected provided
  | Some _, None -> false
  | None, _ -> true

let service_conn t conn =
  let chunk = Bytes.create 65536 in
  let n =
    if Fault.fire site_read_eof then 0 (* chaos: peer vanished mid-stream *)
    else
      try Unix.read conn.fd chunk 0 (Bytes.length chunk) with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> -1
      | Unix.Unix_error _ -> 0
  in
  if n = 0 then conn.dead <- true
  else if n > 0 then begin
    conn.last_read <- now ();
    Protocol.Framing.feed conn.decoder (Bytes.sub_string chunk 0 n);
    let rec drain () =
      if conn.dead then ()
      else
        match Protocol.Framing.next conn.decoder with
        | Error err ->
          send conn (error "protocol" (Protocol.Framing.error_to_string err));
          flush_conn conn;
          conn.dead <- true
        | Ok None -> ()
        | Ok (Some payload) ->
          (match Protocol.request_of_string_auth payload with
          | Error message -> send conn (error "protocol" message)
          | Ok (request, auth) ->
            if not (authorized t conn auth) then
              send conn Protocol.Unauthorized
            else begin
              let mark = Buffer.length conn.outbox in
              (try handle_request t conn request with
              | exn -> send conn (error "internal" (Printexc.to_string exn)));
              (* Never garble Shutdown: its sender cannot retry against
                 a daemon that is already gone. *)
              match request with
              | Protocol.Shutdown -> ()
              | _ ->
                if Fault.fire site_garbage_frame then
                  garble_response conn ~mark
            end);
          drain ()
    in
    drain ()
  end

(* --- event fan-out ------------------------------------------------------ *)

let broadcast t (job : Job.t) line =
  List.iter
    (fun conn ->
      if List.mem job.Job.id conn.watching then begin
        send conn (Protocol.Event line);
        if Job.terminal job.Job.state then finish_watch t conn job.Job.id
      end)
    t.conns

(* --- listeners ---------------------------------------------------------- *)

let listen_unix path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.set_nonblock fd;
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0) with
    | Not_found -> Unix.inet_addr_loopback
  in
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let accept_conn t ~tcp listener =
  match Unix.accept listener with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()
  | fd, _addr ->
    if Fault.fire site_accept_drop then
      (* Chaos: the three-way handshake succeeded but the daemon died
         on it — the client sees a connection reset and must retry. *)
      try Unix.close fd with Unix.Unix_error _ -> ()
    else begin
      Unix.set_nonblock fd;
      t.conns <-
        {
          fd;
          decoder = Protocol.Framing.create ();
          outbox = Buffer.create 1024;
          requires_auth = tcp && t.config.auth_token <> None;
          last_read = now ();
          watching = [];
          dead = false;
        }
        :: t.conns
    end

(* Kill connections that have sat on a partial frame past the read
   deadline: a peer that sent half a length-prefixed frame and went
   away would otherwise hold its buffer (and fd) forever.  A quiet
   connection with no bytes pending is a legitimate idle client. *)
let enforce_deadlines t =
  let deadline = t.config.read_deadline in
  if deadline > 0. then begin
    let cutoff = now () -. deadline in
    List.iter
      (fun c ->
        if
          (not c.dead)
          && Protocol.Framing.pending c.decoder > 0
          && c.last_read < cutoff
        then c.dead <- true)
      t.conns
  end

let reap t =
  let dead, live = List.partition (fun c -> c.dead) t.conns in
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) dead;
  t.conns <- live

(* --- main loop ---------------------------------------------------------- *)

let run config =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | Invalid_argument _ -> ());
  let registry = Registry.create ~state_dir:config.state_dir in
  let pool =
    if config.pool_jobs > 1 then
      (* Under an armed chaos plan the pool must retry, so every
         injected worker raise is absorbed (the injection site only
         fires when max_retries > 0); the near-zero backoff keeps the
         chaos smoke fast. *)
      let pool_config =
        if Fault.armed () then
          { Pool.default_config with max_retries = 3; backoff = 1e-4 }
        else Pool.default_config
      in
      Some (Pool.create ~domains:config.pool_jobs ~config:pool_config ())
    else None
  in
  let t =
    {
      config;
      registry;
      sched = Scheduler.create ();
      pool;
      handles = Hashtbl.create 64;
      conns = [];
      listeners = [];
      running = true;
    }
  in
  Registry.set_on_event registry (broadcast t);
  (* Crash recovery: every non-terminal job goes back on the run queue,
     resuming from its snapshot when one exists. *)
  let recovered = Registry.rehydrate registry in
  List.iter (spawn_job t) recovered;
  if recovered <> [] then
    Log.info (fun () ->
        Printf.sprintf "mmsynthd: recovered %d in-flight job(s)"
          (List.length recovered));
  t.listeners <-
    ((listen_unix config.socket_path, false)
    ::
    (match config.tcp with
    | None -> []
    | Some (host, port) -> [ (listen_tcp host port, true) ]));
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> flush_conn c) t.conns;
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        t.conns;
      List.iter
        (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
        t.listeners;
      (try Sys.remove config.socket_path with Sys_error _ -> ());
      Option.iter Pool.shutdown t.pool;
      if Fault.armed () then
        Log.info (fun () ->
            Printf.sprintf "mmsynthd: chaos injections: %s"
              (String.concat ", "
                 (List.map
                    (fun (name, count) -> Printf.sprintf "%s=%d" name count)
                    (Fault.report ())))))
  @@ fun () ->
  while t.running do
    let reads =
      List.map fst t.listeners @ List.map (fun c -> c.fd) t.conns
    in
    let writes =
      List.filter_map
        (fun c -> if Buffer.length c.outbox > 0 then Some c.fd else None)
        t.conns
    in
    let timeout = if Scheduler.busy t.sched then 0. else 0.25 in
    let readable, writable, _ =
      try Unix.select reads writes [] timeout with
      | Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        match List.assoc_opt fd t.listeners with
        | Some tcp -> accept_conn t ~tcp fd
        | None -> (
          match List.find_opt (fun c -> c.fd = fd) t.conns with
          | Some conn -> service_conn t conn
          | None -> ()))
      readable;
    List.iter
      (fun fd ->
        match List.find_opt (fun c -> c.fd = fd) t.conns with
        | Some conn -> flush_conn conn
        | None -> ())
      writable;
    enforce_deadlines t;
    reap t;
    (* Chaos: a stalled slice models a daemon briefly starved of CPU —
       checkpoint cadence and client deadlines must tolerate it. *)
    let stall = Fault.fire_delay site_slice_delay in
    if stall > 0. then Unix.sleepf stall;
    (* One generation slice of the front job per iteration keeps the
       loop responsive: socket latency is bounded by a single
       generation's evaluation time. *)
    ignore (Scheduler.step t.sched : bool)
  done
