module Pool = Mm_parallel.Pool
module Snapshot = Mm_io.Snapshot
module Synthesis = Mm_cosynth.Synthesis
module Fitness = Mm_cosynth.Fitness
module Engine = Mm_ga.Engine
module Log = Mm_obs.Log

type config = {
  socket_path : string;
  tcp : (string * int) option;
  state_dir : string;
  pool_jobs : int;
  checkpoint_every : int;
}

let default_checkpoint_every = 5

let synthesis_config (options : Job.options) =
  {
    Synthesis.default_config with
    fitness =
      {
        Fitness.default_config with
        weighting =
          (if options.Job.uniform then Fitness.Uniform
           else Fitness.True_probabilities);
        dvs =
          (if options.Job.dvs then Fitness.Dvs Mm_dvs.Scaling.default_config
           else Fitness.No_dvs);
      };
    ga =
      {
        Engine.default_config with
        max_generations = options.Job.generations;
        population_size = options.Job.population;
      };
    restarts = options.Job.restarts;
    (* Parallel evaluation comes from the shared pool the server passes
       to [Synthesis.run]; a per-job pool would defeat the bound. *)
    jobs = 1;
    islands = options.Job.islands;
    migration_interval = options.Job.migration_interval;
    migration_count = options.Job.migration_count;
  }

(* --- connections -------------------------------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  decoder : Protocol.Framing.decoder;
  outbox : Buffer.t;
  mutable watching : string list;  (** Job ids streamed to this client. *)
  mutable dead : bool;
}

type t = {
  config : config;
  registry : Registry.t;
  sched : Scheduler.t;
  pool : Pool.t option;
  handles : (string, Scheduler.handle) Hashtbl.t;
  mutable conns : conn list;
  mutable listeners : Unix.file_descr list;
  mutable running : bool;
}

let now () = Unix.gettimeofday ()

let send conn response =
  if not conn.dead then
    Buffer.add_string conn.outbox
      (Protocol.Framing.encode (Protocol.response_to_string response))

(* Flush as much of the outbox as the socket accepts right now. *)
let flush_conn conn =
  let pending = Buffer.contents conn.outbox in
  let len = String.length pending in
  if len > 0 && not conn.dead then begin
    let written =
      try Unix.write_substring conn.fd pending 0 len with
      | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> 0
      | Unix.Unix_error _ ->
        conn.dead <- true;
        0
    in
    if written > 0 then begin
      Buffer.clear conn.outbox;
      if written < len then
        Buffer.add_substring conn.outbox pending written (len - written)
    end
  end

(* --- job bodies --------------------------------------------------------- *)

let spawn_job t entry =
  let handle =
    Scheduler.spawn t.sched (fun ~yield ->
        let job = entry.Registry.job in
        try
          Registry.mark_running t.registry entry ~now:(now ());
          let config = synthesis_config job.Job.options in
          let sink =
            Snapshot.synth_sink
              ~path:(Registry.checkpoint_path t.registry entry)
              ~spec:entry.Registry.spec ~every:t.config.checkpoint_every
          in
          (* Keep job.sexp in agreement with the snapshot a crash would
             find: the state flips to Checkpointed the moment a snapshot
             lands on disk. *)
          let sink =
            {
              sink with
              Synthesis.save =
                (fun state ->
                  sink.Synthesis.save state;
                  Registry.checkpointed t.registry entry ~now:(now ()));
            }
          in
          let resume = entry.Registry.resume in
          entry.Registry.resume <- None;
          let result =
            Synthesis.run ~config ?pool:t.pool ~checkpoint:sink ?resume
              ~yield:(fun p ->
                Registry.record_progress t.registry entry p ~now:(now ());
                yield ())
              ~spec:entry.Registry.spec ~seed:job.Job.options.Job.seed ()
          in
          Registry.complete t.registry entry result ~now:(now ())
        with
        | Scheduler.Cancelled -> Registry.cancel t.registry entry ~now:(now ())
        | exn ->
          Registry.fail t.registry entry (Printexc.to_string exn)
            ~now:(now ()))
  in
  Hashtbl.replace t.handles entry.Registry.job.Job.id handle

(* --- request dispatch --------------------------------------------------- *)

let error code message = Protocol.Error_response { code; message }

let finish_watch t conn job_id =
  conn.watching <- List.filter (fun id -> id <> job_id) conn.watching;
  match Registry.find t.registry job_id with
  | Some entry -> send conn (Protocol.Job_info (Protocol.view entry.Registry.job))
  | None -> ()

let handle_request t conn = function
  | Protocol.Ping -> send conn Protocol.Pong
  | Protocol.Shutdown ->
    send conn Protocol.Done;
    t.running <- false
  | Protocol.List_jobs ->
    send conn
      (Protocol.Jobs
         (List.map
            (fun e -> Protocol.view e.Registry.job)
            (Registry.entries t.registry)))
  | Protocol.Submit { spec_text; options } -> (
    match Registry.submit t.registry ~spec_text ~options ~now:(now ()) with
    | Error diags ->
      send conn (Protocol.Rejected (List.map Protocol.diag_of_validate diags))
    | Ok entry ->
      spawn_job t entry;
      send conn (Protocol.Accepted (Protocol.view entry.Registry.job)))
  | Protocol.Status id -> (
    match Registry.find t.registry id with
    | None -> send conn (error "unknown-job" id)
    | Some entry -> send conn (Protocol.Job_info (Protocol.view entry.Registry.job)))
  | Protocol.Cancel id -> (
    match Registry.find t.registry id with
    | None -> send conn (error "unknown-job" id)
    | Some entry ->
      let job = entry.Registry.job in
      if Job.terminal job.Job.state then
        send conn
          (error "wrong-state"
             (Printf.sprintf "%s is already %s" id
                (Job.state_to_string job.Job.state)))
      else begin
        (match Hashtbl.find_opt t.handles id with
        | Some handle -> Scheduler.request_cancel handle
        | None -> ());
        (* A queued body never runs, so nothing would record the
           cancellation — do it here.  Running jobs cancel themselves at
           their next yield. *)
        if job.Job.state = Job.Queued then
          Registry.cancel t.registry entry ~now:(now ());
        send conn Protocol.Done
      end)
  | Protocol.Watch id -> (
    match Registry.find t.registry id with
    | None -> send conn (error "unknown-job" id)
    | Some entry ->
      let job = entry.Registry.job in
      List.iter
        (fun line -> send conn (Protocol.Event line))
        (Registry.read_events t.registry entry);
      if Job.terminal job.Job.state then
        send conn (Protocol.Job_info (Protocol.view job))
      else conn.watching <- id :: conn.watching)

let service_conn t conn =
  let chunk = Bytes.create 65536 in
  let n =
    try Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      -1
    | Unix.Unix_error _ -> 0
  in
  if n = 0 then conn.dead <- true
  else if n > 0 then begin
    Protocol.Framing.feed conn.decoder (Bytes.sub_string chunk 0 n);
    let rec drain () =
      match Protocol.Framing.next conn.decoder with
      | Error err ->
        send conn (error "protocol" (Protocol.Framing.error_to_string err));
        flush_conn conn;
        conn.dead <- true
      | Ok None -> ()
      | Ok (Some payload) ->
        (match Protocol.request_of_string payload with
        | Error message -> send conn (error "protocol" message)
        | Ok request -> (
          try handle_request t conn request with
          | exn -> send conn (error "internal" (Printexc.to_string exn))));
        drain ()
    in
    drain ()
  end

(* --- event fan-out ------------------------------------------------------ *)

let broadcast t (job : Job.t) line =
  List.iter
    (fun conn ->
      if List.mem job.Job.id conn.watching then begin
        send conn (Protocol.Event line);
        if Job.terminal job.Job.state then finish_watch t conn job.Job.id
      end)
    t.conns

(* --- listeners ---------------------------------------------------------- *)

let listen_unix path =
  if Sys.file_exists path then Sys.remove path;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let listen_tcp host port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.set_nonblock fd;
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0) with
    | Not_found -> Unix.inet_addr_loopback
  in
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let accept_conn t listener =
  match Unix.accept listener with
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
    ()
  | fd, _addr ->
    Unix.set_nonblock fd;
    t.conns <-
      {
        fd;
        decoder = Protocol.Framing.create ();
        outbox = Buffer.create 1024;
        watching = [];
        dead = false;
      }
      :: t.conns

let reap t =
  let dead, live = List.partition (fun c -> c.dead) t.conns in
  List.iter (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) dead;
  t.conns <- live

(* --- main loop ---------------------------------------------------------- *)

let run config =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
  | Invalid_argument _ -> ());
  let registry = Registry.create ~state_dir:config.state_dir in
  let pool =
    if config.pool_jobs > 1 then
      Some (Pool.create ~domains:config.pool_jobs ())
    else None
  in
  let t =
    {
      config;
      registry;
      sched = Scheduler.create ();
      pool;
      handles = Hashtbl.create 64;
      conns = [];
      listeners = [];
      running = true;
    }
  in
  Registry.set_on_event registry (broadcast t);
  (* Crash recovery: every non-terminal job goes back on the run queue,
     resuming from its snapshot when one exists. *)
  let recovered = Registry.rehydrate registry in
  List.iter (spawn_job t) recovered;
  if recovered <> [] then
    Log.info (fun () ->
        Printf.sprintf "mmsynthd: recovered %d in-flight job(s)"
          (List.length recovered));
  t.listeners <-
    (listen_unix config.socket_path
    ::
    (match config.tcp with
    | None -> []
    | Some (host, port) -> [ listen_tcp host port ]));
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> flush_conn c) t.conns;
      List.iter
        (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
        t.conns;
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        t.listeners;
      (try Sys.remove config.socket_path with Sys_error _ -> ());
      Option.iter Pool.shutdown t.pool)
  @@ fun () ->
  while t.running do
    let reads = t.listeners @ List.map (fun c -> c.fd) t.conns in
    let writes =
      List.filter_map
        (fun c -> if Buffer.length c.outbox > 0 then Some c.fd else None)
        t.conns
    in
    let timeout = if Scheduler.busy t.sched then 0. else 0.25 in
    let readable, writable, _ =
      try Unix.select reads writes [] timeout with
      | Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if List.mem fd t.listeners then accept_conn t fd
        else
          match List.find_opt (fun c -> c.fd = fd) t.conns with
          | Some conn -> service_conn t conn
          | None -> ())
      readable;
    List.iter
      (fun fd ->
        match List.find_opt (fun c -> c.fd = fd) t.conns with
        | Some conn -> flush_conn conn
        | None -> ())
      writable;
    reap t;
    (* One generation slice of the front job per iteration keeps the
       loop responsive: socket latency is bounded by a single
       generation's evaluation time. *)
    ignore (Scheduler.step t.sched : bool)
  done
