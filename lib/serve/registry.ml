module Codec = Mm_io.Codec
module Snapshot = Mm_io.Snapshot
module Sexp = Mm_io.Sexp
module Json = Mm_obs.Json
module Synthesis = Mm_cosynth.Synthesis
module Fault = Mm_fault.Fault

(* Chaos site (a no-op unless armed): a metadata write that fails as a
   full or read-only filesystem would.  The server maps the resulting
   [Sys_error] to a failed job with a diagnostic — never a daemon
   teardown. *)
let site_write_fail = Fault.site "registry.write_fail"

type entry = {
  job : Job.t;
  spec : Mm_cosynth.Spec.t;
  spec_text : string;
  mutable resume : Synthesis.run_state option;
}

type t = {
  state_dir : string;
  jobs_dir : string;
  table : (string, entry) Hashtbl.t;
  nonces : (string, string) Hashtbl.t;  (** Submission nonce -> job id. *)
  mutable ordered : entry list;  (** Submission order, newest last. *)
  mutable next_seq : int;
  mutable on_event : (Job.t -> string -> unit) option;
}

let mkdir_p dir =
  let rec make dir =
    if not (Sys.file_exists dir) then begin
      make (Filename.dirname dir);
      try Unix.mkdir dir 0o755 with
      | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  make dir

let create ~state_dir =
  let jobs_dir = Filename.concat state_dir "jobs" in
  mkdir_p jobs_dir;
  {
    state_dir;
    jobs_dir;
    table = Hashtbl.create 64;
    nonces = Hashtbl.create 64;
    ordered = [];
    next_seq = 1;
    on_event = None;
  }

let set_on_event t f = t.on_event <- Some f

let job_dir t entry = Filename.concat t.jobs_dir entry.job.Job.id
let meta_path t entry = Filename.concat (job_dir t entry) "job.sexp"
let spec_path t entry = Filename.concat (job_dir t entry) "spec.mms"
let checkpoint_path t entry = Filename.concat (job_dir t entry) "checkpoint.snap"
let events_path t entry = Filename.concat (job_dir t entry) "events.jsonl"
let result_path t entry = Filename.concat (job_dir t entry) "result.sexp"

let find t id = Hashtbl.find_opt t.table id
let entries t = t.ordered

let find_by_nonce t nonce =
  match Hashtbl.find_opt t.nonces nonce with
  | None -> None
  | Some id -> Hashtbl.find_opt t.table id

let remember_nonce t (job : Job.t) =
  match job.Job.nonce with
  | None -> ()
  | Some nonce -> Hashtbl.replace t.nonces nonce job.Job.id

let persist_meta t entry =
  let path = meta_path t entry in
  if Fault.fire site_write_fail then
    raise (Sys_error (path ^ ": write failed (chaos)"));
  Codec.write_file_atomic path (Sexp.to_string (Job.to_sexp entry.job) ^ "\n")

(* --- events ------------------------------------------------------------ *)

let append_event t entry line =
  let oc =
    open_out_gen [ Open_append; Open_creat ] 0o644 (events_path t entry)
  in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc line;
      output_char oc '\n');
  match t.on_event with None -> () | Some f -> f entry.job line

let state_event t entry ~now ?(extra = fun (_ : Buffer.t) -> ()) () =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"event\":\"state\",\"job\":";
  Json.str buf entry.job.Job.id;
  Buffer.add_string buf ",\"state\":";
  Json.str buf (Job.state_to_string entry.job.Job.state);
  extra buf;
  Buffer.add_string buf ",\"ts\":";
  Json.number buf now;
  Buffer.add_char buf '}';
  append_event t entry (Buffer.contents buf)

(* --- admission --------------------------------------------------------- *)

let submit ?nonce t ~spec_text ~options ~now =
  match Codec.check_string spec_text with
  | spec_opt, diags
    when Mm_cosynth.Validate.has_errors diags || Option.is_none spec_opt ->
    Error diags
  | Some spec, _diags ->
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let job =
      Job.create ?nonce ~seq ~options
        ~spec_fingerprint:(Snapshot.fingerprint spec) ~now ()
    in
    let entry = { job; spec; spec_text; resume = None } in
    mkdir_p (job_dir t entry);
    Codec.write_file (spec_path t entry) spec_text;
    persist_meta t entry;
    Hashtbl.replace t.table job.Job.id entry;
    remember_nonce t job;
    t.ordered <- t.ordered @ [ entry ];
    state_event t entry ~now ();
    Ok entry
  | None, _ -> assert false (* covered by the guard above *)

(* --- crash recovery ---------------------------------------------------- *)

let load_entry t ~id =
  let dir = Filename.concat t.jobs_dir id in
  let read path = Codec.read_file path in
  match
    let meta = Sexp.parse_one (read (Filename.concat dir "job.sexp")) in
    match Job.of_sexp meta with
    | Error message -> Error message
    | Ok job -> (
      let spec_text = read (Filename.concat dir "spec.mms") in
      match Codec.spec_of_string_result spec_text with
      | Error diags ->
        Error
          (Printf.sprintf "spec no longer loads: %d diagnostics"
             (List.length diags))
      | Ok spec -> Ok { job; spec; spec_text; resume = None })
  with
  | result -> result
  | exception Sys_error message -> Error message
  | exception Sexp.Parse_error { line; column; message } ->
    Error (Printf.sprintf "job.sexp %d:%d: %s" line column message)
  | exception exn -> Error (Printexc.to_string exn)

let rehydrate t =
  let ids =
    Sys.readdir t.jobs_dir |> Array.to_list
    |> List.filter (fun id ->
           Sys.is_directory (Filename.concat t.jobs_dir id))
  in
  let loaded =
    List.filter_map
      (fun id ->
        let meta = Filename.concat (Filename.concat t.jobs_dir id) "job.sexp" in
        if
          (not (Sys.file_exists meta)) && Sys.file_exists (meta ^ ".corrupt")
        then
          (* Quarantined on an earlier startup: stays skipped, quietly. *)
          None
        else
          match load_entry t ~id with
          | Ok entry -> Some entry
          | Error message ->
            (* One poisoned directory must not fail the whole startup:
               quarantine its metadata (preserved for autopsy, renamed
               so it is never re-read) and move on. *)
            (try
               if Sys.file_exists meta then Sys.rename meta (meta ^ ".corrupt")
             with Sys_error _ -> ());
            prerr_endline
              (Printf.sprintf "mmsynthd: %s: metadata quarantined (%s)" id
                 message);
            None)
      ids
  in
  let loaded =
    List.sort (fun a b -> compare a.job.Job.seq b.job.Job.seq) loaded
  in
  List.iter
    (fun entry ->
      Hashtbl.replace t.table entry.job.Job.id entry;
      remember_nonce t entry.job;
      t.next_seq <- max t.next_seq (entry.job.Job.seq + 1))
    loaded;
  t.ordered <- loaded;
  List.filter
    (fun entry ->
      (not (Job.terminal entry.job.Job.state))
      && begin
           (* The newest checkpoint generation that still decodes wins;
              corrupt ones are renamed [*.corrupt] so the fallback is
              permanent, not retried every startup. *)
           let scan =
             Snapshot.load_latest ~quarantine:true
               ~path:(checkpoint_path t entry) ~spec:entry.spec ()
           in
           List.iter
             (fun corrupt ->
               prerr_endline
                 (Printf.sprintf "mmsynthd: %s: corrupt checkpoint quarantined as %s"
                    entry.job.Job.id (Filename.basename corrupt)))
             scan.Snapshot.quarantined;
           (match scan.Snapshot.found with
           | Some (Snapshot.Synth state, index) ->
             entry.resume <- Some state;
             if index > 0 then
               prerr_endline
                 (Printf.sprintf
                    "mmsynthd: %s: resuming from rotated checkpoint generation %d"
                    entry.job.Job.id index)
           | Some (Snapshot.Compare _, _) | None -> entry.resume <- None);
           true
         end)
    loaded

(* --- lifecycle --------------------------------------------------------- *)

let transition_exn entry to_ =
  match Job.transition entry.job to_ with
  | Ok () -> ()
  | Error message -> invalid_arg ("Registry: " ^ message)

let mark_running t entry ~now =
  (match entry.job.Job.state with
  | Job.Running -> () (* rehydrated mid-flight, no checkpoint yet *)
  | _ -> transition_exn entry Job.Running);
  if entry.job.Job.started_at = None then entry.job.Job.started_at <- Some now;
  persist_meta t entry;
  state_event t entry ~now ()

let record_progress t entry (p : Synthesis.progress) ~now =
  entry.job.Job.restart <- p.Synthesis.p_restart;
  entry.job.Job.generation <- p.Synthesis.p_generation;
  entry.job.Job.best_fitness <- Some p.Synthesis.p_best_fitness;
  if entry.job.Job.first_generation_at = None then
    entry.job.Job.first_generation_at <- Some now;
  let buf = Buffer.create 160 in
  Buffer.add_string buf "{\"event\":\"generation\",\"job\":";
  Json.str buf entry.job.Job.id;
  Buffer.add_string buf ",\"restart\":";
  Json.int buf p.Synthesis.p_restart;
  Buffer.add_string buf ",\"generation\":";
  Json.int buf p.Synthesis.p_generation;
  Buffer.add_string buf ",\"best_fitness\":";
  Json.number buf p.Synthesis.p_best_fitness;
  Buffer.add_string buf ",\"evaluations\":";
  Json.int buf p.Synthesis.p_evaluations;
  Buffer.add_string buf ",\"cache_hits\":";
  Json.int buf p.Synthesis.p_cache_hits;
  Buffer.add_string buf ",\"ts\":";
  Json.number buf now;
  Buffer.add_char buf '}';
  append_event t entry (Buffer.contents buf)

let checkpointed t entry ~now =
  (match entry.job.Job.state with
  | Job.Checkpointed -> ()
  | _ -> transition_exn entry Job.Checkpointed);
  persist_meta t entry;
  ignore now

let complete t entry (result : Synthesis.result) ~now =
  transition_exn entry Job.Completed;
  let outcome =
    {
      Job.power = Synthesis.average_power result;
      fitness = result.Synthesis.eval.Mm_cosynth.Fitness.fitness;
      generations = result.Synthesis.generations;
      evaluations = result.Synthesis.evaluations;
      genome = result.Synthesis.genome;
    }
  in
  entry.job.Job.outcome <- Some outcome;
  entry.job.Job.best_fitness <- Some outcome.Job.fitness;
  entry.job.Job.finished_at <- Some now;
  (* The file the crash-recovery smoke diffs: only trajectory-determined
     values (genome, bit-exact power/fitness, generation count) — never
     evaluation counts, which legitimately differ across a resume. *)
  Codec.write_file_atomic (result_path t entry)
    (Sexp.to_string
       (Sexp.List
          [
            Sexp.atom "mmsynthd-result";
            Sexp.field "job" [ Sexp.atom entry.job.Job.id ];
            Sexp.field "spec" [ Sexp.atom entry.job.Job.spec_fingerprint ];
            Sexp.field "power" [ Sexp.float outcome.Job.power ];
            Sexp.field "fitness" [ Sexp.float outcome.Job.fitness ];
            Sexp.field "generations" [ Sexp.int outcome.Job.generations ];
            Sexp.field "genome"
              (List.map Sexp.int (Array.to_list outcome.Job.genome));
          ])
    ^ "\n");
  persist_meta t entry;
  state_event t entry ~now
    ~extra:(fun buf ->
      Buffer.add_string buf ",\"power\":";
      Json.number buf outcome.Job.power;
      Buffer.add_string buf ",\"fitness\":";
      Json.number buf outcome.Job.fitness)
    ()

let fail t entry message ~now =
  transition_exn entry Job.Failed;
  entry.job.Job.error <- Some message;
  entry.job.Job.finished_at <- Some now;
  persist_meta t entry;
  state_event t entry ~now
    ~extra:(fun buf ->
      Buffer.add_string buf ",\"error\":";
      Json.str buf message)
    ()

let cancel t entry ~now =
  transition_exn entry Job.Cancelled;
  entry.job.Job.finished_at <- Some now;
  persist_meta t entry;
  state_event t entry ~now ()

let read_events t entry =
  match Codec.read_file (events_path t entry) with
  | exception Sys_error _ -> []
  | text ->
    String.split_on_char '\n' text |> List.filter (fun line -> line <> "")
