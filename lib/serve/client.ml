type t = { fd : Unix.file_descr; decoder : Protocol.Framing.decoder }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exn ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise exn);
  { fd; decoder = Protocol.Framing.create () }

let connect_tcp ~host ~port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let addr =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0) with
    | Not_found -> Unix.inet_addr_loopback
  in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port)) with
  | exn ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise exn);
  { fd; decoder = Protocol.Framing.create () }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ~socket f =
  let t = connect ~socket in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

let receive t =
  match Protocol.read_message t.fd t.decoder with
  | Error err -> Error (Protocol.Framing.error_to_string err)
  | Ok None -> Error "connection closed by the daemon"
  | Ok (Some payload) -> Protocol.response_of_string payload

let request t req =
  match Protocol.write_message t.fd (Protocol.request_to_string req) with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> receive t

let watch t id ~on_event =
  match request t (Protocol.Watch id) with
  | Error _ as e -> e
  | Ok first ->
    let rec loop = function
      | Protocol.Event line ->
        on_event line;
        Result.bind (receive t) loop
      | Protocol.Job_info view -> Ok view
      | Protocol.Error_response { code; message } ->
        Error (Printf.sprintf "%s: %s" code message)
      | _ -> Error "unexpected response while watching"
    in
    loop first
