module Prng = Mm_util.Prng

type endpoint = Unix_socket of string | Tcp of string * int

type retry = {
  attempts : int;
  base_delay : float;
  max_delay : float;
  jitter : float;
}

let default_retry =
  { attempts = 6; base_delay = 0.05; max_delay = 2.0; jitter = 0.25 }

let no_retry = { attempts = 1; base_delay = 0.; max_delay = 0.; jitter = 0. }

(* Exponential, capped, with subtractive jitter: attempt [k] sleeps
   somewhere in [cap_k * (1 - jitter), cap_k], so a herd of clients
   retrying the same dead daemon spreads out instead of stampeding in
   lockstep.  Pure in (retry, attempt, rng) — the unit tests pin it. *)
let backoff_delay retry ~attempt ~rng =
  let capped =
    Float.min retry.max_delay (retry.base_delay *. (2. ** float_of_int attempt))
  in
  if retry.jitter <= 0. || capped <= 0. then Float.max 0. capped
  else capped *. (1. -. (retry.jitter *. Prng.float rng 1.0))

(* A process-unique submission nonce: pid + wall-clock bits + counter.
   Uniqueness is all that matters (the daemon only ever compares for
   equality), not unpredictability. *)
let nonce_counter = ref 0

let fresh_nonce () =
  incr nonce_counter;
  Printf.sprintf "n-%d-%Lx-%d" (Unix.getpid ())
    (Int64.bits_of_float (Unix.gettimeofday ()))
    !nonce_counter

type wire = { fd : Unix.file_descr; decoder : Protocol.Framing.decoder }

type t = {
  endpoint : endpoint;
  auth : string option;
  retry : retry;
  rng : Prng.t;
  mutable wire : wire option;
}

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* A write into a connection the daemon has already severed must surface
   as EPIPE (caught, dropped, retried by [rpc]) rather than kill the
   whole client process. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with
    | Invalid_argument _ -> () (* no SIGPIPE on this platform *))

let dial endpoint =
  Lazy.force ignore_sigpipe;
  match endpoint with
  | Unix_socket socket ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX socket) with
    | exn ->
      close_fd fd;
      raise exn);
    { fd; decoder = Protocol.Framing.create () }
  | Tcp (host, port) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    let addr =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0) with
      | Not_found -> Unix.inet_addr_loopback
    in
    (try Unix.connect fd (Unix.ADDR_INET (addr, port)) with
    | exn ->
      close_fd fd;
      raise exn);
    { fd; decoder = Protocol.Framing.create () }

let create ?auth ?(retry = default_retry) endpoint =
  {
    endpoint;
    auth;
    retry;
    (* Jitter randomness only — correctness never depends on it. *)
    rng = Prng.create ~seed:(Hashtbl.hash (Unix.getpid (), Unix.gettimeofday ()));
    wire = None;
  }

let connect ~socket =
  let t = create ~retry:no_retry (Unix_socket socket) in
  t.wire <- Some (dial t.endpoint);
  t

let connect_tcp ~host ~port =
  let t = create ~retry:no_retry (Tcp (host, port)) in
  t.wire <- Some (dial t.endpoint);
  t

let drop t =
  (match t.wire with Some w -> close_fd w.fd | None -> ());
  t.wire <- None

let close = drop

let with_connection ~socket f =
  let t = connect ~socket in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* Lazily (re)establish the connection.  [Error] rather than an
   exception so [rpc] can treat an unreachable daemon like any other
   retryable failure. *)
let wire t =
  match t.wire with
  | Some w -> Ok w
  | None -> (
    match dial t.endpoint with
    | w ->
      t.wire <- Some w;
      Ok w
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))

(* Any receive failure — broken framing, EOF, an unparseable (garbage)
   frame — poisons the stream, so the connection is dropped and the
   next request redials with a fresh decoder. *)
let receive t =
  match t.wire with
  | None -> Error "not connected"
  | Some w -> (
    match Protocol.read_message w.fd w.decoder with
    | exception Unix.Unix_error (e, _, _) ->
      drop t;
      Error (Unix.error_message e)
    | Error err ->
      drop t;
      Error (Protocol.Framing.error_to_string err)
    | Ok None ->
      drop t;
      Error "connection closed by the daemon"
    | Ok (Some payload) -> (
      match Protocol.response_of_string payload with
      | Error message ->
        drop t;
        Error message
      | Ok response -> Ok response))

let request t req =
  match wire t with
  | Error _ as e -> e
  | Ok w -> (
    match
      Protocol.write_message w.fd (Protocol.request_to_string ?auth:t.auth req)
    with
    | exception Unix.Unix_error (e, _, _) ->
      drop t;
      Error (Unix.error_message e)
    | () -> receive t)

(* Transport failures and [Busy] are worth retrying; [Unauthorized] and
   every application-level response are final.  A retried request may
   re-execute server-side side effects — which is exactly why [Submit]
   carries a nonce. *)
let retryable = function
  | Error _ -> true
  | Ok (Protocol.Busy _) -> true
  | Ok _ -> false

let rpc t req =
  let rec go attempt =
    let result = request t req in
    if retryable result && attempt + 1 < t.retry.attempts then begin
      drop t;
      let delay = backoff_delay t.retry ~attempt ~rng:t.rng in
      if delay > 0. then Unix.sleepf delay;
      go (attempt + 1)
    end
    else result
  in
  go 0

let watch t id ~on_event =
  match request t (Protocol.Watch id) with
  | Error _ as e -> e
  | Ok first ->
    let rec loop = function
      | Protocol.Event line ->
        on_event line;
        Result.bind (receive t) loop
      | Protocol.Job_info view -> Ok view
      | Protocol.Error_response { code; message } ->
        Error (Printf.sprintf "%s: %s" code message)
      | _ -> Error "unexpected response while watching"
    in
    loop first

(* A watch that survives dropped connections: on failure it redials,
   re-subscribes, and skips the replayed history prefix.  Valid because
   the event log is append-only — the replay the daemon sends on
   re-subscription is byte-for-byte a prefix extension of what this
   client already delivered. *)
let watch_resilient t id ~on_event =
  let delivered = ref 0 in
  let attempt = ref 0 in
  let rec subscribe () =
    let position = ref 0 in
    let rec consume = function
      | Protocol.Event line ->
        incr position;
        if !position > !delivered then begin
          delivered := !position;
          attempt := 0 (* forward progress resets the retry budget *)
        end;
        if !position = !delivered then on_event line;
        next ()
      | Protocol.Job_info view -> Ok view
      | Protocol.Unauthorized -> Error "unauthorized"
      | Protocol.Error_response { code; message } ->
        Error (Printf.sprintf "%s: %s" code message)
      | _ -> retry_or "unexpected response while watching"
    and next () =
      match receive t with Ok r -> consume r | Error m -> retry_or m
    in
    match request t (Protocol.Watch id) with
    | Error m -> retry_or m
    | Ok first -> consume first
  and retry_or message =
    if !attempt + 1 >= t.retry.attempts then Error message
    else begin
      drop t;
      let delay = backoff_delay t.retry ~attempt:!attempt ~rng:t.rng in
      incr attempt;
      if delay > 0. then Unix.sleepf delay;
      subscribe ()
    end
  in
  subscribe ()

(* Shutdown is the one request whose lost response is good news: a
   daemon that cannot be reached afterwards did stop.  Distinguish
   "acknowledged", "unreachable afterwards" and everything else. *)
let shutdown t =
  match rpc t Protocol.Shutdown with
  | Ok Protocol.Done -> Ok ()
  | Ok Protocol.Unauthorized -> Error "unauthorized"
  | Ok _ -> Error "unexpected response to shutdown"
  | Error _ -> (
    drop t;
    match request t Protocol.Ping with
    | Error _ -> Ok () (* unreachable: it is down, which is what we asked *)
    | Ok _ -> Error "daemon still answering after shutdown request")
