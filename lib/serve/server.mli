(** The mmsynthd daemon: one domain multiplexing every connection and
    every synthesis job.

    A single [select]-driven event loop owns the listening sockets, all
    client connections (non-blocking, one {!Protocol.Framing} decoder
    and one outgoing byte buffer each) and the cooperative
    {!Scheduler}: each loop iteration services the ready sockets, then
    runs {e one} generation slice of the front job.  Fitness-evaluation
    batches inside a slice fan out over the shared bounded {!Mm_parallel.Pool}
    (which survives worker crashes by respawning).  Because everything
    else happens on one domain, no state in {!Registry} needs locking,
    and events emitted mid-slice are simply appended to the watchers'
    buffers and flushed on the next iteration.

    Crash recovery: on start the server {!Registry.rehydrate}s the state
    directory and re-queues every non-terminal job — resumed from its
    snapshot when one exists, rerun from scratch (same seed, same
    trajectory) otherwise.  A [shutdown] request stops the loop
    immediately, abandoning in-flight coroutines at their last yield
    point; since checkpoints are persisted {e before} each yield, that
    is indistinguishable from [kill -9] to the next daemon. *)

type config = {
  socket_path : string;  (** Unix-domain listening socket. *)
  tcp : (string * int) option;  (** Optional additional TCP listener. *)
  state_dir : string;
  pool_jobs : int;
      (** Domains of the shared evaluation pool; [<= 1] evaluates on the
          scheduler domain.  Callers clamp with
          {!Mm_parallel.Pool.clamp_jobs}. *)
  checkpoint_every : int;  (** Snapshot cadence in GA generations. *)
  keep_checkpoints : int;
      (** Snapshot generations rotated per job ({!Mm_io.Snapshot.save}'s
          [keep]); [1] keeps only the newest, >= 2 lets recovery fall
          back past a corrupted write. *)
  max_jobs : int;
      (** Admission bound: submissions past this many non-terminal jobs
          receive a typed {!Protocol.Busy} instead of queueing without
          bound.  [0] = unbounded. *)
  read_deadline : float;
      (** Seconds a connection may sit idle {e mid-frame} before it is
          dropped ([0.] = never).  Clients idle between requests are
          never dropped. *)
  auth_token : string option;
      (** Shared secret every TCP request must carry in its envelope
          (verified in constant time; wrong or missing tokens get a
          typed {!Protocol.Unauthorized}).  Unix-socket clients are
          never challenged: the socket file's permissions are their
          credential. *)
}

val default_config : config
(** The CLI defaults: Unix socket only, 3 rotated checkpoint
    generations, 30 s mid-frame read deadline, no admission bound, no
    auth. *)

val default_checkpoint_every : int
(** 5, like the CLI's [--checkpoint-every] default. *)

val default_keep_checkpoints : int
(** 3: survives one corrupt generation with one still behind it. *)

val default_read_deadline : float
(** 30 seconds. *)

val synthesis_config : Job.options -> Mm_cosynth.Synthesis.config
(** The per-job synthesis configuration a daemon derives from submitted
    options — exactly the CLI's mapping, so a daemon job and a
    [mmsynth synth] run with the same flags share one trajectory (and
    one {!Mm_cosynth.Synthesis.config_fingerprint}, which is what lets a
    restarted daemon resume a snapshot taken by its predecessor). *)

val run : config -> unit
(** Serve until a [shutdown] request.  Installs nothing but a [SIGPIPE]
    ignore; the caller owns daemonisation. *)
