(** The mmsynthd wire protocol: length-prefixed, versioned sexp frames.

    {2 Framing}

    Every message travels as one {e frame}: a 4-byte big-endian unsigned
    payload length followed by that many payload bytes.  The payload is
    a single S-expression

    {v (mmsynth-rpc (version 1) (request|response <body>)) v}

    {!Framing} is an incremental decoder — feed it arbitrary byte
    chunks, pull complete payloads out — with a hard frame-size limit so
    a hostile or corrupted peer cannot make the daemon buffer without
    bound.  Every failure is a typed {!Framing.error}; nothing in this
    module raises on wire input.

    {2 Requests and responses}

    A client sends one {!request} per frame.  Most requests produce
    exactly one {!response}; [Watch] subscribes the connection and
    produces a stream of [Event] frames (one JSONL line each, the
    existing trace schema) terminated by a final [Job_info] when the job
    reaches a terminal state. *)

type job_view = {
  v_id : string;
  v_seq : int;
  v_state : Job.state;
  v_spec_fingerprint : string;
  v_restart : int;
  v_generation : int;
  v_best_fitness : float option;
  v_power : float option;  (** Present once completed. *)
  v_error : string option;
  v_submitted_at : float;
  v_started_at : float option;
  v_first_generation_at : float option;
  v_finished_at : float option;
}
(** The client-visible projection of a {!Job.t}: enough to render
    status, and every admission/progress/completion timestamp needed to
    compute latency percentiles from the client side alone. *)

val view : Job.t -> job_view

type request =
  | Submit of {
      spec_text : string;
      options : Job.options;
      nonce : string option;
          (** Client-chosen idempotency key: resubmitting the same
              nonce returns the already-admitted job instead of
              creating a duplicate, so a client that never saw the
              response to its first attempt can retry blindly. *)
    }
  | Status of string
  | Cancel of string
  | List_jobs
  | Watch of string
  | Ping
  | Shutdown  (** Stop the daemon, leaving in-flight jobs checkpointed. *)

type diag = {
  d_code : string;
  d_severity : string;  (** ["error"] or ["warning"]. *)
  d_path : string;
  d_message : string;
  d_pos : (int * int) option;
}
(** A {!Mm_cosynth.Validate.diag} flattened for the wire. *)

val diag_of_validate : Mm_cosynth.Validate.diag -> diag
val diag_to_string : diag -> string

type response =
  | Accepted of job_view
  | Rejected of diag list  (** Validation refused admission. *)
  | Busy of { active : int; limit : int }
      (** Admission refused: [active] non-terminal jobs already meet
          the daemon's [--max-jobs] bound of [limit].  Retryable —
          clients back off and resubmit. *)
  | Unauthorized
      (** The TCP listener requires a shared-secret token and this
          request's envelope carried none, or the wrong one. *)
  | Job_info of job_view
  | Jobs of job_view list
  | Event of string  (** One JSONL progress line. *)
  | Done
  | Pong
  | Error_response of { code : string; message : string }
      (** [code] is one of ["unknown-job"], ["wrong-state"],
          ["protocol"], ["internal"]. *)

val version : int

val request_to_string : ?auth:string -> request -> string
(** [auth] adds a shared-secret token field to the envelope (the TCP
    listener may demand one); omitted, the envelope is byte-identical
    to the pre-auth wire format. *)

val request_of_string : string -> (request, string) result

val request_of_string_auth : string -> (request * string option, string) result
(** Like {!request_of_string} but also surfaces the envelope's auth
    token, for listeners that enforce one. *)

val response_to_string : response -> string
val response_of_string : string -> (response, string) result
(** Total codecs between payload bytes and messages: any parse failure,
    wrong envelope, unsupported version or unknown body becomes
    [Error].  [of_string (to_string m)] round-trips every [m]
    bit-exactly (floats go through {!Mm_io.Sexp.float}). *)

val token_equal : string -> string -> bool
(** Constant-time string equality for auth tokens: comparison time is
    independent of where the first differing byte falls (length is
    still observable). *)

module Framing : sig
  type error =
    | Oversized of { length : int; limit : int }
        (** Announced payload exceeds [max_frame]; the stream cannot be
            resynchronised and the connection must be dropped. *)
    | Malformed of string
        (** The length prefix itself is invalid. *)

  val error_to_string : error -> string

  type decoder

  val create : ?max_frame:int -> unit -> decoder
  (** [max_frame] defaults to {!default_max_frame} bytes of payload. *)

  val default_max_frame : int

  val feed : decoder -> string -> unit
  (** Append raw bytes received from the peer. *)

  val pending : decoder -> int
  (** Bytes buffered but not yet returned by {!next} — nonzero between
      frames means the peer stopped mid-frame (what the server's read
      deadline looks for). *)

  val next : decoder -> (string option, error) result
  (** Extract the next complete payload: [Ok None] when more bytes are
      needed.  Errors are sticky — once the stream is broken every
      subsequent call reports the same error. *)

  val encode : string -> string
  (** Wrap a payload in its length prefix. *)
end

val write_message : Unix.file_descr -> string -> unit
(** [write_message fd payload] sends one whole frame (blocking,
    EINTR-safe).  Raises [Unix.Unix_error] on a broken peer. *)

val read_message :
  Unix.file_descr -> Framing.decoder -> (string option, Framing.error) result
(** Blocking read of the next frame on [fd] through [decoder];
    [Ok None] on orderly end-of-stream. *)
