(** One synthesis job inside the daemon: identity, submission options,
    lifecycle state machine and the on-disk metadata codec.

    {2 Lifecycle}

    {v
                 submit
                   |
                   v
    +--------+  start   +---------+  snapshot   +--------------+
    | queued | -------> | running | ----------> | checkpointed |
    +--------+          +---------+ <---------- +--------------+
        |                 |  |  |     continue     |  |  |
        |                 |  |  +-----------+      |  |  |
        |          +------+  +----------+   |      |  |  |
        v          v                    v   v      v  v  |
    +-----------+  +-----------+      +--------+  +------+-+
    | cancelled |  | completed |      | failed |  (same three)
    +-----------+  +-----------+      +--------+
    v}

    [Checkpointed] is the state a job's {e persisted} metadata carries
    while a snapshot of its synthesis state exists on disk: a daemon
    killed with [SIGKILL] finds its in-flight jobs in [Checkpointed]
    (or [Running], if the kill landed before the first snapshot) and
    resumes them.  [Completed], [Failed] and [Cancelled] are terminal.

    Every state change goes through {!transition}, which returns a typed
    error on an illegal move — the registry never corrupts a lifecycle,
    and the state machine is testable in isolation. *)

type state = Queued | Running | Checkpointed | Completed | Failed | Cancelled

val state_to_string : state -> string
val state_of_string : string -> state option
val terminal : state -> bool

val legal : from:state -> to_:state -> bool
(** The edge relation of the diagram above. *)

type options = {
  seed : int;
  generations : int;  (** GA generation limit per restart. *)
  population : int;
  restarts : int;
  dvs : bool;
  uniform : bool;  (** Optimise with uniform mode weights (baseline arm). *)
  islands : int;
      (** GA islands per restart (default 1: single population).  With
          [> 1] the job runs the island-model GA (see
          {!Mm_ga.Islands}). *)
  migration_interval : int;  (** Generations between migration epochs. *)
  migration_count : int;  (** Members each island exports per epoch. *)
}
(** The trajectory-relevant knobs a client may set at submission; they
    are persisted with the job so a restarted daemon rebuilds the exact
    same {!Mm_cosynth.Synthesis.config} (and hence fingerprint) for
    resume.  The island fields are written only when [islands > 1], so
    single-engine job files keep their pre-island on-disk shape; absent
    fields decode to the defaults. *)

val default_options : options

val options_to_fields : options -> Mm_io.Sexp.t list
val options_of_fields : Mm_io.Sexp.t list -> options
(** Shared with the wire protocol's [submit] body.  [of_fields] raises
    [Failure] or {!Mm_io.Sexp.Type_error} on malformed input; total
    callers wrap it. *)

type outcome = {
  power : float;  (** Average power under the true probabilities (W). *)
  fitness : float;
  generations : int;
  evaluations : int;
  genome : int array;
}
(** What a completed job retains of its {!Mm_cosynth.Synthesis.result}. *)

type t = {
  id : string;  (** ["job-%04d"] of [seq]; stable across daemon restarts. *)
  seq : int;  (** Submission order, the scheduler's admission order. *)
  options : options;
  spec_fingerprint : string;  (** {!Mm_io.Snapshot.fingerprint} of the spec. *)
  nonce : string option;
      (** The submission's idempotency key, persisted so a restarted
          daemon still recognises a client's retry of an old submit. *)
  mutable state : state;
  mutable restart : int;  (** Restart index last reported by the run. *)
  mutable generation : int;  (** Generations completed in that restart. *)
  mutable best_fitness : float option;
  mutable outcome : outcome option;  (** Present iff [state = Completed]. *)
  mutable error : string option;  (** Present iff [state = Failed]. *)
  mutable submitted_at : float;  (** [Unix.gettimeofday] timestamps; *)
  mutable started_at : float option;  (** [0.]/[None] when unknown. *)
  mutable first_generation_at : float option;
  mutable finished_at : float option;
}

val create :
  ?nonce:string ->
  seq:int ->
  options:options ->
  spec_fingerprint:string ->
  now:float ->
  unit ->
  t

val transition : t -> state -> (unit, string) result
(** Move the job to a new state; [Error] (with an unchanged job) when
    {!legal} forbids the edge. *)

val to_sexp : t -> Mm_io.Sexp.t
val of_sexp : Mm_io.Sexp.t -> (t, string) result
(** Total: every malformed shape maps to [Error].  Floats round-trip
    bit-exactly (they go through {!Mm_io.Sexp.float}). *)
