(** The daemon's job table and its on-disk mirror.

    Every job owns one directory under [<state_dir>/jobs/<id>/]:

    {v
    spec.mms         the submitted specification, verbatim
    job.sexp         Job.to_sexp metadata (atomic write, every change)
    checkpoint.snap  Mm_io.Snapshot of the in-flight run state
    events.jsonl     append-only progress event log (the trace schema)
    result.sexp      final outcome, written once on completion
    v}

    Admission runs {!Mm_io.Codec.check_string}: a spec with
    error-severity MM0xx diagnostics is rejected before a directory is
    ever created.  {!rehydrate} is the crash-recovery path — it reloads
    every job directory, returns the non-terminal ones (oldest first)
    with their checkpoint states ready to resume, and continues the
    submission sequence where the dead daemon stopped, so job ids stay
    stable across restarts.

    All metadata writes go through {!Mm_io.Codec.write_file_atomic}: a
    [kill -9] at any instant leaves every file either previous or new,
    never torn. *)

type entry = {
  job : Job.t;
  spec : Mm_cosynth.Spec.t;
  spec_text : string;
  mutable resume : Mm_cosynth.Synthesis.run_state option;
      (** Loaded by {!rehydrate}; the server consumes it at restart. *)
}

type t

val create : state_dir:string -> t
(** Create (or reopen) the state directory. *)

val set_on_event : t -> (Job.t -> string -> unit) -> unit
(** Called with every JSONL event line as it is appended — the live
    feed behind [watch]. *)

val submit :
  ?nonce:string ->
  t ->
  spec_text:string ->
  options:Job.options ->
  now:float ->
  (entry, Mm_cosynth.Validate.diag list) result
(** Validate and admit a submission.  [Error] carries every diagnostic
    (warnings included) when any has error severity; admission with
    warnings succeeds, as [mmsynth check] would.  [nonce] is the
    client's idempotency key, remembered (and persisted) so a retried
    submit can be answered with the existing job — the server checks
    {!find_by_nonce} before admitting. *)

val rehydrate : t -> entry list
(** Reload all job directories into the table and return the
    non-terminal entries in submission order, each with
    [entry.resume] populated from the newest {e decodable} generation
    of its [checkpoint.snap] chain ({!Mm_io.Snapshot.load_latest}).
    Corrupt checkpoint generations are quarantined as [*.corrupt] and
    resume falls back to the next older one.  A directory whose
    [job.sexp] no longer loads has it quarantined as
    [job.sexp.corrupt] (and is skipped quietly on later startups)
    instead of poisoning the whole recovery. *)

val find : t -> string -> entry option

val find_by_nonce : t -> string -> entry option
(** The job admitted under this submission nonce, if any — the
    server's idempotent-submit lookup.  Survives daemon restarts (the
    nonce is persisted in [job.sexp]). *)

val entries : t -> entry list
(** All known jobs, submission order. *)

(* Lifecycle mutators: each transitions the state machine (illegal moves
   raise [Invalid_argument] — they are daemon bugs, not wire input),
   persists [job.sexp] and appends an event. *)

val mark_running : t -> entry -> now:float -> unit
(** Queued/Checkpointed → Running; a no-op when already Running (a
    rehydrated job that died before its first checkpoint). *)

val record_progress :
  t -> entry -> Mm_cosynth.Synthesis.progress -> now:float -> unit
(** Update progress counters and append a [generation] event; stamps
    [first_generation_at] on the first call.  Does {e not} rewrite
    [job.sexp] — that happens at checkpoint boundaries. *)

val checkpointed : t -> entry -> now:float -> unit
(** Record that a snapshot was just persisted: Running → Checkpointed
    (idempotent once checkpointed) and [job.sexp] rewritten so the
    metadata agrees with the snapshot a crash would find. *)

val complete : t -> entry -> Mm_cosynth.Synthesis.result -> now:float -> unit
(** → Completed; writes [result.sexp] (genome and bit-exact
    power/fitness — the file the crash-recovery smoke test diffs). *)

val fail : t -> entry -> string -> now:float -> unit
val cancel : t -> entry -> now:float -> unit

val checkpoint_path : t -> entry -> string
val events_path : t -> entry -> string

val read_events : t -> entry -> string list
(** The event lines appended so far (the [watch] replay prefix). *)
