module Sexp = Mm_io.Sexp

type state = Queued | Running | Checkpointed | Completed | Failed | Cancelled

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Checkpointed -> "checkpointed"
  | Completed -> "completed"
  | Failed -> "failed"
  | Cancelled -> "cancelled"

let state_of_string = function
  | "queued" -> Some Queued
  | "running" -> Some Running
  | "checkpointed" -> Some Checkpointed
  | "completed" -> Some Completed
  | "failed" -> Some Failed
  | "cancelled" -> Some Cancelled
  | _ -> None

let terminal = function
  | Completed | Failed | Cancelled -> true
  | Queued | Running | Checkpointed -> false

(* The lifecycle edge relation.  [Running <-> Checkpointed] cycles while
   the scheduler snapshots an in-flight run; everything non-terminal can
   be cancelled; only an active run can complete or fail. *)
let legal ~from ~to_ =
  match (from, to_) with
  | Queued, (Running | Cancelled) -> true
  | Running, (Checkpointed | Completed | Failed | Cancelled) -> true
  | Checkpointed, (Running | Completed | Failed | Cancelled) -> true
  | (Queued | Running | Checkpointed | Completed | Failed | Cancelled), _ -> false

type options = {
  seed : int;
  generations : int;
  population : int;
  restarts : int;
  dvs : bool;
  uniform : bool;
  islands : int;
  migration_interval : int;
  migration_count : int;
}

let default_options =
  {
    seed = 1;
    generations = Mm_ga.Engine.default_config.Mm_ga.Engine.max_generations;
    population = Mm_ga.Engine.default_config.Mm_ga.Engine.population_size;
    restarts = 2;
    dvs = false;
    uniform = false;
    islands = 1;
    migration_interval = Mm_ga.Islands.default_topology.Mm_ga.Islands.migration_interval;
    migration_count = Mm_ga.Islands.default_topology.Mm_ga.Islands.migration_count;
  }

type outcome = {
  power : float;
  fitness : float;
  generations : int;
  evaluations : int;
  genome : int array;
}

type t = {
  id : string;
  seq : int;
  options : options;
  spec_fingerprint : string;
  nonce : string option;
  mutable state : state;
  mutable restart : int;
  mutable generation : int;
  mutable best_fitness : float option;
  mutable outcome : outcome option;
  mutable error : string option;
  mutable submitted_at : float;
  mutable started_at : float option;
  mutable first_generation_at : float option;
  mutable finished_at : float option;
}

let create ?nonce ~seq ~options ~spec_fingerprint ~now () =
  {
    id = Printf.sprintf "job-%04d" seq;
    seq;
    options;
    spec_fingerprint;
    nonce;
    state = Queued;
    restart = 0;
    generation = 0;
    best_fitness = None;
    outcome = None;
    error = None;
    submitted_at = now;
    started_at = None;
    first_generation_at = None;
    finished_at = None;
  }

let transition t to_ =
  if legal ~from:t.state ~to_ then begin
    t.state <- to_;
    Ok ()
  end
  else
    Error
      (Printf.sprintf "%s: illegal transition %s -> %s" t.id
         (state_to_string t.state) (state_to_string to_))

(* --- metadata codec ---------------------------------------------------

   The same conventions as Mm_io.Snapshot: floats through [Sexp.float]
   (bit-exact round trips), optional fields simply absent, and a total
   decoder that maps every shape mismatch to [Error]. *)

let float_opt_fields name = function
  | None -> []
  | Some v -> [ Sexp.field name [ Sexp.float v ] ]

let options_to_fields o =
  [
    Sexp.field "seed" [ Sexp.int o.seed ];
    Sexp.field "generations" [ Sexp.int o.generations ];
    Sexp.field "population" [ Sexp.int o.population ];
    Sexp.field "restarts" [ Sexp.int o.restarts ];
    Sexp.field "dvs" [ Sexp.atom (string_of_bool o.dvs) ];
    Sexp.field "uniform" [ Sexp.atom (string_of_bool o.uniform) ];
  ]
  (* Island fields are only written when active, so single-engine job
     files keep their pre-island shape (and older daemons' files decode
     unchanged via the defaults below). *)
  @ (if o.islands > 1 then
       [
         Sexp.field "islands" [ Sexp.int o.islands ];
         Sexp.field "migration-interval" [ Sexp.int o.migration_interval ];
         Sexp.field "migration-count" [ Sexp.int o.migration_count ];
       ]
     else [])

let to_sexp t =
  Sexp.List
    ([
       Sexp.atom "mmsynthd-job";
       Sexp.field "id" [ Sexp.atom t.id ];
       Sexp.field "seq" [ Sexp.int t.seq ];
       Sexp.field "state" [ Sexp.atom (state_to_string t.state) ];
       Sexp.field "spec" [ Sexp.atom t.spec_fingerprint ];
       Sexp.field "options" (options_to_fields t.options);
     ]
    @ (match t.nonce with
      | None -> []
      | Some n -> [ Sexp.field "nonce" [ Sexp.atom n ] ])
    @ [
       Sexp.field "restart" [ Sexp.int t.restart ];
       Sexp.field "generation" [ Sexp.int t.generation ];
       Sexp.field "submitted-at" [ Sexp.float t.submitted_at ];
     ]
    @ float_opt_fields "best-fitness" t.best_fitness
    @ float_opt_fields "started-at" t.started_at
    @ float_opt_fields "first-generation-at" t.first_generation_at
    @ float_opt_fields "finished-at" t.finished_at
    @ (match t.error with
      | None -> []
      | Some message -> [ Sexp.field "error" [ Sexp.atom message ] ])
    @
    match t.outcome with
    | None -> []
    | Some r ->
      [
        Sexp.field "outcome"
          [
            Sexp.field "power" [ Sexp.float r.power ];
            Sexp.field "fitness" [ Sexp.float r.fitness ];
            Sexp.field "generations" [ Sexp.int r.generations ];
            Sexp.field "evaluations" [ Sexp.int r.evaluations ];
            Sexp.field "genome" (List.map Sexp.int (Array.to_list r.genome));
          ];
      ])

let one name fields =
  match Sexp.assoc name fields with
  | [ v ] -> v
  | _ -> failwith (name ^ ": expected exactly one value")

let as_bool s =
  match bool_of_string_opt (Sexp.as_atom s) with
  | Some b -> b
  | None -> failwith "expected true or false"

let options_of_fields o =
  {
    seed = Sexp.as_int (one "seed" o);
    generations = Sexp.as_int (one "generations" o);
    population = Sexp.as_int (one "population" o);
    restarts = Sexp.as_int (one "restarts" o);
    dvs = as_bool (one "dvs" o);
    uniform = as_bool (one "uniform" o);
    islands =
      (match Sexp.assoc_opt "islands" o with
      | Some [ v ] -> Sexp.as_int v
      | Some _ -> failwith "islands: expected exactly one value"
      | None -> default_options.islands);
    migration_interval =
      (match Sexp.assoc_opt "migration-interval" o with
      | Some [ v ] -> Sexp.as_int v
      | Some _ -> failwith "migration-interval: expected exactly one value"
      | None -> default_options.migration_interval);
    migration_count =
      (match Sexp.assoc_opt "migration-count" o with
      | Some [ v ] -> Sexp.as_int v
      | Some _ -> failwith "migration-count: expected exactly one value"
      | None -> default_options.migration_count);
  }

let of_sexp sexp =
  try
    let fields =
      match sexp with
      | Sexp.List (Sexp.Atom "mmsynthd-job" :: fields) -> fields
      | _ -> failwith "not an mmsynthd-job"
    in
    let opt name f =
      match Sexp.assoc_opt name fields with
      | None -> None
      | Some [ v ] -> Some (f v)
      | Some _ -> failwith (name ^ ": expected exactly one value")
    in
    let options = options_of_fields (Sexp.assoc "options" fields) in
    let state =
      match state_of_string (Sexp.as_atom (one "state" fields)) with
      | Some s -> s
      | None -> failwith "unknown job state"
    in
    let outcome =
      match Sexp.assoc_opt "outcome" fields with
      | None -> None
      | Some r ->
        Some
          {
            power = Sexp.as_float (one "power" r);
            fitness = Sexp.as_float (one "fitness" r);
            generations = Sexp.as_int (one "generations" r);
            evaluations = Sexp.as_int (one "evaluations" r);
            genome =
              Array.of_list (List.map Sexp.as_int (Sexp.assoc "genome" r));
          }
    in
    Ok
      {
        id = Sexp.as_atom (one "id" fields);
        seq = Sexp.as_int (one "seq" fields);
        options;
        spec_fingerprint = Sexp.as_atom (one "spec" fields);
        nonce = opt "nonce" Sexp.as_atom;
        state;
        restart = Sexp.as_int (one "restart" fields);
        generation = Sexp.as_int (one "generation" fields);
        best_fitness = opt "best-fitness" Sexp.as_float;
        outcome;
        error = opt "error" Sexp.as_atom;
        submitted_at = Sexp.as_float (one "submitted-at" fields);
        started_at = opt "started-at" Sexp.as_float;
        first_generation_at = opt "first-generation-at" Sexp.as_float;
        finished_at = opt "finished-at" Sexp.as_float;
      }
  with
  | Failure message -> Error message
  | Sexp.Type_error { message; _ } -> Error message
