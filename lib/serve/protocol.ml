module Sexp = Mm_io.Sexp

let version = 1

type job_view = {
  v_id : string;
  v_seq : int;
  v_state : Job.state;
  v_spec_fingerprint : string;
  v_restart : int;
  v_generation : int;
  v_best_fitness : float option;
  v_power : float option;
  v_error : string option;
  v_submitted_at : float;
  v_started_at : float option;
  v_first_generation_at : float option;
  v_finished_at : float option;
}

let view (job : Job.t) =
  {
    v_id = job.id;
    v_seq = job.seq;
    v_state = job.state;
    v_spec_fingerprint = job.spec_fingerprint;
    v_restart = job.restart;
    v_generation = job.generation;
    v_best_fitness = job.best_fitness;
    v_power = Option.map (fun (o : Job.outcome) -> o.power) job.outcome;
    v_error = job.error;
    v_submitted_at = job.submitted_at;
    v_started_at = job.started_at;
    v_first_generation_at = job.first_generation_at;
    v_finished_at = job.finished_at;
  }

type request =
  | Submit of {
      spec_text : string;
      options : Job.options;
      nonce : string option;
    }
  | Status of string
  | Cancel of string
  | List_jobs
  | Watch of string
  | Ping
  | Shutdown

type diag = {
  d_code : string;
  d_severity : string;
  d_path : string;
  d_message : string;
  d_pos : (int * int) option;
}

let diag_of_validate (d : Mm_cosynth.Validate.diag) =
  {
    d_code = d.code;
    d_severity =
      (match d.severity with
      | Mm_cosynth.Validate.Error -> "error"
      | Mm_cosynth.Validate.Warning -> "warning");
    d_path = d.path;
    d_message = d.message;
    d_pos = d.pos;
  }

let diag_to_string d =
  let pos =
    match d.d_pos with
    | None -> ""
    | Some (line, column) -> Printf.sprintf "%d:%d: " line column
  in
  Printf.sprintf "%s%s %s: %s (%s)" pos d.d_code d.d_path d.d_message
    d.d_severity

type response =
  | Accepted of job_view
  | Rejected of diag list
  | Busy of { active : int; limit : int }
  | Unauthorized
  | Job_info of job_view
  | Jobs of job_view list
  | Event of string
  | Done
  | Pong
  | Error_response of { code : string; message : string }

(* --- sexp bodies ------------------------------------------------------- *)

let float_opt_fields name = function
  | None -> []
  | Some v -> [ Sexp.field name [ Sexp.float v ] ]

let view_to_sexp v =
  Sexp.List
    ([
       Sexp.atom "job";
       Sexp.field "id" [ Sexp.atom v.v_id ];
       Sexp.field "seq" [ Sexp.int v.v_seq ];
       Sexp.field "state" [ Sexp.atom (Job.state_to_string v.v_state) ];
       Sexp.field "spec" [ Sexp.atom v.v_spec_fingerprint ];
       Sexp.field "restart" [ Sexp.int v.v_restart ];
       Sexp.field "generation" [ Sexp.int v.v_generation ];
       Sexp.field "submitted-at" [ Sexp.float v.v_submitted_at ];
     ]
    @ float_opt_fields "best-fitness" v.v_best_fitness
    @ float_opt_fields "power" v.v_power
    @ (match v.v_error with
      | None -> []
      | Some e -> [ Sexp.field "error" [ Sexp.atom e ] ])
    @ float_opt_fields "started-at" v.v_started_at
    @ float_opt_fields "first-generation-at" v.v_first_generation_at
    @ float_opt_fields "finished-at" v.v_finished_at)

let one name fields =
  match Sexp.assoc name fields with
  | [ v ] -> v
  | _ -> failwith (name ^ ": expected exactly one value")

let opt_one name fields f =
  match Sexp.assoc_opt name fields with
  | None -> None
  | Some [ v ] -> Some (f v)
  | Some _ -> failwith (name ^ ": expected exactly one value")

let view_of_sexp sexp =
  let fields =
    match sexp with
    | Sexp.List (Sexp.Atom "job" :: fields) -> fields
    | _ -> failwith "expected a (job ...) view"
  in
  let state_atom = Sexp.as_atom (one "state" fields) in
  let v_state =
    match Job.state_of_string state_atom with
    | Some s -> s
    | None -> failwith ("unknown job state " ^ state_atom)
  in
  {
    v_id = Sexp.as_atom (one "id" fields);
    v_seq = Sexp.as_int (one "seq" fields);
    v_state;
    v_spec_fingerprint = Sexp.as_atom (one "spec" fields);
    v_restart = Sexp.as_int (one "restart" fields);
    v_generation = Sexp.as_int (one "generation" fields);
    v_best_fitness = opt_one "best-fitness" fields Sexp.as_float;
    v_power = opt_one "power" fields Sexp.as_float;
    v_error = opt_one "error" fields Sexp.as_atom;
    v_submitted_at = Sexp.as_float (one "submitted-at" fields);
    v_started_at = opt_one "started-at" fields Sexp.as_float;
    v_first_generation_at = opt_one "first-generation-at" fields Sexp.as_float;
    v_finished_at = opt_one "finished-at" fields Sexp.as_float;
  }

let diag_to_sexp d =
  Sexp.List
    ([
       Sexp.atom "diag";
       Sexp.field "code" [ Sexp.atom d.d_code ];
       Sexp.field "severity" [ Sexp.atom d.d_severity ];
       Sexp.field "path" [ Sexp.atom d.d_path ];
       Sexp.field "message" [ Sexp.atom d.d_message ];
     ]
    @
    match d.d_pos with
    | None -> []
    | Some (line, column) ->
      [ Sexp.field "pos" [ Sexp.int line; Sexp.int column ] ])

let diag_of_sexp sexp =
  let fields =
    match sexp with
    | Sexp.List (Sexp.Atom "diag" :: fields) -> fields
    | _ -> failwith "expected a (diag ...)"
  in
  {
    d_code = Sexp.as_atom (one "code" fields);
    d_severity = Sexp.as_atom (one "severity" fields);
    d_path = Sexp.as_atom (one "path" fields);
    d_message = Sexp.as_atom (one "message" fields);
    d_pos =
      (match Sexp.assoc_opt "pos" fields with
      | None -> None
      | Some [ line; column ] -> Some (Sexp.as_int line, Sexp.as_int column)
      | Some _ -> failwith "pos: expected line and column");
  }

let request_to_sexp = function
  | Submit { spec_text; options; nonce } ->
    Sexp.field "submit"
      ([
         Sexp.field "options" (Job.options_to_fields options);
         Sexp.field "spec" [ Sexp.atom spec_text ];
       ]
      @
      match nonce with
      | None -> []
      | Some n -> [ Sexp.field "nonce" [ Sexp.atom n ] ])
  | Status id -> Sexp.field "status" [ Sexp.atom id ]
  | Cancel id -> Sexp.field "cancel" [ Sexp.atom id ]
  | List_jobs -> Sexp.List [ Sexp.atom "list" ]
  | Watch id -> Sexp.field "watch" [ Sexp.atom id ]
  | Ping -> Sexp.List [ Sexp.atom "ping" ]
  | Shutdown -> Sexp.List [ Sexp.atom "shutdown" ]

let request_of_sexp = function
  | Sexp.List (Sexp.Atom "submit" :: fields) ->
    let spec_text =
      match one "spec" fields with
      | Sexp.Atom text -> text
      | _ -> failwith "submit: expected (spec \"...\")"
    in
    Submit
      {
        spec_text;
        options = Job.options_of_fields (Sexp.assoc "options" fields);
        nonce = opt_one "nonce" fields Sexp.as_atom;
      }
  | Sexp.List [ Sexp.Atom "status"; Sexp.Atom id ] -> Status id
  | Sexp.List [ Sexp.Atom "cancel"; Sexp.Atom id ] -> Cancel id
  | Sexp.List [ Sexp.Atom "list" ] -> List_jobs
  | Sexp.List [ Sexp.Atom "watch"; Sexp.Atom id ] -> Watch id
  | Sexp.List [ Sexp.Atom "ping" ] -> Ping
  | Sexp.List [ Sexp.Atom "shutdown" ] -> Shutdown
  | _ -> failwith "unknown request"

let response_to_sexp = function
  | Accepted v -> Sexp.field "accepted" [ view_to_sexp v ]
  | Rejected diags -> Sexp.field "rejected" (List.map diag_to_sexp diags)
  | Busy { active; limit } ->
    Sexp.field "busy"
      [
        Sexp.field "active" [ Sexp.int active ];
        Sexp.field "limit" [ Sexp.int limit ];
      ]
  | Unauthorized -> Sexp.List [ Sexp.atom "unauthorized" ]
  | Job_info v -> Sexp.field "job-info" [ view_to_sexp v ]
  | Jobs views -> Sexp.field "jobs" (List.map view_to_sexp views)
  | Event line -> Sexp.field "event" [ Sexp.atom line ]
  | Done -> Sexp.List [ Sexp.atom "done" ]
  | Pong -> Sexp.List [ Sexp.atom "pong" ]
  | Error_response { code; message } ->
    Sexp.field "error"
      [
        Sexp.field "code" [ Sexp.atom code ];
        Sexp.field "message" [ Sexp.atom message ];
      ]

let response_of_sexp = function
  | Sexp.List [ Sexp.Atom "accepted"; v ] -> Accepted (view_of_sexp v)
  | Sexp.List (Sexp.Atom "rejected" :: diags) ->
    Rejected (List.map diag_of_sexp diags)
  | Sexp.List (Sexp.Atom "busy" :: fields) ->
    Busy
      {
        active = Sexp.as_int (one "active" fields);
        limit = Sexp.as_int (one "limit" fields);
      }
  | Sexp.List [ Sexp.Atom "unauthorized" ] -> Unauthorized
  | Sexp.List [ Sexp.Atom "job-info"; v ] -> Job_info (view_of_sexp v)
  | Sexp.List (Sexp.Atom "jobs" :: views) -> Jobs (List.map view_of_sexp views)
  | Sexp.List [ Sexp.Atom "event"; Sexp.Atom line ] -> Event line
  | Sexp.List [ Sexp.Atom "done" ] -> Done
  | Sexp.List [ Sexp.Atom "pong" ] -> Pong
  | Sexp.List (Sexp.Atom "error" :: fields) ->
    Error_response
      {
        code = Sexp.as_atom (one "code" fields);
        message = Sexp.as_atom (one "message" fields);
      }
  | _ -> failwith "unknown response"

(* --- envelope ---------------------------------------------------------- *)

let envelope ?auth kind body =
  Sexp.to_string
    (Sexp.List
       ([
          Sexp.atom "mmsynth-rpc";
          Sexp.field "version" [ Sexp.int version ];
        ]
       @ (match auth with
         | None -> []
         | Some token -> [ Sexp.field "auth" [ Sexp.atom token ] ])
       @ [ Sexp.field kind [ body ] ]))

(* Field-based so an envelope may or may not carry an [auth] field;
   pre-auth peers' frames (version + body only) parse unchanged. *)
let open_envelope kind payload =
  match Sexp.parse_one payload with
  | Sexp.List (Sexp.Atom "mmsynth-rpc" :: fields) ->
    let v = Sexp.as_atom (one "version" fields) in
    if v <> string_of_int version then
      failwith (Printf.sprintf "unsupported protocol version %s" v);
    let auth = opt_one "auth" fields Sexp.as_atom in
    let body =
      match Sexp.assoc_opt kind fields with
      | Some [ body ] -> body
      | Some _ | None -> failwith (Printf.sprintf "expected a %s envelope" kind)
    in
    (body, auth)
  | _ -> failwith "not an mmsynth-rpc envelope"

let total decode payload =
  match decode payload with
  | value -> Ok value
  | exception Failure message -> Error message
  | exception Sexp.Parse_error { line; column; message } ->
    Error (Printf.sprintf "%d:%d: %s" line column message)
  | exception Sexp.Type_error { message; _ } -> Error message

let request_to_string ?auth r = envelope ?auth "request" (request_to_sexp r)

let request_of_string_auth payload =
  total
    (fun p ->
      let body, auth = open_envelope "request" p in
      (request_of_sexp body, auth))
    payload

let request_of_string payload =
  Result.map fst (request_of_string_auth payload)

let response_to_string r = envelope "response" (response_to_sexp r)

let response_of_string payload =
  total (fun p -> response_of_sexp (fst (open_envelope "response" p))) payload

(* Constant-time token equality: the accumulated XOR admits no
   early-exit on the first differing byte.  The length check itself
   may exit early — leaking the token's length is acceptable, its
   bytes are not. *)
let token_equal a b =
  String.length a = String.length b
  &&
  let acc = ref 0 in
  String.iteri (fun i c -> acc := !acc lor (Char.code c lxor Char.code b.[i])) a;
  !acc = 0

(* --- framing ----------------------------------------------------------- *)

module Framing = struct
  type error =
    | Oversized of { length : int; limit : int }
    | Malformed of string

  let error_to_string = function
    | Oversized { length; limit } ->
      Printf.sprintf "frame of %d bytes exceeds the %d byte limit" length
        limit
    | Malformed message -> "malformed frame: " ^ message

  let default_max_frame = 16 * 1024 * 1024

  type decoder = {
    max_frame : int;
    buf : Buffer.t;
    mutable pos : int;  (** Bytes of [buf] already consumed. *)
    mutable broken : error option;
  }

  let create ?(max_frame = default_max_frame) () =
    { max_frame; buf = Buffer.create 4096; pos = 0; broken = None }

  let feed t chunk = Buffer.add_string t.buf chunk

  let pending t = Buffer.length t.buf - t.pos

  let compact t =
    if t.pos > 0 && t.pos = Buffer.length t.buf then begin
      Buffer.clear t.buf;
      t.pos <- 0
    end
    else if t.pos > 64 * 1024 then begin
      let rest = Buffer.sub t.buf t.pos (pending t) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  let next t =
    match t.broken with
    | Some err -> Error err
    | None ->
      if pending t < 4 then Ok None
      else begin
        let byte i = Char.code (Buffer.nth t.buf (t.pos + i)) in
        let length =
          (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3
        in
        if length > t.max_frame then begin
          let err = Oversized { length; limit = t.max_frame } in
          t.broken <- Some err;
          Error err
        end
        else if pending t < 4 + length then Ok None
        else begin
          let payload = Buffer.sub t.buf (t.pos + 4) length in
          t.pos <- t.pos + 4 + length;
          compact t;
          Ok (Some payload)
        end
      end

  let encode payload =
    let n = String.length payload in
    let out = Bytes.create (4 + n) in
    Bytes.set out 0 (Char.chr ((n lsr 24) land 0xff));
    Bytes.set out 1 (Char.chr ((n lsr 16) land 0xff));
    Bytes.set out 2 (Char.chr ((n lsr 8) land 0xff));
    Bytes.set out 3 (Char.chr (n land 0xff));
    Bytes.blit_string payload 0 out 4 n;
    Bytes.to_string out
end

(* --- blocking fd helpers (client side, tests) -------------------------- *)

let rec write_all fd bytes off len =
  if len > 0 then begin
    let n =
      try Unix.write fd bytes off len with
      | Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd bytes (off + n) (len - n)
  end

let write_message fd payload =
  let frame = Bytes.of_string (Framing.encode payload) in
  write_all fd frame 0 (Bytes.length frame)

let read_message fd decoder =
  let chunk = Bytes.create 65536 in
  let rec loop () =
    match Framing.next decoder with
    | Error _ as e -> e
    | Ok (Some payload) -> Ok (Some payload)
    | Ok None -> (
      let n =
        try Unix.read fd chunk 0 (Bytes.length chunk) with
        | Unix.Unix_error (Unix.EINTR, _, _) -> -1
      in
      match n with
      | 0 ->
        if Buffer.length decoder.Framing.buf - decoder.Framing.pos > 0 then
          Error (Framing.Malformed "end of stream inside a frame")
        else Ok None
      | n when n > 0 ->
        Framing.feed decoder (Bytes.sub_string chunk 0 n);
        loop ()
      | _ -> loop ())
  in
  loop ()
