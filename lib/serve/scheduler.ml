exception Cancelled

type _ Effect.t += Yield : unit Effect.t

type resume =
  | Start of (yield:(unit -> unit) -> unit)
  | Suspended of (unit, unit) Effect.Deep.continuation
  | Finished

type handle = { mutable resume : resume; mutable cancel_requested : bool }
type t = { queue : handle Queue.t }

let create () = { queue = Queue.create () }

let spawn t body =
  let handle = { resume = Start body; cancel_requested = false } in
  Queue.push handle t.queue;
  handle

let request_cancel handle =
  match handle.resume with
  | Finished -> ()
  | Start _ | Suspended _ -> handle.cancel_requested <- true

let finished handle =
  match handle.resume with Finished -> true | Start _ | Suspended _ -> false

let yield () = Effect.perform Yield

(* The deep handler stays attached to the continuation, so it is
   installed once per body (at its first slice): every later [continue]
   returns through the same [retc]/[exnc]/[effc]. *)
let start t handle body =
  let open Effect.Deep in
  match_with (fun () -> body ~yield) ()
    {
      retc = (fun () -> handle.resume <- Finished);
      exnc = (fun _exn -> handle.resume <- Finished)
      (* bodies own their error reporting; nothing may escape [step] *);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
            Some
              (fun (k : (a, unit) continuation) ->
                handle.resume <- Suspended k;
                Queue.push handle t.queue)
          | _ -> None);
    }

let step t =
  match Queue.take_opt t.queue with
  | None -> false
  | Some handle ->
    (match handle.resume with
    | Finished -> () (* cancelled or finished while still enqueued *)
    | Start body ->
      if handle.cancel_requested then handle.resume <- Finished
      else start t handle body
    | Suspended k ->
      if handle.cancel_requested then Effect.Deep.discontinue k Cancelled
      else Effect.Deep.continue k ());
    true

let busy t = not (Queue.is_empty t.queue)
let pending t = Queue.length t.queue
