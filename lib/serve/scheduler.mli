(** Fair round-robin multiplexing of synthesis jobs on one domain.

    Each job body runs as an OCaml-effects coroutine: it receives a
    [yield] thunk and calls it once per GA generation (the hook
    {!Mm_cosynth.Synthesis.run} exposes), which suspends the body and
    puts it at the back of the run queue.  {!step} resumes the job at
    the front for exactly one slice, so N in-flight jobs each advance
    one generation per N steps — fair regardless of spec size.

    Cancellation is cooperative: {!request_cancel} marks the handle and
    the next resume raises {!Cancelled} inside the body (at the yield
    point), unwinding through the synthesis engine's cleanup.  Bodies
    are expected to catch it and record their own terminal state.

    Single-domain, like {!Mm_parallel.Pool}: spawn and step only from
    the domain that created the scheduler. *)

type t

exception Cancelled
(** Raised inside a job body at its next suspension point after
    {!request_cancel}. *)

type handle

val create : unit -> t

val spawn : t -> (yield:(unit -> unit) -> unit) -> handle
(** Enqueue a new job body.  The body must not let exceptions escape
    (they are reported to {!spawn}'s caller via {!step} as a normal
    return — the body is simply dropped) and must call [yield] only
    from within its own extent. *)

val request_cancel : handle -> unit
(** Idempotent; a no-op once the body has finished. *)

val finished : handle -> bool

val step : t -> bool
(** Run one slice of the front job: [true] when a slice ran, [false]
    when the queue is empty.  An exception escaping a body terminates
    that body (the exception is swallowed — bodies own their error
    reporting) and still counts as a slice. *)

val busy : t -> bool
(** Jobs queued or suspended remain. *)

val pending : t -> int
