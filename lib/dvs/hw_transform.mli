(** The paper's Fig. 5 transformation: serialising the parallel core
    schedule of one hardware component into an equivalent sequence of
    segments.

    All cores on one hardware component are fed by a single supply rail,
    so the rail voltage affects every core simultaneously.  Cutting the
    component's timeline at every task start/finish yields segments during
    which the set of running tasks — and hence the component's total
    dynamic power — is constant.  These segments behave like sequentially
    executing software tasks and can be voltage-scaled with the same
    algorithm.  The transformation is virtual: it only determines the
    voltage schedule, not the real (parallel) implementation. *)

type segment = {
  index : int;  (** Position in the component's segment chain. *)
  start : float;  (** Segment start in the input schedule. *)
  duration : float;  (** Positive. *)
  power : float;  (** Sum of nominal dynamic powers of the running tasks. *)
  running : int list;  (** Task ids executing during the segment. *)
  finishing : int list;  (** Tasks whose execution ends with this segment. *)
  starting : int list;  (** Tasks whose execution begins with this segment. *)
}

val segments :
  slots:(Mm_sched.Schedule.task_slot * float) list -> segment list
(** [segments ~slots] serialises the given task slots (each paired with
    its nominal dynamic power).  Slots must all belong to one component
    and must have positive durations.  Idle gaps produce no segment.
    Event times closer than 1e-9 are merged. *)

val first_segment_of : segment list -> int -> int
(** Index of the first segment in which the task runs.  Raises
    [Not_found] when the task appears in no segment. *)

val last_segment_of : segment list -> int -> int

val total_energy_nominal : segment list -> float
(** Σ power·duration — equals the summed nominal task energies. *)
