module Schedule = Mm_sched.Schedule

type segment = {
  index : int;
  start : float;
  duration : float;
  power : float;
  running : int list;
  finishing : int list;
  starting : int list;
}

let eps = 1e-9

(* Distinct event times (task starts and finishes), merged within eps so
   that floating-point near-coincidences do not create sliver segments. *)
let event_times slots =
  let raw =
    List.concat_map
      (fun ((s : Schedule.task_slot), _power) -> [ s.start; Schedule.finish s ])
      slots
    |> List.sort compare
  in
  let rec dedupe acc = function
    | [] -> List.rev acc
    | t :: rest -> (
      match acc with
      | prev :: _ when t -. prev < eps -> dedupe acc rest
      | _ -> dedupe (t :: acc) rest)
  in
  dedupe [] raw

let segments ~slots =
  List.iter
    (fun ((s : Schedule.task_slot), _) ->
      if s.duration <= 0.0 then
        invalid_arg "Hw_transform.segments: non-positive slot duration")
    slots;
  let times = event_times slots in
  let rec build index acc = function
    | t1 :: (t2 :: _ as rest) ->
      let running =
        List.filter_map
          (fun ((s : Schedule.task_slot), _) ->
            if s.start <= t1 +. eps && Schedule.finish s >= t2 -. eps then Some s.task
            else None)
          slots
      in
      if running = [] then build index acc rest (* idle gap *)
      else
        let power =
          List.fold_left
            (fun acc ((s : Schedule.task_slot), p) ->
              if List.mem s.task running then acc +. p else acc)
            0.0 slots
        in
        let finishing =
          List.filter_map
            (fun ((s : Schedule.task_slot), _) ->
              if Float.abs (Schedule.finish s -. t2) < eps then Some s.task else None)
            slots
        in
        let starting =
          List.filter_map
            (fun ((s : Schedule.task_slot), _) ->
              if Float.abs (s.start -. t1) < eps then Some s.task else None)
            slots
        in
        let seg =
          { index; start = t1; duration = t2 -. t1; power; running; finishing; starting }
        in
        build (index + 1) (seg :: acc) rest
    | [ _ ] | [] -> List.rev acc
  in
  build 0 [] times

let first_segment_of segs task =
  match List.find_opt (fun seg -> List.mem task seg.running) segs with
  | Some seg -> seg.index
  | None -> raise Not_found

let last_segment_of segs task =
  match
    List.fold_left
      (fun acc seg -> if List.mem task seg.running then Some seg.index else acc)
      None segs
  with
  | Some index -> index
  | None -> raise Not_found

let total_energy_nominal segs =
  List.fold_left (fun acc seg -> acc +. (seg.power *. seg.duration)) 0.0 segs
