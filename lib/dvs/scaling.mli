(** Voltage scaling of a scheduled mode (extension of the PV-DVS scheme
    of [10] to multi-mode systems and to hardware components, paper §4.2).

    The fixed execution order produced by the list scheduler is kept; the
    algorithm only stretches activities into available slack by lowering
    discrete supply voltages.  Scalable units are:

    - task slots on DVS-enabled {e software} PEs, scaled individually;
    - Fig. 5 {e segments} of DVS-enabled {e hardware} PEs, because all
      cores of a component share one rail (see {!Hw_transform}).

    The greedy loop repeatedly lowers the voltage of the unit with the
    best energy-gain-per-added-delay ratio among all units whose added
    delay fits into their slack, recomputing slacks after every step.
    Slack is computed on the unit DAG (resource chains + data edges) by a
    backward pass from deadlines, so every accepted step keeps the whole
    mode schedule feasible. *)

type strategy =
  | Greedy_gradient
      (** The PV-DVS-style heuristic: repeatedly lower the voltage of the
          unit with the best energy-gain/added-delay ratio (default). *)
  | Even_slack
      (** The naive baseline PV-DVS was measured against: one uniform
          slowdown factor for every scalable unit, the largest that still
          meets all deadlines (found by bisection), then the slowest
          discrete level within that factor per unit.  Ignores power
          variation between tasks — the ablation bench quantifies what
          the gradient heuristic buys. *)

type config = {
  scale_software : bool;  (** Scale tasks on DVS software PEs. *)
  scale_hardware : bool;
      (** Apply the Fig. 5 transform and scale DVS hardware components;
          disabling this reproduces the software-only DVS of earlier work
          (used by the ablation bench). *)
  strategy : strategy;
}

val default_config : config
(** Both enabled, greedy gradient. *)

type hw_segment = {
  pe : int;
  segment : Hw_transform.segment;
  voltage : float;
  scaled_duration : float;
  energy : float;  (** power · duration · (v/vmax)² *)
}

type t = {
  feasible : bool;
      (** Whether the input schedule met all deadlines; when [false] no
          scaling is attempted and all voltages stay nominal. *)
  task_voltages : float array;
      (** Per task: assigned supply voltage; nominal voltage of the PE's
          rail when the task was not scaled (or the PE has no rail, in
          which case the value is [nan] and unused). *)
  task_energy : float array;
      (** Per task dynamic energy after scaling.  Tasks on DVS hardware
          PEs carry their power-proportional share of their segments'
          energy so the array totals correctly. *)
  hw_segments : hw_segment list;  (** Scaled segments of DVS hardware PEs. *)
  comm_energy : float;  (** Total communication energy (never scaled). *)
  total_dyn_energy : float;
      (** Σ task_energy + comm_energy: dynamic energy of one mode
          activation. *)
  stretched_finish : float array;
      (** Per-task finish times after scaling (equals segment-chain
          finishes for tasks on DVS hardware PEs). *)
}

type workspace
(** Reusable scratch buffers for {!run}: flat unit/CSR arrays and the
    gradient heap (DESIGN.md §13).  A workspace is not thread-safe; use
    one per domain ({!Mm_cosynth.Spec.compiled} holds one in
    domain-local storage).  Buffers grow on demand and are rebuilt on
    every call, so a workspace may be shared freely across modes,
    graphs and configs. *)

val create_workspace : unit -> workspace

val run :
  ?config:config ->
  ?workspace:workspace ->
  ?dispatch:Mm_arch.Tech_lib.dispatch ->
  graph:Mm_taskgraph.Graph.t ->
  arch:Mm_arch.Architecture.t ->
  tech:Mm_arch.Tech_lib.t ->
  schedule:Mm_sched.Schedule.t ->
  unit ->
  t
(** Flat fast path: bit-identical to {!run_reference} (property-tested in
    [test_dvs.ml]) but built on reusable flat arrays, cached per-unit
    durations/gradients and a binary max-heap over gradient ratios.
    [workspace] avoids per-call allocation; [dispatch] replaces the
    O(log n) [Tech_lib.find_exn] power lookups with O(1) table hits. *)

val nominal :
  ?workspace:workspace ->
  ?dispatch:Mm_arch.Tech_lib.dispatch ->
  graph:Mm_taskgraph.Graph.t ->
  arch:Mm_arch.Architecture.t ->
  tech:Mm_arch.Tech_lib.t ->
  schedule:Mm_sched.Schedule.t ->
  unit ->
  t
(** The no-DVS evaluation: every activity at nominal voltage.  Shares the
    energy-accounting code with {!run} so DVS and non-DVS experiments are
    directly comparable. *)

val run_reference :
  ?config:config ->
  graph:Mm_taskgraph.Graph.t ->
  arch:Mm_arch.Architecture.t ->
  tech:Mm_arch.Tech_lib.t ->
  schedule:Mm_sched.Schedule.t ->
  unit ->
  t
(** The seed implementation, kept verbatim as the bit-exactness oracle
    for {!run} (same pattern as [List_scheduler.run_reference]): unit
    DAG on lists, full O(units) scan per greedy step. *)

val nominal_reference :
  graph:Mm_taskgraph.Graph.t ->
  arch:Mm_arch.Architecture.t ->
  tech:Mm_arch.Tech_lib.t ->
  schedule:Mm_sched.Schedule.t ->
  unit ->
  t
(** {!nominal} via the reference pipeline. *)
