module Graph = Mm_taskgraph.Graph
module Task = Mm_taskgraph.Task
module Arch = Mm_arch.Architecture
module Pe = Mm_arch.Pe
module Voltage = Mm_arch.Voltage
module Tech_lib = Mm_arch.Tech_lib
module Schedule = Mm_sched.Schedule
module Resource = Mm_sched.Resource

type strategy = Greedy_gradient | Even_slack

type config = {
  scale_software : bool;
  scale_hardware : bool;
  strategy : strategy;
}

let default_config =
  { scale_software = true; scale_hardware = true; strategy = Greedy_gradient }

type hw_segment = {
  pe : int;
  segment : Hw_transform.segment;
  voltage : float;
  scaled_duration : float;
  energy : float;
}

type t = {
  feasible : bool;
  task_voltages : float array;
  task_energy : float array;
  hw_segments : hw_segment list;
  comm_energy : float;
  total_dyn_energy : float;
  stretched_finish : float array;
}

type unit_kind =
  | Task_unit of int
  | Segment_unit of { pe : int; seg : Hw_transform.segment }
  | Comm_unit of Schedule.comm_slot

type unit_state = {
  kind : unit_kind;
  nominal : float;
  power : float;
  rail : Voltage.t option;  (** [Some _] iff the unit may be scaled. *)
  deadline : float;
  mutable voltage : float;
  mutable start : float;
  mutable finish : float;
  mutable lft : float;
}

let duration u =
  match u.rail with
  | None -> u.nominal
  | Some rail -> Voltage.scaled_time rail ~tmin:u.nominal u.voltage

let deadline_of_task graph period task_id =
  match Task.deadline (Graph.task graph task_id) with
  | None -> period
  | Some d -> Float.min d period

(* The unit DAG: scalable/fixed activities with resource-order and
   data-dependency edges.  Built once per (schedule, config). *)
type dag = {
  units : unit_state array;
  preds : int list array;
  succs : int list array;
  topo : int array;
  (* Per task: the unit carrying it, or its first/last segment units when
     the task lives on a scaled hardware component. *)
  task_site : [ `Unit of int | `Segments of int * int ] array;
}

let topological_sort n preds succs =
  let indegree = Array.init n (fun i -> List.length preds.(i)) in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indegree.(i) = 0 then Queue.add i queue
  done;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order.(!k) <- i;
    incr k;
    List.iter
      (fun j ->
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  assert (!k = n) (* the schedule's time order rules out cycles *);
  order

let build_dag ~config ~graph ~arch ~tech ~(schedule : Schedule.t) =
  let n_tasks = Graph.n_tasks graph in
  let period = schedule.Schedule.period in
  let units = ref [] in
  let n_units = ref 0 in
  let fresh u =
    let id = !n_units in
    incr n_units;
    units := u :: !units;
    id
  in
  let power_of task_id =
    let task = Graph.task graph task_id in
    let pe = Arch.pe arch (Schedule.pe_of_slot schedule.Schedule.task_slots.(task_id)) in
    (Tech_lib.find_exn tech ~ty:(Task.ty task) ~pe).Tech_lib.dyn_power
  in
  let task_site = Array.make n_tasks (`Unit (-1)) in
  (* Hardware components whose cores are scaled through segments. *)
  let scaled_hw_pe pe =
    config.scale_hardware && Pe.is_hardware pe && Pe.is_dvs_enabled pe
  in
  (* Task units for everything not living on a scaled hardware component. *)
  Array.iter
    (fun (slot : Schedule.task_slot) ->
      let pe = Arch.pe arch (Schedule.pe_of_slot slot) in
      if not (scaled_hw_pe pe) then begin
        let rail =
          if config.scale_software && Pe.is_software pe then Pe.rail pe else None
        in
        let vstart = match rail with Some r -> Voltage.vmax r | None -> nan in
        let id =
          fresh
            {
              kind = Task_unit slot.Schedule.task;
              nominal = slot.Schedule.duration;
              power = power_of slot.Schedule.task;
              rail;
              deadline = deadline_of_task graph period slot.Schedule.task;
              voltage = vstart;
              start = 0.0;
              finish = 0.0;
              lft = infinity;
            }
        in
        task_site.(slot.Schedule.task) <- `Unit id
      end)
    schedule.Schedule.task_slots;
  (* Segment units for scaled hardware components. *)
  let segment_chains = ref [] in
  List.iter
    (fun pe ->
      if scaled_hw_pe pe then begin
        let slots =
          Array.to_list schedule.Schedule.task_slots
          |> List.filter (fun (s : Schedule.task_slot) ->
                 Schedule.pe_of_slot s = Pe.id pe)
        in
        if slots <> [] then begin
          let rail =
            match Pe.rail pe with Some r -> r | None -> assert false
          in
          let segs =
            Hw_transform.segments
              ~slots:(List.map (fun s -> (s, power_of s.Schedule.task)) slots)
          in
          let seg_deadline seg =
            List.fold_left
              (fun acc task_id -> Float.min acc (deadline_of_task graph period task_id))
              infinity seg.Hw_transform.finishing
          in
          let ids =
            List.map
              (fun seg ->
                fresh
                  {
                    kind = Segment_unit { pe = Pe.id pe; seg };
                    nominal = seg.Hw_transform.duration;
                    power = seg.Hw_transform.power;
                    rail = Some rail;
                    deadline = seg_deadline seg;
                    voltage = Voltage.vmax rail;
                    start = 0.0;
                    finish = 0.0;
                    lft = infinity;
                  })
              segs
          in
          let id_of_index = Array.of_list ids in
          segment_chains := ids :: !segment_chains;
          List.iter
            (fun (s : Schedule.task_slot) ->
              let first = Hw_transform.first_segment_of segs s.Schedule.task in
              let last = Hw_transform.last_segment_of segs s.Schedule.task in
              task_site.(s.Schedule.task) <-
                `Segments (id_of_index.(first), id_of_index.(last)))
            slots
        end
      end)
    (Arch.pes arch);
  (* Communication units. *)
  let comm_unit = Hashtbl.create 16 in
  List.iter
    (fun (c : Schedule.comm_slot) ->
      let id =
        fresh
          {
            kind = Comm_unit c;
            nominal = c.Schedule.duration;
            power = 0.0;
            rail = None;
            deadline = period;
            voltage = nan;
            start = 0.0;
            finish = 0.0;
            lft = infinity;
          }
      in
      Hashtbl.replace comm_unit (c.Schedule.edge.Graph.src, c.Schedule.edge.Graph.dst) id)
    schedule.Schedule.comm_slots;
  let units = Array.of_list (List.rev !units) in
  let n = Array.length units in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  let add_edge a b =
    if a <> b then begin
      succs.(a) <- b :: succs.(a);
      preds.(b) <- a :: preds.(b)
    end
  in
  (* Resource chains: task units grouped by resource in start order. *)
  let by_resource = Hashtbl.create 16 in
  Array.iteri
    (fun id u ->
      match u.kind with
      | Task_unit task_id ->
        let slot = schedule.Schedule.task_slots.(task_id) in
        let key = slot.Schedule.resource in
        let existing = Option.value ~default:[] (Hashtbl.find_opt by_resource key) in
        Hashtbl.replace by_resource key ((slot.Schedule.start, id) :: existing)
      | Segment_unit _ | Comm_unit _ -> ())
    units;
  Hashtbl.iter
    (fun _ entries ->
      let sorted = List.sort compare entries in
      ignore
        (List.fold_left
           (fun prev (_, id) ->
             (match prev with Some p -> add_edge p id | None -> ());
             Some id)
           None sorted))
    by_resource;
  (* Segment chains. *)
  List.iter
    (fun ids ->
      ignore
        (List.fold_left
           (fun prev id ->
             (match prev with Some p -> add_edge p id | None -> ());
             Some id)
           None ids))
    !segment_chains;
  (* Link chains. *)
  let by_cl = Hashtbl.create 8 in
  Array.iteri
    (fun id u ->
      match u.kind with
      | Comm_unit c ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt by_cl c.Schedule.cl) in
        Hashtbl.replace by_cl c.Schedule.cl ((c.Schedule.start, id) :: existing)
      | Task_unit _ | Segment_unit _ -> ())
    units;
  Hashtbl.iter
    (fun _ entries ->
      let sorted = List.sort compare entries in
      ignore
        (List.fold_left
           (fun prev (_, id) ->
             (match prev with Some p -> add_edge p id | None -> ());
             Some id)
           None sorted))
    by_cl;
  (* Data edges. *)
  let finishing_unit task_id =
    match task_site.(task_id) with `Unit id -> id | `Segments (_, last) -> last
  in
  let starting_unit task_id =
    match task_site.(task_id) with `Unit id -> id | `Segments (first, _) -> first
  in
  List.iter
    (fun (e : Graph.edge) ->
      let producer = finishing_unit e.src in
      let consumer = starting_unit e.dst in
      match Hashtbl.find_opt comm_unit (e.src, e.dst) with
      | Some comm ->
        add_edge producer comm;
        add_edge comm consumer
      | None -> add_edge producer consumer)
    (Graph.edges graph);
  let topo = topological_sort n preds succs in
  { units; preds; succs; topo; task_site }

let forward dag =
  Array.iter
    (fun id ->
      let u = dag.units.(id) in
      let ready =
        List.fold_left (fun acc p -> Float.max acc dag.units.(p).finish) 0.0 dag.preds.(id)
      in
      u.start <- ready;
      u.finish <- ready +. duration u)
    dag.topo

let backward dag =
  let n = Array.length dag.units in
  for k = n - 1 downto 0 do
    let id = dag.topo.(k) in
    let u = dag.units.(id) in
    let from_succs =
      List.fold_left
        (fun acc s ->
          let su = dag.units.(s) in
          Float.min acc (su.lft -. duration su))
        infinity dag.succs.(id)
    in
    u.lft <- Float.min u.deadline from_succs
  done

let all_deadlines_met dag =
  Array.for_all (fun u -> u.finish <= u.deadline +. 1e-9) dag.units

(* One greedy step: lower the voltage of the unit with the best
   energy-gain / added-delay ratio whose added delay fits its slack. *)
let greedy_step dag =
  let best = ref None in
  Array.iteri
    (fun id u ->
      match u.rail with
      | None -> ()
      | Some rail -> (
        match Voltage.next_lower rail u.voltage with
        | None -> ()
        | Some v' ->
          let added_delay =
            u.nominal *. (Voltage.delay_factor rail v' -. Voltage.delay_factor rail u.voltage)
          in
          let slack = u.lft -. u.finish in
          if added_delay <= slack +. 1e-12 then begin
            let energy_gain =
              u.power *. u.nominal
              *. (Voltage.energy_factor rail u.voltage -. Voltage.energy_factor rail v')
            in
            let ratio = if added_delay > 0.0 then energy_gain /. added_delay else infinity in
            match !best with
            | Some (_, _, best_ratio, best_gain) ->
              if
                ratio > best_ratio +. 1e-15
                || (Float.abs (ratio -. best_ratio) <= 1e-15 && energy_gain > best_gain)
              then best := Some (id, v', ratio, energy_gain)
            | None -> best := Some (id, v', ratio, energy_gain)
          end))
    dag.units;
  match !best with
  | Some (id, v', _, gain) when gain > 0.0 ->
    dag.units.(id).voltage <- v';
    true
  | Some _ | None -> false

(* The EVEN baseline: one uniform slowdown factor for all scalable units.
   Feasibility is monotone in the factor (larger factor, longer
   durations), so bisection finds the largest workable one. *)
let even_slack_scale dag =
  let slowest_within rail factor =
    (* The lowest level whose delay factor fits; Vmax (factor 1) always
       does. *)
    List.fold_left
      (fun best v -> if Voltage.delay_factor rail v <= factor +. 1e-12 then v else best)
      (Voltage.vmax rail) (Voltage.levels rail)
  in
  let apply factor =
    Array.iter
      (fun u ->
        match u.rail with
        | Some rail -> u.voltage <- slowest_within rail factor
        | None -> ())
      dag.units
  in
  let feasible_at factor =
    apply factor;
    forward dag;
    all_deadlines_met dag
  in
  let max_factor =
    Array.fold_left
      (fun acc u ->
        match u.rail with
        | Some rail -> Float.max acc (Voltage.delay_factor rail (Voltage.vmin rail))
        | None -> acc)
      1.0 dag.units
  in
  let rec bisect lo hi k =
    (* Invariant: lo feasible, hi not (or untested upper bound). *)
    if k = 0 then lo
    else
      let mid = (lo +. hi) /. 2.0 in
      if feasible_at mid then bisect mid hi (k - 1) else bisect lo mid (k - 1)
  in
  let best =
    if feasible_at max_factor then max_factor else bisect 1.0 max_factor 40
  in
  ignore (feasible_at best)

let scale ~strategy dag =
  forward dag;
  let feasible = all_deadlines_met dag in
  if feasible then begin
    match strategy with
    | Greedy_gradient ->
      let continue_ = ref true in
      while !continue_ do
        backward dag;
        if greedy_step dag then forward dag else continue_ := false
      done
    | Even_slack -> even_slack_scale dag
  end;
  feasible

let assemble ~graph ~arch ~(schedule : Schedule.t) dag feasible =
  let n_tasks = Graph.n_tasks graph in
  let task_voltages = Array.make n_tasks nan in
  let task_energy = Array.make n_tasks 0.0 in
  let stretched_finish = Array.make n_tasks 0.0 in
  let hw_segments = ref [] in
  Array.iter
    (fun u ->
      match u.kind with
      | Task_unit task_id ->
        let energy =
          match u.rail with
          | None -> u.power *. u.nominal
          | Some rail -> Voltage.scaled_energy rail ~pmax:u.power ~tmin:u.nominal u.voltage
        in
        task_energy.(task_id) <- energy;
        stretched_finish.(task_id) <- u.finish;
        let pe = Arch.pe arch (Schedule.pe_of_slot schedule.Schedule.task_slots.(task_id)) in
        task_voltages.(task_id) <-
          (match u.rail with
          | Some _ -> u.voltage
          | None -> (
            match Pe.rail pe with Some r -> Voltage.vmax r | None -> nan))
      | Segment_unit { pe; seg } ->
        let rail = match u.rail with Some r -> r | None -> assert false in
        let energy =
          Voltage.scaled_energy rail ~pmax:u.power ~tmin:u.nominal u.voltage
        in
        hw_segments :=
          {
            pe;
            segment = seg;
            voltage = u.voltage;
            scaled_duration = duration u;
            energy;
          }
          :: !hw_segments
      | Comm_unit _ -> ())
    dag.units;
  (* Fill per-task shares and finishes for segment-resident tasks. *)
  Array.iteri
    (fun task_id site ->
      match site with
      | `Unit _ -> ()
      | `Segments (_, last_unit) ->
        stretched_finish.(task_id) <- dag.units.(last_unit).finish)
    dag.task_site;
  let comm_energy =
    List.fold_left (fun acc (c : Schedule.comm_slot) -> acc +. c.Schedule.energy) 0.0
      schedule.Schedule.comm_slots
  in
  (task_voltages, task_energy, stretched_finish, List.rev !hw_segments, comm_energy, feasible)

(* Fine-grained: one span per voltage-scaled mode ([nominal] passes
   through here too, with scaling disabled on both rails). *)
let p_run = Mm_obs.Probe.create ~fine:true "dvs/scale"

let run ?(config = default_config) ~graph ~arch ~tech ~schedule () =
  Mm_obs.Probe.run p_run @@ fun () ->
  let dag = build_dag ~config ~graph ~arch ~tech ~schedule in
  let feasible = scale ~strategy:config.strategy dag in
  let task_voltages, task_energy, stretched_finish, hw_segments, comm_energy, feasible =
    assemble ~graph ~arch ~schedule dag feasible
  in
  (* Prorate segment energies onto their running tasks. *)
  let power_of task_id =
    let task = Graph.task graph task_id in
    let pe = Arch.pe arch (Schedule.pe_of_slot schedule.Schedule.task_slots.(task_id)) in
    (Tech_lib.find_exn tech ~ty:(Task.ty task) ~pe).Tech_lib.dyn_power
  in
  List.iter
    (fun hs ->
      let seg = hs.segment in
      let total_power = seg.Hw_transform.power in
      if total_power > 0.0 then
        List.iter
          (fun task_id ->
            let share = power_of task_id /. total_power in
            task_energy.(task_id) <- task_energy.(task_id) +. (share *. hs.energy))
          seg.Hw_transform.running;
      (* Segment-resident tasks report the rail's nominal voltage in
         task_voltages; the real (time-varying) voltages live in
         hw_segments. *)
      List.iter
        (fun task_id ->
          if Float.is_nan task_voltages.(task_id) then
            task_voltages.(task_id) <-
              (match Pe.rail (Arch.pe arch hs.pe) with
              | Some r -> Voltage.vmax r
              | None -> nan))
        seg.Hw_transform.running)
    hw_segments;
  let total_task_energy = Array.fold_left ( +. ) 0.0 task_energy in
  {
    feasible;
    task_voltages;
    task_energy;
    hw_segments;
    comm_energy;
    total_dyn_energy = total_task_energy +. comm_energy;
    stretched_finish;
  }

let nominal ~graph ~arch ~tech ~schedule () =
  run
    ~config:{ scale_software = false; scale_hardware = false; strategy = Greedy_gradient }
    ~graph ~arch ~tech ~schedule ()
