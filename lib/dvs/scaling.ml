module Graph = Mm_taskgraph.Graph
module Task = Mm_taskgraph.Task
module Task_type = Mm_taskgraph.Task_type
module Arch = Mm_arch.Architecture
module Pe = Mm_arch.Pe
module Voltage = Mm_arch.Voltage
module Tech_lib = Mm_arch.Tech_lib
module Schedule = Mm_sched.Schedule
module Resource = Mm_sched.Resource

type strategy = Greedy_gradient | Even_slack

type config = {
  scale_software : bool;
  scale_hardware : bool;
  strategy : strategy;
}

let default_config =
  { scale_software = true; scale_hardware = true; strategy = Greedy_gradient }

type hw_segment = {
  pe : int;
  segment : Hw_transform.segment;
  voltage : float;
  scaled_duration : float;
  energy : float;
}

type t = {
  feasible : bool;
  task_voltages : float array;
  task_energy : float array;
  hw_segments : hw_segment list;
  comm_energy : float;
  total_dyn_energy : float;
  stretched_finish : float array;
}

let deadline_of_task graph period task_id =
  match Task.deadline (Graph.task graph task_id) with
  | None -> period
  | Some d -> Float.min d period

(* Fine-grained: one span per voltage-scaled mode ([nominal] passes
   through here too, with scaling disabled on both rails).  Shared by the
   flat fast path and the seed reference so the bench harness can
   attribute per-phase time to either implementation. *)
let p_run = Mm_obs.Probe.create ~fine:true "dvs/scale"

(* ------------------------------------------------------------------ *)
(* Seed reference implementation.                                      *)
(*                                                                     *)
(* Kept verbatim as the bit-exactness oracle for the flat fast path    *)
(* below (same pattern as [List_scheduler.run_reference]): the greedy  *)
(* selection below is an O(units) linear scan per accepted step with   *)
(* epsilon-chained tie-breaking, and the fast path must reproduce its  *)
(* choices — and hence every output float — exactly.                   *)
(* ------------------------------------------------------------------ *)

type unit_kind =
  | Task_unit of int
  | Segment_unit of { pe : int; seg : Hw_transform.segment }
  | Comm_unit of Schedule.comm_slot

type unit_state = {
  kind : unit_kind;
  nominal : float;
  power : float;
  rail : Voltage.t option;  (** [Some _] iff the unit may be scaled. *)
  deadline : float;
  mutable voltage : float;
  mutable start : float;
  mutable finish : float;
  mutable lft : float;
}

let duration u =
  match u.rail with
  | None -> u.nominal
  | Some rail -> Voltage.scaled_time rail ~tmin:u.nominal u.voltage

(* The unit DAG: scalable/fixed activities with resource-order and
   data-dependency edges.  Built once per (schedule, config). *)
type dag = {
  units : unit_state array;
  preds : int list array;
  succs : int list array;
  topo : int array;
  (* Per task: the unit carrying it, or its first/last segment units when
     the task lives on a scaled hardware component. *)
  task_site : [ `Unit of int | `Segments of int * int ] array;
}

let topological_sort n preds succs =
  let indegree = Array.init n (fun i -> List.length preds.(i)) in
  let queue = Queue.create () in
  for i = 0 to n - 1 do
    if indegree.(i) = 0 then Queue.add i queue
  done;
  let order = Array.make n (-1) in
  let k = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    order.(!k) <- i;
    incr k;
    List.iter
      (fun j ->
        indegree.(j) <- indegree.(j) - 1;
        if indegree.(j) = 0 then Queue.add j queue)
      succs.(i)
  done;
  assert (!k = n) (* the schedule's time order rules out cycles *);
  order

let build_dag ~config ~graph ~arch ~tech ~(schedule : Schedule.t) =
  let n_tasks = Graph.n_tasks graph in
  let period = schedule.Schedule.period in
  let units = ref [] in
  let n_units = ref 0 in
  let fresh u =
    let id = !n_units in
    incr n_units;
    units := u :: !units;
    id
  in
  let power_of task_id =
    let task = Graph.task graph task_id in
    let pe = Arch.pe arch (Schedule.pe_of_slot schedule.Schedule.task_slots.(task_id)) in
    (Tech_lib.find_exn tech ~ty:(Task.ty task) ~pe).Tech_lib.dyn_power
  in
  let task_site = Array.make n_tasks (`Unit (-1)) in
  (* Hardware components whose cores are scaled through segments. *)
  let scaled_hw_pe pe =
    config.scale_hardware && Pe.is_hardware pe && Pe.is_dvs_enabled pe
  in
  (* Task units for everything not living on a scaled hardware component. *)
  Array.iter
    (fun (slot : Schedule.task_slot) ->
      let pe = Arch.pe arch (Schedule.pe_of_slot slot) in
      if not (scaled_hw_pe pe) then begin
        let rail =
          if config.scale_software && Pe.is_software pe then Pe.rail pe else None
        in
        let vstart = match rail with Some r -> Voltage.vmax r | None -> nan in
        let id =
          fresh
            {
              kind = Task_unit slot.Schedule.task;
              nominal = slot.Schedule.duration;
              power = power_of slot.Schedule.task;
              rail;
              deadline = deadline_of_task graph period slot.Schedule.task;
              voltage = vstart;
              start = 0.0;
              finish = 0.0;
              lft = infinity;
            }
        in
        task_site.(slot.Schedule.task) <- `Unit id
      end)
    schedule.Schedule.task_slots;
  (* Segment units for scaled hardware components. *)
  let segment_chains = ref [] in
  List.iter
    (fun pe ->
      if scaled_hw_pe pe then begin
        let slots =
          Array.to_list schedule.Schedule.task_slots
          |> List.filter (fun (s : Schedule.task_slot) ->
                 Schedule.pe_of_slot s = Pe.id pe)
        in
        if slots <> [] then begin
          let rail =
            match Pe.rail pe with Some r -> r | None -> assert false
          in
          let segs =
            Hw_transform.segments
              ~slots:(List.map (fun s -> (s, power_of s.Schedule.task)) slots)
          in
          let seg_deadline seg =
            List.fold_left
              (fun acc task_id -> Float.min acc (deadline_of_task graph period task_id))
              infinity seg.Hw_transform.finishing
          in
          let ids =
            List.map
              (fun seg ->
                fresh
                  {
                    kind = Segment_unit { pe = Pe.id pe; seg };
                    nominal = seg.Hw_transform.duration;
                    power = seg.Hw_transform.power;
                    rail = Some rail;
                    deadline = seg_deadline seg;
                    voltage = Voltage.vmax rail;
                    start = 0.0;
                    finish = 0.0;
                    lft = infinity;
                  })
              segs
          in
          let id_of_index = Array.of_list ids in
          segment_chains := ids :: !segment_chains;
          List.iter
            (fun (s : Schedule.task_slot) ->
              let first = Hw_transform.first_segment_of segs s.Schedule.task in
              let last = Hw_transform.last_segment_of segs s.Schedule.task in
              task_site.(s.Schedule.task) <-
                `Segments (id_of_index.(first), id_of_index.(last)))
            slots
        end
      end)
    (Arch.pes arch);
  (* Communication units. *)
  let comm_unit = Hashtbl.create 16 in
  List.iter
    (fun (c : Schedule.comm_slot) ->
      let id =
        fresh
          {
            kind = Comm_unit c;
            nominal = c.Schedule.duration;
            power = 0.0;
            rail = None;
            deadline = period;
            voltage = nan;
            start = 0.0;
            finish = 0.0;
            lft = infinity;
          }
      in
      Hashtbl.replace comm_unit (c.Schedule.edge.Graph.src, c.Schedule.edge.Graph.dst) id)
    schedule.Schedule.comm_slots;
  let units = Array.of_list (List.rev !units) in
  let n = Array.length units in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  let add_edge a b =
    if a <> b then begin
      succs.(a) <- b :: succs.(a);
      preds.(b) <- a :: preds.(b)
    end
  in
  (* Resource chains: task units grouped by resource in start order. *)
  let by_resource = Hashtbl.create 16 in
  Array.iteri
    (fun id u ->
      match u.kind with
      | Task_unit task_id ->
        let slot = schedule.Schedule.task_slots.(task_id) in
        let key = slot.Schedule.resource in
        let existing = Option.value ~default:[] (Hashtbl.find_opt by_resource key) in
        Hashtbl.replace by_resource key ((slot.Schedule.start, id) :: existing)
      | Segment_unit _ | Comm_unit _ -> ())
    units;
  Hashtbl.iter
    (fun _ entries ->
      let sorted = List.sort compare entries in
      ignore
        (List.fold_left
           (fun prev (_, id) ->
             (match prev with Some p -> add_edge p id | None -> ());
             Some id)
           None sorted))
    by_resource;
  (* Segment chains. *)
  List.iter
    (fun ids ->
      ignore
        (List.fold_left
           (fun prev id ->
             (match prev with Some p -> add_edge p id | None -> ());
             Some id)
           None ids))
    !segment_chains;
  (* Link chains. *)
  let by_cl = Hashtbl.create 8 in
  Array.iteri
    (fun id u ->
      match u.kind with
      | Comm_unit c ->
        let existing = Option.value ~default:[] (Hashtbl.find_opt by_cl c.Schedule.cl) in
        Hashtbl.replace by_cl c.Schedule.cl ((c.Schedule.start, id) :: existing)
      | Task_unit _ | Segment_unit _ -> ())
    units;
  Hashtbl.iter
    (fun _ entries ->
      let sorted = List.sort compare entries in
      ignore
        (List.fold_left
           (fun prev (_, id) ->
             (match prev with Some p -> add_edge p id | None -> ());
             Some id)
           None sorted))
    by_cl;
  (* Data edges. *)
  let finishing_unit task_id =
    match task_site.(task_id) with `Unit id -> id | `Segments (_, last) -> last
  in
  let starting_unit task_id =
    match task_site.(task_id) with `Unit id -> id | `Segments (first, _) -> first
  in
  List.iter
    (fun (e : Graph.edge) ->
      let producer = finishing_unit e.src in
      let consumer = starting_unit e.dst in
      match Hashtbl.find_opt comm_unit (e.src, e.dst) with
      | Some comm ->
        add_edge producer comm;
        add_edge comm consumer
      | None -> add_edge producer consumer)
    (Graph.edges graph);
  let topo = topological_sort n preds succs in
  { units; preds; succs; topo; task_site }

let forward dag =
  Array.iter
    (fun id ->
      let u = dag.units.(id) in
      let ready =
        List.fold_left (fun acc p -> Float.max acc dag.units.(p).finish) 0.0 dag.preds.(id)
      in
      u.start <- ready;
      u.finish <- ready +. duration u)
    dag.topo

let backward dag =
  let n = Array.length dag.units in
  for k = n - 1 downto 0 do
    let id = dag.topo.(k) in
    let u = dag.units.(id) in
    let from_succs =
      List.fold_left
        (fun acc s ->
          let su = dag.units.(s) in
          Float.min acc (su.lft -. duration su))
        infinity dag.succs.(id)
    in
    u.lft <- Float.min u.deadline from_succs
  done

let all_deadlines_met dag =
  Array.for_all (fun u -> u.finish <= u.deadline +. 1e-9) dag.units

(* One greedy step: lower the voltage of the unit with the best
   energy-gain / added-delay ratio whose added delay fits its slack. *)
let greedy_step dag =
  let best = ref None in
  Array.iteri
    (fun id u ->
      match u.rail with
      | None -> ()
      | Some rail -> (
        match Voltage.next_lower rail u.voltage with
        | None -> ()
        | Some v' ->
          let added_delay =
            u.nominal *. (Voltage.delay_factor rail v' -. Voltage.delay_factor rail u.voltage)
          in
          let slack = u.lft -. u.finish in
          if added_delay <= slack +. 1e-12 then begin
            let energy_gain =
              u.power *. u.nominal
              *. (Voltage.energy_factor rail u.voltage -. Voltage.energy_factor rail v')
            in
            let ratio = if added_delay > 0.0 then energy_gain /. added_delay else infinity in
            match !best with
            | Some (_, _, best_ratio, best_gain) ->
              if
                ratio > best_ratio +. 1e-15
                || (Float.abs (ratio -. best_ratio) <= 1e-15 && energy_gain > best_gain)
              then best := Some (id, v', ratio, energy_gain)
            | None -> best := Some (id, v', ratio, energy_gain)
          end))
    dag.units;
  match !best with
  | Some (id, v', _, gain) when gain > 0.0 ->
    dag.units.(id).voltage <- v';
    true
  | Some _ | None -> false

(* The EVEN baseline: one uniform slowdown factor for all scalable units.
   Feasibility is monotone in the factor (larger factor, longer
   durations), so bisection finds the largest workable one. *)
let even_slack_scale dag =
  let slowest_within rail factor =
    (* The lowest level whose delay factor fits; Vmax (factor 1) always
       does. *)
    List.fold_left
      (fun best v -> if Voltage.delay_factor rail v <= factor +. 1e-12 then v else best)
      (Voltage.vmax rail) (Voltage.levels rail)
  in
  let apply factor =
    Array.iter
      (fun u ->
        match u.rail with
        | Some rail -> u.voltage <- slowest_within rail factor
        | None -> ())
      dag.units
  in
  let feasible_at factor =
    apply factor;
    forward dag;
    all_deadlines_met dag
  in
  let max_factor =
    Array.fold_left
      (fun acc u ->
        match u.rail with
        | Some rail -> Float.max acc (Voltage.delay_factor rail (Voltage.vmin rail))
        | None -> acc)
      1.0 dag.units
  in
  let rec bisect lo hi k =
    (* Invariant: lo feasible, hi not (or untested upper bound). *)
    if k = 0 then lo
    else
      let mid = (lo +. hi) /. 2.0 in
      if feasible_at mid then bisect mid hi (k - 1) else bisect lo mid (k - 1)
  in
  let best =
    if feasible_at max_factor then max_factor else bisect 1.0 max_factor 40
  in
  ignore (feasible_at best)

let scale ~strategy dag =
  forward dag;
  let feasible = all_deadlines_met dag in
  if feasible then begin
    match strategy with
    | Greedy_gradient ->
      let continue_ = ref true in
      while !continue_ do
        backward dag;
        if greedy_step dag then forward dag else continue_ := false
      done
    | Even_slack -> even_slack_scale dag
  end;
  feasible

let assemble ~graph ~arch ~(schedule : Schedule.t) dag feasible =
  let n_tasks = Graph.n_tasks graph in
  let task_voltages = Array.make n_tasks nan in
  let task_energy = Array.make n_tasks 0.0 in
  let stretched_finish = Array.make n_tasks 0.0 in
  let hw_segments = ref [] in
  Array.iter
    (fun u ->
      match u.kind with
      | Task_unit task_id ->
        let energy =
          match u.rail with
          | None -> u.power *. u.nominal
          | Some rail -> Voltage.scaled_energy rail ~pmax:u.power ~tmin:u.nominal u.voltage
        in
        task_energy.(task_id) <- energy;
        stretched_finish.(task_id) <- u.finish;
        let pe = Arch.pe arch (Schedule.pe_of_slot schedule.Schedule.task_slots.(task_id)) in
        task_voltages.(task_id) <-
          (match u.rail with
          | Some _ -> u.voltage
          | None -> (
            match Pe.rail pe with Some r -> Voltage.vmax r | None -> nan))
      | Segment_unit { pe; seg } ->
        let rail = match u.rail with Some r -> r | None -> assert false in
        let energy =
          Voltage.scaled_energy rail ~pmax:u.power ~tmin:u.nominal u.voltage
        in
        hw_segments :=
          {
            pe;
            segment = seg;
            voltage = u.voltage;
            scaled_duration = duration u;
            energy;
          }
          :: !hw_segments
      | Comm_unit _ -> ())
    dag.units;
  (* Fill per-task shares and finishes for segment-resident tasks. *)
  Array.iteri
    (fun task_id site ->
      match site with
      | `Unit _ -> ()
      | `Segments (_, last_unit) ->
        stretched_finish.(task_id) <- dag.units.(last_unit).finish)
    dag.task_site;
  let comm_energy =
    List.fold_left (fun acc (c : Schedule.comm_slot) -> acc +. c.Schedule.energy) 0.0
      schedule.Schedule.comm_slots
  in
  (task_voltages, task_energy, stretched_finish, List.rev !hw_segments, comm_energy, feasible)

let run_reference ?(config = default_config) ~graph ~arch ~tech ~schedule () =
  Mm_obs.Probe.run p_run @@ fun () ->
  let dag = build_dag ~config ~graph ~arch ~tech ~schedule in
  let feasible = scale ~strategy:config.strategy dag in
  let task_voltages, task_energy, stretched_finish, hw_segments, comm_energy, feasible =
    assemble ~graph ~arch ~schedule dag feasible
  in
  (* Prorate segment energies onto their running tasks. *)
  let power_of task_id =
    let task = Graph.task graph task_id in
    let pe = Arch.pe arch (Schedule.pe_of_slot schedule.Schedule.task_slots.(task_id)) in
    (Tech_lib.find_exn tech ~ty:(Task.ty task) ~pe).Tech_lib.dyn_power
  in
  List.iter
    (fun hs ->
      let seg = hs.segment in
      let total_power = seg.Hw_transform.power in
      if total_power > 0.0 then
        List.iter
          (fun task_id ->
            let share = power_of task_id /. total_power in
            task_energy.(task_id) <- task_energy.(task_id) +. (share *. hs.energy))
          seg.Hw_transform.running;
      (* Segment-resident tasks report the rail's nominal voltage in
         task_voltages; the real (time-varying) voltages live in
         hw_segments. *)
      List.iter
        (fun task_id ->
          if Float.is_nan task_voltages.(task_id) then
            task_voltages.(task_id) <-
              (match Pe.rail (Arch.pe arch hs.pe) with
              | Some r -> Voltage.vmax r
              | None -> nan))
        seg.Hw_transform.running)
    hw_segments;
  let total_task_energy = Array.fold_left ( +. ) 0.0 task_energy in
  {
    feasible;
    task_voltages;
    task_energy;
    hw_segments;
    comm_energy;
    total_dyn_energy = total_task_energy +. comm_energy;
    stretched_finish;
  }

let nominal_reference ~graph ~arch ~tech ~schedule () =
  run_reference
    ~config:{ scale_software = false; scale_hardware = false; strategy = Greedy_gradient }
    ~graph ~arch ~tech ~schedule ()

(* ------------------------------------------------------------------ *)
(* Flat fast path (DESIGN.md §13).                                     *)
(*                                                                     *)
(* The unit DAG lives in reusable flat arrays (a [workspace], held per  *)
(* domain by [Spec.compiled]); predecessors/successors are CSR slices;  *)
(* per-unit durations and next-lower-level gradient candidates are     *)
(* cached so the passes and the greedy loop never re-enter the         *)
(* [Voltage] power-law kernels for unchanged units; and the            *)
(* greedy selection runs over a binary max-heap of gradient ratios     *)
(* instead of the reference's full scan.                               *)
(*                                                                     *)
(* Bit-exactness obligations (tested in test_dvs.ml):                  *)
(* - all candidate quantities are computed by the verbatim reference   *)
(*   expressions, so cached values equal rescanned ones;               *)
(* - slack (lft - finish) is non-increasing per unit while its voltage *)
(*   is unchanged (voltages only drop, durations only grow), so a      *)
(*   popped candidate whose delay no longer fits can be discarded for  *)
(*   good;                                                             *)
(* - the reference comparator chains absolute epsilons (1e-15) and is  *)
(*   therefore not a total order, so the heap only pre-filters: each   *)
(*   step pops every candidate that is not provably outside the        *)
(*   epsilon window of the collected maximum and replays the           *)
(*   reference's fold over them in ascending unit order.  A candidate  *)
(*   [e] is excluded only when [e.ratio +. 1e-15 < w] and              *)
(*   [w -. e.ratio > 1e-15] for the window minimum [w] — evaluated as  *)
(*   written, in float arithmetic — which makes it impossible for [e]  *)
(*   to either capture or survive any fold state the window can reach. *)
(* ------------------------------------------------------------------ *)

type workspace = {
  (* Per-unit arrays, valid in [0, cap). *)
  mutable cap : int;
  mutable u_task : int array;  (* task id for task units, -1 otherwise *)
  mutable u_rail : int array;  (* rail-table index, -1 = never scaled *)
  mutable u_nominal : float array;
  mutable u_power : float array;
  mutable u_deadline : float array;
  mutable u_voltage : float array;
  mutable u_dur : float array;  (* duration at the current voltage *)
  mutable u_start : float array;
  mutable u_finish : float array;
  mutable u_lft : float array;
  (* Next-lower-level gradient candidate per scalable unit. *)
  mutable cand_v : float array;
  mutable cand_delay : float array;
  mutable cand_gain : float array;
  mutable cand_ratio : float array;
  mutable heap : int array;
  (* Edge buffer and CSR adjacency, valid in [0, ecap). *)
  mutable ecap : int;
  mutable e_src : int array;
  mutable e_dst : int array;
  mutable pred_adj : int array;
  mutable succ_adj : int array;
  (* cap + 1 cells. *)
  mutable pred_off : int array;
  mutable succ_off : int array;
  mutable topo : int array;
  mutable scratch : int array;
}

let create_workspace () =
  {
    cap = 0;
    u_task = [||];
    u_rail = [||];
    u_nominal = [||];
    u_power = [||];
    u_deadline = [||];
    u_voltage = [||];
    u_dur = [||];
    u_start = [||];
    u_finish = [||];
    u_lft = [||];
    cand_v = [||];
    cand_delay = [||];
    cand_gain = [||];
    cand_ratio = [||];
    heap = [||];
    ecap = 0;
    e_src = [||];
    e_dst = [||];
    pred_adj = [||];
    succ_adj = [||];
    pred_off = [||];
    succ_off = [||];
    topo = [||];
    scratch = [||];
  }

(* Unit counts and edge counts are known before any array is filled, so
   growth never needs to preserve contents. *)
let ensure_units ws n =
  if n > ws.cap then begin
    let cap = max n (2 * ws.cap) in
    ws.cap <- cap;
    ws.u_task <- Array.make cap 0;
    ws.u_rail <- Array.make cap 0;
    ws.u_nominal <- Array.make cap 0.0;
    ws.u_power <- Array.make cap 0.0;
    ws.u_deadline <- Array.make cap 0.0;
    ws.u_voltage <- Array.make cap 0.0;
    ws.u_dur <- Array.make cap 0.0;
    ws.u_start <- Array.make cap 0.0;
    ws.u_finish <- Array.make cap 0.0;
    ws.u_lft <- Array.make cap 0.0;
    ws.cand_v <- Array.make cap 0.0;
    ws.cand_delay <- Array.make cap 0.0;
    ws.cand_gain <- Array.make cap 0.0;
    ws.cand_ratio <- Array.make cap 0.0;
    ws.heap <- Array.make cap 0;
    ws.pred_off <- Array.make (cap + 1) 0;
    ws.succ_off <- Array.make (cap + 1) 0;
    ws.topo <- Array.make cap 0;
    ws.scratch <- Array.make cap 0
  end

let ensure_edges ws m =
  if m > ws.ecap then begin
    let cap = max m (2 * ws.ecap) in
    ws.ecap <- cap;
    ws.e_src <- Array.make cap 0;
    ws.e_dst <- Array.make cap 0;
    ws.pred_adj <- Array.make cap 0;
    ws.succ_adj <- Array.make cap 0
  end

(* The flat DAG: [n] units in the workspace arrays plus everything the
   assembly step needs to rebuild the public result. *)
type fdag = {
  ws : workspace;
  n : int;
  rails : Voltage.t array;
  (* (unit, pe, segment) per segment unit, latest first. *)
  seg_units : (int * int * Hw_transform.segment) list;
  (* (task, last unit) per segment-resident task. *)
  seg_sites : (int * int) list;
}

let build_flat ws ~config ~graph ~arch ~tech ~dispatch ~(schedule : Schedule.t) =
  let n_tasks = Graph.n_tasks graph in
  let period = schedule.Schedule.period in
  let power_of =
    match dispatch with
    | Some dispatch ->
      fun task_id ->
        let task = Graph.task graph task_id in
        let pe_id = Schedule.pe_of_slot schedule.Schedule.task_slots.(task_id) in
        (match
           Tech_lib.dispatch_find dispatch
             ~ty_id:(Task_type.id (Task.ty task))
             ~pe_id
         with
        | Some impl -> impl.Tech_lib.dyn_power
        | None -> raise Not_found)
    | None ->
      fun task_id ->
        let task = Graph.task graph task_id in
        let pe = Arch.pe arch (Schedule.pe_of_slot schedule.Schedule.task_slots.(task_id)) in
        (Tech_lib.find_exn tech ~ty:(Task.ty task) ~pe).Tech_lib.dyn_power
  in
  let scaled_hw_pe pe =
    config.scale_hardware && Pe.is_hardware pe && Pe.is_dvs_enabled pe
  in
  (* Bucket the slots of scaled hardware components per PE (in task-slot
     order, like the reference's filter) and serialise them into
     segments up front, so the exact unit count is known before any
     workspace array is touched. *)
  let n_pes = Arch.n_pes arch in
  let hw_slots = Array.make n_pes [] in
  let n_task_units = ref 0 in
  Array.iter
    (fun (slot : Schedule.task_slot) ->
      let pe_id = Schedule.pe_of_slot slot in
      if scaled_hw_pe (Arch.pe arch pe_id) then
        hw_slots.(pe_id) <- slot :: hw_slots.(pe_id)
      else incr n_task_units)
    schedule.Schedule.task_slots;
  let hw_components =
    List.filter_map
      (fun pe ->
        if not (scaled_hw_pe pe) then None
        else
          match List.rev hw_slots.(Pe.id pe) with
          | [] -> None
          | slots ->
            let rail = match Pe.rail pe with Some r -> r | None -> assert false in
            let segs =
              Hw_transform.segments
                ~slots:
                  (List.map (fun (s : Schedule.task_slot) -> (s, power_of s.Schedule.task)) slots)
            in
            Some (Pe.id pe, rail, slots, segs))
      (Arch.pes arch)
  in
  let n_segments =
    List.fold_left (fun acc (_, _, _, segs) -> acc + List.length segs) 0 hw_components
  in
  let n_comms = List.length schedule.Schedule.comm_slots in
  let n = !n_task_units + n_segments + n_comms in
  ensure_units ws n;
  ensure_edges ws (n + (2 * Graph.n_edges graph));
  (* Rail table: one slot per PE that contributes scalable units. *)
  let rail_idx = Array.make n_pes (-1) in
  let rail_list = ref [] in
  let n_rails = ref 0 in
  let rail_index pe_id rail =
    if rail_idx.(pe_id) < 0 then begin
      rail_list := rail :: !rail_list;
      rail_idx.(pe_id) <- !n_rails;
      incr n_rails
    end;
    rail_idx.(pe_id)
  in
  let next = ref 0 in
  let fresh ~task ~rail_i ~rail ~nominal ~power ~deadline =
    let id = !next in
    incr next;
    ws.u_task.(id) <- task;
    ws.u_rail.(id) <- rail_i;
    ws.u_nominal.(id) <- nominal;
    ws.u_power.(id) <- power;
    ws.u_deadline.(id) <- deadline;
    (match rail with
    | Some r ->
      let vstart = Voltage.vmax r in
      ws.u_voltage.(id) <- vstart;
      ws.u_dur.(id) <- Voltage.scaled_time r ~tmin:nominal vstart
    | None ->
      ws.u_voltage.(id) <- nan;
      ws.u_dur.(id) <- nominal);
    id
  in
  (* Sites: the unit whose start/finish carries the task boundary. *)
  let site_first = Array.make n_tasks (-1) in
  let site_last = Array.make n_tasks (-1) in
  (* Task units, in task-slot order. *)
  Array.iter
    (fun (slot : Schedule.task_slot) ->
      let pe_id = Schedule.pe_of_slot slot in
      let pe = Arch.pe arch pe_id in
      if not (scaled_hw_pe pe) then begin
        let rail =
          if config.scale_software && Pe.is_software pe then Pe.rail pe else None
        in
        let rail_i =
          match rail with Some r -> rail_index pe_id r | None -> -1
        in
        let id =
          fresh ~task:slot.Schedule.task ~rail_i ~rail ~nominal:slot.Schedule.duration
            ~power:(power_of slot.Schedule.task)
            ~deadline:(deadline_of_task graph period slot.Schedule.task)
        in
        site_first.(slot.Schedule.task) <- id;
        site_last.(slot.Schedule.task) <- id
      end)
    schedule.Schedule.task_slots;
  (* Segment units per scaled hardware component, chained in place. *)
  let seg_units = ref [] in
  let seg_sites = ref [] in
  let n_edges = ref 0 in
  let add_edge a b =
    if a <> b then begin
      ws.e_src.(!n_edges) <- a;
      ws.e_dst.(!n_edges) <- b;
      incr n_edges
    end
  in
  List.iter
    (fun (pe_id, rail, slots, segs) ->
      let rail_i = rail_index pe_id rail in
      let first_id = !next in
      List.iter
        (fun (seg : Hw_transform.segment) ->
          let seg_deadline =
            List.fold_left
              (fun acc task_id -> Float.min acc (deadline_of_task graph period task_id))
              infinity seg.Hw_transform.finishing
          in
          let id =
            fresh ~task:(-1) ~rail_i ~rail:(Some rail) ~nominal:seg.Hw_transform.duration
              ~power:seg.Hw_transform.power ~deadline:seg_deadline
          in
          if id > first_id then add_edge (id - 1) id;
          seg_units := (id, pe_id, seg) :: !seg_units)
        segs;
      List.iter
        (fun (s : Schedule.task_slot) ->
          let first = Hw_transform.first_segment_of segs s.Schedule.task in
          let last = Hw_transform.last_segment_of segs s.Schedule.task in
          site_first.(s.Schedule.task) <- first_id + first;
          site_last.(s.Schedule.task) <- first_id + last;
          seg_sites := (s.Schedule.task, first_id + last) :: !seg_sites)
        slots)
    hw_components;
  (* Communication units, in scheduling order. *)
  let comm_unit = Hashtbl.create 16 in
  List.iter
    (fun (c : Schedule.comm_slot) ->
      let id =
        fresh ~task:(-1) ~rail_i:(-1) ~rail:None ~nominal:c.Schedule.duration ~power:0.0
          ~deadline:period
      in
      Hashtbl.replace comm_unit (c.Schedule.edge.Graph.src, c.Schedule.edge.Graph.dst) id)
    schedule.Schedule.comm_slots;
  assert (!next = n);
  (* Resource chains (task units) and link chains (comm units): sort the
     members of each sequential resource by (start, id) and chain
     consecutive ones — the same edges the reference derives from its
     per-resource hash buckets. *)
  let task_members = ref [] in
  Array.iteri
    (fun task_id (slot : Schedule.task_slot) ->
      let id = site_first.(task_id) in
      if id >= 0 && ws.u_task.(id) = task_id then
        task_members := (slot.Schedule.resource, slot.Schedule.start, id) :: !task_members)
    schedule.Schedule.task_slots;
  let chain_resources members compare_key =
    let members = Array.of_list members in
    Array.sort
      (fun (ka, sa, ia) (kb, sb, ib) ->
        let c = compare_key ka kb in
        if c <> 0 then c
        else
          let c = compare (sa : float) sb in
          if c <> 0 then c else compare (ia : int) ib)
      members;
    for k = 1 to Array.length members - 1 do
      let pk, _, prev = members.(k - 1) in
      let ck, _, cur = members.(k) in
      if compare_key pk ck = 0 then add_edge prev cur
    done
  in
  chain_resources !task_members Resource.compare;
  let comm_members = ref [] in
  let comm_base = n - n_comms in
  List.iteri
    (fun k (c : Schedule.comm_slot) ->
      comm_members := (c.Schedule.cl, c.Schedule.start, comm_base + k) :: !comm_members)
    schedule.Schedule.comm_slots;
  chain_resources !comm_members Int.compare;
  (* Data edges. *)
  List.iter
    (fun (e : Graph.edge) ->
      let producer = site_last.(e.src) in
      let consumer = site_first.(e.dst) in
      match Hashtbl.find_opt comm_unit (e.src, e.dst) with
      | Some comm ->
        add_edge producer comm;
        add_edge comm consumer
      | None -> add_edge producer consumer)
    (Graph.edges graph);
  (* CSR adjacency by counting sort. *)
  let m = !n_edges in
  for i = 0 to n do
    ws.pred_off.(i) <- 0;
    ws.succ_off.(i) <- 0
  done;
  for k = 0 to m - 1 do
    ws.succ_off.(ws.e_src.(k) + 1) <- ws.succ_off.(ws.e_src.(k) + 1) + 1;
    ws.pred_off.(ws.e_dst.(k) + 1) <- ws.pred_off.(ws.e_dst.(k) + 1) + 1
  done;
  for i = 1 to n do
    ws.pred_off.(i) <- ws.pred_off.(i) + ws.pred_off.(i - 1);
    ws.succ_off.(i) <- ws.succ_off.(i) + ws.succ_off.(i - 1)
  done;
  for i = 0 to n - 1 do
    ws.scratch.(i) <- ws.succ_off.(i)
  done;
  for k = 0 to m - 1 do
    let s = ws.e_src.(k) in
    ws.succ_adj.(ws.scratch.(s)) <- ws.e_dst.(k);
    ws.scratch.(s) <- ws.scratch.(s) + 1
  done;
  for i = 0 to n - 1 do
    ws.scratch.(i) <- ws.pred_off.(i)
  done;
  for k = 0 to m - 1 do
    let d = ws.e_dst.(k) in
    ws.pred_adj.(ws.scratch.(d)) <- ws.e_src.(k);
    ws.scratch.(d) <- ws.scratch.(d) + 1
  done;
  (* Kahn's algorithm with the topo array as the work queue; any valid
     topological order yields the same pass fixpoints (max/min folds). *)
  for i = 0 to n - 1 do
    ws.scratch.(i) <- ws.pred_off.(i + 1) - ws.pred_off.(i)
  done;
  let tail = ref 0 in
  for i = 0 to n - 1 do
    if ws.scratch.(i) = 0 then begin
      ws.topo.(!tail) <- i;
      incr tail
    end
  done;
  let head = ref 0 in
  while !head < !tail do
    let i = ws.topo.(!head) in
    incr head;
    for k = ws.succ_off.(i) to ws.succ_off.(i + 1) - 1 do
      let j = ws.succ_adj.(k) in
      ws.scratch.(j) <- ws.scratch.(j) - 1;
      if ws.scratch.(j) = 0 then begin
        ws.topo.(!tail) <- j;
        incr tail
      end
    done
  done;
  assert (!tail = n) (* the schedule's time order rules out cycles *);
  {
    ws;
    n;
    rails = Array.of_list (List.rev !rail_list);
    seg_units = !seg_units;
    seg_sites = !seg_sites;
  }

let forward_flat d =
  let ws = d.ws in
  for k = 0 to d.n - 1 do
    let u = ws.topo.(k) in
    let ready = ref 0.0 in
    for i = ws.pred_off.(u) to ws.pred_off.(u + 1) - 1 do
      ready := Float.max !ready ws.u_finish.(ws.pred_adj.(i))
    done;
    ws.u_start.(u) <- !ready;
    ws.u_finish.(u) <- !ready +. ws.u_dur.(u)
  done

let backward_flat d =
  let ws = d.ws in
  for k = d.n - 1 downto 0 do
    let u = ws.topo.(k) in
    let lft = ref infinity in
    for i = ws.succ_off.(u) to ws.succ_off.(u + 1) - 1 do
      let s = ws.succ_adj.(i) in
      lft := Float.min !lft (ws.u_lft.(s) -. ws.u_dur.(s))
    done;
    ws.u_lft.(u) <- Float.min ws.u_deadline.(u) !lft
  done

let all_deadlines_met_flat d =
  let ws = d.ws in
  let ok = ref true in
  for u = 0 to d.n - 1 do
    if not (ws.u_finish.(u) <= ws.u_deadline.(u) +. 1e-9) then ok := false
  done;
  !ok

(* Binary max-heap over candidate ratios (ties towards smaller unit ids;
   the secondary order never affects the result — equal ratios always
   land in the same epsilon window). *)
let heap_before ws i j =
  ws.cand_ratio.(i) > ws.cand_ratio.(j)
  || (ws.cand_ratio.(i) = ws.cand_ratio.(j) && i < j)

let heap_push ws size u =
  let i = ref !size in
  ws.heap.(!i) <- u;
  incr size;
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    if heap_before ws ws.heap.(!i) ws.heap.(parent) then begin
      let tmp = ws.heap.(parent) in
      ws.heap.(parent) <- ws.heap.(!i);
      ws.heap.(!i) <- tmp;
      i := parent
    end
    else continue_ := false
  done

let heap_pop ws size =
  let top = ws.heap.(0) in
  decr size;
  if !size > 0 then begin
    ws.heap.(0) <- ws.heap.(!size);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let best = ref !i in
      if l < !size && heap_before ws ws.heap.(l) ws.heap.(!best) then best := l;
      if r < !size && heap_before ws ws.heap.(r) ws.heap.(!best) then best := r;
      if !best = !i then continue_ := false
      else begin
        let tmp = ws.heap.(!best) in
        ws.heap.(!best) <- ws.heap.(!i);
        ws.heap.(!i) <- tmp;
        i := !best
      end
    done
  end;
  top

(* The gradient candidate of a unit at its current voltage: the verbatim
   reference expressions, cached until the unit's voltage changes. *)
let compute_candidate ws rails u =
  let rail = rails.(ws.u_rail.(u)) in
  match Voltage.next_lower rail ws.u_voltage.(u) with
  | None -> false
  | Some v' ->
    let added_delay =
      ws.u_nominal.(u)
      *. (Voltage.delay_factor rail v' -. Voltage.delay_factor rail ws.u_voltage.(u))
    in
    let energy_gain =
      ws.u_power.(u) *. ws.u_nominal.(u)
      *. (Voltage.energy_factor rail ws.u_voltage.(u) -. Voltage.energy_factor rail v')
    in
    ws.cand_v.(u) <- v';
    ws.cand_delay.(u) <- added_delay;
    ws.cand_gain.(u) <- energy_gain;
    ws.cand_ratio.(u) <- (if added_delay > 0.0 then energy_gain /. added_delay else infinity);
    true

let rec insert_ascending id = function
  | [] -> [ id ]
  | x :: _ as l when id < x -> id :: l
  | x :: tl -> x :: insert_ascending id tl

let greedy_scale_flat d =
  let ws = d.ws in
  let rails = d.rails in
  let size = ref 0 in
  for u = 0 to d.n - 1 do
    if ws.u_rail.(u) >= 0 && compute_candidate ws rails u then heap_push ws size u
  done;
  let continue_ = ref true in
  while !continue_ do
    backward_flat d;
    (* Pop the epsilon window: every candidate not provably below the
       collected minimum under the reference's chained 1e-15 epsilon.
       Ineligible pops are discarded permanently (slack shrinks
       monotonically while a unit's voltage — and hence its candidate —
       is unchanged). *)
    let collected = ref [] in
    let min_ratio = ref nan in
    let stop = ref false in
    while (not !stop) && !size > 0 do
      let top = ws.heap.(0) in
      let r = ws.cand_ratio.(top) in
      if !collected <> [] && r +. 1e-15 < !min_ratio && !min_ratio -. r > 1e-15 then
        stop := true
      else begin
        ignore (heap_pop ws size);
        let slack = ws.u_lft.(top) -. ws.u_finish.(top) in
        if ws.cand_delay.(top) <= slack +. 1e-12 then begin
          collected := insert_ascending top !collected;
          min_ratio := r
        end
      end
    done;
    match !collected with
    | [] -> continue_ := false
    | first :: rest ->
      (* Replay the reference fold over the window in ascending unit
         order — its comparator is not transitive at epsilon scale, so
         the winner depends on the scan order. *)
      let best = ref first in
      List.iter
        (fun id ->
          let best_ratio = ws.cand_ratio.(!best) and best_gain = ws.cand_gain.(!best) in
          let ratio = ws.cand_ratio.(id) and energy_gain = ws.cand_gain.(id) in
          if
            ratio > best_ratio +. 1e-15
            || (Float.abs (ratio -. best_ratio) <= 1e-15 && energy_gain > best_gain)
          then best := id)
        rest;
      let best = !best in
      if ws.cand_gain.(best) > 0.0 then begin
        List.iter (fun id -> if id <> best then heap_push ws size id) !collected;
        let rail = rails.(ws.u_rail.(best)) in
        ws.u_voltage.(best) <- ws.cand_v.(best);
        ws.u_dur.(best) <-
          Voltage.scaled_time rail ~tmin:ws.u_nominal.(best) ws.u_voltage.(best);
        if compute_candidate ws rails best then heap_push ws size best;
        forward_flat d
      end
      else continue_ := false
  done

let even_slack_scale_flat d =
  let ws = d.ws in
  let levels = Array.map (fun r -> Array.of_list (Voltage.levels r)) d.rails in
  let factors =
    Array.mapi (fun i r -> Array.map (Voltage.delay_factor r) levels.(i)) d.rails
  in
  let slowest_within rail_i factor =
    (* Last fitting level of the descending table = the reference's
       fold over [Voltage.levels]; Vmax (factor 1) always fits. *)
    let best = ref (Voltage.vmax d.rails.(rail_i)) in
    Array.iteri
      (fun k v -> if factors.(rail_i).(k) <= factor +. 1e-12 then best := v)
      levels.(rail_i);
    !best
  in
  let apply factor =
    for u = 0 to d.n - 1 do
      let rail_i = ws.u_rail.(u) in
      if rail_i >= 0 then begin
        let v = slowest_within rail_i factor in
        ws.u_voltage.(u) <- v;
        ws.u_dur.(u) <- Voltage.scaled_time d.rails.(rail_i) ~tmin:ws.u_nominal.(u) v
      end
    done
  in
  let feasible_at factor =
    apply factor;
    forward_flat d;
    all_deadlines_met_flat d
  in
  let max_factor = ref 1.0 in
  for u = 0 to d.n - 1 do
    let rail_i = ws.u_rail.(u) in
    if rail_i >= 0 then
      max_factor :=
        Float.max !max_factor (factors.(rail_i).(Array.length factors.(rail_i) - 1))
  done;
  let rec bisect lo hi k =
    (* Invariant: lo feasible, hi not (or untested upper bound). *)
    if k = 0 then lo
    else
      let mid = (lo +. hi) /. 2.0 in
      if feasible_at mid then bisect mid hi (k - 1) else bisect lo mid (k - 1)
  in
  let best =
    if feasible_at !max_factor then !max_factor else bisect 1.0 !max_factor 40
  in
  ignore (feasible_at best)

let run ?(config = default_config) ?workspace ?dispatch ~graph ~arch ~tech ~schedule () =
  Mm_obs.Probe.run p_run @@ fun () ->
  let ws = match workspace with Some ws -> ws | None -> create_workspace () in
  let d = build_flat ws ~config ~graph ~arch ~tech ~dispatch ~schedule in
  forward_flat d;
  let feasible = all_deadlines_met_flat d in
  if feasible then begin
    match config.strategy with
    | Greedy_gradient -> greedy_scale_flat d
    | Even_slack -> even_slack_scale_flat d
  end;
  let n_tasks = Graph.n_tasks graph in
  let task_voltages = Array.make n_tasks nan in
  let task_energy = Array.make n_tasks 0.0 in
  let stretched_finish = Array.make n_tasks 0.0 in
  for u = 0 to d.n - 1 do
    let task_id = ws.u_task.(u) in
    if task_id >= 0 then begin
      let energy =
        if ws.u_rail.(u) < 0 then ws.u_power.(u) *. ws.u_nominal.(u)
        else
          Voltage.scaled_energy d.rails.(ws.u_rail.(u)) ~pmax:ws.u_power.(u)
            ~tmin:ws.u_nominal.(u) ws.u_voltage.(u)
      in
      task_energy.(task_id) <- energy;
      stretched_finish.(task_id) <- ws.u_finish.(u);
      task_voltages.(task_id) <-
        (if ws.u_rail.(u) >= 0 then ws.u_voltage.(u)
         else
           let pe = Arch.pe arch (Schedule.pe_of_slot schedule.Schedule.task_slots.(task_id)) in
           match Pe.rail pe with Some r -> Voltage.vmax r | None -> nan)
    end
  done;
  let hw_segments =
    List.rev_map
      (fun (u, pe, seg) ->
        {
          pe;
          segment = seg;
          voltage = ws.u_voltage.(u);
          scaled_duration = ws.u_dur.(u);
          energy =
            Voltage.scaled_energy d.rails.(ws.u_rail.(u)) ~pmax:ws.u_power.(u)
              ~tmin:ws.u_nominal.(u) ws.u_voltage.(u);
        })
      d.seg_units
  in
  List.iter
    (fun (task_id, last_unit) -> stretched_finish.(task_id) <- ws.u_finish.(last_unit))
    d.seg_sites;
  let comm_energy =
    List.fold_left (fun acc (c : Schedule.comm_slot) -> acc +. c.Schedule.energy) 0.0
      schedule.Schedule.comm_slots
  in
  (* Prorate segment energies onto their running tasks. *)
  let power_of task_id =
    let task = Graph.task graph task_id in
    let pe = Arch.pe arch (Schedule.pe_of_slot schedule.Schedule.task_slots.(task_id)) in
    match dispatch with
    | Some dispatch -> (
      match
        Tech_lib.dispatch_find dispatch
          ~ty_id:(Task_type.id (Task.ty task))
          ~pe_id:(Pe.id pe)
      with
      | Some impl -> impl.Tech_lib.dyn_power
      | None -> raise Not_found)
    | None -> (Tech_lib.find_exn tech ~ty:(Task.ty task) ~pe).Tech_lib.dyn_power
  in
  List.iter
    (fun hs ->
      let seg = hs.segment in
      let total_power = seg.Hw_transform.power in
      if total_power > 0.0 then
        List.iter
          (fun task_id ->
            let share = power_of task_id /. total_power in
            task_energy.(task_id) <- task_energy.(task_id) +. (share *. hs.energy))
          seg.Hw_transform.running;
      (* Segment-resident tasks report the rail's nominal voltage in
         task_voltages; the real (time-varying) voltages live in
         hw_segments. *)
      List.iter
        (fun task_id ->
          if Float.is_nan task_voltages.(task_id) then
            task_voltages.(task_id) <-
              (match Pe.rail (Arch.pe arch hs.pe) with
              | Some r -> Voltage.vmax r
              | None -> nan))
        seg.Hw_transform.running)
    hw_segments;
  let total_task_energy = Array.fold_left ( +. ) 0.0 task_energy in
  {
    feasible;
    task_voltages;
    task_energy;
    hw_segments;
    comm_energy;
    total_dyn_energy = total_task_energy +. comm_energy;
    stretched_finish;
  }

let nominal ?workspace ?dispatch ~graph ~arch ~tech ~schedule () =
  run
    ~config:{ scale_software = false; scale_hardware = false; strategy = Greedy_gradient }
    ?workspace ?dispatch ~graph ~arch ~tech ~schedule ()
