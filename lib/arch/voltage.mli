(** Discrete supply-voltage rails for DVS-enabled processing elements.

    Delay follows the classic alpha-power law with alpha = 2:
    gate speed is proportional to (V - Vt)^2 / V, so slowing from the
    nominal voltage Vmax to V multiplies execution time by
    [delay_factor].  Dynamic energy of a fixed workload scales with
    (V / Vmax)^2, exactly the paper's E = Pmax * tmin * (Vdd/Vmax)^2. *)

type t = private {
  levels : float array;  (** Distinct levels, strictly descending; [levels.(0)] is Vmax. *)
  threshold : float;  (** Threshold voltage Vt; all levels must exceed it. *)
}

val make : levels:float list -> threshold:float -> t
(** Sorts and deduplicates [levels].  Raises [Invalid_argument] when the
    list is empty, a level does not exceed [threshold], or [threshold] is
    negative. *)

val vmax : t -> float
val vmin : t -> float
val levels : t -> float list
(** Descending. *)

val n_levels : t -> int

val delay_factor : t -> float -> float
(** [delay_factor rail v]: execution-time multiplier at supply [v]
    relative to Vmax (>= 1 for v <= Vmax). *)

val energy_factor : t -> float -> float
(** [(v /. vmax)^2]: dynamic-energy multiplier relative to Vmax. *)

val scaled_time : t -> tmin:float -> float -> float
(** [scaled_time rail ~tmin v = tmin *. delay_factor rail v]. *)

val scaled_energy : t -> pmax:float -> tmin:float -> float -> float
(** Dynamic energy of a task with nominal power [pmax] and nominal
    duration [tmin] executed at supply [v]. *)

val slowest_feasible : t -> tmin:float -> budget:float -> float option
(** The lowest level whose scaled execution time still fits in [budget];
    [None] when even Vmax does not fit. *)

val next_lower : t -> float -> float option
(** The next level strictly below the given one, if any. *)

val pp : Format.formatter -> t -> unit
