module Task_type = Mm_taskgraph.Task_type

type impl = { exec_time : float; dyn_power : float; area : float }

module Key = struct
  type t = int * int (* task type id, PE id *)

  let compare = compare
end

module Key_map = Map.Make (Key)

type t = impl Key_map.t

let impl ~exec_time ~dyn_power ?(area = 0.0) () =
  if exec_time <= 0.0 then invalid_arg "Tech_lib.impl: non-positive exec_time";
  if dyn_power < 0.0 then invalid_arg "Tech_lib.impl: negative dyn_power";
  if area < 0.0 then invalid_arg "Tech_lib.impl: negative area";
  { exec_time; dyn_power; area }

let empty = Key_map.empty

let add t ~ty ~pe point =
  if Pe.is_software pe && point.area > 0.0 then
    invalid_arg "Tech_lib.add: software implementation cannot occupy core area";
  let key = (Task_type.id ty, Pe.id pe) in
  if Key_map.mem key t then invalid_arg "Tech_lib.add: duplicate entry";
  Key_map.add key point t

let find t ~ty ~pe = Key_map.find_opt (Task_type.id ty, Pe.id pe) t
let find_exn t ~ty ~pe = Key_map.find (Task_type.id ty, Pe.id pe) t
let supports t ~ty ~pe = Key_map.mem (Task_type.id ty, Pe.id pe) t

let supported_pes t ~ty arch =
  List.filter (fun pe -> supports t ~ty ~pe) (Architecture.pes arch)

let energy point = point.dyn_power *. point.exec_time
let n_entries t = Key_map.cardinal t

let iter f t =
  Key_map.iter (fun (ty_id, pe_id) point -> f ~ty_id ~pe_id point) t

(* Dense dispatch: the balanced-tree lookup of [find] costs a pointer
   chase per level on every task of every candidate evaluation; the GA's
   inner loop does millions of them.  A flat [(ty × pe) → impl option]
   array resolves the same query with one multiply and one load.  Built
   once per specification (see Spec.compiled); lookups outside the built
   id ranges answer [None], exactly like [find] on an absent key. *)

type dispatch = { n_types : int; n_pes : int; impls : impl option array }

let dispatch t ~n_types ~n_pes =
  if n_types < 0 || n_pes < 0 then invalid_arg "Tech_lib.dispatch: negative dimension";
  let impls = Array.make (n_types * n_pes) None in
  Key_map.iter
    (fun (ty_id, pe_id) point ->
      if ty_id < n_types && pe_id < n_pes then
        impls.((ty_id * n_pes) + pe_id) <- Some point)
    t;
  { n_types; n_pes; impls }

let dispatch_find d ~ty_id ~pe_id =
  if ty_id < 0 || ty_id >= d.n_types || pe_id < 0 || pe_id >= d.n_pes then None
  else d.impls.((ty_id * d.n_pes) + pe_id)
