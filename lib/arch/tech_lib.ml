module Task_type = Mm_taskgraph.Task_type

type impl = { exec_time : float; dyn_power : float; area : float }

module Key = struct
  type t = int * int (* task type id, PE id *)

  let compare = compare
end

module Key_map = Map.Make (Key)

type t = impl Key_map.t

let impl ~exec_time ~dyn_power ?(area = 0.0) () =
  if exec_time <= 0.0 then invalid_arg "Tech_lib.impl: non-positive exec_time";
  if dyn_power < 0.0 then invalid_arg "Tech_lib.impl: negative dyn_power";
  if area < 0.0 then invalid_arg "Tech_lib.impl: negative area";
  { exec_time; dyn_power; area }

let empty = Key_map.empty

let add t ~ty ~pe point =
  if Pe.is_software pe && point.area > 0.0 then
    invalid_arg "Tech_lib.add: software implementation cannot occupy core area";
  let key = (Task_type.id ty, Pe.id pe) in
  if Key_map.mem key t then invalid_arg "Tech_lib.add: duplicate entry";
  Key_map.add key point t

let find t ~ty ~pe = Key_map.find_opt (Task_type.id ty, Pe.id pe) t
let find_exn t ~ty ~pe = Key_map.find (Task_type.id ty, Pe.id pe) t
let supports t ~ty ~pe = Key_map.mem (Task_type.id ty, Pe.id pe) t

let supported_pes t ~ty arch =
  List.filter (fun pe -> supports t ~ty ~pe) (Architecture.pes arch)

let energy point = point.dyn_power *. point.exec_time
let n_entries t = Key_map.cardinal t

let iter f t =
  Key_map.iter (fun (ty_id, pe_id) point -> f ~ty_id ~pe_id point) t
