(** The technology library: implementation alternatives per task type.

    For every (task type, PE) pair it may hold an implementation point —
    execution time at nominal voltage, dynamic power at nominal voltage,
    and (for hardware PEs) the core area the type occupies.  A missing
    entry means the type cannot execute on that PE, which constrains the
    mapping GA's gene alphabets. *)

type impl = private {
  exec_time : float;  (** t_min at Vmax (s); must be positive. *)
  dyn_power : float;  (** P_max at Vmax (W); must be non-negative. *)
  area : float;  (** Core area (cells); must be 0 for software PEs. *)
}

type t

val impl : exec_time:float -> dyn_power:float -> ?area:float -> unit -> impl
val empty : t

val add : t -> ty:Mm_taskgraph.Task_type.t -> pe:Pe.t -> impl -> t
(** Functional update; raises [Invalid_argument] when a software PE is
    given a positive [area] or when an entry for the pair already
    exists. *)

val find : t -> ty:Mm_taskgraph.Task_type.t -> pe:Pe.t -> impl option
val find_exn : t -> ty:Mm_taskgraph.Task_type.t -> pe:Pe.t -> impl
(** Raises [Not_found]. *)

val supports : t -> ty:Mm_taskgraph.Task_type.t -> pe:Pe.t -> bool

val supported_pes : t -> ty:Mm_taskgraph.Task_type.t -> Architecture.t -> Pe.t list
(** PEs (in id order) offering an implementation of [ty]. *)

val energy : impl -> float
(** Nominal dynamic energy [dyn_power *. exec_time] (J). *)

val n_entries : t -> int

val iter :
  (ty_id:int -> pe_id:int -> impl -> unit) -> t -> unit

type dispatch
(** A dense, immutable [(ty × pe) → impl option] table: the compile-once
    replacement for {!find}'s balanced-tree lookup on the evaluation hot
    path.  Safe to share across domains. *)

val dispatch : t -> n_types:int -> n_pes:int -> dispatch
(** Flatten the library over task-type ids [0 .. n_types-1] and PE ids
    [0 .. n_pes-1].  Entries outside those ranges are dropped (queries
    for them answer [None], like {!find} on an absent key). *)

val dispatch_find : dispatch -> ty_id:int -> pe_id:int -> impl option
(** Same answers as {!find} keyed by raw ids; O(1). *)
