type t = { name : string; pes : Pe.t array; cls : Cl.t array }

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let make ~name ~pes ~cls =
  let pes = Array.of_list pes in
  let cls = Array.of_list cls in
  if Array.length pes = 0 then invalid "architecture %s has no PEs" name;
  Array.iteri
    (fun i p ->
      if Pe.id p <> i then invalid "architecture %s: pes.(%d) has id %d" name i (Pe.id p))
    pes;
  Array.iteri
    (fun i c ->
      if Cl.id c <> i then invalid "architecture %s: cls.(%d) has id %d" name i (Cl.id c);
      List.iter
        (fun p ->
          if p >= Array.length pes then
            invalid "architecture %s: link %d attaches unknown PE %d" name i p)
        (Cl.connects c))
    cls;
  { name; pes; cls }

let name t = t.name
let n_pes t = Array.length t.pes
let n_cls t = Array.length t.cls
let pe t i = t.pes.(i)
let cl t i = t.cls.(i)
let pes t = Array.to_list t.pes
let cls t = Array.to_list t.cls
let software_pes t = List.filter Pe.is_software (pes t)
let hardware_pes t = List.filter Pe.is_hardware (pes t)
let dvs_pes t = List.filter Pe.is_dvs_enabled (pes t)

let links_between t p q =
  if p = q then []
  else List.filter (fun c -> Cl.links_pes c p q) (cls t)

let fully_connected t =
  let n = n_pes t in
  let ok = ref true in
  for p = 0 to n - 1 do
    for q = p + 1 to n - 1 do
      if links_between t p q = [] then ok := false
    done
  done;
  !ok

let pp ppf t =
  Format.fprintf ppf "arch %s: %d PEs, %d CLs" t.name (n_pes t) (n_cls t)
