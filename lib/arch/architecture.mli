(** The architecture graph G_A(P, L): PEs plus communication links. *)

type t

exception Invalid of string

val make : name:string -> pes:Pe.t list -> cls:Cl.t list -> t
(** Validates: PE/CL ids contiguous from 0 (matching list positions), CL
    attachments reference existing PEs.  Raises {!Invalid} otherwise. *)

val name : t -> string
val n_pes : t -> int
val n_cls : t -> int
val pe : t -> int -> Pe.t
val cl : t -> int -> Cl.t
val pes : t -> Pe.t list
val cls : t -> Cl.t list
val software_pes : t -> Pe.t list
val hardware_pes : t -> Pe.t list
val dvs_pes : t -> Pe.t list

val links_between : t -> int -> int -> Cl.t list
(** All links attaching both PEs (empty when the PEs cannot
    communicate directly).  [links_between t p p] is by convention [[]]:
    intra-PE communication needs no link. *)

val fully_connected : t -> bool
(** Whether every PE pair can communicate over some link. *)

val pp : Format.formatter -> t -> unit
