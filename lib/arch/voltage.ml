type t = { levels : float array; threshold : float }

let make ~levels ~threshold =
  if threshold < 0.0 then invalid_arg "Voltage.make: negative threshold";
  let distinct = List.sort_uniq (fun a b -> compare b a) levels in
  if distinct = [] then invalid_arg "Voltage.make: no levels";
  List.iter
    (fun v ->
      if v <= threshold then
        invalid_arg "Voltage.make: level must exceed threshold")
    distinct;
  { levels = Array.of_list distinct; threshold }

let vmax t = t.levels.(0)
let vmin t = t.levels.(Array.length t.levels - 1)
let levels t = Array.to_list t.levels
let n_levels t = Array.length t.levels

let speed t v = ((v -. t.threshold) ** 2.0) /. v

let delay_factor t v =
  if v <= t.threshold then invalid_arg "Voltage.delay_factor: v <= threshold";
  speed t (vmax t) /. speed t v

let energy_factor t v = (v /. vmax t) ** 2.0
let scaled_time t ~tmin v = tmin *. delay_factor t v
let scaled_energy t ~pmax ~tmin v = pmax *. tmin *. energy_factor t v

let slowest_feasible t ~tmin ~budget =
  let fits v = scaled_time t ~tmin v <= budget +. 1e-12 in
  (* Levels are descending, so the last fitting one is the slowest. *)
  let rec scan best i =
    if i >= Array.length t.levels then best
    else if fits t.levels.(i) then scan (Some t.levels.(i)) (i + 1)
    else best
  in
  scan None 0

let next_lower t v =
  let rec scan i =
    if i >= Array.length t.levels then None
    else if t.levels.(i) < v -. 1e-12 then Some t.levels.(i)
    else scan (i + 1)
  in
  scan 0

let pp ppf t =
  Format.fprintf ppf "rail[Vt=%g; %a]" t.threshold
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       (fun ppf v -> Format.fprintf ppf "%g" v))
    (levels t)
