(** Processing elements π: general-purpose processors, ASIPs, ASICs and
    FPGAs. *)

type kind = Gpp | Asip | Asic | Fpga

type t = private {
  id : int;
  name : string;
  kind : kind;
  static_power : float;  (** P̄stat while the component is powered (W). *)
  rail : Voltage.t option;  (** [Some _] iff the PE is DVS-enabled. *)
  area_capacity : float;
      (** Available core area (cells) for hardware PEs; 0 for software
          PEs. *)
  reconfig_time_per_area : float;
      (** FPGA only: seconds needed to (re)configure one area unit during
          a mode change; 0 for every other kind. *)
}

val make :
  id:int ->
  name:string ->
  kind:kind ->
  static_power:float ->
  ?rail:Voltage.t ->
  ?area_capacity:float ->
  ?reconfig_time_per_area:float ->
  unit ->
  t
(** Raises [Invalid_argument] when: id or a power/area/time value is
    negative; a software PE is given area or reconfiguration cost; a
    hardware PE has no positive area; reconfiguration cost is given for a
    non-FPGA. *)

val id : t -> int
val name : t -> string
val kind : t -> kind
val static_power : t -> float
val rail : t -> Voltage.t option
val area_capacity : t -> float
val reconfig_time_per_area : t -> float
val is_hardware : t -> bool
(** ASIC or FPGA: tasks run on allocated cores and may execute in
    parallel. *)

val is_software : t -> bool
(** GPP or ASIP: tasks are sequentialised. *)

val is_dvs_enabled : t -> bool
val is_reconfigurable : t -> bool
(** FPGA: allocated cores can be exchanged at mode changes. *)

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit
