(** Communication links λ (buses, point-to-point links) connecting PEs. *)

type t = private {
  id : int;
  name : string;
  connects : int list;  (** Ids of the PEs attached to this link (>= 2). *)
  time_per_data : float;
      (** Seconds to transfer one data unit (inverse bandwidth). *)
  transfer_power : float;  (** P_C: dynamic power while transferring (W). *)
  static_power : float;  (** Static power while the link is powered (W). *)
}

val make :
  id:int ->
  name:string ->
  connects:int list ->
  time_per_data:float ->
  transfer_power:float ->
  static_power:float ->
  t
(** Raises [Invalid_argument] for a negative id/power, a non-positive
    [time_per_data], fewer than two distinct attached PEs, or duplicate
    attachments. *)

val id : t -> int
val name : t -> string
val connects : t -> int list
val time_per_data : t -> float
val transfer_power : t -> float
val static_power : t -> float

val links_pes : t -> int -> int -> bool
(** [links_pes cl p q] iff both PE ids are attached. *)

val transfer_time : t -> data:float -> float
(** [data *. time_per_data]. *)

val transfer_energy : t -> data:float -> float
(** [transfer_power *. transfer_time], the paper's P_C(ε) · t_C(ε). *)

val pp : Format.formatter -> t -> unit
