type t = {
  id : int;
  name : string;
  connects : int list;
  time_per_data : float;
  transfer_power : float;
  static_power : float;
}

let make ~id ~name ~connects ~time_per_data ~transfer_power ~static_power =
  if id < 0 then invalid_arg "Cl.make: negative id";
  if time_per_data <= 0.0 then invalid_arg "Cl.make: non-positive time_per_data";
  if transfer_power < 0.0 then invalid_arg "Cl.make: negative transfer power";
  if static_power < 0.0 then invalid_arg "Cl.make: negative static power";
  let distinct = List.sort_uniq Int.compare connects in
  if List.length distinct < 2 then
    invalid_arg "Cl.make: a link must attach at least two distinct PEs";
  if List.length distinct <> List.length connects then
    invalid_arg "Cl.make: duplicate PE attachment";
  List.iter (fun p -> if p < 0 then invalid_arg "Cl.make: negative PE id") distinct;
  { id; name; connects = distinct; time_per_data; transfer_power; static_power }

let id t = t.id
let name t = t.name
let connects t = t.connects
let time_per_data t = t.time_per_data
let transfer_power t = t.transfer_power
let static_power t = t.static_power
let links_pes t p q = List.mem p t.connects && List.mem q t.connects
let transfer_time t ~data = data *. t.time_per_data
let transfer_energy t ~data = t.transfer_power *. transfer_time t ~data

let pp ppf t =
  Format.fprintf ppf "%s#%d(pes=%a)" t.name t.id
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    t.connects
