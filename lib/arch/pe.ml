type kind = Gpp | Asip | Asic | Fpga

type t = {
  id : int;
  name : string;
  kind : kind;
  static_power : float;
  rail : Voltage.t option;
  area_capacity : float;
  reconfig_time_per_area : float;
}

let kind_to_string = function
  | Gpp -> "GPP"
  | Asip -> "ASIP"
  | Asic -> "ASIC"
  | Fpga -> "FPGA"

let make ~id ~name ~kind ~static_power ?rail ?(area_capacity = 0.0)
    ?(reconfig_time_per_area = 0.0) () =
  if id < 0 then invalid_arg "Pe.make: negative id";
  if static_power < 0.0 then invalid_arg "Pe.make: negative static power";
  if area_capacity < 0.0 then invalid_arg "Pe.make: negative area";
  if reconfig_time_per_area < 0.0 then invalid_arg "Pe.make: negative reconfig time";
  (match kind with
  | Gpp | Asip ->
    if area_capacity > 0.0 then
      invalid_arg "Pe.make: software PE cannot have core area";
    if reconfig_time_per_area > 0.0 then
      invalid_arg "Pe.make: software PE cannot have reconfiguration cost"
  | Asic ->
    if area_capacity <= 0.0 then
      invalid_arg "Pe.make: hardware PE needs positive area";
    if reconfig_time_per_area > 0.0 then
      invalid_arg "Pe.make: ASIC cores are static (no reconfiguration)"
  | Fpga ->
    if area_capacity <= 0.0 then
      invalid_arg "Pe.make: hardware PE needs positive area");
  { id; name; kind; static_power; rail; area_capacity; reconfig_time_per_area }

let id t = t.id
let name t = t.name
let kind t = t.kind
let static_power t = t.static_power
let rail t = t.rail
let area_capacity t = t.area_capacity
let reconfig_time_per_area t = t.reconfig_time_per_area

let is_hardware t = match t.kind with Asic | Fpga -> true | Gpp | Asip -> false
let is_software t = not (is_hardware t)
let is_dvs_enabled t = Option.is_some t.rail
let is_reconfigurable t = t.kind = Fpga

let pp ppf t =
  Format.fprintf ppf "%s#%d(%s%s%s)" t.name t.id (kind_to_string t.kind)
    (if is_dvs_enabled t then ",DVS" else "")
    (if is_hardware t then Printf.sprintf ",area=%g" t.area_capacity else "")
