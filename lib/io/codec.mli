(** Serialising co-synthesis problems and mappings to S-expressions.

    The textual format captures a complete {!Mm_cosynth.Spec.t} — task
    types, architecture (PEs with rails, links), technology library, and
    the OMSM (modes with task graphs, transitions) — plus multi-mode
    mapping strings, so benchmarks and synthesis results can be stored,
    versioned and exchanged.  [spec_of_sexp (spec_to_sexp s)] rebuilds a
    structurally identical specification. *)

exception Decode_error of string

val spec_to_sexp : Mm_cosynth.Spec.t -> Sexp.t
val spec_of_sexp : Sexp.t -> Mm_cosynth.Spec.t
(** Raises {!Decode_error} with a descriptive message on malformed
    input. *)

val spec_to_string : Mm_cosynth.Spec.t -> string

val spec_of_string : string -> Mm_cosynth.Spec.t
(** Raises {!Decode_error}; thin wrapper over
    {!spec_of_string_result}. *)

(* The total API: decode failures and semantic violations come back as
   [Mm_cosynth.Validate] diagnostics (stable MM0xx codes, source
   positions), never as exceptions. *)

val spec_of_string_result :
  string -> (Mm_cosynth.Spec.t, Mm_cosynth.Validate.diag list) result
(** [Error] on any error-severity diagnostic; warnings alone still
    produce [Ok] (use {!check_string} to see them). *)

val load_spec_result :
  path:string -> (Mm_cosynth.Spec.t, Mm_cosynth.Validate.diag list) result
(** Like {!spec_of_string_result}, reading [path]; an unreadable file is
    the [MM006] diagnostic. *)

val check_string :
  string -> Mm_cosynth.Spec.t option * Mm_cosynth.Validate.diag list
(** Every diagnostic of the input — parse, decode and semantic, warnings
    included — plus the spec whenever the constructors can still build
    one (even under error-severity diagnostics: the [--force] path). *)

val check_file :
  path:string -> Mm_cosynth.Spec.t option * Mm_cosynth.Validate.diag list

val mapping_to_sexp : Mm_cosynth.Mapping.t -> Sexp.t
val mapping_of_sexp : spec:Mm_cosynth.Spec.t -> Sexp.t -> Mm_cosynth.Mapping.t
(** Validates against [spec] (mode/task counts, supported PEs). *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)

val write_file_atomic : string -> string -> unit
(** Write-then-rename: readers see either the previous contents or the
    new ones, never a torn file.  The temporary sibling's name carries
    the pid and a process-wide counter, so concurrent writers — other
    jobs of one daemon, or other processes sharing the directory — can
    never collide on it before the rename.  An orphaned [*.tmp] after a
    crash is inert and may be deleted freely. *)

val read_file : string -> string

val save_spec : path:string -> Mm_cosynth.Spec.t -> unit
val load_spec : path:string -> Mm_cosynth.Spec.t
