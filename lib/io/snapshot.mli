(** Durable snapshots of interrupted synthesis work.

    A snapshot file carries one {!payload} — the full
    {!Mm_cosynth.Synthesis.run_state} of a single synthesis run, or the
    {!Mm_cosynth.Experiment.state} of a baseline-vs-proposed comparison
    — wrapped in a header with a format version and a fingerprint of the
    specification the run was working on.  Loading refuses a snapshot
    whose version this build does not understand or whose fingerprint
    does not match the given specification, with a typed {!error} (never
    an exception from the S-expression internals).

    Writes are atomic ({!Codec.write_file_atomic}: a uniquely named
    [.tmp] sibling, then [rename]), so a crash mid-checkpoint never
    corrupts the previous snapshot and concurrent writers never collide.

    Format (S-expression, human-readable):
    {v
    (mmsyn-snapshot
      (version 2)
      (spec fnv1a64:<16 hex digits>)
      (payload (synth ...) | (compare ...)))
    v}

    An in-flight single-engine restart is stored as the [(engine ...)]
    field of the synth payload; an in-flight island-model restart
    (version 2) as [(islands (ring ...) (island ...) ...)] — the ring
    permutation plus one engine section per island, in island index
    order.  Version-1 snapshots (no [islands] field) are still read.

    PRNG states are 64-bit words and appear as decimal atoms; floats are
    printed with {!Sexp.float}, which round-trips bit-exactly. *)

val format_version : int
(** The version this build writes (currently 2); reads back to
    {!min_format_version}. *)

val min_format_version : int
(** The oldest format version this build still reads (currently 1). *)

type payload =
  | Synth of Mm_cosynth.Synthesis.run_state
  | Compare of Mm_cosynth.Experiment.state

type error =
  | Io_error of string  (** File could not be read. *)
  | Malformed of string
      (** Unparseable or structurally wrong content (truncated file,
          corrupted bytes, missing fields). *)
  | Version_mismatch of { found : int }
      (** Header carries a format version this build does not read;
          nothing past the header is decoded. *)
  | Spec_mismatch of { found : string; expected : string }
      (** The snapshot belongs to a different specification. *)

val error_to_string : error -> string

val fingerprint : Mm_cosynth.Spec.t -> string
(** FNV-1a 64-bit digest of the specification's canonical textual form
    ({!Codec.spec_to_string}), as stored in the snapshot header. *)

val to_string : spec:Mm_cosynth.Spec.t -> payload -> string
(** Encode a snapshot document (including header) for [spec]. *)

val of_string : spec:Mm_cosynth.Spec.t -> string -> (payload, error) result
(** Decode a snapshot document, verifying its header against [spec].
    Total: every failure mode maps to an {!error}. *)

val save : ?keep:int -> path:string -> spec:Mm_cosynth.Spec.t -> payload -> unit
(** Atomically write the snapshot to [path] (via
    {!Codec.write_file_atomic}).  Raises [Sys_error] when the directory
    is not writable.

    With [keep > 1] (default 1: the pre-rotation behaviour), the
    previous snapshot is first rotated into a generation chain —
    [path] becomes [path.1], [path.1] becomes [path.2], … up to
    [path.(keep-1)], oldest dropped — each step a single atomic
    [rename], so a corrupted newest generation never erases the last
    good state. *)

val load : path:string -> spec:Mm_cosynth.Spec.t -> (payload, error) result

type scan = {
  found : (payload * int) option;
      (** The newest generation that decodes, with its index (0 =
          [path] itself, [i] = [path.i]); [None] when no generation
          does. *)
  quarantined : string list;
      (** Corrupt generations renamed aside during this scan (their
          new [*.corrupt] paths), newest first. *)
}

val load_latest :
  ?max_index:int ->
  ?quarantine:bool ->
  path:string ->
  spec:Mm_cosynth.Spec.t ->
  unit ->
  scan
(** Scan the generation chain [path], [path.1], … (up to [max_index],
    default 16) for the newest snapshot that still decodes.  Missing
    generations are skipped (rotation crash gaps are legal).  A
    {e malformed} generation — truncated or garbage bytes — is
    renamed to [<file>.corrupt] when [quarantine] is set, so the next
    startup never re-reads it; version- or spec-mismatched files are
    skipped but left untouched (they are somebody else's data, not
    corruption).  Total: never raises on file content. *)

val synth_sink :
  ?keep:int ->
  path:string ->
  spec:Mm_cosynth.Spec.t ->
  every:int ->
  unit ->
  Mm_cosynth.Synthesis.checkpoint_sink
(** A {!Mm_cosynth.Synthesis.checkpoint_sink} that {!save}s a [Synth]
    snapshot to [path] every [every] generations (and after every
    completed restart), rotating [keep] generations (default 1: no
    rotation). *)
