module Engine = Mm_ga.Engine
module Synthesis = Mm_cosynth.Synthesis
module Experiment = Mm_cosynth.Experiment

(* Version 2 added the island-model [islands] payload field (PR 8); a
   single-engine state still writes the version-1 [engine] field shape,
   and version-1 snapshots are accepted on read. *)
let format_version = 2

let min_format_version = 1

type payload =
  | Synth of Synthesis.run_state
  | Compare of Experiment.state

type error =
  | Io_error of string
  | Malformed of string
  | Version_mismatch of { found : int }
  | Spec_mismatch of { found : string; expected : string }

let error_to_string = function
  | Io_error message -> "snapshot i/o error: " ^ message
  | Malformed message -> "malformed snapshot: " ^ message
  | Version_mismatch { found } ->
    Printf.sprintf
      "snapshot format version %d is not supported (this build reads versions %d-%d)"
      found min_format_version format_version
  | Spec_mismatch { found; expected } ->
    Printf.sprintf
      "snapshot was taken against a different specification (fingerprint %s, \
       this specification is %s)"
      found expected

(* FNV-1a 64-bit over the specification's canonical text: cheap, stable
   across processes and builds, and any structural change to the spec
   changes the canonical text and hence the fingerprint. *)
let fingerprint spec =
  let text = Codec.spec_to_string spec in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    text;
  Printf.sprintf "fnv1a64:%016Lx" !h

(* --- encoding ---

   PRNG states are full 64-bit words, which do not fit OCaml's native
   63-bit [int]; they are carried as decimal atoms and parsed with
   [Int64.of_string_opt].  Floats go through [Sexp.float], which
   round-trips every finite value, infinities and NaN exactly. *)

let sexp_int64 v = Sexp.atom (Int64.to_string v)
let sexp_ints a = Sexp.List (List.map Sexp.int (Array.to_list a))
let sexp_member (genome, fitness) = Sexp.List [ sexp_ints genome; Sexp.float fitness ]

let engine_fields (ck : Engine.checkpoint) =
  [
    Sexp.field "generation" [ Sexp.int ck.Engine.generation ];
    Sexp.field "rng" [ sexp_int64 ck.Engine.rng_state ];
    Sexp.field "stagnation" [ Sexp.int ck.Engine.stagnation ];
    Sexp.field "evaluations" [ Sexp.int ck.Engine.evaluations ];
    Sexp.field "cache-hits" [ Sexp.int ck.Engine.cache_hits ];
    Sexp.field "history" (List.map Sexp.float ck.Engine.history);
    Sexp.field "best" [ sexp_member ck.Engine.best ];
    Sexp.field "members" (List.map sexp_member (Array.to_list ck.Engine.members));
  ]

let restart_to_sexp (s : Synthesis.restart_summary) =
  Sexp.List
    [
      Sexp.field "genome" [ sexp_ints s.Synthesis.r_genome ];
      Sexp.field "fitness" [ Sexp.float s.r_fitness ];
      Sexp.field "generations" [ Sexp.int s.r_generations ];
      Sexp.field "evaluations" [ Sexp.int s.r_evaluations ];
      Sexp.field "cache-hits" [ Sexp.int s.r_cache_hits ];
      Sexp.field "history" (List.map Sexp.float s.r_history);
    ]

let synth_to_sexp (state : Synthesis.run_state) =
  Sexp.field "synth"
    ([
       Sexp.field "seed" [ Sexp.int state.Synthesis.seed ];
       Sexp.field "config" [ Sexp.atom state.fingerprint ];
       Sexp.field "next-restart" [ Sexp.int state.next_restart ];
       Sexp.field "outer-rng" [ sexp_int64 state.outer_rng ];
       Sexp.field "completed" (List.map restart_to_sexp state.completed);
     ]
    @ match state.engine with
      | None -> []
      | Some (Synthesis.Single ck) -> [ Sexp.field "engine" (engine_fields ck) ]
      | Some (Synthesis.Sharded ck) ->
        (* Version-2 field: the ring permutation plus one (island ...)
           section per member, in island index order. *)
        [
          Sexp.field "islands"
            (Sexp.field "ring" [ sexp_ints ck.Mm_ga.Islands.ring ]
            :: List.map
                 (fun eck -> Sexp.field "island" (engine_fields eck))
                 (Array.to_list ck.Mm_ga.Islands.members));
        ])

let run_to_sexp (s : Experiment.run_summary) =
  Sexp.List
    [
      Sexp.field "genome" [ sexp_ints s.Experiment.genome ];
      Sexp.field "power" [ Sexp.float s.power ];
      Sexp.field "cpu-seconds" [ Sexp.float s.cpu_seconds ];
      Sexp.field "generations" [ Sexp.int s.generations ];
      Sexp.field "evaluations" [ Sexp.int s.evaluations ];
      Sexp.field "cache-hits" [ Sexp.int s.cache_hits ];
      Sexp.field "history" (List.map Sexp.float s.history);
    ]

let compare_to_sexp (state : Experiment.state) =
  Sexp.field "compare"
    [
      Sexp.field "seed" [ Sexp.int state.Experiment.seed ];
      Sexp.field "runs" [ Sexp.int state.runs ];
      Sexp.field "baseline" (List.map run_to_sexp state.baseline_done);
      Sexp.field "proposed" (List.map run_to_sexp state.proposed_done);
    ]

let to_string ~spec payload =
  let body =
    match payload with
    | Synth state -> synth_to_sexp state
    | Compare state -> compare_to_sexp state
  in
  Sexp.to_string
    (Sexp.List
       [
         Sexp.atom "mmsyn-snapshot";
         Sexp.field "version" [ Sexp.int format_version ];
         Sexp.field "spec" [ Sexp.atom (fingerprint spec) ];
         Sexp.field "payload" [ body ];
       ])
  ^ "\n"

(* --- decoding ---

   Every helper below raises [Failure] on shape mismatch (as the [Sexp]
   destructors do); [of_string] catches them all and returns a typed
   [Malformed] — callers never see an exception from the codec's
   internals. *)

let one name fields =
  match Sexp.assoc name fields with
  | [ v ] -> v
  | _ -> failwith (name ^ ": expected exactly one value")

let as_int64 s =
  match Int64.of_string_opt (Sexp.as_atom s) with
  | Some v -> v
  | None -> failwith "expected a 64-bit integer atom"

let as_ints s = Array.of_list (List.map Sexp.as_int (Sexp.as_list s))

let as_member s =
  match Sexp.as_list s with
  | [ genome; fitness ] -> (as_ints genome, Sexp.as_float fitness)
  | _ -> failwith "member: expected (genome fitness)"

let engine_of_fields fields : Engine.checkpoint =
  {
    Engine.generation = Sexp.as_int (one "generation" fields);
    rng_state = as_int64 (one "rng" fields);
    stagnation = Sexp.as_int (one "stagnation" fields);
    evaluations = Sexp.as_int (one "evaluations" fields);
    cache_hits = Sexp.as_int (one "cache-hits" fields);
    history = List.map Sexp.as_float (Sexp.assoc "history" fields);
    best = as_member (one "best" fields);
    members = Array.of_list (List.map as_member (Sexp.assoc "members" fields));
  }

let restart_of_sexp s : Synthesis.restart_summary =
  let fields = Sexp.as_list s in
  {
    Synthesis.r_genome = as_ints (one "genome" fields);
    r_fitness = Sexp.as_float (one "fitness" fields);
    r_generations = Sexp.as_int (one "generations" fields);
    r_evaluations = Sexp.as_int (one "evaluations" fields);
    r_cache_hits = Sexp.as_int (one "cache-hits" fields);
    r_history = List.map Sexp.as_float (Sexp.assoc "history" fields);
  }

let islands_of_fields fields : Mm_ga.Islands.checkpoint =
  {
    Mm_ga.Islands.ring = as_ints (one "ring" fields);
    members =
      Array.of_list (List.map engine_of_fields (Sexp.assoc_all "island" fields));
  }

let engine_state_of_fields fields : Synthesis.engine_state option =
  match (Sexp.assoc_opt "engine" fields, Sexp.assoc_opt "islands" fields) with
  | Some _, Some _ -> failwith "snapshot carries both engine and islands state"
  | Some e, None -> Some (Synthesis.Single (engine_of_fields e))
  | None, Some i -> Some (Synthesis.Sharded (islands_of_fields i))
  | None, None -> None

let synth_of_fields fields : Synthesis.run_state =
  {
    Synthesis.seed = Sexp.as_int (one "seed" fields);
    fingerprint = Sexp.as_atom (one "config" fields);
    next_restart = Sexp.as_int (one "next-restart" fields);
    outer_rng = as_int64 (one "outer-rng" fields);
    completed = List.map restart_of_sexp (Sexp.assoc "completed" fields);
    engine = engine_state_of_fields fields;
  }

let run_of_sexp s : Experiment.run_summary =
  let fields = Sexp.as_list s in
  {
    Experiment.genome = as_ints (one "genome" fields);
    power = Sexp.as_float (one "power" fields);
    cpu_seconds = Sexp.as_float (one "cpu-seconds" fields);
    generations = Sexp.as_int (one "generations" fields);
    evaluations = Sexp.as_int (one "evaluations" fields);
    cache_hits = Sexp.as_int (one "cache-hits" fields);
    history = List.map Sexp.as_float (Sexp.assoc "history" fields);
  }

let compare_of_fields fields : Experiment.state =
  {
    Experiment.seed = Sexp.as_int (one "seed" fields);
    runs = Sexp.as_int (one "runs" fields);
    baseline_done = List.map run_of_sexp (Sexp.assoc "baseline" fields);
    proposed_done = List.map run_of_sexp (Sexp.assoc "proposed" fields);
  }

let of_string ~spec text =
  match Sexp.parse_one text with
  | exception Sexp.Parse_error { line; column; message } ->
    Error (Malformed (Printf.sprintf "parse error at %d:%d: %s" line column message))
  | exception Failure message -> Error (Malformed message)
  | exception Sexp.Type_error { message; _ } -> Error (Malformed message)
  | sexp -> (
    try
      let fields =
        match sexp with
        | Sexp.List (Sexp.Atom "mmsyn-snapshot" :: fields) -> fields
        | _ -> failwith "not an mmsyn-snapshot"
      in
      (* Version gates everything else: a future format may change the
         payload shape arbitrarily, so nothing past the header is
         decoded for a version this build does not understand. *)
      let version = Sexp.as_int (one "version" fields) in
      if version < min_format_version || version > format_version then
        Error (Version_mismatch { found = version })
      else
        let found = Sexp.as_atom (one "spec" fields) in
        let expected = fingerprint spec in
        if not (String.equal found expected) then
          Error (Spec_mismatch { found; expected })
        else
          match one "payload" fields with
          | Sexp.List (Sexp.Atom "synth" :: args) -> Ok (Synth (synth_of_fields args))
          | Sexp.List (Sexp.Atom "compare" :: args) ->
            Ok (Compare (compare_of_fields args))
          | _ -> failwith "payload: expected (synth ...) or (compare ...)"
    with
    | Failure message -> Error (Malformed message)
    | Sexp.Type_error { message; _ } -> Error (Malformed message))

(* Chaos sites (no-ops unless a plan is armed): a snapshot write that
   fails outright as the filesystem would under ENOSPC, and a torn
   write that leaves a truncated prefix where the snapshot should be —
   the two corruptions rotation + quarantine exist to absorb. *)
let site_enospc = Mm_fault.Fault.site "snapshot.enospc"
let site_short_write = Mm_fault.Fault.site "snapshot.short_write"

let generation_path path i =
  if i = 0 then path else Printf.sprintf "%s.%d" path i

(* Shift the existing generations one slot older ([path] -> [path.1]
   -> ... -> [path.(keep-1)], oldest dropped) so the write below lands
   in a fresh slot 0.  Each step is a single [rename]: a crash at any
   instant leaves every generation either where it was or one slot
   older, never torn, and [load_latest] tolerates the gap. *)
let rotate ~path ~keep =
  if keep > 1 && Sys.file_exists path then begin
    (try Sys.remove (generation_path path (keep - 1)) with Sys_error _ -> ());
    for i = keep - 2 downto 1 do
      let src = generation_path path i in
      if Sys.file_exists src then Sys.rename src (generation_path path (i + 1))
    done;
    Sys.rename path (generation_path path 1)
  end

(* Write-then-rename ([Codec.write_file_atomic]): a crash mid-write
   leaves either the previous snapshot or the new one, never a torn
   file, and the pid+counter tmp names cannot collide across the
   daemon's concurrent jobs.  A [*.tmp] orphaned by a crash is inert.
   [keep] > 1 additionally rotates the previous snapshot into a
   generation chain first, so one corrupted write never erases the
   last good state. *)
let save ?(keep = 1) ~path ~spec payload =
  if Mm_fault.Fault.fire site_enospc then
    raise (Sys_error (path ^ ": no space left on device (chaos)"));
  let text = to_string ~spec payload in
  rotate ~path ~keep;
  if Mm_fault.Fault.fire site_short_write then begin
    (* A torn write: a truncated prefix lands at the final path without
       the atomic-rename discipline, exactly what a crashed kernel or a
       full disk can leave behind.  Recovery must quarantine it and
       fall back to the rotated generation behind it. *)
    let oc = open_out_bin path in
    output_string oc (String.sub text 0 (String.length text / 3));
    close_out oc
  end
  else Codec.write_file_atomic path text

let load ~path ~spec =
  match Codec.read_file path with
  | exception Sys_error message -> Error (Io_error message)
  | text -> of_string ~spec text

type scan = {
  found : (payload * int) option;
  quarantined : string list;
}

let max_scan_generations = 16

let load_latest ?(max_index = max_scan_generations) ?(quarantine = false) ~path
    ~spec () =
  let quarantined = ref [] in
  let rec scan i =
    if i > max_index then None
    else
      let p = generation_path path i in
      if not (Sys.file_exists p) then scan (i + 1)
      else
        match load ~path:p ~spec with
        | Ok payload -> Some (payload, i)
        | Error (Malformed _) ->
          (* Corrupted bytes: quarantine so the poisoned file can never
             be picked up again (and so operators can autopsy it), then
             fall back to the next-older generation. *)
          if quarantine then begin
            let corrupt = p ^ ".corrupt" in
            (try Sys.rename p corrupt with Sys_error _ -> ());
            quarantined := corrupt :: !quarantined
          end;
          scan (i + 1)
        | Error (Io_error _ | Version_mismatch _ | Spec_mismatch _) ->
          (* Unreadable, foreign-format or foreign-spec files are left
             untouched — they are not corruption, just not ours to
             resume from. *)
          scan (i + 1)
  in
  let found = scan 0 in
  { found; quarantined = List.rev !quarantined }

let synth_sink ?(keep = 1) ~path ~spec ~every () =
  { Synthesis.every; save = (fun state -> save ~keep ~path ~spec (Synth state)) }
