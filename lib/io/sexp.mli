(** Minimal S-expressions: the on-disk syntax for specifications and
    mappings (no external dependency).

    Grammar: atoms are bare words or double-quoted strings with
    backslash escapes for the quote, the backslash and newline; lists are
    parenthesised; a semicolon starts a comment running to end of
    line. *)

type t = Atom of string | List of t list

type pos = { line : int; column : int }
(** A 1-based source position. *)

exception Parse_error of { line : int; column : int; message : string }

type type_error_kind =
  | Shape  (** An atom/integer/float/list was expected, something else found. *)
  | Missing_field
  | Duplicate_field

exception Type_error of { pos : pos option; kind : type_error_kind; message : string }
(** Raised by every destructuring helper below; [pos] is the offending
    node's position for the located helpers, [None] for the plain ones. *)

val parse : string -> t list
(** All top-level expressions of the input.  Raises {!Parse_error}. *)

val parse_one : string -> t
(** Exactly one top-level expression.  Raises {!Parse_error} when the
    input holds zero or several; an empty input (including one that is
    nothing but blanks and comments) reports the true end-of-input
    position, several expressions report where the second one starts. *)

type located = { value : lvalue; pos : pos }
and lvalue = L_atom of string | L_list of located list
(** A position-annotated expression: what {!parse} produces, with each
    atom and list carrying the line/column it started at. *)

val parse_located : string -> located list
val parse_one_located : string -> located

val strip : located -> t
(** Forget the positions. *)

val to_string : ?indent:int -> t -> string
(** Pretty-print with line breaks for nested lists ([indent] defaults to
    2 spaces per level). *)

(* Construction helpers. *)

val atom : string -> t
val int : int -> t
val float : float -> t
(** Round-trip safe ("%h"-free shortest representation via "%.17g"). *)

val field : string -> t list -> t
(** [field "name" args] is [List (Atom "name" :: args)]. *)

(* Destructuring helpers; all raise {!Type_error} on shape mismatch. *)

val as_atom : t -> string
val as_int : t -> int
val as_float : t -> float
val as_list : t -> t list

val assoc : string -> t list -> t list
(** [assoc name fields] returns the arguments of the unique field
    [(name …)] among [fields]; raises {!Type_error} when absent. *)

val assoc_opt : string -> t list -> t list option
val assoc_all : string -> t list -> t list list
(** Arguments of every [(name …)] field, in order. *)

(* The same destructors over located expressions; every failure reports
   the offending node's line/column.  [~pos] is the enclosing entity's
   position, used when a field is missing outright. *)

val l_as_atom : located -> string
val l_as_int : located -> int
val l_as_float : located -> float
val l_as_list : located -> located list
val l_assoc : pos:pos -> string -> located list -> located list
val l_assoc_opt : pos:pos -> string -> located list -> located list option
val l_assoc_all : string -> located list -> (pos * located list) list
val l_one : pos:pos -> string -> located list -> located
(** The unique field's single value. *)
