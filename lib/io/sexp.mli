(** Minimal S-expressions: the on-disk syntax for specifications and
    mappings (no external dependency).

    Grammar: atoms are bare words or double-quoted strings with
    backslash escapes for the quote, the backslash and newline; lists are
    parenthesised; a semicolon starts a comment running to end of
    line. *)

type t = Atom of string | List of t list

exception Parse_error of { line : int; column : int; message : string }

val parse : string -> t list
(** All top-level expressions of the input.  Raises {!Parse_error}. *)

val parse_one : string -> t
(** Exactly one top-level expression.  Raises {!Parse_error} when the
    input holds zero or several. *)

val to_string : ?indent:int -> t -> string
(** Pretty-print with line breaks for nested lists ([indent] defaults to
    2 spaces per level). *)

(* Construction helpers. *)

val atom : string -> t
val int : int -> t
val float : float -> t
(** Round-trip safe ("%h"-free shortest representation via "%.17g"). *)

val field : string -> t list -> t
(** [field "name" args] is [List (Atom "name" :: args)]. *)

(* Destructuring helpers; all raise [Failure] with a path-aware message
   on shape mismatch. *)

val as_atom : t -> string
val as_int : t -> int
val as_float : t -> float
val as_list : t -> t list

val assoc : string -> t list -> t list
(** [assoc name fields] returns the arguments of the unique field
    [(name …)] among [fields]; raises [Failure] when absent. *)

val assoc_opt : string -> t list -> t list option
val assoc_all : string -> t list -> t list list
(** Arguments of every [(name …)] field, in order. *)
