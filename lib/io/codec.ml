module Task_type = Mm_taskgraph.Task_type
module Task = Mm_taskgraph.Task
module Graph = Mm_taskgraph.Graph
module Voltage = Mm_arch.Voltage
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Arch = Mm_arch.Architecture
module Tech_lib = Mm_arch.Tech_lib
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Omsm = Mm_omsm.Omsm
module Spec = Mm_cosynth.Spec
module Mapping = Mm_cosynth.Mapping
open Sexp

exception Decode_error of string

let decode_error fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let guarded name f sexp =
  try f sexp with
  | Failure message -> decode_error "%s: %s" name message
  | Invalid_argument message -> decode_error "%s: %s" name message
  | Graph.Invalid message -> decode_error "%s: %s" name message
  | Arch.Invalid message -> decode_error "%s: %s" name message
  | Omsm.Invalid message -> decode_error "%s: %s" name message
  | Spec.Invalid message -> decode_error "%s: %s" name message

(* --- Types ------------------------------------------------------------- *)

let type_to_sexp ty =
  field "type" [ field "id" [ int (Task_type.id ty) ]; field "name" [ atom (Task_type.name ty) ] ]

let type_of_fields fields =
  Task_type.make
    ~id:(as_int (List.hd (assoc "id" fields)))
    ~name:(as_atom (List.hd (assoc "name" fields)))

(* --- Architecture -------------------------------------------------------- *)

let rail_to_sexp rail =
  field "rail"
    [
      field "threshold" [ float rail.Voltage.threshold ];
      field "levels" (List.map float (Voltage.levels rail));
    ]

let rail_of_fields fields =
  Voltage.make
    ~threshold:(as_float (List.hd (assoc "threshold" fields)))
    ~levels:(List.map as_float (assoc "levels" fields))

let pe_to_sexp pe =
  let base =
    [
      field "id" [ int (Pe.id pe) ];
      field "name" [ atom (Pe.name pe) ];
      field "kind" [ atom (String.lowercase_ascii (Pe.kind_to_string pe.Pe.kind)) ];
      field "static-power" [ float (Pe.static_power pe) ];
    ]
  in
  let rail = match Pe.rail pe with Some r -> [ rail_to_sexp r ] | None -> [] in
  let area =
    if Pe.is_hardware pe then [ field "area" [ float (Pe.area_capacity pe) ] ] else []
  in
  let reconfig =
    if Pe.reconfig_time_per_area pe > 0.0 then
      [ field "reconfig-time-per-area" [ float (Pe.reconfig_time_per_area pe) ] ]
    else []
  in
  field "pe" (base @ rail @ area @ reconfig)

let kind_of_string = function
  | "gpp" -> Pe.Gpp
  | "asip" -> Pe.Asip
  | "asic" -> Pe.Asic
  | "fpga" -> Pe.Fpga
  | other -> decode_error "unknown PE kind %S" other

let pe_of_fields fields =
  let rail = Option.map rail_of_fields (assoc_opt "rail" fields) in
  let area = Option.map (fun a -> as_float (List.hd a)) (assoc_opt "area" fields) in
  let reconfig =
    Option.map (fun a -> as_float (List.hd a)) (assoc_opt "reconfig-time-per-area" fields)
  in
  Pe.make
    ~id:(as_int (List.hd (assoc "id" fields)))
    ~name:(as_atom (List.hd (assoc "name" fields)))
    ~kind:(kind_of_string (as_atom (List.hd (assoc "kind" fields))))
    ~static_power:(as_float (List.hd (assoc "static-power" fields)))
    ?rail
    ?area_capacity:area
    ?reconfig_time_per_area:reconfig ()

let cl_to_sexp cl =
  field "cl"
    [
      field "id" [ int (Cl.id cl) ];
      field "name" [ atom (Cl.name cl) ];
      field "connects" (List.map int (Cl.connects cl));
      field "time-per-data" [ float (Cl.time_per_data cl) ];
      field "transfer-power" [ float (Cl.transfer_power cl) ];
      field "static-power" [ float (Cl.static_power cl) ];
    ]

let cl_of_fields fields =
  Cl.make
    ~id:(as_int (List.hd (assoc "id" fields)))
    ~name:(as_atom (List.hd (assoc "name" fields)))
    ~connects:(List.map as_int (assoc "connects" fields))
    ~time_per_data:(as_float (List.hd (assoc "time-per-data" fields)))
    ~transfer_power:(as_float (List.hd (assoc "transfer-power" fields)))
    ~static_power:(as_float (List.hd (assoc "static-power" fields)))

let architecture_to_sexp arch =
  field "architecture"
    ((field "name" [ atom (Arch.name arch) ] :: List.map pe_to_sexp (Arch.pes arch))
    @ List.map cl_to_sexp (Arch.cls arch))

let architecture_of_fields fields =
  Arch.make
    ~name:(as_atom (List.hd (assoc "name" fields)))
    ~pes:(List.map pe_of_fields (assoc_all "pe" fields))
    ~cls:(List.map cl_of_fields (assoc_all "cl" fields))

(* --- Technology library --------------------------------------------------- *)

let tech_to_sexp tech =
  let entries = ref [] in
  Tech_lib.iter
    (fun ~ty_id ~pe_id impl ->
      let base =
        [
          field "type" [ int ty_id ];
          field "pe" [ int pe_id ];
          field "time" [ float impl.Tech_lib.exec_time ];
          field "power" [ float impl.Tech_lib.dyn_power ];
        ]
      in
      let area =
        if impl.Tech_lib.area > 0.0 then [ field "area" [ float impl.Tech_lib.area ] ]
        else []
      in
      entries := field "impl" (base @ area) :: !entries)
    tech;
  field "technology" (List.rev !entries)

let tech_of_fields ~types_by_id ~arch fields =
  List.fold_left
    (fun tech entry ->
      let ty_id = as_int (List.hd (assoc "type" entry)) in
      let pe_id = as_int (List.hd (assoc "pe" entry)) in
      let ty =
        match Hashtbl.find_opt types_by_id ty_id with
        | Some ty -> ty
        | None -> decode_error "technology entry references unknown type %d" ty_id
      in
      if pe_id < 0 || pe_id >= Arch.n_pes arch then
        decode_error "technology entry references unknown PE %d" pe_id;
      let area = Option.map (fun a -> as_float (List.hd a)) (assoc_opt "area" entry) in
      Tech_lib.add tech ~ty ~pe:(Arch.pe arch pe_id)
        (Tech_lib.impl
           ~exec_time:(as_float (List.hd (assoc "time" entry)))
           ~dyn_power:(as_float (List.hd (assoc "power" entry)))
           ?area ()))
    Tech_lib.empty (assoc_all "impl" fields)

(* --- Modes ------------------------------------------------------------------ *)

let task_to_sexp task =
  let base =
    [
      field "id" [ int (Task.id task) ];
      field "name" [ atom (Task.name task) ];
      field "type" [ int (Task_type.id (Task.ty task)) ];
    ]
  in
  let deadline =
    match Task.deadline task with
    | Some d -> [ field "deadline" [ float d ] ]
    | None -> []
  in
  field "task" (base @ deadline)

let task_of_fields ~types_by_id fields =
  let ty_id = as_int (List.hd (assoc "type" fields)) in
  let ty =
    match Hashtbl.find_opt types_by_id ty_id with
    | Some ty -> ty
    | None -> decode_error "task references unknown type %d" ty_id
  in
  let deadline = Option.map (fun a -> as_float (List.hd a)) (assoc_opt "deadline" fields) in
  Task.make
    ~id:(as_int (List.hd (assoc "id" fields)))
    ~name:(as_atom (List.hd (assoc "name" fields)))
    ~ty ?deadline ()

let edge_to_sexp (e : Graph.edge) =
  field "edge"
    [ field "src" [ int e.src ]; field "dst" [ int e.dst ]; field "data" [ float e.data ] ]

let edge_of_fields fields =
  {
    Graph.src = as_int (List.hd (assoc "src" fields));
    dst = as_int (List.hd (assoc "dst" fields));
    data = as_float (List.hd (assoc "data" fields));
  }

let mode_to_sexp mode =
  let graph = Mode.graph mode in
  field "mode"
    [
      field "id" [ int (Mode.id mode) ];
      field "name" [ atom (Mode.name mode) ];
      field "period" [ float (Mode.period mode) ];
      field "probability" [ float (Mode.probability mode) ];
      field "tasks" (Array.to_list (Array.map task_to_sexp (Graph.tasks graph)));
      field "edges" (List.map edge_to_sexp (Graph.edges graph));
    ]

let mode_of_fields ~types_by_id fields =
  let name = as_atom (List.hd (assoc "name" fields)) in
  let tasks =
    assoc "tasks" fields
    |> List.map (fun t -> task_of_fields ~types_by_id (as_list t |> List.tl))
    |> Array.of_list
  in
  let edges =
    assoc "edges" fields |> List.map (fun e -> edge_of_fields (as_list e |> List.tl))
  in
  Mode.make
    ~id:(as_int (List.hd (assoc "id" fields)))
    ~name
    ~graph:(Graph.make ~name ~tasks ~edges)
    ~period:(as_float (List.hd (assoc "period" fields)))
    ~probability:(as_float (List.hd (assoc "probability" fields)))

let transition_to_sexp tr =
  field "transition"
    [
      field "src" [ int (Transition.src tr) ];
      field "dst" [ int (Transition.dst tr) ];
      field "max-time" [ float (Transition.max_time tr) ];
    ]

let transition_of_fields fields =
  Transition.make
    ~src:(as_int (List.hd (assoc "src" fields)))
    ~dst:(as_int (List.hd (assoc "dst" fields)))
    ~max_time:(as_float (List.hd (assoc "max-time" fields)))

(* --- Spec ---------------------------------------------------------------------- *)

let spec_to_sexp spec =
  let omsm = Spec.omsm spec in
  let types =
    Task_type.Set.elements (Omsm.all_task_types omsm) |> List.map type_to_sexp
  in
  field "spec"
    ([
       field "name" [ atom (Omsm.name omsm) ];
       field "types" types;
       architecture_to_sexp (Spec.arch spec);
       tech_to_sexp (Spec.tech spec);
     ]
    @ List.map mode_to_sexp (Omsm.modes omsm)
    @ List.map transition_to_sexp (Omsm.transitions omsm))

let spec_of_sexp sexp =
  let decode sexp =
    let fields =
      match sexp with
      | List (Atom "spec" :: fields) -> fields
      | _ -> decode_error "expected a (spec ...) expression"
    in
    let name = as_atom (List.hd (assoc "name" fields)) in
    let types_by_id = Hashtbl.create 16 in
    List.iter
      (fun t ->
        let ty = type_of_fields (as_list t |> List.tl) in
        Hashtbl.replace types_by_id (Task_type.id ty) ty)
      (assoc "types" fields);
    let arch =
      architecture_of_fields (assoc "architecture" fields)
    in
    let tech = tech_of_fields ~types_by_id ~arch (assoc "technology" fields) in
    let modes = List.map (mode_of_fields ~types_by_id) (assoc_all "mode" fields) in
    let transitions = List.map transition_of_fields (assoc_all "transition" fields) in
    let omsm = Omsm.make ~name ~modes ~transitions in
    Spec.make ~omsm ~arch ~tech
  in
  guarded "spec" decode sexp

let spec_to_string spec = Sexp.to_string (spec_to_sexp spec) ^ "\n"

let spec_of_string input =
  match Sexp.parse_one input with
  | sexp -> spec_of_sexp sexp
  | exception Sexp.Parse_error { line; column; message } ->
    decode_error "parse error at %d:%d: %s" line column message

(* --- Mapping -------------------------------------------------------------------- *)

let mapping_to_sexp mapping =
  field "mapping"
    (Array.to_list
       (Array.mapi
          (fun mode per_task ->
            field "mode" (field "id" [ int mode ] :: Array.to_list (Array.map int per_task)))
          (mapping : Mapping.t :> int array array)))

let mapping_of_sexp ~spec sexp =
  let decode sexp =
    let fields =
      match sexp with
      | List (Atom "mapping" :: fields) -> fields
      | _ -> decode_error "expected a (mapping ...) expression"
    in
    let modes = assoc_all "mode" fields in
    let arrays = Array.make (List.length modes) [||] in
    List.iter
      (fun mode_fields ->
        match mode_fields with
        | List (Atom "id" :: [ id ]) :: genes ->
          let mode = as_int id in
          if mode < 0 || mode >= Array.length arrays then
            decode_error "mapping references unknown mode %d" mode;
          arrays.(mode) <- Array.of_list (List.map as_int genes)
        | _ -> decode_error "malformed mapping mode entry")
      modes;
    Mapping.of_arrays spec arrays
  in
  guarded "mapping" decode sexp

(* --- Files ------------------------------------------------------------------------ *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save_spec ~path spec = write_file path (spec_to_string spec)
let load_spec ~path = spec_of_string (read_file path)
