module Task_type = Mm_taskgraph.Task_type
module Task = Mm_taskgraph.Task
module Graph = Mm_taskgraph.Graph
module Voltage = Mm_arch.Voltage
module Pe = Mm_arch.Pe
module Cl = Mm_arch.Cl
module Arch = Mm_arch.Architecture
module Tech_lib = Mm_arch.Tech_lib
module Mode = Mm_omsm.Mode
module Transition = Mm_omsm.Transition
module Omsm = Mm_omsm.Omsm
module Spec = Mm_cosynth.Spec
module Mapping = Mm_cosynth.Mapping
module Validate = Mm_cosynth.Validate
module Raw = Mm_cosynth.Validate.Raw
open Sexp

exception Decode_error of string

let decode_error fmt = Format.kasprintf (fun s -> raise (Decode_error s)) fmt

let guarded name f sexp =
  try f sexp with
  | Failure message -> decode_error "%s: %s" name message
  | Invalid_argument message -> decode_error "%s: %s" name message
  | Sexp.Type_error { message; _ } -> decode_error "%s: %s" name message
  | Graph.Invalid message -> decode_error "%s: %s" name message
  | Arch.Invalid message -> decode_error "%s: %s" name message
  | Omsm.Invalid message -> decode_error "%s: %s" name message
  | Spec.Invalid message -> decode_error "%s: %s" name message

(* --- Encoders ----------------------------------------------------------- *)

let type_to_sexp ty =
  field "type" [ field "id" [ int (Task_type.id ty) ]; field "name" [ atom (Task_type.name ty) ] ]

let rail_to_sexp rail =
  field "rail"
    [
      field "threshold" [ float rail.Voltage.threshold ];
      field "levels" (List.map float (Voltage.levels rail));
    ]

let pe_to_sexp pe =
  let base =
    [
      field "id" [ int (Pe.id pe) ];
      field "name" [ atom (Pe.name pe) ];
      field "kind" [ atom (String.lowercase_ascii (Pe.kind_to_string pe.Pe.kind)) ];
      field "static-power" [ float (Pe.static_power pe) ];
    ]
  in
  let rail = match Pe.rail pe with Some r -> [ rail_to_sexp r ] | None -> [] in
  let area =
    if Pe.is_hardware pe then [ field "area" [ float (Pe.area_capacity pe) ] ] else []
  in
  let reconfig =
    if Pe.reconfig_time_per_area pe > 0.0 then
      [ field "reconfig-time-per-area" [ float (Pe.reconfig_time_per_area pe) ] ]
    else []
  in
  field "pe" (base @ rail @ area @ reconfig)

let cl_to_sexp cl =
  field "cl"
    [
      field "id" [ int (Cl.id cl) ];
      field "name" [ atom (Cl.name cl) ];
      field "connects" (List.map int (Cl.connects cl));
      field "time-per-data" [ float (Cl.time_per_data cl) ];
      field "transfer-power" [ float (Cl.transfer_power cl) ];
      field "static-power" [ float (Cl.static_power cl) ];
    ]

let architecture_to_sexp arch =
  field "architecture"
    ((field "name" [ atom (Arch.name arch) ] :: List.map pe_to_sexp (Arch.pes arch))
    @ List.map cl_to_sexp (Arch.cls arch))

let tech_to_sexp tech =
  let entries = ref [] in
  Tech_lib.iter
    (fun ~ty_id ~pe_id impl ->
      let base =
        [
          field "type" [ int ty_id ];
          field "pe" [ int pe_id ];
          field "time" [ float impl.Tech_lib.exec_time ];
          field "power" [ float impl.Tech_lib.dyn_power ];
        ]
      in
      let area =
        if impl.Tech_lib.area > 0.0 then [ field "area" [ float impl.Tech_lib.area ] ]
        else []
      in
      entries := field "impl" (base @ area) :: !entries)
    tech;
  field "technology" (List.rev !entries)

let task_to_sexp task =
  let base =
    [
      field "id" [ int (Task.id task) ];
      field "name" [ atom (Task.name task) ];
      field "type" [ int (Task_type.id (Task.ty task)) ];
    ]
  in
  let deadline =
    match Task.deadline task with
    | Some d -> [ field "deadline" [ float d ] ]
    | None -> []
  in
  field "task" (base @ deadline)

let edge_to_sexp (e : Graph.edge) =
  field "edge"
    [ field "src" [ int e.src ]; field "dst" [ int e.dst ]; field "data" [ float e.data ] ]

let mode_to_sexp mode =
  let graph = Mode.graph mode in
  field "mode"
    [
      field "id" [ int (Mode.id mode) ];
      field "name" [ atom (Mode.name mode) ];
      field "period" [ float (Mode.period mode) ];
      field "probability" [ float (Mode.probability mode) ];
      field "tasks" (Array.to_list (Array.map task_to_sexp (Graph.tasks graph)));
      field "edges" (List.map edge_to_sexp (Graph.edges graph));
    ]

let transition_to_sexp tr =
  field "transition"
    [
      field "src" [ int (Transition.src tr) ];
      field "dst" [ int (Transition.dst tr) ];
      field "max-time" [ float (Transition.max_time tr) ];
    ]

let spec_to_sexp spec =
  let omsm = Spec.omsm spec in
  let types =
    Task_type.Set.elements (Omsm.all_task_types omsm) |> List.map type_to_sexp
  in
  field "spec"
    ([
       field "name" [ atom (Omsm.name omsm) ];
       field "types" types;
       architecture_to_sexp (Spec.arch spec);
       tech_to_sexp (Spec.tech spec);
     ]
    @ List.map mode_to_sexp (Omsm.modes omsm)
    @ List.map transition_to_sexp (Omsm.transitions omsm))

let spec_to_string spec = Sexp.to_string (spec_to_sexp spec) ^ "\n"

(* --- Total decode into the raw model ------------------------------------ *)

(* Decode failures are structured diagnostics, not exceptions: every
   entity is decoded under [capture], so one broken PE (or task, or
   impl) is reported and dropped while its siblings still decode.  The
   semantic pass ([Validate.check_raw]) then reports everything else in
   the same [diag] vocabulary. *)

exception Diag of Validate.diag

let fail ?pos ~code ~path fmt =
  Format.kasprintf
    (fun message ->
      raise (Diag { Validate.code; severity = Validate.Error; path; message; pos }))
    fmt

(* [located_of_plain] marks synthetic nodes with line 0 so positions are
   only ever reported for text that actually has them. *)
let src_pos (p : Sexp.pos) = if p.line = 0 then None else Some (p.line, p.column)

let located_of_plain sexp =
  let zero = { line = 0; column = 0 } in
  let rec conv = function
    | Atom s -> { value = L_atom s; pos = zero }
    | List xs -> { value = L_list (List.map conv xs); pos = zero }
  in
  conv sexp

let one_value ~pos name fields = l_one ~pos name fields
let atom_field ~pos name fields = l_as_atom (one_value ~pos name fields)
let int_field ~pos name fields = l_as_int (one_value ~pos name fields)
let float_field ~pos name fields = l_as_float (one_value ~pos name fields)

let float_field_opt ~path ~pos name fields =
  match l_assoc_opt ~pos name fields with
  | None -> None
  | Some [ v ] -> Some (l_as_float v)
  | Some _ -> fail ?pos:(src_pos pos) ~code:"MM002" ~path "field %S: expected one value" name

let type_of_located ~path:_ ~pos fields =
  {
    Raw.id = int_field ~pos "id" fields;
    name = atom_field ~pos "name" fields;
    pos = src_pos pos;
  }

let pe_of_located ~path ~pos fields =
  let kind =
    let k = one_value ~pos "kind" fields in
    match l_as_atom k with
    | "gpp" -> Pe.Gpp
    | "asip" -> Pe.Asip
    | "asic" -> Pe.Asic
    | "fpga" -> Pe.Fpga
    | other -> fail ?pos:(src_pos k.pos) ~code:"MM032" ~path "unknown PE kind %S" other
  in
  let rail =
    match l_assoc_opt ~pos "rail" fields with
    | None -> None
    | Some rail_fields ->
      Some
        ( float_field ~pos "threshold" rail_fields,
          List.map l_as_float (l_assoc ~pos "levels" rail_fields) )
  in
  {
    Raw.id = int_field ~pos "id" fields;
    name = atom_field ~pos "name" fields;
    kind;
    static_power = float_field ~pos "static-power" fields;
    rail;
    area = float_field_opt ~path ~pos "area" fields;
    reconfig = float_field_opt ~path ~pos "reconfig-time-per-area" fields;
    pos = src_pos pos;
  }

let cl_of_located ~path:_ ~pos fields =
  {
    Raw.id = int_field ~pos "id" fields;
    name = atom_field ~pos "name" fields;
    connects = List.map l_as_int (l_assoc ~pos "connects" fields);
    time_per_data = float_field ~pos "time-per-data" fields;
    transfer_power = float_field ~pos "transfer-power" fields;
    static_power = float_field ~pos "static-power" fields;
    pos = src_pos pos;
  }

let impl_of_located ~path ~pos fields =
  {
    Raw.ty = int_field ~pos "type" fields;
    pe = int_field ~pos "pe" fields;
    time = float_field ~pos "time" fields;
    power = float_field ~pos "power" fields;
    area = Option.value ~default:0.0 (float_field_opt ~path ~pos "area" fields);
    pos = src_pos pos;
  }

let task_of_located ~path ~pos fields =
  {
    Raw.id = int_field ~pos "id" fields;
    name = atom_field ~pos "name" fields;
    ty = int_field ~pos "type" fields;
    deadline = float_field_opt ~path ~pos "deadline" fields;
    pos = src_pos pos;
  }

let edge_of_located ~path:_ ~pos fields =
  {
    Raw.src = int_field ~pos "src" fields;
    dst = int_field ~pos "dst" fields;
    data = float_field ~pos "data" fields;
    pos = src_pos pos;
  }

let transition_of_located ~path:_ ~pos fields =
  {
    Raw.src = int_field ~pos "src" fields;
    dst = int_field ~pos "dst" fields;
    max_time = float_field ~pos "max-time" fields;
    pos = src_pos pos;
  }

let raw_of_located (lv : located) : Raw.t option * Validate.diag list =
  match lv.value with
  | L_list ({ value = L_atom "spec"; _ } :: fields) ->
    let diags = ref [] in
    let capture ~path f =
      try Some (f ()) with
      | Diag d ->
        diags := d :: !diags;
        None
      | Sexp.Type_error { pos; kind; message } ->
        let code =
          match kind with
          | Sexp.Shape -> "MM002"
          | Sexp.Missing_field -> "MM003"
          | Sexp.Duplicate_field -> "MM004"
        in
        diags :=
          {
            Validate.code;
            severity = Validate.Error;
            path;
            message;
            pos = (match pos with None -> None | Some p -> src_pos p);
          }
          :: !diags;
        None
    in
    (* Decode a list of (entry …) expressions, dropping broken ones. *)
    let entities ~path ~entry entries decode =
      List.mapi (fun i e -> (i, e)) entries
      |> List.filter_map (fun (i, (e : located)) ->
             let epath = Printf.sprintf "%s[%d]" path i in
             capture ~path:epath (fun () ->
                 match e.value with
                 | L_list ({ value = L_atom head; _ } :: efields) when head = entry ->
                   decode ~path:epath ~pos:e.pos efields
                 | _ ->
                   fail ?pos:(src_pos e.pos) ~code:"MM005" ~path:epath
                     "expected a (%s ...) entry" entry))
    in
    let pos = lv.pos in
    let name =
      Option.value ~default:"?"
        (capture ~path:"spec.name" (fun () -> atom_field ~pos "name" fields))
    in
    let types =
      match capture ~path:"spec.types" (fun () -> l_assoc ~pos "types" fields) with
      | None -> []
      | Some entries -> entities ~path:"spec.types" ~entry:"type" entries type_of_located
    in
    let arch_name, pes, cls =
      match capture ~path:"spec.arch" (fun () -> l_assoc ~pos "architecture" fields) with
      | None -> ("?", [], [])
      | Some afields ->
        let apos = pos in
        let aname =
          Option.value ~default:"?"
            (capture ~path:"spec.arch.name" (fun () -> atom_field ~pos:apos "name" afields))
        in
        let pes =
          entities ~path:"spec.arch.pes" ~entry:"pe"
            (List.filter
               (fun (e : located) ->
                 match e.value with
                 | L_list ({ value = L_atom "pe"; _ } :: _) -> true
                 | _ -> false)
               afields)
            pe_of_located
        in
        let cls =
          entities ~path:"spec.arch.cls" ~entry:"cl"
            (List.filter
               (fun (e : located) ->
                 match e.value with
                 | L_list ({ value = L_atom "cl"; _ } :: _) -> true
                 | _ -> false)
               afields)
            cl_of_located
        in
        (aname, pes, cls)
    in
    let impls =
      match capture ~path:"spec.tech" (fun () -> l_assoc ~pos "technology" fields) with
      | None -> []
      | Some entries ->
        entities ~path:"spec.tech.impls" ~entry:"impl" entries impl_of_located
    in
    let modes =
      l_assoc_all "mode" fields
      |> List.mapi (fun i (mpos, mfields) -> (i, mpos, mfields))
      |> List.filter_map (fun (i, mpos, mfields) ->
             let path = Printf.sprintf "spec.modes[%d]" i in
             capture ~path (fun () ->
                 let tasks =
                   match
                     capture ~path:(path ^ ".tasks") (fun () ->
                         l_assoc ~pos:mpos "tasks" mfields)
                   with
                   | None -> []
                   | Some entries ->
                     entities ~path:(path ^ ".tasks") ~entry:"task" entries
                       task_of_located
                 in
                 let edges =
                   match
                     capture ~path:(path ^ ".edges") (fun () ->
                         l_assoc ~pos:mpos "edges" mfields)
                   with
                   | None -> []
                   | Some entries ->
                     entities ~path:(path ^ ".edges") ~entry:"edge" entries
                       edge_of_located
                 in
                 {
                   Raw.id = int_field ~pos:mpos "id" mfields;
                   name = atom_field ~pos:mpos "name" mfields;
                   period = float_field ~pos:mpos "period" mfields;
                   probability = float_field ~pos:mpos "probability" mfields;
                   tasks;
                   edges;
                   pos = src_pos mpos;
                 }))
    in
    let transitions =
      l_assoc_all "transition" fields
      |> List.mapi (fun i (tpos, tfields) -> (i, tpos, tfields))
      |> List.filter_map (fun (i, tpos, tfields) ->
             let path = Printf.sprintf "spec.transitions[%d]" i in
             capture ~path (fun () -> transition_of_located ~path ~pos:tpos tfields))
    in
    ( Some { Raw.name; arch_name; types; pes; cls; impls; modes; transitions },
      List.rev !diags )
  | _ ->
    ( None,
      [
        {
          Validate.code = "MM005";
          severity = Validate.Error;
          path = "spec";
          message = "expected a (spec ...) expression";
          pos = src_pos lv.pos;
        };
      ] )

let check_located lv =
  match raw_of_located lv with
  | None, diags -> (None, diags)
  | Some raw, decode_diags -> (
    (* [build ~force] so callers that want to press on despite
       error-severity diagnostics (--force) still get a spec whenever
       the constructors can produce one. *)
    match Validate.build ~force:true raw with
    | Ok spec -> (Some spec, decode_diags @ Validate.check_raw raw)
    | Error build_diags -> (None, decode_diags @ build_diags))

let check_string input =
  match Sexp.parse_one_located input with
  | exception Sexp.Parse_error { line; column; message } ->
    ( None,
      [
        {
          Validate.code = "MM001";
          severity = Validate.Error;
          path = "spec";
          message;
          pos = Some (line, column);
        };
      ] )
  | lv -> check_located lv

let check_file ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error message ->
    ( None,
      [
        {
          Validate.code = "MM006";
          severity = Validate.Error;
          path = "spec";
          message;
          pos = None;
        };
      ] )
  | input -> check_string input

let result_of = function
  | Some spec, diags when not (Validate.has_errors diags) -> Ok spec
  | _, diags -> Error diags

let spec_of_string_result input = result_of (check_string input)
let load_spec_result ~path = result_of (check_file ~path)

(* The raising API, as thin wrappers over the total one. *)

let raise_first = function
  | [] -> decode_error "spec: unknown decode failure"
  | d :: _ -> decode_error "%s" (Validate.to_string d)

let spec_of_string input =
  match spec_of_string_result input with
  | Ok spec -> spec
  | Error diags -> raise_first (Validate.errors diags)

let spec_of_sexp sexp =
  match result_of (check_located (located_of_plain sexp)) with
  | Ok spec -> spec
  | Error diags -> raise_first (Validate.errors diags)

(* --- Mapping ------------------------------------------------------------- *)

let mapping_to_sexp mapping =
  field "mapping"
    (Array.to_list
       (Array.mapi
          (fun mode per_task ->
            field "mode" (field "id" [ int mode ] :: Array.to_list (Array.map int per_task)))
          (mapping : Mapping.t :> int array array)))

let mapping_of_sexp ~spec sexp =
  let decode sexp =
    let fields =
      match sexp with
      | List (Atom "mapping" :: fields) -> fields
      | _ -> decode_error "expected a (mapping ...) expression"
    in
    let modes = assoc_all "mode" fields in
    let arrays = Array.make (List.length modes) [||] in
    List.iter
      (fun mode_fields ->
        match mode_fields with
        | List (Atom "id" :: [ id ]) :: genes ->
          let mode = as_int id in
          if mode < 0 || mode >= Array.length arrays then
            decode_error "mapping references unknown mode %d" mode;
          arrays.(mode) <- Array.of_list (List.map as_int genes)
        | _ -> decode_error "malformed mapping mode entry")
      modes;
    Mapping.of_arrays spec arrays
  in
  guarded "mapping" decode sexp

(* --- Files ---------------------------------------------------------------- *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

(* Unique per process *and* per write: concurrent jobs checkpointing
   into sibling directories (or two daemons racing over one state dir)
   can never collide on the temporary path before the rename. *)
let tmp_counter = Atomic.make 0

let write_file_atomic path contents =
  let tmp =
    Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
      (Atomic.fetch_and_add tmp_counter 1)
  in
  write_file tmp contents;
  Sys.rename tmp path

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save_spec ~path spec = write_file path (spec_to_string spec)

let load_spec ~path =
  match load_spec_result ~path with
  | Ok spec -> spec
  | Error diags -> raise_first (Validate.errors diags)
