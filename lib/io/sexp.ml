type t = Atom of string | List of t list

exception Parse_error of { line : int; column : int; message : string }

(* --- Parsing ---------------------------------------------------------- *)

type lexer = {
  input : string;
  mutable position : int;
  mutable line : int;
  mutable column : int;
}

let error lx message = raise (Parse_error { line = lx.line; column = lx.column; message })

let peek lx = if lx.position < String.length lx.input then Some lx.input.[lx.position] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.column <- 1
  | Some _ -> lx.column <- lx.column + 1
  | None -> ());
  lx.position <- lx.position + 1

let rec skip_blanks lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_blanks lx
  | Some ';' ->
    let rec to_eol () =
      match peek lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_blanks lx
  | Some _ | None -> ()

let quoted_atom lx =
  advance lx (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek lx with
    | None -> error lx "unterminated string"
    | Some '"' -> advance lx
    | Some '\\' -> (
      advance lx;
      match peek lx with
      | Some ('"' as c) | Some ('\\' as c) ->
        Buffer.add_char buf c;
        advance lx;
        loop ()
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance lx;
        loop ()
      | Some c -> error lx (Printf.sprintf "bad escape \\%c" c)
      | None -> error lx "unterminated escape")
    | Some c ->
      Buffer.add_char buf c;
      advance lx;
      loop ()
  in
  loop ();
  Atom (Buffer.contents buf)

let bare_atom lx =
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek lx with
    | Some (' ' | '\t' | '\r' | '\n' | '(' | ')' | '"' | ';') | None -> ()
    | Some c ->
      Buffer.add_char buf c;
      advance lx;
      loop ()
  in
  loop ();
  if Buffer.length buf = 0 then error lx "empty atom";
  Atom (Buffer.contents buf)

let rec expression lx =
  skip_blanks lx;
  match peek lx with
  | None -> error lx "unexpected end of input"
  | Some '(' ->
    advance lx;
    let rec elements acc =
      skip_blanks lx;
      match peek lx with
      | Some ')' ->
        advance lx;
        List (List.rev acc)
      | None -> error lx "unterminated list"
      | Some _ -> elements (expression lx :: acc)
    in
    elements []
  | Some ')' -> error lx "unexpected )"
  | Some '"' -> quoted_atom lx
  | Some _ -> bare_atom lx

let parse input =
  let lx = { input; position = 0; line = 1; column = 1 } in
  let rec loop acc =
    skip_blanks lx;
    if lx.position >= String.length input then List.rev acc
    else loop (expression lx :: acc)
  in
  loop []

let parse_one input =
  match parse input with
  | [ e ] -> e
  | [] -> raise (Parse_error { line = 1; column = 1; message = "empty input" })
  | _ :: _ ->
    raise (Parse_error { line = 1; column = 1; message = "expected a single expression" })

(* --- Printing ---------------------------------------------------------- *)

let atom_needs_quoting s =
  s = ""
  || String.exists
       (function ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' | '\\' -> true | _ -> false)
       s

let escaped s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec flat_width = function
  | Atom s -> String.length s + if atom_needs_quoting s then 2 else 0
  | List xs -> 2 + List.fold_left (fun acc x -> acc + flat_width x + 1) 0 xs

let to_string ?(indent = 2) expr =
  let buf = Buffer.create 256 in
  let rec emit level expr =
    match expr with
    | Atom s -> Buffer.add_string buf (if atom_needs_quoting s then escaped s else s)
    | List xs ->
      if flat_width expr <= 78 - (level * indent) then begin
        Buffer.add_char buf '(';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ' ';
            emit level x)
          xs;
        Buffer.add_char buf ')'
      end
      else begin
        Buffer.add_char buf '(';
        List.iteri
          (fun i x ->
            if i > 0 then begin
              Buffer.add_char buf '\n';
              Buffer.add_string buf (String.make ((level + 1) * indent) ' ')
            end;
            emit (level + 1) x)
          xs;
        Buffer.add_char buf ')'
      end
  in
  emit 0 expr;
  Buffer.contents buf

(* --- Helpers ----------------------------------------------------------- *)

let atom s = Atom s
let int i = Atom (string_of_int i)

let float f =
  (* Shortest representation that round-trips exactly. *)
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then Atom s else Atom (Printf.sprintf "%.17g" f)

let field name args = List (Atom name :: args)

let shape_error expected got =
  let describe = function
    | Atom s -> Printf.sprintf "atom %S" s
    | List _ as l -> Printf.sprintf "list %s" (to_string l)
  in
  failwith (Printf.sprintf "expected %s, got %s" expected (describe got))

let as_atom = function Atom s -> s | List _ as l -> shape_error "atom" l

let as_int expr =
  match int_of_string_opt (as_atom expr) with
  | Some i -> i
  | None -> shape_error "integer" expr

let as_float expr =
  match float_of_string_opt (as_atom expr) with
  | Some f -> f
  | None -> shape_error "float" expr

let as_list = function List xs -> xs | Atom _ as a -> shape_error "list" a

let assoc_all name fields =
  List.filter_map
    (function
      | List (Atom head :: args) when head = name -> Some args
      | Atom _ | List _ -> None)
    fields

let assoc_opt name fields =
  match assoc_all name fields with
  | [ args ] -> Some args
  | [] -> None
  | _ :: _ -> failwith (Printf.sprintf "duplicate field %S" name)

let assoc name fields =
  match assoc_opt name fields with
  | Some args -> args
  | None -> failwith (Printf.sprintf "missing field %S" name)
