type t = Atom of string | List of t list

type pos = { line : int; column : int }

exception Parse_error of { line : int; column : int; message : string }

type type_error_kind = Shape | Missing_field | Duplicate_field

exception Type_error of { pos : pos option; kind : type_error_kind; message : string }

let type_error ?pos ?(kind = Shape) fmt =
  Format.kasprintf (fun message -> raise (Type_error { pos; kind; message })) fmt

(* --- Parsing ---------------------------------------------------------- *)

(* The parser produces position-annotated expressions; [strip] recovers
   the plain [t] the printers and the legacy decoders work on, so the
   two views can never disagree on the grammar. *)

type located = { value : lvalue; pos : pos }
and lvalue = L_atom of string | L_list of located list

type lexer = {
  input : string;
  mutable position : int;
  mutable line : int;
  mutable column : int;
}

let error lx message = raise (Parse_error { line = lx.line; column = lx.column; message })
let here lx = { line = lx.line; column = lx.column }

let peek lx = if lx.position < String.length lx.input then Some lx.input.[lx.position] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.column <- 1
  | Some _ -> lx.column <- lx.column + 1
  | None -> ());
  lx.position <- lx.position + 1

let rec skip_blanks lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_blanks lx
  | Some ';' ->
    let rec to_eol () =
      match peek lx with
      | Some '\n' | None -> ()
      | Some _ ->
        advance lx;
        to_eol ()
    in
    to_eol ();
    skip_blanks lx
  | Some _ | None -> ()

let quoted_atom lx =
  let pos = here lx in
  advance lx (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek lx with
    | None -> error lx "unterminated string"
    | Some '"' -> advance lx
    | Some '\\' -> (
      advance lx;
      match peek lx with
      | Some ('"' as c) | Some ('\\' as c) ->
        Buffer.add_char buf c;
        advance lx;
        loop ()
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance lx;
        loop ()
      | Some c -> error lx (Printf.sprintf "bad escape \\%c" c)
      | None -> error lx "unterminated escape")
    | Some c ->
      Buffer.add_char buf c;
      advance lx;
      loop ()
  in
  loop ();
  { value = L_atom (Buffer.contents buf); pos }

let bare_atom lx =
  let pos = here lx in
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek lx with
    | Some (' ' | '\t' | '\r' | '\n' | '(' | ')' | '"' | ';') | None -> ()
    | Some c ->
      Buffer.add_char buf c;
      advance lx;
      loop ()
  in
  loop ();
  if Buffer.length buf = 0 then error lx "empty atom";
  { value = L_atom (Buffer.contents buf); pos }

let rec expression lx =
  skip_blanks lx;
  match peek lx with
  | None -> error lx "unexpected end of input"
  | Some '(' ->
    let pos = here lx in
    advance lx;
    let rec elements acc =
      skip_blanks lx;
      match peek lx with
      | Some ')' ->
        advance lx;
        { value = L_list (List.rev acc); pos }
      | None -> error lx "unterminated list"
      | Some _ -> elements (expression lx :: acc)
    in
    elements []
  | Some ')' -> error lx "unexpected )"
  | Some '"' -> quoted_atom lx
  | Some _ -> bare_atom lx

(* Returns the expressions plus the lexer, whose final line/column is the
   true end-of-input position (after trailing blanks and comments). *)
let parse_all input =
  let lx = { input; position = 0; line = 1; column = 1 } in
  let rec loop acc =
    skip_blanks lx;
    if lx.position >= String.length input then List.rev acc
    else loop (expression lx :: acc)
  in
  (loop [], lx)

let parse_located input = fst (parse_all input)

let parse_one_located input =
  match parse_all input with
  | [ e ], _ -> e
  | [], lx ->
    (* Report where the input actually ends: a file of nothing but
       comments errors at its last line, not at 1:1. *)
    raise (Parse_error { line = lx.line; column = lx.column; message = "empty input" })
  | _ :: second :: _, _ ->
    raise
      (Parse_error
         {
           line = second.pos.line;
           column = second.pos.column;
           message = "expected a single expression";
         })

let rec strip { value; _ } =
  match value with
  | L_atom s -> Atom s
  | L_list xs -> List (List.map strip xs)

let parse input = List.map strip (parse_located input)
let parse_one input = strip (parse_one_located input)

(* --- Printing ---------------------------------------------------------- *)

let atom_needs_quoting s =
  s = ""
  || String.exists
       (function ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' | '\\' -> true | _ -> false)
       s

let escaped s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (function
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec flat_width = function
  | Atom s -> String.length s + if atom_needs_quoting s then 2 else 0
  | List xs -> 2 + List.fold_left (fun acc x -> acc + flat_width x + 1) 0 xs

let to_string ?(indent = 2) expr =
  let buf = Buffer.create 256 in
  let rec emit level expr =
    match expr with
    | Atom s -> Buffer.add_string buf (if atom_needs_quoting s then escaped s else s)
    | List xs ->
      if flat_width expr <= 78 - (level * indent) then begin
        Buffer.add_char buf '(';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ' ';
            emit level x)
          xs;
        Buffer.add_char buf ')'
      end
      else begin
        Buffer.add_char buf '(';
        List.iteri
          (fun i x ->
            if i > 0 then begin
              Buffer.add_char buf '\n';
              Buffer.add_string buf (String.make ((level + 1) * indent) ' ')
            end;
            emit (level + 1) x)
          xs;
        Buffer.add_char buf ')'
      end
  in
  emit 0 expr;
  Buffer.contents buf

(* --- Helpers ----------------------------------------------------------- *)

let atom s = Atom s
let int i = Atom (string_of_int i)

let float f =
  (* Shortest representation that round-trips exactly. *)
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then Atom s else Atom (Printf.sprintf "%.17g" f)

let field name args = List (Atom name :: args)

let shape_error expected got =
  let describe = function
    | Atom s -> Printf.sprintf "atom %S" s
    | List _ as l -> Printf.sprintf "list %s" (to_string l)
  in
  type_error "expected %s, got %s" expected (describe got)

let as_atom = function Atom s -> s | List _ as l -> shape_error "atom" l

let as_int expr =
  match int_of_string_opt (as_atom expr) with
  | Some i -> i
  | None -> shape_error "integer" expr

let as_float expr =
  match float_of_string_opt (as_atom expr) with
  | Some f -> f
  | None -> shape_error "float" expr

let as_list = function List xs -> xs | Atom _ as a -> shape_error "list" a

let assoc_all name fields =
  List.filter_map
    (function
      | List (Atom head :: args) when head = name -> Some args
      | Atom _ | List _ -> None)
    fields

let assoc_opt name fields =
  match assoc_all name fields with
  | [ args ] -> Some args
  | [] -> None
  | _ :: _ -> type_error ~kind:Duplicate_field "duplicate field %S" name

let assoc name fields =
  match assoc_opt name fields with
  | Some args -> args
  | None -> type_error ~kind:Missing_field "missing field %S" name

(* --- Located helpers ---------------------------------------------------- *)

(* Same destructors over position-annotated expressions: every failure
   carries the offending node's line/column. *)

let l_shape_error expected (got : located) =
  let describe l =
    match l.value with
    | L_atom s -> Printf.sprintf "atom %S" s
    | L_list _ -> Printf.sprintf "list %s" (to_string (strip l))
  in
  type_error ~pos:got.pos "expected %s, got %s" expected (describe got)

let l_as_atom l = match l.value with L_atom s -> s | L_list _ -> l_shape_error "atom" l

let l_as_int l =
  match int_of_string_opt (l_as_atom l) with
  | Some i -> i
  | None -> l_shape_error "integer" l

let l_as_float l =
  match float_of_string_opt (l_as_atom l) with
  | Some f -> f
  | None -> l_shape_error "float" l

let l_as_list l = match l.value with L_list xs -> xs | L_atom _ -> l_shape_error "list" l

let l_assoc_all name fields =
  List.filter_map
    (fun l ->
      match l.value with
      | L_list ({ value = L_atom head; _ } :: args) when head = name -> Some (l.pos, args)
      | L_atom _ | L_list _ -> None)
    fields

let l_assoc_opt ~pos:_ name fields =
  match l_assoc_all name fields with
  | [ (_, args) ] -> Some args
  | [] -> None
  | _ :: (dup_pos, _) :: _ ->
    type_error ~pos:dup_pos ~kind:Duplicate_field "duplicate field %S" name

let l_assoc ~pos name fields =
  match l_assoc_opt ~pos name fields with
  | Some args -> args
  | None -> type_error ~pos ~kind:Missing_field "missing field %S" name

let l_one ~pos name fields =
  match l_assoc ~pos name fields with
  | [ v ] -> v
  | [] -> type_error ~pos "field %S carries no value" name
  | v :: _ -> type_error ~pos:v.pos "field %S: expected exactly one value" name
