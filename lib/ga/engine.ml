module Prng = Mm_util.Prng
module Pool = Mm_parallel.Pool
module Memo = Mm_parallel.Memo
module Metrics = Mm_obs.Metrics

(* GA observability: one span per generation (coarse), per-generation
   convergence series, and counters mirroring the per-run [result]
   fields so a whole process's GA activity is visible in metrics.json.
   Everything is gated on the global metrics/tracing switches and
   records no random state, so instrumentation cannot perturb a run. *)
let p_generation = Mm_obs.Probe.create "ga/generation"
let m_generations = Metrics.counter "ga/generations"
let m_evaluations = Metrics.counter "ga/evaluations"
let m_cache_hits = Metrics.counter "ga/cache_hits"
let m_delta_evaluations = Metrics.counter "ga/delta_evaluations"
let s_best = Metrics.series "ga/best_fitness"
let s_mean = Metrics.series "ga/mean_fitness"
let s_diversity = Metrics.series "ga/diversity"
let s_stagnation = Metrics.series "ga/stagnation"

type config = {
  population_size : int;
  tournament_size : int;
  crossover_rate : float;
  mutation_rate : float;
  elite_count : int;
  max_generations : int;
  stagnation_limit : int;
  diversity_threshold : float;
  selection_pressure : float;
}

let default_config =
  {
    population_size = 40;
    tournament_size = 2;
    crossover_rate = 0.9;
    mutation_rate = 0.02;
    elite_count = 2;
    max_generations = 150;
    stagnation_limit = 25;
    diversity_threshold = 0.01;
    selection_pressure = 1.8;
  }

type 'info snapshot = {
  generation : int;
  fitnesses : float array;
  infos : 'info array;
}

type 'info improvement = {
  name : string;
  rate : float;
  apply :
    Prng.t -> snapshot:'info snapshot -> info:'info -> int array -> bool;
}

type 'info problem = {
  gene_counts : int array;
  evaluate : int array -> float * 'info;
  pure : bool;
  improvements : 'info improvement list;
  initial : int array list;
}

type 'info delta = parent:'info -> dirty:int list -> int array -> float * 'info

type 'info eval_strategy =
  | Serial
  | Pooled of Pool.t
  | Cached of (float * 'info) Memo.t
  | Cached_pooled of Pool.t * (float * 'info) Memo.t

type 'info result = {
  best_genome : int array;
  best_fitness : float;
  best_info : 'info;
  generations : int;
  evaluations : int;
  cache_hits : int;
  history : float list;
}

type checkpoint = {
  generation : int;
  members : (int array * float) array;
  best : int array * float;
  stagnation : int;
  history : float list;
  evaluations : int;
  cache_hits : int;
  rng_state : int64;
}

type 'info member = { genome : int array; fitness : float; info : 'info }

(* Linear-ranking weights: best rank gets [pressure], worst gets
   [2 - pressure]; tournament selection then picks by weight. *)
let ranking_weights n pressure =
  if n = 1 then [| 1.0 |]
  else
    Array.init n (fun rank ->
        pressure
        -. ((2.0 *. (pressure -. 1.0)) *. float_of_int rank /. float_of_int (n - 1)))

(* Batch evaluator: all RNG-driven genome construction happens before a
   batch is submitted, so the evaluation schedule (serial, pooled,
   cached) cannot perturb the random stream — equal seeds give
   bit-identical runs at any domain count.  An impure evaluator opts out
   of both sharing (cache) and concurrency (pool); a 1-domain pool
   degrades to the serial path.

   Each batch item optionally carries a delta context — the parent's
   ['info] plus the genes the child differs in — consumed by the
   problem's [delta] evaluator when one is supplied.  A delta evaluator
   must be bit-identical to [problem.evaluate] (the contract of
   {!Engine.delta}), so cache lookups, duplicate folding and resumed
   trajectories are unaffected by which path computed a result. *)
type 'info batcher = {
  batch : (int array * ('info * int list) option) array -> 'info member array;
  evaluations : int ref;
  cache_hits : int ref;
}

let make_batcher ?delta problem strategy =
  let evaluations = ref 0 and cache_hits = ref 0 in
  let pool, cache =
    if not problem.pure then (None, None)
    else
      match strategy with
      | Serial -> (None, None)
      | Pooled p -> ((if Pool.size p > 1 then Some p else None), None)
      | Cached c -> (None, Some c)
      | Cached_pooled (p, c) ->
        ((if Pool.size p > 1 then Some p else None), Some c)
  in
  let eval_one (genome, ctx) =
    match (delta, ctx) with
    | Some d, Some (parent, dirty) -> d ~parent ~dirty genome
    | _ -> problem.evaluate genome
  in
  let eval_misses items =
    evaluations := !evaluations + Array.length items;
    Metrics.incr ~by:(Array.length items) m_evaluations;
    (match delta with
    | None -> ()
    | Some _ ->
      let n_delta =
        Array.fold_left
          (fun acc (_, ctx) -> match ctx with Some _ -> acc + 1 | None -> acc)
          0 items
      in
      if n_delta > 0 then Metrics.incr ~by:n_delta m_delta_evaluations);
    match pool with
    | Some p -> Pool.map p eval_one items
    | None -> Array.map eval_one items
  in
  let batch items =
    let n = Array.length items in
    match cache with
    | None ->
      let results = eval_misses items in
      Array.init n (fun i ->
          let fitness, info = results.(i) in
          { genome = fst items.(i); fitness; info })
    | Some c ->
      let results = Array.make n None in
      (* Entries touched by this batch are pinned until the batch ends,
         so inserting one miss's result cannot evict another in-flight
         entry of the same batch (see the pinning note in
         {!Mm_parallel.Memo}). *)
      Fun.protect ~finally:(fun () -> Memo.unpin_all c) @@ fun () ->
      (* Misses in first-occurrence order; duplicate genomes within the
         batch (clones of a converged population) are folded onto one
         evaluation — under the first occurrence's delta context — and
         counted as cache hits. *)
      let misses = ref [] in
      Array.iteri
        (fun i (genome, ctx) ->
          match Memo.find ~pin:true c genome with
          | Some r ->
            incr cache_hits;
            Metrics.incr m_cache_hits;
            results.(i) <- Some r
          | None -> (
            match List.find_opt (fun ((g, _), _) -> g = genome) !misses with
            | Some (_, slots) ->
              incr cache_hits;
              Metrics.incr m_cache_hits;
              slots := i :: !slots
            | None -> misses := ((genome, ctx), ref [ i ]) :: !misses))
        items;
      let misses = Array.of_list (List.rev !misses) in
      let miss_results = eval_misses (Array.map fst misses) in
      Array.iteri
        (fun j ((genome, _), slots) ->
          let r = miss_results.(j) in
          Memo.add ~pin:true c genome r;
          List.iter (fun i -> results.(i) <- Some r) !slots)
        misses;
      Array.init n (fun i ->
          match results.(i) with
          | Some (fitness, info) -> { genome = fst items.(i); fitness; info }
          | None -> assert false)
  in
  { batch; evaluations; cache_hits }

let run ?(config = default_config) ?(strategy = Serial) ?delta ?on_generation
    ?resume ~rng problem =
  if Array.length problem.gene_counts = 0 then invalid_arg "Engine.run: empty genome";
  if config.population_size <= 0 then invalid_arg "Engine.run: non-positive population";
  Array.iter
    (fun c -> if c <= 0 then invalid_arg "Engine.run: empty gene alphabet")
    problem.gene_counts;
  let batcher = make_batcher ?delta problem strategy in
  let full genomes = Array.map (fun g -> (g, None)) genomes in
  List.iter
    (fun genome ->
      if not (Genome.validate ~counts:problem.gene_counts genome) then
        invalid_arg "Engine.run: invalid initial genome")
    problem.initial;
  let by_fitness a b = compare a.fitness b.fitness in
  let rng, population, best, history, stagnation, generation =
    match resume with
    | None ->
      let seeded = Array.of_list problem.initial in
      (* Genome construction consumes the RNG in index order; evaluation
         is deferred to one batch. *)
      let genomes =
        Array.init config.population_size (fun i ->
            if i < Array.length seeded then Array.copy seeded.(i)
            else Genome.random rng ~counts:problem.gene_counts)
      in
      let population = batcher.batch (full genomes) in
      Array.sort by_fitness population;
      let best = population.(0) in
      (rng, ref population, ref best, ref [ best.fitness ], ref 0, ref 0)
    | Some (ck : checkpoint) ->
      if Array.length ck.members <> config.population_size then
        invalid_arg "Engine.run: checkpoint population size mismatch";
      let check_genome (genome, _) =
        if not (Genome.validate ~counts:problem.gene_counts genome) then
          invalid_arg "Engine.run: checkpoint genome does not fit the problem"
      in
      Array.iter check_genome ck.members;
      check_genome ck.best;
      (* Recover the ['info] side data by re-evaluating the stored
         genomes as one batch (the best-ever genome rides along at the
         end).  A pure evaluator must reproduce the checkpointed
         fitnesses bit-for-bit — a mismatch means the snapshot belongs
         to a different problem.  The restored array is NOT re-sorted:
         [Array.sort] is unstable, so only the order captured at the
         generation boundary reproduces the original run. *)
      let stored_genome (g, _) = Array.copy g in
      let evaluated =
        batcher.batch
          (full
             (Array.append (Array.map stored_genome ck.members)
                [| stored_genome ck.best |]))
      in
      let restore m stored_fitness =
        if problem.pure
           && Int64.bits_of_float m.fitness <> Int64.bits_of_float stored_fitness
        then invalid_arg "Engine.run: checkpoint fitness mismatch (stale snapshot?)";
        { m with fitness = stored_fitness }
      in
      let n = Array.length ck.members in
      let members = Array.init n (fun i -> restore evaluated.(i) (snd ck.members.(i))) in
      let best = restore evaluated.(n) (snd ck.best) in
      (* The restore batch already bumped the counters by its own cost;
         stack the checkpointed totals on top so the resumed run reports
         the work of the whole trajectory. *)
      batcher.evaluations := !(batcher.evaluations) + ck.evaluations;
      batcher.cache_hits := !(batcher.cache_hits) + ck.cache_hits;
      (* The caller's [rng] is superseded: the stream continues from the
         captured state, which is what makes the resumed trajectory
         bit-identical to the uninterrupted one. *)
      ( Prng.of_state ck.rng_state,
        ref members,
        ref best,
        ref (List.rev ck.history),
        ref ck.stagnation,
        ref ck.generation )
  in
  let weights = ranking_weights config.population_size config.selection_pressure in
  (* Mean normalised Hamming distance of the population to its best
     member — a cheap proxy for population diversity. *)
  let diversity () =
    let members = !population in
    let best_genome = members.(0).genome in
    let len = Array.length best_genome in
    let total =
      Array.fold_left
        (fun acc m -> acc + Genome.hamming best_genome m.genome)
        0 members
    in
    float_of_int total /. float_of_int (Array.length members * len)
  in
  let converged () =
    !stagnation >= config.stagnation_limit
    || (config.diversity_threshold > 0.0
       && !stagnation >= (config.stagnation_limit + 1) / 2
       && diversity () < config.diversity_threshold)
  in
  (* Tournament over rank positions: smaller weighted draw wins. *)
  let select () =
    let draw () = Prng.int rng config.population_size in
    let rec tournament best_rank k =
      if k = 0 then best_rank
      else
        let candidate = draw () in
        (* Higher linear-ranking weight wins the tournament. *)
        let winner = if weights.(candidate) > weights.(best_rank) then candidate else best_rank in
        tournament winner (k - 1)
    in
    !population.(tournament (draw ()) (config.tournament_size - 1))
  in
  (* Per-generation convergence statistics; [diversity ()] is recomputed
     only when metrics are on (it is O(population × genome)). *)
  let record_generation () =
    if Mm_obs.Control.metrics_on () then begin
      Metrics.incr m_generations;
      let members = !population in
      let n = Array.length members in
      let sum = Array.fold_left (fun acc m -> acc +. m.fitness) 0.0 members in
      Metrics.append s_best !best.fitness;
      Metrics.append s_mean (sum /. float_of_int n);
      Metrics.append s_diversity (diversity ());
      Metrics.append s_stagnation (float_of_int !stagnation)
    end
  in
  while !generation < config.max_generations && not (converged ()) do
    incr generation;
    Mm_obs.Probe.run
      ~args:(fun () -> [ ("generation", string_of_int !generation) ])
      p_generation
    @@ fun () ->
    let snapshot =
      {
        generation = !generation;
        fitnesses = Array.map (fun m -> m.fitness) !population;
        infos = Array.map (fun m -> m.info) !population;
      }
    in
    let n_elite = min config.elite_count config.population_size in
    (* Offspring genomes are bred sequentially — selection, crossover,
       mutation and the improvement operators all draw from [rng] — and
       only then evaluated as one batch. *)
    let pending = ref [] in
    let n_offspring = ref n_elite in
    let emit genome parent =
      (* Improvement operators (paper lines 19-22) act on offspring with
         their configured rates, guided by parent evaluation feedback. *)
      List.iter
        (fun op ->
          if Prng.chance rng op.rate then
            ignore (op.apply rng ~snapshot ~info:parent.info genome))
        problem.improvements;
      (* The delta context is derived after the improvement operators so
         the dirty set covers everything that touched the child.  The
         diff consumes no randomness, so supplying [delta] does not
         perturb the trajectory. *)
      let ctx =
        match delta with
        | None -> None
        | Some _ -> Some (parent.info, Genome.diff genome parent.genome)
      in
      pending := (genome, ctx) :: !pending;
      incr n_offspring
    in
    while !n_offspring < config.population_size do
      let parent_a = select () and parent_b = select () in
      if Prng.chance rng config.crossover_rate then begin
        let child_a, child_b =
          Genome.two_point_crossover rng parent_a.genome parent_b.genome
        in
        Genome.point_mutate rng ~counts:problem.gene_counts ~rate:config.mutation_rate
          child_a;
        Genome.point_mutate rng ~counts:problem.gene_counts ~rate:config.mutation_rate
          child_b;
        emit child_a parent_a;
        if !n_offspring < config.population_size then emit child_b parent_b
      end
      else begin
        let child = Array.copy parent_a.genome in
        Genome.point_mutate rng ~counts:problem.gene_counts ~rate:config.mutation_rate
          child;
        emit child parent_a
      end
    done;
    let children = batcher.batch (Array.of_list (List.rev !pending)) in
    (* Rebuild the survivor array in the exact order the serial engine
       used (elites pushed first, children on top, list reversed by
       [Array.of_list]) so the unstable sort below sees the same input
       and equal seeds keep giving bit-identical populations. *)
    let offspring = ref [] in
    for i = 0 to n_elite - 1 do
      offspring := !population.(i) :: !offspring
    done;
    Array.iter (fun m -> offspring := m :: !offspring) children;
    let next = Array.of_list !offspring in
    Array.sort by_fitness next;
    population := next;
    if next.(0).fitness < !best.fitness -. 1e-15 then begin
      best := next.(0);
      stagnation := 0
    end
    else incr stagnation;
    history := !best.fitness :: !history;
    record_generation ();
    (* The generation boundary is the only point where no randomness is
       in flight: everything the next iteration reads is the sorted
       population, the convergence state and the PRNG word captured
       here.  That is exactly what a [checkpoint] carries. *)
    match on_generation with
    | None -> ()
    | Some emit ->
      emit
        {
          generation = !generation;
          members =
            Array.map (fun m -> (Array.copy m.genome, m.fitness)) !population;
          best = (Array.copy !best.genome, !best.fitness);
          stagnation = !stagnation;
          history = List.rev !history;
          evaluations = !(batcher.evaluations);
          cache_hits = !(batcher.cache_hits);
          rng_state = Prng.state rng;
        }
  done;
  {
    best_genome = Array.copy !best.genome;
    best_fitness = !best.fitness;
    best_info = !best.info;
    generations = !generation;
    evaluations = !(batcher.evaluations);
    cache_hits = !(batcher.cache_hits);
    history = List.rev !history;
  }
