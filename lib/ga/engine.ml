module Prng = Mm_util.Prng

type config = {
  population_size : int;
  tournament_size : int;
  crossover_rate : float;
  mutation_rate : float;
  elite_count : int;
  max_generations : int;
  stagnation_limit : int;
  diversity_threshold : float;
  selection_pressure : float;
}

let default_config =
  {
    population_size = 40;
    tournament_size = 2;
    crossover_rate = 0.9;
    mutation_rate = 0.02;
    elite_count = 2;
    max_generations = 150;
    stagnation_limit = 25;
    diversity_threshold = 0.01;
    selection_pressure = 1.8;
  }

type 'info snapshot = {
  generation : int;
  fitnesses : float array;
  infos : 'info array;
}

type 'info improvement = {
  name : string;
  rate : float;
  apply :
    Prng.t -> snapshot:'info snapshot -> info:'info -> int array -> bool;
}

type 'info problem = {
  gene_counts : int array;
  evaluate : int array -> float * 'info;
  improvements : 'info improvement list;
  initial : int array list;
}

type 'info result = {
  best_genome : int array;
  best_fitness : float;
  best_info : 'info;
  generations : int;
  evaluations : int;
  history : float list;
}

type 'info member = { genome : int array; fitness : float; info : 'info }

(* Linear-ranking weights: best rank gets [pressure], worst gets
   [2 - pressure]; tournament selection then picks by weight. *)
let ranking_weights n pressure =
  if n = 1 then [| 1.0 |]
  else
    Array.init n (fun rank ->
        pressure
        -. ((2.0 *. (pressure -. 1.0)) *. float_of_int rank /. float_of_int (n - 1)))

let run ?(config = default_config) ~rng problem =
  if Array.length problem.gene_counts = 0 then invalid_arg "Engine.run: empty genome";
  if config.population_size <= 0 then invalid_arg "Engine.run: non-positive population";
  Array.iter
    (fun c -> if c <= 0 then invalid_arg "Engine.run: empty gene alphabet")
    problem.gene_counts;
  let evaluations = ref 0 in
  let eval genome =
    incr evaluations;
    let fitness, info = problem.evaluate genome in
    { genome; fitness; info }
  in
  List.iter
    (fun genome ->
      if not (Genome.validate ~counts:problem.gene_counts genome) then
        invalid_arg "Engine.run: invalid initial genome")
    problem.initial;
  let seeded = Array.of_list problem.initial in
  let population =
    ref
      (Array.init config.population_size (fun i ->
           if i < Array.length seeded then eval (Array.copy seeded.(i))
           else eval (Genome.random rng ~counts:problem.gene_counts)))
  in
  let by_fitness a b = compare a.fitness b.fitness in
  Array.sort by_fitness !population;
  let best = ref !population.(0) in
  let history = ref [ !best.fitness ] in
  let stagnation = ref 0 in
  let generation = ref 0 in
  let weights = ranking_weights config.population_size config.selection_pressure in
  (* Mean normalised Hamming distance of the population to its best
     member — a cheap proxy for population diversity. *)
  let diversity () =
    let members = !population in
    let best_genome = members.(0).genome in
    let len = Array.length best_genome in
    let total =
      Array.fold_left
        (fun acc m -> acc + Genome.hamming best_genome m.genome)
        0 members
    in
    float_of_int total /. float_of_int (Array.length members * len)
  in
  let converged () =
    !stagnation >= config.stagnation_limit
    || (config.diversity_threshold > 0.0
       && !stagnation >= (config.stagnation_limit + 1) / 2
       && diversity () < config.diversity_threshold)
  in
  (* Tournament over rank positions: smaller weighted draw wins. *)
  let select () =
    let draw () = Prng.int rng config.population_size in
    let rec tournament best_rank k =
      if k = 0 then best_rank
      else
        let candidate = draw () in
        (* Higher linear-ranking weight wins the tournament. *)
        let winner = if weights.(candidate) > weights.(best_rank) then candidate else best_rank in
        tournament winner (k - 1)
    in
    !population.(tournament (draw ()) (config.tournament_size - 1))
  in
  while !generation < config.max_generations && not (converged ()) do
    incr generation;
    let snapshot =
      {
        generation = !generation;
        fitnesses = Array.map (fun m -> m.fitness) !population;
        infos = Array.map (fun m -> m.info) !population;
      }
    in
    let offspring = ref [] in
    let emit genome parent_info =
      (* Improvement operators (paper lines 19-22) act on offspring with
         their configured rates, guided by parent evaluation feedback. *)
      List.iter
        (fun op ->
          if Prng.chance rng op.rate then
            ignore (op.apply rng ~snapshot ~info:parent_info genome))
        problem.improvements;
      offspring := eval genome :: !offspring
    in
    let n_elite = min config.elite_count config.population_size in
    for i = 0 to n_elite - 1 do
      offspring := !population.(i) :: !offspring
    done;
    while List.length !offspring < config.population_size do
      let parent_a = select () and parent_b = select () in
      if Prng.chance rng config.crossover_rate then begin
        let child_a, child_b =
          Genome.two_point_crossover rng parent_a.genome parent_b.genome
        in
        Genome.point_mutate rng ~counts:problem.gene_counts ~rate:config.mutation_rate
          child_a;
        Genome.point_mutate rng ~counts:problem.gene_counts ~rate:config.mutation_rate
          child_b;
        emit child_a parent_a.info;
        if List.length !offspring < config.population_size then
          emit child_b parent_b.info
      end
      else begin
        let child = Array.copy parent_a.genome in
        Genome.point_mutate rng ~counts:problem.gene_counts ~rate:config.mutation_rate
          child;
        emit child parent_a.info
      end
    done;
    let next = Array.of_list !offspring in
    Array.sort by_fitness next;
    population := next;
    if next.(0).fitness < !best.fitness -. 1e-15 then begin
      best := next.(0);
      stagnation := 0
    end
    else incr stagnation;
    history := !best.fitness :: !history
  done;
  {
    best_genome = Array.copy !best.genome;
    best_fitness = !best.fitness;
    best_info = !best.info;
    generations = !generation;
    evaluations = !evaluations;
    history = List.rev !history;
  }
