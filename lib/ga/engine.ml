module Prng = Mm_util.Prng
module Pool = Mm_parallel.Pool
module Memo = Mm_parallel.Memo
module Metrics = Mm_obs.Metrics

(* GA observability: one span per generation (coarse), per-generation
   convergence series, and counters mirroring the per-run [result]
   fields so a whole process's GA activity is visible in metrics.json.
   Everything is gated on the global metrics/tracing switches and
   records no random state, so instrumentation cannot perturb a run. *)
let p_generation = Mm_obs.Probe.create "ga/generation"
let m_generations = Metrics.counter "ga/generations"
let m_evaluations = Metrics.counter "ga/evaluations"
let m_cache_hits = Metrics.counter "ga/cache_hits"
let m_delta_evaluations = Metrics.counter "ga/delta_evaluations"
let s_best = Metrics.series "ga/best_fitness"
let s_mean = Metrics.series "ga/mean_fitness"
let s_diversity = Metrics.series "ga/diversity"
let s_stagnation = Metrics.series "ga/stagnation"

type config = {
  population_size : int;
  tournament_size : int;
  crossover_rate : float;
  mutation_rate : float;
  elite_count : int;
  max_generations : int;
  stagnation_limit : int;
  diversity_threshold : float;
  selection_pressure : float;
}

let default_config =
  {
    population_size = 40;
    tournament_size = 2;
    crossover_rate = 0.9;
    mutation_rate = 0.02;
    elite_count = 2;
    max_generations = 150;
    stagnation_limit = 25;
    diversity_threshold = 0.01;
    selection_pressure = 1.8;
  }

type 'info snapshot = {
  generation : int;
  fitnesses : float array;
  infos : 'info array;
}

type 'info improvement = {
  name : string;
  rate : float;
  apply :
    Prng.t -> snapshot:'info snapshot -> info:'info -> int array -> bool;
}

type 'info problem = {
  gene_counts : int array;
  evaluate : int array -> float * 'info;
  pure : bool;
  improvements : 'info improvement list;
  initial : int array list;
}

type 'info delta = parent:'info -> dirty:int list -> int array -> float * 'info

type 'info eval_strategy =
  | Serial
  | Pooled of Pool.t
  | Cached of (float * 'info) Memo.t
  | Cached_pooled of Pool.t * (float * 'info) Memo.t

type 'info result = {
  best_genome : int array;
  best_fitness : float;
  best_info : 'info;
  generations : int;
  evaluations : int;
  cache_hits : int;
  history : float list;
}

type checkpoint = {
  generation : int;
  members : (int array * float) array;
  best : int array * float;
  stagnation : int;
  history : float list;
  evaluations : int;
  cache_hits : int;
  rng_state : int64;
}

type 'info member = { genome : int array; fitness : float; info : 'info }

(* Linear-ranking weights: best rank gets [pressure], worst gets
   [2 - pressure]; tournament selection then picks by weight. *)
let ranking_weights n pressure =
  if n = 1 then [| 1.0 |]
  else
    Array.init n (fun rank ->
        pressure
        -. ((2.0 *. (pressure -. 1.0)) *. float_of_int rank /. float_of_int (n - 1)))

(* Batch evaluator: all RNG-driven genome construction happens before a
   batch is submitted, so the evaluation schedule (serial, pooled,
   cached) cannot perturb the random stream — equal seeds give
   bit-identical runs at any domain count.  An impure evaluator opts out
   of both sharing (cache) and concurrency (pool); a 1-domain pool
   degrades to the serial path.

   Each batch item optionally carries a delta context — the parent's
   ['info] plus the genes the child differs in — consumed by the
   problem's [delta] evaluator when one is supplied.  A delta evaluator
   must be bit-identical to [problem.evaluate] (the contract of
   {!Engine.delta}), so cache lookups, duplicate folding and resumed
   trajectories are unaffected by which path computed a result. *)
type 'info batcher = {
  batch : (int array * ('info * int list) option) array -> 'info member array;
  evaluations : int ref;
  cache_hits : int ref;
}

let make_batcher ?delta problem strategy =
  let evaluations = ref 0 and cache_hits = ref 0 in
  let pool, cache =
    if not problem.pure then (None, None)
    else
      match strategy with
      | Serial -> (None, None)
      | Pooled p -> ((if Pool.size p > 1 then Some p else None), None)
      | Cached c -> (None, Some c)
      | Cached_pooled (p, c) ->
        ((if Pool.size p > 1 then Some p else None), Some c)
  in
  let eval_one (genome, ctx) =
    match (delta, ctx) with
    | Some d, Some (parent, dirty) -> d ~parent ~dirty genome
    | _ -> problem.evaluate genome
  in
  let eval_misses items =
    evaluations := !evaluations + Array.length items;
    Metrics.incr ~by:(Array.length items) m_evaluations;
    (match delta with
    | None -> ()
    | Some _ ->
      let n_delta =
        Array.fold_left
          (fun acc (_, ctx) -> match ctx with Some _ -> acc + 1 | None -> acc)
          0 items
      in
      if n_delta > 0 then Metrics.incr ~by:n_delta m_delta_evaluations);
    match pool with
    | Some p ->
      (* Dispatch through one flat shared slab: the gene words of every
         miss are packed into a Bigarray and the pool items are plain
         indices, so the array every domain scans through the shared
         cursor is small and pointer-free, and workers reconstruct each
         genome from the slab instead of chasing per-item heap tuples.
         Results are float/info pairs; the caller keeps the original
         genome arrays, so the copies never escape the batch. *)
      let len = Array.length problem.gene_counts in
      let n = Array.length items in
      let slab =
        Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 1 (n * len))
      in
      Array.iteri
        (fun i (g, _) ->
          let base = i * len in
          for j = 0 to len - 1 do
            slab.{base + j} <- g.(j)
          done)
        items;
      let ctxs = Array.map snd items in
      let eval_slot i =
        let base = i * len in
        let genome = Array.init len (fun j -> slab.{base + j}) in
        eval_one (genome, ctxs.(i))
      in
      Pool.map p eval_slot (Array.init n (fun i -> i))
    | None -> Array.map eval_one items
  in
  let batch items =
    let n = Array.length items in
    match cache with
    | None ->
      let results = eval_misses items in
      Array.init n (fun i ->
          let fitness, info = results.(i) in
          { genome = fst items.(i); fitness; info })
    | Some c ->
      let results = Array.make n None in
      (* Entries touched by this batch are pinned until the batch ends,
         so inserting one miss's result cannot evict another in-flight
         entry of the same batch (see the pinning note in
         {!Mm_parallel.Memo}). *)
      Fun.protect ~finally:(fun () -> Memo.unpin_all c) @@ fun () ->
      (* Misses in first-occurrence order; duplicate genomes within the
         batch (clones of a converged population) are folded onto one
         evaluation — under the first occurrence's delta context — and
         counted as cache hits. *)
      let misses = ref [] in
      Array.iteri
        (fun i (genome, ctx) ->
          match Memo.find ~pin:true c genome with
          | Some r ->
            incr cache_hits;
            Metrics.incr m_cache_hits;
            results.(i) <- Some r
          | None -> (
            match List.find_opt (fun ((g, _), _) -> g = genome) !misses with
            | Some (_, slots) ->
              incr cache_hits;
              Metrics.incr m_cache_hits;
              slots := i :: !slots
            | None -> misses := ((genome, ctx), ref [ i ]) :: !misses))
        items;
      let misses = Array.of_list (List.rev !misses) in
      let miss_results = eval_misses (Array.map fst misses) in
      Array.iteri
        (fun j ((genome, _), slots) ->
          let r = miss_results.(j) in
          Memo.add ~pin:true c genome r;
          List.iter (fun i -> results.(i) <- Some r) !slots)
        misses;
      Array.init n (fun i ->
          match results.(i) with
          | Some (fitness, info) -> { genome = fst items.(i); fitness; info }
          | None -> assert false)
  in
  { batch; evaluations; cache_hits }

(* A paused run at a generation boundary: the sorted population, the
   convergence bookkeeping and the PRNG.  [step] advances it in place;
   everything else ([to_checkpoint], [to_result], [best_members],
   [inject]) reads or edits the boundary state.  This is the unit the
   island model schedules: each island owns one [state] and steps it to
   the next migration epoch on whatever domain the pool hands it. *)
type 'info state = {
  st_config : config;
  st_problem : 'info problem;
  st_batcher : 'info batcher;
  st_delta : 'info delta option;
  st_weights : float array;
  st_on_generation : (checkpoint -> unit) option;
  st_rng : Prng.t;
  mutable st_population : 'info member array;
  mutable st_best : 'info member;
  mutable st_stagnation : int;
  mutable st_history : float list; (* newest first *)
  mutable st_generation : int;
}

let by_fitness a b = compare a.fitness b.fitness

let init ?(config = default_config) ?(strategy = Serial) ?delta ?on_generation
    ?resume ~rng problem =
  if Array.length problem.gene_counts = 0 then invalid_arg "Engine.run: empty genome";
  if config.population_size <= 0 then invalid_arg "Engine.run: non-positive population";
  Array.iter
    (fun c -> if c <= 0 then invalid_arg "Engine.run: empty gene alphabet")
    problem.gene_counts;
  let batcher = make_batcher ?delta problem strategy in
  let full genomes = Array.map (fun g -> (g, None)) genomes in
  List.iter
    (fun genome ->
      if not (Genome.validate ~counts:problem.gene_counts genome) then
        invalid_arg "Engine.run: invalid initial genome")
    problem.initial;
  let rng, population, best, history, stagnation, generation =
    match resume with
    | None ->
      let seeded = Array.of_list problem.initial in
      (* Genome construction consumes the RNG in index order; evaluation
         is deferred to one batch. *)
      let genomes =
        Array.init config.population_size (fun i ->
            if i < Array.length seeded then Array.copy seeded.(i)
            else Genome.random rng ~counts:problem.gene_counts)
      in
      let population = batcher.batch (full genomes) in
      Array.sort by_fitness population;
      let best = population.(0) in
      (rng, population, best, [ best.fitness ], 0, 0)
    | Some (ck : checkpoint) ->
      if Array.length ck.members <> config.population_size then
        invalid_arg "Engine.run: checkpoint population size mismatch";
      let check_genome (genome, _) =
        if not (Genome.validate ~counts:problem.gene_counts genome) then
          invalid_arg "Engine.run: checkpoint genome does not fit the problem"
      in
      Array.iter check_genome ck.members;
      check_genome ck.best;
      (* Recover the ['info] side data by re-evaluating the stored
         genomes as one batch (the best-ever genome rides along at the
         end).  A pure evaluator must reproduce the checkpointed
         fitnesses bit-for-bit — a mismatch means the snapshot belongs
         to a different problem.  The restored array is NOT re-sorted:
         [Array.sort] is unstable, so only the order captured at the
         generation boundary reproduces the original run. *)
      let stored_genome (g, _) = Array.copy g in
      let evaluated =
        batcher.batch
          (full
             (Array.append (Array.map stored_genome ck.members)
                [| stored_genome ck.best |]))
      in
      let restore m stored_fitness =
        if problem.pure
           && Int64.bits_of_float m.fitness <> Int64.bits_of_float stored_fitness
        then invalid_arg "Engine.run: checkpoint fitness mismatch (stale snapshot?)";
        { m with fitness = stored_fitness }
      in
      let n = Array.length ck.members in
      let members = Array.init n (fun i -> restore evaluated.(i) (snd ck.members.(i))) in
      let best = restore evaluated.(n) (snd ck.best) in
      (* The restore batch already bumped the counters by its own cost;
         stack the checkpointed totals on top so the resumed run reports
         the work of the whole trajectory. *)
      batcher.evaluations := !(batcher.evaluations) + ck.evaluations;
      batcher.cache_hits := !(batcher.cache_hits) + ck.cache_hits;
      (* The caller's [rng] is superseded: the stream continues from the
         captured state, which is what makes the resumed trajectory
         bit-identical to the uninterrupted one. *)
      ( Prng.of_state ck.rng_state,
        members,
        best,
        List.rev ck.history,
        ck.stagnation,
        ck.generation )
  in
  {
    st_config = config;
    st_problem = problem;
    st_batcher = batcher;
    st_delta = delta;
    st_weights = ranking_weights config.population_size config.selection_pressure;
    st_on_generation = on_generation;
    st_rng = rng;
    st_population = population;
    st_best = best;
    st_stagnation = stagnation;
    st_history = history;
    st_generation = generation;
  }

(* Mean normalised Hamming distance of the population to its best
   member — a cheap proxy for population diversity. *)
let diversity st =
  let members = st.st_population in
  let best_genome = members.(0).genome in
  let len = Array.length best_genome in
  let total =
    Array.fold_left
      (fun acc m -> acc + Genome.hamming best_genome m.genome)
      0 members
  in
  float_of_int total /. float_of_int (Array.length members * len)

let converged st =
  let config = st.st_config in
  st.st_stagnation >= config.stagnation_limit
  || (config.diversity_threshold > 0.0
     && st.st_stagnation >= (config.stagnation_limit + 1) / 2
     && diversity st < config.diversity_threshold)

let generation st = st.st_generation

let finished st =
  st.st_generation >= st.st_config.max_generations || converged st

(* Tournament over rank positions: smaller weighted draw wins. *)
let select st =
  let config = st.st_config and rng = st.st_rng and weights = st.st_weights in
  let draw () = Prng.int rng config.population_size in
  let rec tournament best_rank k =
    if k = 0 then best_rank
    else
      let candidate = draw () in
      (* Higher linear-ranking weight wins the tournament. *)
      let winner = if weights.(candidate) > weights.(best_rank) then candidate else best_rank in
      tournament winner (k - 1)
  in
  st.st_population.(tournament (draw ()) (config.tournament_size - 1))

(* Per-generation convergence statistics; [diversity st] is recomputed
   only when metrics are on (it is O(population × genome)). *)
let record_generation st =
  if Mm_obs.Control.metrics_on () then begin
    Metrics.incr m_generations;
    let members = st.st_population in
    let n = Array.length members in
    let sum = Array.fold_left (fun acc m -> acc +. m.fitness) 0.0 members in
    Metrics.append s_best st.st_best.fitness;
    Metrics.append s_mean (sum /. float_of_int n);
    Metrics.append s_diversity (diversity st);
    Metrics.append s_stagnation (float_of_int st.st_stagnation)
  end

let to_checkpoint st =
  {
    generation = st.st_generation;
    members =
      Array.map (fun m -> (Array.copy m.genome, m.fitness)) st.st_population;
    best = (Array.copy st.st_best.genome, st.st_best.fitness);
    stagnation = st.st_stagnation;
    history = List.rev st.st_history;
    evaluations = !(st.st_batcher.evaluations);
    cache_hits = !(st.st_batcher.cache_hits);
    rng_state = Prng.state st.st_rng;
  }

let to_result st =
  {
    best_genome = Array.copy st.st_best.genome;
    best_fitness = st.st_best.fitness;
    best_info = st.st_best.info;
    generations = st.st_generation;
    evaluations = !(st.st_batcher.evaluations);
    cache_hits = !(st.st_batcher.cache_hits);
    history = List.rev st.st_history;
  }

let best_members st m =
  let pop = st.st_population in
  let m = max 0 (min m (Array.length pop)) in
  List.init m (fun i ->
      let r = pop.(i) in
      { r with genome = Array.copy r.genome })

(* Migration intake: the [migrants] replace the worst residents (the
   tail of the fitness-sorted population), the merged array is re-sorted
   with the same comparator the engine uses everywhere, and — when a
   migrant strictly improves on the island's best-ever (the engine's
   usual [1e-15] threshold) — the best is adopted and stagnation resets,
   so migration can revive a converged island.  Everything is plain
   deterministic array surgery on boundary state: no randomness is
   consumed, so injection composes with the bit-identity contract. *)
let inject st migrants =
  match migrants with
  | [] -> ()
  | migrants ->
    let pop = st.st_population in
    let n = Array.length pop in
    let m = min (List.length migrants) n in
    let arriving =
      Array.of_list
        (List.filteri (fun i _ -> i < m) migrants
        |> List.map (fun r -> { r with genome = Array.copy r.genome }))
    in
    let next = Array.append (Array.sub pop 0 (n - m)) arriving in
    Array.sort by_fitness next;
    st.st_population <- next;
    Array.iter
      (fun (r : _ member) ->
        if r.fitness < st.st_best.fitness -. 1e-15 then begin
          st.st_best <- { r with genome = Array.copy r.genome };
          st.st_stagnation <- 0
        end)
      arriving

let step st ~until =
  let config = st.st_config in
  let problem = st.st_problem in
  let rng = st.st_rng in
  let until = min until config.max_generations in
  while st.st_generation < until && not (converged st) do
    st.st_generation <- st.st_generation + 1;
    Mm_obs.Probe.run
      ~args:(fun () -> [ ("generation", string_of_int st.st_generation) ])
      p_generation
    @@ fun () ->
    let snapshot =
      {
        generation = st.st_generation;
        fitnesses = Array.map (fun m -> m.fitness) st.st_population;
        infos = Array.map (fun m -> m.info) st.st_population;
      }
    in
    let n_elite = min config.elite_count config.population_size in
    (* Offspring genomes are bred sequentially — selection, crossover,
       mutation and the improvement operators all draw from [rng] — and
       only then evaluated as one batch. *)
    let pending = ref [] in
    let n_offspring = ref n_elite in
    let emit genome parent =
      (* Improvement operators (paper lines 19-22) act on offspring with
         their configured rates, guided by parent evaluation feedback. *)
      List.iter
        (fun op ->
          if Prng.chance rng op.rate then
            ignore (op.apply rng ~snapshot ~info:parent.info genome))
        problem.improvements;
      (* The delta context is derived after the improvement operators so
         the dirty set covers everything that touched the child.  The
         diff consumes no randomness, so supplying [delta] does not
         perturb the trajectory. *)
      let ctx =
        match st.st_delta with
        | None -> None
        | Some _ -> Some (parent.info, Genome.diff genome parent.genome)
      in
      pending := (genome, ctx) :: !pending;
      incr n_offspring
    in
    while !n_offspring < config.population_size do
      let parent_a = select st and parent_b = select st in
      if Prng.chance rng config.crossover_rate then begin
        let child_a, child_b =
          Genome.two_point_crossover rng parent_a.genome parent_b.genome
        in
        Genome.point_mutate rng ~counts:problem.gene_counts ~rate:config.mutation_rate
          child_a;
        Genome.point_mutate rng ~counts:problem.gene_counts ~rate:config.mutation_rate
          child_b;
        emit child_a parent_a;
        if !n_offspring < config.population_size then emit child_b parent_b
      end
      else begin
        let child = Array.copy parent_a.genome in
        Genome.point_mutate rng ~counts:problem.gene_counts ~rate:config.mutation_rate
          child;
        emit child parent_a
      end
    done;
    let children = st.st_batcher.batch (Array.of_list (List.rev !pending)) in
    (* Rebuild the survivor array in the exact order the serial engine
       used (elites pushed first, children on top, list reversed by
       [Array.of_list]) so the unstable sort below sees the same input
       and equal seeds keep giving bit-identical populations. *)
    let offspring = ref [] in
    for i = 0 to n_elite - 1 do
      offspring := st.st_population.(i) :: !offspring
    done;
    Array.iter (fun m -> offspring := m :: !offspring) children;
    let next = Array.of_list !offspring in
    Array.sort by_fitness next;
    st.st_population <- next;
    if next.(0).fitness < st.st_best.fitness -. 1e-15 then begin
      st.st_best <- next.(0);
      st.st_stagnation <- 0
    end
    else st.st_stagnation <- st.st_stagnation + 1;
    st.st_history <- st.st_best.fitness :: st.st_history;
    record_generation st;
    (* The generation boundary is the only point where no randomness is
       in flight: everything the next iteration reads is the sorted
       population, the convergence state and the PRNG word captured
       here.  That is exactly what a [checkpoint] carries. *)
    match st.st_on_generation with
    | None -> ()
    | Some emit -> emit (to_checkpoint st)
  done

let run ?config ?strategy ?delta ?on_generation ?resume ~rng problem =
  let st = init ?config ?strategy ?delta ?on_generation ?resume ~rng problem in
  step st ~until:st.st_config.max_generations;
  to_result st
