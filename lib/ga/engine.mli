(** A generational genetic algorithm minimising a fitness function over
    integer-string genomes (paper §4.1, Fig. 4).

    Per generation: individuals are ranked by fitness and assigned
    linearly scaled selection weights; tournament selection picks mating
    pairs; two-point crossover and per-gene mutation produce offspring;
    problem-specific {e improvement operators} (the paper's lines 19–22)
    then rewrite randomly chosen offspring using evaluation feedback; the
    best individuals survive unchanged (elitism).  The run converges when
    the best fitness has stagnated for a configured number of
    generations.

    The engine is polymorphic in ['info], the side information the
    evaluator attaches to each candidate (the mapping GA uses it to expose
    area / timing / transition feasibility to the improvement
    operators).

    {2 Batched evaluation}

    Each generation's offspring are bred sequentially (selection,
    crossover, mutation and the improvement operators all consume the
    run's PRNG) and then evaluated as one batch through an
    {!eval_strategy}: serially, on a {!Mm_parallel.Pool} of domains,
    through a {!Mm_parallel.Memo} genome cache, or both.  Because no
    randomness is drawn during evaluation, the strategy cannot perturb
    the random stream: equal seeds give bit-identical results at any
    domain count and with or without the cache.  Only [evaluations] and
    [cache_hits] in the {!result} depend on the strategy. *)

type config = {
  population_size : int;
  tournament_size : int;
  crossover_rate : float;  (** Probability that a selected pair mates. *)
  mutation_rate : float;  (** Per-gene reset probability. *)
  elite_count : int;
  max_generations : int;
  stagnation_limit : int;
      (** Convergence: stop after this many generations without
          improvement of the best-ever fitness. *)
  diversity_threshold : float;
      (** Convergence (paper §4.1: "based on the diversity in the current
          population and the number of elapsed iterations without any
          improved individual"): additionally stop once the population's
          mean normalised Hamming distance to the best individual falls
          below this threshold while the search has stagnated for at
          least half the stagnation limit.  0 disables the criterion. *)
  selection_pressure : float;
      (** Linear-ranking slope in [\[1, 2\]]: expected offspring count of
          the best-ranked individual. *)
}

val default_config : config

type 'info snapshot = {
  generation : int;
  fitnesses : float array;
  infos : 'info array;
}
(** What improvement operators can see of the current population. *)

type 'info improvement = {
  name : string;
  rate : float;  (** Probability of applying to each offspring. *)
  apply :
    Mm_util.Prng.t -> snapshot:'info snapshot -> info:'info -> int array -> bool;
      (** Rewrite the genome in place; return [false] to signal that no
          change was made.  [info] is the evaluation feedback of the
          genome's {e parent generation} incarnation when available. *)
}

type 'info problem = {
  gene_counts : int array;
  evaluate : int array -> float * 'info;
  pure : bool;
      (** Whether [evaluate] is a pure function of the genome: no
          internal randomness, no observable side effects, thread-safe.
          Impure evaluators are never cached and never run on a pool —
          any {!eval_strategy} silently degrades to {!Serial}. *)
  improvements : 'info improvement list;
  initial : int array list;
      (** Genomes injected into the initial population (e.g. known-
          feasible anchors such as an all-software mapping); the rest of
          the population is random.  Must satisfy [gene_counts]; at most
          [population_size] are used. *)
}

type 'info delta = parent:'info -> dirty:int list -> int array -> float * 'info
(** Optional incremental evaluator: [delta ~parent ~dirty genome]
    evaluates a child [genome] that differs from an already evaluated
    parent (whose side data is [parent]) exactly at the ascending genome
    positions [dirty].  MUST return float-bit-identical results to
    [problem.evaluate genome] — the engine freely substitutes one for
    the other (cache entries, duplicate folding, checkpoint resume all
    assume it), so an inexact delta silently corrupts trajectories.
    The engine derives [dirty] with {!Genome.diff} after crossover,
    mutation and improvement operators have all run. *)

type 'info eval_strategy =
  | Serial  (** Evaluate offspring one after another on the calling domain. *)
  | Pooled of Mm_parallel.Pool.t
      (** Fan each batch out over the pool's domains (falls back to
          {!Serial} on a 1-domain pool). *)
  | Cached of (float * 'info) Mm_parallel.Memo.t
      (** Answer repeated genomes from the cache; only misses are
          evaluated.  Sharing one cache across runs (e.g. GA restarts)
          also shares the learned evaluations. *)
  | Cached_pooled of Mm_parallel.Pool.t * (float * 'info) Mm_parallel.Memo.t
      (** Cache lookups on the calling domain, misses fanned out over
          the pool. *)

type 'info result = {
  best_genome : int array;
  best_fitness : float;
  best_info : 'info;
  generations : int;
  evaluations : int;
      (** Actual evaluator invocations (cache hits excluded). *)
  cache_hits : int;
      (** Evaluations avoided by the cache (0 without a cache); repeated
          genomes within one batch count as hits of its first
          occurrence. *)
  history : float list;  (** Best-ever fitness after each generation, oldest first. *)
}

type checkpoint = {
  generation : int;  (** Number of completed generations. *)
  members : (int array * float) array;
      (** The population in its exact post-sort order.  A resumed run
          must not re-sort it: [Array.sort] is unstable, so only this
          order reproduces the original trajectory. *)
  best : int array * float;
      (** Best-ever individual.  Kept separately from [members] because
          the best-ever may beat [members.(0)] by less than the strict
          improvement threshold. *)
  stagnation : int;
  history : float list;  (** Oldest first, as in {!result}. *)
  evaluations : int;
  cache_hits : int;
  rng_state : int64;  (** {!Mm_util.Prng.state} at the boundary. *)
}
(** Everything the engine needs to continue a run from a generation
    boundary.  ['info] side data is deliberately absent — it is
    recomputed on resume by re-evaluating the genomes — so checkpoints
    are monomorphic and serialisable without caring what the evaluator
    attaches. *)

type 'info member = { genome : int array; fitness : float; info : 'info }
(** One evaluated individual.  Exposed so the island layer
    ({!Islands}) can move individuals between engines; the genome array
    of a member returned by {!best_members} is a private copy. *)

type 'info state
(** A run paused at a generation boundary: the fitness-sorted
    population, the best-ever individual, the convergence bookkeeping
    and the PRNG word.  Created by {!init}, advanced in place by
    {!step}; {!run} is [init] followed by one [step] to
    [max_generations].  A [state] is single-owner mutable data — it may
    migrate between domains (the island scheduler steps different
    islands on different domains), but must never be stepped from two
    domains concurrently. *)

val init :
  ?config:config ->
  ?strategy:'info eval_strategy ->
  ?delta:'info delta ->
  ?on_generation:(checkpoint -> unit) ->
  ?resume:checkpoint ->
  rng:Mm_util.Prng.t ->
  'info problem ->
  'info state
(** Validate the problem and build the boundary state {!run} starts
    from: either a fresh evaluated-and-sorted random population (seeded
    with [problem.initial], consuming [rng] in index order) or, with
    [resume], the verbatim checkpointed population with its ['info]
    side data recomputed (see {!run} for the resume contract).  Raises
    [Invalid_argument] exactly where {!run} does. *)

val step : 'info state -> until:int -> unit
(** Advance the state while [generation st < min until max_generations]
    and the run has not converged.  [step st ~until:max_generations]
    runs to completion; smaller [until] values pause at an intermediate
    generation boundary, from which a later [step] continues
    bit-identically — the split points are invisible to the
    trajectory. *)

val generation : 'info state -> int
(** Completed generations so far. *)

val finished : 'info state -> bool
(** Whether {!step} would be a no-op: the generation cap is reached or
    the run has converged (stagnation / diversity criteria).  A
    converged state can become unfinished again if {!inject} adopts a
    strictly better migrant (stagnation resets). *)

val to_checkpoint : 'info state -> checkpoint
(** Capture the boundary state (genomes are copies; the caller may
    retain them).  Equal to what [on_generation] was last called with,
    except after {!inject}, which edits the boundary state in place. *)

val to_result : 'info state -> 'info result
(** The run result as of the current boundary. *)

val best_members : 'info state -> int -> 'info member list
(** [best_members st m] returns copies of the [m] fittest members of
    the current population, best first (fewer if the population is
    smaller).  Genome arrays are fresh copies. *)

val inject : 'info state -> 'info member list -> unit
(** Migration intake: replace the worst [List.length migrants]
    residents (the tail of the fitness-sorted population) with the
    given members and re-sort.  A migrant that strictly improves on the
    island's best-ever fitness (by the engine's [1e-15] threshold)
    becomes the new best and resets stagnation, so migration can revive
    a converged island.  Consumes no randomness and evaluates nothing —
    migrants carry their fitness and ['info], which is sound exactly
    because evaluation is pure and genome-determined. *)

val run :
  ?config:config ->
  ?strategy:'info eval_strategy ->
  ?delta:'info delta ->
  ?on_generation:(checkpoint -> unit) ->
  ?resume:checkpoint ->
  rng:Mm_util.Prng.t ->
  'info problem ->
  'info result
(** [strategy] defaults to {!Serial}.  The optimisation trajectory —
    [best_genome], [best_fitness], [generations], [history] — is
    independent of the strategy; see the determinism note above.  Raises
    [Invalid_argument] on an empty genome or a non-positive
    population.

    [delta], when supplied, is used for offspring whose parent was
    evaluated this run (initial populations and checkpoint restores
    always take the full evaluator).  Because a {!delta} is contractually
    bit-identical to [problem.evaluate], supplying it changes wall time
    only, never the trajectory.

    [on_generation] is called at the end of every generation with a
    {!checkpoint} capturing the boundary state (genomes are copies; the
    callback may retain them).

    [resume] continues a run from a checkpoint instead of breeding a
    fresh population: the stored genomes are re-evaluated in one batch
    to recover their ['info] (so resuming costs one population's worth
    of evaluations, or nothing with a warm cache), the stored fitnesses
    and convergence state are restored verbatim, and the PRNG stream
    continues from [rng_state] — the caller's [rng] is superseded.  The
    resumed run is bit-identical to the uninterrupted one under any
    {!eval_strategy}.  Raises [Invalid_argument] when the checkpoint
    does not fit the problem: wrong population size, genomes outside
    [gene_counts], or (for a pure evaluator) stored fitnesses that the
    evaluator no longer reproduces bit-for-bit. *)
