(** A generational genetic algorithm minimising a fitness function over
    integer-string genomes (paper §4.1, Fig. 4).

    Per generation: individuals are ranked by fitness and assigned
    linearly scaled selection weights; tournament selection picks mating
    pairs; two-point crossover and per-gene mutation produce offspring;
    problem-specific {e improvement operators} (the paper's lines 19–22)
    then rewrite randomly chosen offspring using evaluation feedback; the
    best individuals survive unchanged (elitism).  The run converges when
    the best fitness has stagnated for a configured number of
    generations.

    The engine is polymorphic in ['info], the side information the
    evaluator attaches to each candidate (the mapping GA uses it to expose
    area / timing / transition feasibility to the improvement
    operators).

    {2 Batched evaluation}

    Each generation's offspring are bred sequentially (selection,
    crossover, mutation and the improvement operators all consume the
    run's PRNG) and then evaluated as one batch through an
    {!eval_strategy}: serially, on a {!Mm_parallel.Pool} of domains,
    through a {!Mm_parallel.Memo} genome cache, or both.  Because no
    randomness is drawn during evaluation, the strategy cannot perturb
    the random stream: equal seeds give bit-identical results at any
    domain count and with or without the cache.  Only [evaluations] and
    [cache_hits] in the {!result} depend on the strategy. *)

type config = {
  population_size : int;
  tournament_size : int;
  crossover_rate : float;  (** Probability that a selected pair mates. *)
  mutation_rate : float;  (** Per-gene reset probability. *)
  elite_count : int;
  max_generations : int;
  stagnation_limit : int;
      (** Convergence: stop after this many generations without
          improvement of the best-ever fitness. *)
  diversity_threshold : float;
      (** Convergence (paper §4.1: "based on the diversity in the current
          population and the number of elapsed iterations without any
          improved individual"): additionally stop once the population's
          mean normalised Hamming distance to the best individual falls
          below this threshold while the search has stagnated for at
          least half the stagnation limit.  0 disables the criterion. *)
  selection_pressure : float;
      (** Linear-ranking slope in [\[1, 2\]]: expected offspring count of
          the best-ranked individual. *)
}

val default_config : config

type 'info snapshot = {
  generation : int;
  fitnesses : float array;
  infos : 'info array;
}
(** What improvement operators can see of the current population. *)

type 'info improvement = {
  name : string;
  rate : float;  (** Probability of applying to each offspring. *)
  apply :
    Mm_util.Prng.t -> snapshot:'info snapshot -> info:'info -> int array -> bool;
      (** Rewrite the genome in place; return [false] to signal that no
          change was made.  [info] is the evaluation feedback of the
          genome's {e parent generation} incarnation when available. *)
}

type 'info problem = {
  gene_counts : int array;
  evaluate : int array -> float * 'info;
  pure : bool;
      (** Whether [evaluate] is a pure function of the genome: no
          internal randomness, no observable side effects, thread-safe.
          Impure evaluators are never cached and never run on a pool —
          any {!eval_strategy} silently degrades to {!Serial}. *)
  improvements : 'info improvement list;
  initial : int array list;
      (** Genomes injected into the initial population (e.g. known-
          feasible anchors such as an all-software mapping); the rest of
          the population is random.  Must satisfy [gene_counts]; at most
          [population_size] are used. *)
}

type 'info eval_strategy =
  | Serial  (** Evaluate offspring one after another on the calling domain. *)
  | Pooled of Mm_parallel.Pool.t
      (** Fan each batch out over the pool's domains (falls back to
          {!Serial} on a 1-domain pool). *)
  | Cached of (float * 'info) Mm_parallel.Memo.t
      (** Answer repeated genomes from the cache; only misses are
          evaluated.  Sharing one cache across runs (e.g. GA restarts)
          also shares the learned evaluations. *)
  | Cached_pooled of Mm_parallel.Pool.t * (float * 'info) Mm_parallel.Memo.t
      (** Cache lookups on the calling domain, misses fanned out over
          the pool. *)

type 'info result = {
  best_genome : int array;
  best_fitness : float;
  best_info : 'info;
  generations : int;
  evaluations : int;
      (** Actual evaluator invocations (cache hits excluded). *)
  cache_hits : int;
      (** Evaluations avoided by the cache (0 without a cache); repeated
          genomes within one batch count as hits of its first
          occurrence. *)
  history : float list;  (** Best-ever fitness after each generation, oldest first. *)
}

val run :
  ?config:config ->
  ?strategy:'info eval_strategy ->
  rng:Mm_util.Prng.t ->
  'info problem ->
  'info result
(** [strategy] defaults to {!Serial}.  The optimisation trajectory —
    [best_genome], [best_fitness], [generations], [history] — is
    independent of the strategy; see the determinism note above.  Raises
    [Invalid_argument] on an empty genome or a non-positive
    population. *)
