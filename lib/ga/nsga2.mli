(** NSGA-II: multi-objective genetic optimisation over integer-string
    genomes (Deb et al., 2002).

    The single-objective mapping GA answers "cheapest average power for
    this architecture"; NSGA-II answers the designer's wider question —
    the whole power/cost trade-off in one run.  (The authors' own
    follow-up work on LOPOCOS moved to multi-objective co-synthesis.)

    Standard algorithm: fast non-dominated sorting into fronts, crowding
    distances within fronts, binary tournament on (rank, crowding),
    two-point crossover + point mutation, and (μ+λ) environmental
    selection.  All objectives are minimised. *)

type config = {
  population_size : int;
  max_generations : int;
  crossover_rate : float;
  mutation_rate : float;
}

val default_config : config

type 'info individual = {
  genome : int array;
  objectives : float array;
  info : 'info;
}

type 'info problem = {
  gene_counts : int array;
  n_objectives : int;
  evaluate : int array -> float array * 'info;
      (** Must return exactly [n_objectives] values. *)
  initial : int array list;
}

type 'info result = {
  front : 'info individual list;
      (** The final population's first non-dominated front, deduplicated
          by objective vector. *)
  generations : int;
  evaluations : int;
}

val dominates : float array -> float array -> bool
(** [dominates a b]: a is no worse in every objective and strictly better
    in at least one (minimisation). *)

val non_dominated_sort : float array array -> int array
(** Per individual: its front rank (0 = non-dominated). *)

val crowding_distances : float array array -> int list -> float array
(** Crowding distance of each member of the given front (indices into
    the objective table); boundary points get [infinity]. *)

val run : ?config:config -> rng:Mm_util.Prng.t -> 'info problem -> 'info result
