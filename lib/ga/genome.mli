(** Integer-string genomes.

    A genome is an [int array] where position [i] holds a value in
    [\[0, counts.(i))] — for the mapping GA, position [i] selects one of
    the candidate PEs of the i-th (mode, task) pair. *)

val random : Mm_util.Prng.t -> counts:int array -> int array
(** Fresh uniform genome. *)

val validate : counts:int array -> int array -> bool
(** Length matches and every gene is within its alphabet. *)

val two_point_crossover :
  Mm_util.Prng.t -> int array -> int array -> int array * int array
(** Classic two-point crossover; parents are not modified.  Parents must
    have equal lengths (>= 1). *)

val point_mutate : Mm_util.Prng.t -> counts:int array -> rate:float -> int array -> unit
(** In place: each gene is reset to a uniform value with probability
    [rate]. *)

val point_mutate_tracked :
  Mm_util.Prng.t -> counts:int array -> rate:float -> int array -> int list
(** {!point_mutate} that also returns the positions whose value actually
    changed, ascending (a redraw that lands on the old value is not
    reported).  Consumes the identical RNG stream as {!point_mutate}, so
    the two are interchangeable without disturbing reproducibility. *)

val diff : int array -> int array -> int list
(** Positions where the two genomes differ, ascending.  Suitable as the
    dirty set of a delta evaluation. *)

val hamming : int array -> int array -> int
(** Number of differing positions (for diversity measurement). *)
