(** Integer-string genomes.

    A genome is an [int array] where position [i] holds a value in
    [\[0, counts.(i))] — for the mapping GA, position [i] selects one of
    the candidate PEs of the i-th (mode, task) pair. *)

val random : Mm_util.Prng.t -> counts:int array -> int array
(** Fresh uniform genome. *)

val validate : counts:int array -> int array -> bool
(** Length matches and every gene is within its alphabet. *)

val two_point_crossover :
  Mm_util.Prng.t -> int array -> int array -> int array * int array
(** Classic two-point crossover; parents are not modified.  Parents must
    have equal lengths (>= 1). *)

val point_mutate : Mm_util.Prng.t -> counts:int array -> rate:float -> int array -> unit
(** In place: each gene is reset to a uniform value with probability
    [rate]. *)

val hamming : int array -> int array -> int
(** Number of differing positions (for diversity measurement). *)
